// Package calvin implements the comparison baseline of Section 7: Calvin
// (Thomson et al., SIGMOD'12), a deterministic distributed transaction
// system. The paper runs the released Calvin over IPoIB (it has no RDMA
// path) with 8 worker threads per machine and reports DrTM outperforming
// it by 17.9x-21.9x on TPC-C, with Calvin latencies in the milliseconds
// because of epoch batching.
//
// This reimplementation keeps the architectural properties that drive those
// numbers rather than Calvin's exact code:
//
//   - Sequencing: transactions are batched into fixed-length epochs
//     (default 10 ms, Calvin's setting); a transaction's latency includes
//     its wait for the epoch boundary.
//   - Deterministic locking: all locks are known up front and acquired in a
//     canonical global order before execution, so there are no aborts or
//     distributed commit protocol — but every lock passes through the
//     node's serial lock manager, whose time is tracked separately
//     (Calvin's classic single-threaded lock-manager bottleneck).
//   - Transport: cross-node reads and writes ship over the emulated IPoIB
//     socket path (55 us one-way) rather than RDMA.
//
// Storage reuses the cluster's tables directly (Calvin manages its own
// concurrency; DrTM's state words are not consulted).
package calvin

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"drtm/internal/cluster"
)

// Ref names a record.
type Ref struct {
	Table int
	Key   uint64
}

// Txn is a transaction request with its full read/write set declared, as
// Calvin requires.
type Txn struct {
	ReadSet  []Ref
	WriteSet []Ref
	// Inserts are records created on commit (e.g. TPC-C orders); their keys
	// are locked like writes.
	Inserts []Insert
	// TolerateMissing skips absent read-set records instead of failing —
	// used by transactions whose read set is discovered optimistically.
	TolerateMissing bool
	// Logic computes updates from the fetched reads. It must be
	// deterministic. Reads of keys in WriteSet are allowed.
	Logic func(ctx *Ctx) error
}

// Insert is a record created by a transaction.
type Insert struct {
	Ref Ref
	Val []uint64
}

// Ctx carries a transaction's fetched records and collected writes.
type Ctx struct {
	vals   map[Ref][]uint64
	writes map[Ref][]uint64
}

// Read returns a fetched record's value.
func (c *Ctx) Read(table int, key uint64) ([]uint64, bool) {
	v, ok := c.vals[Ref{table, key}]
	return v, ok
}

// Write records an update to a declared write-set record.
func (c *Ctx) Write(table int, key uint64, val []uint64) {
	c.writes[Ref{table, key}] = append([]uint64(nil), val...)
}

// Config parameterizes the system.
type Config struct {
	// Epoch is the sequencer batching interval (Calvin default: 10 ms).
	Epoch time.Duration
	// TxnOverheadNS models Calvin's per-transaction scheduler/dispatcher
	// CPU cost on the worker.
	TxnOverheadNS int64
	// LockMgrNSPerLock is the serial lock-manager cost per lock request.
	LockMgrNSPerLock int64
}

// DefaultConfig returns settings calibrated to the published system.
func DefaultConfig() Config {
	return Config{
		Epoch:            10 * time.Millisecond,
		TxnOverheadNS:    60_000,
		LockMgrNSPerLock: 2_000,
	}
}

// System is a Calvin deployment over an existing cluster.
type System struct {
	cfg  Config
	c    *cluster.Cluster
	part func(table int, key uint64) int

	seq atomic.Uint64

	mu    sync.Mutex
	locks map[Ref]*recordLock

	// lockMgrNS accumulates serial lock-manager time per node.
	lockMgrNS []atomic.Int64

	Committed atomic.Int64
}

type recordLock struct{ mu sync.Mutex }

// New builds a Calvin system on the cluster.
func New(c *cluster.Cluster, cfg Config, part func(table int, key uint64) int) *System {
	return &System{
		cfg:       cfg,
		c:         c,
		part:      part,
		locks:     make(map[Ref]*recordLock),
		lockMgrNS: make([]atomic.Int64, c.Nodes()),
	}
}

// LockMgrTime returns the accumulated serial lock-manager time of a node;
// throughput reporting takes max(worker clocks, lock-manager clocks).
func (s *System) LockMgrTime(node int) time.Duration {
	return time.Duration(s.lockMgrNS[node].Load())
}

func (s *System) lockOf(r Ref) *recordLock {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.locks[r]
	if !ok {
		l = &recordLock{}
		s.locks[r] = l
	}
	return l
}

// Execute runs one transaction on behalf of a worker: sequence it (epoch
// wait is charged to the latency histogram only — the worker pipelines
// other work in a real Calvin), deterministically lock, fetch, compute,
// apply, unlock.
func (s *System) Execute(w *cluster.Worker, t *Txn) error {
	model := s.c.Fabric.Model()
	start := w.VClock.Now()

	// Sequencing: average wait is half an epoch.
	epochWait := s.cfg.Epoch / 2
	_ = s.seq.Add(1)

	// Canonical global lock order.
	all := make([]Ref, 0, len(t.ReadSet)+len(t.WriteSet))
	writes := make(map[Ref]bool, len(t.WriteSet))
	seen := make(map[Ref]bool)
	for _, r := range t.WriteSet {
		writes[r] = true
	}
	inserts := make(map[Ref]bool, len(t.Inserts))
	for _, ins := range t.Inserts {
		inserts[ins.Ref] = true
	}
	refs := append(append([]Ref{}, t.ReadSet...), t.WriteSet...)
	for _, ins := range t.Inserts {
		refs = append(refs, ins.Ref)
	}
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			all = append(all, r)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Table != all[j].Table {
			return all[i].Table < all[j].Table
		}
		return all[i].Key < all[j].Key
	})

	// Deterministic locking: blocking acquisition in global order (no
	// deadlock, no aborts). Each request costs serial lock-manager time on
	// the record's home node.
	held := make([]*recordLock, 0, len(all))
	for _, r := range all {
		home := s.part(r.Table, r.Key)
		s.lockMgrNS[home].Add(s.cfg.LockMgrNSPerLock)
		l := s.lockOf(r)
		l.mu.Lock()
		held = append(held, l)
	}
	defer func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].mu.Unlock()
		}
	}()

	// Fetch phase: local reads direct; remote reads one IPoIB round trip
	// per remote node (batched).
	ctx := &Ctx{vals: make(map[Ref][]uint64), writes: make(map[Ref][]uint64)}
	remoteNodes := map[int]bool{}
	for _, r := range all {
		if inserts[r] {
			continue // created below; nothing to fetch
		}
		home := s.part(r.Table, r.Key)
		tbl := s.c.Node(home).Unordered(r.Table)
		v, ok := tbl.Get(r.Key)
		if !ok {
			if t.TolerateMissing {
				continue
			}
			return ErrNotFound
		}
		ctx.vals[r] = v
		if home != w.Node.ID {
			remoteNodes[home] = true
		}
	}
	for range remoteNodes {
		w.VClock.Charge(model.IPoIBMsg(64) * 2) // request + payload
	}

	if err := t.Logic(ctx); err != nil {
		return err
	}

	// Apply phase.
	appliedRemote := map[int]bool{}
	for r, v := range ctx.writes {
		if !writes[r] {
			return ErrUndeclaredWrite
		}
		home := s.part(r.Table, r.Key)
		tbl := s.c.Node(home).Unordered(r.Table)
		if !tbl.Put(r.Key, v) {
			return ErrNotFound
		}
		if home != w.Node.ID {
			appliedRemote[home] = true
		}
	}
	for _, ins := range t.Inserts {
		home := s.part(ins.Ref.Table, ins.Ref.Key)
		tbl := s.c.Node(home).Unordered(ins.Ref.Table)
		if err := tbl.Insert(ins.Ref.Key, ins.Val); err != nil {
			return err
		}
		if home != w.Node.ID {
			appliedRemote[home] = true
		}
	}
	for range appliedRemote {
		w.VClock.Charge(model.IPoIBMsg(128))
	}

	w.VClock.ChargeNS(s.cfg.TxnOverheadNS)
	s.Committed.Add(1)
	w.Hist.Record(epochWait + (w.VClock.Now() - start))
	return nil
}

// Errors.
var (
	ErrNotFound        = errString("calvin: record not found")
	ErrUndeclaredWrite = errString("calvin: write outside declared write set")
)

type errString string

func (e errString) Error() string { return string(e) }
