package calvin

import (
	"sync"
	"testing"
	"time"

	"drtm/internal/cluster"
)

const tbl = 1

func newSys(t testing.TB, nodes, workers, keys int) (*System, *cluster.Cluster) {
	t.Helper()
	c := cluster.New(cluster.DefaultConfig(nodes, workers))
	c.RegisterUnordered(tbl, 256, 256, keys+16, 1)
	for k := 1; k <= keys; k++ {
		if err := c.Node(k%nodes).Unordered(tbl).Insert(uint64(k), []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	s := New(c, DefaultConfig(), func(table int, key uint64) int { return int(key) % nodes })
	return s, c
}

func transfer(from, to uint64, amt uint64) *Txn {
	return &Txn{
		ReadSet:  []Ref{{tbl, from}, {tbl, to}},
		WriteSet: []Ref{{tbl, from}, {tbl, to}},
		Logic: func(ctx *Ctx) error {
			f, _ := ctx.Read(tbl, from)
			g, _ := ctx.Read(tbl, to)
			if f[0] < amt {
				return nil
			}
			ctx.Write(tbl, from, []uint64{f[0] - amt})
			ctx.Write(tbl, to, []uint64{g[0] + amt})
			return nil
		},
	}
}

func TestSingleTransaction(t *testing.T) {
	s, c := newSys(t, 2, 1, 4)
	defer c.Stop()
	w := c.Worker(0, 0)
	if err := s.Execute(w, transfer(1, 2, 30)); err != nil {
		t.Fatal(err)
	}
	v1, _ := c.Node(1).Unordered(tbl).Get(1)
	v2, _ := c.Node(0).Unordered(tbl).Get(2)
	if v1[0] != 70 || v2[0] != 130 {
		t.Fatalf("balances = %d, %d", v1[0], v2[0])
	}
	if s.Committed.Load() != 1 {
		t.Fatal("commit not counted")
	}
}

func TestLatencyIncludesEpochWait(t *testing.T) {
	s, c := newSys(t, 2, 1, 4)
	defer c.Stop()
	w := c.Worker(0, 0)
	_ = s.Execute(w, transfer(1, 2, 1))
	if w.Hist.Percentile(50) < 5*time.Millisecond {
		t.Fatalf("latency %v should include the 5ms average epoch wait",
			w.Hist.Percentile(50))
	}
}

func TestLockManagerAccumulates(t *testing.T) {
	s, c := newSys(t, 2, 1, 4)
	defer c.Stop()
	w := c.Worker(0, 0)
	_ = s.Execute(w, transfer(1, 2, 1))
	// Two locks: key 1 -> node 1, key 2 -> node 0.
	if s.LockMgrTime(0) == 0 || s.LockMgrTime(1) == 0 {
		t.Fatal("lock manager time not tracked per home node")
	}
}

func TestUndeclaredWriteRejected(t *testing.T) {
	s, c := newSys(t, 1, 1, 4)
	defer c.Stop()
	w := c.Worker(0, 0)
	err := s.Execute(w, &Txn{
		ReadSet: []Ref{{tbl, 1}},
		Logic: func(ctx *Ctx) error {
			ctx.Write(tbl, 1, []uint64{0})
			return nil
		},
	})
	if err != ErrUndeclaredWrite {
		t.Fatalf("err = %v", err)
	}
}

// TestConservationConcurrent: concurrent transfers across nodes conserve
// the total (deterministic locking admits no lost updates or deadlock).
func TestConservationConcurrent(t *testing.T) {
	const nodes, workers, keys = 3, 2, 24
	s, c := newSys(t, nodes, workers, keys)
	defer c.Stop()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				wk := c.Worker(n, w)
				for i := 0; i < 150; i++ {
					from := uint64((n*31+w*17+i)%keys) + 1
					to := uint64((n*7+w*3+i*5)%keys) + 1
					if from == to {
						continue
					}
					if err := s.Execute(wk, transfer(from, to, uint64(i%5))); err != nil {
						t.Errorf("execute: %v", err)
						return
					}
				}
			}(n, w)
		}
	}
	wg.Wait()
	var total uint64
	for k := 1; k <= keys; k++ {
		v, ok := c.Node(k % nodes).Unordered(tbl).Get(uint64(k))
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		total += v[0]
	}
	if total != keys*100 {
		t.Fatalf("total = %d, want %d", total, keys*100)
	}
}

func TestDistributedCostsCharged(t *testing.T) {
	s, c := newSys(t, 2, 2, 4)
	defer c.Stop()
	wLocal := c.Worker(0, 0)
	wDist := c.Worker(0, 1)
	// Local-only txn for worker 0 (keys 2 and 4 live on node 0).
	if err := s.Execute(wLocal, transfer(2, 4, 1)); err != nil {
		t.Fatal(err)
	}
	// Distributed txn for worker 1 (keys 1 and 2: nodes 1 and 0).
	if err := s.Execute(wDist, transfer(1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if wDist.VClock.Now() <= wLocal.VClock.Now() {
		t.Fatalf("distributed txn (%v) should cost more than local (%v)",
			wDist.VClock.Now(), wLocal.VClock.Now())
	}
	// And the gap must be IPoIB-scale (> 100us).
	if wDist.VClock.Now()-wLocal.VClock.Now() < 100*time.Microsecond {
		t.Fatal("IPoIB messaging cost missing")
	}
}
