package htm

import "runtime"

// yield parks a spinning reader so the writer it waits on can run; essential
// when GOMAXPROCS is small.
func yield() { runtime.Gosched() }
