// Package htm emulates Intel Restricted Transactional Memory (RTM) in
// software over the word arenas of package memory.
//
// The emulation preserves every RTM property the DrTM protocol depends on:
//
//   - All-or-nothing commit: writes are buffered privately and published
//     atomically (under per-line seqlocks) at XEND.
//   - Strong atomicity: a non-transactional store (e.g. a simulated one-sided
//     RDMA WRITE or CAS from another machine) bumps the affected line
//     versions, so any in-flight transaction that read those lines fails
//     validation and aborts — exactly as a remote coherence invalidation
//     aborts a real RTM transaction.
//   - Capacity aborts: the write set is bounded (L1-sized by default, 512
//     cache lines = 32 KB) and the read set by a larger bound; exceeding
//     either aborts with AbortCapacity. This is what makes transaction
//     chopping observable in the simulator.
//   - No progress guarantee: conflicting transactions use try-locks and
//     abort rather than block, so livelock is possible and a software
//     fallback path is required, as with real RTM.
//   - Abort codes: conflict, capacity, and explicit (XABORT imm8) are
//     distinguished, mirroring the EAX abort status of RTM.
//
// The one intentional deviation is abort *timing*: real RTM aborts a doomed
// transaction the instant a conflicting coherence message arrives, while
// this engine detects the conflict at the transaction's next access to the
// line or at commit (opacity is still guaranteed — a transaction never acts
// on inconsistent data). Published state is identical in both designs.
package htm

import (
	"errors"
	"fmt"
	"sort"

	"drtm/internal/memory"
	"drtm/internal/obs"
)

// AbortCode classifies transaction aborts, mirroring RTM's abort status.
type AbortCode int

const (
	// AbortConflict corresponds to _XABORT_CONFLICT: another agent touched
	// a line in the transaction's working set.
	AbortConflict AbortCode = iota
	// AbortCapacity corresponds to _XABORT_CAPACITY: the working set
	// exceeded the hardware tracking capacity.
	AbortCapacity
	// AbortExplicit corresponds to _XABORT_EXPLICIT: the transaction
	// executed XABORT with a user code (e.g. DrTM's lock-state checks).
	AbortExplicit
)

func (c AbortCode) String() string {
	switch c {
	case AbortConflict:
		return "conflict"
	case AbortCapacity:
		return "capacity"
	case AbortExplicit:
		return "explicit"
	default:
		return fmt.Sprintf("AbortCode(%d)", int(c))
	}
}

// AbortError is returned by Engine.Run when the transaction aborted.
type AbortError struct {
	Code AbortCode
	// User carries the XABORT imm8 code for explicit aborts.
	User uint8
}

func (e *AbortError) Error() string {
	if e.Code == AbortExplicit {
		return fmt.Sprintf("htm: aborted (explicit, code %d)", e.User)
	}
	return "htm: aborted (" + e.Code.String() + ")"
}

// IsAbort reports whether err is an HTM abort and returns it if so.
func IsAbort(err error) (*AbortError, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae, true
	}
	return nil, false
}

// Config bounds the emulated hardware working set.
type Config struct {
	// WriteLines is the maximum number of distinct cache lines in the write
	// set (RTM tracks writes in L1: 32 KB / 64 B = 512 lines).
	WriteLines int
	// ReadLines is the maximum number of distinct cache lines in the read
	// set (RTM tracks reads in an implementation-specific, larger structure).
	ReadLines int
}

// DefaultConfig matches the Haswell-class hardware in the paper.
func DefaultConfig() Config { return Config{WriteLines: 512, ReadLines: 4096} }

// Stats aggregates transaction outcomes for an Engine, built on the shared
// obs.Counter primitive. All fields are updated atomically and may be read
// concurrently.
type Stats struct {
	Commits        obs.Counter
	Aborts         obs.Counter
	ConflictAborts obs.Counter
	CapacityAborts obs.Counter
	ExplicitAborts obs.Counter
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() (commits, aborts, conflict, capacity, explicit int64) {
	return s.Commits.Load(), s.Aborts.Load(), s.ConflictAborts.Load(),
		s.CapacityAborts.Load(), s.ExplicitAborts.Load()
}

// Engine executes transactions against arenas. An Engine is typically
// per-node; it is safe for concurrent use by multiple worker goroutines.
type Engine struct {
	cfg   Config
	Stats Stats
}

// NewEngine returns an engine with the given capacity configuration.
// Zero bounds fall back to DefaultConfig values.
func NewEngine(cfg Config) *Engine {
	def := DefaultConfig()
	if cfg.WriteLines <= 0 {
		cfg.WriteLines = def.WriteLines
	}
	if cfg.ReadLines <= 0 {
		cfg.ReadLines = def.ReadLines
	}
	return &Engine{cfg: cfg}
}

// lineKey identifies a cache line across arenas.
type lineKey struct {
	a *memory.Arena
	l memory.Line
}

// wordKey identifies a single word across arenas.
type wordKey struct {
	a   *memory.Arena
	off memory.Offset
}

// Txn is an in-flight hardware transaction. It must only be used by the
// goroutine that began it, and only between XBEGIN and the return of the
// region function — exactly like a real RTM context.
type Txn struct {
	eng    *Engine
	reads  map[lineKey]uint64 // line -> observed version
	writes map[wordKey]uint64 // word -> buffered value
	wlines map[lineKey]struct{}
}

// abortPanic carries an abort out of user code; Engine.Run recovers it.
type abortPanic struct{ err *AbortError }

func (t *Txn) abort(code AbortCode, user uint8) {
	panic(abortPanic{&AbortError{Code: code, User: user}})
}

// Abort explicitly aborts the transaction with a user code (XABORT imm8).
// It does not return.
func (t *Txn) Abort(user uint8) { t.abort(AbortExplicit, user) }

// Read transactionally loads one word, adding its line to the read set.
func (t *Txn) Read(a *memory.Arena, off memory.Offset) uint64 {
	if v, ok := t.writes[wordKey{a, off}]; ok {
		return v
	}
	lk := lineKey{a, memory.LineOf(off)}
	const retries = 64
	for i := 0; ; i++ {
		v1 := a.LineVersion(lk.l)
		if v1&1 != 0 {
			if i >= retries {
				t.abort(AbortConflict, 0)
			}
			yield()
			continue
		}
		val := a.LoadWord(off)
		if a.LineVersion(lk.l) != v1 {
			if i >= retries {
				t.abort(AbortConflict, 0)
			}
			yield()
			continue
		}
		if prev, ok := t.reads[lk]; ok {
			if prev != v1 {
				// The line changed after we first read it: the transaction
				// is doomed (this is where real RTM would already have
				// aborted us asynchronously).
				t.abort(AbortConflict, 0)
			}
			return val
		}
		if len(t.reads) >= t.eng.cfg.ReadLines {
			t.abort(AbortCapacity, 0)
		}
		t.reads[lk] = v1
		return val
	}
}

// ReadN transactionally loads n=len(dst) consecutive words.
func (t *Txn) ReadN(a *memory.Arena, off memory.Offset, dst []uint64) {
	for i := range dst {
		dst[i] = t.Read(a, off+memory.Offset(i))
	}
}

// Write buffers a transactional store of one word.
func (t *Txn) Write(a *memory.Arena, off memory.Offset, v uint64) {
	lk := lineKey{a, memory.LineOf(off)}
	if _, ok := t.wlines[lk]; !ok {
		if len(t.wlines) >= t.eng.cfg.WriteLines {
			t.abort(AbortCapacity, 0)
		}
		t.wlines[lk] = struct{}{}
	}
	t.writes[wordKey{a, off}] = v
}

// WriteN buffers transactional stores of consecutive words.
func (t *Txn) WriteN(a *memory.Arena, off memory.Offset, src []uint64) {
	for i, v := range src {
		t.Write(a, off+memory.Offset(i), v)
	}
}

// ReadSetLines and WriteSetLines report current working-set sizes in cache
// lines; useful for chopping heuristics and tests.
func (t *Txn) ReadSetLines() int  { return len(t.reads) }
func (t *Txn) WriteSetLines() int { return len(t.wlines) }

// Run executes fn as a single hardware transaction attempt (XBEGIN ... XEND).
// It returns nil on commit, an *AbortError on abort, or fn's error verbatim
// (in which case the transaction's buffered writes are discarded, i.e. the
// region is rolled back). Retry policy is the caller's responsibility, as
// with real RTM.
func (e *Engine) Run(fn func(*Txn) error) (err error) {
	t := &Txn{
		eng:    e,
		reads:  make(map[lineKey]uint64, 16),
		writes: make(map[wordKey]uint64, 16),
		wlines: make(map[lineKey]struct{}, 8),
	}
	defer func() {
		if r := recover(); r != nil {
			ap, ok := r.(abortPanic)
			if !ok {
				panic(r)
			}
			err = ap.err
			e.recordAbort(ap.err)
		}
	}()
	if err := fn(t); err != nil {
		// A user error rolls the region back without committing; this is
		// the moral equivalent of XABORT followed by not retrying.
		e.recordAbort(&AbortError{Code: AbortExplicit})
		return err
	}
	if err := t.commit(); err != nil {
		ae, _ := IsAbort(err)
		e.recordAbort(ae)
		return err
	}
	e.Stats.Commits.Add(1)
	return nil
}

func (e *Engine) recordAbort(ae *AbortError) {
	e.Stats.Aborts.Add(1)
	if ae == nil {
		return
	}
	switch ae.Code {
	case AbortConflict:
		e.Stats.ConflictAborts.Add(1)
	case AbortCapacity:
		e.Stats.CapacityAborts.Add(1)
	case AbortExplicit:
		e.Stats.ExplicitAborts.Add(1)
	}
}

// commit validates the read set and publishes buffered writes atomically.
func (t *Txn) commit() error {
	if len(t.writes) == 0 {
		// Read-only transactions just validate.
		for lk, ver := range t.reads {
			if lk.a.LineVersion(lk.l) != ver {
				return &AbortError{Code: AbortConflict}
			}
		}
		return nil
	}

	// Acquire write-line locks in a deterministic global order. Real RTM
	// resolves write-write races through the coherence protocol; sorting
	// here avoids emulation-level deadlock while try-lock keeps the
	// "no progress guarantee" property (we abort rather than wait).
	locks := make([]lineKey, 0, len(t.wlines))
	for lk := range t.wlines {
		locks = append(locks, lk)
	}
	sort.Slice(locks, func(i, j int) bool {
		if locks[i].a != locks[j].a {
			return locks[i].a.ID < locks[j].a.ID
		}
		return locks[i].l < locks[j].l
	})

	type held struct {
		lk   lineKey
		prev uint64
	}
	acquired := make([]held, 0, len(locks))
	release := func(dirty bool) {
		for i := len(acquired) - 1; i >= 0; i-- {
			h := acquired[i]
			h.lk.a.UnlockLineForHTM(h.lk.l, h.prev, dirty)
		}
	}

	for _, lk := range locks {
		prev, ok := lk.a.TryLockLineForHTM(lk.l)
		if !ok {
			release(false)
			return &AbortError{Code: AbortConflict}
		}
		if rv, inReadSet := t.reads[lk]; inReadSet && rv != prev {
			lk.a.UnlockLineForHTM(lk.l, prev, false)
			release(false)
			return &AbortError{Code: AbortConflict}
		}
		acquired = append(acquired, held{lk, prev})
	}

	// Validate read-only lines while holding all write locks.
	for lk, ver := range t.reads {
		if _, isWrite := t.wlines[lk]; isWrite {
			continue // validated at lock time
		}
		if lk.a.LineVersion(lk.l) != ver {
			release(false)
			return &AbortError{Code: AbortConflict}
		}
	}

	// Publish.
	for wk, v := range t.writes {
		wk.a.PublishWord(wk.off, v)
	}
	release(true)
	return nil
}
