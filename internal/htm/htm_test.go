package htm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"drtm/internal/memory"
)

func newEngine() *Engine { return NewEngine(Config{}) }

func TestCommitPublishesWrites(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 64)
	err := e.Run(func(tx *Txn) error {
		tx.Write(a, 1, 10)
		tx.Write(a, 9, 20) // different line
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.LoadWord(1) != 10 || a.LoadWord(9) != 20 {
		t.Fatal("committed writes not visible")
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 64)
	err := e.Run(func(tx *Txn) error {
		tx.Write(a, 0, 7)
		if got := tx.Read(a, 0); got != 7 {
			t.Errorf("read-own-write = %d, want 7", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestWritesInvisibleBeforeCommit(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	inRegion := make(chan struct{})
	done := make(chan struct{})
	var observed uint64
	go func() {
		<-inRegion
		observed = a.LoadWord(0)
		close(done)
	}()
	err := e.Run(func(tx *Txn) error {
		tx.Write(a, 0, 42)
		close(inRegion)
		<-done
		return nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if observed != 0 {
		t.Fatalf("non-transactional reader saw buffered write: %d", observed)
	}
	if a.LoadWord(0) != 42 {
		t.Fatal("write lost after commit")
	}
}

func TestUserErrorRollsBack(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	sentinel := errors.New("boom")
	err := e.Run(func(tx *Txn) error {
		tx.Write(a, 0, 99)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if a.LoadWord(0) != 0 {
		t.Fatal("rolled-back write became visible")
	}
}

func TestExplicitAbort(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	err := e.Run(func(tx *Txn) error {
		tx.Write(a, 0, 1)
		tx.Abort(0xAB)
		t.Error("unreachable after Abort")
		return nil
	})
	ae, ok := IsAbort(err)
	if !ok || ae.Code != AbortExplicit || ae.User != 0xAB {
		t.Fatalf("err = %v, want explicit abort 0xAB", err)
	}
	if a.LoadWord(0) != 0 {
		t.Fatal("aborted write became visible")
	}
	if e.Stats.ExplicitAborts.Load() != 1 {
		t.Fatal("explicit abort not counted")
	}
}

func TestCapacityAbortWrites(t *testing.T) {
	e := NewEngine(Config{WriteLines: 4, ReadLines: 1024})
	a := memory.NewArena(0, 1024)
	err := e.Run(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			tx.Write(a, memory.Offset(i*memory.WordsPerLine), 1)
		}
		return nil
	})
	ae, ok := IsAbort(err)
	if !ok || ae.Code != AbortCapacity {
		t.Fatalf("err = %v, want capacity abort", err)
	}
}

func TestCapacityAbortReads(t *testing.T) {
	e := NewEngine(Config{WriteLines: 512, ReadLines: 4})
	a := memory.NewArena(0, 1024)
	err := e.Run(func(tx *Txn) error {
		for i := 0; i < 5; i++ {
			tx.Read(a, memory.Offset(i*memory.WordsPerLine))
		}
		return nil
	})
	ae, ok := IsAbort(err)
	if !ok || ae.Code != AbortCapacity {
		t.Fatalf("err = %v, want capacity abort", err)
	}
}

// TestStrongAtomicityRemoteWriteAbortsReader reproduces Figure 2(b)/(c):
// a non-transactional store (simulating a one-sided RDMA op) to a line in an
// HTM transaction's read set aborts that transaction at commit.
func TestStrongAtomicityRemoteWriteAbortsReader(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	err := e.Run(func(tx *Txn) error {
		_ = tx.Read(a, 0)
		a.StoreWord(0, 5) // "RDMA" write from elsewhere
		return nil
	})
	ae, ok := IsAbort(err)
	if !ok || ae.Code != AbortConflict {
		t.Fatalf("err = %v, want conflict abort", err)
	}
}

// TestStrongAtomicityCASAbortsWriter: a remote CAS on a line in the write
// set dooms the transaction (write-write conflict detected at publication).
func TestStrongAtomicityCASAbortsWriter(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	err := e.Run(func(tx *Txn) error {
		_ = tx.Read(a, 0) // record the version: DrTM's local ops read state first
		tx.Write(a, 0, 1)
		a.CAS(0, 0, 77)
		return nil
	})
	ae, ok := IsAbort(err)
	if !ok || ae.Code != AbortConflict {
		t.Fatalf("err = %v, want conflict abort", err)
	}
	if a.LoadWord(0) != 77 {
		t.Fatal("remote CAS result lost")
	}
}

// TestDoomedReadAbortsEagerly: re-reading a line whose version changed
// mid-transaction aborts immediately (opacity).
func TestDoomedReadAbortsEagerly(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	err := e.Run(func(tx *Txn) error {
		_ = tx.Read(a, 0)
		a.StoreWord(1, 9) // same line, non-transactional
		_ = tx.Read(a, 0) // must abort here, not at commit
		t.Error("unreachable: doomed read did not abort")
		return nil
	})
	if ae, ok := IsAbort(err); !ok || ae.Code != AbortConflict {
		t.Fatalf("err = %v, want conflict abort", err)
	}
}

func TestConflictingCommitsOneWins(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	const goroutines, iters = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					err := e.Run(func(tx *Txn) error {
						v := tx.Read(a, 0)
						tx.Write(a, 0, v+1)
						return nil
					})
					if err == nil {
						break
					}
					if _, ok := IsAbort(err); !ok {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := a.LoadWord(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates!)", got, goroutines*iters)
	}
}

// TestSerializabilityRandomTransfers is the core property test: concurrent
// random transfers between accounts must conserve the total balance, and no
// committed transaction may have observed a non-integral snapshot.
func TestSerializabilityRandomTransfers(t *testing.T) {
	e := newEngine()
	const accounts = 16
	a := memory.NewArena(0, accounts*memory.WordsPerLine) // one account per line
	for i := 0; i < accounts; i++ {
		a.UnsafeInit(memory.Offset(i*memory.WordsPerLine), []uint64{1000})
	}
	const total = accounts * 1000

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				fi, ti := r.Intn(accounts), r.Intn(accounts)
				if fi == ti {
					continue
				}
				from := memory.Offset(fi * memory.WordsPerLine)
				to := memory.Offset(ti * memory.WordsPerLine)
				amt := uint64(r.Intn(10))
				for {
					err := e.Run(func(tx *Txn) error {
						f := tx.Read(a, from)
						tVal := tx.Read(a, to)
						if f < amt {
							return nil // insufficient funds; commit read-only
						}
						tx.Write(a, from, f-amt)
						tx.Write(a, to, tVal+amt)
						return nil
					})
					if err == nil {
						break
					}
				}
			}
		}(int64(g))
	}

	// A concurrent auditor transaction repeatedly checks conservation.
	auditDone := make(chan struct{})
	var audited, auditAborts int
	go func() {
		defer close(auditDone)
		for i := 0; i < 100; i++ {
			err := e.Run(func(tx *Txn) error {
				var sum uint64
				for j := 0; j < accounts; j++ {
					sum += tx.Read(a, memory.Offset(j*memory.WordsPerLine))
				}
				if sum != total {
					t.Errorf("auditor saw total %d, want %d", sum, total)
				}
				return nil
			})
			if err == nil {
				audited++
			} else {
				auditAborts++
			}
		}
	}()

	wg.Wait()
	<-auditDone

	var sum uint64
	for j := 0; j < accounts; j++ {
		sum += a.LoadWord(memory.Offset(j * memory.WordsPerLine))
	}
	if sum != total {
		t.Fatalf("final total = %d, want %d", sum, total)
	}
}

func TestStatsCounting(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 8)
	_ = e.Run(func(tx *Txn) error { tx.Write(a, 0, 1); return nil })
	_ = e.Run(func(tx *Txn) error { tx.Abort(1); return nil })
	commits, aborts, _, _, explicit := e.Stats.Snapshot()
	if commits != 1 || aborts != 1 || explicit != 1 {
		t.Fatalf("stats = (%d,%d,..,%d), want (1,1,..,1)", commits, aborts, explicit)
	}
}

func TestWorkingSetReporting(t *testing.T) {
	e := newEngine()
	a := memory.NewArena(0, 256)
	_ = e.Run(func(tx *Txn) error {
		tx.Read(a, 0)
		tx.Read(a, 1) // same line
		tx.Read(a, 8) // second line
		tx.Write(a, 64, 1)
		if tx.ReadSetLines() != 2 {
			t.Errorf("ReadSetLines = %d, want 2", tx.ReadSetLines())
		}
		if tx.WriteSetLines() != 1 {
			t.Errorf("WriteSetLines = %d, want 1", tx.WriteSetLines())
		}
		return nil
	})
}

func BenchmarkHTMCommit4Lines(b *testing.B) {
	e := newEngine()
	a := memory.NewArena(0, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Run(func(tx *Txn) error {
			for j := 0; j < 4; j++ {
				off := memory.Offset(j * memory.WordsPerLine)
				v := tx.Read(a, off)
				tx.Write(a, off, v+1)
			}
			return nil
		})
	}
}

func BenchmarkHTMReadOnly16Lines(b *testing.B) {
	e := newEngine()
	a := memory.NewArena(0, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Run(func(tx *Txn) error {
			for j := 0; j < 16; j++ {
				tx.Read(a, memory.Offset(j*memory.WordsPerLine))
			}
			return nil
		})
	}
}
