package htm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"drtm/internal/memory"
)

// TestQuickSequentialEquivalence: running a random batch of transactions
// one at a time through the engine must produce exactly the state of
// applying them directly — the engine adds isolation, not semantics.
func TestQuickSequentialEquivalence(t *testing.T) {
	type op struct {
		Read bool
		Cell uint8
		Val  uint16
	}
	f := func(txns [][]op) bool {
		const cells = 8
		e := NewEngine(Config{})
		a := memory.NewArena(0, cells*memory.WordsPerLine)
		model := make([]uint64, cells)

		for _, ops := range txns {
			if len(ops) > 12 {
				ops = ops[:12]
			}
			shadow := append([]uint64(nil), model...)
			err := e.Run(func(tx *Txn) error {
				for _, o := range ops {
					c := int(o.Cell) % cells
					off := memory.Offset(c * memory.WordsPerLine)
					if o.Read {
						if got := tx.Read(a, off); got != shadow[c] {
							t.Errorf("read cell %d = %d, shadow %d", c, got, shadow[c])
						}
					} else {
						tx.Write(a, off, uint64(o.Val))
						shadow[c] = uint64(o.Val)
					}
				}
				return nil
			})
			if err != nil {
				return false // no concurrency: aborts must not happen
			}
			model = shadow
		}
		for c := 0; c < cells; c++ {
			if a.LoadWord(memory.Offset(c*memory.WordsPerLine)) != model[c] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAtomicityUnderConcurrency: pairs of transactions writing sealed
// patterns (all cells equal) never publish a mixed pattern.
func TestQuickAtomicityUnderConcurrency(t *testing.T) {
	const cells = 4
	e := NewEngine(Config{})
	a := memory.NewArena(0, cells*memory.WordsPerLine)

	done := make(chan bool, 2)
	writer := func(val uint64, n int) {
		ok := true
		for i := 0; i < n; i++ {
			err := e.Run(func(tx *Txn) error {
				for c := 0; c < cells; c++ {
					tx.Write(a, memory.Offset(c*memory.WordsPerLine), val)
				}
				return nil
			})
			_ = err // aborts fine; atomicity is what matters
		}
		done <- ok
	}
	go writer(1111, 300)
	go writer(2222, 300)

	for i := 0; i < 2000; i++ {
		v0 := a.LoadWord(0)
		sealed := true
		err := e.Run(func(tx *Txn) error {
			first := tx.Read(a, 0)
			for c := 1; c < cells; c++ {
				if tx.Read(a, memory.Offset(c*memory.WordsPerLine)) != first {
					sealed = false
				}
			}
			return nil
		})
		if err == nil && !sealed {
			t.Fatalf("observed torn transactional state (around %d)", v0)
		}
	}
	<-done
	<-done
}
