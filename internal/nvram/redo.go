package nvram

// Redo records are the replication payload of the FaRM-style commit-backup
// protocol: after a transaction's HTM region commits, its whole write-set is
// serialized into one redo record and appended — with one-sided log-append
// WRITEs — to a redo log hosted on every backup of every partition the
// transaction touched. Shipping the FULL write-set to every destination
// (rather than each backup's slice of it) is what makes a partially
// replicated crash recoverable: any single surviving log tail reconstructs
// the whole transaction, so the promote path can re-apply the foreign
// partitions' writes to their live owners and keep cross-partition
// transactions atomic.
//
// Wire format, in words:
//
//	[txid, k,
//	  (part, epoch, table, key, inc<<32|version, gen, stamp, vw,
//	   val[0..vw-1]) × k]
//
// per update: the home partition of the key, the partition's view epoch as
// observed by the appender (the backup's fence compares it against the
// current view and rejects stale appends — zombie containment), the logical
// table, the key, the new post-commit version, the key's delete generation
// as observed by the appender, the commit stamp (soft-time; lets backup
// drains retire the superseded version into the replica's version chain, so
// a promoted backup can keep serving MVCC snapshot reads), and the value
// words.
//
// Deletes themselves never appear in the redo stream — they are shipped
// store ops applied immediately to the primary and every replica shard. The
// generation word is what keeps the two streams ordered: every delete bumps
// the key's generation, updates are stamped with the generation current at
// commit, and a drain refuses records from an older generation, so a redo
// record logged before a delete can never resurrect the key (or its stale
// value, if the key was re-inserted since).

// RedoUpdate is one write of a redo record.
type RedoUpdate struct {
	Part    int    // home partition of the key
	Epoch   uint64 // partition view epoch observed by the appender
	Table   int    // logical table ID
	Key     uint64
	Version uint32 // post-commit version (apply iff > current)
	Gen     uint64 // key's delete generation (apply iff current)
	Val     []uint64

	// Inc is the post-commit incarnation for ordered-table rows (0 for
	// unordered rows, whose entries have no liveness). Packed into the high
	// half of the version word on the wire. A drain adopts only its
	// PARITY — replica incarnation counters diverge from the primary's, so
	// the absolute number is meaningless across copies; odd means the row
	// committed live, even means it committed erased.
	Inc uint32

	// Stamp is the commit's version-chain stamp (0 when chains are off): the
	// backup drain retires the replica's superseded version at this stamp.
	Stamp uint64
}

const redoUpdateHeaderWords = 8

// RedoWords returns the encoded size in words of a record with the given
// updates (for pre-sizing buffers and cost accounting).
func RedoWords(ups []RedoUpdate) int {
	n := 2
	for i := range ups {
		n += redoUpdateHeaderWords + len(ups[i].Val)
	}
	return n
}

// EncodeRedo serializes a redo record into buf (reallocating if needed) and
// returns the encoded slice.
func EncodeRedo(buf []uint64, txid uint64, ups []RedoUpdate) []uint64 {
	n := RedoWords(ups)
	if cap(buf) < n {
		buf = make([]uint64, 0, n)
	}
	buf = buf[:0]
	buf = append(buf, txid, uint64(len(ups)))
	for i := range ups {
		u := &ups[i]
		buf = append(buf, uint64(u.Part), u.Epoch, uint64(u.Table), u.Key,
			uint64(u.Inc)<<32|uint64(u.Version), u.Gen, u.Stamp, uint64(len(u.Val)))
		buf = append(buf, u.Val...)
	}
	return buf
}

// DecodeRedo parses a redo record. Returns ok=false on a malformed frame
// (truncated tail); value slices alias rec.
func DecodeRedo(rec []uint64) (txid uint64, ups []RedoUpdate, ok bool) {
	if len(rec) < 2 {
		return 0, nil, false
	}
	txid = rec[0]
	k := int(rec[1])
	// An update needs at least its header: a count the frame cannot hold is
	// a corrupt length word, not a short tail — reject before allocating.
	if k < 0 || k > (len(rec)-2)/redoUpdateHeaderWords {
		return 0, nil, false
	}
	ups = make([]RedoUpdate, 0, k)
	off := 2
	for i := 0; i < k; i++ {
		if off+redoUpdateHeaderWords > len(rec) {
			return 0, nil, false
		}
		// Compare in uint64 space: a corrupt length word cast through int()
		// can wrap negative and sneak past an int-typed bounds check.
		if rec[off+7] > uint64(len(rec)-off-redoUpdateHeaderWords) {
			return 0, nil, false
		}
		vw := int(rec[off+7])
		ups = append(ups, RedoUpdate{
			Part:    int(rec[off]),
			Epoch:   rec[off+1],
			Table:   int(rec[off+2]),
			Key:     rec[off+3],
			Version: uint32(rec[off+4]),
			Inc:     uint32(rec[off+4] >> 32),
			Gen:     rec[off+5],
			Stamp:   rec[off+6],
			Val:     rec[off+redoUpdateHeaderWords : off+redoUpdateHeaderWords+vw],
		})
		off += redoUpdateHeaderWords + vw
	}
	return txid, ups, true
}
