package nvram

import (
	"encoding/binary"
	"testing"
)

// wordsOf reinterprets fuzz bytes as the word stream DecodeRedo consumes.
func wordsOf(data []byte) []uint64 {
	ws := make([]uint64, len(data)/8)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return ws
}

// updatesFrom derives a structured update list from fuzz bytes, exercising
// the full header — including the PR-7 delete-generation word and the
// ordered-row incarnation packed into the version word's high half.
func updatesFrom(ws []uint64) []RedoUpdate {
	var ups []RedoUpdate
	for len(ws) >= 7 {
		vw := int(ws[6] % 5)
		if len(ws) < 7+vw {
			vw = 0
		}
		ups = append(ups, RedoUpdate{
			Part:    int(ws[0] % 64),
			Epoch:   ws[1],
			Table:   int(ws[2] % 256),
			Key:     ws[3],
			Version: uint32(ws[4]),
			Inc:     uint32(ws[4] >> 32),
			Gen:     ws[5],
			Val:     append([]uint64(nil), ws[7:7+vw]...),
		})
		ws = ws[7+vw:]
	}
	return ups
}

// FuzzRedoRoundTrip checks the two halves of the redo wire format:
//
//  1. EncodeRedo∘DecodeRedo is the identity on any structured update list
//     (every header field survives, including Gen and Inc);
//  2. DecodeRedo never panics on an arbitrary word stream, and whatever it
//     does accept re-encodes to a frame it decodes identically (no
//     accept-then-corrupt frames).
func FuzzRedoRoundTrip(f *testing.F) {
	f.Add(uint64(1), []byte{})
	// One well-formed single-update frame: txid=7, count=1, then a header
	// with inc 3 packed over version 9, gen 2, two value words.
	well := make([]byte, 0, 9*8)
	for _, w := range []uint64{7, 1, 4, 11, 20, 99, 3<<32 | 9, 2, 2, 0xAA, 0xBB} {
		well = binary.LittleEndian.AppendUint64(well, w)
	}
	f.Add(uint64(7), well)
	// A frame whose count word promises more updates than the tail holds.
	trunc := make([]byte, 0, 3*8)
	for _, w := range []uint64{1, 1 << 60, 5} {
		trunc = binary.LittleEndian.AppendUint64(trunc, w)
	}
	f.Add(uint64(0), trunc)
	// An erase record: nil value, even incarnation.
	f.Add(uint64(3), binary.LittleEndian.AppendUint64(nil, 2<<32|4))

	f.Fuzz(func(t *testing.T, txid uint64, data []byte) {
		ws := wordsOf(data)

		// Half 2: arbitrary stream must decode safely, and accepted frames
		// must round-trip exactly.
		if dtx, dups, ok := DecodeRedo(ws); ok {
			re := EncodeRedo(nil, dtx, dups)
			rtx, rups, rok := DecodeRedo(re)
			if !rok || rtx != dtx {
				t.Fatalf("re-decode of accepted frame failed: ok=%v txid %d vs %d", rok, rtx, dtx)
			}
			compare(t, dups, rups)
		}

		// Half 1: structured round-trip.
		ups := updatesFrom(ws)
		enc := EncodeRedo(nil, txid, ups)
		if len(enc) != RedoWords(ups) {
			t.Fatalf("encoded length %d, RedoWords says %d", len(enc), RedoWords(ups))
		}
		gtx, gups, ok := DecodeRedo(enc)
		if !ok || gtx != txid {
			t.Fatalf("decode failed: ok=%v txid %d vs %d", ok, gtx, txid)
		}
		compare(t, ups, gups)
	})
}

func compare(t *testing.T, want, got []RedoUpdate) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("update count %d vs %d", len(got), len(want))
	}
	for i := range want {
		w, g := &want[i], &got[i]
		if w.Part != g.Part || w.Epoch != g.Epoch || w.Table != g.Table ||
			w.Key != g.Key || w.Version != g.Version || w.Inc != g.Inc || w.Gen != g.Gen {
			t.Fatalf("update %d header: %+v vs %+v", i, g, w)
		}
		if len(w.Val) != len(g.Val) {
			t.Fatalf("update %d value length %d vs %d", i, len(g.Val), len(w.Val))
		}
		for j := range w.Val {
			if w.Val[j] != g.Val[j] {
				t.Fatalf("update %d value word %d: %#x vs %#x", i, j, g.Val[j], w.Val[j])
			}
		}
	}
}
