// Package nvram emulates the battery-backed NVRAM DrTM logs to for
// durability (Section 4.6).
//
// The failure model is the paper's: machines fail-stop; a UPS flushes all
// transient state (registers, caches) to NVRAM on power failure
// ("flush-on-failure"), so everything written to a Log before the crash
// survives and is readable by recovery code on any surviving node.
//
// The subtle requirement is that DrTM's *write-ahead log* is appended
// inside the HTM region, so that "if the machine crashed before the HTM
// commit, the write-ahead log will not appear in NVRAM due to the
// all-or-nothing property of HTM". This falls out naturally here: AppendTx
// writes the log words transactionally, so they are published if and only
// if the enclosing HTM transaction commits. The lock-ahead and chopping
// logs, written before the HTM region, use the immediate Append.
package nvram

import (
	"drtm/internal/htm"
	"drtm/internal/memory"
)

// Log is a single-writer append-only record log in emulated NVRAM. Each
// worker thread owns its own logs, as in per-thread logging designs, so
// appends never contend.
type Log struct {
	arena *memory.Arena
	cap   int
}

// Layout: word 0 holds the head (next free data word); data starts at
// word 8 (its own cache line). Each record is framed as [len, payload...].
const (
	headOff memory.Offset = 0
	dataOff memory.Offset = memory.WordsPerLine
)

// NewLog allocates a log holding up to capWords words of framed records.
func NewLog(id, capWords int) *Log {
	l := &Log{cap: capWords, arena: memory.NewArena(id, int(dataOff)+capWords)}
	l.arena.UnsafeInit(headOff, []uint64{uint64(dataOff)})
	return l
}

// Arena exposes the backing arena (tests; fabric registration if a design
// wants remote log reads during recovery).
func (l *Log) Arena() *memory.Arena { return l.arena }

// AppendTx appends rec transactionally: the record becomes durable exactly
// when tx commits. Returns false when the log is full (callers treat this
// as a fatal configuration error; logs are sized for the run).
func (l *Log) AppendTx(tx *htm.Txn, rec []uint64) bool {
	head := tx.Read(l.arena, headOff)
	if int(head)+1+len(rec) > int(dataOff)+l.cap {
		return false
	}
	tx.Write(l.arena, memory.Offset(head), uint64(len(rec)))
	for i, w := range rec {
		tx.Write(l.arena, memory.Offset(head)+1+memory.Offset(i), w)
	}
	tx.Write(l.arena, headOff, head+uint64(1+len(rec)))
	return true
}

// Append appends rec immediately (durable as soon as it returns). Used for
// the lock-ahead and chopping logs written before the HTM region.
func (l *Log) Append(rec []uint64) bool {
	head := l.arena.LoadWord(headOff)
	if int(head)+1+len(rec) > int(dataOff)+l.cap {
		return false
	}
	buf := make([]uint64, 1+len(rec))
	buf[0] = uint64(len(rec))
	copy(buf[1:], rec)
	l.arena.Write(memory.Offset(head), buf)
	l.arena.StoreWord(headOff, head+uint64(len(buf)))
	return true
}

// Entries returns all records currently in the log (recovery scan).
func (l *Log) Entries() [][]uint64 {
	head := l.arena.LoadWord(headOff)
	var out [][]uint64
	off := dataOff
	for uint64(off) < head {
		n := l.arena.LoadWord(off)
		rec := make([]uint64, n)
		l.arena.Read(rec, off+1)
		out = append(out, rec)
		off += memory.Offset(1 + n)
	}
	return out
}

// Len returns the number of records.
func (l *Log) Len() int { return len(l.Entries()) }

// BytesUsed returns the durable payload footprint in bytes.
func (l *Log) BytesUsed() int {
	return int(l.arena.LoadWord(headOff)-uint64(dataOff)) * 8
}

// Truncate discards all records (checkpoint / after recovery).
func (l *Log) Truncate() {
	l.arena.StoreWord(headOff, uint64(dataOff))
}
