package nvram

import (
	"errors"
	"testing"

	"drtm/internal/htm"
)

func TestAppendAndScan(t *testing.T) {
	l := NewLog(0, 1024)
	if !l.Append([]uint64{1, 2, 3}) {
		t.Fatal("append failed")
	}
	if !l.Append([]uint64{9}) {
		t.Fatal("append failed")
	}
	got := l.Entries()
	if len(got) != 2 || len(got[0]) != 3 || got[0][2] != 3 || got[1][0] != 9 {
		t.Fatalf("entries = %v", got)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if l.BytesUsed() != (4+2)*8 {
		t.Fatalf("BytesUsed = %d", l.BytesUsed())
	}
}

func TestAppendFull(t *testing.T) {
	l := NewLog(0, 4)
	if !l.Append([]uint64{1, 2, 3}) {
		t.Fatal("first append should fit")
	}
	if l.Append([]uint64{1}) {
		t.Fatal("overfull append succeeded")
	}
}

func TestTruncate(t *testing.T) {
	l := NewLog(0, 64)
	l.Append([]uint64{1})
	l.Truncate()
	if l.Len() != 0 {
		t.Fatal("Truncate left records")
	}
	if !l.Append([]uint64{2}) {
		t.Fatal("append after truncate failed")
	}
	if l.Entries()[0][0] != 2 {
		t.Fatal("wrong record after truncate")
	}
}

// TestAppendTxCommitDurable: a transactional append is visible after commit.
func TestAppendTxCommitDurable(t *testing.T) {
	l := NewLog(0, 1024)
	eng := htm.NewEngine(htm.Config{})
	err := eng.Run(func(tx *htm.Txn) error {
		if !l.AppendTx(tx, []uint64{7, 8}) {
			t.Error("AppendTx failed")
		}
		// Before commit, the record must be invisible.
		if l.Len() != 0 {
			t.Error("uncommitted log record visible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := l.Entries()
	if len(got) != 1 || got[0][0] != 7 {
		t.Fatalf("entries after commit = %v", got)
	}
}

// TestAppendTxAbortDiscarded is the paper's key durability property: a
// crash (or abort) before XEND leaves no write-ahead log record.
func TestAppendTxAbortDiscarded(t *testing.T) {
	l := NewLog(0, 1024)
	eng := htm.NewEngine(htm.Config{})
	boom := errors.New("simulated abort before XEND")
	err := eng.Run(func(tx *htm.Txn) error {
		l.AppendTx(tx, []uint64{13})
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if l.Len() != 0 {
		t.Fatal("aborted transactional append is durable")
	}
	// The log must still accept appends afterwards at the original head.
	l.Append([]uint64{1})
	if l.Len() != 1 {
		t.Fatal("log corrupt after aborted append")
	}
}

func TestAppendTxFull(t *testing.T) {
	l := NewLog(0, 2)
	eng := htm.NewEngine(htm.Config{})
	_ = eng.Run(func(tx *htm.Txn) error {
		if l.AppendTx(tx, []uint64{1, 2, 3}) {
			t.Error("overfull AppendTx succeeded")
		}
		return nil
	})
}

func TestInterleavedTxAndImmediate(t *testing.T) {
	l := NewLog(0, 1024)
	eng := htm.NewEngine(htm.Config{})
	l.Append([]uint64{1})
	err := eng.Run(func(tx *htm.Txn) error {
		l.AppendTx(tx, []uint64{2})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]uint64{3})
	got := l.Entries()
	if len(got) != 3 || got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Fatalf("entries = %v", got)
	}
}
