package memory

// The hooks below exist for the HTM engine's commit protocol, which needs to
// hold line seqlocks across read-set validation and publication. They are
// thin exported wrappers over the internal seqlock primitives.

// TryLockLineForHTM attempts one acquisition of the line's seqlock on behalf
// of an HTM commit. On success it returns the displaced even version.
func (a *Arena) TryLockLineForHTM(l Line) (uint64, bool) { return a.tryLockLine(l) }

// UnlockLineForHTM releases a line locked via TryLockLineForHTM. If dirty,
// the version advances (dooming concurrent readers); otherwise the original
// version is restored.
func (a *Arena) UnlockLineForHTM(l Line, prev uint64, dirty bool) {
	a.unlockLine(l, prev, dirty)
}

// PublishWord stores a word on behalf of an HTM commit that already holds
// the containing line's seqlock.
func (a *Arena) PublishWord(off Offset, v uint64) {
	a.boundsCheck(off, 1)
	a.storeWord(off, v)
}
