// Package memory provides the flat, word-addressed memory substrate shared
// by the software HTM engine and the simulated RDMA fabric.
//
// Every logical node in the cluster owns one or more Arenas. An Arena is a
// slice of 64-bit words grouped into 64-byte cache lines (8 words). Each line
// carries a seqlock-style version word:
//
//   - even value  -> line is stable; the value is its version
//   - odd  value  -> a writer is publishing the line
//
// All mutators (HTM commit publication, RDMA WRITE, RDMA CAS/FAA) lock the
// line (version -> odd), mutate, and release (version -> old even + 2). All
// readers either read a single word atomically or use the seqlock protocol
// for multi-word consistency. Because both the HTM engine and the RDMA
// fabric funnel through the same version words, a one-sided RDMA operation
// conflicts with — and ultimately aborts — any in-flight HTM transaction
// that touched the same line, which is exactly the strong-atomicity /
// cache-coherence interplay the DrTM protocol relies on.
package memory

import (
	"fmt"
	"sync/atomic"
)

// WordsPerLine is the number of 64-bit words per tracked cache line (64 B).
const WordsPerLine = 8

// lineShift converts a word offset to a line index.
const lineShift = 3

// Offset addresses a word within an Arena. Offsets are in words, not bytes.
type Offset uint64

// Line identifies a cache line within an Arena.
type Line uint32

// LineOf returns the cache line containing the word offset.
func LineOf(off Offset) Line { return Line(off >> lineShift) }

// Arena is a flat region of word-addressed memory with per-line versioning.
// The zero value is not usable; create Arenas with NewArena.
type Arena struct {
	// ID distinguishes arenas of a node (e.g. KV region vs. log region).
	// It is set by the owner and never interpreted by this package.
	ID int

	words []atomic.Uint64
	vers  []atomic.Uint64 // one per line; seqlock version
}

// NewArena allocates an arena of n words (rounded up to a whole line).
func NewArena(id int, n int) *Arena {
	if n <= 0 {
		panic("memory: arena size must be positive")
	}
	lines := (n + WordsPerLine - 1) / WordsPerLine
	return &Arena{
		ID:    id,
		words: make([]atomic.Uint64, lines*WordsPerLine),
		vers:  make([]atomic.Uint64, lines),
	}
}

// Len returns the arena size in words.
func (a *Arena) Len() int { return len(a.words) }

// Lines returns the number of cache lines.
func (a *Arena) Lines() int { return len(a.vers) }

func (a *Arena) boundsCheck(off Offset, n int) {
	if int(off)+n > len(a.words) {
		panic(fmt.Sprintf("memory: access [%d,%d) out of arena %d bounds %d",
			off, int(off)+n, a.ID, len(a.words)))
	}
}

// LineVersion returns the current version word of a line. Odd means a writer
// is in flight. Used by the HTM engine for read-set validation.
func (a *Arena) LineVersion(l Line) uint64 { return a.vers[l].Load() }

// LoadWord atomically reads a single word without version tracking. Single
// words can never tear, so this is safe for non-transactional peeking (e.g.
// checking a lock word before a CAS retry loop).
func (a *Arena) LoadWord(off Offset) uint64 {
	a.boundsCheck(off, 1)
	return a.words[off].Load()
}

// storeWord writes a word without touching versions. Callers must hold the
// line lock (or be initializing memory that is not yet shared).
func (a *Arena) storeWord(off Offset, v uint64) {
	a.words[off].Store(v)
}

// UnsafeInit writes words without any synchronization or version bumps.
// It is intended for single-threaded population before the arena is shared.
func (a *Arena) UnsafeInit(off Offset, src []uint64) {
	a.boundsCheck(off, len(src))
	for i, v := range src {
		a.words[int(off)+i].Store(v)
	}
}

// lockLine spins until it acquires the line's seqlock, returning the even
// version it replaced. The spin is bounded only by writer progress; all
// writers hold lines for O(line size) time.
func (a *Arena) lockLine(l Line) uint64 {
	for {
		v := a.vers[l].Load()
		if v&1 == 0 && a.vers[l].CompareAndSwap(v, v+1) {
			return v
		}
		spinYield()
	}
}

// tryLockLine attempts a single acquisition of the line's seqlock.
// It returns the previous even version and true on success.
func (a *Arena) tryLockLine(l Line) (uint64, bool) {
	v := a.vers[l].Load()
	if v&1 != 0 {
		return 0, false
	}
	if a.vers[l].CompareAndSwap(v, v+1) {
		return v, true
	}
	return 0, false
}

// unlockLine releases a locked line, advancing its version if dirty says the
// contents changed, or restoring the original version otherwise.
func (a *Arena) unlockLine(l Line, prev uint64, dirty bool) {
	if dirty {
		a.vers[l].Store(prev + 2)
	} else {
		a.vers[l].Store(prev)
	}
}

// Read copies n=len(dst) words starting at off into dst with per-line
// seqlock consistency: each line is internally consistent, but a multi-line
// read is not atomic across lines — matching the semantics of a real
// one-sided RDMA READ, which is only guaranteed atomic per cache line.
func (a *Arena) Read(dst []uint64, off Offset) {
	a.boundsCheck(off, len(dst))
	i := 0
	for i < len(dst) {
		cur := off + Offset(i)
		l := LineOf(cur)
		// Words of this line covered by the request.
		end := (int(l) + 1) * WordsPerLine
		n := end - int(cur)
		if rem := len(dst) - i; n > rem {
			n = rem
		}
		a.readLine(l, cur, dst[i:i+n])
		i += n
	}
}

// readLine reads words of a single line under the seqlock retry protocol.
func (a *Arena) readLine(l Line, off Offset, dst []uint64) {
	for {
		v1 := a.vers[l].Load()
		if v1&1 != 0 {
			spinYield()
			continue
		}
		for i := range dst {
			dst[i] = a.words[int(off)+i].Load()
		}
		if a.vers[l].Load() == v1 {
			return
		}
		spinYield()
	}
}

// Write copies src into the arena at off non-transactionally, locking each
// affected line for the duration of its update. This is the path used by
// RDMA WRITE; the version bumps are what doom concurrent HTM readers.
func (a *Arena) Write(off Offset, src []uint64) {
	a.boundsCheck(off, len(src))
	i := 0
	for i < len(src) {
		cur := off + Offset(i)
		l := LineOf(cur)
		end := (int(l) + 1) * WordsPerLine
		n := end - int(cur)
		if rem := len(src) - i; n > rem {
			n = rem
		}
		prev := a.lockLine(l)
		for j := 0; j < n; j++ {
			a.words[int(cur)+j].Store(src[i+j])
		}
		a.unlockLine(l, prev, true)
		i += n
	}
}

// CAS atomically compares the word at off with old and, if equal, replaces
// it with new. It returns the value observed before the operation and
// whether the swap happened. The line version is bumped only on success,
// so failed CASes do not generate false HTM conflicts.
func (a *Arena) CAS(off Offset, old, new uint64) (uint64, bool) {
	a.boundsCheck(off, 1)
	l := LineOf(off)
	prev := a.lockLine(l)
	cur := a.words[off].Load()
	if cur != old {
		a.unlockLine(l, prev, false)
		return cur, false
	}
	a.words[off].Store(new)
	a.unlockLine(l, prev, true)
	return cur, true
}

// FAA atomically adds delta to the word at off and returns the prior value.
func (a *Arena) FAA(off Offset, delta uint64) uint64 {
	a.boundsCheck(off, 1)
	l := LineOf(off)
	prev := a.lockLine(l)
	cur := a.words[off].Load()
	a.words[off].Store(cur + delta)
	a.unlockLine(l, prev, true)
	return cur
}

// StoreWord atomically writes a single word non-transactionally, bumping the
// line version. Used for things like the softtime word, where the paper's
// timer thread writes outside any HTM region.
func (a *Arena) StoreWord(off Offset, v uint64) {
	a.boundsCheck(off, 1)
	l := LineOf(off)
	prev := a.lockLine(l)
	a.words[off].Store(v)
	a.unlockLine(l, prev, true)
}
