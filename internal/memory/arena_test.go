package memory

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewArenaRoundsToLine(t *testing.T) {
	a := NewArena(0, 9)
	if a.Len() != 16 {
		t.Fatalf("Len = %d, want 16", a.Len())
	}
	if a.Lines() != 2 {
		t.Fatalf("Lines = %d, want 2", a.Lines())
	}
}

func TestLineOf(t *testing.T) {
	cases := []struct {
		off  Offset
		want Line
	}{{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {1023, 127}}
	for _, c := range cases {
		if got := LineOf(c.off); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	a := NewArena(0, 64)
	src := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	a.Write(3, src) // deliberately straddles a line boundary
	dst := make([]uint64, len(src))
	a.Read(dst, 3)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestWriteBumpsVersionPerAffectedLine(t *testing.T) {
	a := NewArena(0, 32)
	v0, v1, v2 := a.LineVersion(0), a.LineVersion(1), a.LineVersion(2)
	a.Write(6, make([]uint64, 4)) // lines 0 and 1
	if a.LineVersion(0) == v0 || a.LineVersion(1) == v1 {
		t.Fatal("affected line versions did not advance")
	}
	if a.LineVersion(2) != v2 {
		t.Fatal("unaffected line version advanced")
	}
}

func TestCAS(t *testing.T) {
	a := NewArena(0, 8)
	a.UnsafeInit(2, []uint64{41})

	prev, ok := a.CAS(2, 41, 42)
	if !ok || prev != 41 {
		t.Fatalf("CAS(41->42) = (%d,%v), want (41,true)", prev, ok)
	}
	if got := a.LoadWord(2); got != 42 {
		t.Fatalf("word = %d, want 42", got)
	}

	v := a.LineVersion(0)
	prev, ok = a.CAS(2, 41, 99)
	if ok || prev != 42 {
		t.Fatalf("failed CAS = (%d,%v), want (42,false)", prev, ok)
	}
	if a.LineVersion(0) != v {
		t.Fatal("failed CAS bumped the line version")
	}
}

func TestFAA(t *testing.T) {
	a := NewArena(0, 8)
	if prev := a.FAA(0, 5); prev != 0 {
		t.Fatalf("FAA prev = %d, want 0", prev)
	}
	if prev := a.FAA(0, 3); prev != 5 {
		t.Fatalf("FAA prev = %d, want 5", prev)
	}
	if got := a.LoadWord(0); got != 8 {
		t.Fatalf("word = %d, want 8", got)
	}
}

func TestStoreWordBumpsVersion(t *testing.T) {
	a := NewArena(0, 8)
	v := a.LineVersion(0)
	a.StoreWord(1, 7)
	if a.LineVersion(0) == v {
		t.Fatal("StoreWord did not advance line version")
	}
	if a.LoadWord(1) != 7 {
		t.Fatal("StoreWord lost the value")
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	a := NewArena(0, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-bounds access")
		}
	}()
	a.LoadWord(8)
}

// TestNoTornLineReads hammers a single line with writers that always write
// a "sealed" pattern (all words equal) while readers verify they only ever
// observe sealed lines. This is the core seqlock guarantee both HTM and the
// RDMA fabric depend on.
func TestNoTornLineReads(t *testing.T) {
	a := NewArena(0, WordsPerLine)
	const writers, iters = 4, 400

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed int64) {
			defer writerWG.Done()
			r := rand.New(rand.NewSource(seed))
			buf := make([]uint64, WordsPerLine)
			for i := 0; i < iters; i++ {
				v := r.Uint64()
				for j := range buf {
					buf[j] = v
				}
				a.Write(0, buf)
			}
		}(int64(w))
	}

	stop := make(chan struct{})
	torn := make(chan struct{}, 1)
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		dst := make([]uint64, WordsPerLine)
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.Read(dst, 0)
			for j := 1; j < len(dst); j++ {
				if dst[j] != dst[0] {
					torn <- struct{}{}
					return
				}
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	select {
	case <-torn:
		t.Fatal("observed a torn line read")
	default:
	}
}

// TestQuickReadWrite is a property test: for random offsets and payloads,
// a Write followed by a Read observes exactly the payload.
func TestQuickReadWrite(t *testing.T) {
	a := NewArena(0, 1024)
	f := func(off uint16, payload []uint64) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 64 {
			payload = payload[:64]
		}
		o := Offset(int(off) % (a.Len() - len(payload)))
		a.Write(o, payload)
		dst := make([]uint64, len(payload))
		a.Read(dst, o)
		for i := range payload {
			if dst[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCASLinearizable checks that concurrent FAAs never lose updates.
func TestQuickCASLinearizable(t *testing.T) {
	a := NewArena(0, 8)
	const gs, per = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a.FAA(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := a.LoadWord(0); got != gs*per {
		t.Fatalf("lost updates: %d, want %d", got, gs*per)
	}
}

func BenchmarkArenaRead64B(b *testing.B) {
	a := NewArena(0, 1<<16)
	dst := make([]uint64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Read(dst, Offset((i*8)%(1<<15)))
	}
}

func BenchmarkArenaCAS(b *testing.B) {
	a := NewArena(0, 8)
	for i := 0; i < b.N; i++ {
		a.CAS(0, uint64(i), uint64(i+1))
	}
}
