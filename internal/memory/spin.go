package memory

import "runtime"

// spinYield backs off a spinning reader/writer. On the single-core machines
// this simulator typically runs on, yielding to the scheduler (rather than a
// PAUSE-style busy loop) is essential: the writer we are waiting on is a
// goroutine that needs our timeslice to make progress.
func spinYield() { runtime.Gosched() }
