package socialgraph_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtm"
	"drtm/internal/socialgraph"
)

func openGraph(t *testing.T, nodes, workers int, opts drtm.Options) (*drtm.DB, *socialgraph.Workload) {
	t.Helper()
	cfg := socialgraph.Config{Nodes: nodes, People: 12 * nodes}
	opts.Nodes = nodes
	opts.WorkersPerNode = workers
	db := drtm.MustOpen(opts, cfg.Partitioner())
	w, err := socialgraph.Setup(db.RT, cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db, w
}

func TestSetupRingIsSymmetric(t *testing.T) {
	db, w := openGraph(t, 2, 1, drtm.Options{})
	defer db.Close()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.Get(socialgraph.TableEdges, socialgraph.EdgeKey(0, 1)); !ok || v[1] != 1 {
		t.Fatalf("seed edge 0->1 = %v,%v", v, ok)
	}
}

func TestBefriendUnfriendKeepSymmetry(t *testing.T) {
	db, w := openGraph(t, 2, 1, drtm.Options{})
	defer db.Close()
	cl := w.NewClient(db.Executor(0, 0), 1)
	for i := 0; i < 600; i++ {
		if err := cl.RunOne(); err != nil && !errors.Is(err, drtm.ErrRetry) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
	if cl.Counts["befriend"] == 0 || cl.Counts["unfriend"] == 0 || cl.Counts["check-snapshot"] == 0 {
		t.Fatalf("mix too narrow: %v", cl.Counts)
	}
}

// The social-graph snapshot checker (satellite): RO scans must never
// observe a half-applied friendship — every edge seen carries a live
// reverse edge with the same pair stamp, within one confirmed RO
// transaction, while writers befriend/unfriend concurrently across
// partitions. Run with -race.
func TestScanSnapshotUnderConcurrentWriters(t *testing.T) {
	const nodes, workers = 3, 2
	db, w := openGraph(t, nodes, workers, drtm.Options{FaultSeed: 3})
	defer db.Close()
	db.InjectNodeFaults(1, drtm.FaultRule{FailProb: 0.01})

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
		checks     atomic.Int64
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(300+n*workers+wk))
			checker := wk == workers-1
			wg.Add(1)
			go func(cl *socialgraph.Client, checker bool) {
				defer wg.Done()
				person := uint64(0)
				for {
					select {
					case <-stop:
						return
					default:
					}
					var err error
					if checker {
						person = (person + 1) % uint64(w.Cfg.People)
						err = cl.CheckSnapshotRO(person)
						checks.Add(1)
					} else {
						err = cl.RunOne()
					}
					if err != nil && !errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(cl, checker)
		}
	}
	time.Sleep(80 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	if checks.Load() == 0 {
		t.Fatal("checker lanes never ran")
	}
	db.ClearFaults()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}

// Symmetry also survives a mid-run crash and hot failover: the promoted
// backup's replica shards must hold a symmetric edge set. Run with -race.
func TestSymmetryAcrossFailover(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		victim  = 2
	)
	db, w := openGraph(t, nodes, workers, drtm.Options{
		Durability:        true,
		ReplicationFactor: 1,
		FaultSeed:         13,
	})
	defer db.Close()

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(400+n*workers+wk))
			checker := wk == workers-1
			wg.Add(1)
			go func(n int, cl *socialgraph.Client, checker bool) {
				defer wg.Done()
				person := uint64(n)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					var err error
					if checker {
						person = (person + 1) % uint64(w.Cfg.People)
						err = cl.CheckSnapshotRO(person)
					} else {
						err = cl.RunOne()
					}
					if err != nil && !errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(n, cl, checker)
		}
	}

	time.Sleep(25 * time.Millisecond)
	db.Crash(victim)
	rep := db.Failover(victim)
	if !rep.Promoted {
		t.Fatalf("failover did not promote: %+v", rep)
	}
	time.Sleep(25 * time.Millisecond)

	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The MVCC snapshot checker lane (satellite): CheckSnapshotRO runs through
// PolicyMVCC — a friendship commit writes both edge directions, so a
// snapshot scan observing one direction without its reverse (or mismatched
// pair stamps) is half a multi-row commit — under verb faults and a
// mid-run crash + hot failover (ReplicationFactor=1), so promoted replica
// shards serve snapshot scans from their redo-maintained version chains.
// Run with -race.
func TestMVCCSnapshotAcrossFailover(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		victim  = 2
	)
	db, w := openGraph(t, nodes, workers, drtm.Options{
		Durability:        true,
		ReplicationFactor: 1,
		FaultSeed:         19,
		ReadPolicy:        drtm.PolicyMVCC,
	})
	defer db.Close()
	db.InjectNodeFaults(0, drtm.FaultRule{FailProb: 0.005})

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
		checks     atomic.Int64
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(600+n*workers+wk))
			checker := wk == workers-1
			wg.Add(1)
			go func(n int, cl *socialgraph.Client, checker bool) {
				defer wg.Done()
				person := uint64(n)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					var err error
					if checker {
						person = (person + 1) % uint64(w.Cfg.People)
						err = cl.CheckSnapshotRO(person)
						checks.Add(1)
					} else {
						err = cl.RunOne()
					}
					if err != nil && !errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(n, cl, checker)
		}
	}

	time.Sleep(25 * time.Millisecond)
	db.Crash(victim)
	rep := db.Failover(victim)
	if !rep.Promoted {
		t.Fatalf("failover did not promote: %+v", rep)
	}
	time.Sleep(25 * time.Millisecond)

	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	if checks.Load() == 0 {
		t.Fatal("checker lanes never ran")
	}
	if db.Stats().MVCCReads == 0 {
		t.Fatal("checker lane never resolved a snapshot read over the chains")
	}
	db.ClearFaults()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}
