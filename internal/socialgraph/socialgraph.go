// Package socialgraph is a scan-heavy workload over one ordered table of
// friendship edges, built to pin the "a read-only scan sees a snapshot"
// guarantee of the RO confirm wave.
//
// Schema: a single EDGES table keyed by owner<<32|friend (SegShift 32, so
// one person's adjacency list is one stamp segment and a scan of it
// validates precisely against inserts into that list). The value is
// [pair_stamp, peer]: both directed edges of a friendship carry the same
// pair_stamp, written atomically by one transaction.
//
// Invariant (the satellite checker): any read-only transaction that scans
// a person's adjacency list and point-reads each reverse edge must see,
// for every live edge (a,b), a live reverse edge (b,a) with the SAME
// pair_stamp — i.e. no half-applied Befriend/Unfriend is ever visible to a
// confirmed RO snapshot, even though the two edges usually live on
// different partitions.
package socialgraph

import (
	"fmt"
	"math/rand"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/tx"
)

// TableEdges holds directed friendship edges keyed owner<<32|friend.
const TableEdges = 30

// EdgeKey builds the directed edge key for owner -> friend.
func EdgeKey(owner, friend uint64) uint64 { return owner<<32 | friend }

// Config sizes the graph.
type Config struct {
	Nodes  int
	People int // person ids 0..People-1
}

// DefaultConfig spreads 16 people per node.
func DefaultConfig(nodes int) Config { return Config{Nodes: nodes, People: 16 * nodes} }

// Partitioner routes an edge to its owner's partition, so one person's
// adjacency list is contiguous on one node and a friendship's two edges
// usually span two.
func (c Config) Partitioner() tx.Partitioner {
	return func(table int, key uint64) int {
		if table != TableEdges {
			panic(fmt.Sprintf("socialgraph: unknown table %d", table))
		}
		return int(key>>32) % c.Nodes
	}
}

// Workload owns the populated edge table.
type Workload struct {
	Cfg Config
	rt  *tx.Runtime
}

// Setup defines the edge table on an existing runtime (whose partitioner
// must be cfg.Partitioner()) and seeds a friendship ring 0-1-2-...-0, each
// pair stamped uniquely.
func Setup(rt *tx.Runtime, cfg Config) (*Workload, error) {
	if cfg.People < 3 {
		return nil, fmt.Errorf("socialgraph: need at least 3 people, have %d", cfg.People)
	}
	rt.DefineOrderedSeg(TableEdges, 64*cfg.People, 2, 32)
	w := &Workload{Cfg: cfg, rt: rt}
	for i := 0; i < cfg.People; i++ {
		a, b := uint64(i), uint64((i+1)%cfg.People)
		if err := w.loadEdge(a, b, uint64(1000+i)); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// loadEdge bulk-inserts both directed edges of one friendship on their home
// shards and every backup's replica shard.
func (w *Workload) loadEdge(a, b, stamp uint64) error {
	for _, e := range [2][3]uint64{{a, b, stamp}, {b, a, stamp}} {
		part := int(e[0]) % w.Cfg.Nodes
		shards := []*kvs.Ordered{w.rt.C.Node(part).Ordered(TableEdges)}
		for _, bk := range w.rt.C.Backups(nil, part) {
			rep, ok := w.rt.C.Node(bk).OrderedRegion(cluster.ReplicaRegion(part, TableEdges))
			if !ok {
				return fmt.Errorf("socialgraph: missing replica shard for partition %d on node %d", part, bk)
			}
			shards = append(shards, rep)
		}
		for _, sh := range shards {
			if err := sh.Insert(EdgeKey(e[0], e[1]), []uint64{e[2], e[1]}); err != nil {
				return fmt.Errorf("socialgraph: load edge %d->%d: %w", e[0], e[1], err)
			}
		}
	}
	return nil
}

// Client issues graph transactions from one worker.
type Client struct {
	w     *Workload
	e     *tx.Executor
	rng   *rand.Rand
	stamp uint64
	// Counts of committed ops by name.
	Counts map[string]int64
}

// NewClient binds a client to an executor. Seeds must differ across clients
// (they namespace the pair stamps).
func (w *Workload) NewClient(e *tx.Executor, seed int64) *Client {
	return &Client{w: w, e: e, rng: rand.New(rand.NewSource(seed)),
		stamp: uint64(seed) << 32, Counts: map[string]int64{}}
}

func (c *Client) pair() (uint64, uint64) {
	a := uint64(c.rng.Intn(c.w.Cfg.People))
	b := uint64(c.rng.Intn(c.w.Cfg.People - 1))
	if b >= a {
		b++
	}
	return a, b
}

// RunOne draws one transaction from the mix: scan-heavy, per the workload's
// role in the paper reproduction (RO transactions dominate).
func (c *Client) RunOne() error {
	var name string
	var err error
	a, b := c.pair()
	switch r := c.rng.Intn(100); {
	case r < 35:
		name, err = "befriend", c.Befriend(a, b)
	case r < 60:
		name, err = "unfriend", c.Unfriend(a, b)
	default:
		name, err = "check-snapshot", c.CheckSnapshotRO(a)
	}
	if err == nil {
		c.Counts[name]++
	}
	return err
}

// ordered returns the friendship's two directed edges in global key order —
// both Befriend and Unfriend stage in this order, so two writers racing on
// the same pair collide on the first edge instead of deadlocking.
func ordered(a, b uint64) [2][2]uint64 {
	if EdgeKey(a, b) < EdgeKey(b, a) {
		return [2][2]uint64{{a, b}, {b, a}}
	}
	return [2][2]uint64{{b, a}, {a, b}}
}

// Befriend inserts both directed edges with a fresh shared pair stamp in
// one transaction. An existing edge means the friendship (or a racing
// Befriend) already won: a clean no-op.
func (c *Client) Befriend(a, b uint64) error {
	c.stamp++
	stamp := c.stamp
	err := c.e.Exec(func(t *tx.Tx) error {
		for _, e := range ordered(a, b) {
			if err := t.WInsert(TableEdges, EdgeKey(e[0], e[1]), []uint64{stamp, e[1]}); err != nil {
				if err == kvs.ErrExists {
					return tx.ErrUserAbort
				}
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrUserAbort {
		return nil
	}
	return err
}

// Unfriend erases both directed edges in one transaction. A missing edge
// means the friendship doesn't exist (or a racing Unfriend won): no-op.
func (c *Client) Unfriend(a, b uint64) error {
	err := c.e.Exec(func(t *tx.Tx) error {
		for _, e := range ordered(a, b) {
			if _, err := t.Erase(TableEdges, EdgeKey(e[0], e[1])); err != nil {
				if err == tx.ErrNotFound {
					return tx.ErrUserAbort
				}
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrUserAbort {
		return nil
	}
	return err
}

// CheckSnapshotRO is the live invariant checker: one RO transaction scans
// a's adjacency list and point-reads the reverse of every edge found. Both
// the scan and the reads confirm together, so a passing confirm wave
// asserts a single snapshot — a missing reverse edge or a stamp mismatch
// inside it is a half-applied friendship leaking into a reader.
func (c *Client) CheckSnapshotRO(a uint64) error {
	var violation error
	err := c.e.ExecRO(func(ro *tx.RO) error {
		violation = nil
		rows, err := ro.Scan(TableEdges, EdgeKey(a, 0), EdgeKey(a, 0xFFFFFFFF), 0)
		if err != nil {
			return err
		}
		for _, r := range rows {
			b, stamp := r.Val[1], r.Val[0]
			rev, err := ro.Read(TableEdges, EdgeKey(b, a))
			if err == tx.ErrNotFound {
				violation = fmt.Errorf("socialgraph: edge %d->%d live (stamp %d) but reverse missing",
					a, b, stamp)
				return nil
			}
			if err != nil {
				return err
			}
			if rev[0] != stamp {
				violation = fmt.Errorf("socialgraph: pair %d<->%d stamp mismatch: %d vs %d",
					a, b, stamp, rev[0])
				return nil
			}
		}
		return nil
	})
	if err != nil {
		return nil // retry budget exhausted under contention: not a verdict
	}
	return violation
}

// shardFor resolves a partition's current edge shard under the view.
func (w *Workload) shardFor(part int) (*kvs.Ordered, error) {
	node, region := part, TableEdges
	if owner := w.rt.C.OwnerOf(part); owner != part {
		node, region = owner, cluster.ReplicaRegion(part, TableEdges)
	}
	o, ok := w.rt.C.Node(node).OrderedRegion(region)
	if !ok {
		return nil, fmt.Errorf("socialgraph: no edge shard for partition %d", part)
	}
	return o, nil
}

// Audit is the quiesced symmetry check, routed by the current view: every
// live directed edge must have a live reverse with the same pair stamp.
func (w *Workload) Audit() error {
	live := make([]map[uint64][]uint64, w.Cfg.Nodes)
	for part := 0; part < w.Cfg.Nodes; part++ {
		o, err := w.shardFor(part)
		if err != nil {
			return err
		}
		live[part] = liveEdges(o)
	}
	for part, edges := range live {
		for k, v := range edges {
			a, b, stamp := k>>32, k&0xFFFFFFFF, v[0]
			if int(a)%w.Cfg.Nodes != part {
				return fmt.Errorf("socialgraph: edge %d->%d on wrong partition %d", a, b, part)
			}
			rev, ok := live[int(b)%w.Cfg.Nodes][EdgeKey(b, a)]
			if !ok {
				return fmt.Errorf("socialgraph: edge %d->%d live (stamp %d) but reverse missing", a, b, stamp)
			}
			if rev[0] != stamp {
				return fmt.Errorf("socialgraph: pair %d<->%d stamp mismatch: %d vs %d", a, b, stamp, rev[0])
			}
		}
	}
	return nil
}

// liveEdges walks one shard and returns its live rows. Quiesce-only.
func liveEdges(o *kvs.Ordered) map[uint64][]uint64 {
	out := map[uint64][]uint64{}
	arena := o.Arena()
	vw := o.ValueWords()
	o.Scan(0, ^uint64(0), func(k uint64, off memory.Offset) bool {
		if kvs.Live(kvs.Incarnation(arena.LoadWord(kvs.IncVerOffset(off)))) {
			val := make([]uint64, vw)
			arena.Read(val, kvs.ValueOffset(off))
			out[k] = val
		}
		return true
	})
	return out
}
