package kvs

import (
	"drtm/internal/memory"
	"drtm/internal/rdma"
)

// Entry is a decoded key-value entry as fetched by a remote reader.
type Entry struct {
	Key         uint64
	Incarnation uint32
	Version     uint32
	State       uint64
	Value       []uint64
}

// Loc is a remotely usable record location: the entry offset inside the
// owner's table arena plus the lossy incarnation the locator observed, for
// incarnation checking on the subsequent data read.
type Loc struct {
	Off   memory.Offset
	Lossy uint64
}

// LookupRemote walks key's bucket chain with one-sided RDMA READs (one READ
// fetches a whole 8-slot bucket, Section 5.2) and returns the entry
// location. It never touches the host CPU. If cache is non-nil the walk
// consults and fills the location cache, which turns repeat lookups into
// zero-RDMA operations (Section 5.3).
func (t *Table) LookupRemote(qp *rdma.QP, cache Cache, key uint64) (Loc, bool) {
	loc, ok, err := t.LookupRemoteE(qp, cache, key)
	if err != nil {
		panic(err) // fault-free harness; fault-aware callers use LookupRemoteE
	}
	return loc, ok
}

// LookupRemoteE is LookupRemote for fault-aware callers: an injected verb
// fault or a crashed host surfaces as the error instead of a panic.
func (t *Table) LookupRemoteE(qp *rdma.QP, cache Cache, key uint64) (Loc, bool, error) {
	idx := t.bucketOf(key)
	off := t.MainBucketOffset(idx)
	tag := mainTag(idx)
	var buf [BucketWords]uint64

	for depth := 0; depth < maxChain; depth++ {
		var words []uint64
		if cache != nil {
			if cached, ok := cache.get(tag); ok {
				words = cached
			}
		}
		if words == nil {
			if err := qp.TryRead(t.cfg.Node, t.cfg.RegionID, off, buf[:]); err != nil {
				return Loc{}, false, err
			}
			words = buf[:]
			if cache != nil {
				cache.put(tag, words)
			}
		}

		loc, found, next := decodeBucket(words, key)
		if found {
			return loc, true, nil
		}
		if next == 0 {
			return Loc{}, false, nil
		}
		off = next
		tag = indirTag(uint64(next))
	}
	return Loc{}, false, nil
}

// decodeBucket scans one bucket image for key: the entry's location if the
// bucket holds it, and the chain's next indirect bucket offset (0 at chain
// end). Shared by the sync chain walk and the batched lockstep walk.
func decodeBucket(words []uint64, key uint64) (loc Loc, found bool, next memory.Offset) {
	for s := 0; s < SlotsPerBucket; s++ {
		w0 := words[s*SlotWords]
		switch SlotType(w0) {
		case TypeEntry:
			if words[s*SlotWords+1] == key {
				return Loc{Off: SlotOffset(w0), Lossy: SlotLossyInc(w0)}, true, 0
			}
		case TypeHeader:
			next = SlotOffset(w0)
		}
	}
	return Loc{}, false, next
}

// maxChain bounds bucket-chain walks against corrupted links.
const maxChain = 64

// ReadEntryRemote fetches and decodes the entry at loc with one one-sided
// READ. ok is false when incarnation checking fails — the entry died or was
// reused since the location was cached — in which case the caller should
// invalidate and re-look-up through the host structures.
func (t *Table) ReadEntryRemote(qp *rdma.QP, key uint64, loc Loc) (Entry, bool) {
	e, ok, err := t.ReadEntryRemoteE(qp, key, loc)
	if err != nil {
		panic(err)
	}
	return e, ok
}

// ReadEntryRemoteE is ReadEntryRemote with verb faults surfaced as errors.
func (t *Table) ReadEntryRemoteE(qp *rdma.QP, key uint64, loc Loc) (Entry, bool, error) {
	words := make([]uint64, EntryValueWord+t.cfg.ValueWords)
	if err := qp.TryRead(t.cfg.Node, t.cfg.RegionID, loc.Off, words); err != nil {
		return Entry{}, false, err
	}
	e, ok := t.DecodeEntry(words, key, loc)
	return e, ok, nil
}

// GetRemote is the full remote GET: locate (through the cache when given)
// then read, with incarnation-check retry. It is the operation measured in
// Figure 10(b)/(c).
func (t *Table) GetRemote(qp *rdma.QP, cache Cache, key uint64) (Entry, bool) {
	e, ok, err := t.GetRemoteE(qp, cache, key)
	if err != nil {
		panic(err)
	}
	return e, ok
}

// GetRemoteE is GetRemote with verb faults surfaced as errors.
func (t *Table) GetRemoteE(qp *rdma.QP, cache Cache, key uint64) (Entry, bool, error) {
	for attempt := 0; attempt < 3; attempt++ {
		loc, ok, err := t.LookupRemoteE(qp, cache, key)
		if err != nil {
			return Entry{}, false, err
		}
		if !ok {
			// A cached chain may be stale (e.g. the key moved into a new
			// indirect bucket): drop it and retry uncached once.
			if cache != nil {
				cacheInvalidateChain(cache, t, key)
				cache = nil
				continue
			}
			return Entry{}, false, nil
		}
		e, ok, err := t.ReadEntryRemoteE(qp, key, loc)
		if err != nil {
			return Entry{}, false, err
		}
		if ok {
			return e, true, nil
		}
		if cache != nil {
			cacheInvalidateChain(cache, t, key)
		}
	}
	return Entry{}, false, nil
}

// StateOffset returns the arena offset of the Figure 4 state word of the
// entry at off — the word remote transactions CAS to lock/lease the record.
func StateOffset(off memory.Offset) memory.Offset { return off + EntryStateWord }

// IncVerOffset returns the arena offset of the incarnation|version word.
func IncVerOffset(off memory.Offset) memory.Offset { return off + EntryIncVerWord }

// ValueOffset returns the arena offset of the first value word.
func ValueOffset(off memory.Offset) memory.Offset { return off + EntryValueWord }
