// Package kvs implements DrTM-KV, the HTM/RDMA-friendly cluster-chaining
// hash table of Section 5, plus its location-based host-transparent cache.
//
// Memory layout (Figure 9), all inside one word arena per table so that
// every structure is reachable by one-sided RDMA:
//
//	[ main header buckets | indirect header bucket pool | entry pool ]
//
// A bucket holds 8 header slots of 16 bytes (2 words):
//
//	word 0: type(2) | lossy incarnation(14) | offset(48)
//	word 1: key(64)
//
// An entry (line-aligned) is:
//
//	word 0: key
//	word 1: incarnation(32) | version(32)
//	word 2: state          (the Figure 4 lock/lease word)
//	word 3…: value         (fixed number of words per table)
//
// Local operations (READ/WRITE/INSERT/DELETE) run inside HTM transactions,
// which is what lets the design drop Pilaf's checksums and FaRM's
// per-cacheline versions: any racing access simply aborts the HTM region.
// Remote GET walks buckets with one-sided READs; remote PUT writes the
// entry with one-sided WRITEs under the entry's state lock; INSERT/DELETE
// are shipped to the host with SEND/RECV verbs and executed there inside an
// HTM region (footnote 5 of the paper).
package kvs

import "drtm/internal/memory"

// Slot type codes.
const (
	TypeFree   uint64 = 0 // slot unused
	TypeEntry  uint64 = 1 // offset points at a key-value entry
	TypeHeader uint64 = 2 // offset points at an indirect header bucket
	TypeCached uint64 = 3 // (cache only) offset is a local cache index
)

// Bucket geometry.
const (
	SlotsPerBucket = 8
	SlotWords      = 2
	BucketWords    = SlotsPerBucket * SlotWords // 16 words = 128 B
)

// Entry word indices relative to the entry offset.
//
// The incarnation|version word doubles as the speculative read arm's
// validation anchor: every committed write — HTM-local (Table.WriteTx /
// tx.Local.Write), remote write-back, and the software fallback's publish —
// bumps the 32-bit version while holding the entry's write protection, so a
// reader that observes an unchanged version word with an unlocked state word
// has observed a stable `version ‖ state ‖ value` image. Keeping it adjacent
// to the state word lets one 2-word READ (see PostHeaderRead) fetch both.
const (
	EntryKeyWord    = 0
	EntryIncVerWord = 1
	EntryStateWord  = 2
	EntryValueWord  = 3

	// EntryHeaderWords spans the incarnation|version and state words — the
	// window re-READ by speculative commit-time validation.
	EntryHeaderWords = 2
)

// slot word 0 packing: type in bits 63..62, lossy incarnation in bits
// 61..48, offset in bits 47..0.
const (
	slotTypeShift  = 62
	slotLossyShift = 48
	slotLossyMask  = (uint64(1) << 14) - 1
	slotOffsetMask = (uint64(1) << 48) - 1
	// LossyBits is how many incarnation bits a header slot can carry.
	LossyBits = 14
)

// PackSlot builds a header-slot word 0.
func PackSlot(typ uint64, lossyInc uint64, off memory.Offset) uint64 {
	return typ<<slotTypeShift | (lossyInc&slotLossyMask)<<slotLossyShift |
		uint64(off)&slotOffsetMask
}

// SlotType extracts the slot type.
func SlotType(w0 uint64) uint64 { return w0 >> slotTypeShift }

// SlotLossyInc extracts the 14-bit lossy incarnation.
func SlotLossyInc(w0 uint64) uint64 { return (w0 >> slotLossyShift) & slotLossyMask }

// SlotOffset extracts the 48-bit word offset.
func SlotOffset(w0 uint64) memory.Offset {
	return memory.Offset(w0 & slotOffsetMask)
}

// PackIncVer combines the 32-bit incarnation and version fields.
func PackIncVer(inc, ver uint32) uint64 { return uint64(inc)<<32 | uint64(ver) }

// Incarnation extracts the 32-bit full incarnation. Odd means live:
// INSERT and DELETE each increment it, starting from zero.
func Incarnation(w uint64) uint32 { return uint32(w >> 32) }

// Version extracts the 32-bit write version (bumped by every WRITE; used to
// order updates during recovery).
func Version(w uint64) uint32 { return uint32(w) }

// Live reports whether an incarnation value denotes a live entry.
func Live(inc uint32) bool { return inc%2 == 1 }

// mix64 is a splitmix64 finalizer used as the bucket hash.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
