// Package kvs implements DrTM-KV, the HTM/RDMA-friendly cluster-chaining
// hash table of Section 5, plus its location-based host-transparent cache.
//
// Memory layout (Figure 9), all inside one word arena per table so that
// every structure is reachable by one-sided RDMA:
//
//	[ main header buckets | indirect header bucket pool | entry pool ]
//
// A bucket holds 8 header slots of 16 bytes (2 words):
//
//	word 0: type(2) | lossy incarnation(14) | offset(48)
//	word 1: key(64)
//
// An entry (line-aligned) is:
//
//	word 0: key
//	word 1: incarnation(32) | version(32)
//	word 2: state          (the Figure 4 lock/lease word)
//	word 3…: value         (fixed number of words per table)
//
// Local operations (READ/WRITE/INSERT/DELETE) run inside HTM transactions,
// which is what lets the design drop Pilaf's checksums and FaRM's
// per-cacheline versions: any racing access simply aborts the HTM region.
// Remote GET walks buckets with one-sided READs; remote PUT writes the
// entry with one-sided WRITEs under the entry's state lock; INSERT/DELETE
// are shipped to the host with SEND/RECV verbs and executed there inside an
// HTM region (footnote 5 of the paper).
package kvs

import "drtm/internal/memory"

// Slot type codes.
const (
	TypeFree   uint64 = 0 // slot unused
	TypeEntry  uint64 = 1 // offset points at a key-value entry
	TypeHeader uint64 = 2 // offset points at an indirect header bucket
	TypeCached uint64 = 3 // (cache only) offset is a local cache index
)

// Bucket geometry.
const (
	SlotsPerBucket = 8
	SlotWords      = 2
	BucketWords    = SlotsPerBucket * SlotWords // 16 words = 128 B
)

// Entry word indices relative to the entry offset.
//
// The incarnation|version word doubles as the speculative read arm's
// validation anchor: every committed write — HTM-local (Table.WriteTx /
// tx.Local.Write), remote write-back, and the software fallback's publish —
// bumps the 32-bit version while holding the entry's write protection, so a
// reader that observes an unchanged version word with an unlocked state word
// has observed a stable `version ‖ state ‖ value` image. Keeping it adjacent
// to the state word lets one 2-word READ (see PostHeaderRead) fetch both.
const (
	EntryKeyWord    = 0
	EntryIncVerWord = 1
	EntryStateWord  = 2
	EntryValueWord  = 3

	// EntryHeaderWords spans the incarnation|version and state words — the
	// window re-READ by speculative commit-time validation.
	EntryHeaderWords = 2
)

// slot word 0 packing: type in bits 63..62, lossy incarnation in bits
// 61..48, offset in bits 47..0.
const (
	slotTypeShift  = 62
	slotLossyShift = 48
	slotLossyMask  = (uint64(1) << 14) - 1
	slotOffsetMask = (uint64(1) << 48) - 1
	// LossyBits is how many incarnation bits a header slot can carry.
	LossyBits = 14
)

// PackSlot builds a header-slot word 0.
func PackSlot(typ uint64, lossyInc uint64, off memory.Offset) uint64 {
	return typ<<slotTypeShift | (lossyInc&slotLossyMask)<<slotLossyShift |
		uint64(off)&slotOffsetMask
}

// SlotType extracts the slot type.
func SlotType(w0 uint64) uint64 { return w0 >> slotTypeShift }

// SlotLossyInc extracts the 14-bit lossy incarnation.
func SlotLossyInc(w0 uint64) uint64 { return (w0 >> slotLossyShift) & slotLossyMask }

// SlotOffset extracts the 48-bit word offset.
func SlotOffset(w0 uint64) memory.Offset {
	return memory.Offset(w0 & slotOffsetMask)
}

// PackIncVer combines the 32-bit incarnation and version fields.
func PackIncVer(inc, ver uint32) uint64 { return uint64(inc)<<32 | uint64(ver) }

// Incarnation extracts the 32-bit full incarnation. Odd means live:
// INSERT and DELETE each increment it, starting from zero.
func Incarnation(w uint64) uint32 { return uint32(w >> 32) }

// Version extracts the 32-bit write version (bumped by every WRITE; used to
// order updates during recovery).
func Version(w uint64) uint32 { return uint32(w) }

// Live reports whether an incarnation value denotes a live entry.
func Live(inc uint32) bool { return inc%2 == 1 }

// mix64 is a splitmix64 finalizer used as the bucket hash.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Version chains (the MVCC snapshot-read arm).
//
// When a table is built with ChainDepth > 0, every entry's footprint grows a
// fixed-depth ring of retired versions plus a two-word tail, all inside the
// entry's contiguous line-aligned span so ONE one-sided READ fetches the
// whole image:
//
//	word 0:            key
//	word 1:            incarnation|version        (the "head")
//	word 2:            state
//	word 3…3+vw-1:     current value
//	then depth slots:  [stamp, incarnation|version, value…]   (ring)
//	then the tail:     [stamp, incarnation|version]
//
// The tail's stamp is the soft-clock time at which the CURRENT version
// committed; a slot's stamp is the time its (now retired) version committed.
// Per entry, stamps strictly increase (writers clamp), so "the version
// current at snapshot time S" is simply the stamped version with the largest
// stamp ≤ S — the current one if tailStamp ≤ S, else a ring slot, else the
// chain is truncated below S and the reader must fall back to the RO
// confirm-wave scheme.
//
// The duplicated incarnation|version in the tail is the torn-read detector.
// Arena reads (like real RDMA READs) are only per-cacheline consistent, and
// an entry+chain image spans several lines read in ascending order. Every
// writer therefore publishes in this order: tail first (the dirty marker),
// then ring slot and value, then the head word last. A reader that observes
// head == tailIncVer has observed a quiescent image: had any writer been
// active between the head read (first line) and the tail read (last line),
// the tail would already carry the next version while the head still showed
// the old one — or the head the new one while a later writer re-dirtied the
// tail. HTM-committed writes lock every affected line for the whole publish,
// which degenerates to the same check. On mismatch the MVCC reader falls
// back; it never retries in place (that would be a second wave).
const (
	// ChainStampWord and ChainIncVerWord index within one ring slot.
	ChainStampWord  = 0
	ChainIncVerWord = 1
	ChainValueWord  = 2

	// TailStampWord and TailIncVerWord index within the tail pair.
	TailStampWord  = 0
	TailIncVerWord = 1
	TailWords      = 2
)

// ChainSlotWords is the footprint of one ring slot for a vw-word value.
func ChainSlotWords(vw int) int { return ChainValueWord + vw }

// ChainWords is the total chain footprint (ring + tail) appended to an
// entry; zero when chains are disabled.
func ChainWords(vw, depth int) int {
	if depth <= 0 {
		return 0
	}
	return depth*ChainSlotWords(vw) + TailWords
}

// EntryImageWords is the word count of a full entry+chain image — the span
// an MVCC reader fetches in one READ.
func EntryImageWords(vw, depth int) int {
	return EntryValueWord + vw + ChainWords(vw, depth)
}

// ChainSlotOffset returns the arena offset of ring slot i of the entry at
// off.
func ChainSlotOffset(off memory.Offset, vw, i int) memory.Offset {
	return off + memory.Offset(EntryValueWord+vw+i*ChainSlotWords(vw))
}

// TailOffset returns the arena offset of the entry's tail pair.
func TailOffset(off memory.Offset, vw, depth int) memory.Offset {
	return off + memory.Offset(EntryValueWord+vw+depth*ChainSlotWords(vw))
}

// ChainSlotIndex picks the ring slot that version v retires into.
func ChainSlotIndex(v uint32, depth int) int { return int(v) % depth }

// ResolveStatus classifies one ResolveAtStamp outcome.
type ResolveStatus uint8

const (
	// ResolveCurrent: the entry's current version committed at or before the
	// stamp; Value/IncVer describe it.
	ResolveCurrent ResolveStatus = iota
	// ResolveRetired: a ring slot holds the version current at the stamp.
	ResolveRetired
	// ResolveDead: the version current at the stamp was a dead incarnation —
	// the key did not exist at the stamp.
	ResolveDead
	// ResolveTruncated: every retained version committed after the stamp
	// (or the entry predates chain stamping); the reader must fall back.
	ResolveTruncated
	// ResolveInconsistent: the image failed the head/tail (or key) check —
	// a writer raced the READ; the reader must fall back.
	ResolveInconsistent
)

// Resolved is the outcome of resolving one entry image at a stamp.
type Resolved struct {
	Status ResolveStatus
	IncVer uint64   // incarnation|version of the resolved version
	Value  []uint64 // aliases the image; empty for Dead/Truncated/Inconsistent
}

// ResolveAtStamp resolves an entry+chain image (EntryImageWords long) to the
// version current at snapshot stamp s. key guards against stale locations
// and entry reuse; pass the key the image was looked up under.
func ResolveAtStamp(img []uint64, vw, depth int, key, s uint64) Resolved {
	tail := EntryValueWord + vw + depth*ChainSlotWords(vw)
	head := img[EntryIncVerWord]
	if img[EntryKeyWord] != key || head != img[tail+TailIncVerWord] {
		return Resolved{Status: ResolveInconsistent}
	}
	ts := img[tail+TailStampWord]
	if ts == 0 {
		return Resolved{Status: ResolveTruncated}
	}
	if ts <= s {
		if !Live(Incarnation(head)) {
			return Resolved{Status: ResolveDead, IncVer: head}
		}
		return Resolved{Status: ResolveCurrent, IncVer: head,
			Value: img[EntryValueWord : EntryValueWord+vw]}
	}
	// The current version is too new: the version current at s is the
	// stamped slot with the largest stamp ≤ s.
	sw := ChainSlotWords(vw)
	best := -1
	var bestStamp uint64
	for i := 0; i < depth; i++ {
		so := EntryValueWord + vw + i*sw
		st := img[so+ChainStampWord]
		if st != 0 && st <= s && st >= bestStamp {
			best, bestStamp = so, st
		}
	}
	if best < 0 {
		return Resolved{Status: ResolveTruncated}
	}
	iv := img[best+ChainIncVerWord]
	if !Live(Incarnation(iv)) {
		return Resolved{Status: ResolveDead, IncVer: iv}
	}
	return Resolved{Status: ResolveRetired, IncVer: iv,
		Value: img[best+ChainValueWord : best+ChainValueWord+vw]}
}

// ClampStamp returns the stamp a writer must publish in the tail so that
// per-entry stamps strictly increase: the writer's commit soft-time, pushed
// past the previous tail stamp when clock skew (stamps come from the
// committing node's clock, which differs across coordinators) would order
// them backwards.
func ClampStamp(t, prevTail uint64) uint64 {
	if t <= prevTail {
		return prevTail + 1
	}
	return t
}
