package kvs

import (
	"testing"

	"drtm/internal/memory"
)

// chainVersion is one committed version in the fuzz model: the stamp the
// tail actually published (RetireLocal clamps), the head word, the value,
// and whether the incarnation was live.
type chainVersion struct {
	stamp  uint64
	incver uint64
	val    []uint64
}

// FuzzChainRetireResolve drives the write side (RetireLocal, the seqlocked
// retire path shared by redo drains and shipped stores) against the read
// side (ResolveAtStamp) with a fuzz-chosen depth and write/delete/stamp
// schedule, and checks every resolution against a shadow model:
//
//  1. round-trip — resolving at a retained version's exact stamp returns
//     that version (incver and value intact), never a neighbor;
//  2. resolve-at-stamp vs model — any non-Truncated answer must equal the
//     model's version with the largest stamp ≤ S; versions the ring has
//     clobbered may only produce ResolveTruncated, never a wrong value;
//  3. a quiescent image is never ResolveInconsistent, and ResolveAtStamp
//     never panics on a bit-flipped image (it may answer anything but
//     Inconsistent/Truncated are the expected refusals).
func FuzzChainRetireResolve(f *testing.F) {
	// Seed corpus: plain overwrites, a delete + re-insert cycle, ring wrap
	// (more writes than depth), and stamp collisions forcing the clamp.
	f.Add(uint64(2), []byte{10, 1, 20, 1, 30, 1})
	f.Add(uint64(4), []byte{5, 1, 0, 2, 9, 1, 9, 1, 9, 2, 1, 1})
	f.Add(uint64(1), []byte{1, 1, 1, 1, 1, 1, 1, 1, 200, 1})
	f.Add(uint64(6), []byte{255, 1, 254, 2, 253, 1, 7, 2, 7, 1})
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		const vw = 2
		depth := int(seed%8) + 1 // 1..8
		a := memory.NewArena(0, 4096)
		off := memory.Offset(64)
		key := uint64(0xD00D)
		a.StoreWord(off+EntryKeyWord, key)

		// Replay the schedule: each op pair is (stamp delta, kind). Kind
		// even = overwrite (version+1), odd = incarnation flip (delete or
		// re-insert: inc+1, version+1) — the transition protocol every
		// structural commit follows.
		var model []chainVersion
		now := uint64(0)
		inc, ver := uint32(1), uint32(0)
		writeVersion := func(delta uint64, flip bool) {
			now += delta
			if flip {
				inc++
			}
			if len(model) > 0 {
				ver++
			}
			head := PackIncVer(inc, ver)
			val := []uint64{uint64(ver) * 3, now ^ key}
			stamp := RetireLocal(a, off, vw, depth, now, head)
			a.Write(off+EntryValueWord, val)
			a.StoreWord(off+EntryIncVerWord, head)
			model = append(model, chainVersion{stamp: stamp, incver: head, val: val})
		}
		writeVersion(1, false) // initial insert
		for i := 0; i+1 < len(ops) && len(model) < 40; i += 2 {
			writeVersion(uint64(ops[i]), ops[i+1]%2 == 1)
		}

		img := make([]uint64, EntryImageWords(vw, depth))
		a.Read(img, off)

		// The ring retains the current version plus at most the last depth
		// retired ones (versions advance by 1 per write, so slot indices
		// cycle without gaps).
		retainedFrom := len(model) - 1 - depth
		if retainedFrom < 0 {
			retainedFrom = 0
		}
		check := func(s uint64) {
			r := ResolveAtStamp(img, vw, depth, key, s)
			// Model answer: the version with the largest stamp ≤ s.
			mi := -1
			for i, v := range model {
				if v.stamp <= s {
					mi = i
				}
			}
			switch r.Status {
			case ResolveInconsistent:
				t.Fatalf("depth %d stamp %d: quiescent image resolved Inconsistent", depth, s)
			case ResolveTruncated:
				if mi >= retainedFrom {
					t.Fatalf("depth %d stamp %d: truncated but version %d (stamp %d) is retained",
						depth, s, mi, model[mi].stamp)
				}
			case ResolveCurrent, ResolveRetired, ResolveDead:
				if mi < 0 {
					t.Fatalf("depth %d stamp %d: resolved %d but no version committed ≤ s",
						depth, s, r.Status)
				}
				want := model[mi]
				if r.IncVer != want.incver {
					t.Fatalf("depth %d stamp %d: incver %#x, model says %#x",
						depth, s, r.IncVer, want.incver)
				}
				live := Live(Incarnation(want.incver))
				if live == (r.Status == ResolveDead) {
					t.Fatalf("depth %d stamp %d: liveness mismatch: status %d, model live %v",
						depth, s, r.Status, live)
				}
				if live {
					for i := 0; i < vw; i++ {
						if r.Value[i] != want.val[i] {
							t.Fatalf("depth %d stamp %d: value %v, model %v",
								depth, s, r.Value[:vw], want.val)
						}
					}
				}
			}
		}
		for _, v := range model {
			check(v.stamp) // round-trip at the exact commit stamp
			check(v.stamp - 1)
			check(v.stamp + 1)
		}
		check(0)
		check(^uint64(0))

		// Robustness: a bit-flipped image must never panic the resolver.
		if len(ops) >= 2 {
			w := int(ops[0]) % len(img)
			bad := append([]uint64(nil), img...)
			bad[w] ^= 1 << (ops[1] % 64)
			_ = ResolveAtStamp(bad, vw, depth, key, now)
		}
	})
}
