package kvs

import (
	"sync"
	"sync/atomic"
)

// LocationCache is the RDMA-friendly, location-based, host-transparent
// cache of Section 5.3. It caches header *buckets* (locations of entries),
// never values, so it needs no invalidation protocol: a stale location is
// detected by incarnation checking on the data read and simply refetched.
// One cache maps to one remote table and is shared by all client threads on
// a machine.
//
// The cache is a direct-mapped array of bucket snapshots (the paper's
// "simple directly mapping"); each frame stores the 128-byte bucket plus a
// tag identifying whether it snapshots a main bucket (by index) or an
// indirect bucket (by arena offset).
type LocationCache struct {
	mu     sync.Mutex
	frames []cacheFrame

	hits   atomic.Int64
	misses atomic.Int64
	invals atomic.Int64
}

type cacheFrame struct {
	tag   uint64
	valid bool
	words [BucketWords]uint64
}

// BucketBytes is the footprint of one cached bucket frame's payload.
const BucketBytes = BucketWords * 8

// Cache tags distinguish main buckets (identified by index) from indirect
// buckets (identified by arena offset) in one namespace.
func mainTag(idx uint64) uint64  { return idx << 1 }
func indirTag(off uint64) uint64 { return off<<1 | 1 }

// NewLocationCache builds a cache with the given budget in bytes
// (minimum one frame).
func NewLocationCache(budgetBytes int) *LocationCache {
	n := budgetBytes / BucketBytes
	if n < 1 {
		n = 1
	}
	return &LocationCache{frames: make([]cacheFrame, n)}
}

// Frames returns the capacity in buckets.
func (c *LocationCache) Frames() int { return len(c.frames) }

// Stats returns hit/miss/invalidation counts.
func (c *LocationCache) Stats() (hits, misses, invals int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.invals.Load()
}

func (c *LocationCache) frameOf(tag uint64) int {
	return int(mix64(tag) % uint64(len(c.frames)))
}

// get returns a copy of the cached bucket for tag. A nil receiver (a typed
// nil passed through the Cache interface) behaves as an always-miss cache.
func (c *LocationCache) get(tag uint64) ([]uint64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	f := &c.frames[c.frameOf(tag)]
	if !f.valid || f.tag != tag {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	out := make([]uint64, BucketWords)
	copy(out, f.words[:])
	c.mu.Unlock()
	c.hits.Add(1)
	return out, true
}

// put installs a bucket snapshot, evicting whatever shared its frame.
func (c *LocationCache) put(tag uint64, words []uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	f := &c.frames[c.frameOf(tag)]
	f.tag = tag
	f.valid = true
	copy(f.words[:], words)
	c.mu.Unlock()
}

// invalidate drops the frame holding tag, if present.
func (c *LocationCache) invalidate(tag uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	f := &c.frames[c.frameOf(tag)]
	if f.valid && f.tag == tag {
		f.valid = false
		c.invals.Add(1)
	}
	c.mu.Unlock()
}
