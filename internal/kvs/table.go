package kvs

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"drtm/internal/htm"
	"drtm/internal/memory"
)

// Config sizes a table. All tables store fixed 8-byte keys and fixed-length
// values (ValueWords 64-bit words), as in the paper's evaluation.
type Config struct {
	Node            int // owner machine ID
	RegionID        int // RDMA region the arena is registered under
	MainBuckets     int // number of main header buckets; rounded to 2^k
	IndirectBuckets int // pool of shared indirect header buckets
	Capacity        int // maximum number of entries
	ValueWords      int // value length in words

	// ChainDepth is the per-entry version-chain ring depth (0 disables
	// chains and restores the single-slot entry layout). See layout.go.
	ChainDepth int
	// Stamp supplies commit soft-time for chain tails; nil falls back to a
	// per-table monotone counter (tests and direct kvs use).
	Stamp func() uint64
}

// Table is one node's shard of a DrTM-KV table. Local mutating operations
// run inside HTM transactions on the owner's engine; remote access goes
// through the methods in remote.go using one-sided verbs only.
type Table struct {
	cfg        Config
	arena      *memory.Arena
	eng        *htm.Engine
	mask       uint64
	entryWords int
	indirBase  memory.Offset
	entryBase  memory.Offset

	mu          sync.Mutex
	freeEntries []memory.Offset
	freeBuckets []memory.Offset
	liveCount   int

	stampSeq atomic.Uint64 // fallback stamp source when cfg.Stamp is nil
}

// Common errors.
var (
	ErrExists = errors.New("kvs: key already exists")
	ErrFull   = errors.New("kvs: table full")
	ErrNoSlot = errors.New("kvs: bucket chain full and no indirect buckets left")
)

// New builds an empty table and its backing arena.
func New(cfg Config, eng *htm.Engine) *Table {
	if cfg.MainBuckets <= 0 || cfg.Capacity <= 0 || cfg.ValueWords < 0 {
		panic("kvs: invalid config")
	}
	mb := 1
	for mb < cfg.MainBuckets {
		mb *= 2
	}
	cfg.MainBuckets = mb

	ew := EntryImageWords(cfg.ValueWords, cfg.ChainDepth)
	if rem := ew % memory.WordsPerLine; rem != 0 {
		ew += memory.WordsPerLine - rem
	}
	t := &Table{
		cfg:        cfg,
		eng:        eng,
		mask:       uint64(mb - 1),
		entryWords: ew,
		indirBase:  memory.Offset(mb * BucketWords),
	}
	t.entryBase = t.indirBase + memory.Offset(cfg.IndirectBuckets*BucketWords)
	total := int(t.entryBase) + cfg.Capacity*ew
	t.arena = memory.NewArena(cfg.RegionID, total)

	t.freeEntries = make([]memory.Offset, 0, cfg.Capacity)
	for i := cfg.Capacity - 1; i >= 0; i-- {
		t.freeEntries = append(t.freeEntries, t.entryBase+memory.Offset(i*ew))
	}
	t.freeBuckets = make([]memory.Offset, 0, cfg.IndirectBuckets)
	for i := cfg.IndirectBuckets - 1; i >= 0; i-- {
		t.freeBuckets = append(t.freeBuckets, t.indirBase+memory.Offset(i*BucketWords))
	}
	return t
}

// Arena returns the backing arena (register it on the RDMA fabric).
func (t *Table) Arena() *memory.Arena { return t.arena }

// Node returns the owner machine ID.
func (t *Table) Node() int { return t.cfg.Node }

// RegionID returns the RDMA region ID the arena should be registered under.
func (t *Table) RegionID() int { return t.cfg.RegionID }

// ValueWords returns the fixed value length.
func (t *Table) ValueWords() int { return t.cfg.ValueWords }

// EntryWords returns the line-aligned entry footprint.
func (t *Table) EntryWords() int { return t.entryWords }

// ChainDepth returns the version-chain ring depth (0 when disabled).
func (t *Table) ChainDepth() int { return t.cfg.ChainDepth }

// StampNow returns a commit stamp for chain tails.
func (t *Table) StampNow() uint64 {
	if t.cfg.Stamp != nil {
		return t.cfg.Stamp()
	}
	return t.stampSeq.Add(1)
}

// Engine returns the owner's HTM engine.
func (t *Table) Engine() *htm.Engine { return t.eng }

// Len returns the number of live entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveCount
}

// MainBuckets returns the main header bucket count.
func (t *Table) MainBuckets() int { return t.cfg.MainBuckets }

// bucketOf returns the main bucket index for a key.
func (t *Table) bucketOf(key uint64) uint64 { return mix64(key) & t.mask }

// BucketOf exposes the main bucket index for a key — the granularity at
// which the adaptive read-arm selector tracks conflict heat (keys sharing a
// bucket chain share lookup READs, so they share a classification too).
func (t *Table) BucketOf(key uint64) uint64 { return t.bucketOf(key) }

// MainBucketOffset returns the arena offset of main bucket i.
func (t *Table) MainBucketOffset(i uint64) memory.Offset {
	return memory.Offset(i * BucketWords)
}

func (t *Table) allocEntry() (memory.Offset, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.freeEntries) == 0 {
		return 0, false
	}
	off := t.freeEntries[len(t.freeEntries)-1]
	t.freeEntries = t.freeEntries[:len(t.freeEntries)-1]
	return off, true
}

func (t *Table) freeEntry(off memory.Offset) {
	t.mu.Lock()
	t.freeEntries = append(t.freeEntries, off)
	t.mu.Unlock()
}

func (t *Table) allocBucket() (memory.Offset, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.freeBuckets) == 0 {
		return 0, false
	}
	off := t.freeBuckets[len(t.freeBuckets)-1]
	t.freeBuckets = t.freeBuckets[:len(t.freeBuckets)-1]
	return off, true
}

func (t *Table) freeBucket(off memory.Offset) {
	t.mu.Lock()
	t.freeBuckets = append(t.freeBuckets, off)
	t.mu.Unlock()
}

// LookupTx finds key transactionally, returning the entry offset. The
// bucket lines join tx's read set, so a concurrent INSERT/DELETE of this
// chain aborts tx — the HTM-based race detection the design leans on.
func (t *Table) LookupTx(tx *htm.Txn, key uint64) (memory.Offset, bool) {
	off := t.MainBucketOffset(t.bucketOf(key))
	for {
		var next memory.Offset
		for s := 0; s < SlotsPerBucket; s++ {
			w0 := tx.Read(t.arena, off+memory.Offset(s*SlotWords))
			switch SlotType(w0) {
			case TypeEntry:
				w1 := tx.Read(t.arena, off+memory.Offset(s*SlotWords+1))
				if w1 == key {
					return SlotOffset(w0), true
				}
			case TypeHeader:
				next = SlotOffset(w0)
			}
		}
		if next == 0 {
			return 0, false
		}
		off = next
	}
}

// LookupLocal finds key with plain seqlock reads (no HTM tracking). It is
// for bootstrap, verbs-served host operations that do their own locking,
// and tests.
func (t *Table) LookupLocal(key uint64) (memory.Offset, bool) {
	var buf [BucketWords]uint64
	off := t.MainBucketOffset(t.bucketOf(key))
	for {
		t.arena.Read(buf[:], off)
		var next memory.Offset
		for s := 0; s < SlotsPerBucket; s++ {
			w0 := buf[s*SlotWords]
			switch SlotType(w0) {
			case TypeEntry:
				if buf[s*SlotWords+1] == key {
					return SlotOffset(w0), true
				}
			case TypeHeader:
				next = SlotOffset(w0)
			}
		}
		if next == 0 {
			return 0, false
		}
		off = next
	}
}

// runLocal retries an HTM region until commit, with a bounded number of
// attempts; the store's own operations are small (a few lines) so conflicts
// resolve quickly.
func (t *Table) runLocal(fn func(tx *htm.Txn) error) error {
	const attempts = 10_000
	var last error
	for i := 0; i < attempts; i++ {
		err := t.eng.Run(fn)
		if err == nil {
			return nil
		}
		if _, ok := htm.IsAbort(err); !ok {
			return err
		}
		last = err
	}
	return fmt.Errorf("kvs: htm retry budget exhausted: %w", last)
}

// Insert adds a key-value pair on the owner node. The entry body is
// prepared dead (even incarnation) outside the HTM region — a freed entry
// is observable by stale remote readers, so initialization uses seqlocked
// writes — and the slot publication plus the liveness-granting incarnation
// bump happen inside one HTM transaction.
func (t *Table) Insert(key uint64, val []uint64) error {
	if len(val) != t.cfg.ValueWords {
		return fmt.Errorf("kvs: value length %d, want %d", len(val), t.cfg.ValueWords)
	}
	entry, ok := t.allocEntry()
	if !ok {
		return ErrFull
	}

	// Prepare the body: key, value, state=Init; incarnation stays even. The
	// ring is zeroed here too — a recycled entry's chain belongs to the
	// previous key at this offset.
	oldIncVer := t.arena.LoadWord(entry + EntryIncVerWord)
	inc := Incarnation(oldIncVer) // even (0 for fresh entries)
	t.arena.Write(entry+EntryKeyWord, []uint64{key})
	t.arena.Write(entry+EntryStateWord, []uint64{0})
	t.arena.Write(entry+EntryValueWord, val)
	ResetChain(t.arena, entry, t.cfg.ValueWords, t.cfg.ChainDepth)

	newIncVer := PackIncVer(inc+1, 0)
	lossy := uint64(inc+1) & slotLossyMask

	// Stamp the fresh chain tail in the prep phase too: the entry is not
	// resolvable until the slot publication below commits, so the seqlocked
	// write costs no HTM capacity and races nobody. The zeroed ring means a
	// snapshot older than this stamp resolves to Truncated (reads of a key
	// below its insert stamp fall back to the confirm-wave arm).
	if t.cfg.ChainDepth > 0 {
		t.arena.Write(TailOffset(entry, t.cfg.ValueWords, t.cfg.ChainDepth),
			[]uint64{t.StampNow(), newIncVer})
	}

	// Indirect buckets allocated during an attempt that aborts are returned
	// to the pool before the retry (transactional writes to them were
	// discarded, so they are still pristine).
	var pending []memory.Offset
	err := t.runLocal(func(tx *htm.Txn) error {
		for _, b := range pending {
			t.freeBucket(b)
		}
		pending = pending[:0]
		if _, exists := t.LookupTx(tx, key); exists {
			return ErrExists
		}
		slotOff, err := t.findInsertSlot(tx, key, &pending)
		if err != nil {
			return err
		}
		tx.Write(t.arena, slotOff, PackSlot(TypeEntry, lossy, entry))
		tx.Write(t.arena, slotOff+1, key)
		tx.Write(t.arena, entry+EntryIncVerWord, newIncVer)
		return nil
	})
	if err != nil {
		for _, b := range pending {
			t.freeBucket(b)
		}
		t.freeEntry(entry)
		return err
	}
	t.mu.Lock()
	t.liveCount++
	t.mu.Unlock()
	return nil
}

// findInsertSlot locates a free slot in key's bucket chain, converting the
// last slot of a full bucket into an indirect-header link when necessary
// (Section 5.2). Must run inside the caller's HTM transaction; any indirect
// buckets it allocates are appended to *pending for abort cleanup.
func (t *Table) findInsertSlot(tx *htm.Txn, key uint64, pending *[]memory.Offset) (memory.Offset, error) {
	off := t.MainBucketOffset(t.bucketOf(key))
	for {
		var next memory.Offset
		free := memory.Offset(0)
		haveFree := false
		for s := 0; s < SlotsPerBucket; s++ {
			so := off + memory.Offset(s*SlotWords)
			w0 := tx.Read(t.arena, so)
			switch SlotType(w0) {
			case TypeFree:
				if !haveFree {
					free, haveFree = so, true
				}
			case TypeHeader:
				next = SlotOffset(w0)
			}
		}
		if haveFree {
			return free, nil
		}
		if next != 0 {
			off = next
			continue
		}
		// Chain exhausted: convert the last slot into an indirect header.
		nb, ok := t.allocBucket()
		if !ok {
			return 0, ErrNoSlot
		}
		*pending = append(*pending, nb)
		last := off + memory.Offset((SlotsPerBucket-1)*SlotWords)
		w0 := tx.Read(t.arena, last)
		w1 := tx.Read(t.arena, last+1)
		// Move the displaced resident into the new bucket's slot 0; the new
		// key-value pair will land in slot 1 (returned as the free slot).
		tx.Write(t.arena, nb, w0)
		tx.Write(t.arena, nb+1, w1)
		for s := 2; s < SlotsPerBucket; s++ {
			tx.Write(t.arena, nb+memory.Offset(s*SlotWords), 0)
			tx.Write(t.arena, nb+memory.Offset(s*SlotWords)+1, 0)
		}
		tx.Write(t.arena, last, PackSlot(TypeHeader, 0, nb))
		tx.Write(t.arena, last+1, 0)
		return nb + SlotWords, nil
	}
}

// Delete removes key on the owner node. The deletion is logical: the
// entry's incarnation becomes even inside the HTM region, so remote readers
// holding a stale cached location detect it by incarnation checking.
func (t *Table) Delete(key uint64) bool {
	var victim memory.Offset
	stamp := t.StampNow()
	err := t.runLocal(func(tx *htm.Txn) error {
		victim = 0
		off := t.MainBucketOffset(t.bucketOf(key))
		for {
			var next memory.Offset
			for s := 0; s < SlotsPerBucket; s++ {
				so := off + memory.Offset(s*SlotWords)
				w0 := tx.Read(t.arena, so)
				switch SlotType(w0) {
				case TypeEntry:
					if tx.Read(t.arena, so+1) == key {
						e := SlotOffset(w0)
						incver := tx.Read(t.arena, e+EntryIncVerWord)
						dead := PackIncVer(Incarnation(incver)+1, Version(incver))
						RetireTx(tx, t.arena, e, t.cfg.ValueWords, t.cfg.ChainDepth, stamp, dead)
						tx.Write(t.arena, e+EntryIncVerWord, dead)
						tx.Write(t.arena, so, 0)
						tx.Write(t.arena, so+1, 0)
						victim = e
						return nil
					}
				case TypeHeader:
					next = SlotOffset(w0)
				}
			}
			if next == 0 {
				return nil // not found
			}
			off = next
		}
	})
	if err != nil || victim == 0 {
		return false
	}
	t.freeEntry(victim)
	t.mu.Lock()
	t.liveCount--
	t.mu.Unlock()
	return true
}

// ReadTx copies key's value transactionally into a fresh slice.
func (t *Table) ReadTx(tx *htm.Txn, key uint64) ([]uint64, bool) {
	off, ok := t.LookupTx(tx, key)
	if !ok {
		return nil, false
	}
	val := make([]uint64, t.cfg.ValueWords)
	tx.ReadN(t.arena, off+EntryValueWord, val)
	return val, true
}

// WriteTx transactionally overwrites key's value and bumps its version.
func (t *Table) WriteTx(tx *htm.Txn, key uint64, val []uint64) bool {
	if len(val) != t.cfg.ValueWords {
		return false
	}
	off, ok := t.LookupTx(tx, key)
	if !ok {
		return false
	}
	incver := tx.Read(t.arena, off+EntryIncVerWord)
	next := PackIncVer(Incarnation(incver), Version(incver)+1)
	RetireTx(tx, t.arena, off, t.cfg.ValueWords, t.cfg.ChainDepth, t.StampNow(), next)
	tx.Write(t.arena, off+EntryIncVerWord, next)
	tx.WriteN(t.arena, off+EntryValueWord, val)
	return true
}

// Get runs a read in its own HTM transaction (convenience API).
func (t *Table) Get(key uint64) ([]uint64, bool) {
	var val []uint64
	var ok bool
	err := t.runLocal(func(tx *htm.Txn) error {
		val, ok = t.ReadTx(tx, key)
		return nil
	})
	if err != nil {
		return nil, false
	}
	return val, ok
}

// Put runs an update in its own HTM transaction (convenience API).
func (t *Table) Put(key uint64, val []uint64) bool {
	var ok bool
	err := t.runLocal(func(tx *htm.Txn) error {
		ok = t.WriteTx(tx, key, val)
		return nil
	})
	return err == nil && ok
}
