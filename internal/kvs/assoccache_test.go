package kvs

import (
	"testing"

	"drtm/internal/htm"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

func TestAssocCacheBasics(t *testing.T) {
	c := NewAssocCache(8*BucketBytes, 4)
	if c.Frames() != 8 {
		t.Fatalf("frames = %d", c.Frames())
	}
	w := make([]uint64, BucketWords)
	w[0] = 42
	c.put(mainTag(1), w)
	got, ok := c.get(mainTag(1))
	if !ok || got[0] != 42 {
		t.Fatalf("get = %v,%v", got, ok)
	}
	if _, ok := c.get(mainTag(2)); ok {
		t.Fatal("phantom hit")
	}
	c.invalidate(mainTag(1))
	if _, ok := c.get(mainTag(1)); ok {
		t.Fatal("invalidate failed")
	}
	hits, misses, invals := c.Stats()
	if hits != 1 || misses != 2 || invals != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, invals)
	}
}

func TestAssocCachePutUpdatesExisting(t *testing.T) {
	c := NewAssocCache(8*BucketBytes, 4)
	w := make([]uint64, BucketWords)
	w[0] = 1
	c.put(mainTag(5), w)
	w[0] = 2
	c.put(mainTag(5), w)
	got, _ := c.get(mainTag(5))
	if got[0] != 2 {
		t.Fatalf("update lost: %d", got[0])
	}
}

// TestAssocLRUEviction: filling a set beyond its ways evicts the least
// recently used frame, not the most recent.
func TestAssocLRUEviction(t *testing.T) {
	// One set of 4 ways: every tag collides.
	c := NewAssocCache(4*BucketBytes, 4)
	w := make([]uint64, BucketWords)
	for i := uint64(0); i < 4; i++ {
		w[0] = i
		c.put(mainTag(i), w)
	}
	// Touch 0 so it becomes MRU; insert a 5th tag; LRU (tag 1) must go.
	if _, ok := c.get(mainTag(0)); !ok {
		t.Fatal("tag 0 missing")
	}
	w[0] = 99
	c.put(mainTag(4), w)
	if _, ok := c.get(mainTag(0)); !ok {
		t.Fatal("MRU tag 0 was evicted")
	}
	if _, ok := c.get(mainTag(1)); ok {
		t.Fatal("LRU tag 1 survived")
	}
	if _, ok := c.get(mainTag(4)); !ok {
		t.Fatal("new tag missing")
	}
}

// TestAssocVsDirectConflictMisses: under a conflict-heavy access pattern at
// equal budget, the associative cache retains far more entries.
func TestAssocVsDirectConflictMisses(t *testing.T) {
	hitRate := func(c Cache) float64 {
		w := make([]uint64, BucketWords)
		// Working set of 32 tags with a 64-frame budget: capacity is ample,
		// so steady-state misses are conflict misses, which associativity
		// absorbs (a hot set may still exceed its ways occasionally).
		for pass := 0; pass < 10; pass++ {
			for i := uint64(0); i < 32; i++ {
				if _, ok := c.get(mainTag(i)); !ok {
					c.put(mainTag(i), w)
				}
			}
		}
		h, m, _ := c.Stats()
		return float64(h) / float64(h+m)
	}
	direct := hitRate(NewLocationCache(64 * BucketBytes))
	assoc := hitRate(NewAssocCache(64*BucketBytes, 8))
	if assoc <= direct {
		t.Fatalf("associative (%.2f) should beat direct-mapped (%.2f) on conflict misses",
			assoc, direct)
	}
}

// TestAssocCacheWithRemoteGets: end-to-end through the remote access path.
func TestAssocCacheWithRemoteGets(t *testing.T) {
	tb := New(Config{MainBuckets: 64, IndirectBuckets: 64, Capacity: 128, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
	f := rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
	f.Register(0, 0, tb.Arena())
	for k := uint64(1); k <= 50; k++ {
		if err := tb.Insert(k, []uint64{k, k}); err != nil {
			t.Fatal(err)
		}
	}
	qp := f.NewQP(1, nil)
	cache := NewAssocCache(1<<16, 4)
	for pass := 0; pass < 2; pass++ {
		for k := uint64(1); k <= 50; k++ {
			e, ok := tb.GetRemote(qp, cache, k)
			if !ok || e.Value[0] != k {
				t.Fatalf("get %d = %+v,%v", k, e, ok)
			}
		}
	}
	hits, _, _ := cache.Stats()
	if hits < 50 {
		t.Fatalf("hits = %d, want >= 50 on the warm pass", hits)
	}
	// Incarnation checking still recovers through the associative cache.
	tb.Delete(7)
	if _, ok := tb.GetRemote(qp, cache, 7); ok {
		t.Fatal("stale hit for deleted key")
	}
}
