package kvs

import (
	"sync"
	"sync/atomic"
	"testing"

	"drtm/internal/htm"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

// TestConcurrentDeleteReinsertVsRemoteReads hammers the incarnation-checking
// path: a host thread churns delete/reinsert cycles while remote readers
// (with a shared location cache) read concurrently. Readers must never
// observe a value that does not belong to the key they asked for.
func TestConcurrentDeleteReinsertVsRemoteReads(t *testing.T) {
	tb := New(Config{MainBuckets: 32, IndirectBuckets: 64, Capacity: 128, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
	f := rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
	f.Register(0, 0, tb.Arena())

	// Keys 1..64; value[0] always key*10+generation parity tag, value[1]=key.
	for k := uint64(1); k <= 64; k++ {
		if err := tb.Insert(k, []uint64{k * 10, k}); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var readers sync.WaitGroup

	// Remote readers with a shared cache.
	cache := NewLocationCache(1 << 16)
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			qp := f.NewQP(1, nil)
			for i := uint64(0); !stop.Load(); i++ {
				k := (seed+i)%64 + 1
				e, ok := tb.GetRemote(qp, cache, k)
				if !ok {
					continue // momentarily deleted: fine
				}
				if e.Value[1] != k || e.Value[0] != k*10 {
					t.Errorf("reader got foreign value %v for key %d", e.Value, k)
					return
				}
			}
		}(uint64(r * 17))
	}

	// Churner: delete and reinsert keys (entry memory gets reused).
	for i := 0; i < 1500; i++ {
		k := uint64(i%64) + 1
		if tb.Delete(k) {
			if err := tb.Insert(k, []uint64{k * 10, k}); err != nil {
				t.Fatalf("reinsert %d: %v", k, err)
			}
		}
	}
	stop.Store(true)
	readers.Wait()

	// Final state: all 64 keys present with correct values.
	for k := uint64(1); k <= 64; k++ {
		v, ok := tb.Get(k)
		if !ok || v[0] != k*10 {
			t.Fatalf("final key %d = %v,%v", k, v, ok)
		}
	}
}

// TestHTMInsertVsRemoteLookupChain: remote lookups walking a chain that is
// concurrently being extended by inserts either find their key or miss
// transiently, but never crash or return a wrong entry.
func TestHTMInsertVsRemoteLookupChain(t *testing.T) {
	tb := New(Config{MainBuckets: 1, IndirectBuckets: 64, Capacity: 256, ValueWords: 1},
		htm.NewEngine(htm.Config{}))
	f := rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
	f.Register(0, 0, tb.Arena())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := uint64(1); k <= 150; k++ {
			if err := tb.Insert(k, []uint64{k}); err != nil {
				t.Errorf("insert %d: %v", k, err)
				return
			}
		}
	}()

	qp := f.NewQP(1, nil)
	for pass := 0; pass < 60; pass++ {
		for k := uint64(1); k <= 150; k++ {
			if e, ok := tb.GetRemote(qp, nil, k); ok && e.Value[0] != k {
				t.Fatalf("remote read of %d returned %d", k, e.Value[0])
			}
		}
	}
	wg.Wait()
	for k := uint64(1); k <= 150; k++ {
		if e, ok := tb.GetRemote(qp, nil, k); !ok || e.Value[0] != k {
			t.Fatalf("final remote read of %d = %+v,%v", k, e, ok)
		}
	}
}
