package kvs

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"drtm/internal/htm"
	"drtm/internal/memory"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

func newTable(t testing.TB, cap int) *Table {
	t.Helper()
	return New(Config{
		Node: 0, RegionID: 0,
		MainBuckets: 64, IndirectBuckets: 64,
		Capacity: cap, ValueWords: 2,
	}, htm.NewEngine(htm.Config{}))
}

func val(a, b uint64) []uint64 { return []uint64{a, b} }

func TestSlotPacking(t *testing.T) {
	w0 := PackSlot(TypeEntry, 0x2ABC, 0xDEADBEEF)
	if SlotType(w0) != TypeEntry {
		t.Fatal("type lost")
	}
	if SlotLossyInc(w0) != 0x2ABC {
		t.Fatalf("lossy = %x", SlotLossyInc(w0))
	}
	if SlotOffset(w0) != 0xDEADBEEF {
		t.Fatalf("offset = %x", SlotOffset(w0))
	}
}

func TestQuickSlotPackingLossless(t *testing.T) {
	f := func(typ uint8, lossy uint16, off uint64) bool {
		ty := uint64(typ % 4)
		lo := uint64(lossy) & slotLossyMask
		of := memory.Offset(off & slotOffsetMask)
		w := PackSlot(ty, lo, of)
		return SlotType(w) == ty && SlotLossyInc(w) == lo && SlotOffset(w) == of
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIncVerPacking(t *testing.T) {
	w := PackIncVer(7, 42)
	if Incarnation(w) != 7 || Version(w) != 42 {
		t.Fatalf("incver roundtrip: inc=%d ver=%d", Incarnation(w), Version(w))
	}
	if !Live(1) || Live(2) || Live(0) {
		t.Fatal("liveness parity wrong")
	}
}

func TestInsertGet(t *testing.T) {
	tb := newTable(t, 128)
	if err := tb.Insert(42, val(1, 2)); err != nil {
		t.Fatal(err)
	}
	v, ok := tb.Get(42)
	if !ok || v[0] != 1 || v[1] != 2 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if _, ok := tb.Get(43); ok {
		t.Fatal("found missing key")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestInsertDuplicate(t *testing.T) {
	tb := newTable(t, 128)
	if err := tb.Insert(1, val(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(1, val(0, 0)); err != ErrExists {
		t.Fatalf("err = %v, want ErrExists", err)
	}
	if tb.Len() != 1 {
		t.Fatal("duplicate insert changed Len")
	}
}

func TestPutOverwritesAndBumpsVersion(t *testing.T) {
	tb := newTable(t, 128)
	_ = tb.Insert(5, val(1, 1))
	off, _ := tb.LookupLocal(5)
	v0 := Version(tb.Arena().LoadWord(off + EntryIncVerWord))
	if !tb.Put(5, val(9, 9)) {
		t.Fatal("Put failed")
	}
	v, _ := tb.Get(5)
	if v[0] != 9 {
		t.Fatal("Put lost value")
	}
	v1 := Version(tb.Arena().LoadWord(off + EntryIncVerWord))
	if v1 != v0+1 {
		t.Fatalf("version %d -> %d, want +1", v0, v1)
	}
}

func TestDeleteAndIncarnation(t *testing.T) {
	tb := newTable(t, 128)
	_ = tb.Insert(7, val(3, 3))
	off, _ := tb.LookupLocal(7)
	incBefore := Incarnation(tb.Arena().LoadWord(off + EntryIncVerWord))
	if !Live(incBefore) {
		t.Fatal("inserted entry not live")
	}
	if !tb.Delete(7) {
		t.Fatal("Delete failed")
	}
	if _, ok := tb.Get(7); ok {
		t.Fatal("deleted key still found")
	}
	incAfter := Incarnation(tb.Arena().LoadWord(off + EntryIncVerWord))
	if Live(incAfter) || incAfter != incBefore+1 {
		t.Fatalf("incarnation %d -> %d, want dead +1", incBefore, incAfter)
	}
	if tb.Delete(7) {
		t.Fatal("double delete succeeded")
	}
}

func TestReuseAfterDelete(t *testing.T) {
	tb := New(Config{MainBuckets: 4, IndirectBuckets: 4, Capacity: 2, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
	_ = tb.Insert(1, val(1, 1))
	_ = tb.Insert(2, val(2, 2))
	if err := tb.Insert(3, val(3, 3)); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	tb.Delete(1)
	if err := tb.Insert(3, val(3, 3)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	v, ok := tb.Get(3)
	if !ok || v[0] != 3 {
		t.Fatal("reused entry corrupt")
	}
}

// TestBucketOverflowChains forces every key into one main bucket so the
// chain conversion path (last slot -> indirect header) is exercised.
func TestBucketOverflowChains(t *testing.T) {
	tb := New(Config{MainBuckets: 1, IndirectBuckets: 16, Capacity: 64, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
	const n = 40
	for k := uint64(1); k <= n; k++ {
		if err := tb.Insert(k, val(k, k)); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= n; k++ {
		v, ok := tb.Get(k)
		if !ok || v[0] != k {
			t.Fatalf("get %d = %v,%v", k, v, ok)
		}
	}
	// And delete half, re-check the rest.
	for k := uint64(1); k <= n; k += 2 {
		if !tb.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	for k := uint64(2); k <= n; k += 2 {
		if _, ok := tb.Get(k); !ok {
			t.Fatalf("survivor %d lost", k)
		}
	}
}

// TestQuickAgainstMapModel drives the table with random operations and
// compares against a plain map.
func TestQuickAgainstMapModel(t *testing.T) {
	tb := New(Config{MainBuckets: 8, IndirectBuckets: 64, Capacity: 256, ValueWords: 1},
		htm.NewEngine(htm.Config{}))
	model := map[uint64]uint64{}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := uint64(r.Intn(64) + 1)
		switch r.Intn(4) {
		case 0:
			err := tb.Insert(k, []uint64{k * 10})
			_, exists := model[k]
			if exists && err != ErrExists {
				t.Fatalf("insert dup %d: err=%v", k, err)
			}
			if !exists {
				if err != nil {
					t.Fatalf("insert %d: %v", k, err)
				}
				model[k] = k * 10
			}
		case 1:
			ok := tb.Delete(k)
			_, exists := model[k]
			if ok != exists {
				t.Fatalf("delete %d = %v, model %v", k, ok, exists)
			}
			delete(model, k)
		case 2:
			nv := uint64(r.Int63())
			ok := tb.Put(k, []uint64{nv})
			_, exists := model[k]
			if ok != exists {
				t.Fatalf("put %d = %v, model %v", k, ok, exists)
			}
			if exists {
				model[k] = nv
			}
		default:
			v, ok := tb.Get(k)
			mv, exists := model[k]
			if ok != exists || (ok && v[0] != mv) {
				t.Fatalf("get %d = %v,%v; model %v,%v", k, v, ok, mv, exists)
			}
		}
	}
	if tb.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", tb.Len(), len(model))
	}
}

func TestConcurrentInsertsDisjoint(t *testing.T) {
	tb := newTable(t, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for k := base; k < base+100; k++ {
				if err := tb.Insert(k+1, val(k, k)); err != nil {
					t.Errorf("insert %d: %v", k, err)
				}
			}
		}(uint64(g * 100))
	}
	wg.Wait()
	if tb.Len() != 400 {
		t.Fatalf("Len = %d, want 400", tb.Len())
	}
	for k := uint64(1); k <= 400; k++ {
		if _, ok := tb.Get(k); !ok {
			t.Fatalf("key %d lost", k)
		}
	}
}

func newFabricFor(tb *Table) *rdma.Fabric {
	f := rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
	f.Register(tb.Node(), tb.RegionID(), tb.Arena())
	return f
}

func TestRemoteLookupAndRead(t *testing.T) {
	tb := newTable(t, 128)
	_ = tb.Insert(11, val(7, 8))
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)

	loc, ok := tb.LookupRemote(qp, nil, 11)
	if !ok {
		t.Fatal("remote lookup missed")
	}
	e, ok := tb.ReadEntryRemote(qp, 11, loc)
	if !ok || e.Value[0] != 7 || e.Value[1] != 8 {
		t.Fatalf("remote read = %+v, %v", e, ok)
	}
	if _, ok := tb.LookupRemote(qp, nil, 999); ok {
		t.Fatal("remote lookup found missing key")
	}
}

func TestRemoteLookupWalksChain(t *testing.T) {
	tb := New(Config{MainBuckets: 1, IndirectBuckets: 16, Capacity: 64, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
	for k := uint64(1); k <= 30; k++ {
		_ = tb.Insert(k, val(k, k))
	}
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)
	for k := uint64(1); k <= 30; k++ {
		e, ok := tb.GetRemote(qp, nil, k)
		if !ok || e.Value[0] != k {
			t.Fatalf("remote get %d = %+v,%v", k, e, ok)
		}
	}
	if qp.Stats.Reads.Load() <= 60 {
		t.Fatal("chain walk should need more than 2 READs/key on average here")
	}
}

func TestLocationCacheReducesReads(t *testing.T) {
	tb := newTable(t, 128)
	for k := uint64(1); k <= 50; k++ {
		_ = tb.Insert(k, val(k, k))
	}
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)
	cache := NewLocationCache(4096 * BucketBytes)

	// Warm pass.
	for k := uint64(1); k <= 50; k++ {
		if _, ok := tb.GetRemote(qp, cache, k); !ok {
			t.Fatalf("warm get %d missed", k)
		}
	}
	warm := qp.Stats.Reads.Load()
	// Hot pass: lookups should be nearly all cache hits, leaving the 50
	// entry reads plus at most a handful of direct-mapped collision misses.
	for k := uint64(1); k <= 50; k++ {
		if _, ok := tb.GetRemote(qp, cache, k); !ok {
			t.Fatalf("hot get %d missed", k)
		}
	}
	hot := qp.Stats.Reads.Load() - warm
	if hot < 50 || hot > 58 {
		t.Fatalf("hot pass used %d READs, want ~50 (entry reads only)", hot)
	}
	hits, _, _ := cache.Stats()
	if hits < 50 {
		t.Fatalf("cache hits = %d, want >= 50", hits)
	}
}

// TestIncarnationCheckingDetectsDeleteThenReuse reproduces the stale-cache
// scenario the location cache depends on: a cached location goes stale via
// DELETE (and entry reuse for a different key); the remote reader detects
// it by incarnation checking and recovers through a fresh lookup.
func TestIncarnationCheckingDetectsDeleteThenReuse(t *testing.T) {
	tb := newTable(t, 4)
	_ = tb.Insert(100, val(1, 1))
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)
	cache := NewLocationCache(64 * BucketBytes)

	if _, ok := tb.GetRemote(qp, cache, 100); !ok {
		t.Fatal("initial get missed")
	}
	tb.Delete(100)
	// Reuse the same entry memory for a different key.
	if err := tb.Insert(200, val(2, 2)); err != nil {
		t.Fatal(err)
	}
	if e, ok := tb.GetRemote(qp, cache, 100); ok {
		t.Fatalf("stale read returned %+v for deleted key", e)
	}
	e, ok := tb.GetRemote(qp, cache, 200)
	if !ok || e.Value[0] != 2 {
		t.Fatalf("get new key = %+v,%v", e, ok)
	}
}

// TestRemoteReadsCoherentWithHTMWrites: a committed local HTM update is
// immediately visible to one-sided readers; an uncommitted one never is.
func TestRemoteReadsCoherentWithHTMWrites(t *testing.T) {
	tb := newTable(t, 16)
	_ = tb.Insert(1, val(10, 10))
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)

	tb.Put(1, val(20, 20))
	e, ok := tb.GetRemote(qp, nil, 1)
	if !ok || e.Value[0] != 20 {
		t.Fatalf("remote reader missed committed write: %+v", e)
	}
}

func TestCacheDirectMappedEviction(t *testing.T) {
	c := NewLocationCache(2 * BucketBytes) // 2 frames
	if c.Frames() != 2 {
		t.Fatalf("frames = %d", c.Frames())
	}
	w := make([]uint64, BucketWords)
	for i := uint64(0); i < 64; i++ {
		c.put(mainTag(i), w)
	}
	present := 0
	for i := uint64(0); i < 64; i++ {
		if _, ok := c.get(mainTag(i)); ok {
			present++
		}
	}
	if present > 2 {
		t.Fatalf("direct-mapped cache retains %d > capacity", present)
	}
}

func BenchmarkLocalGet(b *testing.B) {
	tb := newTable(b, 4096)
	for k := uint64(1); k <= 1000; k++ {
		_ = tb.Insert(k, val(k, k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Get(uint64(i%1000) + 1)
	}
}

func BenchmarkRemoteGetCached(b *testing.B) {
	tb := newTable(b, 4096)
	for k := uint64(1); k <= 1000; k++ {
		_ = tb.Insert(k, val(k, k))
	}
	f := newFabricFor(tb)
	qp := f.NewQP(1, nil)
	cache := NewLocationCache(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.GetRemote(qp, cache, uint64(i%1000)+1)
	}
}
