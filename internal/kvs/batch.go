package kvs

import (
	"drtm/internal/memory"
	"drtm/internal/rdma"
)

// This file is the batched remote access path on top of the rdma async verb
// engine: many keys' bucket-chain walks advance in lockstep, with one polled
// doorbell batch per chain level instead of one blocking round trip per
// bucket. Cached buckets are walked without touching the fabric at all, so a
// warm location cache still turns a lookup into zero RDMA ops.

// LookupReq is one key's slot in a batched lookup. The caller fills Table,
// Cache (may be nil) and Key; LookupBatch fills Loc/Found or Err. A verb
// fault fails only this request — the rest of the batch completes — and is
// not retried internally; the transaction layer owns retry policy.
type LookupReq struct {
	Table *Table
	Cache Cache
	Key   uint64

	Loc   Loc
	Found bool
	Err   error
}

// lookupWalk is the in-flight state of one LookupReq's chain walk.
type lookupWalk struct {
	req   *LookupReq
	off   memory.Offset
	tag   uint64
	depth int
	buf   [BucketWords]uint64
	wr    *rdma.WR
}

// step consumes one bucket image: it either resolves the request (entry
// found, or chain exhausted → not found) and returns true, or advances the
// walk to the next chain bucket and returns false.
func (w *lookupWalk) step(words []uint64) bool {
	loc, found, next := decodeBucket(words, w.req.Key)
	if found {
		w.req.Loc, w.req.Found = loc, true
		return true
	}
	if next == 0 {
		return true
	}
	w.off = next
	w.tag = indirTag(uint64(next))
	return false
}

// LookupBatch resolves every request's bucket chain concurrently: each round
// advances all unresolved walks one level — through the location cache when
// the bucket is cached, otherwise by posting a bucket READ — and polls the
// outstanding READs as one doorbell batch. The requests may target different
// tables and nodes; sq's window bounds how many READs overlap.
func LookupBatch(sq *rdma.SendQueue, reqs []*LookupReq) {
	active := make([]*lookupWalk, 0, len(reqs))
	for _, r := range reqs {
		idx := r.Table.bucketOf(r.Key)
		active = append(active, &lookupWalk{
			req: r,
			off: r.Table.MainBucketOffset(idx),
			tag: mainTag(idx),
		})
	}
	for len(active) > 0 {
		var pending []*lookupWalk
		for _, w := range active {
			// Drain cache hits without touching the fabric; a fully cached
			// chain resolves here with zero work requests.
			for w != nil {
				if w.depth >= maxChain {
					w = nil
					break
				}
				var words []uint64
				if w.req.Cache != nil {
					if cached, ok := w.req.Cache.get(w.tag); ok {
						words = cached
					}
				}
				if words == nil {
					break
				}
				w.depth++
				if w.step(words) {
					w = nil
				}
			}
			if w != nil {
				t := w.req.Table
				w.wr = sq.PostRead(t.cfg.Node, t.cfg.RegionID, w.off, w.buf[:])
				pending = append(pending, w)
			}
		}
		if len(pending) == 0 {
			return
		}
		sq.Poll()
		active = pending[:0]
		for _, w := range pending {
			if err := w.wr.Err; err != nil {
				w.req.Err = err
				continue
			}
			if w.req.Cache != nil {
				w.req.Cache.put(w.tag, w.buf[:])
			}
			w.depth++
			if !w.step(w.buf[:]) {
				active = append(active, w)
			}
		}
	}
}

// PostEntryRead posts the one-sided READ that fetches the entry at loc,
// allocating the destination words in the returned WR's Dst. After the poll,
// decode with DecodeEntry. The batched prefetch stage of the transaction
// layer posts one of these per staged record.
func (t *Table) PostEntryRead(sq *rdma.SendQueue, loc Loc) *rdma.WR {
	return t.PostEntryReadBuf(sq, loc, make([]uint64, EntryValueWord+t.cfg.ValueWords))
}

// PostEntryReadBuf is PostEntryRead with a caller-supplied destination
// buffer (len EntryValueWord+ValueWords), so per-record staging state can be
// reused across transaction attempts instead of reallocated.
func (t *Table) PostEntryReadBuf(sq *rdma.SendQueue, loc Loc, dst []uint64) *rdma.WR {
	return sq.PostRead(t.cfg.Node, t.cfg.RegionID, loc.Off, dst)
}

// PostHeaderRead posts the one-sided READ that fetches the entry's
// incarnation|version and state words (EntryHeaderWords) in one verb — the
// speculative read arm's commit-time validation READ. dst supplies the
// destination words so validation waves can reuse storage across attempts.
func (t *Table) PostHeaderRead(sq *rdma.SendQueue, loc Loc, dst []uint64) *rdma.WR {
	return sq.PostRead(t.cfg.Node, t.cfg.RegionID, IncVerOffset(loc.Off), dst[:EntryHeaderWords])
}

// DecodeEntry decodes a fetched entry image (the Dst of a PostEntryRead WR,
// or any window at loc.Off spanning at least EntryValueWord+ValueWords —
// e.g. a full EntryImageWords read that also carries the version chain).
// Value is bounded to the table's ValueWords regardless of the window size.
// ok is false when incarnation checking fails — the entry died or was reused
// since the location was observed — in which case the caller should
// invalidate the cached chain and re-resolve the location.
func (t *Table) DecodeEntry(words []uint64, key uint64, loc Loc) (Entry, bool) {
	e := Entry{
		Key:         words[EntryKeyWord],
		Incarnation: Incarnation(words[EntryIncVerWord]),
		Version:     Version(words[EntryIncVerWord]),
		State:       words[EntryStateWord],
		Value:       words[EntryValueWord : EntryValueWord+t.cfg.ValueWords],
	}
	if !Live(e.Incarnation) || e.Key != key ||
		uint64(e.Incarnation)&slotLossyMask != loc.Lossy {
		return Entry{}, false
	}
	return e, true
}

// Invalidate explicitly drops every cached bucket on key's chain from c.
// The location cache normally needs no invalidation protocol (stale
// locations are caught by incarnation checking), but a caller that has just
// *observed* staleness uses this to stop replaying the dead location from
// cache instead of re-fetching the whole chain remotely. The key→bucket
// mapping needs the table's geometry, which is why the API lives on Table
// rather than on the cache.
func (t *Table) Invalidate(c Cache, key uint64) {
	if c == nil {
		return
	}
	cacheInvalidateChain(c, t, key)
}
