package kvs

import (
	"drtm/internal/htm"
	"drtm/internal/memory"
)

// Chain write-side helpers: every committed overwrite of an entry retires
// the current (stamp, incver, value) triple into its ring slot and advances
// the tail before the head word publishes the new version. The three write
// paths — in-HTM local commits, one-sided remote write-backs, and plain
// seqlocked writes (insert prep, redo drains, fallback publish) — share the
// slot/tail math here; layout.go documents the ordering protocol that makes
// a single ascending READ of the image torn-write-detectable.

// RetireTx performs the chain side of an in-HTM overwrite of the entry at
// off: the current triple moves into its ring slot and the tail advances to
// (clamped now, newIncVer). Must run inside the same HTM transaction as the
// value/head writes (the HTM publish locks every affected line, so remote
// readers see the whole update or none of it per line wave). No-op when
// depth <= 0.
func RetireTx(hx *htm.Txn, a *memory.Arena, off memory.Offset, vw, depth int, now, newIncVer uint64) {
	if depth <= 0 {
		return
	}
	tailOff := TailOffset(off, vw, depth)
	oldStamp := hx.Read(a, tailOff+TailStampWord)
	oldHead := hx.Read(a, off+EntryIncVerWord)
	if oldStamp != 0 {
		so := ChainSlotOffset(off, vw, ChainSlotIndex(Version(oldHead), depth))
		hx.Write(a, so+ChainStampWord, oldStamp)
		hx.Write(a, so+ChainIncVerWord, oldHead)
		for i := 0; i < vw; i++ {
			hx.Write(a, so+memory.Offset(ChainValueWord+i),
				hx.Read(a, off+memory.Offset(EntryValueWord+i)))
		}
	}
	hx.Write(a, tailOff+TailStampWord, ClampStamp(now, oldStamp))
	hx.Write(a, tailOff+TailIncVerWord, newIncVer)
}

// RetireSlotTx is the slot half of RetireTx: it moves the entry's current
// (stamp, incver, value) triple into its ring slot inside the HTM region and
// returns the previous tail stamp, but leaves the tail untouched. A
// multi-entry transactional commit uses it so that ONE stamp can cover every
// written entry: the caller collects the returned previous tail stamps,
// raises its commit stamp above all of them, and publishes every entry's
// tail pair (stamp, final head) in a fix-up pass before the HTM commit — a
// commit whose entries carried different stamps could be observed half-done
// by a snapshot reader between them. Returns 0 (and writes nothing) for an
// unstamped entry or when depth <= 0.
func RetireSlotTx(hx *htm.Txn, a *memory.Arena, off memory.Offset, vw, depth int) uint64 {
	if depth <= 0 {
		return 0
	}
	oldStamp := hx.Read(a, TailOffset(off, vw, depth)+TailStampWord)
	if oldStamp == 0 {
		return 0
	}
	oldHead := hx.Read(a, off+EntryIncVerWord)
	so := ChainSlotOffset(off, vw, ChainSlotIndex(Version(oldHead), depth))
	hx.Write(a, so+ChainStampWord, oldStamp)
	hx.Write(a, so+ChainIncVerWord, oldHead)
	for i := 0; i < vw; i++ {
		hx.Write(a, so+memory.Offset(ChainValueWord+i),
			hx.Read(a, off+memory.Offset(EntryValueWord+i)))
	}
	return oldStamp
}

// RetireLocal is RetireTx for plain seqlocked writes (redo drains, shipped
// store ops): the caller must hold whatever serialization protects the entry
// (redoMu, the entry's state lock). Writes follow the tail-first protocol:
// tail dirties, then the slot, so a concurrent MVCC READ observes either the
// old quiescent image or a head/tail mismatch. The caller writes value and
// head afterwards. Returns the clamped stamp actually published.
func RetireLocal(a *memory.Arena, off memory.Offset, vw, depth int, now, newIncVer uint64) uint64 {
	if depth <= 0 {
		return now
	}
	tailOff := TailOffset(off, vw, depth)
	oldStamp := a.LoadWord(tailOff + TailStampWord)
	oldHead := a.LoadWord(off + EntryIncVerWord)
	stamp := ClampStamp(now, oldStamp)
	a.Write(tailOff, []uint64{stamp, newIncVer})
	if oldStamp != 0 {
		so := ChainSlotOffset(off, vw, ChainSlotIndex(Version(oldHead), depth))
		slot := make([]uint64, ChainSlotWords(vw))
		slot[ChainStampWord] = oldStamp
		slot[ChainIncVerWord] = oldHead
		a.Read(slot[ChainValueWord:], off+EntryValueWord)
		a.Write(so, slot)
	}
	return stamp
}

// ResetChain zeroes the entry's ring and tail with seqlocked writes. Insert
// prep calls it on a dead entry before publication: a recycled entry's ring
// belongs to the PREVIOUS key that lived at this offset, and must never be
// resolvable under the new one.
func ResetChain(a *memory.Arena, off memory.Offset, vw, depth int) {
	if depth <= 0 {
		return
	}
	a.Write(off+memory.Offset(EntryValueWord+vw), make([]uint64, ChainWords(vw, depth)))
}
