package kvs

import (
	"sync"
	"sync/atomic"
)

// Cache is the location-cache contract used by the remote access path.
// Two implementations exist: the paper's simple direct-mapped LocationCache
// and the set-associative, LRU-replaced AssocCache the paper names as
// future work ("How to improve the cache through heuristic structure
// (e.g., associativity) and replacement mechanisms (e.g., LRU) will be our
// future work", Section 5.4).
type Cache interface {
	get(tag uint64) ([]uint64, bool)
	put(tag uint64, words []uint64)
	invalidate(tag uint64)
	// Stats returns hit/miss/invalidation counts.
	Stats() (hits, misses, invals int64)
}

var (
	_ Cache = (*LocationCache)(nil)
	_ Cache = (*AssocCache)(nil)
)

// AssocCache is an N-way set-associative location cache with LRU
// replacement within each set. Under uniform workloads with small budgets,
// the direct-mapped cache thrashes on conflict misses (the sharp drop of
// Figure 10(d)); associativity recovers most of it — the `ablate-assoc`
// experiment quantifies the difference.
type AssocCache struct {
	mu   sync.Mutex
	sets [][]assocFrame
	ways int
	tick uint64

	hits   atomic.Int64
	misses atomic.Int64
	invals atomic.Int64
}

type assocFrame struct {
	tag     uint64
	valid   bool
	lastUse uint64
	words   [BucketWords]uint64
}

// NewAssocCache builds a cache of the given byte budget with `ways`-way
// sets (minimum one set).
func NewAssocCache(budgetBytes, ways int) *AssocCache {
	if ways < 1 {
		ways = 1
	}
	frames := budgetBytes / BucketBytes
	if frames < ways {
		frames = ways
	}
	nsets := frames / ways
	c := &AssocCache{ways: ways, sets: make([][]assocFrame, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]assocFrame, ways)
	}
	return c
}

// Frames returns the capacity in buckets.
func (c *AssocCache) Frames() int { return len(c.sets) * c.ways }

// Stats implements Cache.
func (c *AssocCache) Stats() (hits, misses, invals int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.invals.Load()
}

func (c *AssocCache) setOf(tag uint64) []assocFrame {
	return c.sets[mix64(tag)%uint64(len(c.sets))]
}

func (c *AssocCache) get(tag uint64) ([]uint64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	set := c.setOf(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.tick++
			set[i].lastUse = c.tick
			out := make([]uint64, BucketWords)
			copy(out, set[i].words[:])
			c.mu.Unlock()
			c.hits.Add(1)
			return out, true
		}
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

func (c *AssocCache) put(tag uint64, words []uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.setOf(tag)
	c.tick++
	// Hit or free way first; otherwise evict the LRU way.
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			victim = i
			break
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	set[victim].tag = tag
	set[victim].valid = true
	set[victim].lastUse = c.tick
	copy(set[victim].words[:], words)
}

func (c *AssocCache) invalidate(tag uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	set := c.setOf(tag)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			c.invals.Add(1)
			break
		}
	}
	c.mu.Unlock()
}

// InvalidateChain drops every cached bucket on key's chain, mirroring
// LocationCache.invalidateChain for the shared remote-access path.
func cacheInvalidateChain(c Cache, t *Table, key uint64) {
	idx := t.bucketOf(key)
	tag := mainTag(idx)
	for depth := 0; depth < maxChain; depth++ {
		words, ok := c.get(tag)
		c.invalidate(tag)
		if !ok {
			return
		}
		var next uint64
		for s := 0; s < SlotsPerBucket; s++ {
			if SlotType(words[s*SlotWords]) == TypeHeader {
				next = uint64(SlotOffset(words[s*SlotWords]))
			}
		}
		if next == 0 {
			return
		}
		tag = indirTag(next)
	}
}
