package kvs

import (
	"fmt"
	"sync"

	"drtm/internal/btree"
	"drtm/internal/htm"
	"drtm/internal/memory"
)

// Ordered is DrTM's ordered store: a B+ tree index over records that live
// in the same arena-based, HTM/2PL-protected entry format as the hash
// table's. The tree maps key -> entry offset; record bodies (state word,
// version, value) are read and written transactionally exactly like
// unordered records, so the concurrency-control protocol does not care
// which store a record came from. Only the *index* structure itself uses
// latches instead of HTM (see DESIGN.md).
//
// As in the paper, ordered stores have no one-sided RDMA path: remote
// accesses ship the operation to the host via SEND/RECV verbs
// (Section 6.5), which the cluster layer wires up.
type OrderedConfig struct {
	Node       int
	RegionID   int
	Capacity   int
	ValueWords int
}

// Ordered is one node's shard of an ordered table.
type Ordered struct {
	cfg        OrderedConfig
	arena      *memory.Arena
	eng        *htm.Engine
	tree       *btree.Tree
	entryWords int

	mu       sync.Mutex
	freeList []memory.Offset
}

// NewOrdered builds an empty ordered table.
func NewOrdered(cfg OrderedConfig, eng *htm.Engine) *Ordered {
	if cfg.Capacity <= 0 || cfg.ValueWords < 0 {
		panic("kvs: invalid ordered config")
	}
	ew := EntryValueWord + cfg.ValueWords
	if rem := ew % memory.WordsPerLine; rem != 0 {
		ew += memory.WordsPerLine - rem
	}
	o := &Ordered{
		cfg:        cfg,
		eng:        eng,
		tree:       btree.New(),
		entryWords: ew,
	}
	o.arena = memory.NewArena(cfg.RegionID, cfg.Capacity*ew)
	o.freeList = make([]memory.Offset, 0, cfg.Capacity)
	for i := cfg.Capacity - 1; i >= 0; i-- {
		o.freeList = append(o.freeList, memory.Offset(i*ew))
	}
	return o
}

// Arena returns the record arena (for fabric registration; remote verbs
// handlers on the host still operate through this store's methods).
func (o *Ordered) Arena() *memory.Arena { return o.arena }

// Node returns the owner machine ID.
func (o *Ordered) Node() int { return o.cfg.Node }

// RegionID returns the RDMA region ID.
func (o *Ordered) RegionID() int { return o.cfg.RegionID }

// ValueWords returns the fixed value length.
func (o *Ordered) ValueWords() int { return o.cfg.ValueWords }

// Engine returns the owner's HTM engine.
func (o *Ordered) Engine() *htm.Engine { return o.eng }

// Len returns the number of live records.
func (o *Ordered) Len() int { return o.tree.Len() }

// Lookup resolves key to its entry offset via the index.
func (o *Ordered) Lookup(key uint64) (memory.Offset, bool) {
	v, ok := o.tree.Get(key)
	return memory.Offset(v), ok
}

// Insert creates a record. The body is initialized while the entry is still
// private (unreachable from the index), then the index insert publishes it.
func (o *Ordered) Insert(key uint64, val []uint64) error {
	if len(val) != o.cfg.ValueWords {
		return fmt.Errorf("kvs: value length %d, want %d", len(val), o.cfg.ValueWords)
	}
	o.mu.Lock()
	if len(o.freeList) == 0 {
		o.mu.Unlock()
		return ErrFull
	}
	off := o.freeList[len(o.freeList)-1]
	o.freeList = o.freeList[:len(o.freeList)-1]
	o.mu.Unlock()

	inc := Incarnation(o.arena.LoadWord(off + EntryIncVerWord))
	o.arena.Write(off+EntryKeyWord, []uint64{key})
	o.arena.Write(off+EntryIncVerWord, []uint64{PackIncVer(inc+1, 0)})
	o.arena.Write(off+EntryStateWord, []uint64{0})
	o.arena.Write(off+EntryValueWord, val)

	if !o.tree.InsertIfAbsent(key, uint64(off)) {
		// Key already existed: kill and recycle the prepared entry.
		o.arena.Write(off+EntryIncVerWord, []uint64{PackIncVer(inc+2, 0)})
		o.mu.Lock()
		o.freeList = append(o.freeList, off)
		o.mu.Unlock()
		return ErrExists
	}
	return nil
}

// Delete removes key. The record dies (even incarnation) before the entry
// is recycled.
func (o *Ordered) Delete(key uint64) bool {
	off, ok := o.Lookup(key)
	if !ok {
		return false
	}
	if !o.tree.Delete(key) {
		return false
	}
	incver := o.arena.LoadWord(off + EntryIncVerWord)
	o.arena.Write(off+EntryIncVerWord,
		[]uint64{PackIncVer(Incarnation(incver)+1, Version(incver))})
	o.mu.Lock()
	o.freeList = append(o.freeList, off)
	o.mu.Unlock()
	return true
}

// ReadTx copies key's value transactionally.
func (o *Ordered) ReadTx(tx *htm.Txn, key uint64) ([]uint64, bool) {
	off, ok := o.Lookup(key)
	if !ok {
		return nil, false
	}
	val := make([]uint64, o.cfg.ValueWords)
	tx.ReadN(o.arena, off+EntryValueWord, val)
	return val, true
}

// WriteTx transactionally overwrites key's value, bumping its version.
func (o *Ordered) WriteTx(tx *htm.Txn, key uint64, val []uint64) bool {
	off, ok := o.Lookup(key)
	if !ok {
		return false
	}
	incver := tx.Read(o.arena, off+EntryIncVerWord)
	tx.Write(o.arena, off+EntryIncVerWord,
		PackIncVer(Incarnation(incver), Version(incver)+1))
	tx.WriteN(o.arena, off+EntryValueWord, val)
	return true
}

// Scan visits entry offsets for keys in [lo, hi] ascending.
func (o *Ordered) Scan(lo, hi uint64, fn func(key uint64, off memory.Offset) bool) {
	o.tree.Ascend(lo, hi, func(k, v uint64) bool { return fn(k, memory.Offset(v)) })
}

// ScanDesc visits entry offsets for keys in [lo, hi] descending.
func (o *Ordered) ScanDesc(lo, hi uint64, fn func(key uint64, off memory.Offset) bool) {
	o.tree.Descend(lo, hi, func(k, v uint64) bool { return fn(k, memory.Offset(v)) })
}

// Min returns the smallest key and its offset.
func (o *Ordered) Min() (uint64, memory.Offset, bool) {
	k, v, ok := o.tree.Min()
	return k, memory.Offset(v), ok
}

// Get runs a read in its own HTM transaction (convenience API).
func (o *Ordered) Get(key uint64) ([]uint64, bool) {
	var val []uint64
	var ok bool
	const attempts = 10_000
	for i := 0; i < attempts; i++ {
		err := o.eng.Run(func(tx *htm.Txn) error {
			val, ok = o.ReadTx(tx, key)
			return nil
		})
		if err == nil {
			return val, ok
		}
		if _, isAbort := htm.IsAbort(err); !isAbort {
			return nil, false
		}
	}
	return nil, false
}
