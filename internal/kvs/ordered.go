package kvs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"drtm/internal/btree"
	"drtm/internal/htm"
	"drtm/internal/memory"
)

// Ordered is DrTM's ordered store: a B+ tree index over records that live
// in the same arena-based, HTM/2PL-protected entry format as the hash
// table's. The tree maps key -> entry offset; record bodies (state word,
// version, value) are read and written transactionally exactly like
// unordered records, so the concurrency-control protocol does not care
// which store a record came from. Only the *index* structure itself uses
// latches instead of HTM (see DESIGN.md).
//
// As in the paper, ordered stores have no one-sided RDMA path: remote
// accesses ship the operation to the host via SEND/RECV verbs
// (Section 6.5), which the cluster layer wires up.
type OrderedConfig struct {
	Node       int
	RegionID   int
	Capacity   int
	ValueWords int

	// ChainDepth is the per-entry version-chain ring depth (0 disables
	// chains; see layout.go). Stamp supplies commit soft-time for chain
	// tails; nil falls back to a per-shard monotone counter.
	ChainDepth int
	Stamp      func() uint64

	// SegShift selects which key bits pick a record's segment stamp:
	// segment = (key >> SegShift) & (SegCount-1). Workloads whose range
	// scans cover a contiguous sub-key space (e.g. TATP's s_id<<8|sf_type
	// composite keys) set SegShift to the width of the sub-key so that one
	// subscriber's rows share a segment and scans validate few stamps.
	SegShift uint
}

// SegCount is the number of range-scan segment stamps per ordered shard.
// Each stamp is a word counter bumped atomically with every structural
// change (insert/remove of a tree entry) whose key falls in the segment —
// the bump and the tree mutation happen under the shard's structural latch.
// A scan reads its segments' stamps before walking the tree (the walk's
// read-latch orders it after any in-flight change whose bump it observed)
// and re-reads them at commit: unchanged stamps prove the tree's [lo,hi]
// membership did not change between the pre-walk read and the commit-time
// read (see DESIGN.md, "Range scans & secondary indexes").
const SegCount = 64

// segBase is the arena offset where record entries start: SegCount stamps,
// one per cache line so a bump's seqlock conflict stays private to its
// segment.
const segBase = memory.Offset(SegCount * memory.WordsPerLine)

// SegStampOffset returns the arena offset of segment s's stamp word.
func SegStampOffset(s int) memory.Offset {
	return memory.Offset(s * memory.WordsPerLine)
}

// Ordered is one node's shard of an ordered table.
type Ordered struct {
	cfg        OrderedConfig
	arena      *memory.Arena
	eng        *htm.Engine
	tree       *btree.Tree
	entryWords int

	mu       sync.Mutex
	freeList []memory.Offset
	zeroVal  []uint64

	stampSeq atomic.Uint64 // fallback stamp source when cfg.Stamp is nil

	// smu is the structural latch: writers hold it exclusively across a
	// stamp bump + tree mutation pair (making them atomic to observers of
	// the stamp), scans hold it shared across their walk. Point lookups use
	// only the tree's internal latch.
	smu sync.RWMutex
}

// NewOrdered builds an empty ordered table.
func NewOrdered(cfg OrderedConfig, eng *htm.Engine) *Ordered {
	if cfg.Capacity <= 0 || cfg.ValueWords < 0 {
		panic("kvs: invalid ordered config")
	}
	ew := EntryImageWords(cfg.ValueWords, cfg.ChainDepth)
	if rem := ew % memory.WordsPerLine; rem != 0 {
		ew += memory.WordsPerLine - rem
	}
	o := &Ordered{
		cfg:        cfg,
		eng:        eng,
		tree:       btree.New(),
		entryWords: ew,
	}
	o.arena = memory.NewArena(cfg.RegionID, int(segBase)+cfg.Capacity*ew)
	o.freeList = make([]memory.Offset, 0, cfg.Capacity)
	for i := cfg.Capacity - 1; i >= 0; i-- {
		o.freeList = append(o.freeList, segBase+memory.Offset(i*ew))
	}
	o.zeroVal = make([]uint64, cfg.ValueWords)
	return o
}

// stampTail seqlock-writes the entry's chain tail (no-op when chains are
// disabled). Used on private entries during insert prep; committed
// overwrites go through RetireTx/RetireLocal instead.
func (o *Ordered) stampTail(off memory.Offset, stamp, incver uint64) {
	if o.cfg.ChainDepth <= 0 {
		return
	}
	o.arena.Write(TailOffset(off, o.cfg.ValueWords, o.cfg.ChainDepth),
		[]uint64{stamp, incver})
}

// SegOf maps a key to its segment index.
func (o *Ordered) SegOf(key uint64) int {
	return int((key >> o.cfg.SegShift) & (SegCount - 1))
}

// SegStamp reads segment s's current stamp.
func (o *Ordered) SegStamp(s int) uint64 {
	return o.arena.LoadWord(SegStampOffset(s))
}

// SegSpan appends to dst the segment indices covering keys in [lo, hi].
// When the span wraps the whole stamp table, every segment is returned.
func (o *Ordered) SegSpan(dst []int, lo, hi uint64) []int {
	l, h := lo>>o.cfg.SegShift, hi>>o.cfg.SegShift
	if h < l {
		return dst
	}
	if h-l >= SegCount-1 {
		for s := 0; s < SegCount; s++ {
			dst = append(dst, s)
		}
		return dst
	}
	for v := l; ; v++ {
		dst = append(dst, int(v&(SegCount-1)))
		if v == h {
			break
		}
	}
	return dst
}

// bumpSeg advances key's segment stamp. Callers hold smu exclusively, so
// the bump is atomic with the tree mutation it announces: a scanner whose
// pre-walk and validation stamp reads match is guaranteed no membership
// change committed in between — any change it raced was either fully
// visible to its walk (the bump predates the scanner's pre-walk read, so
// the walk's read-latch waited out the writer) or bumped the stamp.
func (o *Ordered) bumpSeg(key uint64) {
	o.arena.FAA(SegStampOffset(o.SegOf(key)), 1)
}

// Arena returns the record arena (for fabric registration; remote verbs
// handlers on the host still operate through this store's methods).
func (o *Ordered) Arena() *memory.Arena { return o.arena }

// Node returns the owner machine ID.
func (o *Ordered) Node() int { return o.cfg.Node }

// RegionID returns the RDMA region ID.
func (o *Ordered) RegionID() int { return o.cfg.RegionID }

// ValueWords returns the fixed value length.
func (o *Ordered) ValueWords() int { return o.cfg.ValueWords }

// Engine returns the owner's HTM engine.
func (o *Ordered) Engine() *htm.Engine { return o.eng }

// ChainDepth returns the version-chain ring depth (0 when disabled).
func (o *Ordered) ChainDepth() int { return o.cfg.ChainDepth }

// StampNow returns a commit stamp for chain tails.
func (o *Ordered) StampNow() uint64 {
	if o.cfg.Stamp != nil {
		return o.cfg.Stamp()
	}
	return o.stampSeq.Add(1)
}

// Len returns the number of live records.
func (o *Ordered) Len() int { return o.tree.Len() }

// Lookup resolves key to its entry offset via the index.
func (o *Ordered) Lookup(key uint64) (memory.Offset, bool) {
	v, ok := o.tree.Get(key)
	return memory.Offset(v), ok
}

// Insert creates a record. The body is initialized while the entry is still
// private (unreachable from the index), then the index insert publishes it.
func (o *Ordered) Insert(key uint64, val []uint64) error {
	if len(val) != o.cfg.ValueWords {
		return fmt.Errorf("kvs: value length %d, want %d", len(val), o.cfg.ValueWords)
	}
	o.mu.Lock()
	if len(o.freeList) == 0 {
		o.mu.Unlock()
		return ErrFull
	}
	off := o.freeList[len(o.freeList)-1]
	o.freeList = o.freeList[:len(o.freeList)-1]
	o.mu.Unlock()

	inc := Incarnation(o.arena.LoadWord(off + EntryIncVerWord))
	o.arena.Write(off+EntryKeyWord, []uint64{key})
	o.arena.Write(off+EntryIncVerWord, []uint64{PackIncVer(inc+1, 0)})
	o.arena.Write(off+EntryStateWord, []uint64{0})
	o.arena.Write(off+EntryValueWord, val)
	// The ring is zeroed (a recycled slot's chain belongs to the previous
	// key) and the tail stamped while the entry is still private.
	ResetChain(o.arena, off, o.cfg.ValueWords, o.cfg.ChainDepth)
	o.stampTail(off, o.StampNow(), PackIncVer(inc+1, 0))

	o.smu.Lock()
	o.bumpSeg(key)
	ok := o.tree.InsertIfAbsent(key, uint64(off))
	o.smu.Unlock()
	if !ok {
		// Key already existed: kill and recycle the prepared entry.
		o.arena.Write(off+EntryIncVerWord, []uint64{PackIncVer(inc+2, 0)})
		o.mu.Lock()
		o.freeList = append(o.freeList, off)
		o.mu.Unlock()
		return ErrExists
	}
	return nil
}

// Delete removes key. The record dies (even incarnation) before the entry
// is recycled.
func (o *Ordered) Delete(key uint64) bool {
	o.smu.Lock()
	off, ok := o.Lookup(key)
	if !ok {
		o.smu.Unlock()
		return false
	}
	o.bumpSeg(key)
	ok = o.tree.Delete(key)
	o.smu.Unlock()
	if !ok {
		return false
	}
	incver := o.arena.LoadWord(off + EntryIncVerWord)
	dead := PackIncVer(Incarnation(incver)+1, Version(incver))
	RetireLocal(o.arena, off, o.cfg.ValueWords, o.cfg.ChainDepth, o.StampNow(), dead)
	o.arena.Write(off+EntryIncVerWord, []uint64{dead})
	o.mu.Lock()
	o.freeList = append(o.freeList, off)
	o.mu.Unlock()
	return true
}

// EnsureDead makes key structurally present as a DEAD entry and returns its
// offset — the first half of a transactional insert. The tx layer then
// CAS-locks the entry's state word, re-verifies key+deadness (the slot could
// have been recycled in between), and flips the incarnation live at commit.
// An existing live entry is ErrExists; an existing dead entry is reused
// as-is (its version is kept, so the flip's version bump stays monotonic).
// A fresh slot gets incarnation inc+2 — still even (dead), but distinct from
// anything the slot's previous occupant published, so stale validation
// headers can never match a recycled slot.
//
// Aborted inserts simply leave the dead entry in place: scans skip dead
// entries, and a later insert of the same key reuses it.
func (o *Ordered) EnsureDead(key uint64) (memory.Offset, error) {
	for {
		if v, ok := o.tree.Get(key); ok {
			off := memory.Offset(v)
			if Live(Incarnation(o.arena.LoadWord(off + EntryIncVerWord))) {
				return 0, ErrExists
			}
			return off, nil
		}
		o.mu.Lock()
		if len(o.freeList) == 0 {
			o.mu.Unlock()
			return 0, ErrFull
		}
		off := o.freeList[len(o.freeList)-1]
		o.freeList = o.freeList[:len(o.freeList)-1]
		o.mu.Unlock()

		inc := Incarnation(o.arena.LoadWord(off + EntryIncVerWord))
		o.arena.Write(off+EntryKeyWord, []uint64{key})
		o.arena.Write(off+EntryIncVerWord, []uint64{PackIncVer(inc+2, 0)})
		o.arena.Write(off+EntryStateWord, []uint64{0})
		o.arena.Write(off+EntryValueWord, o.zeroVal)
		ResetChain(o.arena, off, o.cfg.ValueWords, o.cfg.ChainDepth)
		o.stampTail(off, o.StampNow(), PackIncVer(inc+2, 0))

		o.smu.Lock()
		o.bumpSeg(key)
		inserted := o.tree.InsertIfAbsent(key, uint64(off))
		o.smu.Unlock()
		if inserted {
			return off, nil
		}
		// Lost an insert race: recycle the prepared slot and re-resolve.
		o.mu.Lock()
		o.freeList = append(o.freeList, off)
		o.mu.Unlock()
	}
}

// RemoveEntry unlinks a DEAD entry from the tree and recycles its slot —
// the deferred second half of a transactional delete. The caller holds the
// entry's state-word lock and has verified the entry is dead; the off check
// skips the removal if the key was re-inserted under a different slot since
// the caller resolved it. The freed slot's state word is left as the caller
// set it — Insert/EnsureDead re-initialize it on reuse.
func (o *Ordered) RemoveEntry(key uint64, off memory.Offset) bool {
	o.smu.Lock()
	if v, ok := o.tree.Get(key); !ok || memory.Offset(v) != off {
		o.smu.Unlock()
		return false
	}
	o.bumpSeg(key)
	ok := o.tree.Delete(key)
	o.smu.Unlock()
	if !ok {
		return false
	}
	o.mu.Lock()
	o.freeList = append(o.freeList, off)
	o.mu.Unlock()
	return true
}

// EntryWords returns the line-aligned words per record entry.
func (o *Ordered) EntryWords() int { return o.entryWords }

// SegShift returns the configured segment shift.
func (o *Ordered) SegShift() uint { return o.cfg.SegShift }

// ReadTx copies key's value transactionally.
func (o *Ordered) ReadTx(tx *htm.Txn, key uint64) ([]uint64, bool) {
	off, ok := o.Lookup(key)
	if !ok {
		return nil, false
	}
	val := make([]uint64, o.cfg.ValueWords)
	tx.ReadN(o.arena, off+EntryValueWord, val)
	return val, true
}

// WriteTx transactionally overwrites key's value, bumping its version.
func (o *Ordered) WriteTx(tx *htm.Txn, key uint64, val []uint64) bool {
	off, ok := o.Lookup(key)
	if !ok {
		return false
	}
	incver := tx.Read(o.arena, off+EntryIncVerWord)
	next := PackIncVer(Incarnation(incver), Version(incver)+1)
	RetireTx(tx, o.arena, off, o.cfg.ValueWords, o.cfg.ChainDepth, o.StampNow(), next)
	tx.Write(o.arena, off+EntryIncVerWord, next)
	tx.WriteN(o.arena, off+EntryValueWord, val)
	return true
}

// Scan visits entry offsets for keys in [lo, hi] ascending, holding the
// structural latch shared for the whole walk (see smu).
func (o *Ordered) Scan(lo, hi uint64, fn func(key uint64, off memory.Offset) bool) {
	o.smu.RLock()
	defer o.smu.RUnlock()
	o.tree.Ascend(lo, hi, func(k, v uint64) bool { return fn(k, memory.Offset(v)) })
}

// ScanDesc visits entry offsets for keys in [lo, hi] descending.
func (o *Ordered) ScanDesc(lo, hi uint64, fn func(key uint64, off memory.Offset) bool) {
	o.smu.RLock()
	defer o.smu.RUnlock()
	o.tree.Descend(lo, hi, func(k, v uint64) bool { return fn(k, memory.Offset(v)) })
}

// Min returns the smallest key and its offset.
func (o *Ordered) Min() (uint64, memory.Offset, bool) {
	k, v, ok := o.tree.Min()
	return k, memory.Offset(v), ok
}

// Get runs a read in its own HTM transaction (convenience API).
func (o *Ordered) Get(key uint64) ([]uint64, bool) {
	var val []uint64
	var ok bool
	const attempts = 10_000
	for i := 0; i < attempts; i++ {
		err := o.eng.Run(func(tx *htm.Txn) error {
			val, ok = o.ReadTx(tx, key)
			return nil
		})
		if err == nil {
			return val, ok
		}
		if _, isAbort := htm.IsAbort(err); !isAbort {
			return nil, false
		}
	}
	return nil, false
}
