package kvs

import (
	"sync"
	"testing"

	"drtm/internal/htm"
	"drtm/internal/memory"
)

func newOrdered(t testing.TB, cap int) *Ordered {
	t.Helper()
	return NewOrdered(OrderedConfig{Node: 0, RegionID: 10, Capacity: cap, ValueWords: 2},
		htm.NewEngine(htm.Config{}))
}

func TestOrderedInsertGet(t *testing.T) {
	o := newOrdered(t, 64)
	if err := o.Insert(5, val(1, 2)); err != nil {
		t.Fatal(err)
	}
	v, ok := o.Get(5)
	if !ok || v[0] != 1 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if err := o.Insert(5, val(9, 9)); err != ErrExists {
		t.Fatalf("dup insert err = %v", err)
	}
	// Duplicate must not clobber the original.
	v, _ = o.Get(5)
	if v[0] != 1 {
		t.Fatal("duplicate insert corrupted record")
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
}

func TestOrderedDeleteRecycle(t *testing.T) {
	o := newOrdered(t, 2)
	_ = o.Insert(1, val(1, 1))
	_ = o.Insert(2, val(2, 2))
	if err := o.Insert(3, val(3, 3)); err != ErrFull {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	if !o.Delete(1) {
		t.Fatal("delete failed")
	}
	if err := o.Insert(3, val(3, 3)); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	if _, ok := o.Get(1); ok {
		t.Fatal("deleted key readable")
	}
	if o.Delete(1) {
		t.Fatal("double delete")
	}
}

func TestOrderedScanRange(t *testing.T) {
	o := newOrdered(t, 64)
	for k := uint64(10); k <= 50; k += 10 {
		_ = o.Insert(k, val(k, k))
	}
	var keys []uint64
	o.Scan(15, 45, func(k uint64, off memory.Offset) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != 3 || keys[0] != 20 || keys[2] != 40 {
		t.Fatalf("scan = %v", keys)
	}
	keys = keys[:0]
	o.ScanDesc(0, 100, func(k uint64, off memory.Offset) bool {
		keys = append(keys, k)
		return len(keys) < 2
	})
	if len(keys) != 2 || keys[0] != 50 || keys[1] != 40 {
		t.Fatalf("desc scan = %v", keys)
	}
	if k, _, ok := o.Min(); !ok || k != 10 {
		t.Fatalf("Min = %d,%v", k, ok)
	}
}

func TestOrderedTransactionalReadWrite(t *testing.T) {
	o := newOrdered(t, 16)
	_ = o.Insert(7, val(1, 1))
	eng := o.Engine()
	err := eng.Run(func(tx *htm.Txn) error {
		if !o.WriteTx(tx, 7, val(5, 5)) {
			t.Error("WriteTx failed")
		}
		v, ok := o.ReadTx(tx, 7)
		if !ok || v[0] != 5 {
			t.Errorf("ReadTx inside txn = %v,%v", v, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := o.Get(7)
	if v[0] != 5 {
		t.Fatal("committed write lost")
	}
	off, _ := o.Lookup(7)
	if Version(o.arena.LoadWord(off+EntryIncVerWord)) != 1 {
		t.Fatal("version not bumped")
	}
}

func TestOrderedConcurrentInserts(t *testing.T) {
	o := newOrdered(t, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(1); i <= 100; i++ {
				if err := o.Insert(base*1000+i, val(i, i)); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if o.Len() != 400 {
		t.Fatalf("Len = %d", o.Len())
	}
}
