package tx

import (
	"errors"

	"drtm/internal/clock"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/nvram"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// Explicit HTM abort codes used by the protocol (XABORT imm8 values).
const (
	abortCodeLocked uint8 = 1 // local access found the record remotely locked
	abortCodeLease  uint8 = 2 // lease confirmation failed at commit
	abortCodeSpec   uint8 = 3 // speculative read validation failed at commit
	abortCodeView   uint8 = 4 // a touched partition's view changed (failover)
	abortCodeScan   uint8 = 5 // range-scan validation failed at commit (phantom)
	abortCodeStale  uint8 = 6 // a staged insert/erase entry was recycled under us
)

// remoteRec is a staged remote record.
type remoteRec struct {
	table, node int
	region      int // storage region on node (replica region after failover)
	part        int // home partition (for replication; -1 if replicated table)
	key         uint64
	off         memory.Offset // entry offset in the owner's arena
	lossy       uint64        // lossy incarnation from the locator (staleness check)
	buf         []uint64      // prefetched value (transaction-private)
	version     uint32        // version observed at fetch
	inc         uint32        // incarnation observed at fetch
	leaseEnd    uint64        // granted lease end (reads)
	write       bool          // exclusive lock held (writes)
	spec        bool          // speculative read: no lock held, validated at commit
	dirty       bool          // buffer modified; needs write-back

	// Ordered-store records (shipped lookups; Section 6.5). insert marks a
	// transactional insert staged against a dead entry (flipped live at
	// commit); erase marks a transactional delete (flipped dead at commit,
	// physical removal deferred to applyRemovals).
	ordered bool
	insert  bool
	erase   bool

	// prevTail is the entry's tail stamp observed post-lock (write records
	// of chained tables only): commitRemotes retires the superseded version
	// at this stamp, and the commit stamp is raised above it (sealChains).
	prevTail uint64
}

// localRec is a declared local record (needed for the fallback handler,
// which must lock local records too).
type localRec struct {
	table  int
	region int // storage region on this node (replica region after promotion)
	part   int // home partition (-1 for replicated tables)
	key    uint64
	write  bool
}

// walRec captures one update for the write-ahead log and recovery. node and
// table address the record's storage (table is the fabric/storage region, a
// replica region after failover); the remaining fields carry the logical
// coordinates replication needs to rebuild the update on another copy.
type walRec struct {
	node, table int
	off         memory.Offset
	version     uint32
	// inc is the post-commit incarnation for ordered records (never 0: a
	// live record's incarnation is odd >= 1, an erased one's even >= 2); 0 is
	// the unordered sentinel, where recovery and redo compare the version
	// alone. Packed with version into one WAL word.
	inc uint32
	val []uint64

	// In-memory only (not serialized to the WAL): the logical table, home
	// partition and key, used to build redo records for the backups.
	ltable int
	part   int
	key    uint64
}

// deferredOp is an insert/delete applied after commit (index structures are
// not HTM-protected in this reproduction; see DESIGN.md).
type deferredOp struct {
	insert bool
	table  int
	key    uint64
	val    []uint64
}

// Tx is a single distributed transaction attempt context. A Tx is created
// by Executor.Exec's build callback, stages its remote read/write sets
// (Start phase), then runs Execute once. It must not be reused.
type Tx struct {
	e *Executor

	startSoft uint64 // softtime read non-transactionally at Begin (strategy c)
	leaseEnd  uint64 // common desired lease end for this transaction
	txid      uint64

	// policy is the effective read policy for this attempt, resolved at
	// newTx from the executor's override / the runtime (see policy.go).
	policy ReadPolicy

	remotes  []*remoteRec
	rIndex   map[refKey]*remoteRec
	locals   []localRec
	lIndex   map[refKey]int
	deferred []deferredOp

	// Ordered-store transactional state: range scans collected by the body
	// (reset per HTM attempt), local structural ops declared before Execute
	// (inserts flip a staged dead entry live at commit; erases flip a live
	// entry dead), and post-commit physical removals of dead entries.
	scans      []scanRec
	localIns   []structOp
	localErase []structOp
	removals   []removalOp

	// Scan scratch, reused across attempts: row values and segment indices.
	scanVals []uint64
	segScr   []int

	// walLocal accumulates local updates for the write-ahead log.
	walLocal []walRec

	// wsnap holds the pristine values of write-staged remote buffers,
	// captured before the first HTM attempt. A conflict abort retries the
	// region with locks held, but the body mutates r.buf in place — without
	// restoring, the retry would read (and re-apply on top of) the aborted
	// attempt's writes while the HTM side rolled back, splitting the
	// transaction's effects. Scratch, reused across transactions.
	wsnap []uint64

	finished     bool
	choppingInfo []uint64 // optional piece info logged before locking

	// specDown records a persistent verb failure during speculative
	// validation, turning the resulting region abort into ErrNodeDown.
	specDown bool

	// views records, per touched partition, the packed view word observed
	// when the partition was first declared (nil until replication stamps
	// one). confirmViews re-reads each inside the HTM region: a mismatch
	// means a failover moved ownership mid-transaction, and the attempt
	// aborts and restages under the new view.
	views map[int]uint64

	// Replication scratch, reused across transactions on this shell: the
	// redo update set, the encoded record, the destination backup list and
	// the per-partition Backups scratch it is deduplicated from.
	redoUps []nvram.RedoUpdate
	redoBuf []uint64
	redoDst []int
	redoBk  []int

	// Version-chain commit state (MVCC snapshot reads; see kvs layout.go).
	// stampBase is the bracketed soft-time from Worker.BeginCommitStamp;
	// commitStamp the commit's uniform chain stamp, computed inside the HTM
	// region above every written entry's previous tail stamp — ONE stamp per
	// commit is what makes multi-row commits atomic under snapshot reads.
	// chainFix collects the locally written chained entries whose tail pairs
	// sealChains publishes in a fix-up pass just before XEND.
	stampBase   uint64
	commitStamp uint64
	chainFix    []chainFixRec

	// lcScratch is the Local handed to the transaction body, reused across
	// attempts (the body must not retain it past Execute).
	lcScratch Local

	// Per-attempt observability: phase durations in modeled nanoseconds and
	// the last abort cause, folded into Exec's cross-attempt totals.
	vLock, vHTM, vCommit int64
	lastAbort            obs.AbortCause
	usedFallback         bool
}

type refKey struct {
	table int
	key   uint64
}

// chainFixRec is one locally written chained entry awaiting its tail-pair
// publish (sealChains): the ring slot was filled at write time, the tail
// (uniform commit stamp, final head) lands in the pre-XEND fix-up pass.
type chainFixRec struct {
	arena    *memory.Arena
	off      memory.Offset
	vw       int
	depth    int
	prevTail uint64
}

// retireLocalChain retires a locally written entry's current version into
// its ring slot — once per entry per transaction: a second write to the same
// entry must not expose its own intermediate version as a resolvable slot —
// and queues the tail fix-up for sealChains.
func (t *Tx) retireLocalChain(htx *htm.Txn, arena *memory.Arena, off memory.Offset, vw, depth int) {
	for i := range t.chainFix {
		if t.chainFix[i].arena == arena && t.chainFix[i].off == off {
			return
		}
	}
	prev := kvs.RetireSlotTx(htx, arena, off, vw, depth)
	t.chainFix = append(t.chainFix, chainFixRec{arena: arena, off: off, vw: vw,
		depth: depth, prevTail: prev})
	t.e.w.Obs.Inc(obs.EvChainRetire)
}

// sealChains computes the commit's uniform chain stamp — above the bracket
// soft-time and above every written entry's previous tail stamp, local and
// remote — and publishes each locally written chained entry's tail pair
// inside the HTM region. Per-entry clamping instead would let two entries of
// one commit carry different stamps, and a snapshot between them would
// observe half the commit.
func (t *Tx) sealChains(htx *htm.Txn) {
	s := t.stampBase
	for _, r := range t.remotes {
		if r.write && r.prevTail >= s {
			s = r.prevTail + 1
		}
	}
	for i := range t.chainFix {
		if f := &t.chainFix[i]; f.prevTail >= s {
			s = f.prevTail + 1
		}
	}
	if s == 0 {
		s = 1
	}
	t.commitStamp = s
	for i := range t.chainFix {
		f := &t.chainFix[i]
		head := htx.Read(f.arena, kvs.IncVerOffset(f.off))
		tailOff := kvs.TailOffset(f.off, f.vw, f.depth)
		htx.Write(f.arena, tailOff+kvs.TailStampWord, s)
		htx.Write(f.arena, tailOff+kvs.TailIncVerWord, head)
	}
}

// chainDepthAt returns the version-chain depth of the store backing a
// storage region on a node (0 when chains are disabled).
func (e *Executor) chainDepthAt(node, region int) int {
	n := e.rt.C.Node(node)
	if o, ok := n.OrderedRegion(region); ok {
		return o.ChainDepth()
	}
	return n.Unordered(region).ChainDepth()
}

func (e *Executor) newTx() *Tx {
	e.txSeq++
	soft := e.w.Node.Clock.Read()
	t := e.freeTx
	if t == nil {
		t = &Tx{
			e:      e,
			rIndex: make(map[refKey]*remoteRec),
			lIndex: make(map[refKey]int),
		}
	} else {
		e.freeTx = nil // recycle left the shell empty; see Executor.recycle
	}
	t.startSoft = soft
	t.policy = e.resolvePolicy()
	t.leaseEnd = soft + e.rt.C.Config().LeaseMicros
	t.txid = uint64(e.w.Node.ID)<<48 | uint64(e.w.ID)<<40 | e.txSeq
	return t
}

// ID returns the transaction's unique identifier.
func (t *Tx) ID() uint64 { return t.txid }

// SetChoppingInfo attaches piece metadata logged ahead of locking when the
// transaction is a piece of a chopped parent (Section 4.6).
func (t *Tx) SetChoppingInfo(info []uint64) { t.choppingInfo = info }

// IsLocal reports whether the record lives on this executor's node (under
// the current view: a promoted partition's records are local to its new
// owner).
func (t *Tx) IsLocal(table int, key uint64) bool {
	node, _, _ := t.e.route(table, key)
	return node == t.e.w.Node.ID
}

// stampView records the packed view word of a touched partition the first
// time the transaction declares a record of it; confirmViews re-checks every
// stamp inside the HTM region. No-op when replication is off.
func (t *Tx) stampView(part int) {
	if part < 0 || t.e.rt.C.ReplicationFactor() == 0 {
		return
	}
	if t.views == nil {
		t.views = make(map[int]uint64)
	}
	if _, ok := t.views[part]; !ok {
		t.views[part] = t.e.rt.C.View(part)
	}
}

// R declares a read of a record: remote records are leased, read
// speculatively, or exclusively locked per the transaction's ReadPolicy and
// prefetched immediately (Start phase); local records are read inside the
// HTM region.
func (t *Tx) R(table int, key uint64) error {
	node, region, part := t.e.route(table, key)
	t.stampView(part)
	if node == t.e.w.Node.ID {
		t.declareLocal(table, region, part, key, false)
		return nil
	}
	return t.stageRemote(table, key, node, region, part, t.policy == PolicyExclusive)
}

// W declares a write of a record: remote records are exclusively locked and
// prefetched immediately; local records are written inside the HTM region.
func (t *Tx) W(table int, key uint64) error {
	node, region, part := t.e.route(table, key)
	t.stampView(part)
	if node == t.e.w.Node.ID {
		t.declareLocal(table, region, part, key, true)
		return nil
	}
	return t.stageRemote(table, key, node, region, part, true)
}

func (t *Tx) declareLocal(table, region, part int, key uint64, write bool) {
	k := refKey{table, key}
	if i, ok := t.lIndex[k]; ok {
		if write {
			t.locals[i].write = true
		}
		return
	}
	t.lIndex[k] = len(t.locals)
	t.locals = append(t.locals, localRec{table: table, region: region, part: part,
		key: key, write: write})
}

// casRemote is the acquisition-side CAS: transient faults retry with
// backoff; a persistent failure surfaces as an error (see fault.go).
func (t *Tx) casRemote(node, table int, off memory.Offset, old, new uint64) (uint64, bool, error) {
	var cur uint64
	var ok bool
	err := t.e.verbRetry(func() error {
		var e error
		cur, ok, e = t.e.w.QP.TryCAS(node, table, off, old, new)
		return e
	})
	return cur, ok, err
}

// nodeDown aborts the transaction because a node it touched is crashed or
// persistently unreachable: every held lock is released (or parked for the
// dead node) and the caller sees ErrNodeDown, which Exec does not retry.
func (t *Tx) nodeDown() error {
	t.releaseLocks()
	return ErrNodeDown
}

// fail releases held locks and asks the caller to retry the transaction.
func (t *Tx) fail() error {
	t.releaseLocks()
	return ErrRetry
}

// remoteConflict is fail() for lock/lease acquisition losses: the record is
// held by a conflicting remote owner (or the CAS budget ran out racing one).
func (t *Tx) remoteConflict() error {
	t.e.w.Obs.Inc(obs.EvRemoteLockConflict)
	t.lastAbort = obs.CauseRemote
	return t.fail()
}

// unlockRemote releases one exclusive lock with a one-sided owner-guarded
// CAS. Release-side: never fails — parked for recovery if the host is down.
func (t *Tx) unlockRemote(r *remoteRec) {
	t.e.mustUnlock(r.node, r.region, kvs.StateOffset(r.off))
}

// releaseLocks releases every exclusive lock held by this transaction
// (leases need no release; they expire). Part of ABORT in Figure 5.
func (t *Tx) releaseLocks() {
	if t.finished {
		return
	}
	for _, r := range t.remotes {
		if r.write {
			t.unlockRemote(r)
		}
	}
	t.e.putRecs(t.remotes)
	t.remotes = t.remotes[:0]
	clear(t.rIndex)
	t.finished = true
}

// cleanup ensures locks are not leaked if build returned early.
func (t *Tx) cleanup() {
	if !t.finished {
		t.releaseLocks()
	}
}

// UserAbort rolls the transaction back without retry.
func (t *Tx) UserAbort() error {
	t.releaseLocks()
	return ErrUserAbort
}

// Execute runs the transaction body: the LocalTX phase inside an HTM region
// with lease confirmation before XEND, the software fallback when HTM makes
// no progress, and the Commit phase (remote write-back + unlock) after.
func (t *Tx) Execute(fn func(lc *Local) error) error {
	if t.finished {
		return ErrRetry
	}
	rt := t.e.rt
	cfg := rt.C.Config()
	model := t.e.model()

	// MVCC commit-stamp bracket: the soft-time read lower-bounds this
	// commit's chain stamp, and the published active word pins the cluster
	// snapshot stamp below any stamp the commit can still choose, so no
	// snapshot reader's stamp can land between our entries (snapshot.go).
	t.stampBase = t.e.w.BeginCommitStamp()
	defer t.e.w.EndCommitStamp()

	// Durability: chopping info and the lock-ahead log are written before
	// entering the HTM region (Figure 7, left).
	if cfg.Durability {
		t.logAheadOfRegion()
	}

	sh := t.e.w.Obs
	t.snapshotWriteBufs()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			t.restoreWriteBufs()
		}
		t.walLocal = t.walLocal[:0]
		t.deferred = t.deferred[:0]
		t.chainFix = t.chainFix[:0]
		lc := &t.lcScratch
		*lc = Local{t: t}
		hstart := int64(t.e.w.VClock.Now())
		t.e.charge(model.HTMBeginNS)
		err := t.e.w.Node.Engine.Run(func(htx *htm.Txn) error {
			lc.htx = htx
			if err := fn(lc); err != nil {
				return err
			}
			t.confirmLeases(htx)
			t.confirmViews(htx)
			t.validateSpeculative(htx)
			// Scan validation precedes the structural flips: the flips change
			// incver words of entries the scans recorded.
			t.validateScans(htx)
			t.applyLocalStructural(htx)
			t.sealChains(htx)
			if cfg.Durability {
				t.logWALTx(htx)
			}
			return nil
		})
		if err == nil {
			t.e.charge(model.HTMCommitNS)
			sh.Inc(obs.EvHTMCommit)
			t.vHTM += int64(t.e.w.VClock.Now()) - hstart
			cstart := int64(t.e.w.VClock.Now())
			// Commit-backup (FaRM): the write-set must be on every backup
			// before locks release and effects become observable remotely.
			if err := t.replicate(); err != nil {
				return err
			}
			t.commitRemotes()
			t.vCommit += int64(t.e.w.VClock.Now()) - cstart
			t.applyDeferred()
			t.applyRemovals()
			t.finished = true
			return nil
		}

		ae, isAbort := htm.IsAbort(err)
		if !isAbort {
			// User logic error: roll back fully.
			t.vHTM += int64(t.e.w.VClock.Now()) - hstart
			t.lastAbort = obs.CauseUser
			t.releaseLocks()
			if errors.Is(err, ErrUserAbort) {
				return ErrUserAbort
			}
			return err
		}

		t.e.charge(model.HTMAbortNS)
		t.vHTM += int64(t.e.w.VClock.Now()) - hstart
		switch {
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeLease:
			// A lease expired: retrying the region cannot help; retry the
			// whole transaction to re-acquire leases.
			sh.Inc(obs.EvHTMLeaseAbort)
			t.lastAbort = obs.CauseLease
			return t.fail()
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeSpec:
			// Speculative validation failed — a writer bumped a version or
			// holds an exclusive lock (or the validation verbs hit a dead
			// node). The staged buffers are stale, so retrying the region
			// cannot help; retry the whole transaction from the Start phase.
			t.lastAbort = obs.CauseSpec
			if t.specDown {
				return t.nodeDown()
			}
			return t.fail()
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeScan:
			// Range-scan validation failed: a writer structurally changed a
			// scanned range (phantom) or rewrote a collected row. The
			// collected rows are stale; retry from the Start phase.
			t.lastAbort = obs.CauseScan
			if t.specDown {
				return t.nodeDown()
			}
			return t.fail()
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeStale:
			// A staged ordered insert/erase slot was recycled between staging
			// and the region (slot reuse race); restage from scratch.
			t.lastAbort = obs.CauseRemote
			return t.fail()
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeView:
			// A touched partition's ownership moved (hot failover) between
			// staging and commit: the staged locations are stale. Retry the
			// whole transaction so it restages under the new view.
			t.lastAbort = obs.CauseRemote
			return t.fail()
		case ae.Code == htm.AbortExplicit && ae.User == abortCodeLocked:
			// A local record is locked by a remote transaction; whole-txn
			// retry with backoff lets the remote holder finish.
			sh.Inc(obs.EvHTMLockedAbort)
			t.lastAbort = obs.CauseLocked
			return t.fail()
		case ae.Code == htm.AbortCapacity:
			sh.Inc(obs.EvHTMCapacityAbort)
			t.lastAbort = obs.CauseCapacity
			return t.runFallback(fn)
		case ae.Code == htm.AbortExplicit:
			sh.Inc(obs.EvHTMExplicitAbort)
			t.lastAbort = obs.CauseExplicit
			if attempt+1 >= rt.FallbackThreshold {
				return t.runFallback(fn)
			}
		default:
			sh.Inc(obs.EvHTMConflictAbort)
			t.lastAbort = obs.CauseConflict
			if attempt+1 >= rt.FallbackThreshold {
				return t.runFallback(fn)
			}
		}
		// Conflict abort: retry the HTM region; locks and leases persist.
	}
}

// confirmLeases re-validates every shared lease inside the HTM region, just
// before XEND (the COMMIT step of Figure 3). Softtime is read
// transactionally here — under the reuse+confirm strategy this is the only
// transactional softtime read, which narrows the window for false aborts
// from the timer thread (Figure 11(c)).
func (t *Tx) confirmLeases(htx *htm.Txn) {
	hasLease := false
	for _, r := range t.remotes {
		if !r.write && !r.spec {
			hasLease = true
			break
		}
	}
	if !hasLease {
		return
	}
	now := t.e.w.Node.Clock.ReadTx(htx)
	delta := t.e.rt.C.Delta()
	for _, r := range t.remotes {
		if r.write || r.spec {
			continue
		}
		if !clock.Valid(r.leaseEnd, now, delta) {
			htx.Abort(abortCodeLease)
		}
		t.e.w.Obs.Inc(obs.EvLeaseConfirm)
	}
}

// confirmViews re-validates, inside the HTM region, that no touched
// partition's view changed since it was stamped at declare time. The check
// closes the stage→commit window against hot failover: a transaction that
// staged against the old primary must not publish effects under the new
// view — it aborts and restages. (The complementary append-time check is the
// backup's epoch fence, which rejects a zombie's late redo appends.)
func (t *Tx) confirmViews(htx *htm.Txn) {
	if len(t.views) == 0 {
		return
	}
	c := t.e.rt.C
	for part, w := range t.views {
		if c.View(part) != w {
			t.e.w.Obs.Inc(obs.EvViewAbort)
			htx.Abort(abortCodeView)
		}
	}
}

// commitRemotes writes back dirty remote records and releases exclusive
// locks (REMOTE_WRITE_BACK in Figure 5), batching the verbs per poll. The
// version word, the state word (reset to INIT = unlock) and the value are
// contiguous in the entry, so a record whose entry fits one cache line
// commits with a single RDMA WRITE; larger records write the value in a
// first polled batch and unlock in a second, so no reader can lease a
// half-written record — the poll between the batches is the ordering point
// the serial path got from blocking on each WRITE.
//
// These are release-side verbs (they run after the serialization point):
// a work request that fails at completion falls back to the corresponding
// must* helper, which retries timeouts without bound and parks writes to an
// unreachable node for recovery, exactly as before.
func (t *Tx) commitRemotes() {
	type commitOp struct {
		r    *remoteRec
		off  memory.Offset
		data []uint64 // WRITE payload; nil for a plain unlock CAS
		wr   *rdma.WR
	}
	sq := t.e.sendq()
	var value, release []commitOp
	// chainOps appends the version-chain write-back of one chained write
	// record to the value phase: the tail pair FIRST (the dirty marker), then
	// the retired slot with the superseded triple. The simulated fabric
	// applies a wave's side effects in post order, and the head word flips
	// only in the release phase after the value-phase poll, so a concurrent
	// one-READ snapshot sees either the old quiescent image or a head/tail
	// mismatch (layout.go ordering protocol). A prevTail of zero means the
	// entry was never stamped: the tail starts the chain, no slot to retire.
	chainOps := func(r *remoteRec, newIncVer, prevHead uint64, oldVal []uint64) {
		vw := len(r.buf)
		depth := t.e.chainDepthAt(r.node, r.region)
		if depth <= 0 {
			return
		}
		value = append(value, commitOp{r: r, off: kvs.TailOffset(r.off, vw, depth),
			data: []uint64{t.commitStamp, newIncVer}})
		if r.prevTail == 0 {
			return
		}
		slotOff := kvs.ChainSlotOffset(r.off, vw,
			kvs.ChainSlotIndex(kvs.Version(prevHead), depth))
		slot := append([]uint64{r.prevTail, prevHead}, oldVal...)
		value = append(value, commitOp{r: r, off: slotOff, data: slot})
		t.e.w.Obs.Inc(obs.EvChainRetire)
	}
	wi := 0
	for _, r := range t.remotes {
		if !r.write {
			continue
		}
		// The pristine pre-commit value, from the same snapshot restoreWriteBufs
		// rolls back to (the body mutates r.buf in place for dirty records).
		oldVal := t.wsnap[wi : wi+len(r.buf)]
		wi += len(r.buf)
		incverOff := kvs.IncVerOffset(r.off)
		if r.erase {
			// Transactional erase: flip the entry dead (incarnation+1 → even)
			// and unlock in one release-phase write. Physical removal of the
			// dead entry is deferred until no snapshot can still need it.
			deadIncVer := kvs.PackIncVer(r.inc+1, r.version+1)
			chainOps(r, deadIncVer, kvs.PackIncVer(r.inc, r.version), oldVal)
			release = append(release, commitOp{r: r, off: incverOff,
				data: []uint64{deadIncVer, clock.Init}})
			continue
		}
		if !r.dirty {
			// Clean write lock: just unlock (owner-guarded CAS).
			release = append(release, commitOp{r: r, off: kvs.StateOffset(r.off)})
			continue
		}
		var newInc uint32
		if r.insert {
			// Transactional insert: flip the staged dead entry live
			// (incarnation+1 → odd). The value rides the same commit.
			newInc = r.inc + 1
		} else {
			newInc = t.readIncarnation(r)
		}
		newIncVer := kvs.PackIncVer(newInc, r.version+1)
		if r.insert {
			// The superseded version is the staged DEAD entry: retire it as a
			// 2-word slot (stamp, dead incver) with no value, so a snapshot
			// older than the insert resolves the key to not-found.
			chainOps(r, newIncVer, kvs.PackIncVer(r.inc, r.version), nil)
		} else {
			chainOps(r, newIncVer, kvs.PackIncVer(newInc, r.version), oldVal)
		}
		span := 2 + len(r.buf) // incver, state, value...
		if memory.LineOf(incverOff) == memory.LineOf(incverOff+memory.Offset(span-1)) {
			words := make([]uint64, span)
			words[0] = newIncVer
			words[1] = clock.Init
			copy(words[2:], r.buf)
			release = append(release, commitOp{r: r, off: incverOff, data: words})
		} else {
			value = append(value, commitOp{r: r, off: kvs.ValueOffset(r.off), data: r.buf})
			release = append(release, commitOp{r: r, off: incverOff,
				data: []uint64{newIncVer, clock.Init}})
		}
	}
	for _, phase := range [][]commitOp{value, release} {
		for i := range phase {
			op := &phase[i]
			if op.data != nil {
				op.wr = sq.PostWrite(op.r.node, op.r.region, op.off, op.data)
			} else {
				op.wr = sq.PostCAS(op.r.node, op.r.region, op.off,
					clock.WLocked(uint8(t.e.w.Node.ID)), clock.Init)
			}
		}
		sq.Poll()
		for i := range phase {
			op := &phase[i]
			if op.wr.Err == nil {
				continue
			}
			if op.data != nil {
				t.e.mustWrite(op.r.node, op.r.region, op.off, op.data)
			} else {
				t.e.mustUnlock(op.r.node, op.r.region, op.off)
			}
		}
	}
	// t.remotes stays populated: Execute marks the transaction finished
	// right after, and Exec's recycle harvests the records into the pool.
}

// arenaAt returns the arena backing a storage region on a node, whichever
// store kind (ordered or hash) hosts it. Replica regions of ordered tables
// are registered under Node.OrderedRegion, so that lookup goes first.
func (t *Tx) arenaAt(node, region int) *memory.Arena {
	return t.e.arenaAt(node, region)
}

// arenaAt resolves a storage region's arena on any node, ordered or
// unordered (replica ordered regions are registered in the ordered map, so
// the ordered probe must come first).
func (e *Executor) arenaAt(node, region int) *memory.Arena {
	n := e.rt.C.Node(node)
	if o, ok := n.OrderedRegion(region); ok {
		return o.Arena()
	}
	return n.Unordered(region).Arena()
}

// readIncarnation returns the record's current incarnation; we hold its
// exclusive lock, so a plain load is stable.
func (t *Tx) readIncarnation(r *remoteRec) uint32 {
	return kvs.Incarnation(t.arenaAt(r.node, r.region).LoadWord(kvs.IncVerOffset(r.off)))
}

// applyDeferred applies inserts/deletes collected during the region.
func (t *Tx) applyDeferred() {
	for _, op := range t.deferred {
		t.e.applyStoreOp(op)
	}
	t.deferred = nil
}

// snapshotWriteBufs saves the pristine prefetched value of every
// write-staged remote record before the first HTM attempt, so a region
// retry can roll the transaction-private buffers back alongside the HTM
// write set (see Tx.wsnap).
func (t *Tx) snapshotWriteBufs() {
	t.wsnap = t.wsnap[:0]
	for _, r := range t.remotes {
		if r.write {
			t.wsnap = append(t.wsnap, r.buf...)
		}
	}
}

// restoreWriteBufs undoes the aborted attempt's buffered remote writes.
func (t *Tx) restoreWriteBufs() {
	i := 0
	for _, r := range t.remotes {
		if !r.write {
			continue
		}
		copy(r.buf, t.wsnap[i:i+len(r.buf)])
		r.dirty = false
		i += len(r.buf)
	}
}
