package tx

import (
	"time"

	"drtm/internal/nvram"
	"drtm/internal/obs"
)

// FailoverReport summarizes one hot-failover promotion.
type FailoverReport struct {
	// Promoted is true when THIS call performed the view handover. A second
	// (racing or repeated) Failover for the same crash reports false and
	// does nothing — promotion is idempotent.
	Promoted bool
	// NewOwner is the backup now owning the crashed node's partition.
	NewOwner int
	// View is the partition's packed view word after promotion.
	View uint64
	// RedoRecords is the number of redo records replayed from log tails.
	RedoRecords int
	// Unlocked is the number of exclusive locks released on behalf of the
	// crashed machine's in-flight transactions.
	Unlocked int
}

// Failover promotes a live backup to own a crashed primary's partition —
// the hot path that replaces full NVRAM replay when replication is on.
//
// Ordering is the crux. TryPromote CASes the view word FIRST: from that
// instant the backup's log sinks fence any append stamped with the old
// epoch, so the redo tails drained below are complete — no zombie append
// can slip in behind the drain. Then:
//
//  1. every redo log hosted on the new owner is drained, replaying the
//     tail for the adopted partition and — because records carry the FULL
//     write-set — re-applying surviving transactions' updates to foreign
//     partitions' live owners, keeping cross-partition commits atomic;
//  2. the crashed node's own redo logs on every other host — the crashed
//     host's durable rings included — are drained too: a transaction the
//     crashed machine committed (XEND ran, append landed) but never wrote
//     back must still commit everywhere;
//  3. exclusive locks still held by the crashed machine are released via
//     its lock-ahead log (owner-guarded, so survivors' fresh locks are
//     never clobbered) — after the redo replay, so a survivor locking a
//     freed record sees the replayed value;
//  4. release-side ops parked for the crashed node are discarded: the redo
//     replay supersedes them and the machine stays down.
//
// The crashed node is NOT revived; its clients fail over at the workload
// level and in-flight transactions that staged against the old view abort
// on the in-region view confirmation and restage. Serialized with Recover
// under recMu.
func (rt *Runtime) Failover(crashed int) FailoverReport {
	rt.recMu.Lock()
	defer rt.recMu.Unlock()
	start := time.Now()
	c := rt.C
	cfg := c.Config()
	var rep FailoverReport

	newOwner := -1
	for _, b := range c.Backups(nil, crashed) {
		if !c.Fabric.NodeDown(b) {
			newOwner = b
			break
		}
	}
	if newOwner < 0 {
		return rep // every backup is down too: the partition is lost
	}
	rep.NewOwner = newOwner

	nv, ok := c.TryPromote(crashed, newOwner)
	rep.View = nv
	if !ok {
		return rep // already promoted (concurrent or repeated call): no-op
	}
	rep.Promoted = true

	replay := func(rec []uint64) {
		_, ups, ok := nvram.DecodeRedo(rec)
		if !ok {
			return
		}
		for i := range ups {
			rt.applyRedoUpdate(ups[i])
		}
	}
	for s := 0; s < c.Nodes(); s++ {
		for w := 0; w < cfg.WorkersPerNode; w++ {
			rep.RedoRecords += c.RedoSinkAt(newOwner, s, w).Drain(replay)
		}
	}

	// The adopted partition is servable from here: its replica shard is
	// current (every committed update for it lived in a log hosted on its
	// backups, drained above) and replica records carry no stale locks —
	// locking happened on the dead primary's copies. Everything below is
	// repair of the crashed machine's COORDINATOR role, running while the
	// partition already serves, so this point ends the unavailability
	// window that EvPromoteNanos reports.
	unavailNS := time.Since(start).Nanoseconds()

	// Crashed-sender logs on every other host, the crashed host included:
	// its rings are durable NVRAM like the WAL, and for a transaction that
	// wrote only foreign partitions the crashed machine's own hosted ring
	// can hold the sole surviving copy of an acked commit.
	for h := 0; h < c.Nodes(); h++ {
		if h == newOwner {
			continue
		}
		for w := 0; w < cfg.WorkersPerNode; w++ {
			rep.RedoRecords += c.RedoSinkAt(h, crashed, w).Drain(replay)
		}
	}

	for w := 0; w < cfg.WorkersPerNode; w++ {
		wk := c.Worker(crashed, w)
		if wk.LockAheadLog == nil {
			continue
		}
		// Unlike Recover, committed transactions' locks are released here
		// too: the redo replay above does not touch state words, so every
		// lock the crashed machine still holds — committed or not — must go.
		for _, rec := range wk.LockAheadLog.Entries() {
			_, locks, ok := parseLockAhead(rec)
			if !ok {
				continue
			}
			for _, l := range locks {
				if rt.unlockIfOwned(crashed, l) {
					rep.Unlocked++
					wk.Obs.Inc(obs.EvRecoveryUnlock)
				}
			}
		}
		wk.WriteAheadLog.Truncate()
		wk.LockAheadLog.Truncate()
		wk.ChoppingLog.Truncate()
	}

	rt.discardPending(crashed)

	ns := time.Since(start).Nanoseconds()
	sh := c.Obs.Shard(0)
	sh.Inc(obs.EvFailover)
	sh.Add(obs.EvPromoteNanos, unavailNS)
	sh.Add(obs.EvRedoTailLen, int64(rep.RedoRecords))
	sh.Observe(obs.PhaseFailover, ns)
	if sh.TraceEnabled() {
		sh.Trace(obs.TraceEvent{
			Kind: obs.TraceFailover, TxID: nv,
			Node: int32(crashed), Worker: int32(newOwner),
			Attempts: int32(rep.RedoRecords), TotalNS: ns,
		})
	}
	return rep
}

// discardPending drops the release-side ops parked for node without applying
// them: after a promotion the redo replay supersedes parked write-backs, the
// partition's live copy moved elsewhere, and the machine stays down.
func (rt *Runtime) discardPending(node int) int {
	rt.pendMu.Lock()
	defer rt.pendMu.Unlock()
	n := len(rt.pending[node])
	delete(rt.pending, node)
	return n
}
