package tx

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/obs"
)

// TestMVCCPointRead: PolicyMVCC point reads resolve the current value with
// no lease CAS and no confirm wave.
func TestMVCCPointRead(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 8, nil)
	defer stop()
	e := rt.Executor(0, 0)
	if err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAccounts, 1, []uint64{777, 9})
		})
	}); err != nil {
		t.Fatal(err)
	}
	// The snapshot stamp trails the soft clock by one tick (bounded
	// staleness): let a tick pass so the write is inside the snapshot.
	time.Sleep(time.Millisecond)
	before := rt.C.Obs.Snapshot()
	var got []uint64
	err := e.ExecROWith(PolicyMVCC, func(ro *RO) error {
		v, err := ro.Read(tblAccounts, 1) // remote (node 1)
		if err != nil {
			return err
		}
		got = append([]uint64(nil), v...)
		v2, err := ro.Read(tblAccounts, 2) // local (node 0)
		if err != nil {
			return err
		}
		_ = v2
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 777 || got[1] != 9 {
		t.Fatalf("mvcc read = %v, want [777 9]", got)
	}
	d := rt.C.Obs.Snapshot().Delta(before)
	if d.Counter(obs.EvMVCCRead) < 2 {
		t.Fatalf("EvMVCCRead = %d, want ≥ 2", d.Counter(obs.EvMVCCRead))
	}
	if d.Counter(obs.EvLeaseGrant) != 0 || d.Counter(obs.EvSpecRead) != 0 {
		t.Fatalf("mvcc read took a confirm-wave arm: leases=%d specs=%d",
			d.Counter(obs.EvLeaseGrant), d.Counter(obs.EvSpecRead))
	}
}

// TestMVCCReadNotFound: a key absent at the snapshot reports ErrNotFound.
func TestMVCCReadNotFound(t *testing.T) {
	rt, stop := newRig(t, 1, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.ExecROWith(PolicyMVCC, func(ro *RO) error {
		_, err := ro.Read(tblAccounts, 999)
		return err
	})
	if err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestMVCCSnapshotAtomicity: a transfer loop keeps sum(k1,k2) constant;
// MVCC readers must never observe half a commit, under concurrency, with
// both keys on different nodes.
func TestMVCCSnapshotAtomicity(t *testing.T) {
	rt, stop := newRig(t, 2, 2, 8, nil)
	defer stop()
	const k1, k2 = 1, 2 // nodes 1 and 0
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := rt.Executor(1, 1)
		for i := 0; ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			_ = e.Exec(func(tx *Tx) error {
				if err := tx.W(tblAccounts, k1); err != nil {
					return err
				}
				if err := tx.W(tblAccounts, k2); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					a, _ := lc.Read(tblAccounts, k1)
					b, _ := lc.Read(tblAccounts, k2)
					if err := lc.Write(tblAccounts, k1, []uint64{a[0] - 1, a[1]}); err != nil {
						return err
					}
					return lc.Write(tblAccounts, k2, []uint64{b[0] + 1, b[1]})
				})
			})
		}
	}()
	e := rt.Executor(0, 0)
	var reads atomic.Int64
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		var a, b []uint64
		err := e.ExecROWith(PolicyMVCC, func(ro *RO) error {
			var err error
			if a, err = ro.Read(tblAccounts, k1); err != nil {
				return err
			}
			b, err = ro.Read(tblAccounts, k2)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum := a[0] + b[0]; sum != 2000 {
			t.Fatalf("torn snapshot: %d + %d = %d, want 2000", a[0], b[0], sum)
		}
		reads.Add(1)
	}
	close(stopCh)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no snapshot reads completed")
	}
}

// TestMVCCScanSnapshot: an erase+insert loop keeps an entity's live row
// count constant; MVCC scans (local and remote) must always see exactly
// that count — phantom safety without segment-stamp validation.
func TestMVCCScanSnapshot(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 2, nil)
	defer stop()
	const entity = 3 // home node 1: remote from the reader on node 0
	w := rt.Executor(1, 1)
	insertOrders(t, w, entity, []uint64{1, 2, 3, 4})
	time.Sleep(time.Millisecond) // let the snapshot stamp pass the inserts
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Atomically swap row 4 for row 5 and back: the live count is 4 in
		// every committed state. Throttled so the chain ring (depth 4) never
		// wraps within the snapshot's staleness window — an unthrottled
		// swap loop would truncate every snapshot and starve the reader's
		// confirm-wave fallback too.
		for i := uint64(0); ; i++ {
			select {
			case <-stopCh:
				return
			default:
			}
			time.Sleep(50 * time.Microsecond)
			out, in := uint64(4), uint64(5)
			if i%2 == 1 {
				out, in = in, out
			}
			_ = w.Exec(func(tx *Tx) error {
				if _, err := tx.Erase(tblOrders, orderedKey(entity, out)); err != nil {
					return err
				}
				if err := tx.WInsert(tblOrders, orderedKey(entity, in),
					[]uint64{i, i}); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error { return nil })
			})
		}
	}()
	for _, node := range []int{0, 1} { // remote scan, then local scan
		e := rt.Executor(node, 0)
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			var rows []ScanRow
			err := e.ExecROWith(PolicyMVCC, func(ro *RO) error {
				var err error
				rows, err = ro.Scan(tblOrders, orderedKey(entity, 0),
					orderedKey(entity, 0xFF), 0)
				return err
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != 4 {
				t.Fatalf("node %d: snapshot scan saw %d live rows, want 4: %v",
					node, len(rows), rows)
			}
		}
	}
	close(stopCh)
	wg.Wait()
}

// TestMVCCFallbackWhenChainsDisabled: PolicyMVCC on a cluster built with
// MVCCDepth = 0 degrades to the confirm-wave scheme and still commits.
func TestMVCCFallbackWhenChainsDisabled(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 8, func(cfg *cluster.Config) { cfg.MVCCDepth = 0 })
	defer stop()
	e := rt.Executor(0, 0)
	err := e.ExecROWith(PolicyMVCC, func(ro *RO) error {
		v, err := ro.Read(tblAccounts, 1)
		if err != nil {
			return err
		}
		if v[0] != 1000 {
			t.Fatalf("v = %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.C.Obs.Snapshot().Counter(obs.EvMVCCRead) != 0 {
		t.Fatal("chains disabled but an MVCC read was counted")
	}
}

// TestAdaptiveScanRoutesMVCC: under PolicyAdaptive a wide RO scan enters the
// snapshot arm, a narrow one keeps the confirm-wave scheme.
func TestAdaptiveScanRoutesMVCC(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 1, nil)
	defer stop()
	rt.ReadPolicy = PolicyAdaptive
	const entity = 3
	w := rt.Executor(1, 0)
	subs := make([]uint64, 40)
	for i := range subs {
		subs[i] = uint64(i + 1)
	}
	insertOrders(t, w, entity, subs)
	time.Sleep(time.Millisecond) // let the snapshot stamp pass the inserts
	e := rt.Executor(0, 0)

	before := rt.C.Obs.Snapshot()
	if err := e.ExecRO(func(ro *RO) error {
		rows, err := ro.Scan(tblOrders, orderedKey(entity, 0), orderedKey(entity, 0xFF), 40)
		if err == nil && len(rows) != 40 {
			t.Fatalf("wide scan rows = %d", len(rows))
		}
		return err
	}); err != nil {
		t.Fatal(err)
	}
	d := rt.C.Obs.Snapshot().Delta(before)
	if d.Counter(obs.EvMVCCRead) == 0 {
		t.Fatal("wide adaptive scan did not take the MVCC arm")
	}

	before = rt.C.Obs.Snapshot()
	if err := e.ExecRO(func(ro *RO) error {
		_, err := ro.Scan(tblOrders, orderedKey(entity, 0), orderedKey(entity, 4), 4)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	d = rt.C.Obs.Snapshot().Delta(before)
	if d.Counter(obs.EvMVCCRead) != 0 {
		t.Fatal("narrow adaptive scan took the MVCC arm")
	}
}
