package tx

import (
	"testing"
)

// Allocation benchmarks for the pooled hot path (run with -benchmem): the
// Tx shell, staged-record structs, staging requests and their value/entry
// buffers are recycled across attempts and transactions by the executor
// pools, so steady-state Exec should allocate near-zero bytes per committed
// transaction. Before pooling, every attempt allocated a fresh Tx, two maps,
// per-record remoteRec+stageReq structs and staging scratch slices.

func benchLocalTxn(e *Executor) error {
	return e.Exec(func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil {
			return err
		}
		if err := tx.W(tblAccounts, 2); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(tblAccounts, 2, []uint64{v[0] + 1, v[1]})
		})
	})
}

func benchRemoteTxn(e *Executor, spec bool) error {
	// Key 1 and 3 live on node 1; the executor runs on node 0, so both
	// records take the full remote Start-phase path.
	return e.Exec(func(tx *Tx) error {
		if err := tx.Stage(
			Access{tblAccounts, 1, false},
			Access{tblAccounts, 3, true},
		); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(tblAccounts, 3, []uint64{v[0] + 1, v[1]})
		})
	})
}

func benchMVCCROTxn(e *Executor) error {
	// Key 1 lives on node 1 (remote), key 2 on node 0 (local): one snapshot
	// RO resolving both against their version chains at the read stamp.
	return e.ExecRO(func(ro *RO) error {
		if _, err := ro.Read(tblAccounts, 1); err != nil {
			return err
		}
		_, err := ro.Read(tblAccounts, 2)
		return err
	})
}

func BenchmarkExecLocal(b *testing.B) {
	rt, stop := newRig(b, 1, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchLocalTxn(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecRemoteLease(b *testing.B) {
	rt, stop := newRig(b, 2, 1, 8, nil)
	defer stop()
	e := rt.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchRemoteTxn(e, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecRemoteSpec(b *testing.B) {
	rt, stop := newRig(b, 2, 1, 8, nil)
	defer stop()
	rt.ReadPolicy = PolicySpeculative
	e := rt.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchRemoteTxn(e, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecROMVCC(b *testing.B) {
	rt, stop := newRig(b, 2, 1, 8, nil)
	defer stop()
	rt.ReadPolicy = PolicyMVCC
	e := rt.Executor(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchMVCCROTxn(e); err != nil {
			b.Fatal(err)
		}
	}
}
