package tx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/htm"
)

const tblAccounts = 1

// newRig builds a cluster + runtime with one unordered table partitioned by
// key modulo nodes, pre-populated with keys 1..n each holding value {bal, 0}.
func newRig(t testing.TB, nodes, workers, keys int, mut func(*cluster.Config)) (*Runtime, func()) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes, workers)
	// Generous lease for tests: correctness machinery runs on real time and
	// a loaded single-core box deschedules goroutines for milliseconds.
	cfg.LeaseMicros = 5_000
	cfg.ROLeaseMicros = 10_000
	if mut != nil {
		mut(&cfg)
	}
	c := cluster.New(cfg)
	c.Start()
	rt := NewRuntime(c, func(table int, key uint64) int { return int(key) % nodes })
	rt.DefineUnordered(tblAccounts, 256, 256, keys+64, 2)
	for k := 1; k <= keys; k++ {
		node := k % nodes
		if err := c.Node(node).Unordered(tblAccounts).Insert(uint64(k), []uint64{1000, 0}); err != nil {
			t.Fatalf("populate %d: %v", k, err)
		}
	}
	return rt, c.Stop
}

func TestLocalTransaction(t *testing.T) {
	rt, stop := newRig(t, 1, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil {
			return err
		}
		if err := tx.W(tblAccounts, 2); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(tblAccounts, 2, []uint64{v[0] + 1, 7})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rt.C.Node(0).Unordered(tblAccounts).Get(2)
	if !ok || v[0] != 1001 || v[1] != 7 {
		t.Fatalf("after txn = %v,%v", v, ok)
	}
	if rt.Stats.Commits.Load() != 1 {
		t.Fatal("commit not counted")
	}
}

func TestDistributedTransactionWriteBack(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	// Worker on node 0; key 1 lives on node 1 (remote), key 2 on node 0.
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil { // remote
			return err
		}
		if err := tx.W(tblAccounts, 2); err != nil { // local
			return err
		}
		return tx.Execute(func(lc *Local) error {
			a, _ := lc.Read(tblAccounts, 1)
			b, _ := lc.Read(tblAccounts, 2)
			if err := lc.Write(tblAccounts, 1, []uint64{a[0] - 100, a[1]}); err != nil {
				return err
			}
			return lc.Write(tblAccounts, 2, []uint64{b[0] + 100, b[1]})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := rt.C.Node(1).Unordered(tblAccounts).Get(1)
	v2, _ := rt.C.Node(0).Unordered(tblAccounts).Get(2)
	if v1[0] != 900 || v2[0] != 1100 {
		t.Fatalf("balances = %d, %d", v1[0], v2[0])
	}
	// The remote record must be unlocked and version-bumped.
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if host.Arena().LoadWord(off+2) != 0 {
		t.Fatal("remote record still locked after commit")
	}
}

func TestRemoteWriteConflictRetries(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e0 := rt.Executor(0, 0)
	e1 := rt.Executor(1, 0)

	// e0 stages a remote write lock on key 1 (node 1) and holds it.
	t0 := e0.newTx()
	if err := t0.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, true); err != nil {
		t.Fatal(err)
	}
	// e1's local write to key 1 must fail while the lock is held.
	errCh := make(chan error, 1)
	go func() {
		errCh <- e1.Exec(func(tx *Tx) error {
			if err := tx.W(tblAccounts, 1); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				return lc.Write(tblAccounts, 1, []uint64{5, 5})
			})
		})
	}()
	time.Sleep(5 * time.Millisecond)
	t0.releaseLocks()
	if err := <-errCh; err != nil {
		t.Fatalf("local writer never recovered: %v", err)
	}
	if rt.Stats.Retries.Load() == 0 && rt.Stats.HTMAborts.Load() == 0 {
		t.Fatal("no conflict was ever observed")
	}
}

// TestConflictMatrix verifies Table 2: the interaction of local (HTM) and
// remote (2PL) accesses to one record.
func TestConflictMatrix(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	const key = 2 // homed on node 0
	e0 := rt.Executor(0, 0)
	e1 := rt.Executor(1, 0)

	// Row "R RD after L RD": the remote read's lease CAS writes the state
	// word, falsely conflicting with the local reader (Figure 2(b)).
	t.Run("LRD_then_RRD_falseConflict", func(t *testing.T) {
		before := e0.w.Node.Engine.Stats.Aborts.Load()
		first := true
		err := e0.Exec(func(tx *Tx) error {
			if err := tx.R(tblAccounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				if _, err := lc.Read(tblAccounts, key); err != nil {
					return err
				}
				if first {
					first = false
					t1 := e1.newTx()
					if err := t1.stageRemote(tblAccounts, key, 0, tblAccounts, 0, false); err != nil {
						return err
					}
					t1.releaseLocks()
				}
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if e0.w.Node.Engine.Stats.Aborts.Load() == before {
			t.Fatal("remote read did not abort the local reader (Table 2 false conflict)")
		}
	})

	// Row "L RD after R RD": share — local reads overlook leases.
	t.Run("RRD_then_LRD_share", func(t *testing.T) {
		t1 := e1.newTx()
		if err := t1.stageRemote(tblAccounts, key, 0, tblAccounts, 0, false); err != nil {
			t.Fatal(err)
		}
		before := rt.Stats.HTMAborts.Load()
		err := e0.Exec(func(tx *Tx) error {
			if err := tx.R(tblAccounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				_, err := lc.Read(tblAccounts, key)
				return err
			})
		})
		t1.releaseLocks()
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats.HTMAborts.Load() != before {
			t.Fatal("local read aborted despite read-read sharing")
		}
	})

	// Row "L WR after R RD": conflict — local writes respect the lease.
	t.Run("RRD_then_LWR_conflict", func(t *testing.T) {
		t1 := e1.newTx()
		if err := t1.stageRemote(tblAccounts, key, 0, tblAccounts, 0, false); err != nil {
			t.Fatal(err)
		}
		before := rt.Stats.HTMAborts.Load()
		done := make(chan error, 1)
		go func() {
			done <- e0.Exec(func(tx *Tx) error {
				if err := tx.W(tblAccounts, key); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					return lc.Write(tblAccounts, key, []uint64{1000, 0})
				})
			})
		}()
		select {
		case err := <-done:
			// May legitimately commit only after the lease expired; but the
			// attempt must have aborted at least once first.
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(400 * time.Millisecond):
			<-done // lease (5ms) expires well before this
		}
		if rt.Stats.HTMAborts.Load() == before {
			t.Fatal("local write ignored an unexpired lease")
		}
	})

	// Rows "after R WR": both local read and write conflict.
	t.Run("RWR_then_local_conflict", func(t *testing.T) {
		t1 := e1.newTx()
		if err := t1.stageRemote(tblAccounts, key, 0, tblAccounts, 0, true); err != nil {
			t.Fatal(err)
		}
		before := rt.Stats.HTMAborts.Load()
		done := make(chan error, 1)
		go func() {
			done <- e0.Exec(func(tx *Tx) error {
				if err := tx.R(tblAccounts, key); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					_, err := lc.Read(tblAccounts, key)
					return err
				})
			})
		}()
		time.Sleep(10 * time.Millisecond)
		t1.releaseLocks() // exclusive locks require explicit release
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		if rt.Stats.HTMAborts.Load() == before {
			t.Fatal("local read did not conflict with a remote write lock")
		}
	})

	// Row "R WR after L WR": the local transaction loses (Figure 2(c)).
	t.Run("LWR_then_RWR_localAborts", func(t *testing.T) {
		before := e0.w.Node.Engine.Stats.Aborts.Load()
		first := true
		err := e0.Exec(func(tx *Tx) error {
			if err := tx.W(tblAccounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				if err := lc.Write(tblAccounts, key, []uint64{1000, 0}); err != nil {
					return err
				}
				if first {
					first = false
					t1 := e1.newTx()
					if err := t1.stageRemote(tblAccounts, key, 0, tblAccounts, 0, true); err == nil {
						t1.releaseLocks()
					}
				}
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if e0.w.Node.Engine.Stats.Aborts.Load() == before {
			t.Fatal("remote write lock did not abort the conflicting local writer")
		}
	})
}

// TestLeaseSharingAcrossNodes: two remote readers share one lease.
func TestLeaseSharingAcrossNodes(t *testing.T) {
	rt, stop := newRig(t, 3, 1, 6, nil)
	defer stop()
	// Key 3 lives on node 0; readers on nodes 1 and 2.
	t1 := rt.Executor(1, 0).newTx()
	t2 := rt.Executor(2, 0).newTx()
	if err := t1.stageRemote(tblAccounts, 3, 0, tblAccounts, 0, false); err != nil {
		t.Fatal(err)
	}
	if err := t2.stageRemote(tblAccounts, 3, 0, tblAccounts, 0, false); err != nil {
		t.Fatalf("second reader could not share the lease: %v", err)
	}
	// Both observed a lease; the second shares the first's end time.
	r1 := t1.remotes[0]
	r2 := t2.remotes[0]
	if r2.leaseEnd != r1.leaseEnd {
		t.Fatalf("leases not shared: %d vs %d", r1.leaseEnd, r2.leaseEnd)
	}
	t1.releaseLocks()
	t2.releaseLocks()
}

// TestRemoteWriterBlockedByLease: a remote writer cannot lock a leased
// record until the lease expires.
func TestRemoteWriterBlockedByLease(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, func(c *cluster.Config) {
		c.LeaseMicros = 30_000
	})
	defer stop()
	tr := rt.Executor(0, 0).newTx()
	if err := tr.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	tw := rt.Executor(0, 0).newTx()
	if err := tw.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, true); !errors.Is(err, ErrRetry) {
		t.Fatalf("writer acquired a leased record: %v", err)
	}
	// After expiry (30 ms lease + delta) the writer gets in.
	time.Sleep(50 * time.Millisecond)
	tw2 := rt.Executor(0, 0).newTx()
	if err := tw2.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, true); err != nil {
		t.Fatalf("writer blocked after lease expiry: %v", err)
	}
	tw2.releaseLocks()
	tr.releaseLocks()
}

func TestUserAbortRollsBack(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil { // remote
			return err
		}
		return tx.Execute(func(lc *Local) error {
			if err := lc.Write(tblAccounts, 1, []uint64{0, 0}); err != nil {
				return err
			}
			return ErrUserAbort
		})
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("err = %v", err)
	}
	v, _ := rt.C.Node(1).Unordered(tblAccounts).Get(1)
	if v[0] != 1000 {
		t.Fatalf("aborted write visible: %d", v[0])
	}
	// Lock must be released.
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if host.Arena().LoadWord(off+2) != 0 {
		t.Fatal("lock leaked after user abort")
	}
}

func TestReadOnlySnapshot(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 8, nil)
	defer stop()
	e := rt.Executor(0, 0)
	var total uint64
	err := e.ExecRO(func(ro *RO) error {
		total = 0
		for k := uint64(1); k <= 8; k++ {
			v, err := ro.Read(tblAccounts, k)
			if err != nil {
				return err
			}
			total += v[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 8000 {
		t.Fatalf("snapshot total = %d", total)
	}
	if rt.Stats.ROCommits.Load() != 1 {
		t.Fatal("RO commit not counted")
	}
}

// TestReadOnlyBlocksWriters: while a RO lease is held, writers retry.
func TestReadOnlyLeaseVisibleToWriters(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, func(c *cluster.Config) {
		c.ROLeaseMicros = 30_000
	})
	defer stop()
	e := rt.Executor(0, 0)
	// Acquire a RO lease on remote key 1 and local key 2 by hand.
	ro := &RO{e: e, end: e.w.Node.Clock.Read() + 30_000, index: map[refKey]*roRec{}}
	if _, err := ro.Read(tblAccounts, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ro.Read(tblAccounts, 2); err != nil {
		t.Fatal(err)
	}
	// A remote writer must now fail fast on key 1.
	tw := rt.Executor(0, 0).newTx()
	if err := tw.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, true); !errors.Is(err, ErrRetry) {
		t.Fatalf("writer ignored RO lease: %v", err)
	}
	if !ro.confirm() {
		t.Fatal("RO confirmation failed with fresh leases")
	}
}

// TestFallbackCapacity: transactions beyond HTM capacity complete on the
// software fallback path and stay correct.
func TestFallbackCapacity(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 64, func(c *cluster.Config) {
		c.HTM = htm.Config{WriteLines: 4, ReadLines: 4096}
	})
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		// 10 local writes exceed the 4-line write capacity.
		for k := uint64(2); k <= 20; k += 2 { // keys homed on node 0
			if err := tx.W(tblAccounts, k); err != nil {
				return err
			}
		}
		return tx.Execute(func(lc *Local) error {
			for k := uint64(2); k <= 20; k += 2 {
				v, err := lc.Read(tblAccounts, k)
				if err != nil {
					return err
				}
				if err := lc.Write(tblAccounts, k, []uint64{v[0] + 1, v[1]}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Fallbacks.Load() == 0 {
		t.Fatal("capacity abort did not trigger the fallback path")
	}
	for k := uint64(2); k <= 20; k += 2 {
		v, _ := rt.C.Node(0).Unordered(tblAccounts).Get(k)
		if v[0] != 1001 {
			t.Fatalf("key %d = %d, want 1001", k, v[0])
		}
	}
	// All locks released.
	host := rt.C.Node(0).Unordered(tblAccounts)
	for k := uint64(2); k <= 20; k += 2 {
		off, _ := host.LookupLocal(k)
		if host.Arena().LoadWord(off+2) != 0 {
			t.Fatalf("key %d still locked after fallback", k)
		}
	}
}

// TestFallbackVsLocalHTMConflict: fallback's lock on a local record aborts
// concurrent local HTM transactions touching it.
func TestFallbackLockStopsLocalHTM(t *testing.T) {
	rt, stop := newRig(t, 1, 2, 8, func(c *cluster.Config) {
		c.HTM = htm.Config{WriteLines: 2, ReadLines: 4096}
	})
	defer stop()
	var wg sync.WaitGroup
	errs := make([]error, 2)

	wg.Add(2)
	go func() { // big fallback transaction over keys 1..6
		defer wg.Done()
		e := rt.Executor(0, 0)
		errs[0] = e.Exec(func(tx *Tx) error {
			for k := uint64(1); k <= 6; k++ {
				if err := tx.W(tblAccounts, k); err != nil {
					return err
				}
			}
			return tx.Execute(func(lc *Local) error {
				for k := uint64(1); k <= 6; k++ {
					v, err := lc.Read(tblAccounts, k)
					if err != nil {
						return err
					}
					if err := lc.Write(tblAccounts, k, []uint64{v[0] + 10, 0}); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}()
	go func() { // small HTM transactions over the same keys
		defer wg.Done()
		e := rt.Executor(0, 1)
		for i := 0; i < 50; i++ {
			err := e.Exec(func(tx *Tx) error {
				if err := tx.W(tblAccounts, uint64(i%6)+1); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					v, err := lc.Read(tblAccounts, uint64(i%6)+1)
					if err != nil {
						return err
					}
					return lc.Write(tblAccounts, uint64(i%6)+1, []uint64{v[0] + 1, 0})
				})
			})
			if err != nil {
				errs[1] = err
				return
			}
		}
	}()
	wg.Wait()
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("errs = %v", errs)
	}
	var total uint64
	for k := uint64(1); k <= 6; k++ {
		v, _ := rt.C.Node(0).Unordered(tblAccounts).Get(k)
		total += v[0]
	}
	if total != 6*1000+6*10+50 {
		t.Fatalf("total = %d, want %d (lost updates)", total, 6*1000+6*10+50)
	}
}

// TestBankInvariantConcurrent is the system-level serializability property
// test: concurrent local + distributed transfers with concurrent RO audits
// conserve total balance.
func TestBankInvariantConcurrent(t *testing.T) {
	const nodes, workers, keys = 3, 2, 30
	rt, stop := newRig(t, nodes, workers, keys, nil)
	defer stop()

	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := rt.Executor(n, w)
				for i := 0; i < 120; i++ {
					from := uint64((n*37+w*11+i)%keys) + 1
					to := uint64((n*13+w*7+i*3)%keys) + 1
					if from == to {
						continue
					}
					err := e.Exec(func(tx *Tx) error {
						if err := tx.W(tblAccounts, from); err != nil {
							return err
						}
						if err := tx.W(tblAccounts, to); err != nil {
							return err
						}
						return tx.Execute(func(lc *Local) error {
							f, err := lc.Read(tblAccounts, from)
							if err != nil {
								return err
							}
							g, err := lc.Read(tblAccounts, to)
							if err != nil {
								return err
							}
							amt := uint64(i % 7)
							if f[0] < amt {
								return nil
							}
							if err := lc.Write(tblAccounts, from, []uint64{f[0] - amt, f[1]}); err != nil {
								return err
							}
							return lc.Write(tblAccounts, to, []uint64{g[0] + amt, g[1]})
						})
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(n, w)
		}
	}

	// Concurrent read-only auditor.
	auditStop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		e := rt.Executor(0, 0)
		for {
			select {
			case <-auditStop:
				return
			default:
			}
			var total uint64
			err := e.ExecRO(func(ro *RO) error {
				total = 0
				for k := uint64(1); k <= keys; k++ {
					v, err := ro.Read(tblAccounts, k)
					if err != nil {
						return err
					}
					total += v[0]
				}
				return nil
			})
			if err == nil && total != keys*1000 {
				t.Errorf("audit saw total %d, want %d", total, keys*1000)
				return
			}
			// Pause between audits so RO leases cannot starve writers on a
			// heavily oversubscribed test machine.
			time.Sleep(3 * time.Millisecond)
		}
	}()

	wg.Wait()
	close(auditStop)
	auditWG.Wait()

	var total uint64
	for k := uint64(1); k <= keys; k++ {
		v, ok := rt.C.Node(int(k) % nodes).Unordered(tblAccounts).Get(k)
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		total += v[0]
	}
	if total != keys*1000 {
		t.Fatalf("final total = %d, want %d", total, keys*1000)
	}
}

func TestDeferredInsertDelete(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error {
			lc.Insert(tblAccounts, 100, []uint64{42, 0}) // homed node 0 (local)
			lc.Insert(tblAccounts, 101, []uint64{43, 0}) // homed node 1 (shipped)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rt.C.Node(0).Unordered(tblAccounts).Get(100); !ok || v[0] != 42 {
		t.Fatal("local deferred insert failed")
	}
	if v, ok := rt.C.Node(1).Unordered(tblAccounts).Get(101); !ok || v[0] != 43 {
		t.Fatal("shipped deferred insert failed")
	}
	err = e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error {
			lc.Delete(tblAccounts, 101)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.C.Node(1).Unordered(tblAccounts).Get(101); ok {
		t.Fatal("shipped deferred delete failed")
	}
}

func TestNodeDownFailsFast(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	rt.C.Crash(1)
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		return tx.W(tblAccounts, 1) // homed on the crashed node
	})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}
