package tx

import (
	"errors"
	"testing"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/obs"
)

// Ordered-table rig: keys encode entity<<8|sub, partitioned by entity, so a
// single entity's rows co-locate and a scan of [e<<8, e<<8|0xFF] is legal.
const (
	tblOrders   = 7
	tblOrderIdx = 8
)

func orderedKey(entity, sub uint64) uint64 { return entity<<8 | sub }

func newOrderedRig(t testing.TB, nodes, workers int, mut func(*cluster.Config)) (*Runtime, func()) {
	t.Helper()
	cfg := cluster.DefaultConfig(nodes, workers)
	cfg.LeaseMicros = 5_000
	cfg.ROLeaseMicros = 10_000
	if mut != nil {
		mut(&cfg)
	}
	c := cluster.New(cfg)
	c.Start()
	rt := NewRuntime(c, func(table int, key uint64) int { return int(key>>8) % nodes })
	rt.DefineOrderedSeg(tblOrders, 4096, 2, 8)
	return rt, c.Stop
}

// liveOrderedVal reads a committed ordered row directly, reporting liveness.
func liveOrderedVal(rt *Runtime, node, table int, key uint64) ([]uint64, bool) {
	o := rt.C.Node(node).Ordered(table)
	off, ok := o.Lookup(key)
	if !ok {
		return nil, false
	}
	arena := o.Arena()
	if !kvs.Live(kvs.Incarnation(arena.LoadWord(kvs.IncVerOffset(off)))) {
		return nil, false
	}
	val := make([]uint64, o.ValueWords())
	arena.Read(val, kvs.ValueOffset(off))
	return val, true
}

func insertOrders(t *testing.T, e *Executor, entity uint64, subs []uint64) {
	t.Helper()
	for _, s := range subs {
		key := orderedKey(entity, s)
		err := e.Exec(func(tx *Tx) error {
			if err := tx.WInsert(tblOrders, key, []uint64{s * 100, s}); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil {
			t.Fatalf("insert %#x: %v", key, err)
		}
	}
}

func TestScanLocalAndRemote(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 1, nil)
	defer stop()
	e := rt.Executor(0, 0)
	insertOrders(t, e, 0, []uint64{3, 1, 7, 5}) // entity 0: node 0 (local)
	insertOrders(t, e, 1, []uint64{2, 9})       // entity 1: node 1 (remote)

	for _, tc := range []struct {
		entity uint64
		want   []uint64
	}{
		{0, []uint64{1, 3, 5, 7}},
		{1, []uint64{2, 9}},
	} {
		var got []uint64
		err := e.Exec(func(tx *Tx) error {
			got = got[:0]
			rows, err := tx.Scan(tblOrders, orderedKey(tc.entity, 0), orderedKey(tc.entity, 0xFF), 0)
			if err != nil {
				return err
			}
			for _, r := range rows {
				if r.Val[0] != (r.Key&0xFF)*100 {
					t.Errorf("row %#x val %v", r.Key, r.Val)
				}
				got = append(got, r.Key&0xFF)
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil {
			t.Fatalf("scan entity %d: %v", tc.entity, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("entity %d: got subs %v want %v", tc.entity, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("entity %d: got subs %v want %v", tc.entity, got, tc.want)
			}
		}
	}

	// Bounded scan returns the first `limit` keys in order.
	err := e.Exec(func(tx *Tx) error {
		rows, err := tx.Scan(tblOrders, orderedKey(0, 0), orderedKey(0, 0xFF), 2)
		if err != nil {
			return err
		}
		if len(rows) != 2 || rows[0].Key != orderedKey(0, 1) || rows[1].Key != orderedKey(0, 3) {
			t.Errorf("limited scan rows = %+v", rows)
		}
		return tx.Execute(func(lc *Local) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWInsertEraseRoundTrip(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 1, nil)
	defer stop()
	e := rt.Executor(0, 0)

	for _, entity := range []uint64{0, 1} { // local and remote arms
		key := orderedKey(entity, 4)
		node := int(entity)
		insertOrders(t, e, entity, []uint64{4})
		if v, ok := liveOrderedVal(rt, node, tblOrders, key); !ok || v[0] != 400 {
			t.Fatalf("entity %d: after insert = %v,%v", entity, v, ok)
		}
		// Duplicate insert reports ErrExists.
		err := e.Exec(func(tx *Tx) error {
			if err := tx.WInsert(tblOrders, key, []uint64{1, 1}); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if !errors.Is(err, kvs.ErrExists) {
			t.Fatalf("entity %d: duplicate insert err = %v", entity, err)
		}
		// Erase returns the old value and removes the row.
		var old []uint64
		err = e.Exec(func(tx *Tx) error {
			v, err := tx.Erase(tblOrders, key)
			if err != nil {
				return err
			}
			old = append(old[:0], v...)
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil || old[0] != 400 {
			t.Fatalf("entity %d: erase = %v old=%v", entity, err, old)
		}
		if _, ok := liveOrderedVal(rt, node, tblOrders, key); ok {
			t.Fatalf("entity %d: row live after erase", entity)
		}
		// The physical entry is removed post-commit; re-insert works.
		insertOrders(t, e, entity, []uint64{4})
		if v, ok := liveOrderedVal(rt, node, tblOrders, key); !ok || v[0] != 400 {
			t.Fatalf("entity %d: after re-insert = %v,%v", entity, v, ok)
		}
	}
}

// Phantom regression (tentpole correctness pin): a writer inserting into a
// scanned range between the speculative scan and commit must force a retry;
// with Runtime.NoScanValidation (the deliberately broken validation stub)
// the same schedule commits blind — proof this test can fail.
func TestScanPhantomForcesRetry(t *testing.T) {
	for _, entity := range []uint64{0, 1} { // local and remote scan arms
		rt, stop := newOrderedRig(t, 2, 2, nil)
		e := rt.Executor(0, 0)
		writer := rt.Executor(0, 1)
		insertOrders(t, e, entity, []uint64{1, 2})

		phantom := orderedKey(entity, 3)
		attempts := 0
		var rowCounts []int
		err := e.Exec(func(tx *Tx) error {
			attempts++
			rows, err := tx.Scan(tblOrders, orderedKey(entity, 0), orderedKey(entity, 0xFF), 0)
			if err != nil {
				return err
			}
			rowCounts = append(rowCounts, len(rows))
			if attempts == 1 {
				// Between collection and commit: another worker commits an
				// insert into the scanned range.
				werr := writer.Exec(func(wt *Tx) error {
					if err := wt.WInsert(tblOrders, phantom, []uint64{300, 3}); err != nil {
						return err
					}
					return wt.Execute(func(lc *Local) error { return nil })
				})
				if werr != nil {
					t.Fatalf("phantom writer: %v", werr)
				}
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil {
			t.Fatalf("entity %d: %v", entity, err)
		}
		if attempts < 2 {
			t.Fatalf("entity %d: phantom admitted: committed on attempt %d", entity, attempts)
		}
		last := rowCounts[len(rowCounts)-1]
		if rowCounts[0] != 2 || last != 3 {
			t.Fatalf("entity %d: row counts %v, want first=2 last=3", entity, rowCounts)
		}
		if rt.C.Obs.Snapshot().Counter(obs.EvScanValidateFail) == 0 {
			t.Fatalf("entity %d: no scan validation failure recorded", entity)
		}
		stop()
	}
}

func TestScanPhantomAdmittedByStubbedValidation(t *testing.T) {
	rt, stop := newOrderedRig(t, 1, 2, nil)
	defer stop()
	rt.NoScanValidation = true // the broken stub the regression test pins against
	e := rt.Executor(0, 0)
	writer := rt.Executor(0, 1)
	insertOrders(t, e, 0, []uint64{1, 2})

	attempts := 0
	var firstRows int
	err := e.Exec(func(tx *Tx) error {
		attempts++
		rows, err := tx.Scan(tblOrders, orderedKey(0, 0), orderedKey(0, 0xFF), 0)
		if err != nil {
			return err
		}
		firstRows = len(rows)
		if attempts == 1 {
			werr := writer.Exec(func(wt *Tx) error {
				if err := wt.WInsert(tblOrders, orderedKey(0, 3), []uint64{300, 3}); err != nil {
					return err
				}
				return wt.Execute(func(lc *Local) error { return nil })
			})
			if werr != nil {
				t.Fatalf("phantom writer: %v", werr)
			}
		}
		return tx.Execute(func(lc *Local) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 || firstRows != 2 {
		t.Fatalf("stubbed validation: attempts=%d rows=%d; want the phantom admitted (1 attempt, stale 2-row scan)",
			attempts, firstRows)
	}
}

func TestSecondaryIndexMaintenance(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 1, nil)
	defer stop()
	// Index: same entity (partition co-located), sub attribute = val[1],
	// bijective per entity in this test so index keys stay unique.
	rt.DefineOrderedSeg(tblOrderIdx, 4096, 1, 8)
	rt.DefineIndex(tblOrders, IndexSpec{
		Table: tblOrderIdx,
		Key:   func(baseKey uint64, val []uint64) uint64 { return baseKey&^0xFF | val[1]&0xFF },
	})
	e := rt.Executor(0, 0)

	for _, entity := range []uint64{0, 1} { // local and remote maintenance
		node := int(entity)
		base := orderedKey(entity, 4)
		// Insert with sub attribute 9: index row at entity<<8|9 -> base key.
		err := e.Exec(func(tx *Tx) error {
			if err := tx.WInsert(tblOrders, base, []uint64{400, 9}); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil {
			t.Fatalf("entity %d: insert: %v", entity, err)
		}
		iv, ok := liveOrderedVal(rt, node, tblOrderIdx, orderedKey(entity, 9))
		if !ok || iv[0] != base {
			t.Fatalf("entity %d: index row = %v,%v want [%#x]", entity, iv, ok, base)
		}
		// A plain write that keeps the indexed attribute is fine.
		err = e.Exec(func(tx *Tx) error {
			if err := tx.W(tblOrders, base); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				return lc.Write(tblOrders, base, []uint64{401, 9})
			})
		})
		if err != nil {
			t.Fatalf("entity %d: in-place update: %v", entity, err)
		}
		// Erase removes base and index rows together.
		err = e.Exec(func(tx *Tx) error {
			_, err := tx.Erase(tblOrders, base)
			if err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error { return nil })
		})
		if err != nil {
			t.Fatalf("entity %d: erase: %v", entity, err)
		}
		if _, ok := liveOrderedVal(rt, node, tblOrders, base); ok {
			t.Fatalf("entity %d: base row live after erase", entity)
		}
		if _, ok := liveOrderedVal(rt, node, tblOrderIdx, orderedKey(entity, 9)); ok {
			t.Fatalf("entity %d: index row live after erase", entity)
		}
	}
}

func TestWriteChangingIndexedAttributePanics(t *testing.T) {
	rt, stop := newOrderedRig(t, 1, 1, nil)
	defer stop()
	rt.DefineOrderedSeg(tblOrderIdx, 4096, 1, 8)
	rt.DefineIndex(tblOrders, IndexSpec{
		Table: tblOrderIdx,
		Key:   func(baseKey uint64, val []uint64) uint64 { return baseKey&^0xFF | val[1]&0xFF },
	})
	e := rt.Executor(0, 0)
	base := orderedKey(0, 4)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.WInsert(tblOrders, base, []uint64{400, 9}); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("plain Write changing the indexed attribute did not panic")
		}
	}()
	_ = e.Exec(func(tx *Tx) error {
		if err := tx.W(tblOrders, base); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblOrders, base, []uint64{400, 8}) // moves the index key
		})
	})
}

func TestROScanConfirm(t *testing.T) {
	rt, stop := newOrderedRig(t, 2, 1, nil)
	defer stop()
	e := rt.Executor(0, 0)
	insertOrders(t, e, 0, []uint64{1, 2, 3})
	insertOrders(t, e, 1, []uint64{5, 6})

	for _, entity := range []uint64{0, 1} { // local and remote RO scans
		var got int
		err := e.ExecRO(func(ro *RO) error {
			rows, err := ro.Scan(tblOrders, orderedKey(entity, 0), orderedKey(entity, 0xFF), 0)
			if err != nil {
				return err
			}
			got = len(rows)
			for _, r := range rows {
				if r.Val[0] != (r.Key&0xFF)*100 {
					t.Errorf("row %#x val %v", r.Key, r.Val)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("entity %d: %v", entity, err)
		}
		want := 3
		if entity == 1 {
			want = 2
		}
		if got != want {
			t.Fatalf("entity %d: %d rows, want %d", entity, got, want)
		}
	}
	if rt.C.Obs.Snapshot().Counter(obs.EvScan) == 0 {
		t.Fatal("no scans counted")
	}
}
