package tx

import (
	"errors"

	"drtm/internal/clock"
	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// Fault policy of the transaction layer (Section 4.6). Verbs can fail two
// ways: a transient ErrTimeout (an injected fabric fault; a real NIC would
// retransmit) or ErrNodeUnreachable (the target machine crashed).
//
//   - Acquisition-side verbs (lock CAS, lease CAS, lookup/prefetch READs)
//     retry timeouts a bounded number of times with jittered exponential
//     backoff charged to virtual time; an unreachable node — or an
//     exhausted retry budget — aborts the transaction with ErrNodeDown
//     after releasing every lock it holds.
//
//   - Release-side verbs (unlock, commit write-back, deferred store ops)
//     run AFTER the transaction's serialization point, so they must never
//     fail: timeouts retry without bound, and writes to an unreachable
//     node are parked in the runtime's pending queue. Recovery (or the
//     node's revival) drains the queue, so a committed transaction's
//     effects are never lost — the invariant the chaos experiment checks.

// verbRetries bounds acquisition-side retries of transient verb faults.
const verbRetries = 6

// faultBackoff charges one jittered exponential backoff step to virtual
// time and records it, mirroring the sender-side retransmission delay of a
// reliable-connection QP.
func (e *Executor) faultBackoff(attempt int) {
	sh := e.w.Obs
	sh.Inc(obs.EvLockRetry)
	maxNS := int64(1) << (uint(attempt) + 11) // 2us, 4us, ... 64us
	ns := e.rng.Int63n(maxNS) + 1
	e.charge(ns)
	sh.Add(obs.EvBackoffNanos, ns)
}

// verbRetry runs an acquisition-side verb, retrying transient timeouts.
// The returned error is nil, ErrNodeUnreachable, or ErrTimeout (budget
// exhausted); callers map both failures to ErrNodeDown via nodeDown.
func (e *Executor) verbRetry(op func() error) error {
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !errors.Is(err, rdma.ErrTimeout) || attempt >= verbRetries {
			return err
		}
		e.faultBackoff(attempt)
	}
}

// mustWrite is the release-side WRITE: it retries timeouts without bound
// and parks the write in the pending queue when the target is unreachable.
//
// When the ISSUING node is the one that crashed (the verb fails because a
// dead machine cannot send), the write is dropped instead: the transaction's
// WAL record — which logs dirty remote records too — is the durable source
// of truth, and recovery redoes the write-back. Applying it here would race
// recovery's unlock and could clobber a survivor's freshly taken lock.
func (e *Executor) mustWrite(node, table int, off memory.Offset, words []uint64) {
	for attempt := 0; ; attempt++ {
		err := e.w.QP.TryWrite(node, table, off, words)
		if err == nil {
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			if e.zombie() {
				return
			}
			e.rt.defer_(node, func(rt *Runtime) {
				rt.arenaOf(node, table).Write(off, words)
			})
			return
		}
		e.faultBackoff(attempt)
	}
}

// mustUnlock releases one exclusive lock with an owner-guarded CAS
// (WLocked(self) -> Init) rather than a blind WRITE: if recovery already
// freed the lock and a survivor re-locked the record, a late unlock from
// this (possibly zombie) transaction must not clobber the new owner. A
// failed compare means the lock is already gone — done either way.
func (e *Executor) mustUnlock(node, table int, off memory.Offset) {
	locked := clock.WLocked(uint8(e.w.Node.ID))
	for attempt := 0; ; attempt++ {
		_, _, err := e.w.QP.TryCAS(node, table, off, locked, clock.Init)
		if err == nil {
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			e.rt.defer_(node, func(rt *Runtime) {
				rt.arenaOf(node, table).CAS(off, locked, clock.Init)
			})
			return
		}
		e.faultBackoff(attempt)
	}
}

// zombie reports whether this worker's own machine is currently marked
// crashed — its goroutine keeps running in the simulator, but under
// fail-stop semantics its volatile effects must not reach live memory.
func (e *Executor) zombie() bool {
	return e.rt.C.Fabric.NodeDown(e.w.Node.ID)
}

// defer_ parks an apply step until node is recovered or revived. If the
// node already came back between the failed verb and the enqueue, the
// queue drains immediately so the step is not stranded.
func (rt *Runtime) defer_(node int, apply func(*Runtime)) {
	rt.pendMu.Lock()
	if rt.pending == nil {
		rt.pending = make(map[int][]func(*Runtime))
	}
	rt.pending[node] = append(rt.pending[node], apply)
	rt.pendMu.Unlock()
	if !rt.C.Fabric.NodeDown(node) {
		rt.FlushPending(node)
	}
}

// FlushPending applies the release-side steps parked while node was
// unreachable. It runs against the node's (NVRAM-backed) memory directly,
// the way recovery does; callers invoke it from Recover and after Revive.
func (rt *Runtime) FlushPending(node int) int {
	rt.pendMu.Lock()
	ops := rt.pending[node]
	delete(rt.pending, node)
	rt.pendMu.Unlock()
	for _, op := range ops {
		op(rt)
	}
	return len(ops)
}

// PendingOps reports how many release-side steps are parked for node.
func (rt *Runtime) PendingOps(node int) int {
	rt.pendMu.Lock()
	defer rt.pendMu.Unlock()
	return len(rt.pending[node])
}

// EnableAutoRecovery wires the cluster's failure detector to the
// transaction layer. Without replication, the elected coordinator replays
// the crashed node's NVRAM logs, drains deferred writes, and brings the node
// back online (reboot-style recovery). With replication, the coordinator
// instead promotes the partition's highest-ranked live backup and replays
// only its redo tail — hot failover; the crashed machine stays down and its
// clients fail over at the workload level.
func (rt *Runtime) EnableAutoRecovery() {
	rt.C.OnDeath(func(coordinator, crashed int) {
		if rt.C.ReplicationFactor() > 0 {
			rt.Failover(crashed)
			return
		}
		rt.Recover(crashed)
		rt.C.Revive(crashed)
		rt.FlushPending(crashed) // anything parked between Recover and Revive
	})
}
