package tx

import (
	"sync"

	"drtm/internal/kvs"
)

// cacheSet holds a node's location caches, one per (remote node, table),
// shared by all worker threads of the node (Section 5.3).
type cacheSet struct {
	mux sync.RWMutex
	m   map[cacheKey]kvs.Cache
}

type cacheKey struct{ node, table int }

func newCacheSet() *cacheSet {
	return &cacheSet{m: make(map[cacheKey]kvs.Cache)}
}

// stats sums hit/miss/invalidation counters over all caches in the set.
func (s *cacheSet) stats() (hits, misses, invals int64) {
	s.mux.RLock()
	defer s.mux.RUnlock()
	for _, c := range s.m {
		h, m, i := c.Stats()
		hits += h
		misses += m
		invals += i
	}
	return
}

func (s *cacheSet) get(node, table, budgetBytes int, build func(int) kvs.Cache) kvs.Cache {
	k := cacheKey{node, table}
	s.mux.RLock()
	c, ok := s.m[k]
	s.mux.RUnlock()
	if ok {
		return c
	}
	s.mux.Lock()
	defer s.mux.Unlock()
	if c, ok := s.m[k]; ok {
		return c
	}
	c = build(budgetBytes)
	s.m[k] = c
	return c
}
