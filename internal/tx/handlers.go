package tx

import (
	"errors"
	"fmt"

	"drtm/internal/cluster"
	"drtm/internal/rdma"
)

// Verbs message types used by the transaction layer.
const (
	// msgStoreOp ships an INSERT/DELETE to the record's host, where it is
	// executed through the host's store (footnote 5 / Section 6.5).
	msgStoreOp = 1
)

// storeOpMsg is the body of a shipped insert/delete.
type storeOpMsg struct {
	Insert bool
	Table  int
	Key    uint64
	Val    []uint64
}

// installStoreHandlers wires the verbs store-op handler on every node.
func (rt *Runtime) installStoreHandlers() {
	for i := 0; i < rt.C.Nodes(); i++ {
		n := rt.C.Node(i)
		n.Handle(msgStoreOp, func(from int, body any) any {
			m := body.(storeOpMsg)
			return rt.execStoreOp(n, m)
		})
	}
}

// execStoreOp performs an insert/delete on the host node's store.
func (rt *Runtime) execStoreOp(n *cluster.Node, m storeOpMsg) error {
	meta := rt.Meta(m.Table)
	if meta.Kind == Ordered {
		o := n.Ordered(m.Table)
		if m.Insert {
			return o.Insert(m.Key, m.Val)
		}
		o.Delete(m.Key)
		return nil
	}
	t := n.Unordered(m.Table)
	if m.Insert {
		return t.Insert(m.Key, m.Val)
	}
	t.Delete(m.Key)
	return nil
}

// applyStoreOp applies a deferred insert/delete: directly when the record
// is homed here, via verbs otherwise.
func (e *Executor) applyStoreOp(op deferredOp) {
	node := e.rt.Part(op.table, op.key)
	if node < 0 { // replicated table: apply locally
		node = e.w.Node.ID
	}
	m := storeOpMsg{Insert: op.insert, Table: op.table, Key: op.key, Val: op.val}
	if node == e.w.Node.ID {
		if err := e.rt.execStoreOp(e.w.Node, m); err != nil {
			// Duplicate keys indicate a workload bug; surface loudly.
			panic(fmt.Sprintf("tx: deferred store op failed: %v", err))
		}
		model := e.model()
		if op.insert && e.rt.Meta(op.table).Kind == Ordered {
			e.charge(model.BTreeOpNS)
		} else {
			e.charge(model.HashProbeNS)
		}
		return
	}
	sz := (3 + len(op.val)) * 8
	for attempt := 0; ; attempt++ {
		resp, err := e.w.QP.Call(node, cluster.Msg{Type: msgStoreOp, Body: m}, sz, 8)
		if err == nil {
			if herr, _ := resp.(error); herr != nil {
				// Duplicate keys indicate a workload bug; surface loudly.
				panic(fmt.Sprintf("tx: shipped store op failed: %v", herr))
			}
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			// Post-commit effect on a crashed host: park it for recovery,
			// like a deferred write-back (fault.go).
			e.rt.defer_(node, func(rt *Runtime) {
				if aerr := rt.execStoreOp(rt.C.Node(node), m); aerr != nil {
					panic(fmt.Sprintf("tx: recovered store op failed: %v", aerr))
				}
			})
			return
		}
		e.faultBackoff(attempt)
	}
}
