package tx

import (
	"errors"
	"fmt"

	"drtm/internal/cluster"
	"drtm/internal/rdma"
)

// Verbs message types used by the transaction layer.
const (
	// msgStoreOp ships an INSERT/DELETE to the record's host, where it is
	// executed through the host's store (footnote 5 / Section 6.5).
	msgStoreOp = 1
	// msgRedoCheckpoint asks a backup to apply and truncate one redo log
	// (sender worker's ring reached the checkpoint threshold). The apply
	// work happens with the backup's resources, as in FaRM: backups consume
	// their logs with their own CPUs off the commit critical path.
	msgRedoCheckpoint = 2
)

// storeOpMsg is the body of a shipped insert/delete.
type storeOpMsg struct {
	Insert bool
	Table  int
	Key    uint64
	Val    []uint64
}

// redoCkptMsg names the redo log to checkpoint: the one appended by worker
// (Sender, Worker) on the receiving backup.
type redoCkptMsg struct {
	Sender int
	Worker int
}

// installStoreHandlers wires the verbs store-op handler on every node.
func (rt *Runtime) installStoreHandlers() {
	for i := 0; i < rt.C.Nodes(); i++ {
		n := rt.C.Node(i)
		n.Handle(msgStoreOp, func(from int, body any) any {
			m := body.(storeOpMsg)
			return rt.execStoreOp(n, m)
		})
		n.Handle(msgRedoCheckpoint, func(from int, body any) any {
			m := body.(redoCkptMsg)
			rt.drainCheckpoint(n, m.Sender, m.Worker)
			return nil
		})
	}
}

// execStoreOp performs an insert/delete on the host node's store, resolving
// the storage region under the current view (a promoted owner serves its
// adopted partition from the replica region). When the host is the
// partition's home primary, the op is mirrored to every backup's replica
// shard so a later promotion sees the record.
func (rt *Runtime) execStoreOp(n *cluster.Node, m storeOpMsg) error {
	meta := rt.Meta(m.Table)
	region := m.Table
	part := rt.Part(m.Table, m.Key)
	repl := part >= 0 && rt.C.ReplicationFactor() > 0
	if part >= 0 && rt.C.OwnerOf(part) != part {
		region = cluster.ReplicaRegion(part, m.Table)
	}
	if repl {
		// Serialized with redo application (repl.go): a drain must never
		// observe the copies mid-op or interleave with a delete, and a
		// delete's generation bump must be atomic with removing the entry so
		// stale redo records are recognized (applyRedoTo's guards).
		rt.redoMu.Lock()
		defer rt.redoMu.Unlock()
	}
	if meta.Kind == Ordered {
		return rt.execOrderedStoreOp(n, m, region, part, repl)
	}
	t := n.Unordered(region)
	var err error
	if m.Insert {
		err = t.Insert(m.Key, m.Val)
	} else {
		t.Delete(m.Key)
		if repl {
			rt.delGen[delKey{part, m.Table, m.Key}]++
		}
	}
	if err == nil && repl && rt.C.OwnerOf(part) == part {
		rt.bkScr = rt.C.Backups(rt.bkScr[:0], part)
		for _, b := range rt.bkScr {
			rep := rt.C.Node(b).Unordered(cluster.ReplicaRegion(part, m.Table))
			if m.Insert {
				err = rep.Insert(m.Key, m.Val)
			} else {
				rep.Delete(m.Key)
			}
			if err != nil {
				return err
			}
		}
	}
	return err
}

// execOrderedStoreOp is execStoreOp for ordered tables: the host resolves
// its ordered shard under the current view (a promoted owner serves the
// adopted partition from its replica shard), applies the op, and — when it
// is the home primary — mirrors it to every backup's ordered replica shard.
// The caller holds redoMu when repl is set.
func (rt *Runtime) execOrderedStoreOp(n *cluster.Node, m storeOpMsg,
	region, part int, repl bool) error {
	o, ok := n.OrderedRegion(region)
	if !ok {
		return fmt.Errorf("tx: no ordered region %d on node %d", region, n.ID)
	}
	if m.Insert {
		if err := o.Insert(m.Key, m.Val); err != nil {
			return err
		}
	} else {
		o.Delete(m.Key)
		if repl {
			rt.delGen[delKey{part, m.Table, m.Key}]++
		}
	}
	if repl && rt.C.OwnerOf(part) == part {
		rt.bkScr = rt.C.Backups(rt.bkScr[:0], part)
		for _, b := range rt.bkScr {
			rep, ok := rt.C.Node(b).OrderedRegion(cluster.ReplicaRegion(part, m.Table))
			if !ok {
				continue
			}
			if m.Insert {
				if err := rep.Insert(m.Key, m.Val); err != nil {
					return err
				}
			} else {
				rep.Delete(m.Key)
			}
		}
	}
	return nil
}

// applyStoreOp applies a deferred insert/delete: directly when the record
// is homed here, via verbs otherwise.
func (e *Executor) applyStoreOp(op deferredOp) {
	node, _, _ := e.route(op.table, op.key)
	m := storeOpMsg{Insert: op.insert, Table: op.table, Key: op.key, Val: op.val}
	if node == e.w.Node.ID {
		if err := e.rt.execStoreOp(e.w.Node, m); err != nil {
			// Duplicate keys indicate a workload bug; surface loudly.
			panic(fmt.Sprintf("tx: deferred store op failed: %v", err))
		}
		model := e.model()
		if op.insert && e.rt.Meta(op.table).Kind == Ordered {
			e.charge(model.BTreeOpNS)
		} else {
			e.charge(model.HashProbeNS)
		}
		return
	}
	sz := (3 + len(op.val)) * 8
	for attempt := 0; ; attempt++ {
		resp, err := e.w.QP.Call(node, cluster.Msg{Type: msgStoreOp, Body: m}, sz, 8)
		if err == nil {
			if herr, _ := resp.(error); herr != nil {
				// Duplicate keys indicate a workload bug; surface loudly.
				panic(fmt.Sprintf("tx: shipped store op failed: %v", herr))
			}
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			// Post-commit effect on a crashed host: park it for recovery,
			// like a deferred write-back (fault.go).
			e.rt.defer_(node, func(rt *Runtime) {
				if aerr := rt.execStoreOp(rt.C.Node(node), m); aerr != nil {
					panic(fmt.Sprintf("tx: recovered store op failed: %v", aerr))
				}
			})
			return
		}
		e.faultBackoff(attempt)
	}
}
