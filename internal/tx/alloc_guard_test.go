//go:build !race

package tx

import "testing"

// TestExecAllocSteadyState pins the pooled hot path: once the executor's
// pools are warm, a committed transaction must stay under a small allocation
// budget (the pre-pooling path allocated 24/53 objects per local/remote
// transaction; the pools brought that to ~15/17, dominated by the HTM engine
// and closure captures). Excluded under -race: the detector adds shadow
// allocations.
func TestExecAllocSteadyState(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 8, nil)
	defer stop()
	rt.ReadPolicy = PolicySpeculative
	e := rt.Executor(0, 0)
	for i := 0; i < 16; i++ { // warm the pools
		if err := benchRemoteTxn(e, true); err != nil {
			t.Fatal(err)
		}
		if err := benchLocalTxn(e); err != nil {
			t.Fatal(err)
		}
	}
	local := testing.AllocsPerRun(50, func() {
		if err := benchLocalTxn(e); err != nil {
			t.Fatal(err)
		}
	})
	remote := testing.AllocsPerRun(50, func() {
		if err := benchRemoteTxn(e, true); err != nil {
			t.Fatal(err)
		}
	})
	if local > 20 {
		t.Errorf("local txn allocates %.0f objects, budget 20", local)
	}
	if remote > 25 {
		t.Errorf("remote spec txn allocates %.0f objects, budget 25", remote)
	}

	// The snapshot RO path (one remote + one local chain-resolved read)
	// measured 11 objects/op when introduced — the entry image, the value
	// copies, and the verb round-trip. Budget 15 so a regression that starts
	// allocating per-slot or per-attempt scratch trips the guard.
	rt.ReadPolicy = PolicyMVCC
	for i := 0; i < 16; i++ {
		if err := benchMVCCROTxn(e); err != nil {
			t.Fatal(err)
		}
	}
	mvcc := testing.AllocsPerRun(50, func() {
		if err := benchMVCCROTxn(e); err != nil {
			t.Fatal(err)
		}
	})
	if mvcc > 15 {
		t.Errorf("mvcc RO allocates %.0f objects, budget 15", mvcc)
	}
}
