package tx

import (
	"drtm/internal/clock"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/obs"
)

// Speculative (OCC) read validation — the commit half of the speculative
// read arm (PolicySpeculative, or cold-bucket routes under PolicyAdaptive).
//
// A speculative record was fetched with one unprotected READ; nothing stops
// a writer from committing a new version between that fetch and our commit.
// validateSpeculative runs inside the HTM region, after the body and the
// lease confirmations and before the WAL write / XEND, and checks that every
// speculative record still carries the incarnation|version observed at fetch
// with no live exclusive lock. Any mismatch aborts the region with
// abortCodeSpec, which Execute turns into a whole-transaction retry — the
// staged buffers are stale by construction.
//
// Two layers cooperate, and both matter:
//
//   - A doorbell-batched wave of 2-word header READs (kvs.PostHeaderRead)
//     models the wire cost of re-reading every version word in one round
//     trip and exposes the verbs to fault injection — a persistently
//     unreachable host turns the abort into ErrNodeDown via Tx.specDown.
//
//   - The AUTHORITATIVE comparison uses htx.Read on the same words. For
//     records homed on peer nodes these are reads of the peer's arena
//     words, which enrolls the entry's header line in OUR HTM read set:
//     emulated strong atomicity then aborts this region if a writer
//     publishes to that line between our poll and our XEND, closing the
//     validate→commit window. This is the same license Figure 6 uses for
//     local reads of the state word — validation and XEND become one atomic
//     instant, which is the transaction's serialization point.
//
// Why an unchanged version word proves the buffered value is safe: every
// committed write path — HTM-local Write, commitRemotes' write-back, the
// fallback's publish — bumps the 32-bit version while holding write
// protection (HTM write set or the state-word lock), and multi-line value
// updates publish value lines before releasing the state word, ordered by a
// poll barrier. So a reader that observed `version v, state unlocked` at
// fetch and observes `version v, state not write-locked` here saw a stable
// image; aborting lock holders never write values, so a lock that came and
// went without a version bump is harmless.
func (t *Tx) validateSpeculative(htx *htm.Txn) {
	nspec := 0
	for _, r := range t.remotes {
		if r.spec {
			nspec++
		}
	}
	if nspec == 0 {
		return
	}
	e := t.e
	sh := e.w.Obs
	vstart := int64(e.w.VClock.Now())
	if cap(e.hdrBuf) < nspec*kvs.EntryHeaderWords {
		e.hdrBuf = make([]uint64, nspec*kvs.EntryHeaderWords)
	}
	hdr := e.hdrBuf[:nspec*kvs.EntryHeaderWords]

	// One doorbell-batched wave of header re-READs (cost + fault model).
	sq := e.sendq()
	wrs := e.activeWR[:0]
	i := 0
	for _, r := range t.remotes {
		if !r.spec {
			continue
		}
		dst := hdr[i*kvs.EntryHeaderWords : (i+1)*kvs.EntryHeaderWords]
		if r.ordered {
			// Ordered entries have no lossy hash locator; re-read the
			// key+incver words at the resolved offset directly.
			wrs = append(wrs, sq.PostRead(r.node, r.region, r.off+kvs.EntryKeyWord, dst))
		} else {
			host := e.rt.C.Node(r.node).Unordered(r.region)
			loc := kvs.Loc{Off: r.off, Lossy: r.lossy}
			wrs = append(wrs, host.PostHeaderRead(sq, loc, dst))
		}
		i++
	}
	sq.Poll()
	down := false
	for _, wr := range wrs {
		if wr.Err == nil {
			continue
		}
		// Transient verb fault: re-attempt with the bounded sync retry
		// policy; a persistent failure means the record's home is gone and
		// the transaction must surface ErrNodeDown, not retry forever.
		dst := wr.Dst
		if err := e.verbRetry(func() error {
			return e.w.QP.TryRead(wr.Node, wr.Region, wr.Off, dst)
		}); err != nil {
			down = true
			break
		}
	}
	e.activeWR = wrs[:0]

	// Authoritative check: HTM reads of the same words, enrolling each
	// header line in this region's read set (strong atomicity closes the
	// poll→XEND window).
	var fails int64
	if !down {
		for _, r := range t.remotes {
			if !r.spec {
				continue
			}
			arena := t.arenaAt(r.node, r.region)
			incver := htx.Read(arena, kvs.IncVerOffset(r.off))
			state := htx.Read(arena, kvs.StateOffset(r.off))
			stale := kvs.Version(incver) != r.version ||
				kvs.Incarnation(incver) != r.inc ||
				clock.IsWriteLocked(state)
			if r.ordered {
				// The slot could also have been recycled for another key.
				stale = stale || htx.Read(arena, r.off+kvs.EntryKeyWord) != r.key
			}
			if stale {
				fails++
				if !r.ordered {
					// Adaptive feedback: a validation failure is the spec
					// arm's defining loss — heat the bucket so future reads
					// lease it. (The heat map is keyed by hash bucket, so
					// ordered records don't feed it.)
					host := e.rt.C.Node(r.node).Unordered(r.region)
					e.feedConflict(host, r.node, r.table, r.key, 1)
				}
			}
		}
	}
	sh.Observe(obs.PhaseValidate, int64(e.w.VClock.Now())-vstart)
	if down {
		t.specDown = true
		htx.Abort(abortCodeSpec)
	}
	if fails > 0 {
		sh.Add(obs.EvSpecValidateFail, fails)
		htx.Abort(abortCodeSpec)
	}
}
