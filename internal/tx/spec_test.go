package tx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"drtm/internal/obs"
)

// specRig is newRig with the speculative read arm enabled.
func specRig(t testing.TB, nodes, workers, keys int) (*Runtime, func()) {
	rt, stop := newRig(t, nodes, workers, keys, nil)
	rt.ReadPolicy = PolicySpeculative
	return rt, stop
}

func TestSpecReadCommit(t *testing.T) {
	rt, stop := specRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	// Key 1 is remote (node 1): read it speculatively, write local key 2.
	var got uint64
	err := e.Exec(func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil {
			return err
		}
		if err := tx.W(tblAccounts, 2); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			got = v[0]
			return lc.Write(tblAccounts, 2, []uint64{v[0] + 1, 0})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1000 {
		t.Fatalf("spec read saw %d, want 1000", got)
	}
	if v, _ := rt.C.Node(0).Unordered(tblAccounts).Get(2); v[0] != 1001 {
		t.Fatalf("write-back = %d, want 1001", v[0])
	}
	if n := rt.C.Obs.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("EvSpecRead = %d, want 1", n)
	}
	if n := rt.C.Obs.Total(obs.EvSpecValidateFail); n != 0 {
		t.Fatalf("EvSpecValidateFail = %d, want 0", n)
	}
}

// TestSpecGoldenCost pins the speculative read's one-RTT cost shape: staging
// a remote read-set record posts only READs — the lookup walk and the entry
// fetch — with zero CAS charges, and its modeled cost stays far below a
// single RDMA CAS (the whole point of the arm).
func TestSpecGoldenCost(t *testing.T) {
	rt, stop := specRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	model := rt.C.Fabric.Model()

	tx0 := e.newTx()
	cas0 := rt.C.Obs.Total(obs.EvRDMACAS)
	reads0 := rt.C.Obs.Total(obs.EvRDMARead)
	v0 := e.w.VClock.Now()
	if err := tx0.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	v1 := e.w.VClock.Now()
	if d := rt.C.Obs.Total(obs.EvRDMACAS) - cas0; d != 0 {
		t.Fatalf("spec staging charged %d CAS verbs, want 0", d)
	}
	nreads := rt.C.Obs.Total(obs.EvRDMARead) - reads0
	if nreads < 2 { // at least the main-bucket lookup READ + the entry READ
		t.Fatalf("spec staging posted %d READs, want >= 2", nreads)
	}
	cost := int64(v1 - v0)
	if min := 2 * model.RDMAReadBaseNS; cost < min {
		t.Fatalf("spec staging cost %dns, want >= %dns (two READ round trips)", cost, min)
	}
	if cost >= model.RDMACASNS {
		t.Fatalf("spec staging cost %dns, want < one CAS (%dns)", cost, model.RDMACASNS)
	}
	tx0.releaseLocks()

	// The lease arm pays the CAS on the same access shape.
	rt.ReadPolicy = PolicyLease
	tx1 := e.newTx()
	v2 := e.w.VClock.Now()
	if err := tx1.stageRemote(tblAccounts, 3, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	leaseCost := int64(e.w.VClock.Now() - v2)
	tx1.releaseLocks()
	if leaseCost < model.RDMACASNS {
		t.Fatalf("lease staging cost %dns, want >= one CAS (%dns)", leaseCost, model.RDMACASNS)
	}
	if cost*2 > leaseCost {
		t.Fatalf("spec staging (%dns) not ≥2x cheaper than lease staging (%dns)", cost, leaseCost)
	}
}

// TestSpecValidationAbortsOnWriterBump stages a speculative read, lets a
// writer commit a new version underneath it, and asserts the transaction
// refuses to commit the stale buffer.
func TestSpecValidationAbortsOnWriterBump(t *testing.T) {
	rt, stop := specRig(t, 2, 2, 4)
	defer stop()
	e0 := rt.Executor(0, 0)
	e1 := rt.Executor(1, 1)

	tx0 := e0.newTx()
	if err := tx0.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	// Writer on key 1's home node commits a version bump.
	if err := e1.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAccounts, 1, []uint64{555, 0})
		})
	}); err != nil {
		t.Fatal(err)
	}
	err := tx0.Execute(func(lc *Local) error {
		_, err := lc.Read(tblAccounts, 1)
		return err
	})
	if !errors.Is(err, ErrRetry) {
		t.Fatalf("stale speculative read committed: err=%v", err)
	}
	if n := rt.C.Obs.Total(obs.EvSpecValidateFail); n < 1 {
		t.Fatalf("EvSpecValidateFail = %d, want >= 1", n)
	}
}

// TestSpecUpgrade reads a record speculatively and then declares a write on
// it: the record must be re-acquired as an exclusive lock (nothing to CAS
// away — a speculative read holds no lease) and committed normally.
func TestSpecUpgrade(t *testing.T) {
	rt, stop := specRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil { // remote, speculative
			return err
		}
		if err := tx.W(tblAccounts, 1); err != nil { // upgrade in place
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(tblAccounts, 1, []uint64{v[0] + 7, v[1]})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rt.C.Node(1).Unordered(tblAccounts).Get(1); v[0] != 1007 {
		t.Fatalf("upgraded write-back = %d, want 1007", v[0])
	}
	// The record must be unlocked after commit.
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if host.Arena().LoadWord(off+2) != 0 {
		t.Fatal("record still locked after upgraded commit")
	}
}

// TestROSpecRead covers the read-only spec arm: fetch without a lease,
// confirm via the header re-READ wave.
func TestROSpecRead(t *testing.T) {
	rt, stop := specRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	var got uint64
	if err := e.ExecRO(func(ro *RO) error {
		v, err := ro.Read(tblAccounts, 1) // remote
		if err != nil {
			return err
		}
		got = v[0]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != 1000 {
		t.Fatalf("RO spec read = %d, want 1000", got)
	}
	if n := rt.C.Obs.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("EvSpecRead = %d, want 1", n)
	}
	// No lease CAS was spent on the remote record.
	if n := rt.C.Obs.Total(obs.EvLeaseGrant) + rt.C.Obs.Total(obs.EvLeaseShare); n != 0 {
		t.Fatalf("RO spec read took %d leases, want 0", n)
	}
}

// TestSpecStress is the validation-under-fire test: concurrent writers
// transfer between two accounts while speculative readers (both read-write
// and read-only transactions) repeatedly read the pair. Every committed read
// must observe a version-consistent snapshot — the pair sum never deviates —
// and the final balances conserve the total. Run with -race.
func TestSpecStress(t *testing.T) {
	rt, stop := specRig(t, 2, 4, 4)
	defer stop()
	const (
		keyA, keyB = 1, 3 // both on node 1
		total      = 2000
	)
	deadline := time.Now().Add(400 * time.Millisecond)
	var wg sync.WaitGroup
	fail := make(chan string, 16)

	reader := func(node, worker int, ro bool) {
		defer wg.Done()
		e := rt.Executor(node, worker)
		for time.Now().Before(deadline) {
			var a, b uint64
			var err error
			if ro {
				err = e.ExecRO(func(r *RO) error {
					va, err := r.Read(tblAccounts, keyA)
					if err != nil {
						return err
					}
					vb, err := r.Read(tblAccounts, keyB)
					if err != nil {
						return err
					}
					a, b = va[0], vb[0]
					return nil
				})
			} else {
				err = e.Exec(func(tx *Tx) error {
					if err := tx.Stage(
						Access{tblAccounts, keyA, false},
						Access{tblAccounts, keyB, false},
					); err != nil {
						return err
					}
					return tx.Execute(func(lc *Local) error {
						va, err := lc.Read(tblAccounts, keyA)
						if err != nil {
							return err
						}
						vb, err := lc.Read(tblAccounts, keyB)
						if err != nil {
							return err
						}
						a, b = va[0], vb[0]
						return nil
					})
				})
			}
			if err != nil {
				select {
				case fail <- "reader: " + err.Error():
				default:
				}
				return
			}
			if a+b != total {
				select {
				case fail <- "inconsistent snapshot committed":
				default:
				}
				return
			}
		}
	}
	writer := func(node, worker int, delta uint64) {
		defer wg.Done()
		e := rt.Executor(node, worker)
		for time.Now().Before(deadline) {
			err := e.Exec(func(tx *Tx) error {
				if err := tx.Stage(
					Access{tblAccounts, keyA, true},
					Access{tblAccounts, keyB, true},
				); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					va, err := lc.Read(tblAccounts, keyA)
					if err != nil {
						return err
					}
					vb, err := lc.Read(tblAccounts, keyB)
					if err != nil {
						return err
					}
					if err := lc.Write(tblAccounts, keyA, []uint64{va[0] - delta, va[1]}); err != nil {
						return err
					}
					return lc.Write(tblAccounts, keyB, []uint64{vb[0] + delta, vb[1]})
				})
			})
			if err != nil {
				select {
				case fail <- "writer: " + err.Error():
				default:
				}
				return
			}
		}
	}

	wg.Add(5)
	go reader(0, 0, false) // remote speculative RW reader
	go reader(0, 1, true)  // remote speculative RO reader
	go reader(1, 0, false) // local HTM reader (no spec records)
	go writer(1, 1, 1)     // local HTM writer on the records' home
	go writer(0, 2, 2)     // remote locking writer (write-back path)
	wg.Wait()

	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	va, _ := rt.C.Node(1).Unordered(tblAccounts).Get(keyA)
	vb, _ := rt.C.Node(1).Unordered(tblAccounts).Get(keyB)
	if va[0]+vb[0] != total {
		t.Fatalf("conservation violated: %d + %d != %d", va[0], vb[0], total)
	}
	if n := rt.C.Obs.Total(obs.EvSpecRead); n == 0 {
		t.Fatal("stress run exercised no speculative reads")
	}
}
