package tx

import (
	"fmt"
	"sort"

	"drtm/internal/clock"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// fbRec is a record under fallback protection.
type fbRec struct {
	table, node int
	region      int // storage region on node (replica region after failover)
	part        int // home partition (-1 if replicated table)
	key         uint64
	off         memory.Offset
	write       bool
	leaseEnd    uint64
	buf         []uint64
	dirty       bool
	version     uint32

	// Ordered-table structural state: insert recs lock a dead entry and
	// publish val with the live flip; erase recs lock a live entry and
	// publish the dead flip. inc is the incarnation observed under our lock.
	ordered bool
	insert  bool
	erase   bool
	val     []uint64
	inc     uint32

	// Version-chain state, captured at fetch under our lock (write records of
	// chained tables): the store's chain depth, the entry's tail stamp, and a
	// pristine copy of the pre-commit value (the body mutates buf in place).
	depth    int
	prevTail uint64
	prevVal  []uint64
}

// fallbackCtx carries the state of a fallback execution.
type fallbackCtx struct {
	t     *Tx
	recs  []*fbRec
	index map[refKey]*fbRec
}

// runFallback executes the transaction body on the software path
// (Section 6.2): release everything, re-acquire protocol locks for ALL
// records — local ones included — in the global <table, key> order, run the
// body against private buffers, confirm leases, then publish and unlock.
// Because local records are locked through the same state words, in-flight
// local HTM transactions abort on their state checks, preserving strict
// serializability.
func (t *Tx) runFallback(fn func(lc *Local) error) error {
	rt := t.e.rt
	sh := t.e.w.Obs
	sh.Inc(obs.EvFallback)
	t.usedFallback = true

	// To avoid deadlock, first release all owned remote locks (Section 6.2).
	// The staging index must go too: in fallback mode every access routes
	// through the fallback record set, not the Start-phase buffers.
	prevRemotes := t.remotes
	for _, r := range prevRemotes {
		if r.write {
			t.unlockRemote(r)
		}
	}
	t.remotes = nil
	clear(t.rIndex)

	// Note: speculative records arrive here with write=false and are
	// re-acquired below as leases. The fallback path never reads
	// optimistically — its in-place updates cannot be rolled back, so a
	// stale read could not be retried away.
	fb := &fallbackCtx{t: t, index: make(map[refKey]*fbRec)}
	for _, r := range prevRemotes {
		nr := &fbRec{table: r.table, node: r.node, region: r.region, part: r.part,
			key: r.key, write: r.write, ordered: r.ordered, insert: r.insert, erase: r.erase}
		if r.insert {
			nr.val = append([]uint64(nil), r.buf...)
		}
		fb.add(nr)
	}
	t.e.putRecs(prevRemotes)
	for _, l := range t.locals {
		fb.add(&fbRec{table: l.table, node: t.e.w.Node.ID, region: l.region,
			part: l.part, key: l.key, write: l.write,
			ordered: rt.Meta(l.table).Kind == Ordered})
	}
	// Structural halves staged for the HTM path convert to fallback insert /
	// erase records: the dead entries already exist (EnsureDead at declare),
	// so the fallback locks and flips them like any other write.
	for i := range t.localIns {
		op := &t.localIns[i]
		fb.add(&fbRec{table: op.table, node: t.e.w.Node.ID, region: op.region,
			part: op.part, key: op.key, write: true, ordered: true, insert: true,
			val: append([]uint64(nil), op.val...)})
	}
	for i := range t.localErase {
		op := &t.localErase[i]
		fb.add(&fbRec{table: op.table, node: t.e.w.Node.ID, region: op.region,
			part: op.part, key: op.key, write: true, ordered: true, erase: true})
	}
	sort.Slice(fb.recs, func(i, j int) bool {
		if fb.recs[i].table != fb.recs[j].table {
			return fb.recs[i].table < fb.recs[j].table
		}
		return fb.recs[i].key < fb.recs[j].key
	})

	// Acquire locks in the global order and prefetch values. This re-lock +
	// prefetch pass is the fallback's Start phase, so it accrues to the
	// lock-remote histogram.
	astart := int64(t.e.w.VClock.Now())
	for i, r := range fb.recs {
		if err := fb.acquire(r); err != nil {
			fb.release(i, false)
			t.finished = true
			t.vLock += int64(t.e.w.VClock.Now()) - astart
			if err == ErrNotFound || err == ErrNodeDown {
				return err
			}
			return ErrRetry
		}
	}
	for _, r := range fb.recs {
		if err := fb.fetch(r); err != nil {
			fb.release(len(fb.recs), false)
			t.finished = true
			t.vLock += int64(t.e.w.VClock.Now()) - astart
			return err
		}
	}
	t.vLock += int64(t.e.w.VClock.Now()) - astart

	lc := &Local{t: t, fallback: fb}
	bstart := int64(t.e.w.VClock.Now())
	err := fn(lc)
	t.vHTM += int64(t.e.w.VClock.Now()) - bstart
	if err != nil {
		fb.release(len(fb.recs), false)
		t.finished = true
		t.lastAbort = obs.CauseUser
		return err
	}

	// Confirm leases before any in-place update: fallback updates cannot be
	// rolled back by HTM.
	now := t.e.w.Node.Clock.Read()
	delta := rt.C.Delta()
	for _, r := range fb.recs {
		if r.write {
			continue
		}
		if !clock.Valid(r.leaseEnd, now, delta) {
			fb.release(len(fb.recs), false)
			t.finished = true
			sh.Inc(obs.EvLeaseConfirmFail)
			t.lastAbort = obs.CauseLease
			return ErrRetry
		}
		sh.Inc(obs.EvLeaseConfirm)
	}

	// Confirm no touched partition's view changed since staging (the
	// fallback's analogue of confirmViews): the in-place updates below must
	// not publish under a stale ownership view.
	for part, w := range t.views {
		if rt.C.View(part) != w {
			fb.release(len(fb.recs), false)
			t.finished = true
			sh.Inc(obs.EvViewAbort)
			t.lastAbort = obs.CauseRemote
			return ErrRetry
		}
	}

	// Re-validate collected range scans (stamps + row headers) while every
	// declared record is locked — the fallback's phantom check.
	if !t.fbValidateScans(fb) {
		fb.release(len(fb.recs), false)
		t.finished = true
		t.lastAbort = obs.CauseScan
		return ErrRetry
	}

	// Seal the commit's uniform chain stamp before replication and publish
	// consume it (same rule as sealChains on the HTM path: one stamp per
	// commit, above every written entry's previous tail stamp).
	t.sealFallbackChains(fb)

	// Log ahead of in-place updates (Section 6.2, last paragraph).
	if rt.C.Config().Durability {
		t.logFallbackWAL(fb)
	}

	// Commit-backup: append the write-set to every backup while the locks
	// are still held, before any in-place update becomes visible.
	if err := t.replicateFallback(fb); err != nil {
		fb.release(len(fb.recs), false)
		t.finished = true
		return err
	}

	// Publish writes and unlock: the fallback's Commit phase.
	cstart := int64(t.e.w.VClock.Now())
	fb.publish()
	t.vCommit += int64(t.e.w.VClock.Now()) - cstart
	t.applyDeferred()
	t.applyRemovals()
	t.finished = true
	return nil
}

func (fb *fallbackCtx) add(r *fbRec) {
	k := refKey{r.table, r.key}
	if prev, ok := fb.index[k]; ok {
		if r.write {
			prev.write = true
		}
		if r.insert {
			prev.insert, prev.val = true, r.val
		}
		if r.erase {
			prev.erase = true
		}
		prev.ordered = prev.ordered || r.ordered
		return
	}
	fb.index[k] = r
	fb.recs = append(fb.recs, r)
}

// stateCAS issues the appropriate compare-and-swap for a record's state
// word: one-sided RDMA CAS for remote records always; for local records a
// cheap CPU CAS is only legal under IBV_ATOMIC_GLOB (Section 6.3) — under
// HCA-level atomicity the local record must also be locked with RDMA CAS,
// which is what costs the paper ~15% fallback throughput.
func (fb *fallbackCtx) stateCAS(r *fbRec, old, new uint64) (uint64, bool, error) {
	qp := fb.t.e.w.QP
	local := r.node == fb.t.e.w.Node.ID
	if local && fb.t.e.rt.C.Fabric.Atomicity() == rdma.AtomicGLOB {
		cur, ok := qp.LocalCAS(r.region, kvs.StateOffset(r.off), old, new)
		return cur, ok, nil
	}
	return fb.t.casRemote(r.node, r.region, kvs.StateOffset(r.off), old, new)
}

func (fb *fallbackCtx) acquire(r *fbRec) error {
	t := fb.t
	// Resolve the entry offset.
	meta := t.e.rt.Meta(r.table)
	if meta.Kind == Ordered {
		if err := fb.resolveOrdered(r); err != nil {
			return err
		}
	} else if r.node == t.e.w.Node.ID {
		var ok bool
		r.off, ok = t.e.w.Node.Unordered(r.region).LookupLocal(r.key)
		if !ok {
			return ErrNotFound
		}
	} else {
		host := t.e.rt.C.Node(r.node).Unordered(r.region)
		loc, ok, err := host.LookupRemoteE(t.e.w.QP, t.e.cacheFor(r.node, r.region), r.key)
		if err != nil {
			return ErrNodeDown
		}
		if !ok {
			return ErrNotFound
		}
		r.off = loc.Off
	}

	t.e.charge(t.e.model().FallbackLockNS)
	sh := t.e.w.Obs
	delta := t.e.rt.C.Delta()
	want := clock.WLocked(uint8(t.e.w.Node.ID))
	if !r.write {
		want = clock.Shared(t.leaseEnd)
	}
	const casRetries = 8
	for i := 0; i < casRetries; i++ {
		cur, ok, err := fb.stateCAS(r, clock.Init, want)
		if err != nil {
			return ErrNodeDown
		}
		if ok {
			if !r.write {
				sh.Inc(obs.EvLeaseGrant)
			}
			r.leaseEnd = t.leaseEnd
			return fb.verifyOrdered(r)
		}
		if clock.IsWriteLocked(cur) {
			sh.Inc(obs.EvRemoteLockConflict)
			t.lastAbort = obs.CauseRemote
			return ErrRetry
		}
		end := clock.LeaseEnd(cur)
		now := t.e.w.Node.Clock.Read()
		if !r.write && !clock.Expired(end, now, delta) {
			sh.Inc(obs.EvLeaseShare)
			r.leaseEnd = end // share the existing lease
			return fb.verifyOrdered(r)
		}
		if !clock.Expired(end, now, delta) {
			sh.Inc(obs.EvRemoteLockConflict) // writer must wait out the lease
			t.lastAbort = obs.CauseRemote
			return ErrRetry
		}
		if _, ok, err := fb.stateCAS(r, cur, want); err != nil {
			return ErrNodeDown
		} else if ok {
			sh.Inc(obs.EvLeaseExpire) // took over an expired lease
			if !r.write {
				sh.Inc(obs.EvLeaseGrant)
			}
			r.leaseEnd = t.leaseEnd
			return fb.verifyOrdered(r)
		}
	}
	sh.Inc(obs.EvRemoteLockConflict)
	t.lastAbort = obs.CauseRemote
	return ErrRetry
}

// resolveOrdered maps an ordered record's key to its entry offset via the
// shard's tree — locally or shipped (Section 6.5). An insert record whose
// dead entry vanished between declare and fallback (a scavenged abort
// leftover) re-runs EnsureDead.
func (fb *fallbackCtx) resolveOrdered(r *fbRec) error {
	t := fb.t
	t.e.charge(t.e.model().BTreeOpNS)
	if r.node == t.e.w.Node.ID {
		var ok bool
		r.off, ok = t.e.w.Node.Ordered(r.region).Lookup(r.key)
		if ok {
			return nil
		}
		if !r.insert {
			return ErrNotFound
		}
		off, err := t.e.rt.execEnsureEntry(t.e.w.Node, ensureEntryMsg{
			Region: r.region, Table: r.table, Part: r.part, Key: r.key})
		if err != nil {
			t.lastAbort = obs.CauseRemote
			return ErrRetry // live again (ErrExists) or full: whole-txn retry resolves
		}
		r.off = off
		return nil
	}
	off, found, err := t.e.orderedLookupRemote(r.node, r.region, r.key)
	if err != nil {
		return ErrNodeDown
	}
	if !found {
		if !r.insert {
			return ErrNotFound
		}
		var resp any
		if cerr := t.e.verbRetry(func() error {
			var e2 error
			resp, e2 = t.e.w.QP.Call(r.node, clusterMsg(msgEnsureEntry, ensureEntryMsg{
				Region: r.region, Table: r.table, Part: r.part, Key: r.key}), 40, 16)
			return e2
		}); cerr != nil {
			return ErrNodeDown
		}
		o, ok := resp.(memory.Offset)
		if !ok {
			t.lastAbort = obs.CauseRemote
			return ErrRetry
		}
		off = o
	}
	r.off = off
	return nil
}

// verifyOrdered re-checks an ordered entry under the freshly acquired
// protection: the slot still holds this key, with the liveness the record
// expects (insert records hold a dead entry, everything else a live one).
// The incarnation observed here is what publish flips.
func (fb *fallbackCtx) verifyOrdered(r *fbRec) error {
	if !r.ordered {
		return nil
	}
	t := fb.t
	hdr := make([]uint64, 2) // key, incver
	if r.node == t.e.w.Node.ID {
		arena := t.e.arenaAt(r.node, r.region)
		hdr[0] = arena.LoadWord(r.off + kvs.EntryKeyWord)
		hdr[1] = arena.LoadWord(kvs.IncVerOffset(r.off))
	} else if err := t.e.verbRetry(func() error {
		return t.e.w.QP.TryRead(r.node, r.region, r.off+kvs.EntryKeyWord, hdr)
	}); err != nil {
		fb.unlockSelf(r)
		return ErrNodeDown
	}
	live := kvs.Live(kvs.Incarnation(hdr[1]))
	if hdr[0] != r.key || r.insert == live {
		fb.unlockSelf(r)
		if hdr[0] == r.key && !live && !r.insert {
			return ErrNotFound // the row was erased under a committed delete
		}
		t.lastAbort = obs.CauseRemote
		return ErrRetry
	}
	r.inc = kvs.Incarnation(hdr[1])
	r.version = kvs.Version(hdr[1])
	return nil
}

// unlockSelf releases the record's own exclusive lock after a post-lock
// verification failure — release(i) only covers the records before it.
func (fb *fallbackCtx) unlockSelf(r *fbRec) {
	if r.write {
		fb.t.e.mustUnlock(r.node, r.region, kvs.StateOffset(r.off))
	}
}

// fetch loads the record's value and version into the private buffer, plus —
// for write records of chained tables — the tail stamp and a pristine value
// copy the publish-time chain retire needs (all stable under our lock).
func (fb *fallbackCtx) fetch(r *fbRec) error {
	t := fb.t
	vw := t.e.rt.Meta(r.table).ValueWords
	if r.write {
		r.depth = t.e.chainDepthAt(r.node, r.region)
	}
	if r.insert {
		// The locked dead slot has no meaningful value; the body reads the
		// declared insert value. version/inc were set by verifyOrdered.
		r.buf = append([]uint64(nil), r.val...)
		r.dirty = true
		if r.depth > 0 {
			tailOff := kvs.TailOffset(r.off, vw, r.depth) + kvs.TailStampWord
			if r.node == t.e.w.Node.ID {
				r.prevTail = fb.arenaOf(r).LoadWord(tailOff)
			} else {
				tw := make([]uint64, 1)
				if err := t.e.verbRetry(func() error {
					return t.e.w.QP.TryRead(r.node, r.region, tailOff, tw)
				}); err != nil {
					return ErrNodeDown
				}
				r.prevTail = tw[0]
			}
		}
		return nil
	}
	r.buf = make([]uint64, vw)
	if r.node == t.e.w.Node.ID {
		arena := fb.arenaOf(r)
		arena.Read(r.buf, kvs.ValueOffset(r.off))
		r.version = kvs.Version(arena.LoadWord(kvs.IncVerOffset(r.off)))
		if r.depth > 0 {
			r.prevTail = arena.LoadWord(kvs.TailOffset(r.off, vw, r.depth) + kvs.TailStampWord)
			r.prevVal = append([]uint64(nil), r.buf...)
		}
		t.e.charge(int64(vw+1) * t.e.model().HTMPerReadNS)
		return nil
	}
	words := make([]uint64, kvs.EntryImageWords(vw, r.depth))
	err := t.e.verbRetry(func() error {
		return t.e.w.QP.TryRead(r.node, r.region, r.off, words)
	})
	if err != nil {
		return ErrNodeDown
	}
	copy(r.buf, words[kvs.EntryValueWord:kvs.EntryValueWord+vw])
	r.version = kvs.Version(words[kvs.EntryIncVerWord])
	if r.depth > 0 {
		r.prevTail = words[int(kvs.TailOffset(0, vw, r.depth))+kvs.TailStampWord]
		r.prevVal = append([]uint64(nil), r.buf...)
	}
	return nil
}

func (fb *fallbackCtx) arenaOf(r *fbRec) *memory.Arena {
	return fb.t.e.arenaAt(r.node, r.region)
}

func (fb *fallbackCtx) read(table int, key uint64) ([]uint64, error) {
	r, ok := fb.index[refKey{table, key}]
	if !ok || r.erase {
		return nil, ErrNotFound
	}
	return r.buf, nil
}

func (fb *fallbackCtx) write(table int, key uint64, val []uint64) error {
	r, ok := fb.index[refKey{table, key}]
	if !ok || !r.write {
		return ErrNotFound
	}
	if r.erase {
		panic(fmt.Sprintf("tx: write to erased record table %d key %d", table, key))
	}
	fb.t.checkIndexKeys(table, key, r.buf, val)
	copy(r.buf, val)
	r.dirty = true
	return nil
}

// sealFallbackChains computes the fallback commit's uniform chain stamp —
// above the bracket soft-time and every locked write record's previous tail
// stamp — before replicateFallback and publish consume it.
func (t *Tx) sealFallbackChains(fb *fallbackCtx) {
	s := t.stampBase
	for _, r := range fb.recs {
		if r.write && r.depth > 0 && r.prevTail >= s {
			s = r.prevTail + 1
		}
	}
	if s == 0 {
		s = 1
	}
	t.commitStamp = s
}

// publish applies dirty buffers in place and releases all exclusive locks.
// The unlock is carried by the same WRITE that updates version + state for
// single-line entries, value-first then unlock for larger ones. On chained
// tables each written entry's retire precedes its value/head writes in the
// tail-first order of layout.go: tail pair (dirty marker), retired slot,
// value, then head+state — each a synchronous mustWrite, so the ordering the
// one-READ snapshot protocol needs holds trivially.
func (fb *fallbackCtx) publish() {
	t := fb.t
	chain := func(r *fbRec, newIncVer, prevHead uint64, withVal bool) {
		if r.depth <= 0 {
			return
		}
		vw := len(r.buf)
		t.e.mustWrite(r.node, r.region, kvs.TailOffset(r.off, vw, r.depth),
			[]uint64{t.commitStamp, newIncVer})
		if r.prevTail == 0 {
			return
		}
		slot := []uint64{r.prevTail, prevHead}
		if withVal {
			slot = append(slot, r.prevVal...)
		}
		t.e.mustWrite(r.node, r.region,
			kvs.ChainSlotOffset(r.off, vw, kvs.ChainSlotIndex(r.version, r.depth)), slot)
		t.e.w.Obs.Inc(obs.EvChainRetire)
	}
	for _, r := range fb.recs {
		if !r.write {
			continue // leases expire on their own
		}
		arena := fb.arenaOf(r)
		inc := kvs.Incarnation(arena.LoadWord(kvs.IncVerOffset(r.off)))
		incverOff := kvs.IncVerOffset(r.off)
		if r.erase {
			// Flip to dead and unlock; the value stays for the dead entry
			// (physical removal is deferred until no snapshot can need it).
			deadIncVer := kvs.PackIncVer(inc+1, r.version+1)
			chain(r, deadIncVer, kvs.PackIncVer(inc, r.version), true)
			t.e.mustWrite(r.node, r.region, incverOff,
				[]uint64{deadIncVer, clock.Init})
			continue
		}
		if !r.dirty {
			t.e.mustUnlock(r.node, r.region, kvs.StateOffset(r.off))
			continue
		}
		newIncVer := kvs.PackIncVer(inc, r.version+1)
		if r.insert {
			newIncVer = kvs.PackIncVer(inc+1, r.version+1) // dead → live
		}
		// An insert retires the staged DEAD entry as a 2-word slot (no value):
		// snapshots older than the insert resolve the key to not-found.
		chain(r, newIncVer, kvs.PackIncVer(inc, r.version), !r.insert)
		span := 2 + len(r.buf)
		if memory.LineOf(incverOff) == memory.LineOf(incverOff+memory.Offset(span-1)) {
			words := make([]uint64, span)
			words[0] = newIncVer
			words[1] = clock.Init
			copy(words[2:], r.buf)
			t.e.mustWrite(r.node, r.region, incverOff, words)
		} else {
			t.e.mustWrite(r.node, r.region, kvs.ValueOffset(r.off), r.buf)
			t.e.mustWrite(r.node, r.region, incverOff, []uint64{newIncVer, clock.Init})
		}
	}
}

// release unlocks the first n acquired records without publishing (abort).
func (fb *fallbackCtx) release(n int, _ bool) {
	for i := 0; i < n; i++ {
		r := fb.recs[i]
		if r.write {
			fb.t.e.mustUnlock(r.node, r.region, kvs.StateOffset(r.off))
		}
	}
}
