package tx

import (
	"testing"

	"drtm/internal/clock"
	"drtm/internal/obs"
)

func TestResolvePolicy(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	cases := []struct {
		name        string
		runtime     ReadPolicy
		noReadLease bool
		override    ReadPolicy
		want        ReadPolicy
	}{
		{"zero-value runtime is lease", PolicyDefault, false, PolicyDefault, PolicyLease},
		{"runtime-wide policy", PolicyAdaptive, false, PolicyDefault, PolicyAdaptive},
		{"NoReadLease maps to exclusive", PolicyDefault, true, PolicyDefault, PolicyExclusive},
		{"NoReadLease beats runtime policy", PolicySpeculative, true, PolicyDefault, PolicyExclusive},
		{"override beats runtime policy", PolicyAdaptive, false, PolicySpeculative, PolicySpeculative},
		{"override beats NoReadLease", PolicyDefault, true, PolicySpeculative, PolicySpeculative},
	}
	for _, c := range cases {
		rt.ReadPolicy, rt.NoReadLease, e.override = c.runtime, c.noReadLease, c.override
		if got := e.resolvePolicy(); got != c.want {
			t.Errorf("%s: resolved %v, want %v", c.name, got, c.want)
		}
	}
}

// TestAdaptiveRouting drives one remote bucket through the full adaptive
// cycle: cold routes speculate, conflict heat flips the bucket to the lease
// arm (counting the cold→hot switch), and conflict-free decay flips it back.
func TestAdaptiveRouting(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 64, nil)
	defer stop()
	rt.ReadPolicy = PolicyAdaptive
	// Short half-life so the hot→cold decay happens within a few reads.
	rt.SetPolicyConfig(PolicyConfig{EWMAHalfLife: 2, HotThreshold: 2.0, Hysteresis: 0.5})
	e := rt.Executor(0, 0)
	reg := rt.C.Obs
	const key = 1 // homed on node 1: every access is remote

	read := func() {
		t.Helper()
		if err := e.Exec(func(tx *Tx) error {
			if err := tx.R(tblAccounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				_, err := lc.Read(tblAccounts, key)
				return err
			})
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Cold bucket: the read speculates.
	read()
	if n := reg.Total(obs.EvAdaptSpec); n != 1 {
		t.Fatalf("cold route: EvAdaptSpec = %d, want 1", n)
	}
	if n := reg.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("cold route: EvSpecRead = %d, want 1", n)
	}

	// Conflict heat crosses the hot threshold: the bucket switches once.
	host := rt.C.Node(1).Unordered(tblAccounts)
	e.feedConflict(host, 1, tblAccounts, key, 3)
	if n := reg.Total(obs.EvArmSwitchToLease); n != 1 {
		t.Fatalf("after conflicts: EvArmSwitchToLease = %d, want 1", n)
	}
	if rt.HotBuckets() != 1 {
		t.Fatalf("HotBuckets = %d, want 1", rt.HotBuckets())
	}

	// Hot bucket: the next read takes a lease, not a spec READ.
	read()
	if n := reg.Total(obs.EvAdaptLease); n != 1 {
		t.Fatalf("hot route: EvAdaptLease = %d, want 1", n)
	}
	if n := reg.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("hot route still speculated: EvSpecRead = %d, want 1", n)
	}
	if n := reg.Total(obs.EvLeaseGrant) + reg.Total(obs.EvLeaseShare); n == 0 {
		t.Fatal("hot route took no lease")
	}

	// Conflict-free reads decay the heat below the exit threshold
	// (half-life 2 accesses, exit at 1.0): the bucket reverts to spec.
	for i := 0; i < 20 && reg.Total(obs.EvArmSwitchToSpec) == 0; i++ {
		read()
	}
	if n := reg.Total(obs.EvArmSwitchToSpec); n != 1 {
		t.Fatalf("decay: EvArmSwitchToSpec = %d, want 1", n)
	}
	if rt.HotBuckets() != 0 {
		t.Fatalf("HotBuckets after decay = %d, want 0", rt.HotBuckets())
	}
	if n := reg.Total(obs.EvSpecRead); n < 2 {
		t.Fatalf("reverted bucket did not speculate: EvSpecRead = %d", n)
	}
	// The switch counters must agree with the table's classification.
	net := reg.Total(obs.EvArmSwitchToLease) - reg.Total(obs.EvArmSwitchToSpec)
	if int(net) != rt.HotBuckets() {
		t.Fatalf("switch-count difference %d != HotBuckets %d", net, rt.HotBuckets())
	}
}

// TestFeedConflictGatedOnAdaptive: static arms must not accrete heat.
func TestFeedConflictGatedOnAdaptive(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	rt.ReadPolicy = PolicySpeculative
	e := rt.Executor(0, 0)
	host := rt.C.Node(1).Unordered(tblAccounts)
	e.feedConflict(host, 1, tblAccounts, 1, 10)
	if n := rt.HotBuckets(); n != 0 {
		t.Fatalf("static policy accreted %d hot buckets", n)
	}
	if n := rt.C.Obs.Total(obs.EvArmSwitchToLease); n != 0 {
		t.Fatalf("static policy counted %d arm switches", n)
	}
}

// TestExecWithOverride: a per-transaction policy override forces the arm
// for that transaction only, leaving the runtime-wide policy untouched.
func TestExecWithOverride(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	rt.ReadPolicy = PolicyLease
	e := rt.Executor(0, 0)
	reg := rt.C.Obs

	body := func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil { // remote
			return err
		}
		return tx.Execute(func(lc *Local) error {
			_, err := lc.Read(tblAccounts, 1)
			return err
		})
	}
	if err := e.ExecWith(PolicySpeculative, body); err != nil {
		t.Fatal(err)
	}
	if n := reg.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("override: EvSpecRead = %d, want 1", n)
	}
	// The override must not leak into the next transaction.
	if err := e.Exec(body); err != nil {
		t.Fatal(err)
	}
	if n := reg.Total(obs.EvSpecRead); n != 1 {
		t.Fatalf("override leaked: EvSpecRead = %d, want 1", n)
	}
	if n := reg.Total(obs.EvLeaseGrant) + reg.Total(obs.EvLeaseShare); n == 0 {
		t.Fatal("runtime-wide lease arm not restored after override")
	}

	// Read-only override: spec arm, no lease CAS.
	if err := e.ExecROWith(PolicySpeculative, func(ro *RO) error {
		_, err := ro.Read(tblAccounts, 1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Total(obs.EvSpecRead); n != 2 {
		t.Fatalf("RO override: EvSpecRead = %d, want 2", n)
	}
}

// TestExecWithExclusive: the PolicyExclusive override stages reads as
// exclusive locks (the per-transaction form of the Figure 17 ablation).
func TestExecWithExclusive(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	err := e.ExecWith(PolicyExclusive, func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil {
			return err
		}
		if s := host.Arena().LoadWord(off + 2); !clock.IsWriteLocked(s) {
			t.Errorf("PolicyExclusive read did not take the exclusive lock: %x", s)
		}
		return tx.Execute(func(lc *Local) error {
			_, err := lc.Read(tblAccounts, 1)
			return err
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}
