package tx

import (
	"errors"
	"fmt"

	"drtm/internal/clock"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// RO is a read-only transaction (Section 4.5 / Figure 8). Read-only
// transactions have read sets far beyond HTM capacity, so they never enter
// an HTM region: every record (local or remote) is locked in shared mode
// with one common lease end time and prefetched; a final confirmation that
// the common end time is still valid guarantees that no conflicting writer
// was in flight anywhere — one lightweight check instead of two-round
// execution.
type RO struct {
	e     *Executor
	end   uint64 // the transaction's common lease end time
	recs  []*roRec
	index map[refKey]*roRec

	// views records the packed view word per touched partition (replication
	// only); confirm re-checks them so a failover mid-transaction fails the
	// confirmation instead of mixing views.
	views map[int]uint64

	// policy is the effective read policy (see policy.go). PolicyExclusive
	// behaves as PolicyLease here: read-only transactions never take write
	// locks.
	policy ReadPolicy

	// scans holds collected range scans; confirm re-validates their segment
	// stamps and row headers (leaseless, like the speculative arm — sound
	// because a read-only transaction writes nothing, so unchanged words at
	// confirm make that instant the serialization point).
	scans    []scanRec
	scanVals []uint64

	// mvcc marks this attempt as running the snapshot arm: every read
	// resolves against version chains at stamp snap and skips lease and
	// confirm entirely (see mvcc.go). Entered up front under PolicyMVCC, or
	// by the first wide Scan under PolicyAdaptive — never after a
	// confirm-wave read has been collected, so one attempt always has a
	// single serialization point (snap for MVCC attempts, the confirm
	// instant otherwise).
	mvcc   bool
	snap   uint64
	noMVCC bool // a prior attempt's chain fallback poisons adaptive MVCC entry
}

type roRec struct {
	table, node int
	region      int // storage region on node (replica region after failover)
	key         uint64
	off         memory.Offset
	buf         []uint64
	leaseEnd    uint64

	// Speculative (OCC) read state: on the speculative arm a remote
	// record holds no lease — the entry is fetched with one READ and confirm
	// re-READs its header, requiring the same incarnation|version and no live
	// exclusive lock. Sound without HTM because a read-only transaction
	// writes nothing: if every record's version is unchanged at confirm, all
	// reads are valid at that instant, which is the serialization point.
	spec    bool
	lossy   uint64
	version uint32
	inc     uint32

	// ordered marks records resolved through an ordered shard's tree: their
	// confirm re-READ covers key+incver+state (a freed tree slot can be
	// recycled for a different key, which the incver alone may not betray).
	ordered bool
}

// ExecRO runs a read-only transaction to completion with retries.
func (e *Executor) ExecRO(build func(ro *RO) error) error {
	// chainFellBack poisons the MVCC arm for the rest of this Exec once a
	// chain proved unresolvable (truncated below the snapshot, or a torn
	// image): re-reading the same chain would mostly re-truncate, so later
	// attempts run the confirm-wave scheme instead.
	chainFellBack := false
	for attempt := 0; attempt < e.rt.MaxAttempts; attempt++ {
		ro := &RO{
			e:      e,
			end:    e.w.Node.Clock.Read() + e.rt.C.Config().ROLeaseMicros,
			index:  make(map[refKey]*roRec),
			policy: e.resolvePolicy(),
		}
		if ro.policy == PolicyMVCC {
			if chainFellBack || !ro.enterMVCC() {
				// Chains unavailable or already proven unresolvable: the
				// confirm-wave speculative arm is the MVCC arm's fallback.
				ro.policy = PolicySpeculative
			}
		} else if chainFellBack {
			ro.noMVCC = true // keep an adaptive Scan from re-entering MVCC
		}
		err := build(ro)
		if ro.mvcc {
			e.w.EndSnapshotRead()
		}
		if err == nil && ro.confirm() {
			e.w.Obs.Inc(obs.EvROCommit)
			return nil
		}
		if errors.Is(err, errMVCCFallback) {
			e.w.Obs.Inc(obs.EvMVCCFallback)
			chainFellBack = true
			err = ErrRetry
		}
		if err != nil && err != ErrRetry {
			if errors.Is(err, ErrNodeDown) {
				e.w.Obs.Inc(obs.EvNodeDownAbort)
			}
			return err
		}
		e.w.Obs.Inc(obs.EvRORetry)
		e.backoff(attempt)
	}
	return ErrRetry
}

// confirm validates every lease against a fresh softtime read (the COMMIT
// step of Figure 8) and re-validates every speculative record's header in
// one doorbell-batched READ wave. Both checks pass ⇒ all reads were valid
// at this instant, the transaction's serialization point.
func (ro *RO) confirm() bool {
	now := ro.e.w.Node.Clock.Read()
	delta := ro.e.rt.C.Delta()
	sh := ro.e.w.Obs
	for part, w := range ro.views {
		if ro.e.rt.C.View(part) != w {
			sh.Inc(obs.EvViewAbort)
			return false
		}
	}
	nspec := 0
	for _, r := range ro.recs {
		if r.spec {
			nspec++
			continue
		}
		if !clock.Valid(r.leaseEnd, now, delta) {
			sh.Inc(obs.EvLeaseConfirmFail)
			return false
		}
		sh.Inc(obs.EvLeaseConfirm)
	}
	if nspec == 0 {
		return ro.confirmScans()
	}
	e := ro.e
	vstart := int64(e.w.VClock.Now())
	// Three words per record: ordered entries re-read key+incver+state
	// (slot-recycle check), unordered ones their 2-word header.
	if cap(e.hdrBuf) < nspec*3 {
		e.hdrBuf = make([]uint64, nspec*3)
	}
	sq := e.sendq()
	wrs := e.activeWR[:0]
	specs := make([]*roRec, 0, nspec)
	for _, r := range ro.recs {
		if !r.spec {
			continue
		}
		i := len(specs)
		if r.ordered {
			wrs = append(wrs, sq.PostRead(r.node, r.region, r.off+kvs.EntryKeyWord,
				e.hdrBuf[i*3:i*3+3]))
		} else {
			host := e.rt.C.Node(r.node).Unordered(r.region)
			wrs = append(wrs, host.PostHeaderRead(sq, kvs.Loc{Off: r.off, Lossy: r.lossy},
				e.hdrBuf[i*3:i*3+kvs.EntryHeaderWords]))
		}
		specs = append(specs, r)
	}
	sq.Poll()
	ok := true
	for i, wr := range wrs {
		r := specs[i]
		if wr.Err != nil {
			// Treat a verb fault as a failed confirmation: the retry's fetch
			// pass surfaces ErrNodeDown if the host is genuinely gone.
			ok = false
			break
		}
		hdr := wr.Dst
		var incver, state uint64
		stale := false
		if r.ordered {
			incver, state = hdr[1], hdr[2]
			stale = hdr[0] != r.key
		} else {
			incver, state = hdr[0], hdr[1]
		}
		if stale || kvs.Version(incver) != r.version || kvs.Incarnation(incver) != r.inc ||
			clock.IsWriteLocked(state) {
			sh.Inc(obs.EvSpecValidateFail)
			if !r.ordered {
				e.feedConflict(e.rt.C.Node(r.node).Unordered(r.region), r.node, r.table, r.key, 1)
			}
			ok = false
			break
		}
	}
	e.activeWR = wrs[:0]
	sh.Observe(obs.PhaseValidate, int64(e.w.VClock.Now())-vstart)
	return ok && ro.confirmScans()
}

// confirmScans re-validates every collected range scan at the confirmation
// point: segment stamps unchanged (no membership change in the scanned
// ranges) and every collected row's incarnation|version word unchanged with
// no live exclusive lock. Remote words are re-read in one doorbell-batched
// wave; local ones directly.
func (ro *RO) confirmScans() bool {
	if len(ro.scans) == 0 || ro.e.rt.NoScanValidation {
		return true
	}
	e := ro.e
	sh := e.w.Obs
	nwords := 0
	for i := range ro.scans {
		if ro.scans[i].node == e.w.Node.ID {
			continue
		}
		nwords += len(ro.scans[i].segs) + len(ro.scans[i].rows)
	}
	remote := make(map[*scanRec][]uint64, len(ro.scans))
	if nwords > 0 {
		buf := make([]uint64, nwords)
		sq := e.sendq()
		wrs := e.activeWR[:0]
		j := 0
		for i := range ro.scans {
			sc := &ro.scans[i]
			if sc.node == e.w.Node.ID {
				continue
			}
			start := j
			for _, s := range sc.segs {
				wrs = append(wrs, sq.PostRead(sc.node, sc.region,
					kvs.SegStampOffset(s), buf[j:j+1]))
				j++
			}
			for _, r := range sc.rows {
				wrs = append(wrs, sq.PostRead(sc.node, sc.region,
					kvs.IncVerOffset(r.off), buf[j:j+1]))
				j++
			}
			remote[sc] = buf[start:j]
		}
		sq.Poll()
		for _, wr := range wrs {
			if wr.Err == nil {
				continue
			}
			dst := wr.Dst
			if err := e.verbRetry(func() error {
				return e.w.QP.TryRead(wr.Node, wr.Region, wr.Off, dst)
			}); err != nil {
				e.activeWR = wrs[:0]
				return false
			}
		}
		e.activeWR = wrs[:0]
	}
	for i := range ro.scans {
		sc := &ro.scans[i]
		if words, ok := remote[sc]; ok {
			for k := range sc.segs {
				if words[k] != sc.stamps[k] {
					sh.Inc(obs.EvScanValidateFail)
					ro.feedScanHeat(sc)
					return false
				}
			}
			rowWords := words[len(sc.segs):]
			for k, r := range sc.rows {
				if rowWords[k] != r.incver {
					sh.Inc(obs.EvScanValidateFail)
					ro.feedScanHeat(sc)
					return false
				}
			}
			continue
		}
		arena := e.arenaAt(sc.node, sc.region)
		for k, s := range sc.segs {
			if arena.LoadWord(kvs.SegStampOffset(s)) != sc.stamps[k] {
				sh.Inc(obs.EvScanValidateFail)
				ro.feedScanHeat(sc)
				return false
			}
		}
		for _, r := range sc.rows {
			if arena.LoadWord(kvs.IncVerOffset(r.off)) != r.incver ||
				clock.IsWriteLocked(arena.LoadWord(kvs.StateOffset(r.off))) {
				sh.Inc(obs.EvScanValidateFail)
				ro.feedScanHeat(sc)
				return false
			}
		}
	}
	return true
}

// Scan performs a range read of ordered table rows with keys in [lo, hi]
// ascending, up to limit rows, collected leaselessly and re-validated at
// confirm (the scan-heavy RO arm the `scan` experiment measures against
// per-key leases). Same co-location contract as Tx.Scan.
func (ro *RO) Scan(table int, lo, hi uint64, limit int) ([]ScanRow, error) {
	if hi < lo {
		return nil, nil
	}
	if ro.e.rt.Meta(table).Kind != Ordered {
		panic(fmt.Sprintf("tx: Scan of unordered table %d", table))
	}
	node, region, part := ro.e.route(table, lo)
	if nodeHi, _, _ := ro.e.route(table, hi); nodeHi != node {
		panic(fmt.Sprintf("tx: Scan range [%d, %d] of table %d spans nodes %d and %d; "+
			"partition scans by the routing attribute", lo, hi, table, node, nodeHi))
	}
	ro.stampView(part)
	if ro.mvcc || ro.routeScanMVCC(node, table, lo, hi, limit) {
		return ro.mvccScan(table, node, region, lo, hi, limit)
	}
	sh := ro.e.w.Obs
	sstart := int64(ro.e.w.VClock.Now())
	rec := scanRec{table: table, node: node, region: region, lo: lo}
	var out []ScanRow
	if node == ro.e.w.Node.ID {
		o := ro.e.w.Node.Ordered(region)
		rows, busy := collectOrderedRange(ro.e, o, &rec, lo, hi, limit, &ro.scanVals)
		if busy {
			sh.Inc(obs.EvRemoteLockConflict)
			return nil, ErrRetry
		}
		out = rows
	} else {
		rs, err := ro.e.callRangeScan(node, rangeScanMsg{Region: region, Lo: lo, Hi: hi, Limit: limit},
			ro.e.rt.Meta(table).ValueWords)
		if err != nil {
			return nil, err
		}
		if rs.Busy {
			sh.Inc(obs.EvRemoteLockConflict)
			return nil, ErrRetry
		}
		rec.segs, rec.stamps = rs.Segs, rs.Stamps
		for _, r := range rs.Rows {
			rec.rows = append(rec.rows, scanRowRec{key: r.Key, off: r.Off, incver: r.IncVer})
			if r.Val != nil {
				out = append(out, ScanRow{Key: r.Key, Val: r.Val})
			}
		}
	}
	ro.scans = append(ro.scans, rec)
	sh.Observe(obs.PhaseScan, int64(ro.e.w.VClock.Now())-sstart)
	sh.Inc(obs.EvScan)
	sh.Add(obs.EvScanRow, int64(len(out)))
	return out, nil
}

// stateCAS locks a state word: RDMA CAS for remote records, CPU CAS for
// local ones. Read-only transactions lease local records with the cheap
// local CAS — with large read sets (stock-level touches hundreds of
// records) anything else would dwarf the transaction itself; the atomicity
// caveat of Section 6.3 concerns the fallback handler, which does pay the
// RDMA CAS price under HCA-level atomics (see fallback.go and the
// ablate-atomics experiment).
func (ro *RO) stateCAS(node, region int, off memory.Offset, old, new uint64) (uint64, bool, error) {
	qp := ro.e.w.QP
	if node == ro.e.w.Node.ID {
		cur, ok := qp.LocalCAS(region, kvs.StateOffset(off), old, new)
		return cur, ok, nil
	}
	var cur uint64
	var ok bool
	err := ro.e.verbRetry(func() error {
		var e error
		cur, ok, e = qp.TryCAS(node, region, kvs.StateOffset(off), old, new)
		return e
	})
	return cur, ok, err
}

// lease acquires a shared lease on the record at off, sharing an existing
// unexpired lease when present. The error is ErrNodeDown when the host is
// crashed or persistently unreachable.
func (ro *RO) lease(node, region int, off memory.Offset) (uint64, bool, error) {
	delta := ro.e.rt.C.Delta()
	sh := ro.e.w.Obs
	const casRetries = 8
	for i := 0; i < casRetries; i++ {
		cur, ok, err := ro.stateCAS(node, region, off, clock.Init, clock.Shared(ro.end))
		if err != nil {
			return 0, false, ErrNodeDown
		}
		if ok {
			sh.Inc(obs.EvLeaseGrant)
			return ro.end, true, nil
		}
		if clock.IsWriteLocked(cur) {
			sh.Inc(obs.EvRemoteLockConflict)
			return 0, false, nil
		}
		end := clock.LeaseEnd(cur)
		if !clock.Expired(end, ro.e.w.Node.Clock.Read(), delta) {
			sh.Inc(obs.EvLeaseShare)
			return end, true, nil
		}
		if _, ok, err := ro.stateCAS(node, region, off, cur, clock.Shared(ro.end)); err != nil {
			return 0, false, ErrNodeDown
		} else if ok {
			sh.Inc(obs.EvLeaseExpire)
			sh.Inc(obs.EvLeaseGrant)
			return ro.end, true, nil
		}
	}
	sh.Inc(obs.EvRemoteLockConflict)
	return 0, false, nil
}

// stampView records a touched partition's view word for confirm.
func (ro *RO) stampView(part int) {
	if part < 0 || ro.e.rt.C.ReplicationFactor() == 0 {
		return
	}
	if ro.views == nil {
		ro.views = make(map[int]uint64)
	}
	if _, ok := ro.views[part]; !ok {
		ro.views[part] = ro.e.rt.C.View(part)
	}
}

// Read leases and fetches a record by key (or, on the MVCC arm, resolves it
// against its version chain at the snapshot stamp with one READ).
func (ro *RO) Read(table int, key uint64) ([]uint64, error) {
	k := refKey{table, key}
	if r, ok := ro.index[k]; ok {
		return r.buf, nil
	}
	if ro.mvcc {
		return ro.mvccRead(table, key)
	}
	node, region, part := ro.e.route(table, key)
	ro.stampView(part)
	meta := ro.e.rt.Meta(table)

	if meta.Kind == Ordered {
		var off memory.Offset
		var found bool
		if node == ro.e.w.Node.ID {
			ro.e.charge(ro.e.model().BTreeOpNS)
			off, found = ro.e.w.Node.Ordered(region).Lookup(key)
		} else {
			var err error
			off, found, err = ro.e.orderedLookupRemote(node, region, key)
			if err != nil {
				return nil, ErrNodeDown
			}
		}
		if !found {
			return nil, ErrNotFound
		}
		// PolicyAdaptive routes ordered reads to the lease arm (the heat
		// table is keyed by hash buckets, which ordered shards lack).
		if node != ro.e.w.Node.ID && ro.policy == PolicySpeculative {
			return ro.specReadOrdered(node, table, region, key, off)
		}
		return ro.readAtOrdered(node, table, region, key, off)
	}
	var off memory.Offset
	var ok bool
	if node == ro.e.w.Node.ID {
		off, ok = ro.e.w.Node.Unordered(region).LookupLocal(key)
		ro.e.charge(ro.e.model().HashProbeNS)
	} else {
		host := ro.e.rt.C.Node(node).Unordered(region)
		loc, lok, err := host.LookupRemoteE(ro.e.w.QP, ro.e.cacheFor(node, region), key)
		if err != nil {
			return nil, ErrNodeDown
		}
		ok = lok
		off = loc.Off
		if ok && ro.e.routeRead(ro.policy, host, node, table, key) {
			return ro.specReadAt(node, table, region, key, loc)
		}
	}
	if !ok {
		return nil, ErrNotFound
	}
	return ro.readAt(node, table, region, key, off)
}

// specReadAt fetches a remote record speculatively: one entry READ, no
// lease CAS. The version and incarnation observed here are re-validated by
// confirm; a record observed write-locked is mid-update and retries.
func (ro *RO) specReadAt(node, table, region int, key uint64, loc kvs.Loc) ([]uint64, error) {
	e := ro.e
	sh := e.w.Obs
	host := e.rt.C.Node(node).Unordered(region)
	vw := e.rt.Meta(table).ValueWords
	words := make([]uint64, kvs.EntryValueWord+vw)
	err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, loc.Off, words)
	})
	if err != nil {
		return nil, ErrNodeDown
	}
	ent, ok := host.DecodeEntry(words, key, loc)
	if !ok {
		host.Invalidate(e.cacheFor(node, region), key)
		return nil, ErrRetry
	}
	sh.Inc(obs.EvSpecRead)
	if clock.IsWriteLocked(ent.State) {
		sh.Inc(obs.EvRemoteLockConflict)
		return nil, ErrRetry
	}
	buf := make([]uint64, vw)
	copy(buf, ent.Value)
	r := &roRec{table: table, node: node, region: region, key: key, off: loc.Off, buf: buf,
		spec: true, lossy: loc.Lossy, version: ent.Version, inc: ent.Incarnation}
	ro.index[refKey{table, key}] = r
	ro.recs = append(ro.recs, r)
	return buf, nil
}

// specReadOrdered fetches a remote ordered record speculatively: one entry
// READ at the resolved offset, verified in place (key, liveness, no live
// exclusive lock) and re-validated by confirm.
func (ro *RO) specReadOrdered(node, table, region int, key uint64, off memory.Offset) ([]uint64, error) {
	e := ro.e
	sh := e.w.Obs
	vw := e.rt.Meta(table).ValueWords
	words := make([]uint64, kvs.EntryValueWord+vw)
	if err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, off, words)
	}); err != nil {
		return nil, ErrNodeDown
	}
	if words[kvs.EntryKeyWord] != key {
		return nil, ErrRetry // slot recycled under a stale lookup
	}
	// Lock before liveness: a write-locked row is mid-flip (a transactional
	// insert or erase committing), so neither "found" nor "not found" is a
	// stable answer yet — treating locked-dead as NotFound would let a
	// reader observe half of an atomic multi-row commit.
	if clock.IsWriteLocked(words[kvs.EntryStateWord]) {
		sh.Inc(obs.EvRemoteLockConflict)
		return nil, ErrRetry
	}
	incver := words[kvs.EntryIncVerWord]
	if !kvs.Live(kvs.Incarnation(incver)) {
		return nil, ErrNotFound
	}
	sh.Inc(obs.EvSpecRead)
	buf := append([]uint64(nil), words[kvs.EntryValueWord:]...)
	r := &roRec{table: table, node: node, region: region, key: key, off: off, buf: buf,
		spec: true, ordered: true,
		version: kvs.Version(incver), inc: kvs.Incarnation(incver)}
	ro.index[refKey{table, key}] = r
	ro.recs = append(ro.recs, r)
	return buf, nil
}

// readAtOrdered leases and fetches an ordered record, then verifies the
// slot still holds this key alive — the tree resolution happened before the
// lease, so the slot could have been recycled or the row erased in between.
func (ro *RO) readAtOrdered(node, table, region int, key uint64, off memory.Offset) ([]uint64, error) {
	buf, err := ro.readAt(node, table, region, key, off)
	if err != nil {
		return nil, err
	}
	hdr := make([]uint64, 2)
	if node == ro.e.w.Node.ID {
		arena := ro.e.arenaAt(node, region)
		hdr[0] = arena.LoadWord(off + kvs.EntryKeyWord)
		hdr[1] = arena.LoadWord(kvs.IncVerOffset(off))
	} else if rerr := ro.e.verbRetry(func() error {
		return ro.e.w.QP.TryRead(node, region, off+kvs.EntryKeyWord, hdr)
	}); rerr != nil {
		return nil, ErrNodeDown
	}
	if hdr[0] != key {
		delete(ro.index, refKey{table, key})
		return nil, ErrRetry
	}
	if !kvs.Live(kvs.Incarnation(hdr[1])) {
		delete(ro.index, refKey{table, key})
		return nil, ErrNotFound
	}
	return buf, nil
}

// ReadAtLocal leases and fetches a local record found via a scan.
func (ro *RO) ReadAtLocal(table int, off memory.Offset) ([]uint64, error) {
	return ro.readAt(ro.e.w.Node.ID, table, table, ^uint64(0), off)
}

func (ro *RO) readAt(node, table, region int, key uint64, off memory.Offset) ([]uint64, error) {
	end, ok, err := ro.lease(node, region, off)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrRetry
	}
	vw := ro.e.rt.Meta(table).ValueWords
	buf := make([]uint64, vw)
	if node == ro.e.w.Node.ID {
		ro.arenaOf(node, region).Read(buf, kvs.ValueOffset(off))
		ro.e.charge(int64(vw+1) * ro.e.model().HTMPerReadNS)
	} else {
		rerr := ro.e.verbRetry(func() error {
			return ro.e.w.QP.TryRead(node, region, kvs.ValueOffset(off), buf)
		})
		if rerr != nil {
			return nil, ErrNodeDown
		}
	}
	r := &roRec{table: table, node: node, region: region, key: key, off: off, buf: buf, leaseEnd: end}
	if key != ^uint64(0) {
		ro.index[refKey{table, key}] = r
	}
	ro.recs = append(ro.recs, r)
	return buf, nil
}

func (ro *RO) arenaOf(node, region int) *memory.Arena {
	return ro.e.arenaAt(node, region)
}

// ScanLocal returns index entries of a local ordered table in [lo, hi].
func (ro *RO) ScanLocal(table int, lo, hi uint64, limit int) []KeyOff {
	o := ro.e.w.Node.Ordered(table)
	ro.e.charge(ro.e.model().BTreeOpNS)
	var out []KeyOff
	o.Scan(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ScanLocalDesc is ScanLocal in descending order.
func (ro *RO) ScanLocalDesc(table int, lo, hi uint64, limit int) []KeyOff {
	o := ro.e.w.Node.Ordered(table)
	ro.e.charge(ro.e.model().BTreeOpNS)
	var out []KeyOff
	o.ScanDesc(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}
