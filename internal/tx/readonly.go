package tx

import (
	"errors"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// RO is a read-only transaction (Section 4.5 / Figure 8). Read-only
// transactions have read sets far beyond HTM capacity, so they never enter
// an HTM region: every record (local or remote) is locked in shared mode
// with one common lease end time and prefetched; a final confirmation that
// the common end time is still valid guarantees that no conflicting writer
// was in flight anywhere — one lightweight check instead of two-round
// execution.
type RO struct {
	e     *Executor
	end   uint64 // the transaction's common lease end time
	recs  []*roRec
	index map[refKey]*roRec

	// views records the packed view word per touched partition (replication
	// only); confirm re-checks them so a failover mid-transaction fails the
	// confirmation instead of mixing views.
	views map[int]uint64

	// policy is the effective read policy (see policy.go). PolicyExclusive
	// behaves as PolicyLease here: read-only transactions never take write
	// locks.
	policy ReadPolicy
}

type roRec struct {
	table, node int
	region      int // storage region on node (replica region after failover)
	key         uint64
	off         memory.Offset
	buf         []uint64
	leaseEnd    uint64

	// Speculative (OCC) read state: on the speculative arm a remote
	// record holds no lease — the entry is fetched with one READ and confirm
	// re-READs its header, requiring the same incarnation|version and no live
	// exclusive lock. Sound without HTM because a read-only transaction
	// writes nothing: if every record's version is unchanged at confirm, all
	// reads are valid at that instant, which is the serialization point.
	spec    bool
	lossy   uint64
	version uint32
	inc     uint32
}

// ExecRO runs a read-only transaction to completion with retries.
func (e *Executor) ExecRO(build func(ro *RO) error) error {
	for attempt := 0; attempt < e.rt.MaxAttempts; attempt++ {
		ro := &RO{
			e:      e,
			end:    e.w.Node.Clock.Read() + e.rt.C.Config().ROLeaseMicros,
			index:  make(map[refKey]*roRec),
			policy: e.resolvePolicy(),
		}
		err := build(ro)
		if err == nil && ro.confirm() {
			e.w.Obs.Inc(obs.EvROCommit)
			return nil
		}
		if err != nil && err != ErrRetry {
			if errors.Is(err, ErrNodeDown) {
				e.w.Obs.Inc(obs.EvNodeDownAbort)
			}
			return err
		}
		e.w.Obs.Inc(obs.EvRORetry)
		e.backoff(attempt)
	}
	return ErrRetry
}

// confirm validates every lease against a fresh softtime read (the COMMIT
// step of Figure 8) and re-validates every speculative record's header in
// one doorbell-batched READ wave. Both checks pass ⇒ all reads were valid
// at this instant, the transaction's serialization point.
func (ro *RO) confirm() bool {
	now := ro.e.w.Node.Clock.Read()
	delta := ro.e.rt.C.Delta()
	sh := ro.e.w.Obs
	for part, w := range ro.views {
		if ro.e.rt.C.View(part) != w {
			sh.Inc(obs.EvViewAbort)
			return false
		}
	}
	nspec := 0
	for _, r := range ro.recs {
		if r.spec {
			nspec++
			continue
		}
		if !clock.Valid(r.leaseEnd, now, delta) {
			sh.Inc(obs.EvLeaseConfirmFail)
			return false
		}
		sh.Inc(obs.EvLeaseConfirm)
	}
	if nspec == 0 {
		return true
	}
	e := ro.e
	vstart := int64(e.w.VClock.Now())
	if cap(e.hdrBuf) < nspec*kvs.EntryHeaderWords {
		e.hdrBuf = make([]uint64, nspec*kvs.EntryHeaderWords)
	}
	sq := e.sendq()
	wrs := e.activeWR[:0]
	specs := make([]*roRec, 0, nspec)
	for _, r := range ro.recs {
		if !r.spec {
			continue
		}
		host := e.rt.C.Node(r.node).Unordered(r.region)
		i := len(specs)
		wrs = append(wrs, host.PostHeaderRead(sq, kvs.Loc{Off: r.off, Lossy: r.lossy},
			e.hdrBuf[i*kvs.EntryHeaderWords:(i+1)*kvs.EntryHeaderWords]))
		specs = append(specs, r)
	}
	sq.Poll()
	ok := true
	for i, wr := range wrs {
		r := specs[i]
		if wr.Err != nil {
			// Treat a verb fault as a failed confirmation: the retry's fetch
			// pass surfaces ErrNodeDown if the host is genuinely gone.
			ok = false
			break
		}
		hdr := wr.Dst
		if kvs.Version(hdr[0]) != r.version || kvs.Incarnation(hdr[0]) != r.inc ||
			clock.IsWriteLocked(hdr[1]) {
			sh.Inc(obs.EvSpecValidateFail)
			e.feedConflict(e.rt.C.Node(r.node).Unordered(r.region), r.node, r.table, r.key, 1)
			ok = false
			break
		}
	}
	e.activeWR = wrs[:0]
	sh.Observe(obs.PhaseValidate, int64(e.w.VClock.Now())-vstart)
	return ok
}

// stateCAS locks a state word: RDMA CAS for remote records, CPU CAS for
// local ones. Read-only transactions lease local records with the cheap
// local CAS — with large read sets (stock-level touches hundreds of
// records) anything else would dwarf the transaction itself; the atomicity
// caveat of Section 6.3 concerns the fallback handler, which does pay the
// RDMA CAS price under HCA-level atomics (see fallback.go and the
// ablate-atomics experiment).
func (ro *RO) stateCAS(node, region int, off memory.Offset, old, new uint64) (uint64, bool, error) {
	qp := ro.e.w.QP
	if node == ro.e.w.Node.ID {
		cur, ok := qp.LocalCAS(region, kvs.StateOffset(off), old, new)
		return cur, ok, nil
	}
	var cur uint64
	var ok bool
	err := ro.e.verbRetry(func() error {
		var e error
		cur, ok, e = qp.TryCAS(node, region, kvs.StateOffset(off), old, new)
		return e
	})
	return cur, ok, err
}

// lease acquires a shared lease on the record at off, sharing an existing
// unexpired lease when present. The error is ErrNodeDown when the host is
// crashed or persistently unreachable.
func (ro *RO) lease(node, region int, off memory.Offset) (uint64, bool, error) {
	delta := ro.e.rt.C.Delta()
	sh := ro.e.w.Obs
	const casRetries = 8
	for i := 0; i < casRetries; i++ {
		cur, ok, err := ro.stateCAS(node, region, off, clock.Init, clock.Shared(ro.end))
		if err != nil {
			return 0, false, ErrNodeDown
		}
		if ok {
			sh.Inc(obs.EvLeaseGrant)
			return ro.end, true, nil
		}
		if clock.IsWriteLocked(cur) {
			sh.Inc(obs.EvRemoteLockConflict)
			return 0, false, nil
		}
		end := clock.LeaseEnd(cur)
		if !clock.Expired(end, ro.e.w.Node.Clock.Read(), delta) {
			sh.Inc(obs.EvLeaseShare)
			return end, true, nil
		}
		if _, ok, err := ro.stateCAS(node, region, off, cur, clock.Shared(ro.end)); err != nil {
			return 0, false, ErrNodeDown
		} else if ok {
			sh.Inc(obs.EvLeaseExpire)
			sh.Inc(obs.EvLeaseGrant)
			return ro.end, true, nil
		}
	}
	sh.Inc(obs.EvRemoteLockConflict)
	return 0, false, nil
}

// stampView records a touched partition's view word for confirm.
func (ro *RO) stampView(part int) {
	if part < 0 || ro.e.rt.C.ReplicationFactor() == 0 {
		return
	}
	if ro.views == nil {
		ro.views = make(map[int]uint64)
	}
	if _, ok := ro.views[part]; !ok {
		ro.views[part] = ro.e.rt.C.View(part)
	}
}

// Read leases and fetches a record by key.
func (ro *RO) Read(table int, key uint64) ([]uint64, error) {
	k := refKey{table, key}
	if r, ok := ro.index[k]; ok {
		return r.buf, nil
	}
	node, region, part := ro.e.route(table, key)
	ro.stampView(part)
	meta := ro.e.rt.Meta(table)

	var off memory.Offset
	var ok bool
	if node == ro.e.w.Node.ID {
		if meta.Kind == Ordered {
			off, ok = ro.e.w.Node.Ordered(table).Lookup(key)
			ro.e.charge(ro.e.model().BTreeOpNS)
		} else {
			off, ok = ro.e.w.Node.Unordered(region).LookupLocal(key)
			ro.e.charge(ro.e.model().HashProbeNS)
		}
	} else {
		if meta.Kind == Ordered {
			return nil, ErrNotFound // remote ordered reads are shipped at workload level
		}
		host := ro.e.rt.C.Node(node).Unordered(region)
		loc, lok, err := host.LookupRemoteE(ro.e.w.QP, ro.e.cacheFor(node, region), key)
		if err != nil {
			return nil, ErrNodeDown
		}
		ok = lok
		off = loc.Off
		if ok && ro.e.routeRead(ro.policy, host, node, table, key) {
			return ro.specReadAt(node, table, region, key, loc)
		}
	}
	if !ok {
		return nil, ErrNotFound
	}
	return ro.readAt(node, table, region, key, off)
}

// specReadAt fetches a remote record speculatively: one entry READ, no
// lease CAS. The version and incarnation observed here are re-validated by
// confirm; a record observed write-locked is mid-update and retries.
func (ro *RO) specReadAt(node, table, region int, key uint64, loc kvs.Loc) ([]uint64, error) {
	e := ro.e
	sh := e.w.Obs
	host := e.rt.C.Node(node).Unordered(region)
	vw := e.rt.Meta(table).ValueWords
	words := make([]uint64, kvs.EntryValueWord+vw)
	err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, loc.Off, words)
	})
	if err != nil {
		return nil, ErrNodeDown
	}
	ent, ok := host.DecodeEntry(words, key, loc)
	if !ok {
		host.Invalidate(e.cacheFor(node, region), key)
		return nil, ErrRetry
	}
	sh.Inc(obs.EvSpecRead)
	if clock.IsWriteLocked(ent.State) {
		sh.Inc(obs.EvRemoteLockConflict)
		return nil, ErrRetry
	}
	buf := make([]uint64, vw)
	copy(buf, ent.Value)
	r := &roRec{table: table, node: node, region: region, key: key, off: loc.Off, buf: buf,
		spec: true, lossy: loc.Lossy, version: ent.Version, inc: ent.Incarnation}
	ro.index[refKey{table, key}] = r
	ro.recs = append(ro.recs, r)
	return buf, nil
}

// ReadAtLocal leases and fetches a local record found via a scan.
func (ro *RO) ReadAtLocal(table int, off memory.Offset) ([]uint64, error) {
	return ro.readAt(ro.e.w.Node.ID, table, table, ^uint64(0), off)
}

func (ro *RO) readAt(node, table, region int, key uint64, off memory.Offset) ([]uint64, error) {
	end, ok, err := ro.lease(node, region, off)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrRetry
	}
	vw := ro.e.rt.Meta(table).ValueWords
	buf := make([]uint64, vw)
	if node == ro.e.w.Node.ID {
		ro.arenaOf(node, region).Read(buf, kvs.ValueOffset(off))
		ro.e.charge(int64(vw+1) * ro.e.model().HTMPerReadNS)
	} else {
		rerr := ro.e.verbRetry(func() error {
			return ro.e.w.QP.TryRead(node, region, kvs.ValueOffset(off), buf)
		})
		if rerr != nil {
			return nil, ErrNodeDown
		}
	}
	r := &roRec{table: table, node: node, region: region, key: key, off: off, buf: buf, leaseEnd: end}
	if key != ^uint64(0) {
		ro.index[refKey{table, key}] = r
	}
	ro.recs = append(ro.recs, r)
	return buf, nil
}

func (ro *RO) arenaOf(node, region int) *memory.Arena {
	n := ro.e.rt.C.Node(node)
	if _, _, isReplica := cluster.ReplicaRegionInfo(region); !isReplica &&
		ro.e.rt.Meta(region).Kind == Ordered {
		return n.Ordered(region).Arena()
	}
	return n.Unordered(region).Arena()
}

// ScanLocal returns index entries of a local ordered table in [lo, hi].
func (ro *RO) ScanLocal(table int, lo, hi uint64, limit int) []KeyOff {
	o := ro.e.w.Node.Ordered(table)
	ro.e.charge(ro.e.model().BTreeOpNS)
	var out []KeyOff
	o.Scan(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ScanLocalDesc is ScanLocal in descending order.
func (ro *RO) ScanLocalDesc(table int, lo, hi uint64, limit int) []KeyOff {
	o := ro.e.w.Node.Ordered(table)
	ro.e.charge(ro.e.model().BTreeOpNS)
	var out []KeyOff
	o.ScanDesc(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}
