package tx

import "testing"

// TestRegionRetryRestoresWriteBuffers pins the buffered-remote-write
// rollback on HTM region retries. A conflict abort re-runs the region with
// locks held; the HTM side rolls its write set back, and the staged remote
// buffers — mutated in place by lc.Write — must roll back with it.
// Before the fix the retried body read the aborted attempt's value out of
// the dirty buffer and applied its update a second time, so a transaction
// pairing a local write (rolled back) with a remote write (leaked) split
// in two: this is exactly the money-conservation leak the adaptive
// shifting-hotset stress first caught.
func TestRegionRetryRestoresWriteBuffers(t *testing.T) {
	rt, stop := newRig(t, 2, 2, 4, nil)
	defer stop()
	e0 := rt.Executor(0, 0)
	e1 := rt.Executor(1, 0)
	const (
		kLocal  = 2 // homed on node 0: HTM write, rolled back on abort
		kRemote = 1 // homed on node 1: buffered write, must roll back too
	)

	attempts := 0
	err := e0.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, kLocal); err != nil {
			return err
		}
		if err := tx.W(tblAccounts, kRemote); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			attempts++
			// The Figure 6 state-word check puts kLocal's line in the HTM
			// read set before the interference below bumps it.
			w, err := lc.Read(tblAccounts, kLocal)
			if err != nil {
				return err
			}
			v, err := lc.Read(tblAccounts, kRemote)
			if err != nil {
				return err
			}
			// Increment through the buffer: a leaked buffer makes the
			// retry read its own aborted write and increment twice.
			if err := lc.Write(tblAccounts, kRemote, []uint64{v[0] + 1, 0}); err != nil {
				return err
			}
			if attempts == 1 {
				// Force a conflict abort: a concurrent transaction from
				// node 1 write-locks kLocal on this node, bumping the
				// line this region already read.
				if err := e1.Exec(func(tx2 *Tx) error {
					if err := tx2.W(tblAccounts, kLocal); err != nil {
						return err
					}
					return tx2.Execute(func(lc2 *Local) error {
						w2, err := lc2.Read(tblAccounts, kLocal)
						if err != nil {
							return err
						}
						return lc2.Write(tblAccounts, kLocal, []uint64{w2[0] + 100, 0})
					})
				}); err != nil {
					return err
				}
			}
			return lc.Write(tblAccounts, kLocal, []uint64{w[0] + 1, 0})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("interference did not retry the region (attempts = %d)", attempts)
	}

	// Read back through transactions to avoid entry-layout assumptions.
	check := func(key uint64, want uint64) {
		t.Helper()
		var v []uint64
		if err := e0.Exec(func(tx *Tx) error {
			if err := tx.R(tblAccounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				r, err := lc.Read(tblAccounts, key)
				if err != nil {
					return err
				}
				v = append([]uint64(nil), r...)
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		if v[0] != want {
			t.Errorf("key %d = %d, want %d", key, v[0], want)
		}
	}
	// kRemote: exactly one increment despite the retry (1000 + 1).
	check(kRemote, 1001)
	// kLocal: interferer's +100 then our +1 on the retried attempt.
	check(kLocal, 1101)
}
