package tx

import (
	"errors"
	"sync"
	"testing"
	"time"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/htm"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// TestWriterAfterLeaseExpiry: the lease write path (Figure 5) replaces an
// expired lease with an exclusive lock via the CAS-with-current-state retry.
func TestWriterAfterLeaseExpiry(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, func(c *cluster.Config) {
		c.LeaseMicros = 2_000
	})
	defer stop()
	tr := rt.Executor(0, 0).newTx()
	if err := tr.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	// The state word now carries a lease (non-INIT).
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if s := host.Arena().LoadWord(off + 2); s == clock.Init || clock.IsWriteLocked(s) {
		t.Fatalf("state = %x, want a lease", s)
	}
	time.Sleep(6 * time.Millisecond) // lease (2ms) + delta comfortably passed

	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAccounts, 1, []uint64{7, 7})
		})
	})
	if err != nil {
		t.Fatalf("writer failed after lease expiry: %v", err)
	}
	v, _ := host.Get(1)
	if v[0] != 7 {
		t.Fatal("write lost")
	}
}

// TestLocalWriteClearsExpiredLease: Figure 6's optimization — a local write
// to a record with an expired lease resets the state word to INIT.
func TestLocalWriteClearsExpiredLease(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, func(c *cluster.Config) {
		c.LeaseMicros = 2_000
	})
	defer stop()
	// Lease key 2 (homed node 0) from node 1, let it expire.
	tr := rt.Executor(1, 0).newTx()
	if err := tr.stageRemote(tblAccounts, 2, 0, tblAccounts, 0, false); err != nil {
		t.Fatal(err)
	}
	time.Sleep(6 * time.Millisecond)

	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 2); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAccounts, 2, []uint64{9, 9})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	host := rt.C.Node(0).Unordered(tblAccounts)
	off, _ := host.LookupLocal(2)
	if s := host.Arena().LoadWord(off + 2); s != clock.Init {
		t.Fatalf("expired lease not cleared: %x", s)
	}
}

// TestFallbackWithRemoteRecords: the fallback path re-acquires remote locks
// in global order and commits correctly.
func TestFallbackWithRemoteRecords(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 32, func(c *cluster.Config) {
		c.HTM = htm.Config{WriteLines: 2, ReadLines: 4096}
	})
	defer stop()
	e := rt.Executor(0, 0)
	// 4 local + 2 remote writes exceed the 2-line HTM capacity.
	keys := []uint64{2, 4, 6, 8, 1, 3} // evens local to node 0, odds on node 1
	err := e.Exec(func(tx *Tx) error {
		for _, k := range keys {
			if err := tx.W(tblAccounts, k); err != nil {
				return err
			}
		}
		return tx.Execute(func(lc *Local) error {
			for _, k := range keys {
				v, err := lc.Read(tblAccounts, k)
				if err != nil {
					return err
				}
				if err := lc.Write(tblAccounts, k, []uint64{v[0] + 5, v[1]}); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Fallbacks.Load() == 0 {
		t.Fatal("expected the fallback path")
	}
	for _, k := range keys {
		host := rt.C.Node(int(k) % 2).Unordered(tblAccounts)
		v, _ := host.Get(k)
		if v[0] != 1005 {
			t.Fatalf("key %d = %d, want 1005", k, v[0])
		}
		off, _ := host.LookupLocal(k)
		if s := host.Arena().LoadWord(off + 2); s != clock.Init {
			t.Fatalf("key %d still locked: %x", k, s)
		}
	}
}

// TestFallbackUserAbortReleasesEverything: a user abort on the fallback
// path must release all acquired locks without publishing.
func TestFallbackUserAbort(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 16, func(c *cluster.Config) {
		c.HTM = htm.Config{WriteLines: 2, ReadLines: 4096}
	})
	defer stop()
	e := rt.Executor(0, 0)
	keys := []uint64{2, 4, 6, 1}
	err := e.Exec(func(tx *Tx) error {
		for _, k := range keys {
			if err := tx.W(tblAccounts, k); err != nil {
				return err
			}
		}
		return tx.Execute(func(lc *Local) error {
			for _, k := range keys {
				v, err := lc.Read(tblAccounts, k)
				if err != nil {
					return err
				}
				if err := lc.Write(tblAccounts, k, []uint64{v[0] + 1, v[1]}); err != nil {
					return err
				}
			}
			return ErrUserAbort
		})
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("err = %v", err)
	}
	for _, k := range keys {
		host := rt.C.Node(int(k) % 2).Unordered(tblAccounts)
		v, _ := host.Get(k)
		if v[0] != 1000 {
			t.Fatalf("aborted fallback write visible on key %d: %d", k, v[0])
		}
		off, _ := host.LookupLocal(k)
		if s := host.Arena().LoadWord(off + 2); s != clock.Init {
			t.Fatalf("key %d lock leaked: %x", k, s)
		}
	}
}

// TestGlobalAtomicsUsesLocalCAS: under IBV_ATOMIC_GLOB the fallback path
// locks local records with cheap CPU CAS (no RDMA CAS counted).
func TestGlobalAtomicsUsesLocalCAS(t *testing.T) {
	countCAS := func(level rdma.AtomicityLevel) int64 {
		rt, stop := newRig(t, 1, 1, 16, func(c *cluster.Config) {
			c.Atomicity = level
			c.HTM = htm.Config{WriteLines: 2, ReadLines: 4096}
		})
		defer stop()
		e := rt.Executor(0, 0)
		err := e.Exec(func(tx *Tx) error {
			for _, k := range []uint64{1, 2, 3, 4} {
				if err := tx.W(tblAccounts, k); err != nil {
					return err
				}
			}
			return tx.Execute(func(lc *Local) error {
				for _, k := range []uint64{1, 2, 3, 4} {
					v, err := lc.Read(tblAccounts, k)
					if err != nil {
						return err
					}
					if err := lc.Write(tblAccounts, k, []uint64{v[0], v[1]}); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if rt.Stats.Fallbacks.Load() == 0 {
			t.Fatal("fallback did not trigger")
		}
		return rt.C.Fabric.Totals.CASes.Load()
	}
	hca := countCAS(rdma.AtomicHCA)
	glob := countCAS(rdma.AtomicGLOB)
	if hca == 0 {
		t.Fatal("HCA fallback should use RDMA CAS for local records")
	}
	if glob != 0 {
		t.Fatalf("GLOB fallback used %d RDMA CAS, want 0 (local CAS)", glob)
	}
}

// TestUpgradeReadToWrite: staging a write after a read of the same remote
// record upgrades the shared lease to an exclusive lock in place with a
// single CAS, instead of aborting the transaction.
func TestUpgradeReadToWrite(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	tx := rt.Executor(0, 0).newTx()
	if err := tx.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, false); err != nil {
		t.Fatal(err)
	}
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if s := host.Arena().LoadWord(off + 2); clock.IsWriteLocked(s) {
		t.Fatalf("read staged an exclusive lock: %x", s)
	}
	if err := tx.stageRemote(tblAccounts, 1, 1, tblAccounts, 1, true); err != nil {
		t.Fatalf("upgrade = %v, want success", err)
	}
	if s := host.Arena().LoadWord(off + 2); !clock.IsWriteLocked(s) {
		t.Fatalf("upgrade did not install the exclusive lock: %x", s)
	}
	r := tx.rIndex[refKey{tblAccounts, 1}]
	if r == nil || !r.write {
		t.Fatal("staged record not marked exclusive after upgrade")
	}
	if got := rt.C.Obs.Total(obs.EvLockUpgrade); got != 1 {
		t.Fatalf("lock.upgrade = %d, want 1", got)
	}
	if len(tx.remotes) != 1 {
		t.Fatalf("remotes = %d, want 1 (no duplicate staging)", len(tx.remotes))
	}
	tx.releaseLocks()
	if s := host.Arena().LoadWord(off + 2); s != clock.Init {
		t.Fatalf("release after upgrade leaked the lock: %x", s)
	}
}

// TestUpgradeCommitsFreshValue: an end-to-end read-then-write upgrade
// commits through the exclusive lock and publishes the new value.
func TestUpgradeCommitsFreshValue(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.R(tblAccounts, 1); err != nil { // remote read first
			return err
		}
		if err := tx.W(tblAccounts, 1); err != nil { // then upgrade
			return err
		}
		return tx.Execute(func(lc *Local) error {
			v, err := lc.Read(tblAccounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(tblAccounts, 1, []uint64{v[0] + 23, v[1]})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	host := rt.C.Node(1).Unordered(tblAccounts)
	v, _ := host.Get(1)
	if v[0] != 1023 {
		t.Fatalf("upgraded write = %d, want 1023", v[0])
	}
	off, _ := host.LookupLocal(1)
	if s := host.Arena().LoadWord(off + 2); s != clock.Init {
		t.Fatalf("record left locked after upgraded commit: %x", s)
	}
}

// TestNoReadLeaseTakesExclusive: the Figure 17 ablation switch.
func TestNoReadLeaseTakesExclusive(t *testing.T) {
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	rt.NoReadLease = true
	tx := rt.Executor(0, 0).newTx()
	if err := tx.R(tblAccounts, 1); err != nil { // remote read
		t.Fatal(err)
	}
	host := rt.C.Node(1).Unordered(tblAccounts)
	off, _ := host.LookupLocal(1)
	if s := host.Arena().LoadWord(off + 2); !clock.IsWriteLocked(s) {
		t.Fatalf("NoReadLease read did not take the exclusive lock: %x", s)
	}
	tx.releaseLocks()
}

// TestConcurrentROAndWriters stress-tests lease/exclusive interplay across
// three nodes for an extended run.
func TestConcurrentROAndWriters(t *testing.T) {
	const nodes, keys = 3, 18
	rt, stop := newRig(t, nodes, 1, keys, nil)
	defer stop()
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			e := rt.Executor(n, 0)
			for i := 0; ; i++ {
				select {
				case <-stopCh:
					return
				default:
				}
				a := uint64((n*5+i)%keys) + 1
				b := uint64((n*7+i*3)%keys) + 1
				if a == b {
					continue
				}
				_ = e.Exec(func(tx *Tx) error {
					if err := tx.W(tblAccounts, a); err != nil {
						return err
					}
					if err := tx.R(tblAccounts, b); err != nil {
						return err
					}
					return tx.Execute(func(lc *Local) error {
						v, err := lc.Read(tblAccounts, a)
						if err != nil {
							return err
						}
						w, err := lc.Read(tblAccounts, b)
						if err != nil {
							return err
						}
						return lc.Write(tblAccounts, a, []uint64{v[0], w[0]})
					})
				})
			}
		}(n)
	}
	time.Sleep(30 * time.Millisecond)
	close(stopCh)
	wg.Wait()
	// No locks may remain.
	for k := uint64(1); k <= keys; k++ {
		host := rt.C.Node(int(k) % nodes).Unordered(tblAccounts)
		off, _ := host.LookupLocal(k)
		if s := host.Arena().LoadWord(off + 2); clock.IsWriteLocked(s) {
			t.Fatalf("key %d left locked", k)
		}
	}
}

// TestDeferredOrderedInsertShipsRemote: an ordered-table insert whose home
// is another node goes over verbs to the host (Section 6.5).
func TestDeferredOrderedInsertShipsRemote(t *testing.T) {
	const tblOrders = 2
	rt, stop := newRig(t, 2, 1, 4, nil)
	defer stop()
	rt.DefineOrdered(tblOrders, 64, 1)
	e := rt.Executor(0, 0)
	msgsBefore := rt.C.Fabric.Totals.Msgs.Load()
	err := e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error {
			lc.Insert(tblOrders, 101, []uint64{7}) // odd key: homed on node 1
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := rt.C.Node(1).Ordered(tblOrders).Get(101); !ok || v[0] != 7 {
		t.Fatalf("shipped ordered insert = %v,%v", v, ok)
	}
	if rt.C.Fabric.Totals.Msgs.Load() == msgsBefore {
		t.Fatal("insert did not go over verbs")
	}
	// And the reverse: remote delete.
	err = e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error {
			lc.Delete(tblOrders, 101)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.C.Node(1).Ordered(tblOrders).Get(101); ok {
		t.Fatal("shipped ordered delete failed")
	}
}

// TestBatchedStageFaultsReleaseLocks drives the batched gather/issue/complete
// pipeline under per-WR transient faults: waves complete partially, some
// transactions abort with ErrNodeDown mid-batch, and every lock acquired
// before the abort must still be released. Run under -race by `make race`.
func TestBatchedStageFaultsReleaseLocks(t *testing.T) {
	const keys = 16
	rt, stop := newRig(t, 2, 2, keys, nil)
	defer stop()
	rt.BatchWindow = 16
	plan := rdma.NewFaultPlan(5)
	rt.C.Fabric.SetFaultPlan(plan)
	plan.NodeRule(1, rdma.FaultRule{FailProb: 0.15})

	var commits int64
	var mu sync.Mutex
	ws := rt.C.Workers()
	var wg sync.WaitGroup
	for _, wk := range ws {
		wg.Add(1)
		go func(node, worker int) {
			defer wg.Done()
			e := rt.Executor(node, worker)
			n := 0
			for i := 0; i < 40; i++ {
				// 4 distinct writes homed on the OTHER node (key parity
				// selects the home), so node-0 workers always cross the
				// flaky fabric path to node 1.
				accs := make([]Access, 4)
				for j := range accs {
					k := uint64(((i + j*3) % 8) * 2) // 0,2,..,14, distinct per j
					if node == 0 {
						k++ // odd keys are homed on node 1
					} else {
						k += 2 // even keys are homed on node 0
					}
					accs[j] = Access{Table: tblAccounts, Key: k, Write: true}
				}
				err := e.Exec(func(tx *Tx) error {
					if err := tx.Stage(accs...); err != nil {
						return err
					}
					return tx.Execute(func(lc *Local) error {
						for _, a := range accs {
							v, err := lc.Read(tblAccounts, a.Key)
							if err != nil {
								return err
							}
							if err := lc.Write(tblAccounts, a.Key, []uint64{v[0] + 1, v[1]}); err != nil {
								return err
							}
						}
						return nil
					})
				})
				switch {
				case err == nil:
					n++
				case errors.Is(err, ErrNodeDown):
					// A lookup/prefetch WR in some wave drew a fault; the
					// transaction aborted and released its locks.
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
			mu.Lock()
			commits += int64(n)
			mu.Unlock()
		}(wk.Node.ID, wk.ID)
	}
	wg.Wait()

	if rt.C.Fabric.Totals.Faults.Load() == 0 {
		t.Fatal("fault plan injected nothing; the test exercised no partial completions")
	}
	plan.Clear()
	var sum uint64
	for k := 1; k <= keys; k++ {
		host := rt.C.Node(k % 2).Unordered(tblAccounts)
		off, ok := host.LookupLocal(uint64(k))
		if !ok {
			t.Fatalf("key %d vanished", k)
		}
		if s := host.Arena().LoadWord(off + 2); s != clock.Init {
			t.Fatalf("key %d state = %x after all txns done, want released (Init)", k, s)
		}
		v, _ := host.Get(uint64(k))
		sum += v[0] - 1000
	}
	if sum != uint64(commits)*4 {
		t.Fatalf("sum of increments = %d, want commits*4 = %d", sum, commits*4)
	}
}
