package tx

import (
	"fmt"

	"drtm/internal/clock"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// Local is the transaction body's view during the LocalTX phase. It serves
// reads and writes of local records through the HTM transaction (with the
// Figure 6 state-word checks) and of staged remote records through the
// transaction-private buffers filled during the Start phase.
type Local struct {
	t   *Tx
	htx *htm.Txn

	// fallback is set when running on the software fallback path
	// (Section 6.2): accesses go straight to memory under protocol locks
	// instead of through an HTM region.
	fallback *fallbackCtx
}

// now returns the timestamp local operations use for lease checks,
// honoring the configured softtime strategy (Figure 11).
func (lc *Local) now() uint64 {
	cfg := lc.t.e.rt.C.Config()
	if cfg.Strategy != clock.StrategyReuseConfirm && lc.htx != nil {
		// Figure 11(a)/(b): a transactional softtime read per operation —
		// exposed to timer-thread false aborts (frequency depends on the
		// deployment's update interval).
		return lc.t.e.w.Node.Clock.ReadTx(lc.htx)
	}
	// Figure 11(c): reuse the Start-phase softtime.
	return lc.t.startSoft
}

// resolve maps (table, key) to the record's entry location in this node's
// shard, charging the store's lookup cost. region is the storage region the
// record was declared under — the table itself, or a replica region when
// this node was promoted to own the partition (hot failover).
func (lc *Local) resolve(table, region int, key uint64) (*memory.Arena, memory.Offset, bool) {
	n := lc.t.e.w.Node
	m := lc.t.e.rt.Meta(table)
	model := lc.t.e.model()
	if m.Kind == Ordered {
		lc.t.e.charge(model.BTreeOpNS)
		o := n.Ordered(region)
		off, ok := o.Lookup(key)
		return o.Arena(), off, ok
	}
	lc.t.e.charge(model.HashProbeNS)
	tbl := n.Unordered(region)
	var off memory.Offset
	var ok bool
	if lc.htx != nil {
		off, ok = tbl.LookupTx(lc.htx, key)
	} else {
		off, ok = tbl.LookupLocal(key)
	}
	return tbl.Arena(), off, ok
}

// Read returns the record's value. Remote records must have been staged
// with Tx.R or Tx.W; local records must have been declared.
func (lc *Local) Read(table int, key uint64) ([]uint64, error) {
	k := refKey{table, key}
	if lc.fallback != nil {
		// Fallback mode: every declared record (local or remote) lives in
		// the fallback record set.
		return lc.fallback.read(table, key)
	}
	if r, ok := lc.t.rIndex[k]; ok {
		if r.erase {
			return nil, ErrNotFound
		}
		return r.buf, nil
	}
	// Rows this transaction structurally staged read their own effects.
	if op := findStructOp(lc.t.localErase, table, key); op != nil {
		return nil, ErrNotFound
	}
	if op := findStructOp(lc.t.localIns, table, key); op != nil {
		return op.val, nil
	}
	li, ok := lc.t.lIndex[k]
	if !ok {
		panic(fmt.Sprintf("tx: undeclared access to table %d key %d", table, key))
	}
	arena, off, ok := lc.resolve(table, lc.t.locals[li].region, key)
	if !ok {
		return nil, ErrNotFound
	}
	if lc.t.e.rt.C.Config().Strategy != clock.StrategyReuseConfirm {
		_ = lc.now() // per-op softtime read (Figure 11(a)/(b) strategies)
	}
	// LOCAL_READ (Figure 6): the state word joins the HTM read set; if a
	// remote transaction locks the record later, this transaction aborts.
	s := lc.htx.Read(arena, kvs.StateOffset(off))
	if clock.IsWriteLocked(s) {
		lc.htx.Abort(abortCodeLocked)
	}
	// Ordered entries can be structurally present but dead (the staged half
	// of an insert, or a committed erase awaiting removal); the incarnation
	// word joins the read set, so a concurrent flip aborts this region.
	if lc.t.e.rt.Meta(table).Kind == Ordered &&
		!kvs.Live(kvs.Incarnation(lc.htx.Read(arena, kvs.IncVerOffset(off)))) {
		return nil, ErrNotFound
	}
	// Leases are ignored by local reads: HTM protects read-read sharing.
	vw := lc.t.e.rt.Meta(table).ValueWords
	val := make([]uint64, vw)
	lc.htx.ReadN(arena, kvs.ValueOffset(off), val)
	lc.t.e.charge(lc.t.e.model().HTMPerReadNS * int64(vw+1))
	return val, nil
}

// ReadWord returns one word of the record's value.
func (lc *Local) ReadWord(table int, key uint64, idx int) (uint64, error) {
	v, err := lc.Read(table, key)
	if err != nil {
		return 0, err
	}
	return v[idx], nil
}

// Write replaces the record's value. Staged remote writes update the
// private buffer (written back after commit); local writes go through the
// HTM region with the Figure 6 checks.
func (lc *Local) Write(table int, key uint64, val []uint64) error {
	k := refKey{table, key}
	if lc.fallback != nil {
		return lc.fallback.write(table, key, val)
	}
	if r, ok := lc.t.rIndex[k]; ok {
		if !r.write {
			panic(fmt.Sprintf("tx: write to read-staged record table %d key %d", table, key))
		}
		if r.erase {
			panic(fmt.Sprintf("tx: write to erased record table %d key %d", table, key))
		}
		lc.t.checkIndexKeys(table, key, r.buf, val)
		copy(r.buf, val)
		r.dirty = true
		return nil
	}
	if op := findStructOp(lc.t.localIns, table, key); op != nil {
		lc.t.checkIndexKeys(table, key, op.val, val)
		copy(op.val, val)
		return nil
	}
	if findStructOp(lc.t.localErase, table, key) != nil {
		panic(fmt.Sprintf("tx: write to erased record table %d key %d", table, key))
	}
	li, ok := lc.t.lIndex[k]
	if !ok || !lc.t.locals[li].write {
		panic(fmt.Sprintf("tx: undeclared write to table %d key %d", table, key))
	}
	l := lc.t.locals[li]
	arena, off, ok := lc.resolve(table, l.region, key)
	if !ok {
		return ErrNotFound
	}
	if lc.t.e.rt.C.Config().Strategy != clock.StrategyReuseConfirm {
		_ = lc.now() // per-op softtime read (Figure 11(a)/(b) strategies)
	}
	// LOCAL_WRITE (Figure 6): abort when exclusively locked or covered by
	// an unexpired lease; actively clear an expired lease (the
	// optimization that saves remote lockers an extra RDMA CAS — with the
	// side effect of adding the state to the HTM write set).
	s := lc.htx.Read(arena, kvs.StateOffset(off))
	if clock.IsWriteLocked(s) {
		lc.htx.Abort(abortCodeLocked)
	}
	if s != clock.Init {
		if !clock.Expired(clock.LeaseEnd(s), lc.now(), lc.t.e.rt.C.Delta()) {
			lc.htx.Abort(abortCodeLocked)
		}
		lc.t.e.w.Obs.Inc(obs.EvLeaseExpire)
		lc.htx.Write(arena, kvs.StateOffset(off), clock.Init)
	}
	incver := lc.htx.Read(arena, kvs.IncVerOffset(off))
	ordered := lc.t.e.rt.Meta(table).Kind == Ordered
	if ordered {
		if !kvs.Live(kvs.Incarnation(incver)) {
			return ErrNotFound
		}
		if len(lc.t.e.rt.indexesOf(table)) > 0 {
			old := make([]uint64, len(val))
			lc.htx.ReadN(arena, kvs.ValueOffset(off), old)
			lc.t.checkIndexKeys(table, key, old, val)
		}
	}
	// Retire the current version into the entry's ring chain before the
	// in-place overwrite (the tail pair lands in sealChains' pre-XEND fix-up
	// with the commit's uniform stamp).
	if depth := lc.chainDepth(table, l.region); depth > 0 {
		lc.t.retireLocalChain(lc.htx, arena, off, len(val), depth)
	}
	newVer := kvs.Version(incver) + 1
	lc.htx.Write(arena, kvs.IncVerOffset(off), kvs.PackIncVer(kvs.Incarnation(incver), newVer))
	lc.htx.WriteN(arena, kvs.ValueOffset(off), val)
	lc.t.e.charge(lc.t.e.model().HTMPerWriteNS * int64(len(val)+2))

	// Captured for the write-ahead log (durability) and for the redo records
	// shipped to the partition's backups (replication); the storage region —
	// not the logical table — addresses the copy this write landed in.
	if lc.t.e.rt.C.Config().Durability || (l.part >= 0 && lc.t.e.rt.C.ReplicationFactor() > 0) {
		var inc uint32
		if ordered {
			inc = kvs.Incarnation(incver)
		}
		lc.t.walLocal = append(lc.t.walLocal, walRec{
			node: lc.t.e.w.Node.ID, table: l.region, off: off,
			version: newVer, inc: inc, val: append([]uint64(nil), val...),
			ltable: table, part: l.part, key: key,
		})
	}
	return nil
}

// chainDepth returns the version-chain depth of the store backing a local
// table's storage region (0 when chains are disabled).
func (lc *Local) chainDepth(table, region int) int {
	n := lc.t.e.w.Node
	if lc.t.e.rt.Meta(table).Kind == Ordered {
		return n.Ordered(region).ChainDepth()
	}
	return n.Unordered(region).ChainDepth()
}

// findStructOp locates this transaction's staged structural op for a key.
func findStructOp(ops []structOp, table int, key uint64) *structOp {
	for i := range ops {
		if ops[i].table == table && ops[i].key == key {
			return &ops[i]
		}
	}
	return nil
}

// checkIndexKeys enforces the index-maintenance contract: a plain Write may
// not change any declared index's key for the row — such updates must go
// through Erase + WInsert so the index rows move inside the same commit.
func (t *Tx) checkIndexKeys(table int, key uint64, old, val []uint64) {
	for _, spec := range t.e.rt.indexesOf(table) {
		if spec.Key(key, old) != spec.Key(key, val) {
			panic(fmt.Sprintf("tx: Write changes index table %d key for base table %d key %d (use Erase + WInsert)",
				spec.Table, table, key))
		}
	}
}

// Insert schedules a record insertion, applied right after the transaction
// commits (local stores directly, remote stores shipped over verbs as in
// footnote 5 / Section 6.5).
func (lc *Local) Insert(table int, key uint64, val []uint64) {
	lc.t.deferred = append(lc.t.deferred, deferredOp{insert: true, table: table,
		key: key, val: append([]uint64(nil), val...)})
}

// Delete schedules a record deletion, applied right after commit.
func (lc *Local) Delete(table int, key uint64) {
	lc.t.deferred = append(lc.t.deferred, deferredOp{insert: false, table: table, key: key})
}

// KeyOff is a scan result: a key and its entry offset.
type KeyOff struct {
	Key uint64
	Off memory.Offset
}

// ScanLocal returns up to limit index entries of a local ordered table in
// [lo, hi] ascending (limit <= 0 means unbounded). The index itself is
// latched, not HTM-tracked, and the result carries no phantom protection —
// use Tx.Scan (declared before Execute) for validated transactional range
// reads; ScanLocal remains for non-transactional walks over entry offsets.
func (lc *Local) ScanLocal(table int, lo, hi uint64, limit int) []KeyOff {
	o := lc.t.e.w.Node.Ordered(table)
	lc.t.e.charge(lc.t.e.model().BTreeOpNS)
	var out []KeyOff
	o.Scan(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ScanLocalDesc is ScanLocal in descending order.
func (lc *Local) ScanLocalDesc(table int, lo, hi uint64, limit int) []KeyOff {
	o := lc.t.e.w.Node.Ordered(table)
	lc.t.e.charge(lc.t.e.model().BTreeOpNS)
	var out []KeyOff
	o.ScanDesc(lo, hi, func(k uint64, off memory.Offset) bool {
		out = append(out, KeyOff{k, off})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// ReadAt reads a local ordered record body found by a scan, with the same
// state-word discipline as Read.
func (lc *Local) ReadAt(table int, off memory.Offset) ([]uint64, error) {
	o := lc.t.e.w.Node.Ordered(table)
	arena := o.Arena()
	vw := o.ValueWords()
	val := make([]uint64, vw)
	if lc.fallback != nil {
		// Fallback reads are direct; the record set was locked up front.
		arena.Read(val, kvs.ValueOffset(off))
		return val, nil
	}
	s := lc.htx.Read(arena, kvs.StateOffset(off))
	if clock.IsWriteLocked(s) {
		lc.htx.Abort(abortCodeLocked)
	}
	lc.htx.ReadN(arena, kvs.ValueOffset(off), val)
	lc.t.e.charge(lc.t.e.model().HTMPerReadNS * int64(vw+1))
	return val, nil
}
