package tx

import (
	"drtm/internal/clock"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// casRetries bounds lock/lease CAS rounds per record before the acquisition
// is declared lost to a conflicting racer.
const casRetries = 8

// Batched Start phase (REMOTE_READ / REMOTE_WRITE of Figure 5, pipelined).
//
// The serial path paid ~3 round trips per remote record: lookup READ(s),
// lock/lease CAS, prefetch READ — each blocking on the fabric. This file
// splits staging into gather/issue/complete over the rdma async verb
// engine: independent records' verbs of the same stage are posted together
// and polled as doorbell batches, so an N-record Start phase costs roughly
// max-of-round-trips per stage instead of the sum. Dependent verbs (a
// record's CAS after its lookup, a takeover CAS after seeing an expired
// lease) still order across polls, exactly as completions gate reposting on
// a real QP.
//
// Two refinements ride the same pipeline:
//
//   - The lock/lease CAS and the value prefetch READ are fused into ONE
//     posted wave: each CAS is immediately followed by its record's entry
//     READ in post order, so a successful CAS's image is already covered by
//     the fresh lock/lease when the READ executes. A failed CAS discards
//     the image and re-arms both verbs; a CAS that fell back to the sync
//     retry path discards it too (the sync CAS postdates the READ). This
//     saves the separate prefetch round trip per record.
//
//   - Read-set records routed to the speculative arm (PolicySpeculative,
//     or a cold bucket under PolicyAdaptive) skip the CAS stage entirely:
//     one entry READ fetches `version ‖ state ‖ value`, and the observed
//     version is re-validated at commit time (see spec.go). A record
//     observed write-locked at fetch is a conflict — its value may be
//     mid-update.
//
// The per-record lock/lease decision logic is the same state machine as the
// serial loop it replaces; conflicts and node failures are detected per
// completion and resolve after the wave is fully processed, so every lock
// that was actually acquired is registered and released on abort.

// Access declares one record access for batched staging.
type Access struct {
	Table int
	Key   uint64
	Write bool
}

// Stage declares a set of accesses at once. Local records are declared for
// the HTM region; remote records run the batched gather/issue/complete
// pipeline, overlapping their lookup READs, lock/lease CASes and prefetch
// READs across records. Semantically equivalent to calling R/W per access.
func (t *Tx) Stage(accs ...Access) error {
	e := t.e
	if e.seen == nil {
		e.seen = make(map[refKey]*stageReq)
	}
	reqs := e.reqScr[:0]
	var err error
	for _, a := range accs {
		node, region, part := e.route(a.Table, a.Key)
		t.stampView(part)
		if node == t.e.w.Node.ID {
			t.declareLocal(a.Table, region, part, a.Key, a.Write)
			continue
		}
		write := a.Write || t.policy == PolicyExclusive
		k := refKey{a.Table, a.Key}
		if s, ok := e.seen[k]; ok {
			if write && !s.write {
				s.write = true // strengthen before issue: free upgrade
				s.spec = false
			}
			continue
		}
		var s *stageReq
		s, err = t.gatherRemote(a.Table, a.Key, node, region, part, write)
		if err != nil {
			break
		}
		if s != nil {
			e.seen[k] = s
			reqs = append(reqs, s)
		}
	}
	if err == nil && len(reqs) > 0 {
		err = t.stageBatch(reqs)
	}
	clear(e.seen)
	e.putReqs(reqs)
	e.reqScr = reqs[:0]
	return err
}

// stageRemote stages one remote record — the serial entry point kept for
// R/W and Probe.Stage; a batch of one runs the same pipeline.
func (t *Tx) stageRemote(table int, key uint64, node, region, part int, write bool) error {
	s, err := t.gatherRemote(table, key, node, region, part, write)
	if err != nil || s == nil {
		return err
	}
	err = t.stageBatch([]*stageReq{s})
	t.e.putReqs([]*stageReq{s})
	return err
}

// stageReq is one remote record's slot in the staging pipeline.
type stageReq struct {
	k      refKey
	node   int
	table  int
	region int // storage region on node (replica region after failover)
	part   int // home partition (-1 if replicated table)
	key    uint64
	write  bool

	// spec marks a speculative (OCC) read: no lock/lease CAS — the entry is
	// fetched with one READ and validated at commit (see policy.go).
	spec bool

	host  *kvs.Table
	cache kvs.Cache
	r     *remoteRec
	vw    int // value words, for the entry-read buffer
	depth int // host's version-chain depth (0 = chains off)

	// upgrade marks a record already staged with a shared lease (or a
	// speculative read) that now needs an exclusive lock: the pipeline CASes
	// the lease word to the lock word in place (release is implicit — an
	// unupgraded lease just expires; a speculative read held nothing).
	upgrade  bool
	fromSpec bool

	lr       kvs.LookupReq
	loc      kvs.Loc
	stateOff memory.Offset

	// Lock/lease acquisition state machine: the (old, new) pair armed for
	// the next CAS round, whether that CAS is an expired-lease takeover, and
	// how many takeover rounds were lost to racers.
	old, new  uint64
	takeover  bool
	iters     int
	acquired  bool
	needFetch bool
	entryWR   *rdma.WR
	fuseWR    *rdma.WR // prefetch READ posted in the same wave as the CAS

	ebuf []uint64 // pooled entry-read destination
}

// getReq pops a pooled staging request (entry-read buffer capacity kept).
func (e *Executor) getReq() *stageReq {
	if n := len(e.reqFree); n > 0 {
		s := e.reqFree[n-1]
		e.reqFree = e.reqFree[:n-1]
		ebuf := s.ebuf
		*s = stageReq{ebuf: ebuf}
		return s
	}
	return &stageReq{}
}

// putReqs returns staging requests to the pool after the batch resolves.
func (e *Executor) putReqs(reqs []*stageReq) {
	e.reqFree = append(e.reqFree, reqs...)
}

// entryBuf returns the request's entry-read destination, grown to n words.
func (s *stageReq) entryBuf(n int) []uint64 {
	if cap(s.ebuf) < n {
		s.ebuf = make([]uint64, n)
	}
	return s.ebuf[:n]
}

// rdWords is the span of the record's entry READ: write stages on chained
// tables fetch the full image — the extra words carry the tail stamp the
// commit-time retire needs — in the same post-lock READ; everything else
// keeps the narrow header+value read. Computed at post time, after Stage's
// dedup pass may have strengthened s.write.
func (s *stageReq) rdWords() int {
	if s.write && s.depth > 0 {
		return kvs.EntryImageWords(s.vw, s.depth)
	}
	return kvs.EntryValueWord + s.vw
}

// captureTail records the previous tail stamp out of a full-image READ
// (no-op for narrow reads).
func (s *stageReq) captureTail(words []uint64) {
	if s.write && s.depth > 0 {
		s.r.prevTail = words[int(kvs.TailOffset(0, s.vw, s.depth))+kvs.TailStampWord]
	}
}

// gatherRemote dedupes one remote access against the staged set and builds
// its pipeline request; a nil request means the access is already satisfied.
func (t *Tx) gatherRemote(table int, key uint64, node, region, part int, write bool) (*stageReq, error) {
	k := refKey{table, key}
	meta := t.e.rt.Meta(table)
	if r, ok := t.rIndex[k]; ok {
		if !write || r.write {
			return nil, nil
		}
		if r.ordered {
			// Ordered upgrades run serially: there is no one-sided lookup
			// to overlap, and the record is already resolved.
			return nil, t.upgradeOrdered(r)
		}
		s := t.e.getReq()
		s.k, s.node, s.table, s.key, s.write = k, r.node, table, key, true
		s.region, s.part = r.region, r.part
		s.host = t.e.rt.C.Node(r.node).Unordered(r.region)
		s.cache = t.e.cacheFor(r.node, r.region)
		s.r, s.upgrade, s.fromSpec, s.vw = r, true, r.spec, meta.ValueWords
		s.depth = s.host.ChainDepth()
		return s, nil
	}
	if meta.Kind == Ordered {
		// Ordered accesses ship the tree walk to the host (Section 6.5)
		// and then run the usual one-sided arms serially on the resolved
		// entry; they do not join the batched pipeline.
		return nil, t.stageOrderedPoint(table, key, node, region, part, write)
	}
	s := t.e.getReq()
	s.k, s.node, s.table, s.key, s.write = k, node, table, key, write
	s.region, s.part = region, part
	s.host = t.e.rt.C.Node(node).Unordered(region)
	s.spec = !write && t.e.routeRead(t.policy, s.host, node, table, key)
	s.cache = t.e.cacheFor(node, region)
	s.vw = meta.ValueWords
	s.depth = s.host.ChainDepth()
	return s, nil
}

// stageBatch runs the pipelined stages — location lookup, fused lock/lease
// CAS + prefetch, then a fetch pass for speculative reads and stragglers —
// for all requests, polling each stage's outstanding verbs as doorbell
// batches.
func (t *Tx) stageBatch(reqs []*stageReq) error {
	startv := int64(t.e.w.VClock.Now())
	defer func() { t.vLock += int64(t.e.w.VClock.Now()) - startv }()
	sh := t.e.w.Obs
	sq := t.e.sendq()

	// ---- lookup: batched bucket-chain walks --------------------------------
	lstart := int64(t.e.w.VClock.Now())
	lookups := 0
	for _, s := range reqs {
		if s.upgrade {
			// Location known from the staged record.
			s.loc = kvs.Loc{Off: s.r.off, Lossy: s.r.lossy}
			s.stateOff = kvs.StateOffset(s.r.off)
			continue
		}
		s.lr = kvs.LookupReq{Table: s.host, Cache: s.cache, Key: s.key}
		lookups++
	}
	if lookups > 0 {
		lreqs := t.e.lreqScr[:0]
		for _, s := range reqs {
			if !s.upgrade {
				lreqs = append(lreqs, &s.lr)
			}
		}
		kvs.LookupBatch(sq, lreqs)
		t.e.lreqScr = lreqs[:0]
	}
	notFound := false
	for _, s := range reqs {
		if s.upgrade {
			continue
		}
		if s.lr.Err != nil {
			sh.Observe(obs.PhaseLookupRemote, int64(t.e.w.VClock.Now())-lstart)
			return t.nodeDown()
		}
		if !s.lr.Found {
			notFound = true
			continue
		}
		s.loc = s.lr.Loc
		s.stateOff = kvs.StateOffset(s.loc.Off)
		r := t.e.getRec()
		r.table, r.node, r.key = s.table, s.node, s.key
		r.region, r.part = s.region, s.part
		r.off, r.lossy, r.write = s.loc.Off, s.loc.Lossy, s.write
		s.r = r
	}
	sh.Observe(obs.PhaseLookupRemote, int64(t.e.w.VClock.Now())-lstart)
	if notFound {
		t.releaseLocks()
		return ErrNotFound
	}

	// ---- acquire: fused lock/lease CAS + prefetch READ waves ---------------
	// Speculative reads acquire nothing: they are registered directly and
	// fetched in the final stage with a single entry READ.
	astart := int64(t.e.w.VClock.Now())
	me := uint8(t.e.w.Node.ID)
	delta := t.e.rt.C.Delta()
	active := t.e.activeSR[:0]
	for _, s := range reqs {
		if s.spec {
			s.r.spec = true
			s.register(t)
			continue
		}
		switch {
		case s.upgrade && s.fromSpec:
			// A speculative read holds nothing: upgrading is a fresh
			// exclusive acquisition on the free state word.
			s.old, s.new = clock.Init, clock.WLocked(me)
		case s.upgrade:
			s.old, s.new = clock.Shared(s.r.leaseEnd), clock.WLocked(me)
		case s.write:
			s.old, s.new = clock.Init, clock.WLocked(me)
		default:
			s.old, s.new = clock.Init, clock.Shared(t.leaseEnd)
		}
		active = append(active, s)
	}
	conflict, down := false, false
	wrs := t.e.activeWR[:0]
	for len(active) > 0 && !conflict && !down {
		wrs = wrs[:0]
		for _, s := range active {
			wrs = append(wrs, sq.PostCAS(s.node, s.region, s.stateOff, s.old, s.new))
			// Speculatively prefetch the entry in the same wave: the READ
			// executes after the CAS in post order, so a won CAS's image is
			// already covered by the lock/lease it installed.
			s.fuseWR = s.host.PostEntryReadBuf(sq, s.loc, s.entryBuf(s.rdWords()))
		}
		sq.Poll()
		next := active[:0]
		for i, s := range active {
			wr := wrs[i]
			fuse := s.fuseWR
			s.fuseWR = nil
			cur, swapped, err := wr.Prev, wr.Swapped, wr.Err
			if err != nil {
				// Re-attempt with the bounded sync retry policy, matching
				// the serial path's casRemote. The fused image predates the
				// retried CAS and must be discarded.
				fuse = nil
				cur, swapped, err = t.casRemote(s.node, s.region, s.stateOff, s.old, s.new)
				if err != nil {
					down = true
					continue
				}
			}
			again, conf := s.onCAS(t, cur, swapped, delta)
			switch {
			case conf:
				conflict = true
				if !s.write {
					// A lease read blocked by a conflicting writer: heat the
					// bucket (adaptive feedback — writer activity here).
					t.e.feedConflict(s.host, s.node, s.table, s.key, 1)
				}
			case again:
				next = append(next, s)
			case s.needFetch && fuse != nil && fuse.Err == nil:
				// Consume the fused prefetch: acquired (or shared/upgraded)
				// in this wave, so the image is protected by the lock or the
				// lease observed by this wave's CAS.
				if e, ok := s.host.DecodeEntry(fuse.Dst, s.key, s.loc); ok {
					s.r.buf = append(s.r.buf[:0], e.Value...)
					s.r.version = e.Version
					s.r.inc = e.Incarnation
					s.captureTail(fuse.Dst)
					s.needFetch = false
				}
				// Decode failure means a stale location: leave needFetch set
				// and let the fetch stage re-read and resolve it.
			}
		}
		active = next
	}
	t.e.activeWR = wrs[:0]
	t.e.activeSR = active[:0]
	sh.Observe(obs.PhaseAcquireRemote, int64(t.e.w.VClock.Now())-astart)
	if down {
		return t.nodeDown()
	}
	if conflict {
		return t.remoteConflict()
	}

	// ---- fetch: speculative reads and stragglers ---------------------------
	pstart := int64(t.e.w.VClock.Now())
	fetches := 0
	for _, s := range reqs {
		if s.needFetch {
			s.entryWR = s.host.PostEntryReadBuf(sq, s.loc, s.entryBuf(s.rdWords()))
			fetches++
		}
	}
	if fetches > 0 {
		sq.Poll()
	}
	stale, specBusy := false, false
	for _, s := range reqs {
		if s.entryWR == nil {
			continue
		}
		wr := s.entryWR
		s.entryWR = nil
		if wr.Err != nil {
			down = true
			continue
		}
		e, ok := s.host.DecodeEntry(wr.Dst, s.key, s.loc)
		if !ok {
			// Stale location (deleted/reused entry): explicitly drop the
			// cached chain so the retry re-resolves it, then retry the txn.
			s.host.Invalidate(s.cache, s.key)
			stale = true
			continue
		}
		if s.spec {
			sh.Inc(obs.EvSpecRead)
			if clock.IsWriteLocked(e.State) {
				// A writer is mid-commit: the value may be half-written.
				// Unlike a lease, a speculative read cannot wait it out here
				// without a lock — surface it as a remote conflict.
				t.e.feedConflict(s.host, s.node, s.table, s.key, 1)
				specBusy = true
				continue
			}
		}
		s.r.buf = append(s.r.buf[:0], e.Value...)
		s.r.version = e.Version
		s.r.inc = e.Incarnation
		s.captureTail(wr.Dst)
	}
	sh.Observe(obs.PhasePrefetchRemote, int64(t.e.w.VClock.Now())-pstart)
	if down {
		return t.nodeDown()
	}
	if stale {
		return t.fail()
	}
	if specBusy {
		return t.remoteConflict()
	}
	return nil
}

// onCAS consumes one lock/lease CAS completion: it either resolves the
// request (acquired, or lost to a conflicting holder) or arms the next CAS
// round. Returns again=true when another round is needed and conflict=true
// when the record is held by a live conflicting owner (or the CAS budget
// ran out racing one). The decision logic matches the serial loop this
// replaces, including the obs lease events.
func (s *stageReq) onCAS(t *Tx, cur uint64, swapped bool, delta uint64) (again, conflict bool) {
	sh := t.e.w.Obs
	if swapped {
		s.finishAcquire(t)
		return false, false
	}
	if clock.IsWriteLocked(cur) {
		return false, true
	}
	end := clock.LeaseEnd(cur)
	now := t.e.w.Node.Clock.Read()
	expired := clock.Expired(end, now, delta)
	if !expired {
		if s.write {
			// Writers (and upgrades) must wait out an unexpired lease.
			return false, true
		}
		// Share the existing unexpired lease (Figure 5).
		sh.Inc(obs.EvLeaseShare)
		s.r.leaseEnd = end
		s.register(t)
		return false, false
	}
	if s.takeover {
		// Lost the takeover race; restart from the free-word CAS.
		s.iters++
		if s.iters >= casRetries {
			return false, true
		}
		s.takeover = false
		if s.write {
			s.old, s.new = clock.Init, clock.WLocked(uint8(t.e.w.Node.ID))
		} else {
			s.old, s.new = clock.Init, clock.Shared(t.leaseEnd)
		}
		return true, false
	}
	// Expired lease observed: take it over in place.
	s.takeover = true
	s.old = cur
	if s.write {
		s.new = clock.WLocked(uint8(t.e.w.Node.ID))
	} else {
		s.new = clock.Shared(t.leaseEnd)
	}
	return true, false
}

// finishAcquire registers a CAS-won acquisition (exclusive lock, fresh
// lease, or in-place upgrade) and queues the record for fetch (the fused
// prefetch posted alongside the winning CAS usually satisfies it in-wave).
func (s *stageReq) finishAcquire(t *Tx) {
	sh := t.e.w.Obs
	if s.takeover {
		sh.Inc(obs.EvLeaseExpire)
	}
	if s.upgrade {
		// The shared lease (or unprotected speculative read) is now an
		// exclusive lock; re-fetch — the buffered value may predate a writer
		// that committed since it was read.
		s.r.write = true
		s.r.leaseEnd = 0
		s.r.spec = false
		sh.Inc(obs.EvLockUpgrade)
		// Half-weight adaptive feedback: an upgrade signals write intent on
		// the bucket, a weaker hotness cue than an actual conflict.
		t.e.feedConflict(s.host, s.node, s.table, s.key, 0.5)
		s.needFetch = true
		return
	}
	if !s.write {
		sh.Inc(obs.EvLeaseGrant)
		s.r.leaseEnd = t.leaseEnd
	}
	s.register(t)
}

// register adds the record to the transaction's staged set so commit and
// abort both cover it, and queues the fetch READ.
func (s *stageReq) register(t *Tx) {
	t.rIndex[s.k] = s.r
	t.remotes = append(t.remotes, s.r)
	s.needFetch = true
}
