package tx

import (
	"fmt"

	"drtm/internal/clock"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// casRetries bounds lock/lease CAS rounds per record before the acquisition
// is declared lost to a conflicting racer.
const casRetries = 8

// Batched Start phase (REMOTE_READ / REMOTE_WRITE of Figure 5, pipelined).
//
// The serial path paid ~3 round trips per remote record: lookup READ(s),
// lock/lease CAS, prefetch READ — each blocking on the fabric. This file
// splits staging into gather/issue/complete over the rdma async verb
// engine: independent records' verbs of the same stage are posted together
// and polled as doorbell batches, so an N-record Start phase costs roughly
// max-of-round-trips per stage instead of the sum. Dependent verbs (a
// record's CAS after its lookup, a takeover CAS after seeing an expired
// lease) still order across polls, exactly as completions gate reposting on
// a real QP.
//
// The per-record lock/lease decision logic is the same state machine as the
// serial loop it replaces; conflicts and node failures are detected per
// completion and resolve after the wave is fully processed, so every lock
// that was actually acquired is registered and released on abort.

// Access declares one record access for batched staging.
type Access struct {
	Table int
	Key   uint64
	Write bool
}

// Stage declares a set of accesses at once. Local records are declared for
// the HTM region; remote records run the batched gather/issue/complete
// pipeline, overlapping their lookup READs, lock/lease CASes and prefetch
// READs across records. Semantically equivalent to calling R/W per access.
func (t *Tx) Stage(accs ...Access) error {
	var reqs []*stageReq
	var seen map[refKey]*stageReq
	for _, a := range accs {
		node := t.home(a.Table, a.Key)
		if node == t.e.w.Node.ID {
			t.declareLocal(a.Table, a.Key, a.Write)
			continue
		}
		write := a.Write || t.e.rt.NoReadLease
		k := refKey{a.Table, a.Key}
		if seen == nil {
			seen = make(map[refKey]*stageReq, len(accs))
		}
		if s, ok := seen[k]; ok {
			if write && !s.write {
				s.write = true // strengthen before issue: free upgrade
			}
			continue
		}
		s, err := t.gatherRemote(a.Table, a.Key, node, write)
		if err != nil {
			return err
		}
		if s != nil {
			seen[k] = s
			reqs = append(reqs, s)
		}
	}
	if len(reqs) == 0 {
		return nil
	}
	return t.stageBatch(reqs)
}

// stageRemote stages one remote record — the serial entry point kept for
// R/W and Probe.Stage; a batch of one runs the same pipeline.
func (t *Tx) stageRemote(table int, key uint64, node int, write bool) error {
	s, err := t.gatherRemote(table, key, node, write)
	if err != nil || s == nil {
		return err
	}
	return t.stageBatch([]*stageReq{s})
}

// stageReq is one remote record's slot in the staging pipeline.
type stageReq struct {
	k     refKey
	node  int
	table int
	key   uint64
	write bool

	host  *kvs.Table
	cache kvs.Cache
	r     *remoteRec

	// upgrade marks a record already staged with a shared lease that now
	// needs an exclusive lock: the pipeline CASes the lease word to the lock
	// word in place (release is implicit — an unupgraded lease just expires).
	upgrade bool

	lr       kvs.LookupReq
	loc      kvs.Loc
	stateOff memory.Offset

	// Lock/lease acquisition state machine: the (old, new) pair armed for
	// the next CAS round, whether that CAS is an expired-lease takeover, and
	// how many takeover rounds were lost to racers.
	old, new  uint64
	takeover  bool
	iters     int
	acquired  bool
	needFetch bool
	entryWR   *rdma.WR
}

// gatherRemote dedupes one remote access against the staged set and builds
// its pipeline request; a nil request means the access is already satisfied.
func (t *Tx) gatherRemote(table int, key uint64, node int, write bool) (*stageReq, error) {
	k := refKey{table, key}
	if r, ok := t.rIndex[k]; ok {
		if !write || r.write {
			return nil, nil
		}
		return &stageReq{
			k: k, node: r.node, table: table, key: key, write: true,
			host:  t.e.rt.C.Node(r.node).Unordered(table),
			cache: t.e.cacheFor(r.node, table),
			r:     r, upgrade: true,
		}, nil
	}
	meta := t.e.rt.Meta(table)
	if meta.Kind == Ordered {
		return nil, fmt.Errorf("tx: remote access to ordered table %d must be shipped (Section 6.5)", table)
	}
	return &stageReq{
		k: k, node: node, table: table, key: key, write: write,
		host:  t.e.rt.C.Node(node).Unordered(table),
		cache: t.e.cacheFor(node, table),
	}, nil
}

// stageBatch runs the three pipelined stages — location lookup, lock/lease
// acquisition, value prefetch — for all requests, polling each stage's
// outstanding verbs as doorbell batches.
func (t *Tx) stageBatch(reqs []*stageReq) error {
	startv := int64(t.e.w.VClock.Now())
	defer func() { t.vLock += int64(t.e.w.VClock.Now()) - startv }()
	sh := t.e.w.Obs
	sq := t.e.sendq()

	// ---- lookup: batched bucket-chain walks --------------------------------
	lstart := int64(t.e.w.VClock.Now())
	lookups := 0
	for _, s := range reqs {
		if s.upgrade {
			// Location known from the staged record.
			s.loc = kvs.Loc{Off: s.r.off, Lossy: s.r.lossy}
			s.stateOff = kvs.StateOffset(s.r.off)
			continue
		}
		s.lr = kvs.LookupReq{Table: s.host, Cache: s.cache, Key: s.key}
		lookups++
	}
	if lookups > 0 {
		lreqs := make([]*kvs.LookupReq, 0, lookups)
		for _, s := range reqs {
			if !s.upgrade {
				lreqs = append(lreqs, &s.lr)
			}
		}
		kvs.LookupBatch(sq, lreqs)
	}
	notFound := false
	for _, s := range reqs {
		if s.upgrade {
			continue
		}
		if s.lr.Err != nil {
			sh.Observe(obs.PhaseLookupRemote, int64(t.e.w.VClock.Now())-lstart)
			return t.nodeDown()
		}
		if !s.lr.Found {
			notFound = true
			continue
		}
		s.loc = s.lr.Loc
		s.stateOff = kvs.StateOffset(s.loc.Off)
		s.r = &remoteRec{
			table: s.table, node: s.node, key: s.key,
			off: s.loc.Off, lossy: s.loc.Lossy, write: s.write,
		}
	}
	sh.Observe(obs.PhaseLookupRemote, int64(t.e.w.VClock.Now())-lstart)
	if notFound {
		t.releaseLocks()
		return ErrNotFound
	}

	// ---- acquire: batched lock/lease CAS rounds ----------------------------
	astart := int64(t.e.w.VClock.Now())
	me := uint8(t.e.w.Node.ID)
	delta := t.e.rt.C.Delta()
	for _, s := range reqs {
		switch {
		case s.upgrade:
			s.old, s.new = clock.Shared(s.r.leaseEnd), clock.WLocked(me)
		case s.write:
			s.old, s.new = clock.Init, clock.WLocked(me)
		default:
			s.old, s.new = clock.Init, clock.Shared(t.leaseEnd)
		}
	}
	active := append([]*stageReq(nil), reqs...)
	conflict, down := false, false
	wrs := make([]*rdma.WR, 0, len(active))
	for len(active) > 0 && !conflict && !down {
		wrs = wrs[:0]
		for _, s := range active {
			wrs = append(wrs, sq.PostCAS(s.node, s.table, s.stateOff, s.old, s.new))
		}
		sq.Poll()
		next := active[:0]
		for i, s := range active {
			wr := wrs[i]
			cur, swapped, err := wr.Prev, wr.Swapped, wr.Err
			if err != nil {
				// Re-attempt with the bounded sync retry policy, matching
				// the serial path's casRemote.
				cur, swapped, err = t.casRemote(s.node, s.table, s.stateOff, s.old, s.new)
				if err != nil {
					down = true
					continue
				}
			}
			again, conf := s.onCAS(t, cur, swapped, delta)
			if conf {
				conflict = true
			} else if again {
				next = append(next, s)
			}
		}
		active = next
	}
	sh.Observe(obs.PhaseAcquireRemote, int64(t.e.w.VClock.Now())-astart)
	if down {
		return t.nodeDown()
	}
	if conflict {
		return t.remoteConflict()
	}

	// ---- prefetch: batched entry READs -------------------------------------
	pstart := int64(t.e.w.VClock.Now())
	fetches := 0
	for _, s := range reqs {
		if s.needFetch {
			s.entryWR = s.host.PostEntryRead(sq, s.loc)
			fetches++
		}
	}
	if fetches > 0 {
		sq.Poll()
	}
	stale := false
	for _, s := range reqs {
		if s.entryWR == nil {
			continue
		}
		if s.entryWR.Err != nil {
			down = true
			continue
		}
		e, ok := s.host.DecodeEntry(s.entryWR.Dst, s.key, s.loc)
		if !ok {
			// Stale location (deleted/reused entry): explicitly drop the
			// cached chain so the retry re-resolves it, then retry the txn.
			s.host.Invalidate(s.cache, s.key)
			stale = true
			continue
		}
		s.r.buf = append(s.r.buf[:0], e.Value...)
		s.r.version = e.Version
	}
	sh.Observe(obs.PhasePrefetchRemote, int64(t.e.w.VClock.Now())-pstart)
	if down {
		return t.nodeDown()
	}
	if stale {
		return t.fail()
	}
	return nil
}

// onCAS consumes one lock/lease CAS completion: it either resolves the
// request (acquired, or lost to a conflicting holder) or arms the next CAS
// round. Returns again=true when another round is needed and conflict=true
// when the record is held by a live conflicting owner (or the CAS budget
// ran out racing one). The decision logic matches the serial loop this
// replaces, including the obs lease events.
func (s *stageReq) onCAS(t *Tx, cur uint64, swapped bool, delta uint64) (again, conflict bool) {
	sh := t.e.w.Obs
	if swapped {
		s.finishAcquire(t)
		return false, false
	}
	if clock.IsWriteLocked(cur) {
		return false, true
	}
	end := clock.LeaseEnd(cur)
	now := t.e.w.Node.Clock.Read()
	expired := clock.Expired(end, now, delta)
	if !expired {
		if s.write {
			// Writers (and upgrades) must wait out an unexpired lease.
			return false, true
		}
		// Share the existing unexpired lease (Figure 5).
		sh.Inc(obs.EvLeaseShare)
		s.r.leaseEnd = end
		s.register(t)
		return false, false
	}
	if s.takeover {
		// Lost the takeover race; restart from the free-word CAS.
		s.iters++
		if s.iters >= casRetries {
			return false, true
		}
		s.takeover = false
		if s.write {
			s.old, s.new = clock.Init, clock.WLocked(uint8(t.e.w.Node.ID))
		} else {
			s.old, s.new = clock.Init, clock.Shared(t.leaseEnd)
		}
		return true, false
	}
	// Expired lease observed: take it over in place.
	s.takeover = true
	s.old = cur
	if s.write {
		s.new = clock.WLocked(uint8(t.e.w.Node.ID))
	} else {
		s.new = clock.Shared(t.leaseEnd)
	}
	return true, false
}

// finishAcquire registers a CAS-won acquisition (exclusive lock, fresh
// lease, or in-place upgrade) and queues the record for prefetch.
func (s *stageReq) finishAcquire(t *Tx) {
	sh := t.e.w.Obs
	if s.takeover {
		sh.Inc(obs.EvLeaseExpire)
	}
	if s.upgrade {
		// The shared lease is now an exclusive lock; re-prefetch below — the
		// buffered value may predate a writer that took over the old lease.
		s.r.write = true
		s.r.leaseEnd = 0
		sh.Inc(obs.EvLockUpgrade)
		s.needFetch = true
		return
	}
	if !s.write {
		sh.Inc(obs.EvLeaseGrant)
		s.r.leaseEnd = t.leaseEnd
	}
	s.register(t)
}

// register adds the record to the transaction's staged set so commit and
// abort both cover it, and queues the prefetch READ.
func (s *stageReq) register(t *Tx) {
	t.rIndex[s.k] = s.r
	t.remotes = append(t.remotes, s.r)
	s.needFetch = true
}
