package tx

import (
	"fmt"

	"drtm/internal/kvs"
	"drtm/internal/obs"
)

// ReadPolicy selects the concurrency-control arm used for remote READ-set
// records (writes always take exclusive locks). It replaces the accreted
// boolean knobs (`SpeculativeReads`, `NoReadLease`) with one typed choice:
//
//	PolicyLease       — shared lease via RDMA CAS (~14.5µs modeled), the
//	                    paper's Section 4.2 protocol. Safe under any
//	                    contention; pays the CAS on every read.
//	PolicySpeculative — one-RTT OCC read (~1.5µs READ), validated at commit
//	                    with a version re-READ wave. ~3.3x cheaper when the
//	                    record is quiet; loses whole-transaction retries to
//	                    validation failures when writers hit it.
//	PolicyAdaptive    — per-bucket online choice between the two arms: a
//	                    conflict-EWMA heat table (obs.HeatMap) classifies
//	                    each kvs bucket hot or cold with hysteresis, and
//	                    every remote read routes lease-when-hot,
//	                    spec-when-cold, re-classifying continuously as the
//	                    workload shifts.
//	PolicyExclusive   — reads take exclusive write locks (the Figure 17
//	                    "no read lease" ablation): no read-read sharing.
//
// The zero value PolicyDefault resolves to PolicyLease at the tx layer
// (keeping Runtime's zero value semantics), or to PolicyExclusive when the
// legacy Runtime.NoReadLease ablation flag is set. The drtm package maps an
// unset Options.ReadPolicy to PolicyAdaptive — adaptive is the user-facing
// default.
//
// The software fallback path always uses locks regardless of policy: its
// in-place updates cannot be rolled back, so optimistic reads are unsound
// there (see fallback.go).
type ReadPolicy int

const (
	// PolicyDefault is the unset zero value; see ReadPolicy.
	PolicyDefault ReadPolicy = iota
	// PolicyLease always takes lease-based shared locks for remote reads.
	PolicyLease
	// PolicySpeculative always takes one-RTT OCC reads for remote reads.
	PolicySpeculative
	// PolicyAdaptive chooses per bucket: lease when hot, spec when cold.
	PolicyAdaptive
	// PolicyExclusive locks remote reads exclusively (ablation arm).
	PolicyExclusive
	// PolicyMVCC serves read-only transactions from version chains at a
	// cluster-wide snapshot stamp: one entry+chain READ per key, no lease
	// CAS, no confirm wave (see mvcc.go). Read-write transactions under
	// PolicyMVCC use the lease arm — chains only serve reads. Requires
	// cluster.Config.MVCCDepth > 0; with chains disabled the RO layer runs
	// the confirm-wave scheme instead.
	PolicyMVCC
)

func (p ReadPolicy) String() string {
	switch p {
	case PolicyDefault:
		return "default"
	case PolicyLease:
		return "lease"
	case PolicySpeculative:
		return "spec"
	case PolicyAdaptive:
		return "adaptive"
	case PolicyExclusive:
		return "exclusive"
	case PolicyMVCC:
		return "mvcc"
	}
	return fmt.Sprintf("ReadPolicy(%d)", int(p))
}

// Valid reports whether p is one of the defined policies.
func (p ReadPolicy) Valid() bool {
	return p >= PolicyDefault && p <= PolicyMVCC
}

// PolicyConfig tunes PolicyAdaptive's heat table. The zero value of any
// field selects its default.
type PolicyConfig struct {
	// EWMAHalfLife is the conflict EWMA's half-life in bucket accesses
	// (default 64): after that many conflict-free routed reads a bucket's
	// heat halves. Access-clocked (not wall-clocked) so classification is
	// independent of host speed.
	EWMAHalfLife int

	// HotThreshold is the heat at which a cold bucket turns hot and reads
	// switch to the lease arm (default 8.0). Steady-state heat is
	// conflictsPerAccess · EWMAHalfLife / ln 2, so with the defaults a
	// bucket goes hot when roughly 1 in 12 recent accesses conflicted.
	// The threshold is deliberately high: a lease costs a ~14.5µs CAS per
	// read and stalls writers for the lease term, which only pays off once
	// speculative retries start compounding toward livelock.
	HotThreshold float64

	// Hysteresis is the fraction of HotThreshold a hot bucket must decay
	// below before reverting to the spec arm (default 0.5, i.e. exit at
	// half the entry heat), preventing near-threshold buckets from
	// flapping between arms.
	Hysteresis float64

	// HeatSlots sizes the heat table (rounded up to a power of two,
	// default 4096 slots ≈ 32 KiB). kvs buckets hash onto slots; colliding
	// buckets merge their heat, erring toward the conservative lease arm.
	HeatSlots int

	// MVCCScanFanout is the read-only Scan fanout (requested row count) at
	// which PolicyAdaptive routes the whole transaction to the MVCC
	// snapshot arm instead of the confirm-wave scheme (default 32): wide
	// scans amortize the one entry+chain READ per row against the
	// confirm wave's per-row re-validation READ plus its abort-retry tail.
	// Point reads and narrow scans keep the speculative arm.
	MVCCScanFanout int

	// MVCCHotFanout replaces MVCCScanFanout when the scanned range's heat
	// slot is classified hot (default 8): on a write-hot range the
	// confirm-wave scan keeps failing validation, so snapshot isolation
	// pays off at much smaller fanouts.
	MVCCHotFanout int
}

// DefaultPolicyConfig returns the adaptive tuning defaults.
func DefaultPolicyConfig() PolicyConfig {
	return PolicyConfig{EWMAHalfLife: 64, HotThreshold: 8.0, Hysteresis: 0.5, HeatSlots: 4096,
		MVCCScanFanout: 32, MVCCHotFanout: 8}
}

// normalized fills zero fields with defaults and clamps nonsense.
func (c PolicyConfig) normalized() PolicyConfig {
	d := DefaultPolicyConfig()
	if c.EWMAHalfLife <= 0 {
		c.EWMAHalfLife = d.EWMAHalfLife
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = d.HotThreshold
	}
	if c.Hysteresis <= 0 || c.Hysteresis >= 1 {
		c.Hysteresis = d.Hysteresis
	}
	if c.HeatSlots <= 0 {
		c.HeatSlots = d.HeatSlots
	}
	if c.MVCCScanFanout <= 0 {
		c.MVCCScanFanout = d.MVCCScanFanout
	}
	if c.MVCCHotFanout <= 0 {
		c.MVCCHotFanout = d.MVCCHotFanout
	}
	return c
}

func (c PolicyConfig) newHeatMap() *obs.HeatMap {
	n := c.normalized()
	return obs.NewHeatMap(n.HeatSlots, n.EWMAHalfLife,
		n.HotThreshold, n.HotThreshold*n.Hysteresis)
}

// SetPolicyConfig replaces the adaptive tuning and rebuilds the heat table
// (all buckets reset to cold). Call before starting workers; the table
// itself is race-safe but the swap is not synchronized against executors.
func (rt *Runtime) SetPolicyConfig(c PolicyConfig) {
	rt.policyCfg = c.normalized()
	rt.heat = rt.policyCfg.newHeatMap()
}

// PolicyCfg returns the normalized adaptive tuning in effect.
func (rt *Runtime) PolicyCfg() PolicyConfig { return rt.policyCfg }

// HotBuckets returns the number of heat-table slots currently classified
// hot (diagnostic; the stats layer derives the same gauge from the
// arm-switch counters).
func (rt *Runtime) HotBuckets() int { return rt.heat.HotCount() }

// ResetHeat clears the heat table to all-cold (benchmark warm-up resets).
func (rt *Runtime) ResetHeat() { rt.heat.Reset() }

// heatKey packs a record's home (node, table, main bucket) into the heat
// table's key space. The bucket — not the key — is the classification
// granularity: one hot key heats its whole chain, which is the same
// granularity at which its neighbors already share lookup READs.
func heatKey(node, table int, bucket uint64) uint64 {
	return bucket ^ uint64(table+1)<<40 ^ uint64(node+1)<<52
}

// resolvePolicy computes the effective read policy for a new transaction:
// the per-transaction override if set (ExecWith), else the runtime-wide
// policy, with the legacy NoReadLease ablation mapping to PolicyExclusive.
func (e *Executor) resolvePolicy() ReadPolicy {
	if p := e.override; p != PolicyDefault {
		return p
	}
	if e.rt.NoReadLease {
		return PolicyExclusive
	}
	if p := e.rt.ReadPolicy; p != PolicyDefault {
		return p
	}
	return PolicyLease
}

// ExecWith is Exec with the read policy forced to p for every attempt of
// this one transaction, overriding the runtime-wide policy — e.g. a
// read-mostly scan forcing PolicySpeculative regardless of heat.
func (e *Executor) ExecWith(p ReadPolicy, build func(t *Tx) error) error {
	prev := e.override
	e.override = p
	defer func() { e.override = prev }()
	return e.Exec(build)
}

// ExecROWith is ExecRO with the read policy forced to p (PolicyExclusive
// behaves as PolicyLease: read-only transactions never take write locks).
func (e *Executor) ExecROWith(p ReadPolicy, build func(ro *RO) error) error {
	prev := e.override
	e.override = p
	defer func() { e.override = prev }()
	return e.ExecRO(build)
}

// routeRead decides the arm for one remote read under the transaction's
// policy. For PolicyAdaptive this is the routing hot path: one decayed
// heat-table access classifies the record's bucket, counting the route and
// any hot/cold transition (and tracing the transition when enabled).
func (e *Executor) routeRead(p ReadPolicy, host *kvs.Table, node, table int, key uint64) (spec bool) {
	switch p {
	case PolicySpeculative:
		return true
	case PolicyAdaptive:
	default:
		return false
	}
	hot, sw := e.rt.heat.Touch(heatKey(node, table, host.BucketOf(key)))
	sh := e.w.Obs
	if sw != 0 {
		e.noteSwitch(node, table, host.BucketOf(key), hot)
	}
	if hot {
		sh.Inc(obs.EvAdaptLease)
		return false
	}
	sh.Inc(obs.EvAdaptSpec)
	return true
}

// feedConflict adds conflict heat to a record's bucket — the adaptive
// selector's feedback path, called on spec validation failures, lease CAS
// conflicts and lock upgrades. Cheap (one CAS on a 32 KiB table) and only
// taken on conflict events, but skipped entirely unless the runtime-wide
// policy is adaptive: static arms should not accrete classification state.
func (e *Executor) feedConflict(host *kvs.Table, node, table int, key uint64, weight float64) {
	if e.rt.ReadPolicy != PolicyAdaptive {
		return
	}
	bucket := host.BucketOf(key)
	_, sw := e.rt.heat.Conflict(heatKey(node, table, bucket), weight)
	if sw != 0 {
		e.noteSwitch(node, table, bucket, true)
	}
}

// noteSwitch counts one bucket reclassification and records it in the
// trace ring (Kind = TraceArmSwitch; TxID carries the packed heat key).
func (e *Executor) noteSwitch(node, table int, bucket uint64, hot bool) {
	sh := e.w.Obs
	if hot {
		sh.Inc(obs.EvArmSwitchToLease)
	} else {
		sh.Inc(obs.EvArmSwitchToSpec)
	}
	if sh.TraceEnabled() {
		sh.Trace(obs.TraceEvent{
			Kind: obs.TraceArmSwitch, TxID: heatKey(node, table, bucket),
			Node: int32(e.w.Node.ID), Worker: int32(e.w.ID),
			Hot: hot, StartNS: int64(e.w.VClock.Now()),
		})
	}
}
