package tx

import (
	"errors"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/nvram"
	"drtm/internal/rdma"
)

// FaRM-style commit-backup, transaction side. After the serialization point
// (XEND on the HTM path; the post-lease-confirm point on the fallback path,
// with every lock still held), the transaction's whole write-set is encoded
// as one redo record and appended to a redo log on every backup of every
// touched partition — one-sided log-append WRITEs pushed through the async
// verb engine as a single doorbell wave per destination set, acked by
// polling the wave, before any lock releases or any in-place update becomes
// remotely observable.
//
// Every update carries the view epoch the transaction observed at declare
// time. The backup's sink fences stale epochs (rdma.ErrFenced), so a zombie
// ex-primary cannot smuggle a pre-failover write-set into a post-failover
// log. Updates to partitions that are themselves running promoted (owner !=
// home) are not re-replicated — a promoted partition is single-copy until
// the crashed home returns (documented limitation, DESIGN.md).

// replicate ships the HTM path's write-set (local WAL captures + dirty
// remote records) to the backups. Called between XEND and commitRemotes; an
// error means the transaction must not publish (only possible when this
// machine itself died mid-commit).
func (t *Tx) replicate() error {
	rt := t.e.rt
	if rt.C.ReplicationFactor() == 0 {
		return nil
	}
	ups := t.redoUps[:0]
	for i := range t.walLocal {
		u := &t.walLocal[i]
		if w, ok := t.replView(u.part); ok {
			ups = append(ups, nvram.RedoUpdate{
				Part: u.part, Epoch: cluster.ViewEpoch(w), Table: u.ltable,
				Key: u.key, Version: u.version, Inc: u.inc, Val: u.val,
				Stamp: t.commitStamp,
			})
		}
	}
	for _, r := range t.remotes {
		if !r.write || (!r.dirty && !r.erase) {
			continue
		}
		if w, ok := t.replView(r.part); ok {
			u := nvram.RedoUpdate{
				Part: r.part, Epoch: cluster.ViewEpoch(w), Table: r.table,
				Key: r.key, Version: r.version + 1, Val: r.buf,
				Stamp: t.commitStamp,
			}
			switch {
			case r.insert, r.erase:
				u.Inc = r.inc + 1 // the committed flip
			case r.ordered:
				u.Inc = r.inc
			}
			if r.erase {
				u.Val = nil // the flip to dead carries no value
			}
			ups = append(ups, u)
		}
	}
	t.redoUps = ups
	if len(ups) == 0 {
		return nil
	}
	rt.stampRedoGens(ups)
	if err := t.appendRedo(ups); err != nil {
		return t.nodeDown()
	}
	return nil
}

// replicateFallback is replicate for the software fallback path: the
// write-set lives in the fallback record set. The caller releases the
// fallback locks on error.
func (t *Tx) replicateFallback(fb *fallbackCtx) error {
	rt := t.e.rt
	if rt.C.ReplicationFactor() == 0 {
		return nil
	}
	ups := t.redoUps[:0]
	for _, r := range fb.recs {
		if !r.write || (!r.dirty && !r.erase) {
			continue
		}
		if w, ok := t.replView(r.part); ok {
			u := nvram.RedoUpdate{
				Part: r.part, Epoch: cluster.ViewEpoch(w), Table: r.table,
				Key: r.key, Version: r.version + 1, Val: r.buf,
				Stamp: t.commitStamp,
			}
			switch {
			case r.insert, r.erase:
				u.Inc = r.inc + 1
			case r.ordered:
				u.Inc = r.inc
			}
			if r.erase {
				u.Val = nil
			}
			ups = append(ups, u)
		}
	}
	t.redoUps = ups
	if len(ups) == 0 {
		return nil
	}
	rt.stampRedoGens(ups)
	return t.appendRedo(ups)
}

// stampRedoGens stamps every update with its key's current delete
// generation, under the same lock the generation bumps take. Runs after the
// serialization point; remote records' exclusive locks are still held, so no
// delete of them can race in. (A deferred delete of a LOCAL record can slip
// into the tiny XEND→stamp window — the residual of modeling deletes as
// shipped ops rather than transactional writes; see applyRedoTo.)
func (rt *Runtime) stampRedoGens(ups []nvram.RedoUpdate) {
	rt.redoMu.Lock()
	for i := range ups {
		ups[i].Gen = rt.delGen[delKey{ups[i].Part, ups[i].Table, ups[i].Key}]
	}
	rt.redoMu.Unlock()
}

// replView returns the view word an update of part should be stamped with
// (the one observed at declare) and whether the update replicates at all:
// replicated tables (part < 0) and promoted partitions (single-copy until
// their home returns) do not.
func (t *Tx) replView(part int) (uint64, bool) {
	if part < 0 {
		return 0, false
	}
	w, ok := t.views[part]
	if !ok {
		w = t.e.rt.C.View(part)
	}
	if cluster.ViewOwner(w) != part {
		return 0, false
	}
	return w, true
}

// appendRedo encodes ups once and appends the record to every backup of
// every touched partition: one posted log-append WR per destination, one
// poll for the wave. Returns ErrNodeDown only when this machine itself is
// the crashed one — the transaction then drops whole (its write-backs are
// dropped by the zombie guards too, and any append that did land is replayed
// by failover, which re-commits it everywhere).
func (t *Tx) appendRedo(ups []nvram.RedoUpdate) error {
	e := t.e
	rt := e.rt
	c := rt.C
	self := e.w.Node.ID

	dsts := t.redoDst[:0]
	for i := range ups {
		if i > 0 && ups[i].Part == ups[i-1].Part {
			continue // same partition, same backups
		}
		t.redoBk = c.Backups(t.redoBk[:0], ups[i].Part)
		for _, b := range t.redoBk {
			seen := false
			for _, d := range dsts {
				if d == b {
					seen = true
					break
				}
			}
			if !seen {
				dsts = append(dsts, b)
			}
		}
	}
	t.redoDst = dsts

	rec := nvram.EncodeRedo(t.redoBuf, t.txid, ups)
	t.redoBuf = rec
	region := cluster.RedoLogRegion(self, e.w.ID)
	sq := e.sendq()
	wrs := e.activeWR[:0]
	for _, b := range dsts {
		wrs = append(wrs, sq.PostLogAppend(b, region, rec))
	}
	e.activeWR = wrs
	sq.Poll()

	landed := 0
	dying := false
	retargeted := false
	for i, wr := range wrs {
		b := dsts[i]
		err := wr.Err
		if err != nil && errors.Is(err, rdma.ErrTimeout) {
			err = e.verbRetry(func() error {
				return e.w.QP.TryLogAppend(b, region, rec)
			})
		}
		switch {
		case err == nil:
			landed++
			sink := c.RedoSinkAt(b, self, e.w.ID)
			if sink.BytesUsed() >= cluster.CheckpointWords*8 {
				t.triggerCheckpoint(b)
			}
		case errors.Is(err, rdma.ErrFenced):
			// A promotion raced into the XEND→append window: the record
			// carries a now-stale epoch. The transaction is already past its
			// serialization point, so retarget instead of aborting — apply
			// the updates directly to the partitions' current owners
			// (version-guarded, so double-apply against another surviving
			// log's replay is harmless).
			if !retargeted {
				for j := range ups {
					rt.applyRedoUpdate(ups[j])
				}
				retargeted = true
			}
		case errors.Is(err, rdma.ErrNodeUnreachable) && e.zombie():
			dying = true
		default:
			// The backup is down (or persistently timing out): degraded
			// replication. The partition keeps running on its remaining
			// copies; re-replication on membership change is future work.
		}
	}
	if dying && landed == 0 {
		// This machine crashed mid-commit and no append made it out: drop
		// the transaction whole. Its write-backs are dropped by the zombie
		// guards, its locks freed by failover's lock-ahead pass, and its
		// local effects die with the machine's volatile state.
		return ErrNodeDown
	}
	// If the machine is dying but at least one append landed, the
	// transaction commits: failover's crashed-sender drain replays the full
	// write-set from any surviving log, so acking it here is safe — the
	// FaRM rule that one reachable log tail is enough to finish a commit.
	return nil
}

// triggerCheckpoint asks backup b to apply and truncate this worker's redo
// log there (its ring crossed the checkpoint threshold). Best-effort: a dead
// backup's ring is either drained by failover or lost with the backup.
func (t *Tx) triggerCheckpoint(b int) {
	e := t.e
	m := redoCkptMsg{Sender: e.w.Node.ID, Worker: e.w.ID}
	_, _ = e.w.QP.Call(b, cluster.Msg{Type: msgRedoCheckpoint, Body: m}, 16, 8)
}

// drainCheckpoint runs on backup n: apply the (sender, worker) redo log to
// n's replica shards and truncate it — FaRM's "backups consume their logs
// with their own CPUs", keeping promotion's replay tail short. Updates for
// partitions n does not back up (full write-set records) and for promoted
// partitions are skipped; their copies are maintained elsewhere.
func (rt *Runtime) drainCheckpoint(n *cluster.Node, sender, worker int) {
	if rt.C.ReplicationFactor() == 0 {
		return
	}
	sink := rt.C.RedoSinkAt(n.ID, sender, worker)
	sink.Drain(func(rec []uint64) {
		_, ups, ok := nvram.DecodeRedo(rec)
		if !ok {
			return
		}
		for i := range ups {
			u := ups[i]
			if !rt.C.IsBackup(n.ID, u.Part) || rt.C.OwnerOf(u.Part) != u.Part {
				continue
			}
			region := cluster.ReplicaRegion(u.Part, u.Table)
			if rt.Meta(u.Table).Kind == Ordered {
				if o, ok := n.OrderedRegion(region); ok {
					rt.applyRedoOrdered(o, u)
				}
				continue
			}
			rt.applyRedoTo(n.Unordered(region), u)
		}
	})
}

// applyRedoUpdate applies one redo update to the copy currently serving its
// partition (the home primary, or the promoted backup's replica region after
// failover). Version-guarded and therefore idempotent; returns whether the
// value was written. Skipped when the current owner is itself down.
func (rt *Runtime) applyRedoUpdate(u nvram.RedoUpdate) bool {
	owner := rt.C.OwnerOf(u.Part)
	if rt.C.Fabric.NodeDown(owner) {
		return false
	}
	region := u.Table
	if owner != u.Part {
		region = cluster.ReplicaRegion(u.Part, u.Table)
	}
	if rt.Meta(u.Table).Kind == Ordered {
		o, ok := rt.C.Node(owner).OrderedRegion(region)
		if !ok {
			return false
		}
		return rt.applyRedoOrdered(o, u)
	}
	return rt.applyRedoTo(rt.C.Node(owner).Unordered(region), u)
}

// applyRedoTo applies one redo update to a specific table copy: value and
// version are written iff the logged version is newer. The whole
// check-then-write runs under redoMu: rings drain concurrently (two rings on
// one backup can hold successive versions of the same key when different
// sender workers committed them, and Failover's crashed-sender replay can
// race a checkpoint drain), so without the lock an interleaved pair of
// drains could publish the older value under the newer version word — a lost
// update that the version guard would then freeze in place forever.
//
// A missing key is never re-inserted. Replica shards mirror the primary's
// membership — seeded at load, inserts and deletes shipped synchronously to
// every copy (execStoreOp) — so a miss means the key was deleted after this
// record was logged, and re-inserting would resurrect it. The
// delete-generation guard catches the delete-then-reinsert variant of the
// same staleness, where the key exists again but this record's value
// predates the delete (the reinserted entry restarts at version 0, so the
// version guard alone cannot tell).
// applyRedoOrdered is applyRedoTo for ordered-table copies. Same guards
// (generation, never-resurrect, version), plus incarnation handling: the
// drain adopts the logged incarnation's PARITY, not its counter — each
// copy's incarnation counter advances independently (a replica's dead slot
// may have cycled a different number of times), so only liveness is
// meaningful across copies. Erase flips (even Inc) carry no value.
func (rt *Runtime) applyRedoOrdered(o *kvs.Ordered, u nvram.RedoUpdate) bool {
	rt.redoMu.Lock()
	defer rt.redoMu.Unlock()
	if u.Gen < rt.delGen[delKey{u.Part, u.Table, u.Key}] {
		return false // logged before a removal of the key: stale
	}
	off, ok := o.Lookup(u.Key)
	if !ok {
		return false // removed since the append; never resurrect
	}
	arena := o.Arena()
	cur := arena.LoadWord(kvs.IncVerOffset(off))
	if kvs.Version(cur) >= u.Version {
		return false
	}
	newInc := kvs.Incarnation(cur)
	if kvs.Live(u.Inc) != kvs.Live(newInc) {
		newInc++
	}
	// Retire the superseded replica version into the copy's own chain (under
	// redoMu; tail-first, value and head after) so a promoted backup keeps
	// serving snapshot reads across failover.
	kvs.RetireLocal(arena, off, o.ValueWords(), o.ChainDepth(),
		u.Stamp, kvs.PackIncVer(newInc, u.Version))
	if len(u.Val) > 0 {
		arena.Write(kvs.ValueOffset(off), u.Val)
	}
	arena.Write(kvs.IncVerOffset(off), []uint64{kvs.PackIncVer(newInc, u.Version)})
	return true
}

func (rt *Runtime) applyRedoTo(host *kvs.Table, u nvram.RedoUpdate) bool {
	rt.redoMu.Lock()
	defer rt.redoMu.Unlock()
	if u.Gen < rt.delGen[delKey{u.Part, u.Table, u.Key}] {
		return false // logged before a delete of the key: stale
	}
	off, ok := host.LookupLocal(u.Key)
	if !ok {
		return false // deleted since the append; never resurrect
	}
	arena := host.Arena()
	cur := arena.LoadWord(kvs.IncVerOffset(off))
	if kvs.Version(cur) >= u.Version {
		return false
	}
	// Retire the superseded replica version into the copy's own chain (under
	// redoMu; tail-first, value and head after).
	kvs.RetireLocal(arena, off, host.ValueWords(), host.ChainDepth(),
		u.Stamp, kvs.PackIncVer(kvs.Incarnation(cur), u.Version))
	arena.Write(kvs.ValueOffset(off), u.Val)
	arena.Write(kvs.IncVerOffset(off),
		[]uint64{kvs.PackIncVer(kvs.Incarnation(cur), u.Version)})
	return true
}
