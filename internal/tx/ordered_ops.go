package tx

// Transactional inserts, erases and point accesses for ordered tables, plus
// the declared secondary-index maintenance that rides them (see DESIGN.md,
// "Range scans & secondary indexes").
//
// An insert is split DrTM-style: the structural half (making the key
// present in the tree as a DEAD entry) happens at declare time through the
// host's latched store — kvs.Ordered.EnsureDead — and the visible half (the
// incarnation flip to live, plus the value) commits atomically with the
// transaction: inside the HTM region for local entries
// (applyLocalStructural), or as the lock-protected write-back of a staged
// remote record (commitRemotes). An erase mirrors this: the flip to dead
// commits with the transaction and the physical tree removal is deferred to
// applyRemovals, after every lock has dropped.
//
// Secondary indexes are maintained inside the same commit: WInsert/Erase
// stage the base row AND every declared index row, so the flips land in one
// HTM region (or under one fallback lock set, taken in global (table, key)
// order like every other fallback lock).
//
// Remote ordered accesses have no one-sided lookup path (Section 6.5): the
// index walk ships to the host over SEND/RECV verbs, which returns the
// entry offset; locking, prefetching, validation and write-back then use
// the same one-sided verbs as unordered records, since the entry layout is
// identical.

import (
	"errors"
	"fmt"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// Verbs message types for ordered-store operations (3..6; 1..2 are in
// handlers.go).
const (
	// msgOrderedLookup resolves a key to its entry offset via the host's
	// B+ tree (the shipped half of a remote ordered point access).
	msgOrderedLookup = 3
	// msgEnsureEntry makes a key structurally present as a DEAD entry on
	// the host (the declare half of a remote transactional insert).
	msgEnsureEntry = 4
	// msgRangeScan runs a stamped range collection on the host.
	msgRangeScan = 5
	// msgRemoveDead physically unlinks a committed erase's dead entry.
	msgRemoveDead = 6
	// msgMVCCScan runs a snapshot-stamped range resolution on the host
	// (the MVCC read arm's remote scan; see mvcc.go).
	msgMVCCScan = 7
)

type orderedLookupMsg struct {
	Region int
	Key    uint64
}

type orderedLookupResp struct {
	Off   memory.Offset
	Found bool
}

type ensureEntryMsg struct {
	Region int
	Table  int
	Part   int
	Key    uint64
}

type rangeScanMsg struct {
	Region int
	Lo, Hi uint64
	Limit  int
}

// scanRowWire is one in-range entry in a range-scan reply. Val is nil for
// dead entries (returned only as validation anchors).
type scanRowWire struct {
	Key    uint64
	Off    memory.Offset
	IncVer uint64
	Val    []uint64
}

type rangeScanResp struct {
	Segs   []int
	Stamps []uint64
	Rows   []scanRowWire
	Busy   bool // a row stayed write-locked through the stability retries
}

type removeDeadMsg struct {
	Region int
	Table  int
	Part   int
	Key    uint64
	// DeadIncVer is the erased entry's expected incarnation|version (see
	// removalOp); 0 accepts any dead entry (legacy callers).
	DeadIncVer uint64
}

func clusterMsg(typ int, body any) cluster.Msg { return cluster.Msg{Type: typ, Body: body} }

// structOp is a local structural half staged by WInsert/Erase: the entry at
// off was observed with exactly (inc, version); the commit flips it live
// (insert) or dead (erase) inside the HTM region after re-verifying that
// observation.
type structOp struct {
	table  int
	region int
	part   int
	key    uint64
	off    memory.Offset
	inc    uint32
	ver    uint32
	// val is the value to publish for inserts; for erases, the value
	// observed at declare (logged to the WAL/redo stream with the flip).
	val []uint64
}

// removalOp schedules the post-commit physical removal of an erased entry.
// deadIncVer is the exact incarnation|version the erase's flip published:
// the unlink verifies it so that a removal deferred behind the MVCC
// snapshot floor can never unlink a LATER death of the same key — one whose
// stamp exceeds the floor the op was admitted under, and whose chain an
// in-flight snapshot read may still owe. (A re-insert between queue and
// drain bumps the incarnation, so a stale op simply no-ops.)
type removalOp struct {
	node       int
	region     int
	table      int
	part       int
	key        uint64
	deadIncVer uint64
}

// installOrderedHandlers wires the ordered-store verbs handlers on every
// node (called next to installStoreHandlers).
func (rt *Runtime) installOrderedHandlers() {
	for i := 0; i < rt.C.Nodes(); i++ {
		n := rt.C.Node(i)
		n.Handle(msgOrderedLookup, func(from int, body any) any {
			m := body.(orderedLookupMsg)
			o, ok := n.OrderedRegion(m.Region)
			if !ok {
				return fmt.Errorf("tx: node %d has no ordered region %d", n.ID, m.Region)
			}
			off, found := o.Lookup(m.Key)
			return orderedLookupResp{Off: off, Found: found}
		})
		n.Handle(msgEnsureEntry, func(from int, body any) any {
			m := body.(ensureEntryMsg)
			off, err := rt.execEnsureEntry(n, m)
			if err != nil {
				return err
			}
			return off
		})
		n.Handle(msgRangeScan, func(from int, body any) any {
			m := body.(rangeScanMsg)
			return rt.execRangeScan(n, m)
		})
		n.Handle(msgRemoveDead, func(from int, body any) any {
			m := body.(removeDeadMsg)
			rt.execRemoveDead(n, m)
			return nil
		})
		n.Handle(msgMVCCScan, func(from int, body any) any {
			m := body.(mvccScanMsg)
			return rt.execMVCCScan(n, m)
		})
	}
}

// execEnsureEntry performs the structural half of an insert on the host's
// shard and, when the host is the partition's home primary, mirrors the
// structural presence to every backup's replica shard (so a promotion sees
// the entry; the incarnation flip itself converges through the redo
// stream). A backup already holding the key is fine — ErrExists there means
// present, which is all the mirror needs — and a full backup degrades to an
// unmirrored entry rather than failing the insert.
func (rt *Runtime) execEnsureEntry(n *cluster.Node, m ensureEntryMsg) (memory.Offset, error) {
	o, ok := n.OrderedRegion(m.Region)
	if !ok {
		return 0, fmt.Errorf("tx: node %d has no ordered region %d", n.ID, m.Region)
	}
	repl := m.Part >= 0 && rt.C.ReplicationFactor() > 0 && m.Region == m.Table &&
		rt.C.OwnerOf(m.Part) == m.Part
	if repl {
		rt.redoMu.Lock()
		defer rt.redoMu.Unlock()
	}
	off, err := o.EnsureDead(m.Key)
	if err != nil {
		return 0, err
	}
	if repl {
		rt.bkScr = rt.C.Backups(rt.bkScr[:0], m.Part)
		for _, b := range rt.bkScr {
			rep, ok := rt.C.Node(b).OrderedRegion(cluster.ReplicaRegion(m.Part, m.Table))
			if !ok {
				continue
			}
			if _, rerr := rep.EnsureDead(m.Key); rerr != nil &&
				!errors.Is(rerr, kvs.ErrExists) && !errors.Is(rerr, kvs.ErrFull) {
				return 0, rerr
			}
		}
	}
	return off, nil
}

// execRangeScan is the host side of a remote scan: the same stamped
// collection collectScanLocal runs locally.
func (rt *Runtime) execRangeScan(n *cluster.Node, m rangeScanMsg) any {
	o, ok := n.OrderedRegion(m.Region)
	if !ok {
		return fmt.Errorf("tx: node %d has no ordered region %d", n.ID, m.Region)
	}
	arena := o.Arena()
	var resp rangeScanResp
	resp.Segs = o.SegSpan(nil, m.Lo, m.Hi)
	resp.Stamps = make([]uint64, 0, len(resp.Segs))
	for _, s := range resp.Segs {
		resp.Stamps = append(resp.Stamps, arena.LoadWord(kvs.SegStampOffset(s)))
	}
	vw := o.ValueWords()
	live := 0
	var vals []uint64
	o.Scan(m.Lo, m.Hi, func(k uint64, off memory.Offset) bool {
		vals = vals[:0]
		incver, isLive, ok := stableScanEntry(arena, off, vw, &vals)
		if !ok {
			resp.Busy = true
			return false
		}
		row := scanRowWire{Key: k, Off: off, IncVer: incver}
		if isLive {
			row.Val = append([]uint64(nil), vals...)
			live++
		}
		resp.Rows = append(resp.Rows, row)
		return m.Limit <= 0 || live < m.Limit
	})
	return resp
}

// execRemoveDead physically unlinks a dead entry on the host — the deferred
// second half of a committed erase — and mirrors the removal to the
// backups' replica shards. Best-effort by design: a busy state word (the
// slot is being resurrected or leased) or a re-inserted key simply leaves
// the dead entry for a later pass; scans skip dead entries either way. The
// delete-generation bump happens here, atomically with the removal under
// redoMu, so a lagging redo update can never land on a recycled slot (whose
// version restarts at 0).
func (rt *Runtime) execRemoveDead(n *cluster.Node, m removeDeadMsg) {
	o, ok := n.OrderedRegion(m.Region)
	if !ok {
		return
	}
	repl := m.Part >= 0 && rt.C.ReplicationFactor() > 0
	if repl {
		rt.redoMu.Lock()
		defer rt.redoMu.Unlock()
	}
	if !removeDeadEntry(o, m.Key, uint8(n.ID), m.DeadIncVer) {
		return
	}
	if repl {
		rt.delGen[delKey{m.Part, m.Table, m.Key}]++
	}
	if repl && m.Region == m.Table && rt.C.OwnerOf(m.Part) == m.Part {
		rt.bkScr = rt.C.Backups(rt.bkScr[:0], m.Part)
		for _, b := range rt.bkScr {
			rep, ok := rt.C.Node(b).OrderedRegion(cluster.ReplicaRegion(m.Part, m.Table))
			if !ok {
				continue
			}
			// The replica's own parity may lag the primary's (it converges
			// via redo): a still-live replica row is deleted outright, a
			// dead one unlinked like the primary's.
			if roff, found := rep.Lookup(m.Key); found {
				if kvs.Live(kvs.Incarnation(rep.Arena().LoadWord(kvs.IncVerOffset(roff)))) {
					rep.Delete(m.Key)
				} else {
					removeDeadEntry(rep, m.Key, uint8(b), m.DeadIncVer)
				}
			}
		}
	}
}

// removeDeadEntry locks, re-verifies and unlinks one dead entry. A nonzero
// want pins the unlink to one specific death: the entry must still carry
// exactly that incarnation|version, so a stale (queued) removal op can
// never unlink a later death of the same key. The freed slot's state word
// is intentionally left write-locked — an ABA guard against in-flight
// one-sided CASes aimed at the old occupant; Insert and EnsureDead
// re-initialize the state word when the slot is reused.
func removeDeadEntry(o *kvs.Ordered, key uint64, owner uint8, want uint64) bool {
	off, ok := o.Lookup(key)
	if !ok {
		return false
	}
	arena := o.Arena()
	if _, ok := arena.CAS(kvs.StateOffset(off), clock.Init, clock.WLocked(owner)); !ok {
		return false
	}
	incver := arena.LoadWord(kvs.IncVerOffset(off))
	if arena.LoadWord(off+kvs.EntryKeyWord) != key || kvs.Live(kvs.Incarnation(incver)) ||
		(want != 0 && incver != want) {
		arena.StoreWord(kvs.StateOffset(off), clock.Init)
		return false
	}
	if !o.RemoveEntry(key, off) {
		arena.StoreWord(kvs.StateOffset(off), clock.Init)
		return false
	}
	return true
}

// WInsert stages a transactional insert of (key, val) into an ordered base
// table AND of the matching row into every secondary index declared over
// it. All rows become live atomically at commit; on abort the staged dead
// entries simply linger until reused or removed. Returns kvs.ErrExists when
// the base key (or an index key — a workload uniqueness bug) is already
// live.
func (t *Tx) WInsert(table int, key uint64, val []uint64) error {
	if err := t.insertOne(table, key, val); err != nil {
		return err
	}
	for _, spec := range t.e.rt.indexesOf(table) {
		ival := make([]uint64, t.e.rt.Meta(spec.Table).ValueWords)
		ival[0] = key
		if err := t.insertOne(spec.Table, spec.Key(key, val), ival); err != nil {
			return err
		}
		t.e.w.Obs.Inc(obs.EvIndexMaint)
	}
	return nil
}

// Erase stages a transactional delete of an ordered base row and of its row
// in every declared secondary index (computed from the value observed at
// declare — re-verified at commit, so a racing update retries the whole
// transaction rather than unhooking the wrong index key). Returns the base
// row's value as observed. The physical tree removals run after commit
// (applyRemovals).
func (t *Tx) Erase(table int, key uint64) ([]uint64, error) {
	old, err := t.eraseOne(table, key)
	if err != nil {
		return nil, err
	}
	for _, spec := range t.e.rt.indexesOf(table) {
		if _, ierr := t.eraseOne(spec.Table, spec.Key(key, old)); ierr != nil {
			if errors.Is(ierr, ErrNotFound) {
				// The base row was live but its index row is gone: the
				// index diverged from the base table. Surface loudly — the
				// divergence audit pins this.
				panic(fmt.Sprintf("tx: index table %d missing row for base table %d key %d",
					spec.Table, table, key))
			}
			return nil, ierr
		}
		t.e.w.Obs.Inc(obs.EvIndexMaint)
	}
	return old, nil
}

func (t *Tx) insertOne(table int, key uint64, val []uint64) error {
	meta := t.e.rt.Meta(table)
	if meta.Kind != Ordered {
		panic(fmt.Sprintf("tx: WInsert into unordered table %d (use Local.Insert)", table))
	}
	if len(val) != meta.ValueWords {
		panic(fmt.Sprintf("tx: WInsert value length %d, want %d", len(val), meta.ValueWords))
	}
	node, region, part := t.e.route(table, key)
	t.stampView(part)
	if node == t.e.w.Node.ID {
		return t.declareLocalInsert(table, region, part, key, val)
	}
	return t.stageOrderedInsert(table, node, region, part, key, val)
}

func (t *Tx) eraseOne(table int, key uint64) ([]uint64, error) {
	meta := t.e.rt.Meta(table)
	if meta.Kind != Ordered {
		panic(fmt.Sprintf("tx: Erase from unordered table %d (use Local.Delete)", table))
	}
	node, region, part := t.e.route(table, key)
	t.stampView(part)
	if node == t.e.w.Node.ID {
		return t.declareLocalErase(table, region, part, key)
	}
	return t.stageOrderedErase(table, node, region, part, key)
}

// declareLocalInsert runs the structural half on this node's shard and
// records the flip for applyLocalStructural. The slot is NOT locked between
// declare and commit: the in-region re-verification of (key, inc, version)
// plus HTM enrollment of those words makes the flip atomic anyway, and a
// lost race surfaces as abortCodeStale → whole-transaction retry, whose
// re-staging then reports ErrExists.
func (t *Tx) declareLocalInsert(table, region, part int, key uint64, val []uint64) error {
	e := t.e
	e.charge(e.model().BTreeOpNS)
	off, err := e.rt.execEnsureEntry(e.w.Node, ensureEntryMsg{
		Region: region, Table: table, Part: part, Key: key})
	if err != nil {
		return err // kvs.ErrExists (key live) or kvs.ErrFull
	}
	o := e.w.Node.Ordered(region)
	incver := o.Arena().LoadWord(kvs.IncVerOffset(off))
	t.localIns = append(t.localIns, structOp{table: table, region: region, part: part,
		key: key, off: off, inc: kvs.Incarnation(incver), ver: kvs.Version(incver),
		val: append([]uint64(nil), val...)})
	return nil
}

// declareLocalErase resolves a live local row, snapshots its value, and
// records the flip-to-dead plus the deferred physical removal.
func (t *Tx) declareLocalErase(table, region, part int, key uint64) ([]uint64, error) {
	e := t.e
	e.charge(e.model().BTreeOpNS)
	o := e.w.Node.Ordered(region)
	off, ok := o.Lookup(key)
	if !ok {
		return nil, ErrNotFound
	}
	arena := o.Arena()
	vals := make([]uint64, 0, o.ValueWords())
	incver, live, stable := stableScanEntry(arena, off, o.ValueWords(), &vals)
	if !stable {
		return nil, t.remoteConflict()
	}
	if !live {
		return nil, ErrNotFound
	}
	t.localErase = append(t.localErase, structOp{table: table, region: region, part: part,
		key: key, off: off, inc: kvs.Incarnation(incver), ver: kvs.Version(incver),
		val: vals})
	t.removals = append(t.removals, removalOp{node: e.w.Node.ID, region: region,
		table: table, part: part, key: key,
		deadIncVer: kvs.PackIncVer(kvs.Incarnation(incver)+1, kvs.Version(incver)+1)})
	return vals, nil
}

// stageOrderedInsert is the remote structural half: ship EnsureDead, then
// CAS-lock the dead slot and verify it one-sided. The locked slot cannot be
// recycled or resurrected under us, so commitRemotes can flip it live with
// a plain release-phase write.
func (t *Tx) stageOrderedInsert(table, node, region, part int, key uint64, val []uint64) error {
	e := t.e
	var resp any
	err := e.verbRetry(func() error {
		var cerr error
		resp, cerr = e.w.QP.Call(node, clusterMsg(msgEnsureEntry,
			ensureEntryMsg{Region: region, Table: table, Part: part, Key: key}), 40, 16)
		return cerr
	})
	if err != nil {
		return t.nodeDown()
	}
	if herr, ok := resp.(error); ok {
		if errors.Is(herr, kvs.ErrExists) || errors.Is(herr, kvs.ErrFull) {
			return herr
		}
		return t.nodeDown()
	}
	off := resp.(memory.Offset)
	// Full Figure 5 acquisition, not a bare Init CAS: the slot may carry an
	// expired lease from a previous live incarnation, which must be taken
	// over rather than treated as a permanent conflict.
	if _, won, aerr := t.acquireOrderedState(node, region, off, true); aerr != nil {
		return t.nodeDown()
	} else if !won {
		return t.remoteConflict()
	}
	// Verify under the lock: same key, still dead. A recycled slot means
	// our resolution is stale — retry from Start.
	hdr := make([]uint64, 2) // key, incver
	if err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, off+kvs.EntryKeyWord, hdr)
	}); err != nil {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return t.nodeDown()
	}
	if hdr[0] != key {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return t.fail()
	}
	if kvs.Live(kvs.Incarnation(hdr[1])) {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return kvs.ErrExists
	}
	// Chained tables: capture the locked slot's tail stamp so the commit can
	// retire the dead pre-insert version and raise its stamp above it.
	var prevTail uint64
	if depth := e.chainDepthAt(node, region); depth > 0 {
		vw := e.rt.Meta(table).ValueWords
		tw := make([]uint64, 1)
		if err := e.verbRetry(func() error {
			return e.w.QP.TryRead(node, region,
				kvs.TailOffset(off, vw, depth)+kvs.TailStampWord, tw)
		}); err != nil {
			e.mustUnlock(node, region, kvs.StateOffset(off))
			return t.nodeDown()
		}
		prevTail = tw[0]
	}
	r := e.getRec()
	r.table, r.node, r.key = table, node, key
	r.region, r.part = region, part
	r.off, r.write, r.dirty = off, true, true
	r.ordered, r.insert = true, true
	r.prevTail = prevTail
	r.inc, r.version = kvs.Incarnation(hdr[1]), kvs.Version(hdr[1])
	r.buf = append(r.buf[:0], val...)
	t.rIndex[refKey{table, key}] = r
	t.remotes = append(t.remotes, r)
	return nil
}

// stageOrderedErase locks a live remote row, fetches its value, and stages
// the flip-to-dead (committed by commitRemotes) plus the deferred removal.
func (t *Tx) stageOrderedErase(table, node, region, part int, key uint64) ([]uint64, error) {
	e := t.e
	off, found, err := t.e.orderedLookupRemote(node, region, key)
	if err != nil {
		return nil, t.nodeDown()
	}
	if !found {
		return nil, ErrNotFound
	}
	// Figure 5 acquisition (not a bare Init CAS): rows previously read under
	// the RO scheme keep their expired lease stamp in the state word, and an
	// erase must take that over like any other writer.
	if _, won, cerr := t.acquireOrderedState(node, region, off, true); cerr != nil {
		return nil, t.nodeDown()
	} else if !won {
		return nil, t.remoteConflict()
	}
	vw := e.rt.Meta(table).ValueWords
	// Chained tables fetch the full entry image: the extra words carry the
	// tail stamp the commit's retire needs, in the same post-lock READ.
	depth := e.chainDepthAt(node, region)
	words := make([]uint64, kvs.EntryImageWords(vw, depth))
	if err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, off, words)
	}); err != nil {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return nil, t.nodeDown()
	}
	if words[kvs.EntryKeyWord] != key {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return nil, t.fail() // slot recycled under a stale lookup
	}
	incver := words[kvs.EntryIncVerWord]
	if !kvs.Live(kvs.Incarnation(incver)) {
		e.mustUnlock(node, region, kvs.StateOffset(off))
		return nil, ErrNotFound
	}
	val := append([]uint64(nil), words[kvs.EntryValueWord:kvs.EntryValueWord+vw]...)
	r := e.getRec()
	r.table, r.node, r.key = table, node, key
	r.region, r.part = region, part
	r.off, r.write = off, true
	r.ordered, r.erase = true, true
	if depth > 0 {
		r.prevTail = words[int(kvs.TailOffset(0, vw, depth))+kvs.TailStampWord]
	}
	r.inc, r.version = kvs.Incarnation(incver), kvs.Version(incver)
	r.buf = append(r.buf[:0], val...)
	t.rIndex[refKey{table, key}] = r
	t.remotes = append(t.remotes, r)
	t.removals = append(t.removals, removalOp{node: node, region: region,
		table: table, part: part, key: key,
		deadIncVer: kvs.PackIncVer(r.inc+1, r.version+1)})
	return val, nil
}

// orderedLookupRemote ships a point lookup to the host's tree.
func (e *Executor) orderedLookupRemote(node, region int, key uint64) (memory.Offset, bool, error) {
	e.charge(e.model().BTreeOpNS)
	var resp any
	err := e.verbRetry(func() error {
		var cerr error
		resp, cerr = e.w.QP.Call(node, clusterMsg(msgOrderedLookup,
			orderedLookupMsg{Region: region, Key: key}), 24, 24)
		return cerr
	})
	if err != nil {
		return 0, false, err
	}
	lr, ok := resp.(orderedLookupResp)
	if !ok {
		if herr, isErr := resp.(error); isErr {
			return 0, false, herr
		}
		return 0, false, rdma.ErrNodeUnreachable
	}
	return lr.Off, lr.Found, nil
}

// stageOrderedPoint stages a remote ordered point access (Tx.R/W): shipped
// lookup, then the same lock/lease/speculative arms as unordered records —
// the entry layout is shared, so the one-sided verbs work unchanged.
// PolicyAdaptive routes ordered reads to the lease arm (its heat table is
// keyed by hash buckets, which ordered shards do not have).
func (t *Tx) stageOrderedPoint(table int, key uint64, node, region, part int, write bool) error {
	e := t.e
	off, found, err := t.e.orderedLookupRemote(node, region, key)
	if err != nil {
		return t.nodeDown()
	}
	if !found {
		t.releaseLocks()
		return ErrNotFound
	}
	spec := !write && t.policy == PolicySpeculative
	vw := e.rt.Meta(table).ValueWords
	// Write stages on chained tables read the full image (the tail stamp
	// feeds the commit-time retire); read stages keep the narrow READ.
	depth := 0
	if write {
		depth = e.chainDepthAt(node, region)
	}
	words := make([]uint64, kvs.EntryImageWords(vw, depth))
	var leaseEnd uint64
	if !spec {
		end, won, aerr := t.acquireOrderedState(node, region, off, write)
		if aerr != nil {
			return t.nodeDown()
		}
		if !won {
			return t.remoteConflict()
		}
		leaseEnd = end
	}
	if rerr := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, off, words)
	}); rerr != nil {
		if write {
			e.mustUnlock(node, region, kvs.StateOffset(off))
		}
		return t.nodeDown()
	}
	incver := words[kvs.EntryIncVerWord]
	if words[kvs.EntryKeyWord] != key {
		if write {
			e.mustUnlock(node, region, kvs.StateOffset(off))
		}
		return t.fail() // recycled under a stale lookup
	}
	// On the spec arm, check the lock before liveness: a write-locked row
	// is mid-flip and "dead" is not yet a stable answer (with a lock or
	// lease held, writers are excluded and dead means stably dead).
	if spec && clock.IsWriteLocked(words[kvs.EntryStateWord]) {
		return t.remoteConflict() // mid-commit: the value may be torn
	}
	if !kvs.Live(kvs.Incarnation(incver)) {
		if write {
			e.mustUnlock(node, region, kvs.StateOffset(off))
		}
		t.releaseLocks()
		return ErrNotFound
	}
	if spec {
		e.w.Obs.Inc(obs.EvSpecRead)
	}
	r := e.getRec()
	r.table, r.node, r.key = table, node, key
	r.region, r.part = region, part
	r.off, r.write, r.spec = off, write, spec
	r.ordered = true
	r.leaseEnd = leaseEnd
	if depth > 0 {
		r.prevTail = words[int(kvs.TailOffset(0, vw, depth))+kvs.TailStampWord]
	}
	r.inc, r.version = kvs.Incarnation(incver), kvs.Version(incver)
	r.buf = append(r.buf[:0], words[kvs.EntryValueWord:kvs.EntryValueWord+vw]...)
	t.rIndex[refKey{table, key}] = r
	t.remotes = append(t.remotes, r)
	return nil
}

// acquireOrderedState runs the Figure 5 lock/lease state machine on one
// entry's state word (the serial analogue of stage.go's onCAS).
func (t *Tx) acquireOrderedState(node, region int, off memory.Offset, write bool) (leaseEnd uint64, won bool, err error) {
	e := t.e
	sh := e.w.Obs
	delta := e.rt.C.Delta()
	want := clock.WLocked(uint8(e.w.Node.ID))
	if !write {
		want = clock.Shared(t.leaseEnd)
	}
	old := clock.Init
	takeover := false
	for i := 0; i < casRetries; i++ {
		cur, ok, cerr := t.casRemote(node, region, kvs.StateOffset(off), old, want)
		if cerr != nil {
			return 0, false, cerr
		}
		if ok {
			if takeover {
				sh.Inc(obs.EvLeaseExpire)
			}
			if !write {
				sh.Inc(obs.EvLeaseGrant)
			}
			return t.leaseEnd, true, nil
		}
		if clock.IsWriteLocked(cur) {
			return 0, false, nil
		}
		end := clock.LeaseEnd(cur)
		if !clock.Expired(end, e.w.Node.Clock.Read(), delta) {
			if write {
				return 0, false, nil // wait out the lease via whole-txn retry
			}
			sh.Inc(obs.EvLeaseShare)
			return end, true, nil
		}
		old, takeover = cur, true
	}
	return 0, false, nil
}

// upgradeOrdered promotes an already-staged ordered read (lease or
// speculative) to an exclusive lock in place, then re-fetches the value.
func (t *Tx) upgradeOrdered(r *remoteRec) error {
	e := t.e
	old := clock.Init // a speculative read holds nothing
	if !r.spec {
		old = clock.Shared(r.leaseEnd)
	}
	cur, won, err := t.casRemote(r.node, r.region, kvs.StateOffset(r.off),
		old, clock.WLocked(uint8(e.w.Node.ID)))
	if err != nil {
		return t.nodeDown()
	}
	if !won && !r.spec && clock.Expired(clock.LeaseEnd(cur), e.w.Node.Clock.Read(), e.rt.C.Delta()) {
		// Our shared lease expired under us; a fresh exclusive acquisition
		// may still win.
		_, won, err = t.casRemote(r.node, r.region, kvs.StateOffset(r.off),
			clock.Init, clock.WLocked(uint8(e.w.Node.ID)))
		if err != nil {
			return t.nodeDown()
		}
	}
	if !won {
		return t.remoteConflict()
	}
	e.w.Obs.Inc(obs.EvLockUpgrade)
	vw := e.rt.Meta(r.table).ValueWords
	// The post-upgrade re-fetch is a write stage: on chained tables it reads
	// the full image so the commit-time retire knows the tail stamp.
	depth := e.chainDepthAt(r.node, r.region)
	words := make([]uint64, kvs.EntryImageWords(vw, depth))
	if rerr := e.verbRetry(func() error {
		return e.w.QP.TryRead(r.node, r.region, r.off, words)
	}); rerr != nil {
		e.mustUnlock(r.node, r.region, kvs.StateOffset(r.off))
		return t.nodeDown()
	}
	r.write, r.spec, r.leaseEnd = true, false, 0
	if words[kvs.EntryKeyWord] != r.key || !kvs.Live(kvs.Incarnation(words[kvs.EntryIncVerWord])) {
		return t.fail() // releaseLocks covers the fresh lock
	}
	if depth > 0 {
		r.prevTail = words[int(kvs.TailOffset(0, vw, depth))+kvs.TailStampWord]
	}
	r.inc = kvs.Incarnation(words[kvs.EntryIncVerWord])
	r.version = kvs.Version(words[kvs.EntryIncVerWord])
	r.buf = append(r.buf[:0], words[kvs.EntryValueWord:kvs.EntryValueWord+vw]...)
	return nil
}

// applyLocalStructural commits the local structural halves inside the HTM
// region: each staged insert/erase re-verifies its exact declare-time
// observation (key, incarnation|version, unlocked state — all enrolled in
// the read set) and flips the incarnation. Runs after validateScans (the
// flips change incver words scans recorded) and before the WAL write.
func (t *Tx) applyLocalStructural(htx *htm.Txn) {
	if len(t.localIns) == 0 && len(t.localErase) == 0 {
		return
	}
	n := t.e.w.Node
	model := t.e.model()
	for i := range t.localIns {
		op := &t.localIns[i]
		t.flipStructural(htx, n.Ordered(op.region), op, true)
		t.e.charge(model.HTMPerWriteNS * int64(len(op.val)+1))
	}
	for i := range t.localErase {
		op := &t.localErase[i]
		t.flipStructural(htx, n.Ordered(op.region), op, false)
		t.e.charge(model.HTMPerWriteNS)
	}
}

func (t *Tx) flipStructural(htx *htm.Txn, o *kvs.Ordered, op *structOp, insert bool) {
	arena := o.Arena()
	if htx.Read(arena, op.off+kvs.EntryKeyWord) != op.key {
		htx.Abort(abortCodeStale)
	}
	if htx.Read(arena, kvs.IncVerOffset(op.off)) != kvs.PackIncVer(op.inc, op.ver) {
		htx.Abort(abortCodeStale)
	}
	s := htx.Read(arena, kvs.StateOffset(op.off))
	if clock.IsWriteLocked(s) {
		htx.Abort(abortCodeLocked)
	}
	if s != clock.Init {
		// A lease landed on the entry since declare; clear it if expired,
		// else wait it out via whole-transaction retry (Figure 6 logic).
		if !clock.Expired(clock.LeaseEnd(s), t.startSoft, t.e.rt.C.Delta()) {
			htx.Abort(abortCodeLocked)
		}
		htx.Write(arena, kvs.StateOffset(op.off), clock.Init)
	}
	// Retire the superseded version — the dead pre-insert slot or the live
	// pre-erase row — into the ring before the flip; sealChains publishes the
	// tail pair with the commit's uniform stamp.
	if depth := o.ChainDepth(); depth > 0 {
		t.retireLocalChain(htx, arena, op.off, o.ValueWords(), depth)
	}
	htx.Write(arena, kvs.IncVerOffset(op.off), kvs.PackIncVer(op.inc+1, op.ver+1))
	if insert {
		htx.WriteN(arena, kvs.ValueOffset(op.off), op.val)
	}
	if t.e.rt.C.Config().Durability || (op.part >= 0 && t.e.rt.C.ReplicationFactor() > 0) {
		t.walLocal = append(t.walLocal, walRec{
			node: t.e.w.Node.ID, table: op.region, off: op.off,
			version: op.ver + 1, inc: op.inc + 1,
			val:    append([]uint64(nil), op.val...),
			ltable: op.table, part: op.part, key: op.key,
		})
	}
}

// applyRemovals physically unlinks every committed erase's dead entry after
// all locks have dropped: directly for local shards, via verbs otherwise; a
// crashed host's removal parks for recovery like any post-commit effect.
// Under MVCC (ChainDepth > 0) the unlink is instead queued behind the
// snapshot floor — a snapshot read below the erase's commit stamp must still
// resolve the dead version from the chain — and drained opportunistically on
// every commit.
func (t *Tx) applyRemovals() {
	mvcc := t.e.rt.C.Config().MVCCDepth > 0
	for _, op := range t.removals {
		if mvcc {
			t.e.rt.queueRemoval(op, t.commitStamp)
		} else {
			t.e.applyRemoveDead(op)
		}
	}
	if mvcc {
		t.e.rt.drainRemovals(t.e)
	}
}

func (e *Executor) applyRemoveDead(op removalOp) {
	m := removeDeadMsg{Region: op.region, Table: op.table, Part: op.part, Key: op.key,
		DeadIncVer: op.deadIncVer}
	e.w.Obs.Inc(obs.EvRemoveDead)
	if op.node == e.w.Node.ID {
		e.rt.execRemoveDead(e.w.Node, m)
		e.charge(e.model().BTreeOpNS)
		return
	}
	for attempt := 0; ; attempt++ {
		_, err := e.w.QP.Call(op.node, clusterMsg(msgRemoveDead, m), 40, 8)
		if err == nil {
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			e.rt.defer_(op.node, func(rt *Runtime) {
				rt.execRemoveDead(rt.C.Node(op.node), m)
			})
			return
		}
		e.faultBackoff(attempt)
	}
}
