package tx

import (
	"errors"
	"fmt"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// The MVCC snapshot arm (PolicyMVCC, and PolicyAdaptive's wide-scan route).
//
// A read-only transaction on this arm takes one cluster-wide snapshot stamp
// S (cluster.SnapshotStamp) and resolves every key to the version current at
// S against the entry's in-line version chain — ONE entry+chain READ per
// key, no lease CAS, no commit-time confirm wave, no segment-stamp scan
// re-validation. The consistency argument is entirely in the stamps:
//
//   - Every commit anywhere in the cluster carries a chain stamp > S (the
//     bracket protocol in cluster/snapshot.go), so no commit can materialize
//     "inside" the snapshot: a multi-row commit is observed all-or-nothing,
//     and in-flight writers never block the reader — resolving past a
//     write-locked head is safe because that writer's stamp exceeds S.
//
//   - Phantom safety for scans needs no stamp re-validation because erased
//     rows stay in the tree as stamped dead versions until the cluster's
//     snapshot floor passes their death stamp (Runtime.drainRemovals): a row
//     the tree walk misses was dead at S, and a row inserted after S
//     resolves to a dead version (or truncates to the fallback). The reader
//     registers S (Worker.BeginSnapshotRead) before walking so the removal
//     gate cannot unlink a dead row out from under it.
//
//   - Torn images (arena reads are only per-line consistent) are caught by
//     the head/tail incver check inside kvs.ResolveAtStamp; writers publish
//     tail-first, head-last (kvs/layout.go).
//
// When a chain cannot answer — truncated below S (the ring wrapped, or an
// entry predates stamping) or a torn image — the whole Exec falls back to
// the PR-8 confirm-wave scheme (errMVCCFallback), counted in
// obs.EvMVCCFallback. The arm never retries a chain in place: that would be
// the second wave it exists to avoid.

// errMVCCFallback aborts an MVCC attempt whose chains could not serve the
// snapshot; ExecRO retries under the confirm-wave scheme.
var errMVCCFallback = errors.New("tx: version chain unresolvable at snapshot, falling back")

// enterMVCC switches this attempt onto the snapshot arm: registers against
// the removal gate, then takes the cluster-wide stamp. Returns false when
// chains are disabled cluster-wide.
//
// The register-then-read order closes a race with a concurrent
// drainRemovals: register first (pinning the gate's floor at ≤ s0), then
// take the snapshot with a SECOND stamp read. A drain whose active-reader
// scan missed the registration computed its floor from a stamp read that
// precedes our second read, so every row it unlinked died at or below our
// snapshot — invisible at snap anyway; a drain that saw the registration is
// floored at s0 ≤ snap. Taking the single first read as the snapshot would
// let a drain running between the read and the registration unlink a row
// erased just after it — a row the snapshot still owes.
func (ro *RO) enterMVCC() bool {
	if ro.e.rt.C.Config().MVCCDepth <= 0 {
		return false
	}
	c := ro.e.rt.C
	s0 := c.SnapshotStamp()
	ro.e.w.BeginSnapshotRead(s0) // conservative: s0 ≤ snap pins strictly more
	ro.snap = c.SnapshotStamp()
	ro.mvcc = true
	return true
}

// routeScanMVCC is PolicyAdaptive's footprint router: a read-only Scan whose
// requested fanout reaches the configured threshold switches the whole
// transaction onto the MVCC arm — wide scans amortize the per-row chain READ
// against the confirm wave, narrow ones don't. The threshold drops to
// MVCCHotFanout when the range's heat slot is hot (confirm-wave scans on a
// write-hot range burn retries on validation failures). Only a transaction
// with no confirm-wave state yet may switch: one attempt must keep a single
// serialization point.
func (ro *RO) routeScanMVCC(node, table int, lo, hi uint64, limit int) bool {
	if ro.policy != PolicyAdaptive || ro.noMVCC ||
		len(ro.recs) > 0 || len(ro.scans) > 0 {
		return false
	}
	span := hi - lo + 1 // hi ≥ lo checked by Scan; 0 means the full key space
	fanout := int(1) << 30
	if span != 0 && span < 1<<30 {
		fanout = int(span)
	}
	if limit > 0 && limit < fanout {
		fanout = limit
	}
	cfg := ro.e.rt.policyCfg
	threshold := cfg.MVCCScanFanout
	hot, sw := ro.e.rt.heat.Touch(heatKey(node, table, lo>>6))
	if sw != 0 {
		ro.e.noteSwitch(node, table, lo>>6, hot)
	}
	if hot {
		threshold = cfg.MVCCHotFanout
	}
	if fanout < threshold {
		return false
	}
	return ro.enterMVCC()
}

// feedScanHeat heats a failed scan's range slot — the adaptive feedback that
// makes routeScanMVCC drop its threshold to MVCCHotFanout: a range whose
// confirm-wave scans keep failing validation under writes is exactly the one
// the snapshot arm serves without retries. Keyed identically to the router
// (lo>>6) and skipped for static policies, like feedConflict.
func (ro *RO) feedScanHeat(sc *scanRec) {
	if ro.e.rt.ReadPolicy != PolicyAdaptive {
		return
	}
	// Weight by the scan's footprint: one failed validation throws away the
	// whole collected range, so a fanout-32 scan failure is 32 records of
	// wasted work, not one conflict event.
	w := float64(len(sc.rows))
	if w < 1 {
		w = 1
	}
	_, sw := ro.e.rt.heat.Conflict(heatKey(sc.node, sc.table, sc.lo>>6), w)
	if sw != 0 {
		ro.e.noteSwitch(sc.node, sc.table, sc.lo>>6, true)
	}
}

// mvccRead resolves one key at the snapshot stamp: locate the entry (tree or
// hash lookup, local or remote), fetch the whole entry+chain image in one
// READ, resolve with kvs.ResolveAtStamp. A key absent from the index was
// dead at the snapshot too: physical removal is gated on the snapshot floor,
// which our registered stamp pins at or below snap.
func (ro *RO) mvccRead(table int, key uint64) ([]uint64, error) {
	e := ro.e
	sh := e.w.Obs
	mstart := int64(e.w.VClock.Now())
	node, region, part := e.route(table, key)
	ro.stampView(part)
	meta := e.rt.Meta(table)
	vw := meta.ValueWords
	depth := e.chainDepthAt(node, region)
	if depth <= 0 {
		return nil, errMVCCFallback
	}

	var off memory.Offset
	var found bool
	var loc kvs.Loc
	unordered := meta.Kind != Ordered
	if node == e.w.Node.ID {
		if unordered {
			off, found = e.w.Node.Unordered(region).LookupLocal(key)
			e.charge(e.model().HashProbeNS)
		} else {
			off, found = e.w.Node.Ordered(region).Lookup(key)
			e.charge(e.model().BTreeOpNS)
		}
	} else if unordered {
		host := e.rt.C.Node(node).Unordered(region)
		var err error
		loc, found, err = host.LookupRemoteE(e.w.QP, e.cacheFor(node, region), key)
		if err != nil {
			return nil, ErrNodeDown
		}
		off = loc.Off
	} else {
		var err error
		off, found, err = e.orderedLookupRemote(node, region, key)
		if err != nil {
			return nil, ErrNodeDown
		}
	}
	if !found {
		sh.Observe(obs.PhaseMVCC, int64(e.w.VClock.Now())-mstart)
		return nil, ErrNotFound
	}

	img := make([]uint64, kvs.EntryImageWords(vw, depth))
	if node == e.w.Node.ID {
		e.arenaAt(node, region).Read(img, off)
		e.charge(int64(len(img)) * e.model().HTMPerReadNS)
	} else if err := e.verbRetry(func() error {
		return e.w.QP.TryRead(node, region, off, img)
	}); err != nil {
		return nil, ErrNodeDown
	}
	res := kvs.ResolveAtStamp(img, vw, depth, key, ro.snap)
	sh.Observe(obs.PhaseMVCC, int64(e.w.VClock.Now())-mstart)
	switch res.Status {
	case kvs.ResolveCurrent, kvs.ResolveRetired:
		sh.Inc(obs.EvMVCCRead)
		buf := append([]uint64(nil), res.Value...)
		ro.index[refKey{table, key}] = &roRec{table: table, node: node,
			region: region, key: key, off: off, buf: buf}
		return buf, nil
	case kvs.ResolveDead:
		sh.Inc(obs.EvMVCCRead)
		return nil, ErrNotFound
	case kvs.ResolveTruncated:
		sh.Inc(obs.EvMVCCTrunc)
		return nil, errMVCCFallback
	default: // ResolveInconsistent: torn image or a recycled/stale location
		sh.Inc(obs.EvMVCCInconsist)
		if unordered && node != e.w.Node.ID {
			e.rt.C.Node(node).Unordered(region).Invalidate(e.cacheFor(node, region), key)
		}
		return nil, errMVCCFallback
	}
}

// mvccScan is the snapshot arm of RO.Scan: walk the tree for in-range
// offsets, resolve every row's chain at the snapshot stamp, keep the rows
// live at the stamp. No segment-stamp collection and no confirm-time
// re-validation — see the package comment for why dead versions in the
// chain make that sound. Remote ranges ship the stamp to the host
// (msgMVCCScan), which resolves rows in place and returns only values.
func (ro *RO) mvccScan(table, node, region int, lo, hi uint64, limit int) ([]ScanRow, error) {
	e := ro.e
	sh := e.w.Obs
	mstart := int64(e.w.VClock.Now())
	var out []ScanRow
	if node == e.w.Node.ID {
		o := e.w.Node.Ordered(region)
		e.charge(e.model().BTreeOpNS)
		var offs []KeyOff
		o.Scan(lo, hi, func(k uint64, off memory.Offset) bool {
			offs = append(offs, KeyOff{k, off})
			// Dead rows resolve away below, so the walk over-collects: any
			// row may be dead at the stamp. Cap generously rather than
			// exactly; resolution trims to limit.
			return limit <= 0 || len(offs) < 4*limit
		})
		vw := o.ValueWords()
		depth := o.ChainDepth()
		if depth <= 0 {
			return nil, errMVCCFallback
		}
		arena := o.Arena()
		img := make([]uint64, kvs.EntryImageWords(vw, depth))
		for _, ko := range offs {
			arena.Read(img, ko.Off)
			res := kvs.ResolveAtStamp(img, vw, depth, ko.Key, ro.snap)
			switch res.Status {
			case kvs.ResolveCurrent, kvs.ResolveRetired:
				out = append(out, ScanRow{Key: ko.Key, Val: append([]uint64(nil), res.Value...)})
			case kvs.ResolveDead:
				// not present at the snapshot
			case kvs.ResolveTruncated:
				sh.Inc(obs.EvMVCCTrunc)
				return nil, errMVCCFallback
			default:
				sh.Inc(obs.EvMVCCInconsist)
				return nil, errMVCCFallback
			}
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		e.charge(int64(len(offs)*len(img)) * e.model().HTMPerReadNS)
	} else {
		m := mvccScanMsg{Region: region, Lo: lo, Hi: hi, Limit: limit, Stamp: ro.snap}
		resp, err := e.callMVCCScan(node, m, e.rt.Meta(table).ValueWords)
		if err != nil {
			return nil, err
		}
		if resp.Fallback {
			sh.Inc(obs.EvMVCCTrunc)
			return nil, errMVCCFallback
		}
		for _, r := range resp.Rows {
			out = append(out, ScanRow{Key: r.Key, Val: r.Val})
		}
	}
	sh.Observe(obs.PhaseMVCC, int64(e.w.VClock.Now())-mstart)
	sh.Inc(obs.EvScan)
	sh.Inc(obs.EvMVCCRead)
	sh.Add(obs.EvScanRow, int64(len(out)))
	return out, nil
}

// mvccScanMsg ships a snapshot-stamped range collection to the host.
type mvccScanMsg struct {
	Region int
	Lo, Hi uint64
	Limit  int
	Stamp  uint64
}

type mvccScanResp struct {
	Rows []ScanRow
	// Fallback reports a row whose chain could not serve the stamp; the
	// coordinator retries under the confirm-wave scheme.
	Fallback bool
}

// callMVCCScan ships one snapshot range collection over SEND/RECV.
func (e *Executor) callMVCCScan(node int, m mvccScanMsg, vw int) (mvccScanResp, error) {
	respSz := 64 + m.Limit*(1+vw)*8
	if m.Limit <= 0 {
		respSz = 4096
	}
	var resp any
	err := e.verbRetry(func() error {
		var cerr error
		resp, cerr = e.w.QP.Call(node, clusterMsg(msgMVCCScan, m), 40, respSz)
		return cerr
	})
	if err != nil {
		return mvccScanResp{}, ErrNodeDown
	}
	rs, ok := resp.(mvccScanResp)
	if !ok {
		return mvccScanResp{}, ErrNodeDown
	}
	return rs, nil
}

// execMVCCScan is the host side of a remote snapshot scan: the same walk and
// per-row resolution mvccScan runs locally. Resolution happens on the host
// against local memory — the reply carries only the rows live at the stamp,
// not images, so the wire cost matches a plain range scan.
func (rt *Runtime) execMVCCScan(n *cluster.Node, m mvccScanMsg) any {
	o, ok := n.OrderedRegion(m.Region)
	if !ok {
		return fmt.Errorf("tx: node %d has no ordered region %d", n.ID, m.Region)
	}
	vw := o.ValueWords()
	depth := o.ChainDepth()
	var resp mvccScanResp
	if depth <= 0 {
		resp.Fallback = true
		return resp
	}
	arena := o.Arena()
	img := make([]uint64, kvs.EntryImageWords(vw, depth))
	o.Scan(m.Lo, m.Hi, func(k uint64, off memory.Offset) bool {
		arena.Read(img, off)
		res := kvs.ResolveAtStamp(img, vw, depth, k, m.Stamp)
		switch res.Status {
		case kvs.ResolveCurrent, kvs.ResolveRetired:
			resp.Rows = append(resp.Rows,
				ScanRow{Key: k, Val: append([]uint64(nil), res.Value...)})
		case kvs.ResolveDead:
		default:
			resp.Fallback = true
			return false
		}
		return m.Limit <= 0 || len(resp.Rows) < m.Limit
	})
	return resp
}
