package tx

import (
	"drtm/internal/htm"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// Durability logging (Section 4.6, Figure 7).
//
// Log record wire formats (words):
//
//	chopping log:   [txid, info...]
//	lock-ahead log: [txid, n, (node, table, off) x n]
//	write-ahead log:[txid, n, (node, table, off, inc<<32|version, vw, val...) x n]
//
// The inc half of the packed word is the committed incarnation for
// ordered-table rows (live odd, erased even) and 0 for unordered rows, whose
// entries have no liveness; recovery redo applies an ordered row iff the
// packed word exceeds the entry's current incver word.
//
// The `table` slots carry the record's storage region — identical to the
// logical table ID except for replica regions after a failover promotion —
// so recovery resolves arenas without consulting the (possibly changed) view.
//
// The write-ahead log is appended transactionally inside the HTM region
// (nvram.Log.AppendTx), so it exists in NVRAM if and only if the
// transaction's XEND executed — the property recovery relies on to decide
// redo vs. unlock.

// logAheadOfRegion writes the chopping log (when the transaction is a piece
// of a chopped parent) and the lock-ahead log naming every remote record
// this transaction exclusively locked, so recovery can unlock them if we
// crash before commit.
func (t *Tx) logAheadOfRegion() {
	w := t.e.w
	if w.WriteAheadLog == nil {
		return
	}
	model := t.e.model()
	if len(t.choppingInfo) > 0 {
		rec := append([]uint64{t.txid}, t.choppingInfo...)
		w.ChoppingLog.Append(rec)
		w.Obs.Inc(obs.EvLogRecord)
		t.e.charge(int64(model.NVRAMAppend(len(rec) * 8)))
	}
	var locks []uint64
	for _, r := range t.remotes {
		if r.write {
			locks = append(locks, uint64(r.node), uint64(r.region), uint64(r.off))
		}
	}
	if len(locks) == 0 {
		return
	}
	rec := make([]uint64, 0, 2+len(locks))
	rec = append(rec, t.txid, uint64(len(locks)/3))
	rec = append(rec, locks...)
	w.LockAheadLog.Append(rec)
	w.Obs.Inc(obs.EvLogRecord)
	t.e.charge(int64(model.NVRAMAppend(len(rec) * 8)))
}

// walBody serializes the transaction's full update set (local writes plus
// dirty remote writes).
func (t *Tx) walBody() []uint64 {
	var recs []walRec
	recs = append(recs, t.walLocal...)
	for _, r := range t.remotes {
		if !r.write || (!r.dirty && !r.erase) {
			continue
		}
		rec := walRec{
			node: r.node, table: r.region, off: r.off,
			version: r.version + 1, val: r.buf,
		}
		switch {
		case r.insert, r.erase:
			rec.inc = r.inc + 1
		case r.ordered:
			rec.inc = r.inc
		}
		if r.erase {
			rec.val = nil
		}
		recs = append(recs, rec)
	}
	if len(recs) == 0 {
		return nil
	}
	out := []uint64{t.txid, uint64(len(recs))}
	for _, rec := range recs {
		out = append(out, uint64(rec.node), uint64(rec.table), uint64(rec.off),
			uint64(rec.inc)<<32|uint64(rec.version), uint64(len(rec.val)))
		out = append(out, rec.val...)
	}
	return out
}

// logWALTx appends the write-ahead log inside the HTM region: durable iff
// the region commits.
func (t *Tx) logWALTx(htx *htm.Txn) {
	w := t.e.w
	if w.WriteAheadLog == nil {
		return
	}
	body := t.walBody()
	if body == nil {
		return
	}
	if !w.WriteAheadLog.AppendTx(htx, body) {
		panic("tx: write-ahead log full; size LogWords for the run")
	}
	w.Obs.Inc(obs.EvLogRecord)
	t.e.charge(int64(t.e.model().NVRAMAppend(len(body) * 8)))
}

// logFallbackWAL logs updates ahead of the fallback path's in-place
// publication ("DrTM will perform logs ahead of updates for them as in
// normal systems", Section 6.2).
func (t *Tx) logFallbackWAL(fb *fallbackCtx) {
	w := t.e.w
	if w.WriteAheadLog == nil {
		return
	}
	var body []uint64
	var count uint64
	var recs []uint64
	for _, r := range fb.recs {
		if !r.write || (!r.dirty && !r.erase) {
			continue
		}
		var inc uint32
		switch {
		case r.insert, r.erase:
			inc = r.inc + 1
		case r.ordered:
			inc = r.inc
		}
		val := r.buf
		if r.erase {
			val = nil
		}
		count++
		recs = append(recs, uint64(r.node), uint64(r.region), uint64(r.off),
			uint64(inc)<<32|uint64(r.version+1), uint64(len(val)))
		recs = append(recs, val...)
	}
	if count == 0 {
		return
	}
	body = append([]uint64{t.txid, count}, recs...)
	w.WriteAheadLog.Append(body)
	w.Obs.Inc(obs.EvLogRecord)
	t.e.charge(int64(t.e.model().NVRAMAppend(len(body) * 8)))
}

// parseWAL decodes one write-ahead record.
func parseWAL(rec []uint64) (txid uint64, recs []walRec, ok bool) {
	if len(rec) < 2 {
		return 0, nil, false
	}
	txid = rec[0]
	n := int(rec[1])
	i := 2
	for r := 0; r < n; r++ {
		if i+5 > len(rec) {
			return 0, nil, false
		}
		vw := int(rec[i+4])
		if i+5+vw > len(rec) {
			return 0, nil, false
		}
		recs = append(recs, walRec{
			node:    int(rec[i]),
			table:   int(rec[i+1]),
			off:     memory.Offset(rec[i+2]),
			version: uint32(rec[i+3]),
			inc:     uint32(rec[i+3] >> 32),
			val:     append([]uint64(nil), rec[i+5:i+5+vw]...),
		})
		i += 5 + vw
	}
	return txid, recs, true
}

// parseLockAhead decodes one lock-ahead record.
func parseLockAhead(rec []uint64) (txid uint64, locks []lockRef, ok bool) {
	if len(rec) < 2 {
		return 0, nil, false
	}
	txid = rec[0]
	n := int(rec[1])
	if len(rec) < 2+3*n {
		return 0, nil, false
	}
	for i := 0; i < n; i++ {
		locks = append(locks, lockRef{
			node:  int(rec[2+i*3]),
			table: int(rec[2+i*3+1]),
			off:   memory.Offset(rec[2+i*3+2]),
		})
	}
	return txid, locks, true
}

type lockRef struct {
	node, table int
	off         memory.Offset
}
