package tx

// Transactional range scans over ordered tables (the tentpole of the range
// scan + secondary index work; see DESIGN.md, "Range scans & secondary
// indexes").
//
// A scan is collected in the Start phase — before the HTM region — because a
// remote scan ships the index walk to the host over two-sided verbs
// (Section 6.5) and no verbs can run inside a real HTM region. Collection
// records, per ordered shard touched:
//
//   - the segment stamps covering [lo, hi], read BEFORE the tree walk. A
//     stamp is bumped atomically with every tree membership change in its
//     segment (kvs.Ordered), so an unchanged stamp at commit proves no
//     phantom appeared in the scanned range;
//   - every entry in range — dead ones included — with the
//     incarnation|version word observed at collection. Dead entries are
//     invisible to the caller but must still validate: a transactional
//     insert flips an existing dead entry live WITHOUT a structural change,
//     which no stamp records.
//
// Commit-time validation (validateScans) mirrors the speculative read arm:
// a doorbell-batched wave of one-sided re-READs models the wire cost and
// exposes the verbs to fault injection, then authoritative htx reads of the
// same words enroll every stamp and row header in the HTM read set, closing
// the poll→XEND window through emulated strong atomicity. Any mismatch
// aborts with abortCodeScan, a whole-transaction retry.
//
// Scans therefore always ride the optimistic confirm-wave arm regardless of
// the transaction's ReadPolicy — per-row leases over a range would cost one
// CAS per row and defeat the point (the `scan` experiment quantifies this);
// point reads staged by the same transaction keep their configured policy.

import (
	"fmt"

	"drtm/internal/clock"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// ScanRow is one live row returned by a transactional range scan. Val
// aliases transaction-private scratch and is invalid once Exec returns.
type ScanRow struct {
	Key uint64
	Val []uint64
}

// scanRowRec anchors one in-range entry (live or dead) for validation.
type scanRowRec struct {
	key    uint64
	off    memory.Offset
	incver uint64
}

// scanRec records one collected range scan. lo keys the range's heat slot
// (RO confirm failures heat it so the adaptive footprint router lowers its
// MVCC threshold for this range).
type scanRec struct {
	table  int
	node   int
	region int
	lo     uint64
	segs   []int
	stamps []uint64
	rows   []scanRowRec
}

// scanStableRetries bounds per-row re-reads when collection races a writer.
const scanStableRetries = 3

// Scan performs a transactional range read of ordered table rows with keys
// in [lo, hi] ascending, up to limit rows (limit <= 0 means unbounded). It
// is a Start-phase operation like R/W: call it before Execute and hand the
// rows to the body. The whole range must be co-located on one node (the
// partitioner routes by key; workloads encode the partition attribute in
// the high key bits so a logical entity's rows share a shard).
//
// The rows are a consistent snapshot as of the transaction's commit point:
// commit validates that neither the range's membership (segment stamps) nor
// any collected row's version changed since collection, else the
// transaction retries.
func (t *Tx) Scan(table int, lo, hi uint64, limit int) ([]ScanRow, error) {
	if hi < lo {
		return nil, nil
	}
	meta := t.e.rt.Meta(table)
	if meta.Kind != Ordered {
		panic(fmt.Sprintf("tx: Scan of unordered table %d", table))
	}
	node, region, part := t.e.route(table, lo)
	if nodeHi, _, _ := t.e.route(table, hi); nodeHi != node {
		panic(fmt.Sprintf("tx: Scan range [%d, %d] of table %d spans nodes %d and %d; "+
			"partition scans by the routing attribute", lo, hi, table, node, nodeHi))
	}
	t.stampView(part)
	sstart := int64(t.e.w.VClock.Now())
	var rows []ScanRow
	var err error
	if node == t.e.w.Node.ID {
		rows, err = t.collectScanLocal(table, region, lo, hi, limit)
	} else {
		rows, err = t.collectScanRemote(table, node, region, lo, hi, limit)
	}
	sh := t.e.w.Obs
	sh.Observe(obs.PhaseScan, int64(t.e.w.VClock.Now())-sstart)
	if err == nil {
		sh.Inc(obs.EvScan)
		sh.Add(obs.EvScanRow, int64(len(rows)))
	}
	return rows, err
}

// collectScanLocal walks a local ordered shard: stamps first, then the
// latched tree walk, reading each row with the per-entry stability protocol
// (incver, state, value, incver again — an unchanged unlocked header
// brackets a torn-free value).
func (t *Tx) collectScanLocal(table, region int, lo, hi uint64, limit int) ([]ScanRow, error) {
	o := t.e.w.Node.Ordered(region)
	rec := scanRec{table: table, node: t.e.w.Node.ID, region: region}
	out, busy := collectOrderedRange(t.e, o, &rec, lo, hi, limit, &t.scanVals)
	if busy {
		return nil, t.remoteConflict()
	}
	t.scans = append(t.scans, rec)
	return out, nil
}

// collectOrderedRange is the shard-side collection shared by update and
// read-only transactions: stamps first, then the latched tree walk with the
// per-row stability bracket; rows (dead included) land in rec, live values
// in *vals (returned rows alias its tail).
func collectOrderedRange(e *Executor, o *kvs.Ordered, rec *scanRec, lo, hi uint64, limit int, vals *[]uint64) (out []ScanRow, busy bool) {
	e.charge(e.model().BTreeOpNS)
	rec.segs = o.SegSpan(rec.segs, lo, hi)
	arena := o.Arena()
	for _, s := range rec.segs {
		rec.stamps = append(rec.stamps, arena.LoadWord(kvs.SegStampOffset(s)))
	}
	vw := o.ValueWords()
	o.Scan(lo, hi, func(k uint64, off memory.Offset) bool {
		incver, live, ok := stableScanEntry(arena, off, vw, vals)
		if !ok {
			busy = true
			return false
		}
		rec.rows = append(rec.rows, scanRowRec{key: k, off: off, incver: incver})
		if live {
			out = append(out, ScanRow{Key: k, Val: (*vals)[len(*vals)-vw:]})
		}
		return limit <= 0 || len(out) < limit
	})
	e.charge(e.model().HTMPerReadNS * int64(len(rec.rows)*(vw+2)))
	return out, busy
}

// stableScanEntry reads one entry's header and (when live) its value into
// *vals, retrying while a concurrent commit is mid-flight. Returns the
// bracketing incver word, liveness, and whether a stable image was read.
func stableScanEntry(arena *memory.Arena, off memory.Offset, vw int, vals *[]uint64) (incver uint64, live, ok bool) {
	for i := 0; i < scanStableRetries; i++ {
		incver = arena.LoadWord(kvs.IncVerOffset(off))
		if clock.IsWriteLocked(arena.LoadWord(kvs.StateOffset(off))) {
			continue
		}
		if !kvs.Live(kvs.Incarnation(incver)) {
			return incver, false, true
		}
		base := len(*vals)
		for w := 0; w < vw; w++ {
			*vals = append(*vals, 0)
		}
		arena.Read((*vals)[base:base+vw], kvs.ValueOffset(off))
		if arena.LoadWord(kvs.IncVerOffset(off)) == incver &&
			!clock.IsWriteLocked(arena.LoadWord(kvs.StateOffset(off))) {
			return incver, true, true
		}
		*vals = (*vals)[:base] // torn: discard and retry
	}
	return 0, false, false
}

// collectScanRemote ships the collection to the host (Section 6.5): the
// host runs the same stamped walk and returns stamps + rows; values arrive
// in the reply, and validation later re-READs the headers one-sided.
func (t *Tx) collectScanRemote(table, node, region int, lo, hi uint64, limit int) ([]ScanRow, error) {
	rs, err := t.e.callRangeScan(node, rangeScanMsg{Region: region, Lo: lo, Hi: hi, Limit: limit},
		t.e.rt.Meta(table).ValueWords)
	if err != nil {
		return nil, t.nodeDown()
	}
	if rs.Busy {
		return nil, t.remoteConflict()
	}
	rec := scanRec{table: table, node: node, region: region,
		segs: rs.Segs, stamps: rs.Stamps}
	var out []ScanRow
	for _, r := range rs.Rows {
		rec.rows = append(rec.rows, scanRowRec{key: r.Key, off: r.Off, incver: r.IncVer})
		if r.Val != nil {
			out = append(out, ScanRow{Key: r.Key, Val: r.Val})
		}
	}
	t.scans = append(t.scans, rec)
	return out, nil
}

// callRangeScan ships one range collection to the host over SEND/RECV.
func (e *Executor) callRangeScan(node int, m rangeScanMsg, vw int) (rangeScanResp, error) {
	// Reply size for the cost model: the row count is unknown before the
	// call, so charge for the bounded case and a nominal page otherwise.
	respSz := 256 + m.Limit*(3+vw)*8
	if m.Limit <= 0 {
		respSz = 4096
	}
	var resp any
	err := e.verbRetry(func() error {
		var cerr error
		resp, cerr = e.w.QP.Call(node, clusterMsg(msgRangeScan, m), 40, respSz)
		return cerr
	})
	if err != nil {
		return rangeScanResp{}, ErrNodeDown
	}
	rs, ok := resp.(rangeScanResp)
	if !ok {
		return rangeScanResp{}, ErrNodeDown
	}
	return rs, nil
}

// validateScans re-validates every collected scan inside the HTM region,
// after the body and before the structural flips (which change incver words
// the scans recorded). Remote scans first re-READ their stamps and row
// headers in one doorbell wave (wire cost + fault injection); the
// authoritative comparison then uses htx reads, enrolling every word in the
// region's read set. Rows write-locked by this very transaction (a scanned
// row also staged for write/erase) skip the lock check — their version
// cannot have moved while we hold the lock.
func (t *Tx) validateScans(htx *htm.Txn) {
	if len(t.scans) == 0 || t.e.rt.NoScanValidation {
		return
	}
	e := t.e
	sh := e.w.Obs
	vstart := int64(e.w.VClock.Now())

	nwords := 0
	for i := range t.scans {
		if t.scans[i].node == e.w.Node.ID {
			continue
		}
		nwords += len(t.scans[i].segs) + len(t.scans[i].rows)
	}
	down := false
	if nwords > 0 {
		if cap(e.hdrBuf) < nwords {
			e.hdrBuf = make([]uint64, nwords)
		}
		hdr := e.hdrBuf[:nwords]
		sq := e.sendq()
		wrs := e.activeWR[:0]
		j := 0
		for i := range t.scans {
			sc := &t.scans[i]
			if sc.node == e.w.Node.ID {
				continue
			}
			for _, s := range sc.segs {
				wrs = append(wrs, sq.PostRead(sc.node, sc.region,
					kvs.SegStampOffset(s), hdr[j:j+1]))
				j++
			}
			for _, r := range sc.rows {
				wrs = append(wrs, sq.PostRead(sc.node, sc.region,
					kvs.IncVerOffset(r.off), hdr[j:j+1]))
				j++
			}
		}
		sq.Poll()
		for _, wr := range wrs {
			if wr.Err == nil {
				continue
			}
			dst := wr.Dst
			if err := e.verbRetry(func() error {
				return e.w.QP.TryRead(wr.Node, wr.Region, wr.Off, dst)
			}); err != nil {
				down = true
				break
			}
		}
		e.activeWR = wrs[:0]
	}

	var fails int64
	if !down {
		for i := range t.scans {
			sc := &t.scans[i]
			arena := t.arenaAt(sc.node, sc.region)
			for k, s := range sc.segs {
				if htx.Read(arena, kvs.SegStampOffset(s)) != sc.stamps[k] {
					fails++
				}
			}
			for _, r := range sc.rows {
				if htx.Read(arena, kvs.IncVerOffset(r.off)) != r.incver {
					fails++
					continue
				}
				if rr, ok := t.rIndex[refKey{sc.table, r.key}]; ok && rr.write && rr.off == r.off {
					continue // our own write lock; version pinned by it
				}
				if clock.IsWriteLocked(htx.Read(arena, kvs.StateOffset(r.off))) {
					fails++
				}
			}
		}
	}
	sh.Observe(obs.PhaseValidate, int64(e.w.VClock.Now())-vstart)
	if down {
		t.specDown = true
		htx.Abort(abortCodeScan)
	}
	if fails > 0 {
		sh.Add(obs.EvScanValidateFail, fails)
		htx.Abort(abortCodeScan)
	}
}

// fbValidateScans is the software fallback's scan validation: the same
// stamp + row checks with plain reads, run after the fallback confirmed its
// leases and views and before it publishes. Sound without HTM enrollment
// because every scanned shard's mutation paths bump either the stamp or the
// row's version before the fallback's own in-place updates become visible,
// and the fallback holds every declared record locked while checking.
func (t *Tx) fbValidateScans(fb *fallbackCtx) bool {
	if len(t.scans) == 0 || t.e.rt.NoScanValidation {
		return true
	}
	fails := int64(0)
	for i := range t.scans {
		sc := &t.scans[i]
		arena := t.arenaAt(sc.node, sc.region)
		for k, s := range sc.segs {
			if arena.LoadWord(kvs.SegStampOffset(s)) != sc.stamps[k] {
				fails++
			}
		}
		for _, r := range sc.rows {
			if arena.LoadWord(kvs.IncVerOffset(r.off)) != r.incver {
				fails++
				continue
			}
			if fr, ok := fb.index[refKey{sc.table, r.key}]; ok && fr.write && fr.off == r.off {
				continue // locked by this fallback execution itself
			}
			if clock.IsWriteLocked(arena.LoadWord(kvs.StateOffset(r.off))) {
				fails++
			}
		}
	}
	if fails > 0 {
		t.e.w.Obs.Add(obs.EvScanValidateFail, fails)
		return false
	}
	return true
}
