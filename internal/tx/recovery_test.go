package tx

import (
	"sync"
	"testing"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/kvs"
)

func durableRig(t testing.TB, nodes, workers, keys int) (*Runtime, func()) {
	t.Helper()
	return newRig(t, nodes, workers, keys, func(c *cluster.Config) {
		c.Durability = true
		c.LogWords = 1 << 16
	})
}

// TestDurableCommitWritesWAL: a committed transaction leaves exactly one
// write-ahead record with all its updates.
func TestDurableCommitWritesWAL(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 1); err != nil { // remote
			return err
		}
		if err := tx.W(tblAccounts, 2); err != nil { // local
			return err
		}
		return tx.Execute(func(lc *Local) error {
			if err := lc.Write(tblAccounts, 1, []uint64{500, 0}); err != nil {
				return err
			}
			return lc.Write(tblAccounts, 2, []uint64{1500, 0})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	w := rt.C.Worker(0, 0)
	if w.WriteAheadLog.Len() != 1 {
		t.Fatalf("WAL records = %d, want 1", w.WriteAheadLog.Len())
	}
	txid, recs, ok := parseWAL(w.WriteAheadLog.Entries()[0])
	if !ok || txid == 0 || len(recs) != 2 {
		t.Fatalf("WAL parse = %d recs, ok=%v", len(recs), ok)
	}
	if w.LockAheadLog.Len() != 1 {
		t.Fatalf("lock-ahead records = %d, want 1", w.LockAheadLog.Len())
	}
}

// TestAbortedTxnLeavesNoWAL: the write-ahead log is transactional.
func TestAbortedTxnLeavesNoWAL(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	e := rt.Executor(0, 0)
	_ = e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAccounts, 2); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			if err := lc.Write(tblAccounts, 2, []uint64{0, 0}); err != nil {
				return err
			}
			return ErrUserAbort
		})
	})
	if rt.C.Worker(0, 0).WriteAheadLog.Len() != 0 {
		t.Fatal("aborted transaction left a WAL record")
	}
}

// TestRecoveryUnlocksCrashedLocks is Figure 7(a): crash before XEND — the
// lock-ahead log releases remote locks; no WAL means no redo.
func TestRecoveryUnlocksCrashedLocks(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	// Worker on node 1 locks key 2 (homed on node 0) and "crashes" before
	// the HTM region commits.
	e1 := rt.Executor(1, 0)
	tx := e1.newTx()
	if err := tx.stageRemote(tblAccounts, 2, 0, tblAccounts, 0, true); err != nil {
		t.Fatal(err)
	}
	tx.logAheadOfRegion() // what Execute would log before XBEGIN
	// The record is now locked by node 1.
	host := rt.C.Node(0).Unordered(tblAccounts)
	off, _ := host.LookupLocal(2)
	s := host.Arena().LoadWord(off + 2)
	if !clock.IsWriteLocked(s) || clock.Owner(s) != 1 {
		t.Fatalf("state = %x, want locked by node 1", s)
	}

	rt.C.Crash(1)
	rep := rt.Recover(1)
	if rep.Unlocked != 1 {
		t.Fatalf("Unlocked = %d, want 1", rep.Unlocked)
	}
	if rep.RedoneTxns != 0 {
		t.Fatalf("RedoneTxns = %d, want 0 (no WAL, Figure 7(a))", rep.RedoneTxns)
	}
	if got := host.Arena().LoadWord(off + 2); got != clock.Init {
		t.Fatalf("record still locked after recovery: %x", got)
	}
	// Value untouched.
	v, _ := host.Get(2)
	if v[0] != 1000 {
		t.Fatalf("value corrupted by recovery: %d", v[0])
	}
}

// TestRecoveryRedoesCommitted is Figure 7(b): crash after XEND but before
// remote write-back — the WAL redoes the update and unlocks.
func TestRecoveryRedoesCommitted(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	// Simulate a worker on node 1 that committed its HTM region (WAL is
	// durable, remote record still locked) but crashed before write-back.
	e1 := rt.Executor(1, 0)
	tx := e1.newTx()
	if err := tx.stageRemote(tblAccounts, 2, 0, tblAccounts, 0, true); err != nil {
		t.Fatal(err)
	}
	tx.logAheadOfRegion()
	host := rt.C.Node(0).Unordered(tblAccounts)
	off, _ := host.LookupLocal(2)

	// Hand-craft the WAL record the committed HTM region would have left:
	// key 2 updated to {777, 9} at version 1.
	w := rt.C.Worker(1, 0)
	w.WriteAheadLog.Append([]uint64{tx.txid, 1,
		0 /*node*/, tblAccounts, uint64(off), 1 /*version*/, 2 /*vw*/, 777, 9})

	rt.C.Crash(1)
	rep := rt.Recover(1)
	if rep.RedoneTxns != 1 || rep.RedoneRecords != 1 {
		t.Fatalf("redo = %d txns / %d recs, want 1/1", rep.RedoneTxns, rep.RedoneRecords)
	}
	if got := host.Arena().LoadWord(off + 2); got != clock.Init {
		t.Fatalf("record still locked after redo: %x", got)
	}
	v, _ := host.Get(2)
	if v[0] != 777 || v[1] != 9 {
		t.Fatalf("redo lost update: %v", v)
	}
	if kvs.Version(host.Arena().LoadWord(off+1)) != 1 {
		t.Fatal("version not advanced by redo")
	}
}

// TestRecoveryIdempotent: a second Recover of the same crash is a no-op —
// the logs were truncated by the first run, so nothing is redone, nothing
// unlocked, nothing pending. Recovery can safely run again (a second
// coordinator, a retried OnDeath handler) without double-applying updates.
func TestRecoveryIdempotent(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	// One uncommitted lock plus one committed-but-unapplied WAL record:
	// both Figure 7 paths have work to do on the first pass.
	e1 := rt.Executor(1, 0)
	tx := e1.newTx()
	if err := tx.stageRemote(tblAccounts, 2, 0, tblAccounts, 0, true); err != nil {
		t.Fatal(err)
	}
	tx.logAheadOfRegion()
	host := rt.C.Node(0).Unordered(tblAccounts)
	off, _ := host.LookupLocal(2)
	w := rt.C.Worker(1, 0)
	w.WriteAheadLog.Append([]uint64{tx.txid, 1,
		0, tblAccounts, uint64(off), 1, 2, 777, 9})

	rt.C.Crash(1)
	first := rt.Recover(1)
	if first.RedoneTxns != 1 || first.RedoneRecords != 1 {
		t.Fatalf("first recovery redo = %d txns / %d recs, want 1/1",
			first.RedoneTxns, first.RedoneRecords)
	}

	second := rt.Recover(1)
	if second.RedoneTxns != 0 || second.RedoneRecords != 0 ||
		second.SkippedRecords != 0 || second.Unlocked != 0 ||
		len(second.PendingPieces) != 0 {
		t.Fatalf("second recovery not a zero-delta no-op: %+v", second)
	}
	if got := host.Arena().LoadWord(off + 2); got != clock.Init {
		t.Fatalf("record locked after double recovery: %x", got)
	}
	v, _ := host.Get(2)
	if v[0] != 777 || v[1] != 9 {
		t.Fatalf("double recovery corrupted the redone value: %v", v)
	}
}

// TestRecoverySkipsStaleVersions: a logged update older than the record's
// current version is not applied (update ordering by version, Section 4.6).
func TestRecoverySkipsStaleVersions(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	host := rt.C.Node(0).Unordered(tblAccounts)
	// Advance key 2 to version 5 through normal puts.
	for i := 0; i < 5; i++ {
		host.Put(2, []uint64{uint64(2000 + i), 0})
	}
	off, _ := host.LookupLocal(2)

	w := rt.C.Worker(1, 0)
	w.WriteAheadLog.Append([]uint64{42, 1,
		0, tblAccounts, uint64(off), 3 /*stale version*/, 2, 111, 111})
	rt.C.Crash(1)
	rep := rt.Recover(1)
	if rep.SkippedRecords != 1 || rep.RedoneRecords != 0 {
		t.Fatalf("skip/redo = %d/%d, want 1/0", rep.SkippedRecords, rep.RedoneRecords)
	}
	v, _ := host.Get(2)
	if v[0] != 2004 {
		t.Fatalf("stale redo clobbered newer value: %d", v[0])
	}
}

// TestRecoveryPendingChoppedPieces: chopping-log records of uncommitted
// transactions surface for re-execution.
func TestRecoveryPendingChoppedPieces(t *testing.T) {
	rt, stop := durableRig(t, 2, 1, 4)
	defer stop()
	e1 := rt.Executor(1, 0)
	tx := e1.newTx()
	tx.SetChoppingInfo([]uint64{7, 3}) // parent 7, next piece 3
	if err := tx.stageRemote(tblAccounts, 2, 0, tblAccounts, 0, true); err != nil {
		t.Fatal(err)
	}
	tx.logAheadOfRegion()
	rt.C.Crash(1)
	rep := rt.Recover(1)
	if len(rep.PendingPieces) != 1 || rep.PendingPieces[0][0] != 7 || rep.PendingPieces[0][1] != 3 {
		t.Fatalf("pending pieces = %v", rep.PendingPieces)
	}
}

// TestCrashRecoveryEndToEnd: run durable transfers, crash one node mid-way,
// recover, and check that the total balance is conserved — committed money
// moved, uncommitted money did not, no locks leaked.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	const nodes, keys = 3, 30
	rt, stop := durableRig(t, nodes, 2, keys)
	defer stop()

	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := rt.Executor(n, w)
				for i := 0; i < 60; i++ {
					if !rt.C.Node(n).Alive() {
						return // fail-stop
					}
					from := uint64((n*17+w*5+i)%keys) + 1
					to := uint64((n*29+w*3+i*7)%keys) + 1
					if from == to {
						continue
					}
					_ = e.Exec(func(tx *Tx) error {
						if err := tx.W(tblAccounts, from); err != nil {
							return err
						}
						if err := tx.W(tblAccounts, to); err != nil {
							return err
						}
						return tx.Execute(func(lc *Local) error {
							f, err := lc.Read(tblAccounts, from)
							if err != nil {
								return err
							}
							g, err := lc.Read(tblAccounts, to)
							if err != nil {
								return err
							}
							if f[0] < 3 {
								return nil
							}
							if err := lc.Write(tblAccounts, from, []uint64{f[0] - 3, 0}); err != nil {
								return err
							}
							return lc.Write(tblAccounts, to, []uint64{g[0] + 3, 0})
						})
					})
				}
			}(n, w)
		}
	}
	wg.Wait()

	rt.C.Crash(1)
	rt.Recover(1)
	rt.C.Revive(1)

	// Every record must be unlocked and the total conserved.
	var total uint64
	for k := uint64(1); k <= keys; k++ {
		host := rt.C.Node(int(k) % nodes).Unordered(tblAccounts)
		off, ok := host.LookupLocal(k)
		if !ok {
			t.Fatalf("key %d lost", k)
		}
		if s := host.Arena().LoadWord(off + 2); clock.IsWriteLocked(s) {
			t.Fatalf("key %d locked after recovery (owner %d)", k, clock.Owner(s))
		}
		v, _ := host.Get(k)
		total += v[0]
	}
	if total != keys*1000 {
		t.Fatalf("total = %d, want %d", total, keys*1000)
	}
}
