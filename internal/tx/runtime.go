// Package tx implements DrTM's transaction layer — the paper's core
// contribution (Sections 3, 4 and 6): strictly serializable distributed
// transactions that run their local part inside an HTM region and
// coordinate cross-machine access with a 2PL-style protocol built from
// one-sided RDMA operations.
//
// Protocol summary (Figure 2(a) / Figure 3):
//
//	Start phase    — lock & prefetch every remote record: exclusive locks
//	                 via RDMA CAS on the record's state word, shared locks
//	                 via leases (Section 4.2); fetch values with RDMA READ.
//	LocalTX phase  — run the transaction body inside an HTM region; local
//	                 reads/writes check the state word (Figure 6) so remote
//	                 lockers and local HTM transactions compose correctly
//	                 (Table 2); staged remote values are read from and
//	                 written to a transaction-private buffer.
//	Commit phase   — inside the HTM region, re-confirm every lease, then
//	                 XEND publishes all local effects atomically; afterwards
//	                 write back and unlock remote records with RDMA WRITEs.
//
// Forward progress: HTM conflict aborts retry the region; too many aborts
// (or a capacity abort) take the software fallback path (Section 6.2),
// which releases held locks and re-acquires locks for ALL records — local
// ones included — in a global <table, key> order before executing the body
// unprotected. Read-only transactions use the separate lease-confirm scheme
// of Figure 8 and never enter HTM. Durability follows Section 4.6 with
// chopping, lock-ahead and write-ahead logs in emulated NVRAM.
package tx

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/obs"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

// Kind distinguishes the two memory-store flavors.
type Kind int

const (
	// Unordered tables are DrTM-KV hash tables with a one-sided RDMA path.
	Unordered Kind = iota
	// Ordered tables are B+ tree stores; remote access ships the operation
	// to the host over verbs (Section 6.5).
	Ordered
)

// TableMeta describes a registered table.
type TableMeta struct {
	ID         int
	Kind       Kind
	ValueWords int
}

// Partitioner maps a record to its home node.
type Partitioner func(table int, key uint64) int

// Gauge is a read-only view over one or more events of the cluster's
// observability registry. It keeps the historical `rt.Stats.X.Load()` call
// shape while the actual counting happens in per-worker obs shards.
type Gauge struct {
	reg *obs.Registry
	evs []obs.Event
}

// Load sums the gauge's events across all worker shards.
func (g Gauge) Load() int64 {
	if g.reg == nil {
		return 0
	}
	var t int64
	for _, ev := range g.evs {
		t += g.reg.Total(ev)
	}
	return t
}

// Stats is a runtime-wide, read-only aggregation of transaction outcomes.
// It is a legacy-shaped facade over the cluster's obs.Registry; new code
// should prefer the registry's Snapshot for a full event breakdown.
type Stats struct {
	reg *obs.Registry

	Commits        Gauge
	Retries        Gauge // whole-transaction retries (lock/lease conflicts)
	HTMAborts      Gauge // HTM region aborts (all causes)
	CapacityAborts Gauge
	LeaseFails     Gauge // lease failures (in-region aborts + confirm failures)
	Fallbacks      Gauge // executions completed on the fallback path
	ROCommits      Gauge
	RORetries      Gauge
}

func newStats(reg *obs.Registry) Stats {
	g := func(evs ...obs.Event) Gauge { return Gauge{reg: reg, evs: evs} }
	return Stats{
		reg:     reg,
		Commits: g(obs.EvTxCommit),
		Retries: g(obs.EvTxRetry),
		HTMAborts: g(obs.EvHTMConflictAbort, obs.EvHTMCapacityAbort,
			obs.EvHTMLockedAbort, obs.EvHTMLeaseAbort, obs.EvHTMExplicitAbort),
		CapacityAborts: g(obs.EvHTMCapacityAbort),
		LeaseFails:     g(obs.EvHTMLeaseAbort, obs.EvLeaseConfirmFail),
		Fallbacks:      g(obs.EvFallback),
		ROCommits:      g(obs.EvROCommit),
		RORetries:      g(obs.EvRORetry),
	}
}

// Reset zeroes all counters (the whole underlying registry).
func (s *Stats) Reset() {
	if s.reg != nil {
		s.reg.Reset()
	}
}

// Runtime wires the transaction layer onto a cluster.
type Runtime struct {
	C    *cluster.Cluster
	Part Partitioner

	tables map[int]TableMeta

	// caches[node] holds node-level location caches keyed by
	// (remote node, table): shared by all of the node's workers, as in
	// Section 5.3.
	caches []*cacheSet

	// FallbackThreshold is the number of HTM aborts before the software
	// fallback path takes over.
	FallbackThreshold int

	// MaxAttempts bounds whole-transaction retries before giving up.
	MaxAttempts int

	// CacheBudgetBytes sizes each (node, table) location cache; 0 disables
	// caching (the DrTM-KV vs DrTM-KV/$ distinction of Section 5.4).
	CacheBudgetBytes int

	// NewCache builds a location cache from a byte budget; defaults to the
	// paper's direct-mapped kvs.NewLocationCache. Swap in kvs.NewAssocCache
	// for the set-associative LRU variant the paper names as future work.
	NewCache func(budgetBytes int) kvs.Cache

	// NoReadLease disables the lease-based shared lock (the Figure 17
	// ablation): remote reads then acquire exclusive locks like writes,
	// killing read-read sharing across machines.
	NoReadLease bool

	// ReadPolicy selects the concurrency-control arm for remote read-set
	// records: lease-based shared locks (the zero-value default),
	// speculative one-RTT OCC reads, per-bucket adaptive routing between
	// the two, or exclusive locks (see policy.go). NoReadLease takes
	// precedence: when set, the effective policy is PolicyExclusive. The
	// software fallback path always uses locks — its in-place updates
	// cannot be rolled back, so optimistic reads are unsound there.
	ReadPolicy ReadPolicy

	// BatchWindow bounds outstanding work requests per worker send queue in
	// the batched Start/Commit pipelines. 0 selects rdma.DefaultWindow; 1
	// serializes every verb (the pre-batching behavior, used as the control
	// arm of the `batch` experiment).
	BatchWindow int

	// NoScanValidation disables commit-time range validation of Tx.Scan /
	// RO.Scan results — the deliberately broken control arm of the phantom
	// regression test. Never set outside tests: scans lose phantom
	// protection entirely.
	NoScanValidation bool

	// indexes maps an ordered base table to its declared secondary indexes.
	// Written only during setup (DefineIndex); read lock-free afterwards.
	indexes map[int][]IndexSpec

	Stats Stats

	// Adaptive routing state: the normalized tuning and the conflict-EWMA
	// heat table (built in NewRuntime, rebuilt by SetPolicyConfig). The
	// table is race-safe; it exists even under static policies so that
	// per-transaction ExecWith(PolicyAdaptive) overrides always work.
	policyCfg PolicyConfig
	heat      *obs.HeatMap

	// pending parks release-side steps (unlocks, commit write-backs,
	// deferred store ops) whose target node crashed mid-transaction; see
	// fault.go. recMu serializes Recover against itself and the drain.
	pendMu  sync.Mutex
	pending map[int][]func(*Runtime)
	recMu   sync.Mutex

	// Replication's redo-apply serialization and delete fencing (repl.go).
	// redoMu makes applyRedoTo's version-guarded check-then-write atomic
	// across concurrently drained rings and orders redo application against
	// the shipped insert/delete store ops. delGen counts, per logical record,
	// the deletes applied so far: redo updates are stamped with the
	// generation observed at commit and a drain skips records from an older
	// generation, so a record logged before a delete can never resurrect the
	// key. bkScr is execStoreOp's Backups scratch, valid only under redoMu.
	redoMu sync.Mutex
	delGen map[delKey]uint64
	bkScr  []int

	// Stamp-gated removal queue (MVCC only). Physical unlink of a dead entry
	// is deferred until the cluster's snapshot floor passes the commit stamp
	// that killed it — an in-flight or future snapshot read below that stamp
	// must still resolve the dead version from the chain (see
	// cluster.MinActiveSnapshot). remQ is ordered by stamp (commit stamps on
	// one runtime are taken in commit order per worker, and the drain
	// re-checks every head, so strict global order is not required).
	remMu sync.Mutex
	remQ  []gatedRemoval
}

// gatedRemoval is a dead-entry unlink waiting for the snapshot floor to pass
// the stamp of the commit that erased it.
type gatedRemoval struct {
	op    removalOp
	stamp uint64
}

// queueRemoval defers a dead-entry unlink until drainRemovals observes a
// snapshot floor ≥ stamp.
func (rt *Runtime) queueRemoval(op removalOp, stamp uint64) {
	rt.remMu.Lock()
	rt.remQ = append(rt.remQ, gatedRemoval{op: op, stamp: stamp})
	rt.remMu.Unlock()
}

// drainRemovals applies every queued removal whose death stamp has been
// passed by the snapshot floor: no current or future snapshot read can still
// need the dead version, so the entry may leave the chain.
func (rt *Runtime) drainRemovals(e *Executor) {
	rt.remMu.Lock()
	empty := len(rt.remQ) == 0
	rt.remMu.Unlock()
	if empty {
		return
	}
	// Order matters: the published-stamp read MUST precede the active-reader
	// scan. enterMVCC registers before taking its snapshot from a second
	// stamp read, so a reader this scan misses will take a snapshot at or
	// above the stamp read below — and every removal gated by this floor
	// died at or below it. See enterMVCC.
	floor := rt.C.SnapshotStamp()
	if m := rt.C.MinActiveSnapshot(); m < floor {
		floor = m
	}
	var ready []removalOp
	rt.remMu.Lock()
	keep := rt.remQ[:0]
	for _, g := range rt.remQ {
		if g.stamp <= floor {
			ready = append(ready, g.op)
		} else {
			keep = append(keep, g)
		}
	}
	rt.remQ = keep
	rt.remMu.Unlock()
	for _, op := range ready {
		e.applyRemoveDead(op)
	}
}

// delKey identifies a logical record for delete-generation tracking.
type delKey struct {
	part, table int
	key         uint64
}

// Errors.
var (
	// ErrRetry signals that the transaction must be retried from scratch
	// (Start phase included): a remote lock conflict, an expired lease, or
	// an exhausted HTM retry budget whose locks were already released.
	ErrRetry = errors.New("tx: conflict, retry transaction")
	// ErrUserAbort is returned by Tx.UserAbort (e.g. TPC-C's 1% invalid
	// new-order): the transaction rolls back and is NOT retried.
	ErrUserAbort = errors.New("tx: user abort")
	// ErrNotFound reports an access to a missing record.
	ErrNotFound = errors.New("tx: record not found")
	// ErrNodeDown reports an access to a crashed node (triggers suspension
	// in the caller per Section 4.6).
	ErrNodeDown = errors.New("tx: remote node is down")
)

// NewRuntime builds a transaction runtime for the cluster.
func NewRuntime(c *cluster.Cluster, part Partitioner) *Runtime {
	rt := &Runtime{
		C:                 c,
		Part:              part,
		tables:            make(map[int]TableMeta),
		FallbackThreshold: 8,
		MaxAttempts:       10_000,
		CacheBudgetBytes:  1 << 22,
		Stats:             newStats(c.Obs),
		policyCfg:         DefaultPolicyConfig(),
		delGen:            make(map[delKey]uint64),
	}
	rt.heat = rt.policyCfg.newHeatMap()
	for i := 0; i < c.Nodes(); i++ {
		rt.caches = append(rt.caches, newCacheSet())
	}
	rt.installStoreHandlers()
	rt.installOrderedHandlers()
	return rt
}

// DefineUnordered registers an unordered table across the cluster.
func (rt *Runtime) DefineUnordered(id, mainBuckets, indirectBuckets, capacity, valueWords int) {
	rt.C.RegisterUnordered(id, mainBuckets, indirectBuckets, capacity, valueWords)
	rt.tables[id] = TableMeta{ID: id, Kind: Unordered, ValueWords: valueWords}
}

// DefineOrdered registers an ordered table across the cluster.
func (rt *Runtime) DefineOrdered(id, capacity, valueWords int) {
	rt.DefineOrderedSeg(id, capacity, valueWords, 0)
}

// DefineOrderedSeg registers an ordered table whose phantom-detection segment
// stamps are keyed on key>>segShift (see kvs.Ordered): scans validate the
// stamp words covering their range, so segShift should strip the intra-range
// low bits of the table's key encoding (e.g. 8 for keys of the form
// id<<8|sub) to keep unrelated inserts from invalidating a scan.
func (rt *Runtime) DefineOrderedSeg(id, capacity, valueWords int, segShift uint) {
	rt.C.RegisterOrdered(id, capacity, valueWords, segShift)
	rt.tables[id] = TableMeta{ID: id, Kind: Ordered, ValueWords: valueWords}
}

// IndexSpec declares a secondary index over an ordered base table: for every
// live base row (key, val), the index table holds a live entry at
// Key(key, val) whose single value word is the base key. Index keys must be
// unique across live rows (encode the base key into the low bits when the
// indexed attribute can collide), and the partitioner must co-locate every
// index entry with its base row — index maintenance happens inside the base
// write's HTM region and cannot hop nodes mid-region.
type IndexSpec struct {
	Table int // the index's own ordered table
	Key   func(baseKey uint64, val []uint64) uint64
}

// DefineIndex attaches a secondary index to an ordered base table. The index
// table must already be defined (ordered, ValueWords >= 1). Tx.WInsert and
// Tx.Erase maintain it transactionally. Plain writes must not change the
// indexed attribute — Local.Write panics if they would (update such rows
// with Erase + WInsert, which carries the index fixup in the same
// transaction).
func (rt *Runtime) DefineIndex(base int, spec IndexSpec) {
	bm := rt.Meta(base)
	im := rt.Meta(spec.Table)
	if bm.Kind != Ordered || im.Kind != Ordered {
		panic("tx: secondary indexes require ordered base and index tables")
	}
	if im.ValueWords < 1 {
		panic("tx: index table needs >= 1 value word for the base key")
	}
	if rt.indexes == nil {
		rt.indexes = make(map[int][]IndexSpec)
	}
	rt.indexes[base] = append(rt.indexes[base], spec)
}

// indexesOf returns the secondary indexes declared over a base table.
func (rt *Runtime) indexesOf(table int) []IndexSpec { return rt.indexes[table] }

// Meta returns a table's metadata.
func (rt *Runtime) Meta(table int) TableMeta {
	m, ok := rt.tables[table]
	if !ok {
		panic(fmt.Sprintf("tx: unknown table %d", table))
	}
	return m
}

// CacheStats aggregates location-cache hits/misses/invalidations across
// every node's caches.
func (rt *Runtime) CacheStats() (hits, misses, invals int64) {
	for _, cs := range rt.caches {
		h, m, i := cs.stats()
		hits += h
		misses += m
		invals += i
	}
	return
}

// Tables returns all registered table IDs.
func (rt *Runtime) Tables() []int {
	out := make([]int, 0, len(rt.tables))
	for id := range rt.tables {
		out = append(out, id)
	}
	return out
}

// Executor returns a transaction executor bound to a worker. Executors are
// not safe for concurrent use; create one per worker goroutine.
func (rt *Runtime) Executor(node, worker int) *Executor {
	w := rt.C.Worker(node, worker)
	return &Executor{
		rt:  rt,
		w:   w,
		rng: rand.New(rand.NewSource(int64(node*1000 + worker + 1))),
	}
}

// Executor runs transactions on behalf of one worker thread.
type Executor struct {
	rt  *Runtime
	w   *cluster.Worker
	rng *rand.Rand

	txSeq uint64 // local transaction sequence, for log record IDs

	// override forces a read policy for transactions started while it is
	// set (ExecWith / ExecROWith); PolicyDefault defers to the runtime.
	override ReadPolicy

	sq *rdma.SendQueue // lazily created post/poll queue for batched phases

	// Hot-path pools: Exec's per-attempt Tx shell, staged-record structs and
	// the Start phase's staging scratch are reused across attempts and
	// transactions instead of reallocated (see recycle / getRec / getReq).
	// Executors are single-goroutine objects, so none of this needs locking.
	freeTx   *Tx
	recFree  []*remoteRec
	reqFree  []*stageReq
	reqScr   []*stageReq // Stage's per-call batch ordering
	activeWR []*rdma.WR  // posted-wave scratch
	activeSR []*stageReq // acquire-wave scratch
	lreqScr  []*kvs.LookupReq
	hdrBuf   []uint64 // validation-wave READ destinations
	seen     map[refKey]*stageReq
}

// getRec pops a pooled staged-record struct (value buffer capacity kept).
func (e *Executor) getRec() *remoteRec {
	if n := len(e.recFree); n > 0 {
		r := e.recFree[n-1]
		e.recFree = e.recFree[:n-1]
		*r = remoteRec{buf: r.buf[:0]}
		return r
	}
	return &remoteRec{}
}

// putRecs returns staged-record structs to the pool. Callers must drop every
// reference first: the structs (and their value buffers) are reused by later
// transactions on this executor.
func (e *Executor) putRecs(recs []*remoteRec) {
	e.recFree = append(e.recFree, recs...)
}

// recycle returns a finished transaction's shell and staged records to the
// executor's pools. Value slices obtained from Local.Read alias this storage
// and are invalid once Exec returns.
func (e *Executor) recycle(t *Tx) {
	if !t.finished {
		return
	}
	e.putRecs(t.remotes)
	t.remotes = t.remotes[:0]
	clear(t.rIndex)
	t.locals = t.locals[:0]
	clear(t.lIndex)
	t.walLocal = t.walLocal[:0]
	t.deferred = t.deferred[:0]
	t.scans = t.scans[:0]
	t.scanVals = t.scanVals[:0]
	t.localIns = t.localIns[:0]
	t.localErase = t.localErase[:0]
	t.removals = t.removals[:0]
	t.choppingInfo = nil
	clear(t.views)
	t.finished = false
	t.specDown = false
	t.usedFallback = false
	t.lastAbort = obs.CauseNone
	t.vLock, t.vHTM, t.vCommit = 0, 0, 0
	e.freeTx = t
}

// sendq returns the worker's send queue, (re)created to match the runtime's
// current BatchWindow. The queue is always drained between uses (every
// pipeline stage polls what it posts), so swapping it is safe.
func (e *Executor) sendq() *rdma.SendQueue {
	w := e.rt.BatchWindow
	if w <= 0 {
		w = rdma.DefaultWindow
	}
	if e.sq == nil || e.sq.Window() != w {
		e.sq = e.w.QP.NewSendQueue(w)
	}
	return e.sq
}

// Worker exposes the underlying worker context.
func (e *Executor) Worker() *cluster.Worker { return e.w }

// Runtime exposes the owning runtime.
func (e *Executor) Runtime() *Runtime { return e.rt }

func (e *Executor) model() *vtime.Model { return e.rt.C.Fabric.Model() }

func (e *Executor) charge(ns int64) { e.w.VClock.ChargeNS(ns) }

// route maps a record's logical coordinates to its current host under the
// replication view: (owning node, storage region on that node, home
// partition). Without replication — or while the home node owns its
// partition — this is the plain partitioner answer with region == table.
// After a failover promotion, accesses to the crashed partition route to the
// promoted backup's replica region. part is -1 for replicated tables (always
// local, never backed up through the redo protocol).
func (e *Executor) route(table int, key uint64) (node, region, part int) {
	part = e.rt.Part(table, key)
	if part < 0 {
		return e.w.Node.ID, table, -1
	}
	owner := e.rt.C.OwnerOf(part)
	if owner == part {
		return part, table, part
	}
	return owner, cluster.ReplicaRegion(part, table), part
}

// cacheFor returns this node's location cache for (remote node, region), or
// nil when caching is disabled. Caches key on the storage region — not the
// logical table — so primary and replica locations never mix.
func (e *Executor) cacheFor(node, region int) kvs.Cache {
	if e.rt.CacheBudgetBytes <= 0 {
		return nil
	}
	build := e.rt.NewCache
	if build == nil {
		build = func(b int) kvs.Cache { return kvs.NewLocationCache(b) }
	}
	return e.rt.caches[e.w.Node.ID].get(node, region, e.rt.CacheBudgetBytes, build)
}

// Exec runs a transaction to completion: build stages the read/write sets
// and calls Tx.Execute; conflicts retry the whole transaction with
// randomized backoff (charged to virtual time, not slept). Phase durations
// accumulate across attempts, so the recorded histograms reflect what the
// caller paid for the committed transaction, conflicts included.
func (e *Executor) Exec(build func(t *Tx) error) error {
	sh := e.w.Obs
	start := int64(e.w.VClock.Now())
	var vLock, vHTM, vCommit int64
	var attempts int32
	lastAbort := obs.CauseNone
	usedFallback := false
	for attempt := 0; attempt < e.rt.MaxAttempts; attempt++ {
		attempts++
		t := e.newTx()
		err := build(t)
		t.cleanup()
		vLock += t.vLock
		vHTM += t.vHTM
		vCommit += t.vCommit
		if t.lastAbort != obs.CauseNone {
			lastAbort = t.lastAbort
		}
		usedFallback = usedFallback || t.usedFallback
		switch {
		case err == nil:
			sh.Inc(obs.EvTxCommit)
			total := int64(e.w.VClock.Now()) - start
			sh.Observe(obs.PhaseTotal, total)
			if vLock > 0 {
				sh.Observe(obs.PhaseLockRemote, vLock)
			}
			if vHTM > 0 {
				sh.Observe(obs.PhaseHTM, vHTM)
			}
			if vCommit > 0 {
				sh.Observe(obs.PhaseCommit, vCommit)
			}
			if sh.TraceEnabled() {
				out := obs.OutcomeCommit
				if usedFallback {
					out = obs.OutcomeFallback
				}
				sh.Trace(obs.TraceEvent{
					TxID: t.txid, Node: int32(e.w.Node.ID), Worker: int32(e.w.ID),
					Attempts: attempts, Outcome: out, Abort: lastAbort,
					StartNS: start, LockNS: vLock, HTMNS: vHTM, CommitNS: vCommit,
					TotalNS: total,
				})
			}
			e.recycle(t)
			return nil
		case errors.Is(err, ErrRetry):
			sh.Inc(obs.EvTxRetry)
			e.recycle(t)
			e.backoff(attempt)
		default:
			if errors.Is(err, ErrNodeDown) {
				sh.Inc(obs.EvNodeDownAbort)
			}
			if sh.TraceEnabled() {
				cause := lastAbort
				if errors.Is(err, ErrUserAbort) {
					cause = obs.CauseUser
				}
				sh.Trace(obs.TraceEvent{
					TxID: t.txid, Node: int32(e.w.Node.ID), Worker: int32(e.w.ID),
					Attempts: attempts, Outcome: obs.OutcomeAbort, Abort: cause,
					StartNS: start, LockNS: vLock, HTMNS: vHTM, CommitNS: vCommit,
					TotalNS: int64(e.w.VClock.Now()) - start,
				})
			}
			e.recycle(t)
			return err
		}
	}
	return fmt.Errorf("tx: retry budget exhausted: %w", ErrRetry)
}

// backoff performs a randomized exponential backoff. The wait is charged to
// virtual time for throughput accounting AND spent in real time: lease
// expiry is a real-time phenomenon, so a writer blocked on a lease must
// genuinely wait it out rather than spin through its retry budget.
func (e *Executor) backoff(attempt int) {
	vexp := attempt
	if vexp > 7 {
		vexp = 7 // cap the charged wait at ~16us: retry CAS costs dominate
	}
	maxNS := int64(1) << (uint(vexp) + 7) // 128ns .. 16us
	e.charge(e.rng.Int63n(maxNS) + 1)
	if attempt > 10 {
		attempt = 10
	}
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	sleep := time.Duration(1<<(uint(attempt)-3)) * 32 * time.Microsecond
	if sleep > time.Millisecond {
		sleep = time.Millisecond
	}
	time.Sleep(sleep)
}

// Probe is a test/diagnostic handle exposing the Start-phase remote
// locking primitives directly, used by the Table 2 conflict-matrix
// experiment to install a remote lock or lease synchronously and release
// it later. Not part of the transactional API.
type Probe struct{ t *Tx }

// NewProbe creates a probe transaction on the executor.
func NewProbe(e *Executor) *Probe { return &Probe{t: e.newTx()} }

// Stage locks (write=true) or leases (write=false) the remote record.
func (p *Probe) Stage(table int, key uint64, node int, write bool) error {
	return p.t.stageRemote(table, key, node, table, node, write)
}

// Release drops any exclusive locks the probe holds (leases expire).
func (p *Probe) Release() { p.t.releaseLocks() }
