package tx

import (
	"time"

	"drtm/internal/clock"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// RecoveryReport summarizes one node's recovery.
type RecoveryReport struct {
	// RedoneTxns is the number of committed transactions whose updates were
	// (re)applied from the write-ahead log (Figure 7(b)).
	RedoneTxns int
	// RedoneRecords is the number of record updates applied.
	RedoneRecords int
	// SkippedRecords is the number of logged updates already present
	// (version on the record >= logged version).
	SkippedRecords int
	// Unlocked is the number of exclusive locks released via the
	// lock-ahead log for uncommitted transactions (Figure 7(a)).
	Unlocked int
	// PendingPieces returns the chopping-log records of transactions that
	// never committed: the chopping layer resumes these pieces.
	PendingPieces [][]uint64
}

// Recover performs crash recovery for a crashed node (Section 4.6): it
// scans the node's NVRAM logs and
//
//   - redoes updates of committed transactions (write-ahead log present ⇒
//     XEND executed ⇒ the transaction must eventually commit everywhere),
//     applying each record update only if its logged version is newer;
//
//   - releases exclusive locks still held by the crashed machine for
//     transactions with no write-ahead record, using the lock-ahead log and
//     the owner-ID bits of the state word.
//
// Recover is driven by a surviving node (or the rebooted machine itself);
// the flush-on-failure model guarantees the logs are intact. It is
// idempotent — logs are truncated after replay, so a second invocation
// (e.g. two coordinators racing across incarnations) finds nothing to do —
// and safe under live traffic: redo is version-guarded and unlock is
// owner-guarded, so survivors' in-flight transactions are never clobbered.
func (rt *Runtime) Recover(crashed int) RecoveryReport {
	rt.recMu.Lock()
	defer rt.recMu.Unlock()
	start := time.Now()
	var rep RecoveryReport
	sawEntries := false
	n := rt.C.Node(crashed)
	for w := 0; w < rt.C.Config().WorkersPerNode; w++ {
		wk := rt.C.Worker(crashed, w)
		if wk.WriteAheadLog == nil {
			continue
		}

		if wk.WriteAheadLog.Len() > 0 || wk.LockAheadLog.Len() > 0 ||
			wk.ChoppingLog.Len() > 0 {
			sawEntries = true
		}

		committed := make(map[uint64]bool)
		for _, rec := range wk.WriteAheadLog.Entries() {
			txid, recs, ok := parseWAL(rec)
			if !ok {
				continue
			}
			committed[txid] = true
			applied := false
			for _, u := range recs {
				if rt.redo(crashed, u) {
					rep.RedoneRecords++
					wk.Obs.Inc(obs.EvRecoveryRedo)
					applied = true
				} else {
					rep.SkippedRecords++
				}
			}
			if applied {
				rep.RedoneTxns++
			}
		}

		for _, rec := range wk.LockAheadLog.Entries() {
			txid, locks, ok := parseLockAhead(rec)
			if !ok || committed[txid] {
				continue
			}
			for _, l := range locks {
				if rt.unlockIfOwned(crashed, l) {
					rep.Unlocked++
					wk.Obs.Inc(obs.EvRecoveryUnlock)
				}
			}
		}

		for _, rec := range wk.ChoppingLog.Entries() {
			if len(rec) >= 1 && !committed[rec[0]] {
				rep.PendingPieces = append(rep.PendingPieces, rec[1:])
			}
		}

		wk.WriteAheadLog.Truncate()
		wk.LockAheadLog.Truncate()
		wk.ChoppingLog.Truncate()
	}
	_ = n

	// Complete what survivors could not: release-side writes and store ops
	// that were parked while the node was unreachable (fault.go).
	if rt.FlushPending(crashed) > 0 {
		sawEntries = true
	}

	sh := rt.C.Obs.Shard(0)
	if sawEntries {
		sh.Inc(obs.EvRecoveryRun)
	}
	sh.Add(obs.EvRecoveryNanos, time.Since(start).Nanoseconds())
	return rep
}

// redo applies one logged update if it is newer than the record's current
// version, and clears any exclusive lock the crashed machine still holds on
// it. Returns whether the value was written.
//
// Ordered rows (inc != 0 in the log) carry the committed incarnation: the
// update applies iff the packed inc<<32|version word exceeds the entry's
// current incver word, and the whole word — liveness included — is restored.
// An erase logs no value words, so redoing it flips the row dead without
// touching the payload.
func (rt *Runtime) redo(crashed int, u walRec) bool {
	arena := rt.arenaOf(u.node, u.table)
	cur := arena.LoadWord(kvs.IncVerOffset(u.off))
	applied := false
	if u.inc != 0 {
		packed := uint64(u.inc)<<32 | uint64(u.version)
		if cur < packed {
			arena.Write(kvs.ValueOffset(u.off), u.val)
			arena.Write(kvs.IncVerOffset(u.off), []uint64{packed})
			applied = true
		}
	} else if kvs.Version(cur) < u.version {
		arena.Write(kvs.ValueOffset(u.off), u.val)
		arena.Write(kvs.IncVerOffset(u.off),
			[]uint64{kvs.PackIncVer(kvs.Incarnation(cur), u.version)})
		applied = true
	}
	rt.unlockIfOwned(crashed, lockRef{node: u.node, table: u.table, off: u.off})
	return applied
}

// unlockIfOwned clears the record's exclusive lock when held by the crashed
// machine (identified via the state word's owner bits, Figure 4).
func (rt *Runtime) unlockIfOwned(crashed int, l lockRef) bool {
	arena := rt.arenaOf(l.node, l.table)
	stateOff := kvs.StateOffset(l.off)
	s := arena.LoadWord(stateOff)
	if clock.IsWriteLocked(s) && int(clock.Owner(s)) == crashed {
		if _, ok := arena.CAS(stateOff, s, clock.Init); ok {
			return true
		}
	}
	return false
}

// arenaOf resolves a storage region's arena on node: an ordered shard
// (primary or replica) if one is registered under the region ID, else the
// unordered region (plain table or replica region installed by replication).
func (rt *Runtime) arenaOf(node, region int) *memory.Arena {
	n := rt.C.Node(node)
	if o, ok := n.OrderedRegion(region); ok {
		return o.Arena()
	}
	return n.Unordered(region).Arena()
}
