package rdma

import (
	"sync"
	"testing"
	"time"

	"drtm/internal/htm"
	"drtm/internal/memory"
	"drtm/internal/vtime"
)

func newTestFabric(nodes int) *Fabric {
	f := NewFabric(nodes, vtime.DefaultModel(), AtomicHCA)
	for n := 0; n < nodes; n++ {
		f.Register(n, 0, memory.NewArena(n, 1024))
	}
	return f
}

func TestOneSidedReadWrite(t *testing.T) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)

	src := []uint64{1, 2, 3}
	qp.Write(1, 0, 10, src)
	dst := make([]uint64, 3)
	qp.Read(1, 0, 10, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], src[i])
		}
	}
	if qp.Stats.Reads.Load() != 1 || qp.Stats.Writes.Load() != 1 {
		t.Fatal("op counters wrong")
	}
	if qp.Stats.ReadBytes.Load() != 24 {
		t.Fatalf("ReadBytes = %d, want 24", qp.Stats.ReadBytes.Load())
	}
}

func TestOneSidedCAS(t *testing.T) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	prev, ok := qp.CAS(1, 0, 5, 0, 99)
	if !ok || prev != 0 {
		t.Fatalf("CAS = (%d,%v)", prev, ok)
	}
	prev, ok = qp.CAS(1, 0, 5, 0, 100)
	if ok || prev != 99 {
		t.Fatalf("second CAS = (%d,%v), want (99,false)", prev, ok)
	}
}

func TestFAA(t *testing.T) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	if prev := qp.FAA(1, 0, 0, 7); prev != 0 {
		t.Fatalf("FAA prev = %d", prev)
	}
	dst := make([]uint64, 1)
	qp.Read(1, 0, 0, dst)
	if dst[0] != 7 {
		t.Fatalf("after FAA = %d, want 7", dst[0])
	}
}

func TestCostCharging(t *testing.T) {
	f := newTestFabric(2)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	qp.Read(1, 0, 0, make([]uint64, 8))
	m := f.Model()
	want := m.RDMARead(64)
	if got := clk.Now(); got != want {
		t.Fatalf("charged %v, want %v", got, want)
	}
	clk.Reset()
	qp.CAS(1, 0, 0, 0, 1)
	if got := clk.Now(); got != time.Duration(m.RDMACASNS) {
		t.Fatalf("CAS charged %v, want %v", got, time.Duration(m.RDMACASNS))
	}
}

// TestRDMAAbortsHTM verifies the central coherence property: a one-sided
// write from another node aborts a conflicting HTM transaction on the host.
func TestRDMAAbortsHTM(t *testing.T) {
	f := newTestFabric(2)
	hostArena := f.Endpoint(1).regions.Load().arenas[0]
	eng := htm.NewEngine(htm.Config{})
	qp := f.NewQP(0, nil)

	err := eng.Run(func(tx *htm.Txn) error {
		_ = tx.Read(hostArena, 0)
		qp.Write(1, 0, 0, []uint64{123}) // remote write lands mid-transaction
		return nil
	})
	if ae, ok := htm.IsAbort(err); !ok || ae.Code != htm.AbortConflict {
		t.Fatalf("err = %v, want conflict abort", err)
	}
}

// TestRDMACASMutualExclusion: concurrent RDMA CAS lockers of one word never
// both succeed, across nodes.
func TestRDMACASMutualExclusion(t *testing.T) {
	f := newTestFabric(3)
	var acquired, releases int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for n := 0; n < 3; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			qp := f.NewQP(n, nil)
			for i := 0; i < 200; i++ {
				if _, ok := qp.CAS(0, 0, 0, 0, uint64(n+1)); ok {
					mu.Lock()
					acquired++
					if acquired-releases != 1 {
						t.Errorf("two lock holders at once")
					}
					releases++
					mu.Unlock()
					qp.Write(0, 0, 0, []uint64{0}) // unlock
				}
			}
		}(n)
	}
	wg.Wait()
	if acquired == 0 {
		t.Fatal("no one ever acquired the lock")
	}
}

func TestVerbsCall(t *testing.T) {
	f := newTestFabric(2)
	f.Serve(1, func(from int, req any) any {
		return req.(int) * 2
	})
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	got, err := qp.Call(1, 21, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.(int) != 42 {
		t.Fatalf("Call = %v, want 42", got)
	}
	want := 2 * f.Model().VerbsMsg(8)
	if clk.Now() != want {
		t.Fatalf("charged %v, want %v", clk.Now(), want)
	}
	if qp.Stats.Msgs.Load() != 1 {
		t.Fatal("msg counter wrong")
	}
}

func TestIPoIBCostsDominateVerbs(t *testing.T) {
	f := newTestFabric(2)
	f.Serve(1, func(from int, req any) any { return req })
	var v1, v2 vtime.Clock
	qpA := f.NewQP(0, &v1)
	qpB := f.NewQP(0, &v2)
	if _, err := qpA.Call(1, 0, 64, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := qpB.CallIPoIB(1, 0, 64, 64); err != nil {
		t.Fatal(err)
	}
	if v2.Now() <= v1.Now()*5 {
		t.Fatalf("IPoIB (%v) should be far slower than verbs (%v)", v2.Now(), v1.Now())
	}
}

func TestTotalsAggregate(t *testing.T) {
	f := newTestFabric(2)
	qa, qb := f.NewQP(0, nil), f.NewQP(1, nil)
	qa.Read(1, 0, 0, make([]uint64, 1))
	qb.Read(0, 0, 0, make([]uint64, 1))
	qa.CAS(1, 0, 0, 0, 1)
	if f.Totals.Reads.Load() != 2 || f.Totals.CASes.Load() != 1 {
		t.Fatalf("totals = reads %d cas %d", f.Totals.Reads.Load(), f.Totals.CASes.Load())
	}
	var sum Counters
	sum.Add(&qa.Stats)
	sum.Add(&qb.Stats)
	if sum.Reads.Load() != 2 {
		t.Fatal("Counters.Add lost ops")
	}
}

func TestAtomicityLevelString(t *testing.T) {
	if AtomicHCA.String() != "IBV_ATOMIC_HCA" || AtomicGLOB.String() != "IBV_ATOMIC_GLOB" {
		t.Fatal("atomicity level strings wrong")
	}
}

func BenchmarkRDMARead64B(b *testing.B) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	dst := make([]uint64, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		qp.Read(1, 0, 0, dst)
	}
}

func BenchmarkRDMACAS(b *testing.B) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	for i := 0; i < b.N; i++ {
		qp.CAS(1, 0, 0, uint64(i), uint64(i+1))
	}
}
