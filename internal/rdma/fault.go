package rdma

import (
	"errors"
	"math/rand"
	"sync"
)

// Fault-injection errors. Every error-returning verb fails with one of
// these; the legacy panicking verbs exist only for fault-free harnesses.
var (
	// ErrNodeUnreachable reports a verb issued against a crashed (fail-stop)
	// node. The condition is persistent until the node is revived, so the
	// transaction layer treats it as "node down" rather than retrying.
	ErrNodeUnreachable = errors.New("rdma: node unreachable")
	// ErrTimeout reports a transient verb failure (lost completion, injected
	// fault): retrying the same verb may succeed.
	ErrTimeout = errors.New("rdma: verb timed out")
	// ErrNoRegion reports a one-sided access to an unregistered region.
	ErrNoRegion = errors.New("rdma: no such region")
	// ErrNoHandler reports a two-sided call to a node with no verbs handler.
	ErrNoHandler = errors.New("rdma: no verbs handler")
	// ErrFenced reports a log-append WR rejected by the target log sink's
	// view-epoch fence: the appender's view of some partition is stale (a
	// zombie ex-primary, or a survivor that has not yet observed a
	// promotion). The append had no effect; the appender must refresh its
	// view before retrying.
	ErrFenced = errors.New("rdma: log append fenced by view epoch")
)

// FaultRule describes the behavior of one node or link under a FaultPlan.
type FaultRule struct {
	// FailProb is the probability (0..1) that a verb fails with ErrTimeout
	// after charging the full modeled timeout.
	FailProb float64
	// ExtraNS is added latency charged to every verb that matches the rule
	// (congestion, a slow switch hop), fault or not.
	ExtraNS int64
}

// FaultPlan is a deterministic, seedable schedule of verb faults installed
// on a Fabric. Rules are matched per destination node and per directed
// (from, to) link; when both match, the link rule's probabilities and
// latencies stack on top of the node rule's. The plan draws from a single
// seeded RNG under a mutex, so a fixed seed plus a fixed verb interleaving
// replays the same faults — the property `make chaos` depends on.
type FaultPlan struct {
	mu   sync.Mutex
	rng  *rand.Rand
	node map[int]FaultRule
	link map[[2]int]FaultRule
}

// NewFaultPlan creates an empty plan drawing from a RNG seeded with seed.
func NewFaultPlan(seed int64) *FaultPlan {
	return &FaultPlan{
		rng:  rand.New(rand.NewSource(seed)),
		node: make(map[int]FaultRule),
		link: make(map[[2]int]FaultRule),
	}
}

// NodeRule installs (or replaces) the rule applied to every verb whose
// destination is node.
func (p *FaultPlan) NodeRule(node int, r FaultRule) {
	p.mu.Lock()
	p.node[node] = r
	p.mu.Unlock()
}

// LinkRule installs (or replaces) the rule for verbs issued by from
// against to (directed).
func (p *FaultPlan) LinkRule(from, to int, r FaultRule) {
	p.mu.Lock()
	p.link[[2]int{from, to}] = r
	p.mu.Unlock()
}

// Clear removes all rules (the RNG keeps its state).
func (p *FaultPlan) Clear() {
	p.mu.Lock()
	p.node = make(map[int]FaultRule)
	p.link = make(map[[2]int]FaultRule)
	p.mu.Unlock()
}

// draw evaluates the rules for a verb from -> to, returning extra latency
// to charge and whether the verb must fail with ErrTimeout.
func (p *FaultPlan) draw(from, to int) (extraNS int64, fail bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.node) == 0 && len(p.link) == 0 {
		return 0, false
	}
	if r, ok := p.node[to]; ok {
		extraNS += r.ExtraNS
		if r.FailProb > 0 && p.rng.Float64() < r.FailProb {
			fail = true
		}
	}
	if r, ok := p.link[[2]int{from, to}]; ok {
		extraNS += r.ExtraNS
		if !fail && r.FailProb > 0 && p.rng.Float64() < r.FailProb {
			fail = true
		}
	}
	return extraNS, fail
}
