package rdma

import (
	"drtm/internal/memory"
	"drtm/internal/obs"
)

// This file is the asynchronous half of the fabric: a post/poll verb engine
// modeled after real RC queue pairs. Callers build work requests (WRs),
// post them to a SendQueue, and poll the completion queue; WRs posted
// between polls are outstanding *concurrently*, so a polled batch charges
// the overlap-aware cost of vtime.Model.BatchOverlapNS — the maximum
// completion latency of the batch plus a per-WR doorbell/CQ cost — instead
// of a full round trip per verb. A bounded window models the NIC's
// outstanding-request limit: batches larger than the window complete in
// window-sized waves, and a window of 1 degenerates to the old strictly
// serial behavior.
//
// Fault injection is per-WR at completion time: each WR draws its own fault
// when its wave completes, a failing WR contributes the completion timeout
// to the wave's overlap charge and has NO side effect (fail-before-apply,
// exactly like the sync verbs), and the other WRs of the wave complete
// normally — partial completion, as on real hardware.
//
// The synchronous Try* verbs are thin wrappers: one WR, completed inline,
// charged its own latency with the doorbell cost folded into the base verb
// constants. Every pre-engine call site keeps compiling and keeps its cost.

// OpCode identifies a work request's one-sided verb.
type OpCode uint8

const (
	OpRead OpCode = iota
	OpWrite
	OpCAS
	OpFAA
	// OpLogAppend is a one-sided WRITE steered into a registered LogSink
	// (FaRM-style commit-backup append): the payload lands in the target's
	// ring-buffer log region without involving its workers, and the sink may
	// reject it (ErrFenced) without any side effect.
	OpLogAppend
)

func (o OpCode) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpCAS:
		return "CAS"
	case OpFAA:
		return "FAA"
	case OpLogAppend:
		return "LOGAPPEND"
	default:
		return "OP?"
	}
}

// WR is one work request. The caller fills the request fields, posts it,
// and reads the completion fields after the wave containing it is polled.
// A WR belongs to one SendQueue at a time and must not be reposted while
// outstanding.
type WR struct {
	Op           OpCode
	Node, Region int
	Off          memory.Offset
	Dst          []uint64 // READ destination (len selects the size)
	Src          []uint64 // WRITE payload
	Old, New     uint64   // CAS arguments
	Delta        uint64   // FAA argument
	Token        uint64   // caller cookie, untouched by the engine

	// Completion fields, valid once Poll has returned the WR.
	Err     error  // nil, ErrNodeUnreachable, ErrTimeout or ErrNoRegion
	Prev    uint64 // prior word value (CAS, FAA)
	Swapped bool   // CAS succeeded
	CostNS  int64  // this WR's own modeled completion latency

	// pooled marks WRs allocated by the queue's Post* helpers: they are
	// recycled when the next batch starts posting, so a completed WR (and
	// Poll's returned slice) stays readable only until the first Post that
	// follows its Poll. WRs built and posted by the caller are never pooled.
	pooled bool
}

// complete executes one work request at completion time: per-WR fault
// draw, side effect on success, per-verb stats, and the WR's individual
// modeled latency in CostNS (the caller charges it, directly for sync verbs
// or via the batch overlap rule for polled waves).
func (q *QP) complete(wr *WR) {
	model := &q.fabric.model
	extra, err := q.faultCheck(wr.Node, wr.Region, wr.Op == OpRead)
	if err != nil {
		q.countFault()
		wr.Err = err
		wr.CostNS = extra + model.TimeoutNS
		return
	}
	if wr.Op == OpLogAppend {
		// Log appends dispatch through the sink registry, not the arena
		// table: the sink owns the ring-buffer head and the admission check.
		s, err := q.fabric.sinkErr(wr.Node, wr.Region)
		if err != nil {
			wr.Err = err
			wr.CostNS = extra
			return
		}
		n := int64(len(wr.Src) * 8)
		// The WRITE crossed the wire whether or not the sink admits it, so
		// the verb's cost and wire counters are charged unconditionally.
		wr.CostNS = extra + int64(model.LogAppend(int(n)))
		q.Stats.LogAppnds.Add(1)
		q.Stats.LogApndB.Add(n)
		q.fabric.Totals.LogAppnds.Add(1)
		q.fabric.Totals.LogApndB.Add(n)
		q.Obs.Inc(obs.EvLogAppend)
		q.Obs.Add(obs.EvBackupBytes, n)
		wr.Err = s.RemoteAppend(q.local, wr.Src)
		return
	}
	a, err := q.fabric.regionErr(wr.Node, wr.Region)
	if err != nil {
		wr.Err = err
		wr.CostNS = extra
		return
	}
	wr.Err = nil
	wr.CostNS = extra
	switch wr.Op {
	case OpRead:
		a.Read(wr.Dst, wr.Off)
		n := int64(len(wr.Dst) * 8)
		q.Stats.Reads.Add(1)
		q.Stats.ReadBytes.Add(n)
		q.fabric.Totals.Reads.Add(1)
		q.fabric.Totals.ReadBytes.Add(n)
		q.Obs.Inc(obs.EvRDMARead)
		wr.CostNS += int64(model.RDMARead(int(n)))
	case OpWrite:
		a.Write(wr.Off, wr.Src)
		n := int64(len(wr.Src) * 8)
		q.Stats.Writes.Add(1)
		q.Stats.WriteByts.Add(n)
		q.fabric.Totals.Writes.Add(1)
		q.fabric.Totals.WriteByts.Add(n)
		q.Obs.Inc(obs.EvRDMAWrite)
		wr.CostNS += int64(model.RDMAWrite(int(n)))
	case OpCAS:
		wr.Prev, wr.Swapped = a.CAS(wr.Off, wr.Old, wr.New)
		q.Stats.CASes.Add(1)
		q.fabric.Totals.CASes.Add(1)
		q.Obs.Inc(obs.EvRDMACAS)
		wr.CostNS += model.RDMACASNS
	case OpFAA:
		wr.Prev = a.FAA(wr.Off, wr.Delta)
		q.Stats.FAAs.Add(1)
		q.fabric.Totals.FAAs.Add(1)
		q.Obs.Inc(obs.EvRDMAFAA)
		wr.CostNS += model.RDMACASNS
	}
}

// DefaultWindow is the default bound on outstanding WRs per SendQueue,
// sized like a small RC QP send queue.
const DefaultWindow = 16

// SendQueue is a worker-private post/poll queue on top of a QP. Post
// appends work requests without touching the fabric; Poll flushes them in
// window-sized waves (ringing one logical doorbell per destination chain),
// applies each WR's effect, and charges the overlap-aware batch cost.
// Like the QP itself it is single-goroutine.
type SendQueue struct {
	qp      *QP
	window  int
	pending []*WR

	// WR pool: done holds the last batch's queue-allocated WRs until the
	// next batch starts posting, then they move to free for reuse. spare
	// double-buffers the pending slice so Poll's returned slice survives
	// one full batch cycle.
	done  []*WR
	free  []*WR
	spare []*WR
	costs []int64
}

// NewSendQueue creates a send queue with the given outstanding-WR window;
// window <= 0 selects DefaultWindow, window 1 serializes every WR.
func (q *QP) NewSendQueue(window int) *SendQueue {
	if window <= 0 {
		window = DefaultWindow
	}
	return &SendQueue{qp: q, window: window}
}

// QP returns the underlying queue pair.
func (sq *SendQueue) QP() *QP { return sq.qp }

// Window returns the outstanding-WR bound.
func (sq *SendQueue) Window() int { return sq.window }

// Pending returns the number of posted, not-yet-polled WRs.
func (sq *SendQueue) Pending() int { return len(sq.pending) }

// Post enqueues a prepared work request and returns it.
func (sq *SendQueue) Post(wr *WR) *WR {
	if len(sq.pending) == 0 && len(sq.done) > 0 {
		// A new batch begins: the previous batch's completions are now
		// consumed (see WR.pooled), so its queue-allocated WRs recycle.
		sq.free = append(sq.free, sq.done...)
		sq.done = sq.done[:0]
	}
	sq.pending = append(sq.pending, wr)
	return wr
}

// getWR pops a pooled work request (or allocates the pool's next one).
func (sq *SendQueue) getWR() *WR {
	if len(sq.pending) == 0 && len(sq.done) > 0 {
		sq.free = append(sq.free, sq.done...)
		sq.done = sq.done[:0]
	}
	if n := len(sq.free); n > 0 {
		wr := sq.free[n-1]
		sq.free = sq.free[:n-1]
		*wr = WR{pooled: true}
		return wr
	}
	return &WR{pooled: true}
}

// PostRead posts a one-sided READ of len(dst) words into dst.
func (sq *SendQueue) PostRead(node, region int, off memory.Offset, dst []uint64) *WR {
	wr := sq.getWR()
	wr.Op, wr.Node, wr.Region, wr.Off, wr.Dst = OpRead, node, region, off, dst
	return sq.Post(wr)
}

// PostWrite posts a one-sided WRITE of src.
func (sq *SendQueue) PostWrite(node, region int, off memory.Offset, src []uint64) *WR {
	wr := sq.getWR()
	wr.Op, wr.Node, wr.Region, wr.Off, wr.Src = OpWrite, node, region, off, src
	return sq.Post(wr)
}

// PostCAS posts a one-sided atomic compare-and-swap of a single word.
func (sq *SendQueue) PostCAS(node, region int, off memory.Offset, old, new uint64) *WR {
	wr := sq.getWR()
	wr.Op, wr.Node, wr.Region, wr.Off, wr.Old, wr.New = OpCAS, node, region, off, old, new
	return sq.Post(wr)
}

// PostFAA posts a one-sided atomic fetch-and-add.
func (sq *SendQueue) PostFAA(node, region int, off memory.Offset, delta uint64) *WR {
	wr := sq.getWR()
	wr.Op, wr.Node, wr.Region, wr.Off, wr.Delta = OpFAA, node, region, off, delta
	return sq.Post(wr)
}

// PostLogAppend posts a one-sided log append of rec into the sink
// registered at (node, region). The ring-buffer offset is owned by the
// sink, so no Off is taken.
func (sq *SendQueue) PostLogAppend(node, region int, rec []uint64) *WR {
	wr := sq.getWR()
	wr.Op, wr.Node, wr.Region, wr.Src = OpLogAppend, node, region, rec
	return sq.Post(wr)
}

// Poll flushes every pending WR and waits for all completions, returning
// the WRs in post order with their completion fields filled. WRs complete
// in waves of at most Window outstanding requests; each wave charges
// max-of-completions plus the per-WR doorbell cost (Model.BatchOverlapNS)
// and yields once, so overlapped verbs cost one scheduling point instead of
// one per round trip. Within a wave side effects apply in post order, which
// preserves the QP's in-order execution guarantee for same-destination
// chains (e.g. value WRITE before unlock WRITE).
func (sq *SendQueue) Poll() []*WR {
	wrs := sq.pending
	sq.pending = sq.spare[:0]
	sq.spare = wrs
	costs := sq.costs[:0]
	defer func() { sq.costs = costs[:0] }()
	for start := 0; start < len(wrs); start += sq.window {
		end := start + sq.window
		if end > len(wrs) {
			end = len(wrs)
		}
		wave := wrs[start:end]
		costs = costs[:0]
		for _, wr := range wave {
			sq.qp.complete(wr)
			costs = append(costs, wr.CostNS)
		}
		sq.qp.Stats.Batches.Add(1)
		sq.qp.fabric.Totals.Batches.Add(1)
		sq.qp.Obs.Inc(obs.EvRDMABatch)
		sq.qp.Obs.Observe(obs.PhaseBatchOps, int64(len(wave)))
		sq.qp.charge(sq.qp.fabric.model.BatchOverlapNS(costs))
		netYield()
	}
	for _, wr := range wrs {
		if wr.pooled {
			sq.done = append(sq.done, wr)
		}
	}
	return wrs
}
