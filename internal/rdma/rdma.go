// Package rdma simulates an InfiniBand RDMA fabric between the logical
// nodes of a DrTM cluster.
//
// Each node owns an Endpoint with registered memory regions (word arenas).
// One-sided operations (READ, WRITE, CAS, FAA) act directly on the target
// arena without involving the target node's workers — and because arenas
// carry per-cache-line versions, every one-sided mutation is visible to the
// target's HTM engine as a conflicting non-transactional access. This is the
// simulated analogue of the cache coherence between a real RDMA NIC's DMA
// and the CPU's transactional tracking, which is the property DrTM's hybrid
// protocol is built on.
//
// Two-sided SEND/RECV verbs are modeled as a registered request handler per
// endpoint invoked synchronously with both message directions charged to the
// caller's virtual clock (user-space polling verbs: ~3 us one way). An IPoIB
// transport with socket-stack costs (~55 us one way) is provided for the
// Calvin baseline, which predates RDMA-native design.
//
// Atomicity levels (Section 4.2/6.3): the fabric models IBV_ATOMIC_HCA by
// default — RDMA CAS is atomic against other RDMA CAS but costs 14.5 us;
// local CPU CAS is a different, cheap path. With IBV_ATOMIC_GLOB the two
// are mutually atomic and implementations may use the cheap local CAS for
// local records (the paper's suggested NIC upgrade); the transaction layer
// consults this level when locking local records in fallback handlers and
// read-only transactions.
package rdma

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/vtime"
)

// AtomicityLevel mirrors the ibv atomic capability levels.
type AtomicityLevel int

const (
	// AtomicHCA: RDMA atomics are atomic only against other RDMA atomics
	// (the paper's ConnectX-3). Lock words must then be manipulated by RDMA
	// CAS even for local records on protocol paths that race with remote
	// lockers.
	AtomicHCA AtomicityLevel = iota
	// AtomicGLOB: RDMA atomics are atomic against CPU atomics (e.g. QLogic
	// QLE); local records can be locked with cheap local CAS.
	AtomicGLOB
)

func (l AtomicityLevel) String() string {
	if l == AtomicGLOB {
		return "IBV_ATOMIC_GLOB"
	}
	return "IBV_ATOMIC_HCA"
}

// Counters tallies one-sided operations, built on the shared obs.Counter
// primitive. All fields are atomic.
type Counters struct {
	Reads     obs.Counter
	Writes    obs.Counter
	CASes     obs.Counter
	FAAs      obs.Counter
	ReadBytes obs.Counter
	WriteByts obs.Counter
	Msgs      obs.Counter
	Faults    obs.Counter
	Batches   obs.Counter // polled SendQueue waves (doorbell batches)
	LogAppnds obs.Counter // one-sided log-append WRs (replication)
	LogApndB  obs.Counter // log-append payload bytes
}

// Add folds src into c (used to aggregate per-QP counters).
func (c *Counters) Add(src *Counters) {
	c.Reads.Add(src.Reads.Load())
	c.Writes.Add(src.Writes.Load())
	c.CASes.Add(src.CASes.Load())
	c.FAAs.Add(src.FAAs.Load())
	c.ReadBytes.Add(src.ReadBytes.Load())
	c.WriteByts.Add(src.WriteByts.Load())
	c.Msgs.Add(src.Msgs.Load())
	c.Faults.Add(src.Faults.Load())
	c.Batches.Add(src.Batches.Load())
	c.LogAppnds.Add(src.LogAppnds.Load())
	c.LogApndB.Add(src.LogApndB.Load())
}

// Handler serves two-sided verbs requests on an endpoint.
type Handler func(from int, req any) any

// LogSink receives one-sided log-append work requests (OpLogAppend)
// targeting a registered log region. RemoteAppend runs at WR completion
// time on the appender's goroutine — the one-sided discipline: the target
// node's workers are not involved. Implementations perform the ring-buffer
// append and any admission check (the cluster's sink fences appends whose
// carried view epoch is stale, returning ErrFenced). A non-nil error means
// the append had no effect.
type LogSink interface {
	RemoteAppend(from int, rec []uint64) error
}

// regionTable is an endpoint's immutable snapshot of registered regions.
// Registration replaces the whole table copy-on-write, so the verb path —
// which may run concurrently on detector/recovery goroutines while a late
// table is being defined — reads it with one atomic load and no lock.
type regionTable struct {
	arenas  map[int]*memory.Arena
	durable map[int]bool // regions that stay readable after a crash (NVRAM)
	sinks   map[int]LogSink
}

// Endpoint is a node's attachment to the fabric.
type Endpoint struct {
	id      int
	regions atomic.Pointer[regionTable]
	regMu   sync.Mutex // serializes copy-on-write registration
	handler atomic.Pointer[Handler]
	down    atomic.Bool
}

func (ep *Endpoint) register(regionID int, a *memory.Arena, durable bool) {
	ep.regMu.Lock()
	defer ep.regMu.Unlock()
	next := ep.cloneRegions()
	next.arenas[regionID] = a
	if durable {
		next.durable[regionID] = true
	}
	ep.regions.Store(next)
}

func (ep *Endpoint) registerSink(regionID int, s LogSink) {
	ep.regMu.Lock()
	defer ep.regMu.Unlock()
	next := ep.cloneRegions()
	next.sinks[regionID] = s
	ep.regions.Store(next)
}

// cloneRegions copies the current table for copy-on-write registration;
// callers hold regMu.
func (ep *Endpoint) cloneRegions() *regionTable {
	old := ep.regions.Load()
	next := &regionTable{
		arenas:  make(map[int]*memory.Arena, len(old.arenas)+1),
		durable: make(map[int]bool, len(old.durable)+1),
		sinks:   make(map[int]LogSink, len(old.sinks)+1),
	}
	for k, v := range old.arenas {
		next.arenas[k] = v
	}
	for k, v := range old.durable {
		next.durable[k] = v
	}
	for k, v := range old.sinks {
		next.sinks[k] = v
	}
	return next
}

// Fabric connects the endpoints of a cluster.
type Fabric struct {
	model     vtime.Model
	atomicity AtomicityLevel
	eps       []*Endpoint
	plan      atomic.Pointer[FaultPlan]
	Totals    Counters
}

// NewFabric creates a fabric with n endpoints (node IDs 0..n-1).
func NewFabric(n int, model vtime.Model, atomicity AtomicityLevel) *Fabric {
	f := &Fabric{model: model, atomicity: atomicity}
	for i := 0; i < n; i++ {
		ep := &Endpoint{id: i}
		ep.regions.Store(&regionTable{
			arenas:  make(map[int]*memory.Arena),
			durable: make(map[int]bool),
			sinks:   make(map[int]LogSink),
		})
		f.eps = append(f.eps, ep)
	}
	return f
}

// SetFaultPlan installs (or, with nil, removes) the fabric's fault plan.
func (f *Fabric) SetFaultPlan(p *FaultPlan) { f.plan.Store(p) }

// Plan returns the installed fault plan, or nil.
func (f *Fabric) Plan() *FaultPlan { return f.plan.Load() }

// SetNodeDown marks a node's endpoint unreachable (fail-stop crash) or
// reachable again. While down, every verb against the node fails with
// ErrNodeUnreachable — except READs of regions registered durable, which
// model battery-backed NVRAM that survivors drain during recovery (the
// paper's flush-on-failure assumption, Section 4.6).
func (f *Fabric) SetNodeDown(node int, down bool) { f.eps[node].down.Store(down) }

// NodeDown reports whether the node's endpoint is marked unreachable.
func (f *Fabric) NodeDown(node int) bool { return f.eps[node].down.Load() }

// Model returns the fabric's cost model.
func (f *Fabric) Model() *vtime.Model { return &f.model }

// Atomicity returns the configured atomicity level.
func (f *Fabric) Atomicity() AtomicityLevel { return f.atomicity }

// Nodes returns the endpoint count.
func (f *Fabric) Nodes() int { return len(f.eps) }

// Endpoint returns node's endpoint.
func (f *Fabric) Endpoint(node int) *Endpoint {
	return f.eps[node]
}

// Register exposes an arena as a remotely accessible region of a node.
// Safe to call while traffic is live (tables may be defined after the
// cluster — and its detector goroutines — have started).
func (f *Fabric) Register(node, regionID int, a *memory.Arena) {
	f.eps[node].register(regionID, a, false)
}

// RegisterDurable registers an arena as an NVRAM-backed region: like
// Register, but READs of the region keep succeeding while the node is down.
func (f *Fabric) RegisterDurable(node, regionID int, a *memory.Arena) {
	f.eps[node].register(regionID, a, true)
}

// RegisterLogSink exposes a log sink as the target of one-sided log-append
// WRs (OpLogAppend) against (node, regionID). Safe to call while traffic is
// live. The sink region typically also registers its backing arena with
// RegisterDurable under the same ID, so survivors can replay the log with
// plain READs after the host crashes.
func (f *Fabric) RegisterLogSink(node, regionID int, s LogSink) {
	f.eps[node].registerSink(regionID, s)
}

// Serve installs the two-sided verbs handler for a node.
func (f *Fabric) Serve(node int, h Handler) {
	f.eps[node].handler.Store(&h)
}

func (f *Fabric) region(node, regionID int) *memory.Arena {
	a, ok := f.eps[node].regions.Load().arenas[regionID]
	if !ok {
		panic(fmt.Sprintf("rdma: node %d has no region %d", node, regionID))
	}
	return a
}

func (f *Fabric) regionErr(node, regionID int) (*memory.Arena, error) {
	a, ok := f.eps[node].regions.Load().arenas[regionID]
	if !ok {
		return nil, fmt.Errorf("%w: node %d region %d", ErrNoRegion, node, regionID)
	}
	return a, nil
}

func (f *Fabric) sinkErr(node, regionID int) (LogSink, error) {
	s, ok := f.eps[node].regions.Load().sinks[regionID]
	if !ok {
		return nil, fmt.Errorf("%w: node %d log region %d", ErrNoRegion, node, regionID)
	}
	return s, nil
}

// QP is a queue pair: a worker-private handle for issuing verbs. Costs are
// charged to the clock bound at creation (nil clock charges nothing, for
// unit tests). When Obs is set (the cluster wires each worker's QP to the
// worker's observability shard), every verb also emits the matching
// obs event; a nil Obs shard is a no-op sink.
type QP struct {
	fabric *Fabric
	local  int
	clock  *vtime.Clock
	Stats  Counters
	Obs    *obs.Shard
}

// NewQP creates a queue pair for a worker on node local.
func (f *Fabric) NewQP(local int, clock *vtime.Clock) *QP {
	return &QP{fabric: f, local: local, clock: clock}
}

// Local returns the node this QP belongs to.
func (q *QP) Local() int { return q.local }

func (q *QP) charge(d int64) {
	if q.clock != nil {
		q.clock.ChargeNS(d)
	}
}

// netYield marks a network round trip: yield so other workers' execution
// genuinely overlaps it. Without this, a single-core simulation host would
// let each transaction run to completion within one scheduler slice,
// hiding the lock-hold/lease contention windows the protocol is designed
// around. Local CPU operations (LocalCAS) must NOT yield — they are
// nanoseconds on real hardware and inflating them distorts read-only
// transactions with large local read sets.
func netYield() { runtime.Gosched() }

// faultCheck evaluates the fail-before-apply fault model for one verb (or
// one work request of a batch) targeting (node, region) WITHOUT charging
// the clock: it returns any injected extra latency and the failure, and the
// caller decides how the cost lands — the sync wrappers charge it directly,
// the async engine folds it into the batch's overlap charge. A verb that
// fails never reached the target, so it has no side effect (the request,
// not the ack, is lost). read selects the NVRAM carve-out: READs of durable
// regions survive the target being down.
func (q *QP) faultCheck(node, region int, read bool) (extraNS int64, err error) {
	f := q.fabric
	ep := f.eps[node]
	if ep.down.Load() && !(read && ep.regions.Load().durable[region]) {
		return 0, ErrNodeUnreachable
	}
	// Fail-stop covers the source too: a crashed machine cannot issue
	// verbs. In the simulator a crashed node's worker goroutines keep
	// running; failing their verbs here keeps those zombies from mutating
	// live nodes' memory behind recovery's back.
	if src := f.eps[q.local]; src.down.Load() {
		return 0, ErrNodeUnreachable
	}
	if p := f.plan.Load(); p != nil {
		extra, fail := p.draw(q.local, node)
		if fail {
			return extra, ErrTimeout
		}
		return extra, nil
	}
	return 0, nil
}

// fault is the sync-path fault check: a failing verb charges the full
// modeled completion timeout to the issuing worker's clock, as a real QP
// would spin on the completion queue until its timeout fires.
func (q *QP) fault(node, region int, read bool) error {
	extra, err := q.faultCheck(node, region, read)
	if err != nil {
		q.countFault()
		q.charge(extra + q.fabric.model.TimeoutNS)
		netYield()
		return err
	}
	if extra > 0 {
		q.charge(extra)
	}
	return nil
}

func (q *QP) countFault() {
	q.Stats.Faults.Add(1)
	q.fabric.Totals.Faults.Add(1)
	q.Obs.Inc(obs.EvVerbFault)
}

// probeRegion is the pseudo-region Probe targets; it is never durable, so a
// probe of a down node always reports ErrNodeUnreachable.
const probeRegion = -1

// TryRead performs a one-sided RDMA READ of len(dst) words from (node,
// region, off) into dst. Per-cache-line consistency only, as on real
// hardware. Fails with ErrNodeUnreachable / ErrTimeout / ErrNoRegion; dst is
// untouched on error.
//
// The sync Try* verbs are one-WR wrappers over the async engine's
// completion path: the WR completes inline and its individual latency is
// charged directly (no doorbell overlap — a lone verb is a full round trip,
// exactly the pre-engine cost).
func (q *QP) TryRead(node, region int, off memory.Offset, dst []uint64) error {
	wr := WR{Op: OpRead, Node: node, Region: region, Off: off, Dst: dst}
	q.complete(&wr)
	q.charge(wr.CostNS)
	netYield()
	return wr.Err
}

// TryWrite performs a one-sided RDMA WRITE of src to (node, region, off).
func (q *QP) TryWrite(node, region int, off memory.Offset, src []uint64) error {
	wr := WR{Op: OpWrite, Node: node, Region: region, Off: off, Src: src}
	q.complete(&wr)
	q.charge(wr.CostNS)
	netYield()
	return wr.Err
}

// TryCAS performs a one-sided atomic compare-and-swap on a single word,
// returning the prior value and whether the swap happened.
func (q *QP) TryCAS(node, region int, off memory.Offset, old, new uint64) (uint64, bool, error) {
	wr := WR{Op: OpCAS, Node: node, Region: region, Off: off, Old: old, New: new}
	q.complete(&wr)
	q.charge(wr.CostNS)
	netYield()
	return wr.Prev, wr.Swapped, wr.Err
}

// TryFAA performs a one-sided atomic fetch-and-add, returning the prior
// value.
func (q *QP) TryFAA(node, region int, off memory.Offset, delta uint64) (uint64, error) {
	wr := WR{Op: OpFAA, Node: node, Region: region, Off: off, Delta: delta}
	q.complete(&wr)
	q.charge(wr.CostNS)
	netYield()
	return wr.Prev, wr.Err
}

// TryLogAppend performs a one-sided log append of rec into the sink
// registered at (node, region): the sync one-WR form of PostLogAppend.
// Fails with ErrNodeUnreachable / ErrTimeout / ErrNoRegion like any verb,
// or with ErrFenced when the sink's view-epoch check rejects the record.
func (q *QP) TryLogAppend(node, region int, rec []uint64) error {
	wr := WR{Op: OpLogAppend, Node: node, Region: region, Src: rec}
	q.complete(&wr)
	q.charge(wr.CostNS)
	netYield()
	return wr.Err
}

// Probe issues a minimal zero-byte READ against node to test reachability:
// nil when the node answered, ErrNodeUnreachable when it is down, ErrTimeout
// when the probe itself was lost (inconclusive — retry). The failure
// detector uses it to confirm a suspected crash before electing a
// recovery coordinator.
func (q *QP) Probe(node int) error {
	if err := q.fault(node, probeRegion, false); err != nil {
		return err
	}
	q.Stats.Reads.Add(1)
	q.fabric.Totals.Reads.Add(1)
	q.Obs.Inc(obs.EvRDMARead)
	q.charge(int64(q.fabric.model.RDMARead(0)))
	netYield()
	return nil
}

// Read is TryRead for fault-free harnesses (unit tests, closed-form
// benchmarks): any verb failure panics. Production protocol paths use the
// Try variants and handle the errors.
func (q *QP) Read(node, region int, off memory.Offset, dst []uint64) {
	if err := q.TryRead(node, region, off, dst); err != nil {
		panic(fmt.Sprintf("rdma: READ node %d region %d: %v", node, region, err))
	}
}

// Write is TryWrite with failures escalated to panics; see Read.
func (q *QP) Write(node, region int, off memory.Offset, src []uint64) {
	if err := q.TryWrite(node, region, off, src); err != nil {
		panic(fmt.Sprintf("rdma: WRITE node %d region %d: %v", node, region, err))
	}
}

// CAS is TryCAS with failures escalated to panics; see Read.
func (q *QP) CAS(node, region int, off memory.Offset, old, new uint64) (uint64, bool) {
	prev, ok, err := q.TryCAS(node, region, off, old, new)
	if err != nil {
		panic(fmt.Sprintf("rdma: CAS node %d region %d: %v", node, region, err))
	}
	return prev, ok
}

// FAA is TryFAA with failures escalated to panics; see Read.
func (q *QP) FAA(node, region int, off memory.Offset, delta uint64) uint64 {
	prev, err := q.TryFAA(node, region, off, delta)
	if err != nil {
		panic(fmt.Sprintf("rdma: FAA node %d region %d: %v", node, region, err))
	}
	return prev
}

// LocalCAS performs a CPU compare-and-swap on a local region. Only legal
// when the race partners also use CPU atomics, or under AtomicGLOB; the
// transaction layer enforces that discipline.
func (q *QP) LocalCAS(region int, off memory.Offset, old, new uint64) (uint64, bool) {
	a := q.fabric.region(q.local, region)
	prev, ok := a.CAS(off, old, new)
	q.charge(q.fabric.model.LocalCASNS)
	return prev, ok
}

// Call sends a two-sided verbs request to node and waits for the reply,
// charging one message cost each way. reqBytes/respBytes size the messages
// for the cost model. A missing handler or an unreachable/faulted node is
// an error (a crashed node is a recoverable condition, not process death).
func (q *QP) Call(node int, req any, reqBytes, respBytes int) (any, error) {
	if err := q.fault(node, probeRegion, false); err != nil {
		return nil, err
	}
	h := q.fabric.eps[node].handler.Load()
	if h == nil {
		return nil, fmt.Errorf("%w: node %d", ErrNoHandler, node)
	}
	q.Stats.Msgs.Add(1)
	q.fabric.Totals.Msgs.Add(1)
	q.Obs.Inc(obs.EvVerbsMsg)
	q.charge(int64(q.fabric.model.VerbsMsg(reqBytes)))
	netYield()
	resp := (*h)(q.local, req)
	q.charge(int64(q.fabric.model.VerbsMsg(respBytes)))
	netYield()
	return resp, nil
}

// CallIPoIB is Call over the emulated IPoIB socket transport (used by the
// Calvin baseline, which does not speak RDMA).
func (q *QP) CallIPoIB(node int, req any, reqBytes, respBytes int) (any, error) {
	if err := q.fault(node, probeRegion, false); err != nil {
		return nil, err
	}
	h := q.fabric.eps[node].handler.Load()
	if h == nil {
		return nil, fmt.Errorf("%w: node %d", ErrNoHandler, node)
	}
	q.Stats.Msgs.Add(1)
	q.fabric.Totals.Msgs.Add(1)
	q.Obs.Inc(obs.EvVerbsMsg)
	q.charge(int64(q.fabric.model.IPoIBMsg(reqBytes)))
	netYield()
	resp := (*h)(q.local, req)
	q.charge(int64(q.fabric.model.IPoIBMsg(respBytes)))
	netYield()
	return resp, nil
}
