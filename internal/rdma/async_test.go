package rdma

import (
	"sync"
	"testing"
	"time"

	"drtm/internal/memory"
	"drtm/internal/vtime"
)

// Golden overlap charging: a polled wave of N same-destination READs costs
// the slowest completion plus one doorbell per WR, not N round trips.
func TestBatchOverlapGolden(t *testing.T) {
	const n = 8
	f := newTestFabric(2)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	sq := qp.NewSendQueue(n)

	for i := 0; i < n; i++ {
		sq.PostRead(1, 0, 0, make([]uint64, 8))
	}
	wrs := sq.Poll()
	if len(wrs) != n {
		t.Fatalf("Poll returned %d WRs, want %d", len(wrs), n)
	}
	m := f.Model()
	want := m.RDMARead(64) + time.Duration(n*m.DoorbellNS)
	if got := clk.Now(); got != want {
		t.Fatalf("batched charge = %v, want max+N*doorbell = %v", got, want)
	}

	// The window=1 control arm degenerates to one round trip per WR.
	clk.Reset()
	serial := qp.NewSendQueue(1)
	for i := 0; i < n; i++ {
		serial.PostRead(1, 0, 0, make([]uint64, 8))
	}
	serial.Poll()
	want = time.Duration(n) * (m.RDMARead(64) + time.Duration(m.DoorbellNS))
	if got := clk.Now(); got != want {
		t.Fatalf("window=1 charge = %v, want N serial round trips = %v", got, want)
	}
}

// Posting more WRs than the window splits the queue into waves in post
// order, each polled (and charged) as its own doorbell batch.
func TestBatchWavesRespectWindow(t *testing.T) {
	f := newTestFabric(2)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	sq := qp.NewSendQueue(4)

	for i := 0; i < 10; i++ {
		sq.PostRead(1, 0, 0, make([]uint64, 1))
	}
	sq.Poll()
	if got := qp.Stats.Batches.Load(); got != 3 {
		t.Fatalf("Batches = %d, want 3 waves of (4,4,2)", got)
	}
	m := f.Model()
	read := m.RDMARead(8)
	want := 2*(read+time.Duration(4*m.DoorbellNS)) + read + time.Duration(2*m.DoorbellNS)
	if got := clk.Now(); got != want {
		t.Fatalf("charge = %v, want %v", got, want)
	}
	if sq.Pending() != 0 {
		t.Fatalf("Pending = %d after Poll, want 0", sq.Pending())
	}
}

// Faults act per WR at completion time: inside one polled wave, failed WRs
// report ErrTimeout with no memory side effect while their batch-mates
// land, and the wave's charge absorbs the timeout.
func TestBatchPartialCompletionFault(t *testing.T) {
	f := newTestFabric(2)
	plan := NewFaultPlan(7)
	plan.NodeRule(1, FaultRule{FailProb: 0.5})
	f.SetFaultPlan(plan)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	sq := qp.NewSendQueue(16)

	for i := 0; i < 16; i++ {
		sq.PostWrite(1, 0, memory.Offset(i), []uint64{uint64(100 + i)})
	}
	wrs := sq.Poll()

	var failed, landed int
	probe := f.NewQP(0, nil) // fault-free reader
	plan.Clear()
	for i, wr := range wrs {
		var got [1]uint64
		probe.Read(1, 0, memory.Offset(i), got[:])
		if wr.Err != nil {
			failed++
			if got[0] != 0 {
				t.Fatalf("WR %d failed with %v but wrote %d", i, wr.Err, got[0])
			}
		} else {
			landed++
			if got[0] != uint64(100+i) {
				t.Fatalf("WR %d completed but memory = %d, want %d", i, got[0], 100+i)
			}
		}
	}
	if failed == 0 || landed == 0 {
		t.Fatalf("want a partially completed wave, got failed=%d landed=%d", failed, landed)
	}
	// A failed WR charges the full modeled timeout, which dominates the wave.
	if got, min := clk.Now(), time.Duration(f.Model().TimeoutNS); got < min {
		t.Fatalf("wave with faults charged %v, want >= timeout %v", got, min)
	}
}

// Concurrent posters over independent send queues to a shared destination:
// exercised under -race by `make race`.
func TestBatchConcurrentSendQueues(t *testing.T) {
	f := newTestFabric(3)
	plan := NewFaultPlan(11)
	plan.NodeRule(2, FaultRule{FailProb: 0.2})
	f.SetFaultPlan(plan)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var clk vtime.Clock
			sq := f.NewQP(g%2, &clk).NewSendQueue(8)
			for round := 0; round < 50; round++ {
				for i := 0; i < 8; i++ {
					sq.PostFAA(2, 0, 0, 1)
				}
				for _, wr := range sq.Poll() {
					if wr.Err != nil && wr.Err != ErrTimeout {
						t.Errorf("goroutine %d: unexpected error %v", g, wr.Err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	plan.Clear()
	var got [1]uint64
	f.NewQP(0, nil).Read(2, 0, 0, got[:])
	faults := f.Totals.Faults.Load()
	if want := uint64(4*50*8) - uint64(faults); got[0] != want {
		t.Fatalf("FAA sum = %d, want %d (1600 posts - %d faults)", got[0], want, faults)
	}
}
