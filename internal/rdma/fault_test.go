package rdma

import (
	"errors"
	"testing"

	"drtm/internal/memory"
	"drtm/internal/vtime"
)

func TestCrashedNodeUnreachable(t *testing.T) {
	f := newTestFabric(2)
	f.RegisterDurable(1, 7, memory.NewArena(100, 64))
	qp := f.NewQP(0, nil)

	// Seed the durable (NVRAM) region before the crash.
	qp.Write(1, 7, 0, []uint64{42})
	f.SetNodeDown(1, true)
	if !f.NodeDown(1) {
		t.Fatal("NodeDown not reported")
	}

	dst := make([]uint64, 1)
	if err := qp.TryRead(1, 0, 0, dst); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("READ of plain region = %v, want ErrNodeUnreachable", err)
	}
	if err := qp.TryWrite(1, 0, 0, []uint64{1}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("WRITE = %v, want ErrNodeUnreachable", err)
	}
	if _, _, err := qp.TryCAS(1, 0, 0, 0, 1); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("CAS = %v, want ErrNodeUnreachable", err)
	}
	if _, err := qp.TryFAA(1, 0, 0, 1); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("FAA = %v, want ErrNodeUnreachable", err)
	}
	if err := qp.Probe(1); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("Probe = %v, want ErrNodeUnreachable", err)
	}

	// Flush-on-failure: the NVRAM log region stays readable...
	if err := qp.TryRead(1, 7, 0, dst); err != nil {
		t.Fatalf("READ of durable region = %v, want nil", err)
	}
	if dst[0] != 42 {
		t.Fatalf("durable read = %d, want 42", dst[0])
	}
	// ...but not writable: only survivors draining logs are modeled.
	if err := qp.TryWrite(1, 7, 0, []uint64{9}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("WRITE of durable region = %v, want ErrNodeUnreachable", err)
	}
	if f.Totals.Faults.Load() == 0 {
		t.Fatal("fault counter not incremented")
	}

	f.SetNodeDown(1, false)
	if err := qp.TryRead(1, 0, 0, dst); err != nil {
		t.Fatalf("READ after revive = %v", err)
	}
}

// TestCrashedSourceCannotIssueVerbs: fail-stop covers the sender too. A
// crashed node's worker goroutines keep running in the simulator; their
// verbs must fail so zombies cannot mutate live nodes' memory.
func TestCrashedSourceCannotIssueVerbs(t *testing.T) {
	f := newTestFabric(2)
	f.RegisterDurable(1, 7, memory.NewArena(100, 64))
	zombie := f.NewQP(0, nil)
	f.SetNodeDown(0, true)

	if err := zombie.TryWrite(1, 0, 0, []uint64{1}); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("zombie WRITE = %v, want ErrNodeUnreachable", err)
	}
	if _, _, err := zombie.TryCAS(1, 0, 0, 0, 1); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("zombie CAS = %v, want ErrNodeUnreachable", err)
	}
	// Even the durable-read exception is for survivors, not for the dead.
	if err := zombie.TryRead(1, 7, 0, make([]uint64, 1)); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("zombie durable READ = %v, want ErrNodeUnreachable", err)
	}

	f.SetNodeDown(0, false)
	if err := zombie.TryWrite(1, 0, 0, []uint64{1}); err != nil {
		t.Fatalf("WRITE after revive = %v", err)
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		f := newTestFabric(2)
		plan := NewFaultPlan(seed)
		plan.NodeRule(1, FaultRule{FailProb: 0.5})
		f.SetFaultPlan(plan)
		qp := f.NewQP(0, nil)
		var outcomes []bool
		for i := 0; i < 200; i++ {
			err := qp.TryWrite(1, 0, 0, []uint64{uint64(i)})
			if err != nil && !errors.Is(err, ErrTimeout) {
				t.Fatalf("unexpected error %v", err)
			}
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d diverges across identical seeds", i)
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("fails = %d of %d, want a mix", fails, len(a))
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestFaultChargesTimeout(t *testing.T) {
	f := newTestFabric(2)
	plan := NewFaultPlan(1)
	plan.NodeRule(1, FaultRule{FailProb: 1.0})
	f.SetFaultPlan(plan)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	if err := qp.TryRead(1, 0, 0, make([]uint64, 1)); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := int64(clk.Now()); got != f.Model().TimeoutNS {
		t.Fatalf("charged %d ns, want the %d ns timeout", got, f.Model().TimeoutNS)
	}
}

func TestFaultPlanExtraLatency(t *testing.T) {
	f := newTestFabric(2)
	plan := NewFaultPlan(1)
	plan.LinkRule(0, 1, FaultRule{ExtraNS: 10_000})
	f.SetFaultPlan(plan)
	var clk vtime.Clock
	qp := f.NewQP(0, &clk)
	if err := qp.TryRead(1, 0, 0, make([]uint64, 1)); err != nil {
		t.Fatal(err)
	}
	want := int64(f.Model().RDMARead(8)) + 10_000
	if got := int64(clk.Now()); got != want {
		t.Fatalf("charged %d ns, want %d", got, want)
	}
}

func TestCallNilHandlerIsError(t *testing.T) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	if _, err := qp.Call(1, "x", 8, 8); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("Call = %v, want ErrNoHandler", err)
	}
	if _, err := qp.CallIPoIB(1, "x", 8, 8); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("CallIPoIB = %v, want ErrNoHandler", err)
	}
}

func TestCallToDownNodeIsError(t *testing.T) {
	f := newTestFabric(2)
	f.Serve(1, func(from int, req any) any { return req })
	f.SetNodeDown(1, true)
	qp := f.NewQP(0, nil)
	if _, err := qp.Call(1, "x", 8, 8); !errors.Is(err, ErrNodeUnreachable) {
		t.Fatalf("Call = %v, want ErrNodeUnreachable", err)
	}
}

func TestRegionMissIsError(t *testing.T) {
	f := newTestFabric(2)
	qp := f.NewQP(0, nil)
	if err := qp.TryRead(1, 99, 0, make([]uint64, 1)); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("err = %v, want ErrNoRegion", err)
	}
}
