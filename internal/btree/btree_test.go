package btree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty found something")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty found something")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty found something")
	}
	if tr.Delete(1) {
		t.Fatal("Delete on empty succeeded")
	}
}

func TestInsertGetOverwrite(t *testing.T) {
	tr := New()
	if !tr.Insert(10, 100) {
		t.Fatal("first insert not new")
	}
	if tr.Insert(10, 200) {
		t.Fatal("overwrite reported as new")
	}
	v, ok := tr.Get(10)
	if !ok || v != 200 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestManyInsertsSortedScan(t *testing.T) {
	tr := New()
	const n = 10_000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Insert(uint64(k)+1, uint64(k)*7)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	var got []uint64
	tr.Ascend(0, ^uint64(0), func(k, v uint64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan visited %d keys", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("scan out of order")
	}
	for _, k := range perm {
		v, ok := tr.Get(uint64(k) + 1)
		if !ok || v != uint64(k)*7 {
			t.Fatalf("Get(%d) = %d,%v", k+1, v, ok)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New()
	for k := uint64(10); k <= 100; k += 10 {
		tr.Insert(k, k)
	}
	var got []uint64
	tr.Ascend(25, 75, func(k, v uint64) bool { got = append(got, k); return true })
	want := []uint64{30, 40, 50, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range = %v, want %v", got, want)
		}
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for k := uint64(1); k <= 100; k++ {
		tr.Insert(k, k)
	}
	count := 0
	tr.Ascend(1, 100, func(k, v uint64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDescend(t *testing.T) {
	tr := New()
	for k := uint64(1); k <= 50; k++ {
		tr.Insert(k, k)
	}
	var got []uint64
	tr.Descend(10, 20, func(k, v uint64) bool { got = append(got, k); return true })
	if len(got) != 11 || got[0] != 20 || got[10] != 10 {
		t.Fatalf("descend = %v", got)
	}
	// Early stop: latest 3.
	got = got[:0]
	tr.Descend(0, ^uint64(0), func(k, v uint64) bool {
		got = append(got, k)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 50 || got[2] != 48 {
		t.Fatalf("latest-3 = %v", got)
	}
}

func TestDeleteLazy(t *testing.T) {
	tr := New()
	const n = 2000
	for k := uint64(1); k <= n; k++ {
		tr.Insert(k, k)
	}
	for k := uint64(1); k <= n; k += 2 {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	var got int
	tr.Ascend(0, ^uint64(0), func(k, v uint64) bool {
		if k%2 != 0 {
			t.Fatalf("deleted key %d visible in scan", k)
		}
		got++
		return true
	})
	if got != n/2 {
		t.Fatalf("scan after deletes visited %d", got)
	}
	// Delete everything; Min/Max must cope with empty leaves.
	for k := uint64(2); k <= n; k += 2 {
		tr.Delete(k)
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min found key in emptied tree")
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	for _, k := range []uint64{500, 3, 999, 42} {
		tr.Insert(k, k*2)
	}
	if k, v, ok := tr.Min(); !ok || k != 3 || v != 6 {
		t.Fatalf("Min = %d,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 999 || v != 1998 {
		t.Fatalf("Max = %d,%d,%v", k, v, ok)
	}
	tr.Delete(3)
	if k, _, ok := tr.Min(); !ok || k != 42 {
		t.Fatalf("Min after delete = %d,%v", k, ok)
	}
}

// TestQuickAgainstMapModel randomizes operations against a map+sort model.
func TestQuickAgainstMapModel(t *testing.T) {
	f := func(ops []uint32) bool {
		tr := New()
		model := map[uint64]uint64{}
		for _, op := range ops {
			k := uint64(op%512) + 1
			switch (op >> 16) % 3 {
			case 0:
				tr.Insert(k, uint64(op))
				model[k] = uint64(op)
			case 1:
				got := tr.Delete(k)
				_, want := model[k]
				if got != want {
					return false
				}
				delete(model, k)
			default:
				v, ok := tr.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
			}
		}
		if tr.Len() != len(model) {
			return false
		}
		var keys []uint64
		tr.Ascend(0, ^uint64(0), func(k, v uint64) bool {
			keys = append(keys, k)
			return v == model[k]
		})
		return len(keys) == len(model) &&
			sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixed(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				k := base*1000 + i + 1
				tr.Insert(k, k)
				if v, ok := tr.Get(k); !ok || v != k {
					t.Errorf("lost key %d", k)
				}
				if i%3 == 0 {
					tr.Delete(k)
				}
			}
		}(uint64(g))
	}
	// Concurrent scanners must never see disorder.
	stop := make(chan struct{})
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			prev := uint64(0)
			tr.Ascend(0, ^uint64(0), func(k, v uint64) bool {
				if k <= prev {
					t.Errorf("scan disorder: %d after %d", k, prev)
					return false
				}
				prev = k
				return true
			})
		}
	}()
	wg.Wait()
	close(stop)
	scanWG.Wait()
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Insert(uint64(i)+1, uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100_000; i++ {
		tr.Insert(uint64(i)+1, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(uint64(i%100_000) + 1)
	}
}

func BenchmarkScan100(b *testing.B) {
	tr := New()
	for i := 0; i < 100_000; i++ {
		tr.Insert(uint64(i)+1, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint64(i%99_000) + 1
		n := 0
		tr.Ascend(lo, lo+99, func(k, v uint64) bool { n++; return true })
	}
}
