// Package btree provides the ordered-store index of DrTM's memory store
// layer (Section 5): a concurrent in-memory B+ tree mapping 64-bit keys to
// 64-bit payloads (record offsets in a table's arena).
//
// The paper reuses the DBX B+ tree, whose operations are protected by HTM
// used as lock elision. Go cannot elide locks in hardware, so this tree
// substitutes a reader/writer latch with the same observable semantics:
// linearizable point and range operations. Records of ordered tables do NOT
// live in the tree — the tree is only the index; record bodies live in
// HTM/2PL-protected arenas like every other record, so transactional
// isolation of ordered-table *data* is unaffected by the substitution (see
// DESIGN.md, "Known deviations").
//
// As in the paper, the ordered store is accessed locally (or via
// SEND/RECV verbs by shipping the operation to the host, Section 6.5);
// there is no one-sided RDMA path for B+ trees.
package btree

import "sync"

// degree is the maximum number of keys per node; chosen so nodes are a few
// cache lines, as in cache-conscious trees.
const degree = 32

type node struct {
	keys     []uint64
	vals     []uint64 // leaves only
	children []*node  // internal only
	next     *node    // leaf chain for range scans
	leaf     bool
}

// Tree is a concurrent B+ tree. The zero value is not usable; call New.
type Tree struct {
	mu   sync.RWMutex
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of keys.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// search returns the index of the first key >= k.
func search(keys []uint64, k uint64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the payload for key.
func (t *Tree) Get(key uint64) (uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Insert adds or overwrites key's payload, reporting whether the key was new.
func (t *Tree) Insert(key, val uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(key, val, true)
}

// InsertIfAbsent adds key only if it is not present, reporting success.
// Existing payloads are never overwritten.
func (t *Tree) InsertIfAbsent(key, val uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(key, val, false)
}

func (t *Tree) insertLocked(key, val uint64, overwrite bool) bool {
	if len(t.root.keys) == maxKeys() {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.splitChild(t.root, 0)
	}
	added := t.insertNonFull(t.root, key, val, overwrite)
	if added {
		t.size++
	}
	return added
}

func maxKeys() int { return degree }

func (t *Tree) splitChild(parent *node, i int) {
	child := parent.children[i]
	mid := len(child.keys) / 2
	var right *node
	var sep uint64
	if child.leaf {
		right = &node{
			leaf: true,
			keys: append([]uint64(nil), child.keys[mid:]...),
			vals: append([]uint64(nil), child.vals[mid:]...),
			next: child.next,
		}
		child.keys = child.keys[:mid:mid]
		child.vals = child.vals[:mid:mid]
		child.next = right
		sep = right.keys[0]
	} else {
		right = &node{
			keys:     append([]uint64(nil), child.keys[mid+1:]...),
			children: append([]*node(nil), child.children[mid+1:]...),
		}
		sep = child.keys[mid]
		child.keys = child.keys[:mid:mid]
		child.children = child.children[: mid+1 : mid+1]
	}
	parent.keys = append(parent.keys, 0)
	copy(parent.keys[i+1:], parent.keys[i:])
	parent.keys[i] = sep
	parent.children = append(parent.children, nil)
	copy(parent.children[i+2:], parent.children[i+1:])
	parent.children[i+1] = right
}

func (t *Tree) insertNonFull(n *node, key, val uint64, overwrite bool) bool {
	for {
		if n.leaf {
			i := search(n.keys, key)
			if i < len(n.keys) && n.keys[i] == key {
				if overwrite {
					n.vals[i] = val
				}
				return false
			}
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = key
			n.vals = append(n.vals, 0)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = val
			return true
		}
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		if len(n.children[i].keys) == maxKeys() {
			t.splitChild(n, i)
			if key >= n.keys[i] {
				i++
			}
		}
		n = n.children[i]
	}
}

// Delete removes key, reporting whether it was present. Deletion is lazy:
// leaves are never merged or unlinked (scans skip empty leaves), which is
// the right trade-off for the workloads' bounded-queue deletes (NEW-ORDER)
// and keeps the concurrent structure simple.
func (t *Tree) Delete(key uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.root
	for !n.leaf {
		i := search(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
	i := search(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	t.size--
	return true
}

// Ascend visits keys in [lo, hi] in ascending order; fn returning false
// stops the scan.
func (t *Tree) Ascend(lo, hi uint64, fn func(key, val uint64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		i := search(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.children[i]
	}
	for n != nil {
		for i := search(n.keys, lo); i < len(n.keys); i++ {
			if n.keys[i] > hi {
				return
			}
			if !fn(n.keys[i], n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Descend visits keys in [lo, hi] in descending order; fn returning false
// stops the scan. Descending order is served by collecting the range first
// (leaves link forward only), which is fine for the short "latest N"
// scans OLTP uses it for.
func (t *Tree) Descend(lo, hi uint64, fn func(key, val uint64) bool) {
	type kv struct{ k, v uint64 }
	var acc []kv
	t.Ascend(lo, hi, func(k, v uint64) bool {
		acc = append(acc, kv{k, v})
		return true
	})
	for i := len(acc) - 1; i >= 0; i-- {
		if !fn(acc[i].k, acc[i].v) {
			return
		}
	}
}

// Min returns the smallest key, if any.
func (t *Tree) Min() (uint64, uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], n.vals[0], true
		}
		n = n.next
	}
	return 0, 0, false
}

// Max returns the largest key, if any.
func (t *Tree) Max() (uint64, uint64, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return 0, 0, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}
