package btree

import (
	"sort"
	"testing"
)

// FuzzIteratorBoundaries drives interleaved inserts and deletes over a
// small key domain and, after every mutation, cross-checks Ascend/Descend
// against a model map on ranges that hug the mutation point — exact-key
// bounds, empty ranges, single-key ranges and full sweeps. This pins the
// iterator behaviors scans lean on: inclusive [lo, hi], sorted order, no
// ghost keys after delete-then-reinsert at a range edge.
func FuzzIteratorBoundaries(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x81, 0x02, 0x82, 0x03, 0x03, 0x83})
	f.Add([]byte{0x10, 0x90, 0x10, 0x90, 0x10})             // same-key churn
	f.Add([]byte{0x00, 0x3F, 0x80, 0xBF, 0x00, 0x3F, 0x80}) // domain edges

	f.Fuzz(func(t *testing.T, ops []byte) {
		tr := New()
		model := map[uint64]uint64{}
		for i, op := range ops {
			// Bit 7 selects delete; bits 0..5 the key (domain 0..63, dense
			// enough that boundaries collide constantly).
			key := uint64(op & 0x3F)
			if op&0x80 != 0 {
				if got, want := tr.Delete(key), model[key] != 0; got != want {
					t.Fatalf("op %d: Delete(%d)=%v, model %v", i, key, got, want)
				}
				delete(model, key)
			} else {
				val := uint64(i)<<8 | key | 1 // nonzero sentinel
				tr.Insert(key, val)
				model[key] = val
			}
			if tr.Len() != len(model) {
				t.Fatalf("op %d: Len %d, model %d", i, tr.Len(), len(model))
			}
			for _, r := range [][2]uint64{
				{key, key},                  // single-key range at the mutation
				{key, key + 1},              // right edge exclusive key+2
				{saturSub(key, 1), key},     // left edge
				{key + 1, saturSub(key, 1)}, // usually empty (lo > hi)
				{0, 63},                     // full sweep
			} {
				checkRange(t, tr, model, r[0], r[1])
			}
		}
	})
}

func saturSub(k, d uint64) uint64 {
	if k < d {
		return 0
	}
	return k - d
}

func checkRange(t *testing.T, tr *Tree, model map[uint64]uint64, lo, hi uint64) {
	t.Helper()
	var want [][2]uint64
	for k, v := range model {
		if k >= lo && k <= hi {
			want = append(want, [2]uint64{k, v})
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i][0] < want[j][0] })

	var got [][2]uint64
	tr.Ascend(lo, hi, func(k, v uint64) bool {
		got = append(got, [2]uint64{k, v})
		return true
	})
	matchRows(t, "Ascend", lo, hi, want, got)

	got = got[:0]
	tr.Descend(lo, hi, func(k, v uint64) bool {
		got = append(got, [2]uint64{k, v})
		return true
	})
	for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
		got[i], got[j] = got[j], got[i]
	}
	matchRows(t, "Descend", lo, hi, want, got)

	// Early termination must deliver exactly the first row.
	if len(want) > 0 {
		n := 0
		tr.Ascend(lo, hi, func(k, v uint64) bool {
			if k != want[0][0] || v != want[0][1] {
				t.Fatalf("Ascend[%d,%d] first row (%d,%#x), want (%d,%#x)", lo, hi, k, v, want[0][0], want[0][1])
			}
			n++
			return false
		})
		if n != 1 {
			t.Fatalf("Ascend[%d,%d] stopped callback ran %d times", lo, hi, n)
		}
	}
}

func matchRows(t *testing.T, dir string, lo, hi uint64, want, got [][2]uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s[%d,%d]: %d rows, want %d (%v vs %v)", dir, lo, hi, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s[%d,%d] row %d: %v, want %v", dir, lo, hi, i, got[i], want[i])
		}
	}
}
