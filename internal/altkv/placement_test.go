package altkv

import "testing"

// TestCuckooPlacementDeepensWithOccupancy verifies the mechanism behind
// Table 4's rising READs-per-lookup: at higher occupancy, displacement
// pushes more keys to their second and third hashes.
func TestCuckooPlacementDeepensWithOccupancy(t *testing.T) {
	avgDepth := func(occ float64) float64 {
		const n = 20000
		buckets := int(float64(n) / occ)
		c := NewCuckoo(0, 0, buckets, n+64, 1)
		for k := 1; k <= n; k++ {
			if err := c.Insert(uint64(k), []uint64{1}); err != nil {
				t.Fatal(err)
			}
		}
		var sum, found int
		for k := 1; k <= n; k++ {
			for h := 0; h < 3; h++ {
				bo := c.bucketOff(h, uint64(k))
				if c.arena.LoadWord(bo) == uint64(k) {
					sum += h + 1
					found++
					break
				}
			}
		}
		if found != n {
			t.Fatalf("lost %d keys", n-found)
		}
		return float64(sum) / float64(n)
	}
	lo, hi := avgDepth(0.5), avgDepth(0.9)
	if hi <= lo+0.1 {
		t.Fatalf("placement depth did not deepen: %.3f -> %.3f", lo, hi)
	}
}
