// Package altkv implements simplified versions of the two state-of-the-art
// RDMA-friendly hash tables DrTM-KV is compared against in Section 5.4:
//
//   - Cuckoo hashing as in Pilaf: 3 orthogonal hash functions, one slot per
//     32-byte self-verifying bucket (two CRC-64 checksums detect races
//     between one-sided readers and host writers).
//
//   - Hopscotch hashing as in FaRM-KV: neighborhood of 8, one READ fetches
//     the whole neighborhood; values either inline in the slot (FaRM-KV/I)
//     or behind an offset (FaRM-KV/O).
//
// As in the paper (footnote 6), these are simplified reimplementations used
// as comparison baselines: GETs use one-sided RDMA READs only; inserts are
// executed on the host.
package altkv

import (
	"errors"
	"hash/crc64"
	"math/rand"
	"sync"

	"drtm/internal/memory"
	"drtm/internal/rdma"
)

// Store is the read path shared by the comparison tables and the benchmark
// harness. LookupRemote performs only the bucket probes (the metric of
// Table 4); GetRemote additionally fetches the value where it lives
// out-of-line.
type Store interface {
	Name() string
	Insert(key uint64, val []uint64) error
	LookupRemote(qp *rdma.QP, key uint64) bool
	GetRemote(qp *rdma.QP, key uint64) ([]uint64, bool)
}

// ErrFull is returned when an insert cannot find a home.
var ErrFull = errors.New("altkv: table full")

var crcTab = crc64.MakeTable(crc64.ECMA)

func mix(x, seed uint64) uint64 {
	x ^= seed
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// --- Pilaf-style cuckoo hashing ---------------------------------------

// Cuckoo bucket layout (4 words = 32 bytes, the paper's fixed bucket size):
//
//	word 0: key (0 = empty; the benchmark key space starts at 1)
//	word 1: entry offset
//	word 2: CRC-64 of (key, offset)   — self-verifying bucket
//	word 3: CRC-64 of the entry value — detects read/write races on data
//
// Entry layout: value words only (key is validated via the bucket CRCs).
type Cuckoo struct {
	node, region int
	arena        *memory.Arena
	buckets      uint64
	valueWords   int
	entryWords   int
	entryBase    memory.Offset

	mu        sync.Mutex
	freeEntry []memory.Offset
	rng       *rand.Rand
	size      int
}

const cuckooBucketWords = 4

var cuckooSeeds = [3]uint64{0xA5A5A5A5, 0x5EED5EED, 0xC0FFEE}

// NewCuckoo builds a cuckoo table with the given bucket count (rounded to a
// power of two) and capacity.
func NewCuckoo(node, region int, buckets, capacity, valueWords int) *Cuckoo {
	nb := uint64(1)
	for nb < uint64(buckets) {
		nb *= 2
	}
	ew := valueWords
	if rem := ew % memory.WordsPerLine; rem != 0 {
		ew += memory.WordsPerLine - rem
	}
	if ew == 0 {
		ew = memory.WordsPerLine
	}
	c := &Cuckoo{
		node: node, region: region,
		buckets:    nb,
		valueWords: valueWords,
		entryWords: ew,
		entryBase:  memory.Offset(nb * cuckooBucketWords),
		rng:        rand.New(rand.NewSource(42)),
	}
	total := int(c.entryBase) + capacity*ew
	c.arena = memory.NewArena(region, total)
	for i := capacity - 1; i >= 0; i-- {
		c.freeEntry = append(c.freeEntry, c.entryBase+memory.Offset(i*ew))
	}
	return c
}

// Name implements Store.
func (c *Cuckoo) Name() string { return "Pilaf/Cuckoo" }

// Arena returns the backing arena for fabric registration.
func (c *Cuckoo) Arena() *memory.Arena { return c.arena }

// Len returns the number of stored keys.
func (c *Cuckoo) Len() int { c.mu.Lock(); defer c.mu.Unlock(); return c.size }

func (c *Cuckoo) bucketOff(h int, key uint64) memory.Offset {
	return memory.Offset((mix(key, cuckooSeeds[h]) % c.buckets) * cuckooBucketWords)
}

func bucketCRC(key uint64, off memory.Offset) uint64 {
	var b [16]byte
	putU64(b[0:], key)
	putU64(b[8:], uint64(off))
	return crc64.Checksum(b[:], crcTab)
}

func valueCRC(val []uint64) uint64 {
	b := make([]byte, len(val)*8)
	for i, w := range val {
		putU64(b[i*8:], w)
	}
	return crc64.Checksum(b, crcTab)
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Insert places key on the host, using random-walk cuckoo displacement.
func (c *Cuckoo) Insert(key uint64, val []uint64) error {
	if key == 0 {
		return errors.New("altkv: key 0 reserved as empty marker")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.freeEntry) == 0 {
		return ErrFull
	}
	entry := c.freeEntry[len(c.freeEntry)-1]
	c.freeEntry = c.freeEntry[:len(c.freeEntry)-1]
	c.arena.Write(entry, val)

	// Classic cuckoo displacement: place the incoming key at its first
	// hash, evicting any occupant to the occupant's next alternative hash.
	// Under high occupancy this progressively pushes resident keys toward
	// their second and third hashes, which is what drives the rising
	// READs-per-lookup trend of Table 4.
	insKey, insOff, insVal := key, entry, valueCRC(val)
	insHash := 0
	const maxKicks = 1000
	for kick := 0; kick < maxKicks; kick++ {
		bo := c.bucketOff(insHash, insKey)
		oldKey := c.arena.LoadWord(bo)
		if oldKey == 0 {
			c.writeBucket(bo, insKey, insOff, insVal)
			c.size++
			return nil
		}
		oldOff := memory.Offset(c.arena.LoadWord(bo + 1))
		oldVCRC := c.arena.LoadWord(bo + 3)
		c.writeBucket(bo, insKey, insOff, insVal)
		// The displaced key moves to the hash after the one that maps it to
		// this bucket.
		next := 0
		for h := 0; h < 3; h++ {
			if c.bucketOff(h, oldKey) == bo {
				next = (h + 1) % 3
				break
			}
		}
		insKey, insOff, insVal, insHash = oldKey, oldOff, oldVCRC, next
	}
	return ErrFull
}

func (c *Cuckoo) writeBucket(bo memory.Offset, key uint64, off memory.Offset, vcrc uint64) {
	c.arena.Write(bo, []uint64{key, uint64(off), bucketCRC(key, off), vcrc})
}

// LookupRemote probes the candidate buckets with one-sided READs until the
// key (with a valid checksum) is found. Each probe costs one 32-byte READ.
func (c *Cuckoo) LookupRemote(qp *rdma.QP, key uint64) bool {
	_, _, ok := c.probe(qp, key)
	return ok
}

func (c *Cuckoo) probe(qp *rdma.QP, key uint64) (memory.Offset, uint64, bool) {
	var buf [cuckooBucketWords]uint64
	for h := 0; h < 3; h++ {
		bo := c.bucketOff(h, key)
		for retry := 0; retry < 4; retry++ {
			qp.Read(c.node, c.region, bo, buf[:])
			if buf[0] != key {
				break // not here; next hash
			}
			if bucketCRC(buf[0], memory.Offset(buf[1])) == buf[2] {
				return memory.Offset(buf[1]), buf[3], true
			}
			// Torn bucket (concurrent displacement): retry this probe.
		}
	}
	return 0, 0, false
}

// GetRemote locates key and fetches its value with one more READ, verifying
// the value checksum against the bucket's copy (Pilaf's race detection).
func (c *Cuckoo) GetRemote(qp *rdma.QP, key uint64) ([]uint64, bool) {
	for attempt := 0; attempt < 4; attempt++ {
		off, vcrc, ok := c.probe(qp, key)
		if !ok {
			return nil, false
		}
		val := make([]uint64, c.valueWords)
		qp.Read(c.node, c.region, off, val)
		if valueCRC(val) == vcrc {
			return val, true
		}
		// CRC mismatch: raced with a host write; retry from the probe.
	}
	return nil, false
}

// Put overwrites an existing key's value on the host.
func (c *Cuckoo) Put(key uint64, val []uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf [cuckooBucketWords]uint64
	for h := 0; h < 3; h++ {
		bo := c.bucketOff(h, key)
		c.arena.Read(buf[:], bo)
		if buf[0] == key {
			off := memory.Offset(buf[1])
			c.arena.Write(off, val)
			c.writeBucket(bo, key, off, valueCRC(val))
			return true
		}
	}
	return false
}
