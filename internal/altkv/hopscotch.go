package altkv

import (
	"errors"
	"sync"

	"drtm/internal/memory"
	"drtm/internal/rdma"
)

// Hopscotch is the FaRM-KV baseline: hopscotch hashing with a neighborhood
// of 8. A remote GET READs the whole neighborhood (8 consecutive slots) in
// one one-sided READ — hence the ~1.0 average READs per lookup in Table 4 —
// at the cost of a complicated, cache-hostile insert (displacements
// gradually refine key locations, Section 5.4).
//
// Two variants per the paper:
//
//   - Inline (FaRM-KV/I): the value lives in the slot; lookup needs no
//     second READ but every neighborhood READ hauls 8 values.
//   - Offset (FaRM-KV/O): the slot stores an offset; a hit costs one more
//     READ of just the value.
//
// Slot layout (inline):  [key | version | value...]   (line-aligned)
// Slot layout (offset):  [key | version | entryOff | pad...]
// Keys are validated directly; per-line seqlock versions of the arena stand
// in for FaRM's per-cacheline versions for torn-read detection.
type Hopscotch struct {
	node, region int
	arena        *memory.Arena
	buckets      uint64
	inline       bool
	valueWords   int
	slotWords    int
	entryWords   int
	entryBase    memory.Offset

	mu        sync.Mutex
	freeEntry []memory.Offset
	size      int
	overflow  map[uint64][]uint64 // host-side overflow: key -> value (rare)
	ovfReads  int                 // slots that overflowed (diagnostic)
}

// Neighborhood is the hopscotch H parameter (the paper configures 8).
const Neighborhood = 8

// NewHopscotch builds the table. inline selects FaRM-KV/I vs /O.
func NewHopscotch(node, region int, buckets, capacity, valueWords int, inline bool) *Hopscotch {
	nb := uint64(1)
	for nb < uint64(buckets) {
		nb *= 2
	}
	sw := 2 // key, version
	if inline {
		sw += valueWords
	} else {
		sw++ // entry offset
	}
	if rem := sw % memory.WordsPerLine; rem != 0 {
		sw += memory.WordsPerLine - rem
	}
	h := &Hopscotch{
		node: node, region: region,
		buckets:    nb,
		inline:     inline,
		valueWords: valueWords,
		slotWords:  sw,
		overflow:   map[uint64][]uint64{},
	}
	if !inline {
		ew := valueWords
		if rem := ew % memory.WordsPerLine; rem != 0 {
			ew += memory.WordsPerLine - rem
		}
		if ew == 0 {
			ew = memory.WordsPerLine
		}
		h.entryWords = ew
		h.entryBase = memory.Offset(nb * uint64(sw))
		total := int(h.entryBase) + capacity*ew
		h.arena = memory.NewArena(region, total)
		for i := capacity - 1; i >= 0; i-- {
			h.freeEntry = append(h.freeEntry, h.entryBase+memory.Offset(i*ew))
		}
	} else {
		h.arena = memory.NewArena(region, int(nb)*sw)
	}
	return h
}

// Name implements Store.
func (h *Hopscotch) Name() string {
	if h.inline {
		return "FaRM-KV/I"
	}
	return "FaRM-KV/O"
}

// Arena returns the backing arena for fabric registration.
func (h *Hopscotch) Arena() *memory.Arena { return h.arena }

// Len returns the number of stored keys.
func (h *Hopscotch) Len() int { h.mu.Lock(); defer h.mu.Unlock(); return h.size }

// OverflowLen reports how many keys spilled to the host-side overflow path.
func (h *Hopscotch) OverflowLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.overflow)
}

func (h *Hopscotch) home(key uint64) uint64 { return mix(key, 0x48505343) % h.buckets }

func (h *Hopscotch) slotOff(i uint64) memory.Offset {
	return memory.Offset(i * uint64(h.slotWords))
}

func (h *Hopscotch) slotKey(i uint64) uint64 { return h.arena.LoadWord(h.slotOff(i)) }

// Insert places key on the host using hopscotch displacement: find a free
// slot by linear probing, then hop it backwards until it lies within the
// neighborhood of key's home bucket. Keys that cannot be placed go to the
// host-side overflow store (FaRM's overflow chains), which remote readers
// reach with an extra verbs round trip; with the occupancies used in the
// evaluation this is rare.
func (h *Hopscotch) Insert(key uint64, val []uint64) error {
	if key == 0 {
		return errors.New("altkv: key 0 reserved as empty marker")
	}
	if len(val) != h.valueWords {
		return errors.New("altkv: wrong value length")
	}
	h.mu.Lock()
	defer h.mu.Unlock()

	home := h.home(key)
	// Linear-probe for a free slot.
	free := uint64(0)
	found := false
	for d := uint64(0); d < h.buckets; d++ {
		i := (home + d) % h.buckets
		if h.slotKey(i) == 0 {
			free, found = i, true
			break
		}
	}
	if !found {
		return ErrFull
	}
	// Hop the free slot back into the neighborhood.
	for dist(home, free, h.buckets) >= Neighborhood {
		moved := false
		// Find a slot g in [free-H+1, free) whose own home allows it to
		// move into `free`.
		for back := uint64(Neighborhood - 1); back >= 1; back-- {
			g := (free + h.buckets - back) % h.buckets
			k := h.slotKey(g)
			if k == 0 {
				continue
			}
			if dist(h.home(k), free, h.buckets) < Neighborhood {
				h.copySlot(g, free)
				h.clearSlot(g)
				free = g
				moved = true
				break
			}
		}
		if !moved {
			// Cannot create space in the neighborhood: overflow.
			h.overflow[key] = append([]uint64(nil), val...)
			h.ovfReads++
			h.size++
			return nil
		}
	}
	h.writeSlot(free, key, val)
	h.size++
	return nil
}

func dist(from, to, n uint64) uint64 { return (to + n - from) % n }

func (h *Hopscotch) copySlot(src, dst uint64) {
	buf := make([]uint64, h.slotWords)
	h.arena.Read(buf, h.slotOff(src))
	h.arena.Write(h.slotOff(dst), buf)
}

func (h *Hopscotch) clearSlot(i uint64) {
	h.arena.Write(h.slotOff(i), make([]uint64, h.slotWords))
}

func (h *Hopscotch) writeSlot(i uint64, key uint64, val []uint64) {
	buf := make([]uint64, h.slotWords)
	buf[0] = key
	buf[1] = 1 // version
	if h.inline {
		copy(buf[2:], val)
		h.arena.Write(h.slotOff(i), buf)
		return
	}
	entry := h.freeEntry[len(h.freeEntry)-1]
	h.freeEntry = h.freeEntry[:len(h.freeEntry)-1]
	h.arena.Write(entry, val)
	buf[2] = uint64(entry)
	h.arena.Write(h.slotOff(i), buf)
}

// LookupRemote READs key's neighborhood in a single one-sided READ and
// scans it. Overflowed keys are found via the host (not charged as a READ;
// the harness accounts them separately, and they are rare).
func (h *Hopscotch) LookupRemote(qp *rdma.QP, key uint64) bool {
	_, _, ok := h.probe(qp, key)
	if ok {
		return true
	}
	h.mu.Lock()
	_, ovf := h.overflow[key]
	h.mu.Unlock()
	return ovf
}

// probe returns (slot index, neighborhood buffer, found).
func (h *Hopscotch) probe(qp *rdma.QP, key uint64) (int, []uint64, bool) {
	home := h.home(key)
	n := Neighborhood * h.slotWords
	buf := make([]uint64, n)
	if home+Neighborhood <= h.buckets {
		qp.Read(h.node, h.region, h.slotOff(home), buf)
	} else {
		// Wrapped neighborhood: still one READ's worth in the cost model;
		// fetch the two pieces.
		first := (h.buckets - home) * uint64(h.slotWords)
		qp.Read(h.node, h.region, h.slotOff(home), buf[:first])
		h.arena.Read(buf[first:], 0)
	}
	for s := 0; s < Neighborhood; s++ {
		if buf[s*h.slotWords] == key {
			return s, buf, true
		}
	}
	return 0, nil, false
}

// GetRemote fetches the value: zero extra READs inline, one extra for the
// offset variant.
func (h *Hopscotch) GetRemote(qp *rdma.QP, key uint64) ([]uint64, bool) {
	s, buf, ok := h.probe(qp, key)
	if !ok {
		h.mu.Lock()
		v, ovf := h.overflow[key]
		h.mu.Unlock()
		if !ovf {
			return nil, false
		}
		return append([]uint64(nil), v...), true
	}
	if h.inline {
		out := make([]uint64, h.valueWords)
		copy(out, buf[s*h.slotWords+2:])
		return out, true
	}
	off := memory.Offset(buf[s*h.slotWords+2])
	val := make([]uint64, h.valueWords)
	qp.Read(h.node, h.region, off, val)
	return val, true
}

// Put overwrites an existing key's value on the host.
func (h *Hopscotch) Put(key uint64, val []uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.overflow[key]; ok {
		h.overflow[key] = append([]uint64(nil), val...)
		return true
	}
	home := h.home(key)
	for d := uint64(0); d < Neighborhood; d++ {
		i := (home + d) % h.buckets
		if h.slotKey(i) == key {
			if h.inline {
				buf := make([]uint64, h.slotWords)
				h.arena.Read(buf, h.slotOff(i))
				buf[1]++ // version
				copy(buf[2:], val)
				h.arena.Write(h.slotOff(i), buf)
			} else {
				off := memory.Offset(h.arena.LoadWord(h.slotOff(i) + 2))
				h.arena.Write(off, val)
			}
			return true
		}
	}
	return false
}
