package altkv

import (
	"math/rand"
	"testing"

	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

func newFabric() *rdma.Fabric {
	return rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
}

func TestCuckooInsertGet(t *testing.T) {
	c := NewCuckoo(0, 0, 1024, 1024, 2)
	f := newFabric()
	f.Register(0, 0, c.Arena())
	qp := f.NewQP(1, nil)

	for k := uint64(1); k <= 500; k++ {
		if err := c.Insert(k, []uint64{k, k * 2}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if c.Len() != 500 {
		t.Fatalf("Len = %d", c.Len())
	}
	for k := uint64(1); k <= 500; k++ {
		v, ok := c.GetRemote(qp, k)
		if !ok || v[0] != k || v[1] != k*2 {
			t.Fatalf("get %d = %v,%v", k, v, ok)
		}
	}
	if _, ok := c.GetRemote(qp, 9999); ok {
		t.Fatal("found missing key")
	}
}

func TestCuckooRejectsKeyZero(t *testing.T) {
	c := NewCuckoo(0, 0, 16, 16, 1)
	if err := c.Insert(0, []uint64{1}); err == nil {
		t.Fatal("key 0 accepted")
	}
}

func TestCuckooPut(t *testing.T) {
	c := NewCuckoo(0, 0, 64, 64, 1)
	f := newFabric()
	f.Register(0, 0, c.Arena())
	qp := f.NewQP(1, nil)
	_ = c.Insert(5, []uint64{1})
	if !c.Put(5, []uint64{2}) {
		t.Fatal("Put failed")
	}
	v, ok := c.GetRemote(qp, 5)
	if !ok || v[0] != 2 {
		t.Fatalf("after Put = %v,%v", v, ok)
	}
	if c.Put(6, []uint64{1}) {
		t.Fatal("Put of missing key succeeded")
	}
}

func TestCuckooHighOccupancy(t *testing.T) {
	// 3-way cuckoo with 1 slot per bucket supports ~90% occupancy.
	const buckets = 1024
	c := NewCuckoo(0, 0, buckets, buckets, 1)
	target := buckets * 90 / 100
	for k := 1; k <= target; k++ {
		if err := c.Insert(uint64(k), []uint64{uint64(k)}); err != nil {
			t.Fatalf("insert %d/%d failed: %v", k, target, err)
		}
	}
	f := newFabric()
	f.Register(0, 0, c.Arena())
	qp := f.NewQP(1, nil)
	for k := 1; k <= target; k++ {
		if _, ok := c.GetRemote(qp, uint64(k)); !ok {
			t.Fatalf("key %d lost after displacement", k)
		}
	}
}

// TestCuckooProbeCountsRise: at higher occupancy, lookups need more READs
// on average — the Table 4 effect.
func TestCuckooProbeCountsRise(t *testing.T) {
	readsPerLookup := func(occupancy float64) float64 {
		const buckets = 4096
		c := NewCuckoo(0, 0, buckets, buckets, 1)
		n := int(occupancy * buckets)
		for k := 1; k <= n; k++ {
			if err := c.Insert(uint64(k), []uint64{uint64(k)}); err != nil {
				t.Fatalf("insert at occ %.2f: %v", occupancy, err)
			}
		}
		f := newFabric()
		f.Register(0, 0, c.Arena())
		qp := f.NewQP(1, nil)
		for k := 1; k <= n; k++ {
			if !c.LookupRemote(qp, uint64(k)) {
				t.Fatalf("lookup %d missed", k)
			}
		}
		return float64(qp.Stats.Reads.Load()) / float64(n)
	}
	lo, hi := readsPerLookup(0.5), readsPerLookup(0.9)
	if lo < 1.0 || lo > 1.9 {
		t.Fatalf("50%% occupancy avg reads = %.3f, want ~1.3-1.6", lo)
	}
	if hi <= lo {
		t.Fatalf("reads did not rise with occupancy: %.3f -> %.3f", lo, hi)
	}
}

func TestHopscotchInsertGetInline(t *testing.T) {
	h := NewHopscotch(0, 0, 1024, 1024, 2, true)
	f := newFabric()
	f.Register(0, 0, h.Arena())
	qp := f.NewQP(1, nil)
	for k := uint64(1); k <= 700; k++ {
		if err := h.Insert(k, []uint64{k, k + 1}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= 700; k++ {
		v, ok := h.GetRemote(qp, k)
		if !ok || v[0] != k || v[1] != k+1 {
			t.Fatalf("get %d = %v,%v", k, v, ok)
		}
	}
	if _, ok := h.GetRemote(qp, 5000); ok {
		t.Fatal("found missing key")
	}
}

func TestHopscotchOffsetVariantExtraRead(t *testing.T) {
	hi := NewHopscotch(0, 0, 256, 256, 2, true)
	ho := NewHopscotch(0, 0, 256, 256, 2, false)
	_ = hi.Insert(1, []uint64{5, 6})
	_ = ho.Insert(1, []uint64{5, 6})

	f := newFabric()
	f.Register(0, 0, hi.Arena())
	f.Register(0, 1, ho.Arena()) // distinct region id
	ho.region = 1
	qpI, qpO := f.NewQP(1, nil), f.NewQP(1, nil)

	if v, ok := hi.GetRemote(qpI, 1); !ok || v[0] != 5 {
		t.Fatal("inline get failed")
	}
	if v, ok := ho.GetRemote(qpO, 1); !ok || v[0] != 5 {
		t.Fatal("offset get failed")
	}
	if qpI.Stats.Reads.Load() != 1 {
		t.Fatalf("inline used %d READs, want 1", qpI.Stats.Reads.Load())
	}
	if qpO.Stats.Reads.Load() != 2 {
		t.Fatalf("offset used %d READs, want 2", qpO.Stats.Reads.Load())
	}
	// Inline hauls 8 slots with values; offset's neighborhood is smaller.
	if qpI.Stats.ReadBytes.Load() <= qpO.Stats.ReadBytes.Load()-int64(2*8) {
		t.Log("inline bytes:", qpI.Stats.ReadBytes.Load(), "offset bytes:", qpO.Stats.ReadBytes.Load())
	}
}

func TestHopscotchNearOneReadPerLookup(t *testing.T) {
	const buckets = 4096
	h := NewHopscotch(0, 0, buckets, buckets, 1, true)
	n := buckets * 75 / 100
	for k := 1; k <= n; k++ {
		if err := h.Insert(uint64(k), []uint64{uint64(k)}); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	f := newFabric()
	f.Register(0, 0, h.Arena())
	qp := f.NewQP(1, nil)
	for k := 1; k <= n; k++ {
		if !h.LookupRemote(qp, uint64(k)) {
			t.Fatalf("lookup %d missed", k)
		}
	}
	avg := float64(qp.Stats.Reads.Load()) / float64(n)
	if avg < 1.0 || avg > 1.1 {
		t.Fatalf("avg reads/lookup = %.3f, want ~1.0 (Table 4)", avg)
	}
}

func TestHopscotchPut(t *testing.T) {
	h := NewHopscotch(0, 0, 64, 64, 1, false)
	f := newFabric()
	f.Register(0, 0, h.Arena())
	qp := f.NewQP(1, nil)
	_ = h.Insert(3, []uint64{1})
	if !h.Put(3, []uint64{9}) {
		t.Fatal("Put failed")
	}
	v, ok := h.GetRemote(qp, 3)
	if !ok || v[0] != 9 {
		t.Fatalf("after Put = %v,%v", v, ok)
	}
}

func TestHopscotchRandomizedVsModel(t *testing.T) {
	h := NewHopscotch(0, 0, 512, 512, 1, true)
	f := newFabric()
	f.Register(0, 0, h.Arena())
	qp := f.NewQP(1, nil)
	model := map[uint64]uint64{}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 350; i++ {
		k := uint64(r.Intn(1000) + 1)
		if _, ok := model[k]; ok {
			continue
		}
		v := uint64(r.Int63())
		if err := h.Insert(k, []uint64{v}); err != nil {
			t.Fatalf("insert: %v", err)
		}
		model[k] = v
	}
	for k, want := range model {
		got, ok := h.GetRemote(qp, k)
		if !ok || got[0] != want {
			t.Fatalf("key %d = %v,%v want %d", k, got, ok, want)
		}
	}
	if h.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", h.Len(), len(model))
	}
}

func BenchmarkCuckooRemoteGet(b *testing.B) {
	c := NewCuckoo(0, 0, 4096, 4096, 2)
	for k := uint64(1); k <= 2000; k++ {
		_ = c.Insert(k, []uint64{k, k})
	}
	f := newFabric()
	f.Register(0, 0, c.Arena())
	qp := f.NewQP(1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.GetRemote(qp, uint64(i%2000)+1)
	}
}

func BenchmarkHopscotchRemoteGet(b *testing.B) {
	h := NewHopscotch(0, 0, 4096, 4096, 2, true)
	for k := uint64(1); k <= 2000; k++ {
		_ = h.Insert(k, []uint64{k, k})
	}
	f := newFabric()
	f.Register(0, 0, h.Arena())
	qp := f.NewQP(1, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.GetRemote(qp, uint64(i%2000)+1)
	}
}
