package bench

import (
	"testing"

	"drtm/internal/tx"
)

func TestSmokeMVCC(t *testing.T) {
	if testing.Short() {
		t.Skip("mvcc experiment is slow")
	}
	runSmoke(t, "mvcc")
}

// TestMVCCAcceptance gates the snapshot read arm (ISSUE 9):
//
//  1. at fanout >= 32 under the write-heavy staging, the snapshot arm must
//     be at least 1.5x cheaper per transaction than the PR-8 confirm-wave
//     scan (it skips the confirm wave entirely and resolves past the
//     conflicting write instead of retrying);
//  2. in every sweep cell, PolicyAdaptive's footprint router must land
//     within 5% of the best static arm — wide scans route the snapshot arm
//     up front, and the narrow contended cell converges once scan
//     validation failures heat the range (the per-range warmup failure is
//     amortized over the run, so the bar needs the full txn count);
//  3. the snapshot arm must actually run on chains: every transaction one
//     mvcc read, no truncation fallbacks.
//
// The rig stages conflicts deterministically (one overwrite committed
// inside the scanned range between collection and confirm, first attempt
// only) and prices by the reader worker's virtual clock, so the run is
// reproducible — no multi-seed averaging needed.
func TestMVCCAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("mvcc acceptance is slow")
	}
	const txns = 300

	for _, cell := range mvccSweep {
		ro := measureMVCCScan(txns, cell.fanout, cell.writes, tx.PolicySpeculative)
		mv := measureMVCCScan(txns, cell.fanout, cell.writes, tx.PolicyMVCC)
		ad := measureMVCCScan(txns, cell.fanout, cell.writes, tx.PolicyAdaptive)
		if ro.usPerTxn <= 0 || mv.usPerTxn <= 0 || ad.usPerTxn <= 0 {
			t.Fatalf("fanout=%d writes=%v: missing samples: ro=%v mvcc=%v adaptive=%v",
				cell.fanout, cell.writes, ro.usPerTxn, mv.usPerTxn, ad.usPerTxn)
		}

		// Claim 3: the snapshot arm serves (nearly) every transaction from
		// the chains. A handful of truncation fallbacks are tolerated — on a
		// heavily loaded host the snapshot stamp's bounded staleness can
		// exceed a hot row's retained history, and falling back to the
		// confirm wave is the designed response — but more than 2% means the
		// arm isn't actually doing snapshot reads.
		slack := int64(txns / 50)
		if mv.mvccReads < int64(txns)-slack {
			t.Errorf("fanout=%d writes=%v: mvcc arm did %d snapshot reads, want >= %d",
				cell.fanout, cell.writes, mv.mvccReads, int64(txns)-slack)
		}
		if mv.fallbacks > slack {
			t.Errorf("fanout=%d writes=%v: mvcc arm fell back %d times (trunc=%d inconsist=%d), want <= %d",
				cell.fanout, cell.writes, mv.fallbacks, mv.truncs, mv.inconsist, slack)
		}
		if mv.retriesPerTx > float64(slack)/float64(txns) {
			t.Errorf("fanout=%d writes=%v: mvcc arm retried %.3f/txn — "+
				"snapshot reads must resolve past the staged write, not re-run it",
				cell.fanout, cell.writes, mv.retriesPerTx)
		}

		// Claim 1: >= 1.5x at fanout >= 32 under writes.
		if cell.fanout >= 32 && cell.writes {
			if ro.usPerTxn < 1.5*mv.usPerTxn {
				t.Errorf("fanout=%d heavy: mvcc %.1fus/txn not >=1.5x cheaper than ro-scan %.1fus/txn",
					cell.fanout, mv.usPerTxn, ro.usPerTxn)
			}
		}

		// Claim 2: adaptive within 5% of the best static arm.
		best := ro.usPerTxn
		if mv.usPerTxn < best {
			best = mv.usPerTxn
		}
		if ad.usPerTxn > 1.05*best {
			t.Errorf("fanout=%d writes=%v: adaptive %.2fus/txn > 1.05x best static %.2fus/txn (ro %.2f, mvcc %.2f)",
				cell.fanout, cell.writes, ad.usPerTxn, best, ro.usPerTxn, mv.usPerTxn)
		}
	}
}
