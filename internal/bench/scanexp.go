package bench

import (
	"fmt"

	"drtm/internal/cluster"
	"drtm/internal/obs"
	"drtm/internal/tx"
)

// The `scan` experiment prices a read-only range read's two possible arms
// over the ordered store (Section 6.5: ordered tables have no one-sided
// lookup, so every point access ships a B+-tree walk to the host):
//
//	ro-scan — Tx/RO range scan: ONE shipped range collection returns every
//	          in-range row with its version anchors; commit confirms the
//	          range with segment-stamp re-reads (phantom protection) plus
//	          the standard RO version wave.
//	lease   — the same rows fetched as per-key point reads, each paying a
//	          shipped lookup, a lease CAS and a value READ.
//
// The scan arm amortizes the host round-trip across the whole range, so its
// advantage grows linearly with fanout; the acceptance test pins it at >=2x
// for fanout 8. This is the scan-side analogue of the occ experiment's
// lease-vs-spec comparison.
func runScan(o Options) *Result {
	res := &Result{
		ID:    "scan",
		Title: "RO range scan vs per-key lease reads over the ordered store",
		Headers: []string{"fanout", "arm", "us/txn", "us/row",
			"retries/txn", "vs lease"},
	}
	txns := 400
	if o.Quick {
		txns = 100
	}
	for _, fanout := range []int{2, 8, 32} {
		var leaseUS float64
		for _, arm := range []string{"lease", "ro-scan"} {
			m := measureScan(txns, fanout, arm == "ro-scan")
			ratio := "1.00x"
			if arm == "lease" {
				leaseUS = m.usPerTxn
			} else if m.usPerTxn > 0 {
				ratio = fmt.Sprintf("%.2fx", leaseUS/m.usPerTxn)
			}
			res.AddRow(fmt.Sprintf("%d", fanout), arm,
				fmt.Sprintf("%.1f", m.usPerTxn),
				fmt.Sprintf("%.2f", m.usPerTxn/float64(fanout)),
				fmt.Sprintf("%.3f", m.retriesPerTx), ratio)
		}
	}
	res.Note("Both arms read one remote entity's whole row range inside an RO txn.")
	res.Note("lease: per row, a shipped B+-tree lookup + lease CAS + value READ;")
	res.Note("ro-scan: one shipped range collection, confirmed by segment-stamp re-reads.")
	res.Note("The gap is the per-row host round-trip + CAS the scan amortizes away.")
	return res
}

const (
	scanTable    = 9
	scanEntities = 64 // per node
	scanSegShift = 8  // entity = key>>8: one stamp segment per entity
)

// buildScanRig populates an ordered table with `fanout` rows per entity,
// entities striped across nodes.
func buildScanRig(nodes, workers, fanout int) (*tx.Runtime, func()) {
	ccfg := simClusterConfig(nodes, workers)
	c := cluster.New(ccfg)
	c.Start()
	rt := tx.NewRuntime(c, func(table int, key uint64) int {
		return int(key>>scanSegShift) % nodes
	})
	rt.DefineOrderedSeg(scanTable, 4*scanEntities*fanout, 2, scanSegShift)
	for e := 0; e < nodes*scanEntities; e++ {
		o := c.Node(e % nodes).Ordered(scanTable)
		for i := 0; i < fanout; i++ {
			if err := o.Insert(uint64(e)<<scanSegShift|uint64(i),
				[]uint64{uint64(e), uint64(i)}); err != nil {
				panic(err)
			}
		}
	}
	return rt, c.Stop
}

type scanMetrics struct {
	usPerTxn     float64
	retriesPerTx float64
}

// measureScan runs txns RO transactions from node 0, each reading one
// node-1 entity's full range — as a single scan or as per-key reads.
func measureScan(txns, fanout int, scan bool) scanMetrics {
	rt, stop := buildScanRig(2, 1, fanout)
	defer stop()
	resetClocks(rt)
	e := rt.Executor(0, 0)
	before := rt.C.Obs.Snapshot()
	v0 := rt.C.Worker(0, 0).VClock.Now()

	for t := 0; t < txns; t++ {
		entity := uint64(1 + 2*(t%scanEntities)) // odd entities live on node 1
		lo := entity << scanSegShift
		err := e.ExecRO(func(ro *tx.RO) error {
			if scan {
				rows, err := ro.Scan(scanTable, lo, lo|(1<<scanSegShift-1), 0)
				if err != nil {
					return err
				}
				if len(rows) != fanout {
					return fmt.Errorf("bench: scan saw %d rows, want %d", len(rows), fanout)
				}
				return nil
			}
			for i := 0; i < fanout; i++ {
				if _, err := ro.Read(scanTable, lo|uint64(i)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
	}

	sn := rt.C.Obs.Snapshot().Delta(before)
	m := scanMetrics{
		usPerTxn: float64(rt.C.Worker(0, 0).VClock.Now()-v0) / 1e3 / float64(txns),
	}
	if commits := sn.Counters[obs.EvROCommit] + sn.Counters[obs.EvTxCommit]; commits > 0 {
		m.retriesPerTx = float64(sn.Counters[obs.EvTxRetry]+sn.Counters[obs.EvRORetry]) / float64(commits)
	}
	return m
}

func init() {
	Register(Experiment{ID: "scan", Title: "RO range scan vs per-key lease reads", Run: runScan})
}
