package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"drtm/internal/calvin"
	"drtm/internal/cluster"
	"drtm/internal/tpcc"
	"drtm/internal/tx"
)

// tpccScale holds per-mode sizing.
type tpccScale struct {
	customersPerDist int
	items            int
	initialOrders    int
	txnsPerWorker    int
}

func tpccScaleFor(o Options) tpccScale {
	if o.Quick {
		return tpccScale{customersPerDist: 30, items: 100, initialOrders: 9, txnsPerWorker: 60}
	}
	return tpccScale{customersPerDist: 100, items: 1000, initialOrders: 15, txnsPerWorker: 600}
}

// tpccDeployment is a ready-to-run TPC-C cluster.
type tpccDeployment struct {
	w    *tpcc.Workload
	rt   *tx.Runtime
	stop func()
	cfg  tpcc.Config
}

// buildTPCC assembles a cluster + runtime + populated TPC-C database.
func buildTPCC(o Options, nodes, wPerNode, workers int,
	mutT func(*tpcc.Config), mutC func(*cluster.Config)) *tpccDeployment {
	s := tpccScaleFor(o)
	tcfg := tpcc.DefaultConfig(nodes, wPerNode)
	tcfg.CustomersPerDist = s.customersPerDist
	tcfg.Items = s.items
	tcfg.InitialOrders = s.initialOrders
	// Capacity headroom for the orders this run will insert.
	tcfg.ExtraOrdersPerDistrict = s.txnsPerWorker*workers/tcfg.Districts + 64
	if mutT != nil {
		mutT(&tcfg)
	}
	ccfg := simClusterConfig(nodes, workers)
	if mutC != nil {
		mutC(&ccfg)
	}
	c := cluster.New(ccfg)
	c.Start()
	rt := tx.NewRuntime(c, tcfg.Partitioner())
	w, err := tpcc.Setup(rt, tcfg)
	if err != nil {
		panic(fmt.Sprintf("bench: tpcc setup: %v", err))
	}
	return &tpccDeployment{w: w, rt: rt, stop: c.Stop, cfg: tcfg}
}

// runMix drives the standard mix on every worker, recording per-transaction
// virtual latency; returns committed new-order and total counts.
func (d *tpccDeployment) runMix(o Options, txnsPerWorker int) (newOrder, total int64) {
	resetClocks(d.rt)
	workers := d.rt.C.Workers()
	var mu sync.Mutex
	runWorkers(len(workers), func(i int) {
		wk := workers[i]
		e := d.rt.Executor(wk.Node.ID, wk.ID)
		home := wk.Node.ID*d.cfg.WarehousesPerNode + (wk.ID % d.cfg.WarehousesPerNode) + 1
		cl := d.w.NewClient(e, home, o.Seed+int64(i*131+7))
		for n := 0; n < txnsPerWorker; n++ {
			before := wk.VClock.Now()
			if _, err := cl.RunOne(); err != nil {
				if errors.Is(err, tx.ErrRetry) {
					continue // retry budget exhausted under extreme contention
				}
				panic(fmt.Sprintf("bench: tpcc txn: %v", err))
			}
			wk.Hist.Record(wk.VClock.Now() - before)
		}
		mu.Lock()
		newOrder += cl.NewOrderCount()
		total += cl.TotalCount()
		mu.Unlock()
	})
	return
}

// ---- Calvin TPC-C ------------------------------------------------------
//
// The Calvin baseline runs an equivalent standard mix against its own
// cluster instance: the same unordered tables plus flat order/order-line/
// history tables (Calvin's storage has no ordered-store requirement for
// throughput purposes). Read-only transactions are approximated by
// equivalent-cardinality reads; this preserves the cost structure that
// determines Calvin's throughput — epoch batching, per-transaction
// overhead, the serial lock manager and IPoIB messaging.

const (
	calvinOrders     = 40
	calvinOrderLines = 41
	calvinHistory    = 42
)

type calvinTPCC struct {
	sys  *calvin.System
	c    *cluster.Cluster
	cfg  tpcc.Config
	stop func()
}

func buildCalvinTPCC(o Options, nodes, wPerNode, workers int) *calvinTPCC {
	s := tpccScaleFor(o)
	tcfg := tpcc.DefaultConfig(nodes, wPerNode)
	tcfg.CustomersPerDist = s.customersPerDist
	tcfg.Items = s.items
	tcfg.InitialOrders = 0 // Calvin's RO stand-ins tolerate missing orders
	tcfg.ExtraOrdersPerDistrict = s.txnsPerWorker*workers/tcfg.Districts + 64

	ccfg := simClusterConfig(nodes, workers)
	c := cluster.New(ccfg)
	part := func(table int, key uint64) int {
		switch table {
		case calvinOrders:
			return tcfg.NodeOfWarehouse(int((key >> 32) / 16))
		case calvinOrderLines:
			return tcfg.NodeOfWarehouse(int((key >> 36) / 16))
		case calvinHistory:
			return tcfg.NodeOfWarehouse(int(key >> 48))
		case tpcc.TableItem:
			return int(key) % nodes // Calvin partitions items
		default:
			return tcfg.Partitioner()(table, key)
		}
	}
	// Register the unordered TPC-C tables Calvin needs.
	wPer := wPerNode
	dPer := wPer * tcfg.Districts
	cPer := dPer * tcfg.CustomersPerDist
	sPer := wPer * tcfg.Items
	ordersPer := dPer*(s.txnsPerWorker*workers/tcfg.Districts) + 4096
	c.RegisterUnordered(tpcc.TableWarehouse, 16, 16, wPer+4, tpcc.WValueWords)
	c.RegisterUnordered(tpcc.TableDistrict, 64, 64, dPer+4, tpcc.DValueWords)
	c.RegisterUnordered(tpcc.TableCustomer, cPer/4+16, cPer/4+16, cPer+4, tpcc.CValueWords)
	c.RegisterUnordered(tpcc.TableItem, tcfg.Items/4+16, tcfg.Items/4+16, tcfg.Items+4, tpcc.IValueWords)
	c.RegisterUnordered(tpcc.TableStock, sPer/4+16, sPer/4+16, sPer+4, tpcc.SValueWords)
	c.RegisterUnordered(calvinOrders, ordersPer/4+16, ordersPer/4+16, ordersPer, tpcc.OValueWords)
	c.RegisterUnordered(calvinOrderLines, ordersPer*3+16, ordersPer*3+16, ordersPer*15, tpcc.OLValueWords)
	c.RegisterUnordered(calvinHistory, ordersPer+16, ordersPer+16, ordersPer*2, tpcc.HValueWords)

	// Populate (same generator shapes as tpcc.Setup, unordered part only).
	rng := rand.New(rand.NewSource(o.Seed + 3))
	for n := 0; n < nodes; n++ {
		node := c.Node(n)
		for i := 1; i <= tcfg.Items; i++ {
			if part(tpcc.TableItem, uint64(i)) != n {
				continue
			}
			val := make([]uint64, tpcc.IValueWords)
			val[tpcc.IPrice] = uint64(rng.Intn(9900) + 100)
			if err := node.Unordered(tpcc.TableItem).Insert(tpcc.IKey(i), val); err != nil {
				panic(err)
			}
		}
		for wi := 0; wi < wPerNode; wi++ {
			wID := n*wPerNode + wi + 1
			if err := node.Unordered(tpcc.TableWarehouse).Insert(tpcc.WKey(wID),
				make([]uint64, tpcc.WValueWords)); err != nil {
				panic(err)
			}
			for i := 1; i <= tcfg.Items; i++ {
				sv := make([]uint64, tpcc.SValueWords)
				sv[tpcc.SQuantity] = uint64(rng.Intn(91) + 10)
				if err := node.Unordered(tpcc.TableStock).Insert(tpcc.SKey(wID, i), sv); err != nil {
					panic(err)
				}
			}
			for d := 1; d <= tcfg.Districts; d++ {
				dv := make([]uint64, tpcc.DValueWords)
				dv[tpcc.DNextOID] = 1
				dv[tpcc.DNextDeliv] = 1
				if err := node.Unordered(tpcc.TableDistrict).Insert(tpcc.DKey(wID, d), dv); err != nil {
					panic(err)
				}
				for cu := 1; cu <= tcfg.CustomersPerDist; cu++ {
					if err := node.Unordered(tpcc.TableCustomer).Insert(tpcc.CKey(wID, d, cu),
						make([]uint64, tpcc.CValueWords)); err != nil {
						panic(err)
					}
				}
			}
		}
	}
	sys := calvin.New(c, calvin.DefaultConfig(), part)
	return &calvinTPCC{sys: sys, c: c, cfg: tcfg, stop: c.Stop}
}

// runMix drives an equivalent standard mix through Calvin.
func (ct *calvinTPCC) runMix(o Options, txnsPerWorker int) (newOrder, total int64) {
	workers := ct.c.Workers()
	for _, w := range workers {
		w.VClock.Reset()
	}
	var mu sync.Mutex
	runWorkers(len(workers), func(i int) {
		wk := workers[i]
		rng := rand.New(rand.NewSource(o.Seed + int64(i*17+3)))
		home := wk.Node.ID*ct.cfg.WarehousesPerNode + (wk.ID % ct.cfg.WarehousesPerNode) + 1
		var no, tot int64
		var hseq uint64
		var oseq int
		for n := 0; n < txnsPerWorker; n++ {
			r := rng.Intn(100)
			var err error
			switch {
			case r < 45:
				oseq++
				err = ct.newOrder(wk, rng, home, oseq)
				if err == nil {
					no++
				}
			case r < 88:
				hseq++
				err = ct.payment(wk, rng, home, hseq)
			default:
				err = ct.readOnlyStandIn(wk, rng, home)
			}
			if err != nil {
				panic(fmt.Sprintf("bench: calvin txn: %v", err))
			}
			tot++
		}
		mu.Lock()
		newOrder += no
		total += tot
		mu.Unlock()
	})
	return
}

// lockMgrTimes returns per-node serial lock manager durations.
func (ct *calvinTPCC) lockMgrTimes() []time.Duration {
	out := make([]time.Duration, ct.c.Nodes())
	for i := range out {
		out[i] = ct.sys.LockMgrTime(i)
	}
	return out
}

func (ct *calvinTPCC) newOrder(wk *cluster.Worker, rng *rand.Rand, home, oseq int) error {
	cfg := ct.cfg
	d := rng.Intn(cfg.Districts) + 1
	cu := rng.Intn(cfg.CustomersPerDist) + 1
	olCnt := rng.Intn(11) + 5
	dRef := calvin.Ref{Table: tpcc.TableDistrict, Key: tpcc.DKey(home, d)}
	txn := &calvin.Txn{
		ReadSet: []calvin.Ref{
			{Table: tpcc.TableWarehouse, Key: tpcc.WKey(home)},
			dRef,
			{Table: tpcc.TableCustomer, Key: tpcc.CKey(home, d, cu)},
		},
		WriteSet: []calvin.Ref{dRef},
	}
	type line struct {
		item, supply, qty int
	}
	lines := make([]line, olCnt)
	for i := range lines {
		supply := home
		if cfg.Warehouses() > 1 && rng.Intn(100) < cfg.CrossNewOrderPct {
			supply = rng.Intn(cfg.Warehouses()) + 1
		}
		lines[i] = line{item: rng.Intn(cfg.Items) + 1, supply: supply, qty: rng.Intn(10) + 1}
		sRef := calvin.Ref{Table: tpcc.TableStock, Key: tpcc.SKey(supply, lines[i].item)}
		txn.ReadSet = append(txn.ReadSet, sRef,
			calvin.Ref{Table: tpcc.TableItem, Key: tpcc.IKey(lines[i].item)})
		txn.WriteSet = append(txn.WriteSet, sRef)
	}
	txn.Logic = func(ctx *calvin.Ctx) error {
		dv, _ := ctx.Read(tpcc.TableDistrict, tpcc.DKey(home, d))
		oID := int(dv[tpcc.DNextOID])
		nd := append([]uint64(nil), dv...)
		nd[tpcc.DNextOID]++
		ctx.Write(tpcc.TableDistrict, tpcc.DKey(home, d), nd)
		for _, l := range lines {
			sv, ok := ctx.Read(tpcc.TableStock, tpcc.SKey(l.supply, l.item))
			if !ok {
				continue
			}
			ns := append([]uint64(nil), sv...)
			ns[tpcc.SYtd] += uint64(l.qty)
			ns[tpcc.SOrderCnt]++
			ctx.Write(tpcc.TableStock, tpcc.SKey(l.supply, l.item), ns)
		}
		_ = oID
		return nil
	}
	// Order + order-line inserts: a per-worker sequence in the worker's own
	// ID space keeps keys unique (real Calvin pre-sequences them globally).
	oID := oseq + (wk.Node.ID*64+wk.ID)<<20
	oVal := make([]uint64, tpcc.OValueWords)
	oVal[tpcc.OCID] = uint64(cu)
	oVal[tpcc.OOlCnt] = uint64(olCnt)
	txn.Inserts = append(txn.Inserts, calvin.Insert{
		Ref: calvin.Ref{Table: calvinOrders, Key: tpcc.OKey(home, d, oID)}, Val: oVal})
	for i := range lines {
		olv := make([]uint64, tpcc.OLValueWords)
		olv[tpcc.OLIID] = uint64(lines[i].item)
		txn.Inserts = append(txn.Inserts, calvin.Insert{
			Ref: calvin.Ref{Table: calvinOrderLines, Key: tpcc.OLKey(home, d, oID, i+1)}, Val: olv})
	}
	return ct.sys.Execute(wk, txn)
}

func (ct *calvinTPCC) payment(wk *cluster.Worker, rng *rand.Rand, home int, hseq uint64) error {
	cfg := ct.cfg
	d := rng.Intn(cfg.Districts) + 1
	cW, cD := home, d
	if cfg.Warehouses() > 1 && rng.Intn(100) < cfg.CrossPaymentPct {
		cW = rng.Intn(cfg.Warehouses()) + 1
		cD = rng.Intn(cfg.Districts) + 1
	}
	cu := rng.Intn(cfg.CustomersPerDist) + 1
	amount := uint64(rng.Intn(5000) + 1)
	wRef := calvin.Ref{Table: tpcc.TableWarehouse, Key: tpcc.WKey(home)}
	dRef := calvin.Ref{Table: tpcc.TableDistrict, Key: tpcc.DKey(home, d)}
	cRef := calvin.Ref{Table: tpcc.TableCustomer, Key: tpcc.CKey(cW, cD, cu)}
	hVal := make([]uint64, tpcc.HValueWords)
	hVal[0] = amount
	txn := &calvin.Txn{
		ReadSet:  []calvin.Ref{wRef, dRef, cRef},
		WriteSet: []calvin.Ref{wRef, dRef, cRef},
		Inserts: []calvin.Insert{{
			Ref: calvin.Ref{Table: calvinHistory,
				Key: tpcc.HKey(home, wk.Node.ID, wk.ID, hseq)},
			Val: hVal,
		}},
		Logic: func(ctx *calvin.Ctx) error {
			wv, _ := ctx.Read(tpcc.TableWarehouse, tpcc.WKey(home))
			nw := append([]uint64(nil), wv...)
			nw[tpcc.WYtd] += amount
			ctx.Write(tpcc.TableWarehouse, tpcc.WKey(home), nw)
			dv, _ := ctx.Read(tpcc.TableDistrict, tpcc.DKey(home, d))
			nd := append([]uint64(nil), dv...)
			nd[tpcc.DYtd] += amount
			ctx.Write(tpcc.TableDistrict, tpcc.DKey(home, d), nd)
			cv, _ := ctx.Read(tpcc.TableCustomer, tpcc.CKey(cW, cD, cu))
			nc := append([]uint64(nil), cv...)
			nc[tpcc.CYtdPayment] += amount
			nc[tpcc.CPaymentCnt]++
			ctx.Write(tpcc.TableCustomer, tpcc.CKey(cW, cD, cu), nc)
			return nil
		},
	}
	return ct.sys.Execute(wk, txn)
}

// readOnlyStandIn models OS/DLY/SL with equivalent read cardinality.
func (ct *calvinTPCC) readOnlyStandIn(wk *cluster.Worker, rng *rand.Rand, home int) error {
	cfg := ct.cfg
	d := rng.Intn(cfg.Districts) + 1
	txn := &calvin.Txn{
		TolerateMissing: true,
		ReadSet: []calvin.Ref{
			{Table: tpcc.TableDistrict, Key: tpcc.DKey(home, d)},
		},
		Logic: func(ctx *calvin.Ctx) error { return nil },
	}
	// ~60 stock reads stand in for the scan-heavy read-only transactions.
	for i := 0; i < 60; i++ {
		txn.ReadSet = append(txn.ReadSet, calvin.Ref{
			Table: tpcc.TableStock, Key: tpcc.SKey(home, rng.Intn(cfg.Items)+1)})
	}
	return ct.sys.Execute(wk, txn)
}
