package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"drtm/internal/clock"
	"drtm/internal/cluster"
	"drtm/internal/htm"
	"drtm/internal/rdma"
	"drtm/internal/tpcc"
	"drtm/internal/tx"
)

// benchTable is the scratch table used by the micro experiments.
const benchTable = 60

// buildMicro builds a cluster with one unordered table of perNode keys per
// node (keys are 1-based, node = (key-1)/perNode).
func buildMicro(nodes, workers, perNode int, mutC func(*cluster.Config), mutRT func(*tx.Runtime)) (*tx.Runtime, func()) {
	ccfg := simClusterConfig(nodes, workers)
	if mutC != nil {
		mutC(&ccfg)
	}
	c := cluster.New(ccfg)
	c.Start()
	rt := tx.NewRuntime(c, func(table int, key uint64) int {
		return int((key - 1) / uint64(perNode))
	})
	if mutRT != nil {
		mutRT(rt)
	}
	rt.DefineUnordered(benchTable, perNode/4+16, perNode/4+16, perNode+16, 2)
	for n := 0; n < nodes; n++ {
		t := c.Node(n).Unordered(benchTable)
		base := uint64(n * perNode)
		for k := 1; k <= perNode; k++ {
			if err := t.Insert(base+uint64(k), []uint64{100, 0}); err != nil {
				panic(err)
			}
		}
	}
	return rt, c.Stop
}

// ---- Figure 11: softtime strategies --------------------------------------

func runFig11(o Options) *Result {
	res := &Result{
		ID:      "fig11",
		Title:   "False aborts vs softtime strategy (Figure 11)",
		Headers: []string{"strategy", "interval", "htm aborts/1k txns", "lease fails/1k txns"},
	}
	txns := 3000
	if o.Quick {
		txns = 600
	}
	type variant struct {
		name     string
		strategy clock.Strategy
		interval time.Duration
		storm    bool // drive extra manual ticks to emulate a fast timer
	}
	variants := []variant{
		// (a)'s long interval inflates DELTA, eroding the lease-confirmation
		// margin (lease duration minus DELTA): the paper's trade-off.
		{"(a) per-op, long interval", clock.StrategyLongInterval, 6 * time.Millisecond, false},
		{"(b) per-op, short interval", clock.StrategyPerOp, time.Millisecond, true},
		{"(c) reuse+confirm (DrTM)", clock.StrategyReuseConfirm, time.Millisecond, true},
	}
	for _, v := range variants {
		rt, stop := buildMicro(2, 2, 2048, func(c *cluster.Config) {
			c.Strategy = v.strategy
			c.SofttimeInterval = v.interval
			c.LeaseMicros = 10_000 // keep a positive confirmation margin even for (a)
		}, nil)

		stormDone := make(chan struct{})
		if v.storm {
			// Emulate a high-frequency timer thread: Go tickers cannot fire
			// every 50us reliably, so a goroutine publishes softtime
			// directly (same memory effect as the paper's timer thread).
			go func() {
				for {
					select {
					case <-stormDone:
						return
					default:
						rt.C.Node(0).Clock.Tick()
						rt.C.Node(1).Clock.Tick()
						runtime.Gosched()
					}
				}
			}()
		}

		ws := rt.C.Workers()
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := rt.Executor(wk.Node.ID, wk.ID)
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			// Disjoint per-worker write ranges and a never-written remote
			// read range: conflicts measured here come from the timer
			// thread, not from other workers.
			base := uint64(wk.Node.ID*2048) + uint64(wk.ID*400)
			remoteBase := uint64((1-wk.Node.ID)*2048) + 1600
			for t := 0; t < txns; t++ {
				k1 := base + uint64(rng.Intn(400)) + 1
				k2 := base + uint64((rng.Intn(400)+200)%400) + 1
				rk := remoteBase + uint64(rng.Intn(400)) + 1
				err := e.Exec(func(tx1 *tx.Tx) error {
					if err := tx1.R(benchTable, rk); err != nil { // lease => confirm
						return err
					}
					if err := tx1.W(benchTable, k1); err != nil {
						return err
					}
					if err := tx1.W(benchTable, k2); err != nil {
						return err
					}
					return tx1.Execute(func(lc *tx.Local) error {
						// Yield between local ops so the timer thread can
						// interleave with the HTM region, as it would on a
						// multi-core machine.
						v, err := lc.Read(benchTable, k1)
						if err != nil {
							return err
						}
						runtime.Gosched()
						if err := lc.Write(benchTable, k1, []uint64{v[0] + 1, v[1]}); err != nil {
							return err
						}
						runtime.Gosched()
						w2, err := lc.Read(benchTable, k2)
						if err != nil {
							return err
						}
						runtime.Gosched()
						return lc.Write(benchTable, k2, []uint64{w2[0] + 1, w2[1]})
					})
				})
				if err != nil && !errors.Is(err, tx.ErrRetry) {
					panic(err)
				}
			}
		})
		close(stormDone)
		commits := rt.Stats.Commits.Load()
		aborts := rt.Stats.HTMAborts.Load()
		leaseFails := rt.Stats.LeaseFails.Load()
		stop()
		res.AddRow(v.name, v.interval.String(),
			fmt.Sprintf("%.1f", float64(aborts)/float64(commits)*1000),
			fmt.Sprintf("%.1f", float64(leaseFails)/float64(commits)*1000))
	}
	res.Note("per-op reads softtime transactionally on every local op; reuse+confirm only at lease confirmation")
	return res
}

// ---- Figure 17: read-lease microbenches ----------------------------------

func runFig17(o Options) *Result {
	res := &Result{
		ID:      "fig17",
		Title:   "Read-lease benefit: read-write ratio and hotspot (Figure 17)",
		Headers: []string{"benchmark", "x", "no-lease txns/s/node", "lease txns/s/node", "gain"},
	}
	txns := 1500
	if o.Quick {
		txns = 300
	}

	// Part 1: read-write transaction, 10 records, 10% cross-warehouse;
	// sweep the fraction of records that are only read. Reads draw from a
	// small shared read-mostly pool (catalog-like data — the records leases
	// target), writes from the large per-node pool; the pool size is scaled
	// to preserve per-key contention under the simulator's effective
	// concurrency (see DESIGN.md).
	runRW := func(readPct int, lease bool) float64 {
		const nodes, workers, perNode = 3, 4, 2048
		const hotKeys = 8 // read-mostly pool, per node
		rt, stop := buildMicro(nodes, workers, perNode, func(c *cluster.Config) {
			c.LeaseMicros = 3_000
		}, func(rt *tx.Runtime) {
			rt.NoReadLease = !lease
		})
		defer stop()
		resetClocks(rt)
		ws := rt.C.Workers()
		var committed int64
		var mu sync.Mutex
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := rt.Executor(wk.Node.ID, wk.ID)
			rng := rand.New(rand.NewSource(o.Seed + int64(i*31)))
			n := 0
			for t := 0; t < txns; t++ {
				type acc struct {
					key   uint64
					write bool
				}
				accs := make([]acc, 10)
				for j := range accs {
					node := wk.Node.ID
					if rng.Intn(100) < 10 {
						node = rng.Intn(nodes)
					}
					write := rng.Intn(100) >= readPct
					var key uint64
					if write {
						// Writes target the large pool (above the hot range).
						key = uint64(node*perNode) + uint64(rng.Intn(perNode-hotKeys)+hotKeys) + 1
					} else {
						key = uint64(node*perNode) + uint64(rng.Intn(hotKeys)) + 1
					}
					accs[j] = acc{key: key, write: write}
				}
				err := e.Exec(func(t1 *tx.Tx) error {
					for _, a := range accs {
						var err error
						if a.write {
							err = t1.W(benchTable, a.key)
						} else {
							err = t1.R(benchTable, a.key)
						}
						if err != nil {
							return err
						}
					}
					return t1.Execute(func(lc *tx.Local) error {
						for _, a := range accs {
							v, err := lc.Read(benchTable, a.key)
							if err != nil {
								return err
							}
							if a.write {
								if err := lc.Write(benchTable, a.key, []uint64{v[0] + 1, v[1]}); err != nil {
									return err
								}
							}
						}
						return nil
					})
				})
				if err == nil {
					n++
				}
			}
			mu.Lock()
			committed += int64(n)
			mu.Unlock()
		})
		return throughput(committed, ws) / float64(nodes)
	}

	for _, readPct := range []int{0, 30, 60, 90} {
		off := runRW(readPct, false)
		on := runRW(readPct, true)
		res.AddRow("read-write", fmt.Sprintf("%d%% reads", readPct),
			fmtK(off), fmtK(on), fmt.Sprintf("%+.0f%%", (on/off-1)*100))
	}

	// Part 2: hotspot — one of 10 records is a READ of a small hot set
	// spread evenly across the cluster; the rest are local writes. The
	// paper uses 120 hot records under 48 truly parallel workers; the hot
	// set here is scaled to 12 to preserve per-key contention (utilization)
	// under the simulator's effective concurrency.
	runHot := func(nodes int, lease bool) float64 {
		const workers, perNode = 4, 2048
		rt, stop := buildMicro(nodes, workers, perNode, func(c *cluster.Config) {
			c.LeaseMicros = 10_000
		}, func(rt *tx.Runtime) {
			rt.NoReadLease = !lease
		})
		defer stop()
		resetClocks(rt)
		hotPerNode := 12 / nodes
		ws := rt.C.Workers()
		var committed int64
		var mu sync.Mutex
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := rt.Executor(wk.Node.ID, wk.ID)
			rng := rand.New(rand.NewSource(o.Seed + int64(i*37)))
			n := 0
			for t := 0; t < txns; t++ {
				hotNode := rng.Intn(nodes)
				hotKey := uint64(hotNode*perNode) + uint64(rng.Intn(hotPerNode)) + 1
				keys := make([]uint64, 9)
				for j := range keys {
					keys[j] = uint64(wk.Node.ID*perNode) + uint64(rng.Intn(perNode-hotPerNode)+hotPerNode) + 1
				}
				err := e.Exec(func(t1 *tx.Tx) error {
					if err := t1.R(benchTable, hotKey); err != nil {
						return err
					}
					for _, k := range keys {
						if err := t1.W(benchTable, k); err != nil {
							return err
						}
					}
					return t1.Execute(func(lc *tx.Local) error {
						if _, err := lc.Read(benchTable, hotKey); err != nil {
							return err
						}
						for _, k := range keys {
							v, err := lc.Read(benchTable, k)
							if err != nil {
								return err
							}
							if err := lc.Write(benchTable, k, []uint64{v[0] + 1, v[1]}); err != nil {
								return err
							}
						}
						return nil
					})
				})
				if err == nil {
					n++
				}
			}
			mu.Lock()
			committed += int64(n)
			mu.Unlock()
		})
		return throughput(committed, ws) / float64(nodes)
	}

	hotMachines := []int{2, 4, 6}
	if o.Quick {
		hotMachines = []int{2, 3}
	}
	for _, n := range hotMachines {
		off := runHot(n, false)
		on := runHot(n, true)
		res.AddRow("hotspot", fmt.Sprintf("%d machines", n),
			fmtK(off), fmtK(on), fmt.Sprintf("%+.0f%%", (on/off-1)*100))
	}
	res.Note("paper: lease gains grow with read ratio; hotspot gain reaches ~29%% at 6 machines")
	return res
}

// ---- Table 2: conflict matrix --------------------------------------------

func runTable2(o Options) *Result {
	res := &Result{
		ID:      "table2",
		Title:   "Observed conflicts between local and remote accesses (Table 2)",
		Headers: []string{"first access", "then L RD", "then L WR"},
	}
	// For each remote first-access kind, test whether a subsequent local
	// read/write conflicts (C) or shares (S). The remote access is staged
	// synchronously (lock/lease installed) before the local transaction
	// runs, so the observation is deterministic.
	probe := func(remoteWrite bool, localWrite bool) string {
		rt, stop := buildMicro(2, 1, 16, nil, nil)
		defer stop()
		const key = 1 // homed on node 0
		e0 := rt.Executor(0, 0)
		e1 := rt.Executor(1, 0)

		t1 := tx.NewProbe(e1)
		if err := t1.Stage(benchTable, key, 0, remoteWrite); err != nil {
			panic(err)
		}

		before := rt.Stats.HTMAborts.Load() + rt.Stats.Retries.Load()
		done := make(chan error, 1)
		go func() {
			done <- e0.Exec(func(t0 *tx.Tx) error {
				var err error
				if localWrite {
					err = t0.W(benchTable, key)
				} else {
					err = t0.R(benchTable, key)
				}
				if err != nil {
					return err
				}
				return t0.Execute(func(lc *tx.Local) error {
					if localWrite {
						return lc.Write(benchTable, key, []uint64{2, 2})
					}
					_, err := lc.Read(benchTable, key)
					return err
				})
			})
		}()
		// Give the local transaction time to attempt (and conflict) while
		// the remote lock/lease is held, then release so it can finish.
		deadline := time.Now().Add(200 * time.Millisecond)
		for rt.Stats.HTMAborts.Load()+rt.Stats.Retries.Load() == before &&
			time.Now().Before(deadline) {
			select {
			case err := <-done: // committed without conflict: sharing
				if err != nil {
					panic(err)
				}
				t1.Release()
				return "S"
			default:
				runtime.Gosched()
			}
		}
		t1.Release()
		if err := <-done; err != nil {
			panic(err)
		}
		if rt.Stats.HTMAborts.Load()+rt.Stats.Retries.Load() > before {
			return "C"
		}
		return "S"
	}

	res.AddRow("R RD (lease held)", probe(false, false), probe(false, true))
	res.AddRow("R WR (lock held)", probe(true, false), probe(true, true))
	res.Note("paper Table 2: R RD shares with L RD (modulo the rare false conflict); everything else conflicts")
	return res
}

// ---- Ablations ------------------------------------------------------------

func runAblateCache(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "ablate-cache",
		Title:   "Location cache ablation on TPC-C, 10% cross-warehouse",
		Headers: []string{"cache", "RDMA READs/txn", "standard-mix/s"},
	}
	for _, budget := range []int{0, 1 << 22} {
		dep := buildTPCC(o, 2, 4, 4, func(c *tpcc.Config) {
			c.CrossNewOrderPct = 10
		}, nil)
		dep.rt.CacheBudgetBytes = budget
		before := dep.rt.C.Fabric.Totals.Reads.Load()
		_, total := dep.runMix(o, s.txnsPerWorker)
		reads := dep.rt.C.Fabric.Totals.Reads.Load() - before
		tput := throughput(total, dep.rt.C.Workers())
		name := "off"
		if budget > 0 {
			name = "4MB/table"
		}
		res.AddRow(name, fmt.Sprintf("%.2f", float64(reads)/float64(total)), fmtK(tput))
		dep.stop()
	}
	return res
}

func runAblateFallback(o Options) *Result {
	res := &Result{
		ID:      "ablate-fallback",
		Title:   "Fallback threshold sweep under HTM conflict pressure",
		Headers: []string{"threshold", "fallback%", "htm aborts/txn", "txns/s"},
	}
	txns := 800
	if o.Quick {
		txns = 200
	}
	for _, th := range []int{1, 2, 4, 8, 16} {
		rt, stop := buildMicro(2, 4, 4096, nil,
			func(rt *tx.Runtime) { rt.FallbackThreshold = th })
		resetClocks(rt)
		ws := rt.C.Workers()
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := rt.Executor(wk.Node.ID, wk.ID)
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			base := uint64(wk.Node.ID * 4096)
			remote := uint64((1 - wk.Node.ID) * 4096)
			for t := 0; t < txns; t++ {
				// Mostly local transactions over a small hot pool; 30% of
				// transactions instead remotely write the OTHER node's hot
				// pool. The remote CAS/WRITE traffic lands in local HTM
				// regions' read sets (the Table 2 conflicts), so regions
				// abort and the retry-vs-fallback threshold matters.
				var keys []uint64
				if rng.Intn(100) < 30 {
					keys = []uint64{remote + uint64(rng.Intn(32)) + 1}
				} else {
					keys = make([]uint64, 5)
					for j := range keys {
						keys[j] = base + uint64(rng.Intn(32)) + 1
					}
				}
				err := e.Exec(func(t1 *tx.Tx) error {
					for _, k := range keys {
						if err := t1.W(benchTable, k); err != nil {
							return err
						}
					}
					return t1.Execute(func(lc *tx.Local) error {
						for _, k := range keys {
							v, err := lc.Read(benchTable, k)
							if err != nil {
								return err
							}
							if err := lc.Write(benchTable, k, []uint64{v[0] + 1, v[1]}); err != nil {
								return err
							}
						}
						return nil
					})
				})
				if err != nil && !errors.Is(err, tx.ErrRetry) {
					panic(err)
				}
			}
		})
		commits := rt.Stats.Commits.Load()
		fb := rt.Stats.Fallbacks.Load()
		aborts := rt.Stats.HTMAborts.Load()
		tput := throughput(commits, ws)
		stop()
		res.AddRow(fmt.Sprintf("%d", th),
			fmt.Sprintf("%.1f", float64(fb)/float64(commits)*100),
			fmt.Sprintf("%.2f", float64(aborts)/float64(commits)),
			fmtK(tput))
	}
	res.Note("finding: cross-machine conflicts surface as observed-lock aborts (whole-txn retry), not repeated")
	res.Note("HTM conflicts, so the fallback threshold is a secondary knob outside capacity pressure —")
	res.Note("capacity aborts bypass it entirely (see TestFallbackCapacity and ablate-atomics)")
	return res
}

func runAblateAtomics(o Options) *Result {
	res := &Result{
		ID:      "ablate-atomics",
		Title:   "NIC atomicity level: fallback path cost (Section 6.3)",
		Headers: []string{"atomicity", "txns/s", "vs GLOB"},
	}
	txns := 600
	if o.Quick {
		txns = 150
	}
	var glob float64
	for _, level := range []rdma.AtomicityLevel{rdma.AtomicGLOB, rdma.AtomicHCA} {
		rt, stop := buildMicro(1, 4, 4096, func(c *cluster.Config) {
			c.Atomicity = level
			c.HTM = htm.Config{WriteLines: 4, ReadLines: 4096} // force fallback
		}, func(rt *tx.Runtime) { rt.FallbackThreshold = 2 })
		resetClocks(rt)
		ws := rt.C.Workers()
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := rt.Executor(wk.Node.ID, wk.ID)
			rng := rand.New(rand.NewSource(o.Seed + int64(i)))
			for t := 0; t < txns; t++ {
				keys := make([]uint64, 10)
				for j := range keys {
					keys[j] = uint64(rng.Intn(4096)) + 1
				}
				err := e.Exec(func(t1 *tx.Tx) error {
					for _, k := range keys {
						if err := t1.W(benchTable, k); err != nil {
							return err
						}
					}
					return t1.Execute(func(lc *tx.Local) error {
						for _, k := range keys {
							v, err := lc.Read(benchTable, k)
							if err != nil {
								return err
							}
							if err := lc.Write(benchTable, k, []uint64{v[0] + 1, v[1]}); err != nil {
								return err
							}
						}
						return nil
					})
				})
				if err != nil && !errors.Is(err, tx.ErrRetry) {
					panic(err)
				}
			}
		})
		tput := throughput(rt.Stats.Commits.Load(), ws)
		stop()
		if level == rdma.AtomicGLOB {
			glob = tput
			res.AddRow(level.String(), fmtK(tput), "100%")
		} else {
			res.AddRow(level.String(), fmtK(tput), fmt.Sprintf("%.0f%%", tput/glob*100))
		}
	}
	res.Note("paper: HCA-level atomics cost ~15%% throughput on the fallback path")
	return res
}

func init() {
	Register(Experiment{ID: "fig11", Title: "Softtime strategies", Run: runFig11})
	Register(Experiment{ID: "fig17", Title: "Read-lease microbenches", Run: runFig17})
	Register(Experiment{ID: "table2", Title: "Conflict matrix", Run: runTable2})
	Register(Experiment{ID: "ablate-cache", Title: "Location cache ablation", Run: runAblateCache})
	Register(Experiment{ID: "ablate-fallback", Title: "Fallback threshold sweep", Run: runAblateFallback})
	Register(Experiment{ID: "ablate-atomics", Title: "Atomicity-level ablation", Run: runAblateAtomics})
}
