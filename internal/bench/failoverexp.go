package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drtm"
	"drtm/internal/smallbank"
)

// The failover experiment pits the two crash-repair strategies against each
// other on the same SmallBank workload and the same crash. The f=0 arm runs
// the original durability story: the detector confirms the death and the
// coordinator replays the victim's full NVRAM write-ahead logs before
// reviving it. The f=1 arm runs FaRM-style commit-backup: every commit
// already shipped its write-set to a backup's redo log, so the coordinator
// only promotes the backup and replays the short redo tail — the victim
// stays dead and the partition keeps serving from the replica. The headline
// number is the unavailability ratio (promotion time / full-recovery time);
// the conservation rows prove neither arm loses a committed transaction.
func init() {
	Register(Experiment{
		ID:    "failover",
		Title: "Failover: hot-standby promotion vs full NVRAM-replay recovery",
		Run:   runFailoverExp,
	})
}

// failoverArm is one measured run: a SmallBank cluster under live traffic,
// one crash of node 1, and the repair path selected by the replication
// factor (f=0: detector-driven Recover + revival; f>0: detector-driven hot
// promotion). Both arms share the warm window, so the f=0 arm's WAL and the
// f=1 arm's redo tail reflect the same committed history.
type failoverArm struct {
	f             int
	unavailNS     int64 // wall-clock inside Recover (f=0) or Failover (f>0)
	commits       int64
	outageCommits int64
	downAborts    int64
	detections    int64
	recoveries    int64
	failovers     int64
	logAppends    int64
	backupBytes   int64
	redoTail      int64
	repaired      bool  // victim revived (f=0) / partition promoted (f>0)
	initial, net  int64 // conservation audit inputs
	final, want   int64
}

func (a failoverArm) conserved() bool { return a.final == a.want }

func (a failoverArm) conservation() string {
	if a.conserved() {
		return fmt.Sprintf("OK (%d = %d initial %+d net deposits)", a.final, a.initial, a.net)
	}
	return fmt.Sprintf("VIOLATED: final %d, want %d (initial %d %+d net)",
		a.final, a.want, a.initial, a.net)
}

func measureFailoverArm(o Options, f int) failoverArm {
	const (
		nodes   = 3
		workers = 2
		victim  = 1
	)
	warm, tail := 30*time.Millisecond, 15*time.Millisecond
	if o.Quick {
		warm, tail = 20*time.Millisecond, 10*time.Millisecond
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	cfg := smallbank.Config{
		Nodes:           nodes,
		AccountsPerNode: 100,
		HotAccounts:     8,
		HotProb:         0.25,
		DistProb:        0.3, // distributed transactions strand mid-crash
		InitialBalance:  1000,
	}

	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		LeaseMicros: simLeaseMicros, ROLeaseMicros: simROLeaseMicros,
		Durability:        true,
		ReplicationFactor: f,
		FailureDetection:  true,
		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    12 * time.Millisecond,
		ElectionStagger:   2 * time.Millisecond,
		FaultSeed:         seed,
	}, cfg.Partitioner())
	defer db.Close()

	w, err := smallbank.Setup(db.RT, cfg)
	if err != nil {
		panic(err)
	}
	initial := int64(w.TotalBalance())
	base := db.Stats()

	var (
		stop          = make(chan struct{})
		outage        atomic.Bool
		commits       atomic.Int64
		outageCommits atomic.Int64
		downAborts    atomic.Int64
		wg            sync.WaitGroup
	)
	clients := make([]*smallbank.Client, 0, nodes*workers)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), seed+int64(n*workers+wk))
			clients = append(clients, cl)
			wg.Add(1)
			go func(n int, cl *smallbank.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if _, err := cl.RunOne(); err == nil {
						commits.Add(1)
						if outage.Load() {
							outageCommits.Add(1)
						}
					} else if errors.Is(err, drtm.ErrNodeDown) {
						downAborts.Add(1)
					}
				}
			}(n, cl)
		}
	}

	// Build real state before the crash: the f=0 arm accumulates NVRAM WAL
	// to replay, the f=1 arm accumulates (checkpoint-bounded) redo tails.
	time.Sleep(warm)
	outage.Store(true)
	db.Crash(victim)

	// Wait for the repair this arm is configured for: full recovery revives
	// the victim; hot failover hands its partition to a backup and leaves
	// the victim dead.
	repaired := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if f == 0 {
			repaired = db.C.Node(victim).Alive()
		} else {
			repaired = db.PartitionOwner(victim) != victim
		}
		if repaired {
			break
		}
		time.Sleep(time.Millisecond)
	}
	outage.Store(false)

	time.Sleep(tail) // post-repair traffic against the repaired partition
	close(stop)
	wg.Wait()

	final := int64(w.TotalBalance())
	var net int64
	for _, cl := range clients {
		net += cl.NetDeposits
	}

	st := db.Stats().Delta(base)
	unavail := st.RecoveryNanos
	if f > 0 {
		unavail = st.PromoteNanos
	}
	return failoverArm{
		f:             f,
		unavailNS:     unavail,
		commits:       commits.Load(),
		outageCommits: outageCommits.Load(),
		downAborts:    downAborts.Load(),
		detections:    st.Detections,
		recoveries:    st.Recoveries,
		failovers:     st.Failovers,
		logAppends:    st.LogAppends,
		backupBytes:   st.BackupBytes,
		redoTail:      st.RedoTailLen,
		repaired:      repaired,
		initial:       initial,
		net:           net,
		final:         final,
		want:          initial + net,
	}
}

func runFailoverExp(o Options) *Result {
	rec := measureFailoverArm(o, 0)
	hot := measureFailoverArm(o, 1)

	res := &Result{
		ID:      "failover",
		Title:   "Failover: hot-standby promotion vs full NVRAM-replay recovery",
		Headers: []string{"metric", "recover (f=0)", "failover (f=1)"},
	}
	repairName := func(a failoverArm) string {
		if !a.repaired {
			return "TIMED OUT"
		}
		if a.f == 0 {
			return "victim revived"
		}
		return "backup promoted"
	}
	res.AddRow("repair", repairName(rec), repairName(hot))
	res.AddRow("unavailability",
		fmt.Sprintf("%v", time.Duration(rec.unavailNS)),
		fmt.Sprintf("%v", time.Duration(hot.unavailNS)))
	res.AddRow("commits", fmt.Sprintf("%d", rec.commits), fmt.Sprintf("%d", hot.commits))
	res.AddRow("commits-during-outage",
		fmt.Sprintf("%d", rec.outageCommits), fmt.Sprintf("%d", hot.outageCommits))
	res.AddRow("node-down-aborts",
		fmt.Sprintf("%d", rec.downAborts), fmt.Sprintf("%d", hot.downAborts))
	res.AddRow("balance-conservation", rec.conservation(), hot.conservation())
	res.AddRow("detections", fmt.Sprintf("%d", rec.detections), fmt.Sprintf("%d", hot.detections))
	res.AddRow("recoveries", fmt.Sprintf("%d", rec.recoveries), fmt.Sprintf("%d", hot.recoveries))
	res.AddRow("failovers", fmt.Sprintf("%d", rec.failovers), fmt.Sprintf("%d", hot.failovers))
	res.AddRow("log-appends", fmt.Sprintf("%d", rec.logAppends), fmt.Sprintf("%d", hot.logAppends))
	res.AddRow("backup-bytes", fmt.Sprintf("%d", rec.backupBytes), fmt.Sprintf("%d", hot.backupBytes))
	res.AddRow("redo-tail-replayed", fmt.Sprintf("%d", rec.redoTail), fmt.Sprintf("%d", hot.redoTail))

	if rec.unavailNS > 0 {
		ratio := float64(hot.unavailNS) / float64(rec.unavailNS)
		res.AddRow("unavailability-ratio", "1.00x (baseline)", fmt.Sprintf("%.3fx", ratio))
		res.Note("gate: promotion unavailability must stay < 0.2x of the full-replay baseline (TestFailoverAcceptance)")
	}
	res.Note("same warm window both arms: f=0 replays the whole NVRAM WAL, f=1 replays only the checkpoint-bounded redo tail")
	res.Note("detector: 1ms heartbeats, 12ms failure timeout, 2ms election stagger; node 1 crashed once under live traffic; seed %d", seed(o))
	res.Note("unavailability is wall-clock until the partition serves again: the whole Recover call (f=0) vs view handover + adopted-partition redo replay (f=1); detection latency is identical across arms")
	return res
}

func seed(o Options) int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}
