package bench

import "testing"

func TestSmokeScan(t *testing.T) {
	if testing.Short() {
		t.Skip("scan experiment is slow")
	}
	runSmoke(t, "scan")
}

// TestScanAcceptance pins the scan experiment's claim: an RO range scan
// amortizes the shipped host round-trip and the per-row lease CAS across
// the whole range, so at fanout 8 it must be at least 2x cheaper per
// transaction than fetching the same rows with per-key lease reads — and
// the advantage must grow with fanout.
func TestScanAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("scan acceptance is slow")
	}
	const txns = 100

	lease8 := measureScan(txns, 8, false)
	scan8 := measureScan(txns, 8, true)
	if lease8.usPerTxn <= 0 || scan8.usPerTxn <= 0 {
		t.Fatalf("missing samples: lease=%v scan=%v", lease8.usPerTxn, scan8.usPerTxn)
	}
	if scan8.usPerTxn > lease8.usPerTxn/2 {
		t.Errorf("ro-scan %.1fus/txn not >=2x cheaper than lease %.1fus/txn",
			scan8.usPerTxn, lease8.usPerTxn)
	}

	lease32 := measureScan(txns, 32, false)
	scan32 := measureScan(txns, 32, true)
	if lease32.usPerTxn/scan32.usPerTxn <= lease8.usPerTxn/scan8.usPerTxn {
		t.Errorf("scan advantage did not grow with fanout: 8 -> %.1fx, 32 -> %.1fx",
			lease8.usPerTxn/scan8.usPerTxn, lease32.usPerTxn/scan32.usPerTxn)
	}
}
