package bench

import (
	"fmt"

	"drtm/internal/obs"
	"drtm/internal/tx"
	"drtm/internal/vtime"
)

// runBatch measures the async verb engine's doorbell-batching win on the
// remote lock/read phase (Section 7.1's one-sided verbs, now posted as
// waves). A single worker stages N remote read records per transaction with
// Tx.Stage; the send-queue window is the independent variable. window=1 is
// the control arm: every verb is posted and polled alone, reproducing the
// pre-batching round trip per op. The reported cost is the PhaseLockRemote
// histogram mean, i.e. modeled ns spent in Start per transaction.
func runBatch(o Options) *Result {
	res := &Result{
		ID:    "batch",
		Title: "Doorbell batching: remote lock/read phase cost vs send-queue window",
		Headers: []string{"records", "window", "lock-phase/txn", "batches/txn",
			"vs window=1"},
	}
	txns := 400
	if o.Quick {
		txns = 100
	}
	model := vtime.DefaultModel()

	for _, n := range []int{8, 16} {
		var serial float64
		for _, window := range []int{1, 16} {
			mean, batches := measureBatch(o, txns, n, window)
			ratio := "1.00x"
			if window == 1 {
				serial = mean
			} else {
				ratio = fmt.Sprintf("%.2fx", mean/serial)
			}
			res.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", window),
				fmt.Sprintf("%.1fus", mean/1e3),
				fmt.Sprintf("%.1f", batches), ratio)
		}
	}
	res.Note("serial round trip per record: lookup READ %dns + lock/lease CAS %dns + prefetch READ %dns",
		model.RDMAReadBaseNS, model.RDMACASNS, model.RDMAReadBaseNS)
	res.Note("batched waves charge max(completions) + %dns doorbell per WR, so the phase cost", model.DoorbellNS)
	res.Note("approaches one round trip per pipeline stage instead of one per record")
	return res
}

// measureBatch runs txns transactions of n fresh remote read records on one
// worker under the given send-queue window and returns the mean
// PhaseLockRemote ns per transaction plus polled batches per transaction.
func measureBatch(o Options, txns, n, window int) (meanNS, batchesPerTx float64) {
	const perNode = 8192
	rt, stop := buildMicro(2, 1, perNode, nil, func(rt *tx.Runtime) {
		rt.BatchWindow = window
		// Location-cache hits would drop lookups off the fabric after the
		// first pass; every key below is touched once, but keep the
		// comparison honest even if key math changes.
		rt.CacheBudgetBytes = 0
	})
	defer stop()
	resetClocks(rt)
	e := rt.Executor(0, 0)
	before := rt.C.Obs.Snapshot()

	next := uint64(perNode) // keys perNode+1..2*perNode are homed on node 1
	for t := 0; t < txns; t++ {
		accs := make([]tx.Access, n)
		for j := range accs {
			next = next%uint64(2*perNode) + 1
			if next <= perNode {
				next = perNode + 1
			}
			accs[j] = tx.Access{Table: benchTable, Key: next}
		}
		err := e.Exec(func(t1 *tx.Tx) error {
			if err := t1.Stage(accs...); err != nil {
				return err
			}
			return t1.Execute(func(lc *tx.Local) error {
				for _, a := range accs {
					if _, err := lc.Read(benchTable, a.Key); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			panic(err)
		}
	}

	sn := rt.C.Obs.Snapshot().Delta(before)
	lock := sn.Phases[obs.PhaseLockRemote]
	if lock.Count == 0 {
		return 0, 0
	}
	return float64(lock.Sum) / float64(lock.Count),
		float64(sn.Counters[obs.EvRDMABatch]) / float64(lock.Count)
}

func init() {
	Register(Experiment{ID: "batch", Title: "Doorbell batching win", Run: runBatch})
}
