package bench

import (
	"testing"
	"time"
)

func TestSmokeFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover experiment is slow")
	}
	runSmoke(t, "failover")
}

// TestFailoverAcceptance pins the replication PR's two acceptance claims on
// the same crash scenario the experiment reports: with one backup per
// partition, killing a primary under live traffic loses zero committed
// transactions, and hot-standby promotion repairs the partition in under
// 0.2x the wall-clock of the full NVRAM-replay Recover baseline.
func TestFailoverAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("failover acceptance is slow")
	}
	// Each arm runs three independent crash scenarios; the correctness
	// checks must hold on every run, while the timing gate compares the
	// per-arm minima — the repair calls are tens-to-hundreds of
	// microseconds of wall-clock, and min-of-N strips scheduler noise the
	// way best-of-N strips it from any microbenchmark.
	const attempts = 3
	var rec, hot failoverArm
	for i := 0; i < attempts; i++ {
		// Full-scale warm window: the contrast under test is a WAL that
		// grows with history vs a checkpoint-bounded redo tail.
		o := Options{Seed: int64(1 + i)}

		r := measureFailoverArm(o, 0)
		if !r.repaired {
			t.Fatal("f=0 arm: victim was never revived")
		}
		if r.recoveries == 0 {
			t.Error("f=0 arm recorded no Recover invocation")
		}
		if !r.conserved() {
			t.Errorf("f=0 arm lost money: %s", r.conservation())
		}
		if r.unavailNS <= 0 {
			t.Fatal("f=0 arm recorded no recovery time")
		}
		if i == 0 || r.unavailNS < rec.unavailNS {
			rec = r
		}

		h := measureFailoverArm(o, 1)
		if !h.repaired {
			t.Fatal("f=1 arm: partition was never promoted")
		}
		if h.failovers == 0 {
			t.Error("f=1 arm recorded no promotion")
		}
		if h.recoveries != 0 {
			t.Errorf("f=1 arm fell back to full recovery %d times", h.recoveries)
		}
		if h.logAppends == 0 || h.backupBytes == 0 {
			t.Errorf("f=1 arm shipped no redo records (appends=%d bytes=%d)",
				h.logAppends, h.backupBytes)
		}
		// Zero lost committed transactions across the crash, audited
		// through the promoted replica.
		if !h.conserved() {
			t.Errorf("f=1 arm lost money across failover: %s", h.conservation())
		}
		if h.unavailNS <= 0 {
			t.Fatal("f=1 arm recorded no promotion time")
		}
		if i == 0 || h.unavailNS < hot.unavailNS {
			hot = h
		}
	}

	// The headline gate: promotion replays only the checkpoint-bounded redo
	// tail, so its unavailability window must be well under the full
	// WAL-replay baseline built from the same warm window. The gate only
	// runs in plain builds — the race detector slows the promotion path's
	// mutex-heavy log drains disproportionately and invalidates the
	// microsecond-scale comparison (the correctness checks above still ran).
	if raceEnabled {
		t.Log("race detector active: skipping the wall-clock unavailability-ratio gate")
		return
	}
	ratio := float64(hot.unavailNS) / float64(rec.unavailNS)
	t.Logf("unavailability: recover=%v promote=%v ratio=%.3fx",
		time.Duration(rec.unavailNS), time.Duration(hot.unavailNS), ratio)
	if ratio >= 0.2 {
		t.Errorf("promotion unavailability %.3fx of full-replay baseline, want < 0.2x", ratio)
	}
}
