//go:build !race

package bench

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
