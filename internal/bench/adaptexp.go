package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"drtm/internal/obs"
	"drtm/internal/tx"
)

// The `adaptive` experiment pits the per-bucket adaptive read-arm selector
// (tx.PolicyAdaptive) against both static arms across a skew × write-ratio
// sweep, on a workload built to expose each static arm's losing corner:
//
//	lease — pays the ~14.5µs CAS on every read record: dominated when the
//	        key space is quiet (the CAS buys protection nobody attacks),
//	        and its read leases stall writers for the lease term.
//	spec  — pays ~1.5µs per read but retries the whole transaction when a
//	        writer bumps any of its records before commit: with a large
//	        read set over a hot, write-heavy keyspace the per-attempt
//	        failure probability compounds toward quasi-livelock.
//
// The adaptive arm routes each read by its bucket's conflict EWMA —
// lease-when-hot, spec-when-cold — so on a skewed mixed workload it should
// track the better arm at both ends of the sweep and beat BOTH statics in
// the middle, where the hot head of the Zipf wants leases while the long
// cold tail wants speculation. That claim is pinned by
// TestAdaptiveAcceptance (wired into `make adaptive` / `make check`):
// adaptive per-record cost within 5% of the best static arm at every sweep
// point, strictly cheaper than each static arm on at least one.
//
// Cost metric: summed worker virtual time over committed records
// (vtime / (commits × nrec)) — total modeled work including retries, not
// just the Start phase, so validation livelock and CAS taxes both count.
func runAdaptive(o Options) *Result {
	res := &Result{
		ID:    "adaptive",
		Title: "Adaptive per-bucket read-arm selection vs static lease/spec",
		Headers: []string{"theta", "write%", "arm", "per-rec", "retries/txn",
			"spec-fails/txn", "spec-share", "switches", "vs best-static"},
	}
	txns := adaptTxns(o)
	for _, pt := range adaptSweep {
		row := map[tx.ReadPolicy]adaptMetrics{}
		for _, p := range []tx.ReadPolicy{tx.PolicyLease, tx.PolicySpeculative, tx.PolicyAdaptive} {
			row[p] = measureAdaptive(o, txns, pt.theta, pt.writePct, p)
		}
		best := row[tx.PolicyLease].perRecNS
		if s := row[tx.PolicySpeculative].perRecNS; s < best {
			best = s
		}
		for _, p := range []tx.ReadPolicy{tx.PolicyLease, tx.PolicySpeculative, tx.PolicyAdaptive} {
			m := row[p]
			ratio := "-"
			if p == tx.PolicyAdaptive && best > 0 {
				ratio = fmt.Sprintf("%.2fx", m.perRecNS/best)
			}
			res.AddRow(fmt.Sprintf("%.2f", pt.theta), fmt.Sprintf("%d", pt.writePct),
				p.String(),
				fmt.Sprintf("%.2fus", m.perRecNS/1e3),
				fmt.Sprintf("%.3f", m.retriesPerTx),
				fmt.Sprintf("%.3f", m.specFailsPerTx),
				fmt.Sprintf("%.0f%%", m.specShare),
				fmt.Sprintf("%d", m.switches), ratio)
		}
	}
	res.Note("workload: %d keys/node, %d-record all-remote read sets, %dx%d workers;", adaptPerNode, adaptNRec, adaptNodes, adaptWorkers)
	res.Note("per-rec = summed worker virtual time / committed records (retries included).")
	res.Note("adaptive routes reads per kvs bucket: lease when the conflict EWMA is hot,")
	res.Note("spec when cold (half-life %d accesses, enter %.1f, exit %.1f).",
		tx.DefaultPolicyConfig().EWMAHalfLife, tx.DefaultPolicyConfig().HotThreshold,
		tx.DefaultPolicyConfig().HotThreshold*tx.DefaultPolicyConfig().Hysteresis)
	return res
}

// adaptSweep is the theta × write% grid. The corners are chosen so each
// static arm loses at least one point: quiet tails favor spec, hot
// write-heavy heads favor lease (see TestAdaptiveAcceptance).
var adaptSweep = []struct {
	theta    float64
	writePct int
}{
	{0.20, 0},
	{0.20, 50},
	{0.90, 10},
	{0.90, 50},
	{0.99, 50},
}

// Workload shape: a small, hot key space and wide read sets amplify the
// spec arm's compounding validation-failure probability, while the cold
// Zipf tail keeps the lease arm paying CAS for nothing.
const (
	adaptPerNode = 256
	adaptNRec    = 8
	adaptNodes   = 2
	adaptWorkers = 2
)

func adaptTxns(o Options) int {
	if o.Quick {
		return 60
	}
	return 250
}

// adaptMetrics summarizes one measured (theta, write%, policy) cell.
type adaptMetrics struct {
	perRecNS       float64 // summed worker vtime per committed record
	commits        int64
	retriesPerTx   float64
	specFailsPerTx float64
	specShare      float64 // % of adaptive routes that took the spec arm
	switches       int64   // bucket reclassifications, both directions
	hotBuckets     int     // heat-table slots hot at the end of the run
}

// measureAdaptive runs the contended mixed workload under one read policy:
// every worker stages adaptNRec records homed on the peer node, keys
// Zipf(theta)-distributed over the node's adaptPerNode keys, each access a
// write with probability writePct/100.
func measureAdaptive(o Options, txns int, theta float64, writePct int, p tx.ReadPolicy) adaptMetrics {
	return measureAdaptiveW(o, txns, theta, writePct, p, adaptWorkers)
}

// measureAdaptiveSplit is the reader-starvation variant: per-worker roles
// instead of a per-access write ratio. Odd workers are pure writers, even
// workers pure readers, all over the same Zipf-skewed keys. Under the spec
// arm the writers continuously bump the readers' staged versions, so wide
// read sets fail validation near-deterministically — the cell where
// speculation loses by construction rather than by scheduling luck.
func measureAdaptiveSplit(o Options, txns int, theta float64, p tx.ReadPolicy, workers, perNode int) adaptMetrics {
	return measureAdaptiveCfg(o, txns, theta, 0, p, workers, perNode, true)
}

// measureAdaptiveW is measureAdaptive with an explicit worker count per
// node: the acceptance test raises it to deepen contention.
func measureAdaptiveW(o Options, txns int, theta float64, writePct int, p tx.ReadPolicy, workers int) adaptMetrics {
	return measureAdaptiveCfg(o, txns, theta, writePct, p, workers, adaptPerNode, false)
}

// measureAdaptiveCfg is the fully parameterized form: worker count and
// per-node key-space size, plus the reader/writer split switch (see
// measureAdaptiveSplit).
func measureAdaptiveCfg(o Options, txns int, theta float64, writePct int, p tx.ReadPolicy, workers, perNode int, split bool) adaptMetrics {
	rt, stop := buildMicro(adaptNodes, workers, perNode, nil, func(rt *tx.Runtime) {
		rt.ReadPolicy = p
		rt.CacheBudgetBytes = 0
	})
	defer stop()
	resetClocks(rt)
	before := rt.C.Obs.Snapshot()

	var wg sync.WaitGroup
	for node := 0; node < adaptNodes; node++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				e := rt.Executor(node, w)
				rng := rand.New(rand.NewSource(o.Seed + int64(node*workers+w)*7919))
				z := NewZipf(rng, uint64(perNode), theta)
				peerBase := uint64((1 - node) * perNode)
				accs := make([]tx.Access, adaptNRec)
				for t := 0; t < txns; t++ {
					for j := range accs {
						write := rng.Intn(100) < writePct
						if split {
							write = w%2 == 1
						}
						accs[j] = tx.Access{
							Table: benchTable,
							Key:   peerBase + 1 + z.Scrambled(),
							Write: write,
						}
					}
					err := e.Exec(func(t1 *tx.Tx) error {
						if err := t1.Stage(accs...); err != nil {
							return err
						}
						return t1.Execute(func(lc *tx.Local) error {
							for _, a := range accs {
								v, err := lc.Read(benchTable, a.Key)
								if err != nil {
									return err
								}
								if a.Write {
									if err := lc.Write(benchTable, a.Key,
										[]uint64{v[0] + 1, v[1]}); err != nil {
										return err
									}
								}
							}
							return nil
						})
					})
					// Retry-budget exhaustion under extreme contention is a
					// data point, not a harness failure.
					if err != nil && !errors.Is(err, tx.ErrRetry) {
						panic(err)
					}
				}
			}(node, w)
		}
	}
	wg.Wait()

	sn := rt.C.Obs.Snapshot().Delta(before)
	m := adaptMetrics{
		commits:    sn.Counters[obs.EvTxCommit],
		switches:   sn.Counters[obs.EvArmSwitchToLease] + sn.Counters[obs.EvArmSwitchToSpec],
		hotBuckets: rt.HotBuckets(),
	}
	var vsum int64
	for _, w := range rt.C.Workers() {
		vsum += int64(w.VClock.Now())
	}
	if m.commits > 0 {
		m.perRecNS = float64(vsum) / float64(m.commits*adaptNRec)
		m.retriesPerTx = float64(sn.Counters[obs.EvTxRetry]) / float64(m.commits)
		m.specFailsPerTx = float64(sn.Counters[obs.EvSpecValidateFail]) / float64(m.commits)
	}
	if n := sn.Counters[obs.EvAdaptSpec] + sn.Counters[obs.EvAdaptLease]; n > 0 {
		m.specShare = 100 * float64(sn.Counters[obs.EvAdaptSpec]) / float64(n)
	}
	return m
}

func init() {
	Register(Experiment{ID: "adaptive", Title: "Adaptive read-arm selection", Run: runAdaptive})
}
