package bench

import (
	"fmt"
	"math/rand"
	"time"

	"drtm/internal/altkv"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

// The KV comparison experiments (Section 5.4) run one server node and
// emulate the paper's 5 client machines x 8 threads = 40 clients. The paper
// uses 20M keys; the simulation defaults to 200k (1/100 scale) with cache
// budgets scaled likewise, which preserves occupancy and hit-rate shapes.

type kvScale struct {
	keys    int
	lookups int
	clients int
}

func kvScaleFor(o Options) kvScale {
	if o.Quick {
		return kvScale{keys: 8_000, lookups: 4_000, clients: 40}
	}
	return kvScale{keys: 200_000, lookups: 60_000, clients: 40}
}

// kvSystem adapts a store to the measurement loop.
type kvSystem struct {
	name   string
	lookup func(qp *rdma.QP, key uint64) bool // probe only (Table 4)
	get    func(qp *rdma.QP, key uint64) bool // full GET (Figure 10)
}

func newKVFabric() *rdma.Fabric {
	return rdma.NewFabric(2, vtime.DefaultModel(), rdma.AtomicHCA)
}

// buildCluster builds a DrTM-KV table with nKeys at ~occupancy of its main
// header slots, registered on a fresh fabric.
func buildCluster(nKeys int, occupancy float64, valueWords int) (*kvs.Table, *rdma.Fabric) {
	slots := float64(nKeys) / occupancy
	mainBuckets := int(slots / kvs.SlotsPerBucket)
	t := kvs.New(kvs.Config{
		Node: 0, RegionID: 0,
		MainBuckets:     mainBuckets,
		IndirectBuckets: mainBuckets/2 + 64,
		Capacity:        nKeys + 64,
		ValueWords:      valueWords,
	}, htm.NewEngine(htm.Config{}))
	f := newKVFabric()
	f.Register(0, 0, t.Arena())
	return t, f
}

func buildCuckoo(nKeys int, occupancy float64, valueWords int) (*altkv.Cuckoo, *rdma.Fabric) {
	buckets := int(float64(nKeys) / occupancy)
	c := altkv.NewCuckoo(0, 0, buckets, nKeys+64, valueWords)
	f := newKVFabric()
	f.Register(0, 0, c.Arena())
	return c, f
}

func buildHopscotch(nKeys int, occupancy float64, valueWords int, inline bool) (*altkv.Hopscotch, *rdma.Fabric) {
	buckets := int(float64(nKeys) / occupancy)
	h := altkv.NewHopscotch(0, 0, buckets, nKeys+64, valueWords, inline)
	f := newKVFabric()
	f.Register(0, 0, h.Arena())
	return h, f
}

func fillStore(n int, vw int, insert func(key uint64, val []uint64) error) error {
	val := make([]uint64, vw)
	for k := 1; k <= n; k++ {
		val[0] = uint64(k)
		if err := insert(uint64(k), val); err != nil {
			return fmt.Errorf("fill key %d/%d: %w", k, n, err)
		}
	}
	return nil
}

// keyGen returns lookup keys: uniform or scrambled-zipfian (theta 0.99).
func keyGen(r *rand.Rand, nKeys int, skewed bool) func() uint64 {
	if !skewed {
		return func() uint64 { return uint64(r.Intn(nKeys)) + 1 }
	}
	z := NewZipf(r, uint64(nKeys), 0.99)
	return func() uint64 { return z.Scrambled() + 1 }
}

// ---- Table 4 ------------------------------------------------------------

func runTable4(o Options) *Result {
	s := kvScaleFor(o)
	res := &Result{
		ID:      "table4",
		Title:   "Average RDMA READs per lookup vs occupancy (Table 4)",
		Headers: []string{"dist", "occupancy", "Cuckoo", "Hopscotch", "Cluster"},
	}
	res.Note("keys=%d lookups=%d (paper: 20M keys)", s.keys, s.lookups)

	measure := func(skewed bool, occ float64) (cuckoo, hop, clus float64) {
		r := rand.New(rand.NewSource(o.Seed + int64(occ*100)))

		c, fc := buildCuckoo(s.keys, occ, 1)
		if err := fillStore(s.keys, 1, c.Insert); err != nil {
			panic(err)
		}
		qp := fc.NewQP(1, nil)
		gen := keyGen(r, s.keys, skewed)
		for i := 0; i < s.lookups; i++ {
			c.LookupRemote(qp, gen())
		}
		cuckoo = float64(qp.Stats.Reads.Load()) / float64(s.lookups)

		h, fh := buildHopscotch(s.keys, occ, 1, true)
		if err := fillStore(s.keys, 1, h.Insert); err != nil {
			panic(err)
		}
		qp = fh.NewQP(1, nil)
		gen = keyGen(r, s.keys, skewed)
		for i := 0; i < s.lookups; i++ {
			h.LookupRemote(qp, gen())
		}
		hop = float64(qp.Stats.Reads.Load()) / float64(s.lookups)

		t, ft := buildCluster(s.keys, occ, 1)
		if err := fillStore(s.keys, 1, t.Insert); err != nil {
			panic(err)
		}
		qp = ft.NewQP(1, nil)
		gen = keyGen(r, s.keys, skewed)
		for i := 0; i < s.lookups; i++ {
			t.LookupRemote(qp, nil, gen())
		}
		clus = float64(qp.Stats.Reads.Load()) / float64(s.lookups)
		return
	}

	for _, skewed := range []bool{false, true} {
		dist := "uniform"
		if skewed {
			dist = "zipf0.99"
		}
		for _, occ := range []float64{0.5, 0.75, 0.9} {
			ck, hp, cl := measure(skewed, occ)
			res.AddRow(dist, fmt.Sprintf("%.0f%%", occ*100),
				fmt.Sprintf("%.3f", ck), fmt.Sprintf("%.3f", hp), fmt.Sprintf("%.3f", cl))
		}
	}
	return res
}

// ---- Figure 10 ----------------------------------------------------------

// gets per-GET measurement: average client-side virtual cost, RDMA ops and
// bytes per GET.
type getProfile struct {
	costNS      float64
	opsPerGet   float64
	bytesPerGet float64
}

func profileGets(f *rdma.Fabric, n int, gen func() uint64, get func(qp *rdma.QP, key uint64) bool) getProfile {
	var clk vtime.Clock
	qp := f.NewQP(1, &clk)
	misses := 0
	for i := 0; i < n; i++ {
		if !get(qp, gen()) {
			misses++
		}
	}
	if misses > 0 {
		panic(fmt.Sprintf("bench: %d/%d GETs missed", misses, n))
	}
	return getProfile{
		costNS:      float64(clk.Now().Nanoseconds()) / float64(n),
		opsPerGet:   float64(qp.Stats.Reads.Load()) / float64(n),
		bytesPerGet: float64(qp.Stats.ReadBytes.Load()) / float64(n),
	}
}

// closedLoop computes saturated throughput and mean latency for C closed-
// loop clients given a per-GET profile and the NIC capacity model.
func closedLoop(m *vtime.Model, p getProfile, clients int) (tput float64, lat time.Duration) {
	clientBound := float64(clients) / (p.costNS / 1e9)
	opCap := m.NICOpCapPerSec / p.opsPerGet
	bwCap := m.NICBandwidthBps / p.bytesPerGet
	tput = clientBound
	if opCap < tput {
		tput = opCap
	}
	if bwCap < tput {
		tput = bwCap
	}
	lat = time.Duration(float64(clients) / tput * 1e9)
	return
}

// kvSystemsFor builds the five compared systems at a given value size.
func kvSystemsFor(o Options, valueBytes int, cacheBytes int) ([]kvSystem, []*rdma.Fabric) {
	s := kvScaleFor(o)
	vw := valueBytes / 8
	if vw < 1 {
		vw = 1
	}
	const occ = 0.75

	cuckoo, f1 := buildCuckoo(s.keys, occ, vw)
	if err := fillStore(s.keys, vw, cuckoo.Insert); err != nil {
		panic(err)
	}
	hopI, f2 := buildHopscotch(s.keys, occ, vw, true)
	if err := fillStore(s.keys, vw, hopI.Insert); err != nil {
		panic(err)
	}
	hopO, f3 := buildHopscotch(s.keys, occ, vw, false)
	if err := fillStore(s.keys, vw, hopO.Insert); err != nil {
		panic(err)
	}
	clus, f4 := buildCluster(s.keys, occ, vw)
	if err := fillStore(s.keys, vw, clus.Insert); err != nil {
		panic(err)
	}
	clusC, f5 := buildCluster(s.keys, occ, vw)
	if err := fillStore(s.keys, vw, clusC.Insert); err != nil {
		panic(err)
	}
	cache := kvs.NewLocationCache(cacheBytes)

	systems := []kvSystem{
		{name: "Pilaf", get: func(qp *rdma.QP, k uint64) bool {
			_, ok := cuckoo.GetRemote(qp, k)
			return ok
		}},
		{name: "FaRM-KV/I", get: func(qp *rdma.QP, k uint64) bool {
			_, ok := hopI.GetRemote(qp, k)
			return ok
		}},
		{name: "FaRM-KV/O", get: func(qp *rdma.QP, k uint64) bool {
			_, ok := hopO.GetRemote(qp, k)
			return ok
		}},
		{name: "DrTM-KV", get: func(qp *rdma.QP, k uint64) bool {
			_, ok := clus.GetRemote(qp, nil, k)
			return ok
		}},
		{name: "DrTM-KV/$", get: func(qp *rdma.QP, k uint64) bool {
			_, ok := clusC.GetRemote(qp, cache, k)
			return ok
		}},
	}
	return systems, []*rdma.Fabric{f1, f2, f3, f4, f5}
}

func runFig10a(o Options) *Result {
	res := &Result{
		ID:      "fig10a",
		Title:   "One-sided RDMA READ throughput vs payload (Figure 10(a))",
		Headers: []string{"payload", "per-op latency", "40-client tput"},
	}
	m := vtime.DefaultModel()
	res.Note("%s", m.String())
	for _, bytes := range []int{16, 64, 256, 1024, 4096, 8192} {
		p := getProfile{
			costNS:      float64(m.RDMARead(bytes).Nanoseconds()),
			opsPerGet:   1,
			bytesPerGet: float64(bytes),
		}
		tput, _ := closedLoop(&m, p, 40)
		res.AddRow(fmt.Sprintf("%dB", bytes),
			m.RDMARead(bytes).String(), fmtMops(tput))
	}
	return res
}

func runFig10b(o Options) *Result {
	s := kvScaleFor(o)
	res := &Result{
		ID:      "fig10b",
		Title:   "KV read throughput vs value size, uniform (Figure 10(b))",
		Headers: []string{"value", "Pilaf", "FaRM-KV/I", "FaRM-KV/O", "DrTM-KV", "DrTM-KV/$"},
	}
	m := vtime.DefaultModel()
	res.Note("keys=%d, 40 closed-loop clients, 75%% occupancy", s.keys)

	sizes := []int{16, 64, 128, 256, 512, 1024}
	if o.Quick {
		sizes = []int{16, 128, 1024}
	}
	for _, vb := range sizes {
		row := []string{fmt.Sprintf("%dB", vb)}
		systems, fabrics := kvSystemsFor(o, vb, 1<<22)
		for i, sys := range systems {
			r := rand.New(rand.NewSource(o.Seed + int64(vb) + int64(i)))
			gen := keyGen(r, s.keys, false)
			n := s.lookups / 6
			// Warm the cache-backed system with one extra pass.
			if sys.name == "DrTM-KV/$" {
				warmQP := fabrics[i].NewQP(1, nil)
				for j := 0; j < n; j++ {
					sys.get(warmQP, gen())
				}
			}
			p := profileGets(fabrics[i], n, gen, sys.get)
			tput, _ := closedLoop(&m, p, 40)
			row = append(row, fmtMops(tput))
		}
		res.AddRow(row...)
	}
	return res
}

func runFig10c(o Options) *Result {
	s := kvScaleFor(o)
	res := &Result{
		ID:      "fig10c",
		Title:   "Latency vs throughput, 64B values, uniform (Figure 10(c))",
		Headers: []string{"clients", "system", "tput", "mean latency"},
	}
	m := vtime.DefaultModel()
	systems, fabrics := kvSystemsFor(o, 64, 1<<22)
	profiles := make([]getProfile, len(systems))
	for i, sys := range systems {
		r := rand.New(rand.NewSource(o.Seed + int64(i)))
		gen := keyGen(r, s.keys, false)
		n := s.lookups / 6
		if sys.name == "DrTM-KV/$" {
			warmQP := fabrics[i].NewQP(1, nil)
			for j := 0; j < n; j++ {
				sys.get(warmQP, gen())
			}
		}
		profiles[i] = profileGets(fabrics[i], n, gen, sys.get)
	}
	for _, clients := range []int{1, 8, 16, 24, 32, 40} {
		for i, sys := range systems {
			tput, lat := closedLoop(&m, profiles[i], clients)
			res.AddRow(fmt.Sprintf("%d", clients), sys.name, fmtMops(tput), lat.String())
		}
	}
	return res
}

func runFig10d(o Options) *Result {
	s := kvScaleFor(o)
	res := &Result{
		ID:      "fig10d",
		Title:   "DrTM-KV/$ throughput vs cache size (Figure 10(d))",
		Headers: []string{"cache", "uniform/cold", "uniform/warm", "skewed/cold", "skewed/warm"},
	}
	m := vtime.DefaultModel()
	// Paper: 20M keys with 20..320MB caches; scale budgets with the key
	// count (320MB caches the full location set at paper scale).
	fullBytes := (s.keys / kvs.SlotsPerBucket) * kvs.BucketBytes * 4 / 3
	budgets := []int{fullBytes / 16, fullBytes / 8, fullBytes / 4, fullBytes / 2, fullBytes}
	res.Note("keys=%d; full-location cache ~ %dKB (paper: 320MB at 20M keys)", s.keys, fullBytes/1024)

	for _, budget := range budgets {
		row := []string{fmt.Sprintf("%dKB", budget/1024)}
		for _, skewed := range []bool{false, true} {
			for _, warm := range []bool{false, true} {
				clus, f := buildCluster(s.keys, 0.75, 8)
				if err := fillStore(s.keys, 8, clus.Insert); err != nil {
					panic(err)
				}
				cache := kvs.NewLocationCache(budget)
				r := rand.New(rand.NewSource(o.Seed))
				gen := keyGen(r, s.keys, skewed)
				n := s.lookups / 4
				if warm {
					warmQP := f.NewQP(1, nil)
					for j := 0; j < n; j++ {
						clus.GetRemote(warmQP, cache, gen())
					}
				}
				p := profileGets(f, n, gen, func(qp *rdma.QP, k uint64) bool {
					_, ok := clus.GetRemote(qp, cache, k)
					return ok
				})
				tput, _ := closedLoop(&m, p, 40)
				row = append(row, fmtMops(tput))
			}
		}
		// Reorder: we built uniform/cold, uniform/warm, skewed/cold, skewed/warm.
		res.AddRow(row...)
	}
	return res
}

func init() {
	Register(Experiment{ID: "table4", Title: "RDMA READs per lookup", Run: runTable4})
	Register(Experiment{ID: "fig10a", Title: "RDMA READ throughput vs payload", Run: runFig10a})
	Register(Experiment{ID: "fig10b", Title: "KV throughput vs value size", Run: runFig10b})
	Register(Experiment{ID: "fig10c", Title: "KV latency vs throughput", Run: runFig10c})
	Register(Experiment{ID: "fig10d", Title: "Cache size sweep", Run: runFig10d})
}
