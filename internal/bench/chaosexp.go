package bench

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drtm"
	"drtm/internal/smallbank"
)

// The chaos experiment is the end-to-end proof of the fault story: a
// SmallBank cluster runs with durability, fault injection and lease-based
// failure detection all enabled, while a killer goroutine repeatedly
// crashes nodes under live traffic. Detection, coordinator election,
// log replay and revival all happen through the production path (no test
// back-doors), and the final table reports the money-conservation check —
// committed transactions must survive every crash — next to the fault,
// detection and recovery counters from db.Stats().
func init() {
	Register(Experiment{
		ID:    "chaos",
		Title: "Chaos: SmallBank under crashes, lease detection + online recovery",
		Run:   runChaosExp,
	})
}

func runChaosExp(o Options) *Result {
	const (
		nodes   = 3
		workers = 2
	)
	cycles := 6
	if o.Quick {
		cycles = 3
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	cfg := smallbank.Config{
		Nodes:           nodes,
		AccountsPerNode: 120,
		HotAccounts:     8,
		HotProb:         0.25,
		DistProb:        0.3, // plenty of distributed transactions to strand mid-crash
		InitialBalance:  1000,
	}

	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		LeaseMicros: simLeaseMicros, ROLeaseMicros: simROLeaseMicros,
		Durability:        true,
		FailureDetection:  true,
		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    12 * time.Millisecond,
		ElectionStagger:   2 * time.Millisecond,
		FaultSeed:         seed,
	}, cfg.Partitioner())
	defer db.Close()

	w, err := smallbank.Setup(db.RT, cfg)
	if err != nil {
		panic(err)
	}
	initial := w.TotalBalance()

	// Transient-fault seasoning on top of the crashes: ~1% of verbs from
	// the crash victims into node 0 time out, exercising the bounded-retry
	// path even while every machine is up.
	db.InjectLinkFaults(1, 0, drtm.FaultRule{FailProb: 0.01})
	db.InjectLinkFaults(2, 0, drtm.FaultRule{FailProb: 0.01})

	base := db.Stats()

	var (
		stop          = make(chan struct{})
		outage        atomic.Bool
		commits       atomic.Int64
		outageCommits atomic.Int64
		downAborts    atomic.Int64
		wg            sync.WaitGroup
	)
	clients := make([]*smallbank.Client, 0, nodes*workers)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), seed+int64(n*workers+wk))
			clients = append(clients, cl)
			wg.Add(1)
			go func(n int, cl *smallbank.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						// Fail-stop: a crashed machine runs nothing until the
						// recovery coordinator revives it.
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if _, err := cl.RunOne(); err == nil {
						commits.Add(1)
						if outage.Load() {
							outageCommits.Add(1)
						}
					} else if errors.Is(err, drtm.ErrNodeDown) {
						downAborts.Add(1)
					}
				}
			}(n, cl)
		}
	}

	// The killer: crash nodes 1 and 2 alternately (node 0 stays up, so the
	// lowest-ID survivor always has a coordinator candidate) and wait for
	// the detection -> election -> recovery -> revival chain to bring the
	// victim back before the next round.
	recovered := 0
	for i := 0; i < cycles; i++ {
		time.Sleep(15 * time.Millisecond) // healthy traffic between crashes
		victim := 1 + i%2
		outage.Store(true)
		db.Crash(victim)
		deadline := time.Now().Add(10 * time.Second)
		for !db.C.Node(victim).Alive() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if db.C.Node(victim).Alive() {
			recovered++
		}
		outage.Store(false)
	}
	close(stop)
	wg.Wait()

	// Every parked release-side write must have drained before the audit.
	pending := 0
	for n := 0; n < nodes; n++ {
		pending += db.RT.PendingOps(n)
	}

	final := w.TotalBalance()
	var net int64
	for _, cl := range clients {
		net += cl.NetDeposits
	}
	want := int64(initial) + net

	st := db.Stats().Delta(base)

	res := &Result{
		ID:      "chaos",
		Title:   "Chaos: SmallBank under crashes, lease detection + online recovery",
		Headers: []string{"metric", "value"},
	}
	conservation := fmt.Sprintf("OK (%d = %d initial %+d net deposits)", final, initial, net)
	if int64(final) != want {
		conservation = fmt.Sprintf("VIOLATED: final %d, want %d (initial %d %+d net deposits)",
			final, want, initial, net)
	}
	res.AddRow("accounts", fmt.Sprintf("%d x2 sub-accounts on %d nodes", nodes*cfg.AccountsPerNode, nodes))
	res.AddRow("crash-cycles", fmt.Sprintf("%d (recovered: %d)", cycles, recovered))
	res.AddRow("commits", fmt.Sprintf("%d", commits.Load()))
	res.AddRow("commits-during-outage", fmt.Sprintf("%d", outageCommits.Load()))
	res.AddRow("node-down-aborts", fmt.Sprintf("%d", st.NodeDownAborts))
	res.AddRow("balance-conservation", conservation)
	res.AddRow("pending-after-drain", fmt.Sprintf("%d", pending))
	res.AddRow("detections", fmt.Sprintf("%d", st.Detections))
	res.AddRow("recoveries", fmt.Sprintf("%d", st.Recoveries))
	res.AddRow("recovery-time", fmt.Sprintf("%v", time.Duration(st.RecoveryNanos)))
	res.AddRow("recovery-redos", fmt.Sprintf("%d", st.RecoveryRedos))
	res.AddRow("recovery-unlocks", fmt.Sprintf("%d", st.RecoveryUnlocks))
	res.AddRow("verb-faults", fmt.Sprintf("%d", st.VerbFaults))
	res.AddRow("lock-retries", fmt.Sprintf("%d", st.LockRetries))
	res.AddRow("retry-backoff", fmt.Sprintf("%v", time.Duration(st.BackoffNanos)))

	res.Note("detector: 1ms heartbeats, 12ms failure timeout, 2ms election stagger; fault seed %d", seed)
	res.Note("1%% injected verb timeouts on links 1->0 and 2->0; nodes 1,2 crashed alternately under live traffic")
	res.Note("conservation audit runs after the last revival; recovery-time is wall-clock, other times modeled")
	return res
}
