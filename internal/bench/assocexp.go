package bench

import (
	"fmt"
	"math/rand"

	"drtm/internal/kvs"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

// runAblateAssoc implements the paper's named future work (Section 5.4):
// "How to improve the cache through heuristic structure (e.g.,
// associativity) and replacement mechanisms (e.g., LRU) will be our future
// work." It reruns the Figure 10(d) worst case — uniform workload with a
// cache far below the full location set — comparing the paper's
// direct-mapped cache against a 4-way LRU set-associative one.
func runAblateAssoc(o Options) *Result {
	s := kvScaleFor(o)
	res := &Result{
		ID:      "ablate-assoc",
		Title:   "Location-cache structure: direct-mapped vs 4-way LRU (Section 5.4 future work)",
		Headers: []string{"cache", "budget", "READs/GET", "hit rate", "40-client tput"},
	}
	m := vtime.DefaultModel()
	fullBytes := (s.keys / kvs.SlotsPerBucket) * kvs.BucketBytes * 4 / 3

	for _, frac := range []int{16, 4, 1} {
		budget := fullBytes / frac
		for _, assoc := range []bool{false, true} {
			clus, f := buildCluster(s.keys, 0.75, 8)
			if err := fillStore(s.keys, 8, clus.Insert); err != nil {
				panic(err)
			}
			var cache kvs.Cache
			name := "direct"
			if assoc {
				cache = kvs.NewAssocCache(budget, 4)
				name = "4-way LRU"
			} else {
				cache = kvs.NewLocationCache(budget)
			}
			r := rand.New(rand.NewSource(o.Seed))
			gen := keyGen(r, s.keys, false) // uniform: the worst case
			n := s.lookups / 4
			// Warm pass, then measured pass.
			warm := f.NewQP(1, nil)
			for i := 0; i < n; i++ {
				clus.GetRemote(warm, cache, gen())
			}
			p := profileGets(f, n, gen, func(qp *rdma.QP, k uint64) bool {
				_, ok := clus.GetRemote(qp, cache, k)
				return ok
			})
			hits, misses, _ := cache.Stats()
			tput, _ := closedLoop(&m, p, 40)
			res.AddRow(name, fmt.Sprintf("%dKB", budget/1024),
				fmt.Sprintf("%.3f", p.opsPerGet),
				fmt.Sprintf("%.2f", float64(hits)/float64(hits+misses)),
				fmtMops(tput))
		}
	}
	res.Note("uniform keys over %d entries; full location set ~%dKB", s.keys, fullBytes/1024)
	return res
}

func init() {
	Register(Experiment{ID: "ablate-assoc", Title: "Cache associativity ablation", Run: runAblateAssoc})
}
