package bench

import "testing"

func TestSmokeOCC(t *testing.T) {
	if testing.Short() {
		t.Skip("occ experiment is slow")
	}
	runSmoke(t, "occ")
}

// TestOCCAcceptance pins the two qualitative claims of the speculative read
// arm: at low contention the spec Start phase dodges the CAS tax (>=2.5x
// cheaper per record), and as the write ratio climbs the spec arm pays for
// its optimism with commit-time validation failures and retries — the
// crossover that makes lease locks the right call for write-hot workloads.
func TestOCCAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("occ acceptance is slow")
	}
	o := Options{Quick: true, Seed: 1}

	// Uncontended cost: the spec arm must cut the Start phase to <=0.4x of
	// the lease arm, i.e. >=2.5x cheaper per read-set record.
	const nrec = 8
	lease := measureOCCCost(o, 60, nrec, false)
	spec := measureOCCCost(o, 60, nrec, true)
	if lease.lockNS <= 0 || spec.lockNS <= 0 {
		t.Fatalf("missing lock-phase samples: lease=%v spec=%v", lease.lockNS, spec.lockNS)
	}
	if spec.lockNS > 0.4*lease.lockNS {
		t.Errorf("spec start phase %.0fns > 0.4x lease %.0fns", spec.lockNS, lease.lockNS)
	}
	if spec.specReads == 0 {
		t.Error("spec arm recorded no speculative reads")
	}
	if spec.specFailsPerTx != 0 {
		t.Errorf("uncontended spec run had %.3f validate-fails/txn, want 0", spec.specFailsPerTx)
	}

	// Crossover: under a skewed write-heavy mix the spec arm's validation
	// failures appear and its retry rate exceeds the read-only case.
	specRO := measureOCC(o, 60, 0.99, 0, true)
	specRW := measureOCC(o, 60, 0.99, 75, true)
	if specRO.specFailsPerTx != 0 {
		t.Errorf("read-only sweep had %.3f validate-fails/txn, want 0", specRO.specFailsPerTx)
	}
	if specRW.specFailsPerTx <= specRO.specFailsPerTx {
		t.Errorf("validate-fail rate did not rise with write ratio: w=0 %.3f, w=75 %.3f",
			specRO.specFailsPerTx, specRW.specFailsPerTx)
	}
	if specRW.retriesPerTx <= specRO.retriesPerTx {
		t.Errorf("retry rate did not rise with write ratio: w=0 %.3f, w=75 %.3f",
			specRO.retriesPerTx, specRW.retriesPerTx)
	}
}
