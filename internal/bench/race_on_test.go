//go:build race

package bench

// raceEnabled reports whether this binary was built with the race detector.
// Wall-clock timing gates are skipped under it: the instrumentation slows
// synchronization-heavy paths by an order of magnitude more than plain
// memory scans, which inverts microsecond-scale comparisons.
const raceEnabled = true
