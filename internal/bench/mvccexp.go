package bench

import (
	"fmt"

	"drtm/internal/obs"
	"drtm/internal/tx"
)

// The `mvcc` experiment prices the read-only scan's third arm — PolicyMVCC
// snapshot reads over the per-entry version chains — against the PR-8
// confirm-wave scan, across a fanout × write-pressure sweep:
//
//	ro-scan — one shipped range collection, confirmed by segment-stamp and
//	          row-header re-reads at commit. A writer touching the range
//	          between collection and confirm throws the whole attempt away.
//	mvcc    — one snapshot-stamped range collection resolved against the
//	          version chains on the host; no confirm wave, and a concurrent
//	          writer costs nothing (its commit stamp exceeds the snapshot,
//	          so resolution returns the pre-write version).
//	adaptive— PolicyAdaptive's footprint router: scans at or above the
//	          MVCCScanFanout threshold take the snapshot arm, narrower ones
//	          keep the confirm wave until the range's heat slot (fed by
//	          scan validation failures) lowers the threshold.
//
// Write pressure is staged deterministically: in write-heavy cells every RO
// gets one conflicting overwrite committed inside its scanned range between
// collection and confirm (first attempt only), so the confirm-wave arm pays
// a full retry per transaction while the snapshot arm resolves past the
// write. TestMVCCAcceptance (wired into `make mvcc` / `make check`) pins the
// snapshot arm's >= 1.5x win at fanout >= 32 under writes and requires
// adaptive within 5% of the best static arm in every cell.
func runMVCC(o Options) *Result {
	res := &Result{
		ID:    "mvcc",
		Title: "Snapshot (MVCC) RO scans vs confirm-wave scans over version chains",
		Headers: []string{"fanout", "writes", "arm", "us/txn", "us/row",
			"retries/txn", "mvcc-reads", "fallbacks", "vs ro-scan"},
	}
	txns := 300
	if o.Quick {
		txns = 80
	}
	for _, cell := range mvccSweep {
		var base float64
		for _, arm := range mvccArms {
			m := measureMVCCScan(txns, cell.fanout, cell.writes, arm.policy)
			ratio := "1.00x"
			if arm.policy == tx.PolicySpeculative {
				base = m.usPerTxn
			} else if m.usPerTxn > 0 {
				ratio = fmt.Sprintf("%.2fx", base/m.usPerTxn)
			}
			wlabel := "none"
			if cell.writes {
				wlabel = "heavy"
			}
			res.AddRow(fmt.Sprintf("%d", cell.fanout), wlabel, arm.name,
				fmt.Sprintf("%.1f", m.usPerTxn),
				fmt.Sprintf("%.2f", m.usPerTxn/float64(cell.fanout)),
				fmt.Sprintf("%.3f", m.retriesPerTx),
				fmt.Sprintf("%d", m.mvccReads),
				fmt.Sprintf("%d", m.fallbacks), ratio)
		}
	}
	res.Note("Each RO scans one remote entity's full row range (limit = fanout).")
	res.Note("writes=heavy: one overwrite commits inside the scanned range between")
	res.Note("collection and confirm — the confirm wave fails, the snapshot resolves past it.")
	res.Note("adaptive: fanout >= %d routes the snapshot arm up front; below it, scan",
		tx.DefaultPolicyConfig().MVCCScanFanout)
	res.Note("validation failures heat the range until the threshold drops to %d.",
		tx.DefaultPolicyConfig().MVCCHotFanout)
	return res
}

// The sweep covers the cells the footprint router is designed to win: wide
// scans (fanout >= MVCCScanFanout) route the snapshot arm up front, and
// narrow contended scans converge to it once validation failures heat the
// range. A narrow *conflict-free* scan keeps the confirm wave by design —
// without conflicts there is no heat signal — so that cell is priced by the
// static arms' rows at fanout 32 rather than swept separately.
var mvccSweep = []struct {
	fanout int
	writes bool
}{
	{8, true},
	{32, false},
	{32, true},
	{64, true},
}

// mvccEntities bounds the entity cycle so the adaptive arm's per-range heat
// warmup (one confirm-wave failure per range before its slot flips hot)
// amortizes across revisits instead of being paid on nearly every txn.
const mvccEntities = 4

var mvccArms = []struct {
	name   string
	policy tx.ReadPolicy
}{
	{"ro-scan", tx.PolicySpeculative},
	{"mvcc", tx.PolicyMVCC},
	{"adaptive", tx.PolicyAdaptive},
}

type mvccMetrics struct {
	usPerTxn     float64
	retriesPerTx float64
	mvccReads    int64
	fallbacks    int64
	truncs       int64
	inconsist    int64
}

// measureMVCCScan runs txns RO scans from node 0 over node-1 entities under
// one read policy. With writes, a second worker commits one overwrite to a
// scanned row from inside the RO body (first attempt only): deterministic
// write pressure — the confirm-wave arm retries every transaction exactly
// once, the snapshot arm never does.
func measureMVCCScan(txns, fanout int, writes bool, p tx.ReadPolicy) mvccMetrics {
	rt, stop := buildScanRig(2, 2, fanout)
	defer stop()
	rt.ReadPolicy = p
	resetClocks(rt)
	e := rt.Executor(0, 0)
	writer := rt.Executor(1, 1)
	before := rt.C.Obs.Snapshot()
	v0 := rt.C.Worker(0, 0).VClock.Now()

	for t := 0; t < txns; t++ {
		entity := uint64(1 + 2*(t%mvccEntities)) // odd entities live on node 1
		lo := entity << scanSegShift
		wrote := false
		err := e.ExecRO(func(ro *tx.RO) error {
			rows, err := ro.Scan(scanTable, lo, lo|(1<<scanSegShift-1), fanout)
			if err != nil {
				return err
			}
			if len(rows) != fanout {
				return fmt.Errorf("bench: scan saw %d rows, want %d", len(rows), fanout)
			}
			if writes && !wrote {
				wrote = true
				// Cycle the written row across the whole range so one row's
				// depth-limited chain spans far more real time than the
				// snapshot stamp's staleness bound — otherwise a fast rig
				// (txns every few µs) can legitimately truncate past a hot
				// row's retained history and fall back.
				key := lo | uint64((t/mvccEntities)%fanout)
				werr := writer.Exec(func(t1 *tx.Tx) error {
					if err := t1.W(scanTable, key); err != nil {
						return err
					}
					return t1.Execute(func(lc *tx.Local) error {
						v, err := lc.Read(scanTable, key)
						if err != nil {
							return err
						}
						return lc.Write(scanTable, key, []uint64{v[0], v[1] + 1})
					})
				})
				if werr != nil {
					return fmt.Errorf("bench: staged overwrite: %w", werr)
				}
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
	}

	sn := rt.C.Obs.Snapshot().Delta(before)
	m := mvccMetrics{
		usPerTxn:  float64(rt.C.Worker(0, 0).VClock.Now()-v0) / 1e3 / float64(txns),
		mvccReads: sn.Counters[obs.EvMVCCRead],
		fallbacks: sn.Counters[obs.EvMVCCFallback],
		truncs:    sn.Counters[obs.EvMVCCTrunc],
		inconsist: sn.Counters[obs.EvMVCCInconsist],
	}
	if commits := sn.Counters[obs.EvROCommit]; commits > 0 {
		m.retriesPerTx = float64(sn.Counters[obs.EvRORetry]) / float64(commits)
	}
	return m
}

func init() {
	Register(Experiment{ID: "mvcc", Title: "Snapshot RO scans over version chains", Run: runMVCC})
}
