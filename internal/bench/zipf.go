package bench

import (
	"math"
	"math/rand"
)

// Zipf generates YCSB-style zipfian-distributed keys with exponent theta in
// (0, 1), which math/rand's Zipf (s > 1) cannot express. The paper's skewed
// KV workloads use YCSB's theta = 0.99 (Section 5.4). This is the classic
// Gray et al. "Quickly generating billion-record synthetic databases"
// algorithm, as used by YCSB itself.
type Zipf struct {
	r     *rand.Rand
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	z2    float64
}

// NewZipf builds a generator over [0, n) with the given theta.
func NewZipf(r *rand.Rand, n uint64, theta float64) *Zipf {
	z := &Zipf{r: r, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.z2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.z2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next returns a zipfian sample in [0, n); rank 0 is the hottest key.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scrambled returns a sample whose rank ordering is hashed across the key
// space (YCSB's "scrambled zipfian"), so hot keys are spread uniformly.
func (z *Zipf) Scrambled() uint64 {
	return fnv64(z.Next()) % z.n
}

func fnv64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= 1099511628211
		x >>= 8
	}
	return h
}
