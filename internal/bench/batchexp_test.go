package bench

import (
	"testing"

	"drtm/internal/vtime"
)

func TestSmokeBatch(t *testing.T) { runSmoke(t, "batch") }

// The issue's acceptance bar: with batching on, the remote lock/read phase
// of an 8-record transaction must cost under 0.6x of 8 serial round trips,
// while window=1 must stay close to the serial round-trip count.
func TestBatchAcceptance(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	const n = 8
	const txns = 60

	serial, _ := measureBatch(o, txns, n, 1)
	batched, batches := measureBatch(o, txns, n, 16)

	if serial <= 0 || batched <= 0 {
		t.Fatalf("no lock-phase observations: serial=%v batched=%v", serial, batched)
	}
	if ratio := batched / serial; ratio >= 0.6 {
		t.Fatalf("batched lock phase = %.2fx of serial, want < 0.6x (serial=%.0fns batched=%.0fns)",
			ratio, serial, batched)
	}

	// window=1 should cost about n round trips: lookup READ + lease CAS +
	// prefetch READ per record, plus per-WR doorbell and occasional chain
	// hops (hence the loose upper bound).
	m := vtime.DefaultModel()
	perRecord := float64(2*m.RDMAReadBaseNS + m.RDMACASNS)
	if est := float64(n) * perRecord; serial < 0.9*est || serial > 1.5*est {
		t.Fatalf("window=1 lock phase %.0fns outside [0.9, 1.5]x of %d serial round trips (%.0fns)",
			serial, n, est)
	}

	// Batching should collapse the per-record verbs into a few waves per
	// transaction, not one poll per verb.
	if batches >= float64(3*n)/2 {
		t.Fatalf("batched run polled %.1f batches/txn, want far fewer than the %d verbs staged", batches, 3*n)
	}
}
