package bench

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"drtm/internal/obs"
	"drtm/internal/tx"
	"drtm/internal/vtime"
)

// The `occ` experiment compares DrTM's two read-set protocols head to head,
// reproducing the central trade of Wang et al.'s RDMA concurrency-control
// framework (PAPERS.md):
//
//	lease — every remote read takes a shared lock with an RDMA CAS
//	        (~14.5µs modeled) before fetching the value.
//	spec  — Runtime.SpeculativeReads: one versioned READ per record
//	        (~1.5µs), re-validated at commit time by a doorbell-batched
//	        header re-READ wave; any version bump retries the transaction.
//
// Part one is uncontended: one worker staging an all-remote read set, where
// the arms differ only by the CAS tax. Part two sweeps write ratio × Zipf
// skew with concurrent workers on both nodes, exposing the crossover: the
// spec arm's Start phase stays cheap, but its validation aborts climb with
// write contention until retries eat the saving — the lease arm pays up
// front and keeps its abort rate flat.
func runOCC(o Options) *Result {
	res := &Result{
		ID:    "occ",
		Title: "Speculative (OCC) reads vs lease locks: cost and crossover",
		Headers: []string{"theta", "write%", "arm", "start/txn", "per-rec",
			"retries/txn", "spec-fails/txn", "vs lease"},
	}
	txns := 300
	if o.Quick {
		txns = 80
	}
	model := vtime.DefaultModel()

	// ---- uncontended Start-phase cost (write ratio 0, no skew) ------------
	const nrec = 8
	var leaseCost float64
	for _, spec := range []bool{false, true} {
		m := measureOCCCost(o, txns, nrec, spec)
		ratio := "1.00x"
		if !spec {
			leaseCost = m.lockNS
		} else {
			ratio = fmt.Sprintf("%.2fx", m.lockNS/leaseCost)
		}
		res.AddRow("-", "0", armName(spec),
			fmt.Sprintf("%.1fus", m.lockNS/1e3),
			fmt.Sprintf("%.2fus", m.lockNS/float64(nrec)/1e3),
			fmt.Sprintf("%.3f", m.retriesPerTx),
			fmt.Sprintf("%.3f", m.specFailsPerTx), ratio)
	}

	// ---- contention sweep: write ratio x skew, concurrent workers ---------
	for _, theta := range []float64{0.20, 0.99} {
		for _, writePct := range []int{0, 25, 75} {
			var leaseStart float64
			for _, spec := range []bool{false, true} {
				m := measureOCC(o, txns, theta, writePct, spec)
				ratio := "1.00x"
				if !spec {
					leaseStart = m.lockNS
				} else if leaseStart > 0 {
					ratio = fmt.Sprintf("%.2fx", m.lockNS/leaseStart)
				}
				res.AddRow(fmt.Sprintf("%.2f", theta), fmt.Sprintf("%d", writePct),
					armName(spec),
					fmt.Sprintf("%.1fus", m.lockNS/1e3),
					"-",
					fmt.Sprintf("%.3f", m.retriesPerTx),
					fmt.Sprintf("%.3f", m.specFailsPerTx), ratio)
			}
		}
	}
	res.Note("lease arm: lookup READ + %dns CAS + prefetch READ per read record;", model.RDMACASNS)
	res.Note("spec arm: lookup READ + one %dns versioned READ, validated at commit by a", model.RDMAReadBaseNS)
	res.Note("batched header re-READ wave — version bumps and live locks retry the txn.")
	res.Note("The crossover: spec start cost stays flat while retries climb with write%%.")
	return res
}

func armName(spec bool) string {
	if spec {
		return "spec"
	}
	return "lease"
}

// occMetrics summarizes one measured configuration.
type occMetrics struct {
	lockNS         float64 // PhaseLockRemote mean per Start phase
	commits        int64
	retriesPerTx   float64 // whole-txn retries per commit
	specFailsPerTx float64 // commit-time validation failures per commit
	specReads      int64
}

// measureOCCCost is the uncontended arm comparison: one worker, an
// all-remote read set of n fresh records per transaction, location cache
// off so both arms pay the same lookup READs.
func measureOCCCost(o Options, txns, n int, spec bool) occMetrics {
	const perNode = 8192
	rt, stop := buildMicro(2, 1, perNode, nil, func(rt *tx.Runtime) {
		rt.ReadPolicy = tx.PolicyLease
		if spec {
			rt.ReadPolicy = tx.PolicySpeculative
		}
		rt.CacheBudgetBytes = 0
	})
	defer stop()
	resetClocks(rt)
	e := rt.Executor(0, 0)
	before := rt.C.Obs.Snapshot()

	next := uint64(perNode) // keys perNode+1..2*perNode are homed on node 1
	accs := make([]tx.Access, n)
	for t := 0; t < txns; t++ {
		for j := range accs {
			next = next%uint64(2*perNode) + 1
			if next <= perNode {
				next = perNode + 1
			}
			accs[j] = tx.Access{Table: benchTable, Key: next}
		}
		err := e.Exec(func(t1 *tx.Tx) error {
			if err := t1.Stage(accs...); err != nil {
				return err
			}
			return t1.Execute(func(lc *tx.Local) error {
				for _, a := range accs {
					if _, err := lc.Read(benchTable, a.Key); err != nil {
						return err
					}
				}
				return nil
			})
		})
		if err != nil {
			panic(err)
		}
	}
	return occSnapshot(rt, before)
}

// measureOCC is the contended sweep: two workers per node, every access
// targeting the peer node, keys zipfian with the given theta, each access a
// write with probability writePct/100. Hot keys collide across workers, so
// the spec arm's validation failures (and both arms' lock conflicts) grow
// with contention.
func measureOCC(o Options, txns int, theta float64, writePct int, spec bool) occMetrics {
	const (
		perNode = 4096
		nrec    = 4
		nodes   = 2
		workers = 2
	)
	rt, stop := buildMicro(nodes, workers, perNode, nil, func(rt *tx.Runtime) {
		rt.ReadPolicy = tx.PolicyLease
		if spec {
			rt.ReadPolicy = tx.PolicySpeculative
		}
		rt.CacheBudgetBytes = 0
	})
	defer stop()
	resetClocks(rt)
	before := rt.C.Obs.Snapshot()

	var wg sync.WaitGroup
	for node := 0; node < nodes; node++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(node, w int) {
				defer wg.Done()
				e := rt.Executor(node, w)
				rng := rand.New(rand.NewSource(o.Seed + int64(node*workers+w)*7919))
				z := NewZipf(rng, perNode, theta)
				peerBase := uint64((1 - node) * perNode)
				accs := make([]tx.Access, nrec)
				for t := 0; t < txns; t++ {
					for j := range accs {
						accs[j] = tx.Access{
							Table: benchTable,
							Key:   peerBase + 1 + z.Scrambled(),
							Write: rng.Intn(100) < writePct,
						}
					}
					err := e.Exec(func(t1 *tx.Tx) error {
						if err := t1.Stage(accs...); err != nil {
							return err
						}
						return t1.Execute(func(lc *tx.Local) error {
							for _, a := range accs {
								v, err := lc.Read(benchTable, a.Key)
								if err != nil {
									return err
								}
								if a.Write {
									if err := lc.Write(benchTable, a.Key,
										[]uint64{v[0] + 1, v[1]}); err != nil {
										return err
									}
								}
							}
							return nil
						})
					})
					// Retry-budget exhaustion under extreme contention is a
					// data point, not a harness failure.
					if err != nil && !errors.Is(err, tx.ErrRetry) {
						panic(err)
					}
				}
			}(node, w)
		}
	}
	wg.Wait()
	return occSnapshot(rt, before)
}

func occSnapshot(rt *tx.Runtime, before obs.Snapshot) occMetrics {
	sn := rt.C.Obs.Snapshot().Delta(before)
	m := occMetrics{
		commits:   sn.Counters[obs.EvTxCommit],
		specReads: sn.Counters[obs.EvSpecRead],
	}
	lock := sn.Phases[obs.PhaseLockRemote]
	if lock.Count > 0 {
		m.lockNS = float64(lock.Sum) / float64(lock.Count)
	}
	if m.commits > 0 {
		m.retriesPerTx = float64(sn.Counters[obs.EvTxRetry]) / float64(m.commits)
		m.specFailsPerTx = float64(sn.Counters[obs.EvSpecValidateFail]) / float64(m.commits)
	}
	return m
}

func init() {
	Register(Experiment{ID: "occ", Title: "Speculative reads vs lease locks", Run: runOCC})
}
