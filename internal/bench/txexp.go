package bench

import (
	"errors"
	"fmt"
	"sync"

	"drtm/internal/cluster"
	"drtm/internal/smallbank"
	"drtm/internal/tpcc"
	"drtm/internal/tx"
	"drtm/internal/vtime"
)

// numaPenalty models Section 6.4: the B+ tree (and allocator locality) stop
// scaling past one socket (8-10 cores); workers beyond 8 on one machine pay
// growing cross-socket costs. DrTM(S) avoids it by running one logical node
// per socket.
func numaPenalty(workersPerNode int) float64 {
	if workersPerNode <= 8 {
		return 1
	}
	return 1 + 0.45*float64(workersPerNode-8)
}

func applyNUMA(m *vtime.Model, workersPerNode int) {
	f := numaPenalty(workersPerNode)
	m.BTreeOpNS = int64(float64(m.BTreeOpNS) * f)
	m.HashProbeNS = int64(float64(m.HashProbeNS) * f)
	m.HTMPerReadNS = int64(float64(m.HTMPerReadNS) * f)
	m.HTMPerWriteNS = int64(float64(m.HTMPerWriteNS) * f)
}

// ---- Figure 12: TPC-C throughput vs machines, DrTM vs Calvin ------------

func runFig12(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "fig12",
		Title:   "TPC-C throughput vs machines (Figure 12)",
		Headers: []string{"machines", "DrTM new-order/s", "DrTM standard-mix/s", "Calvin mix/s", "DrTM/Calvin"},
	}
	machines := []int{1, 2, 3, 4, 5, 6}
	if o.Quick {
		machines = []int{1, 2}
	}
	const workers = 8
	for _, n := range machines {
		dep := buildTPCC(o, n, workers, workers, nil, nil)
		no, total := dep.runMix(o, s.txnsPerWorker)
		noTput := throughput(no, dep.rt.C.Workers())
		mixTput := throughput(total, dep.rt.C.Workers())
		dep.stop()

		ct := buildCalvinTPCC(o, n, workers, workers)
		_, ctotal := ct.runMix(o, s.txnsPerWorker/4)
		cTput := throughput(ctotal, ct.c.Workers(), ct.lockMgrTimes()...)
		ct.stop()

		speedup := mixTput / cTput
		res.AddRow(fmt.Sprintf("%d", n), fmtK(noTput), fmtK(mixTput), fmtK(cTput),
			fmt.Sprintf("%.1fx", speedup))
	}
	res.Note("each machine: %d workers, 1 warehouse per worker (paper setup)", workers)
	res.Note("paper: 1.65M new-order, 3.67M mix on 6 machines; >= 17.9x over Calvin")
	return res
}

// ---- Figure 13: TPC-C throughput vs threads ------------------------------

func runFig13(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "fig13",
		Title:   "TPC-C throughput vs threads on 6 machines (Figure 13)",
		Headers: []string{"threads", "DrTM new-order/s", "DrTM mix/s", "DrTM(S) mix/s"},
	}
	threads := []int{1, 2, 4, 8, 10, 12, 16}
	machines := 6
	if o.Quick {
		threads = []int{1, 4, 10}
		machines = 2
	}
	for _, th := range threads {
		// DrTM: one logical node per machine; NUMA penalty beyond 8 threads.
		dep := buildTPCC(o, machines, th, th, nil, func(c *cluster.Config) {
			applyNUMA(&c.Model, th)
		})
		no, total := dep.runMix(o, s.txnsPerWorker)
		noT := throughput(no, dep.rt.C.Workers())
		mixT := throughput(total, dep.rt.C.Workers())
		dep.stop()

		// DrTM(S): two logical nodes per machine (one per socket), threads
		// split between them; no cross-socket penalty.
		sCell := "-"
		if th >= 2 && th%2 == 0 {
			dep2 := buildTPCC(o, machines*2, th/2, th/2, nil, nil)
			_, total2 := dep2.runMix(o, s.txnsPerWorker)
			sCell = fmtK(throughput(total2, dep2.rt.C.Workers()))
			dep2.stop()
		}
		res.AddRow(fmt.Sprintf("%d", th), fmtK(noT), fmtK(mixT), sCell)
	}
	res.Note("NUMA model: per-op local costs x%.2f at 16 threads (Section 6.4)", numaPenalty(16))
	res.Note("paper: DrTM peaks at 8 threads (5.56x); DrTM(S) reaches 8.29x at 16")
	return res
}

// ---- Figure 14: logical-node scale-out -----------------------------------

func runFig14(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "fig14",
		Title:   "TPC-C throughput vs logical nodes, 4 workers each (Figure 14)",
		Headers: []string{"nodes", "new-order/s", "standard-mix/s"},
	}
	nodes := []int{2, 4, 8, 12, 16, 20, 24}
	if o.Quick {
		nodes = []int{2, 4, 6}
	}
	for _, n := range nodes {
		dep := buildTPCC(o, n, 4, 4, nil, nil)
		no, total := dep.runMix(o, s.txnsPerWorker)
		res.AddRow(fmt.Sprintf("%d", n),
			fmtK(throughput(no, dep.rt.C.Workers())),
			fmtK(throughput(total, dep.rt.C.Workers())))
		dep.stop()
	}
	res.Note("paper: scales to 24 nodes, 2.42M new-order / 5.38M mix")
	return res
}

// ---- Figure 15: SmallBank -------------------------------------------------

func runFig15(o Options) *Result {
	res := &Result{
		ID:      "fig15",
		Title:   "SmallBank throughput vs machines and distributed fraction (Figure 15)",
		Headers: []string{"machines", "workers", "dist%", "txns/s"},
	}
	txns := 4000
	accounts := 20_000
	machines := []int{1, 2, 4, 6}
	workerCounts := []int{8}
	if o.Quick {
		txns = 400
		accounts = 2_000
		machines = []int{1, 2}
	}
	run := func(n, workers int, distPct float64) float64 {
		ccfg := simClusterConfig(n, workers)
		c := cluster.New(ccfg)
		c.Start()
		defer c.Stop()
		cfg := smallbank.DefaultConfig(n)
		cfg.AccountsPerNode = accounts
		cfg.HotAccounts = accounts / 100
		cfg.DistProb = distPct / 100
		rt := tx.NewRuntime(c, cfg.Partitioner())
		w, err := smallbank.Setup(rt, cfg)
		if err != nil {
			panic(err)
		}
		resetClocks(rt)
		var committed int64
		var mu sync.Mutex
		ws := rt.C.Workers()
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			cl := w.NewClient(rt.Executor(wk.Node.ID, wk.ID), o.Seed+int64(i))
			for t := 0; t < txns; t++ {
				if _, err := cl.RunOne(); err != nil && !errors.Is(err, tx.ErrRetry) {
					panic(err)
				}
			}
			mu.Lock()
			committed += int64(txns)
			mu.Unlock()
		})
		return throughput(committed, ws)
	}
	for _, dist := range []float64{1, 5, 10} {
		for _, n := range machines {
			for _, wk := range workerCounts {
				res.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", wk),
					fmt.Sprintf("%.0f", dist), fmtK(run(n, wk, dist)))
			}
		}
	}
	// Thread scaling at 6 machines, 1% distributed.
	if !o.Quick {
		for _, wk := range []int{1, 2, 4, 8, 16} {
			n := 6
			model := run(n, wk, 1)
			res.AddRow(fmt.Sprintf("%d*", n), fmt.Sprintf("%d", wk), "1", fmtK(model))
		}
		res.Note("rows marked * are the thread-scaling series at 6 machines")
	}
	res.Note("paper: 138M txns/s at 6 machines, 1%% distributed")
	return res
}

// ---- Figure 16: cross-warehouse sweep ------------------------------------

func runFig16(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "fig16",
		Title:   "New-order throughput vs cross-warehouse probability (Figure 16)",
		Headers: []string{"cross-warehouse%", "new-order/s", "slowdown"},
	}
	pcts := []int{1, 5, 10, 25, 50, 75, 100}
	machines := 6
	if o.Quick {
		pcts = []int{1, 10, 100}
		machines = 2
	}
	var base float64
	for _, pct := range pcts {
		dep := buildTPCC(o, machines, 8, 8, func(c *tpcc.Config) {
			c.CrossNewOrderPct = pct
		}, nil)
		// New-order-only load isolates the knob, as in the paper's text.
		resetClocks(dep.rt)
		var committed int64
		var mu sync.Mutex
		ws := dep.rt.C.Workers()
		runWorkers(len(ws), func(i int) {
			wk := ws[i]
			e := dep.rt.Executor(wk.Node.ID, wk.ID)
			home := wk.Node.ID*dep.cfg.WarehousesPerNode + (wk.ID % dep.cfg.WarehousesPerNode) + 1
			cl := dep.w.NewClient(e, home, o.Seed+int64(i))
			n := 0
			for t := 0; t < s.txnsPerWorker; t++ {
				err := cl.RunNewOrder(false)
				switch {
				case err == nil:
					n++
				case err == tx.ErrUserAbort || errors.Is(err, tx.ErrRetry):
					// intentional rollback / contention exhaustion
				default:
					panic(err)
				}
			}
			mu.Lock()
			committed += int64(n)
			mu.Unlock()
		})
		tput := throughput(committed, ws)
		dep.stop()
		if base == 0 {
			base = tput
		}
		res.AddRow(fmt.Sprintf("%d", pct), fmtK(tput),
			fmt.Sprintf("%.0f%%", (1-tput/base)*100))
	}
	res.Note("paper: 100%% cross-warehouse => ~85%% slowdown; 5%% => ~15%%")
	return res
}

// ---- Table 6: durability --------------------------------------------------

func runTable6(o Options) *Result {
	s := tpccScaleFor(o)
	res := &Result{
		ID:      "table6",
		Title:   "Durability impact on TPC-C (Table 6)",
		Headers: []string{"config", "new-order/s", "capacity-abort%", "fallback%", "p50", "p90", "p99"},
	}
	machines := 6
	if o.Quick {
		machines = 2
	}
	for _, durable := range []bool{false, true} {
		dep := buildTPCC(o, machines, 8, 8, nil, func(c *cluster.Config) {
			c.Durability = durable
			c.LogWords = 1 << 22
		})
		no, total := dep.runMix(o, s.txnsPerWorker)
		ws := dep.rt.C.Workers()
		noT := throughput(no, ws)
		hist := vtime.NewHistogram()
		for _, w := range ws {
			hist.Merge(w.Hist)
		}
		stats := &dep.rt.Stats
		capPct := float64(stats.CapacityAborts.Load()) / float64(total) * 100
		fbPct := float64(stats.Fallbacks.Load()) / float64(total) * 100
		name := "logging off"
		if durable {
			name = "logging on"
		}
		res.AddRow(name, fmtK(noT),
			fmt.Sprintf("%.2f", capPct), fmt.Sprintf("%.2f", fbPct),
			hist.Percentile(50).String(), hist.Percentile(90).String(),
			hist.Percentile(99).String())
		dep.stop()
	}
	res.Note("paper: logging costs ~11.6%% new-order throughput; latency +<10us at p50/90/99")
	return res
}

func init() {
	Register(Experiment{ID: "fig12", Title: "TPC-C vs machines (DrTM vs Calvin)", Run: runFig12})
	Register(Experiment{ID: "fig13", Title: "TPC-C vs threads", Run: runFig13})
	Register(Experiment{ID: "fig14", Title: "TPC-C logical-node scale-out", Run: runFig14})
	Register(Experiment{ID: "fig15", Title: "SmallBank sweep", Run: runFig15})
	Register(Experiment{ID: "fig16", Title: "Cross-warehouse sweep", Run: runFig16})
	Register(Experiment{ID: "table6", Title: "Durability impact", Run: runTable6})
}
