// Package bench contains the experiment harness that regenerates every
// table and figure of the paper's evaluation (Section 5.4 and Section 7),
// plus the ablations called out in DESIGN.md. Each experiment is a named
// entry in the Registry producing a Result (the same rows/series the paper
// reports); cmd/drtm-bench runs them and EXPERIMENTS.md records the
// paper-vs-measured comparison.
//
// Methodology: workloads run for real (goroutine workers, genuine
// conflicts, aborts, retries and recovery), while *reported* throughput and
// latency come from the calibrated virtual-time cost model — see
// internal/vtime and DESIGN.md. Throughput = committed work / max worker
// virtual time; for Calvin the serial lock-manager time also bounds it.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"drtm/internal/cluster"
	"drtm/internal/tx"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks populations and iteration counts for smoke tests.
	Quick bool
	// Seed randomizes workloads deterministically.
	Seed int64
}

// Result is a regenerated table or figure.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-form note (cost-model constants, caveats).
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	render := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			width := 0
			if i < len(widths) {
				width = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", width, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	render(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	render(sep)
	for _, row := range r.Rows {
		render(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment regenerates one table/figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) *Result
}

var (
	regMu    sync.Mutex
	registry []Experiment
)

// Register adds an experiment (called from init functions).
func Register(e Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	registry = append(registry, e)
}

// Experiments lists registered experiments sorted by ID.
func Experiments() []Experiment {
	regMu.Lock()
	defer regMu.Unlock()
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared measurement helpers ----------------------------------------

// simLease is the lease configuration used by all experiments: scaled up
// from the paper's 0.4/1.0 ms because the correctness machinery runs on
// real time on an oversubscribed simulation host (see DESIGN.md).
const (
	simLeaseMicros   = 5_000
	simROLeaseMicros = 10_000
)

// simClusterConfig builds the standard experiment cluster config.
func simClusterConfig(nodes, workers int) cluster.Config {
	cfg := cluster.DefaultConfig(nodes, workers)
	cfg.LeaseMicros = simLeaseMicros
	cfg.ROLeaseMicros = simROLeaseMicros
	return cfg
}

// throughput computes committed/sec from per-worker virtual clocks:
// aggregate committed work divided by the longest virtual timeline.
func throughput(committed int64, workers []*cluster.Worker, extra ...time.Duration) float64 {
	var maxT time.Duration
	for _, w := range workers {
		if t := w.VClock.Now(); t > maxT {
			maxT = t
		}
	}
	for _, t := range extra {
		if t > maxT {
			maxT = t
		}
	}
	if maxT == 0 {
		return 0
	}
	return float64(committed) / maxT.Seconds()
}

// runWorkers drives fn concurrently on every given worker; fn receives the
// worker index and must run its share of transactions.
func runWorkers(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// resetClocks zeroes worker clocks and histograms after population noise.
func resetClocks(rt *tx.Runtime) {
	for _, w := range rt.C.Workers() {
		w.VClock.Reset()
	}
	rt.Stats.Reset()
}

// fmtMops renders ops/sec in millions.
func fmtMops(v float64) string { return fmt.Sprintf("%.2fM", v/1e6) }

// fmtK renders ops/sec in thousands.
func fmtK(v float64) string { return fmt.Sprintf("%.1fk", v/1e3) }
