package bench

import (
	"math/rand"
	"testing"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1000, 0.99)
	for i := 0; i < 10_000; i++ {
		if v := z.Next(); v >= 1000 {
			t.Fatalf("sample %d out of range", v)
		}
		if v := z.Scrambled(); v >= 1000 {
			t.Fatalf("scrambled sample %d out of range", v)
		}
	}
}

// TestZipfSkew: with theta=0.99, the hottest ~1% of ranks should receive a
// large fraction of samples (YCSB-like skew).
func TestZipfSkew(t *testing.T) {
	const n, samples = 10_000, 200_000
	z := NewZipf(rand.New(rand.NewSource(2)), n, 0.99)
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Next() < n/100 {
			hot++
		}
	}
	frac := float64(hot) / samples
	if frac < 0.4 {
		t.Fatalf("top 1%% of ranks got only %.1f%% of samples; not zipfian", frac*100)
	}
}

// TestZipfScrambledSpreads: scrambling must move the hot ranks away from
// the low end of the keyspace while preserving skew.
func TestZipfScrambledSpreads(t *testing.T) {
	const n, samples = 10_000, 100_000
	z := NewZipf(rand.New(rand.NewSource(3)), n, 0.99)
	counts := make(map[uint64]int)
	for i := 0; i < samples; i++ {
		counts[z.Scrambled()]++
	}
	// The hottest key should NOT be key 0 with overwhelming probability,
	// and the max count must still show heavy skew.
	var maxKey uint64
	maxCount := 0
	for k, c := range counts {
		if c > maxCount {
			maxKey, maxCount = k, c
		}
	}
	if maxCount < samples/100 {
		t.Fatalf("scrambled distribution lost its skew: max count %d", maxCount)
	}
	t.Logf("hottest scrambled key %d with %d samples", maxKey, maxCount)
}

func TestZipfLowTheta(t *testing.T) {
	// theta -> 0 approaches uniform; the hottest 1% should get ~1%.
	const n, samples = 10_000, 100_000
	z := NewZipf(rand.New(rand.NewSource(4)), n, 0.01)
	hot := 0
	for i := 0; i < samples; i++ {
		if z.Next() < n/100 {
			hot++
		}
	}
	frac := float64(hot) / samples
	if frac > 0.05 {
		t.Fatalf("theta=0.01 still skewed: %.2f%%", frac*100)
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(rand.New(rand.NewSource(1)), 1<<20, 0.99)
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
