package bench

import (
	"os"
	"strings"
	"testing"
)

// Every registered experiment must run end-to-end at quick scale and
// produce a non-empty, well-formed table. testing.Short skips the slower
// workload experiments.
func runSmoke(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	res := e.Run(Options{Quick: true, Seed: 1})
	if res.ID != id {
		t.Fatalf("result ID %q != %q", res.ID, id)
	}
	if len(res.Headers) == 0 || len(res.Rows) == 0 {
		t.Fatalf("experiment %s produced an empty table", id)
	}
	for _, row := range res.Rows {
		if len(row) != len(res.Headers) {
			t.Fatalf("experiment %s row width %d != header width %d", id, len(row), len(res.Headers))
		}
	}
	res.Print(os.Stdout)
	return res
}

func TestSmokeTable4(t *testing.T) { runSmoke(t, "table4") }

func TestSmokeFig10a(t *testing.T) {
	res := runSmoke(t, "fig10a")
	// Throughput must fall with payload (bandwidth term).
	if res.Rows[0][2] == res.Rows[len(res.Rows)-1][2] {
		t.Fatal("payload size had no effect on RDMA READ throughput")
	}
}

func TestSmokeFig10b(t *testing.T) { runSmoke(t, "fig10b") }
func TestSmokeFig10c(t *testing.T) { runSmoke(t, "fig10c") }
func TestSmokeFig10d(t *testing.T) { runSmoke(t, "fig10d") }

func TestSmokeFig11(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig11")
}

func TestSmokeFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runSmoke(t, "fig12")
	// DrTM must beat Calvin by an order of magnitude.
	for _, row := range res.Rows {
		ratio := row[4]
		if !strings.HasSuffix(ratio, "x") {
			t.Fatalf("malformed speedup cell %q", ratio)
		}
	}
}

func TestSmokeFig13(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig13")
}

func TestSmokeFig14(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig14")
}

func TestSmokeFig15(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig15")
}

func TestSmokeFig16(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig16")
}

func TestSmokeFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "fig17")
}

func TestSmokeTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runSmoke(t, "table2")
	// Table 2's headline cells: R RD shares with L RD; R WR conflicts.
	if res.Rows[1][1] != "C" || res.Rows[1][2] != "C" {
		t.Fatalf("remote write row = %v, want conflicts", res.Rows[1])
	}
}

func TestSmokeTable6(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "table6")
}

func TestSmokeAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runSmoke(t, "ablate-cache")
	runSmoke(t, "ablate-fallback")
	runSmoke(t, "ablate-atomics")
	runSmoke(t, "ablate-assoc")
}

func TestSmokeObs(t *testing.T) {
	res := runSmoke(t, "obs")
	// The observability experiment must demonstrate nonzero conflict
	// counters — the whole point of the abort-cause breakdown.
	cell := func(group, metric string) string {
		for _, row := range res.Rows {
			if row[0] == group && row[1] == metric {
				return row[2]
			}
		}
		t.Fatalf("row %s/%s missing", group, metric)
		return ""
	}
	if v := cell("htm-abort", "conflict"); strings.HasPrefix(v, "0 ") {
		t.Errorf("htm conflict aborts = %q, want nonzero", v)
	}
	if v := cell("lease", "lock-conflicts"); v == "0" {
		t.Errorf("remote lock conflicts = %q, want nonzero", v)
	}
	if v := cell("rdma", "cas"); v == "0" {
		t.Errorf("rdma cas = %q, want nonzero", v)
	}
	if v := cell("latency", "total"); strings.HasPrefix(v, "n=0 ") {
		t.Errorf("total latency histogram empty: %q", v)
	}
}

func TestSmokeChaos(t *testing.T) {
	res := runSmoke(t, "chaos")
	cell := func(metric string) string {
		for _, row := range res.Rows {
			if row[0] == metric {
				return row[1]
			}
		}
		t.Fatalf("row %s missing", metric)
		return ""
	}
	// The headline: no committed transaction may be lost to a crash.
	if v := cell("balance-conservation"); !strings.HasPrefix(v, "OK") {
		t.Errorf("balance conservation: %s", v)
	}
	// Survivors must make progress while a peer is down, and the crashes
	// must be detected and recovered through the lease-based path.
	if v := cell("commits-during-outage"); v == "0" {
		t.Errorf("no commits during outages")
	}
	if v := cell("detections"); v == "0" {
		t.Errorf("no crash detections")
	}
	if v := cell("recoveries"); v == "0" {
		t.Errorf("no recoveries ran")
	}
	if v := cell("verb-faults"); v == "0" {
		t.Errorf("no verb faults recorded")
	}
	if v := cell("pending-after-drain"); v != "0" {
		t.Errorf("release-side writes still parked after final revival: %s", v)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table4", "table6",
		"fig10a", "fig10b", "fig10c", "fig10d",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
		"ablate-cache", "ablate-fallback", "ablate-atomics", "ablate-assoc",
		"obs", "chaos", "batch", "occ", "adaptive", "failover", "scan",
		"mvcc",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(Experiments()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(Experiments()), len(want))
	}
}
