package bench

import (
	"fmt"
	"testing"

	"drtm/internal/tx"
)

func TestSmokeAdaptive(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive experiment is slow")
	}
	runSmoke(t, "adaptive")
}

// TestAdaptiveAcceptance gates the adaptive read-arm selector against both
// static arms (ISSUE 6): per-record cost within 5% of the best static arm
// at every sweep point, strictly cheaper than each static arm on at least
// one.
//
// Sweep:
//
//	quiet points (theta 0.20 / 0.99, write%% 0, 2 workers/node) — no
//	conflicts, so the run is deterministic: adaptive must route everything
//	speculatively (matching the spec arm within 5%) and strictly dodge the
//	lease arm's CAS tax.
//
//	hot point (theta 0.99, write%% 75, 4 workers/node crammed into 16
//	keys/node) — every transaction's 8-record read-modify-write set
//	overlaps every other's, so the spec arm's validation failures compound
//	into a retry cascade; adaptive must flip the hot buckets to leases and
//	come out strictly cheaper than BOTH statics, within 5% of the best.
//
// The hot point's retry cascade is metastable: an individual spec run can
// luckily serialize its writers early and escape at ~6µs instead of
// ~500µs (measured escape rate ≈ 40%, scheduling- not seed-dependent).
// Each arm is therefore measured as a 6-seed mean — one cascade anywhere
// in the six dominates the mean — and the hot check retries once before
// failing, so a false FAIL needs twelve consecutive lucky escapes
// (P ≈ 0.4^12).
func TestAdaptiveAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("adaptive acceptance is slow")
	}

	// ---- quiet read-only points -------------------------------------------
	for _, theta := range []float64{0.20, 0.99} {
		o := Options{Quick: true, Seed: 1}
		lease := measureAdaptiveW(o, 60, theta, 0, tx.PolicyLease, 2)
		spec := measureAdaptiveW(o, 60, theta, 0, tx.PolicySpeculative, 2)
		adapt := measureAdaptiveW(o, 60, theta, 0, tx.PolicyAdaptive, 2)
		if lease.perRecNS <= 0 || spec.perRecNS <= 0 || adapt.perRecNS <= 0 {
			t.Fatalf("theta=%.2f: missing samples: lease=%v spec=%v adaptive=%v",
				theta, lease.perRecNS, spec.perRecNS, adapt.perRecNS)
		}
		best := spec.perRecNS
		if lease.perRecNS < best {
			best = lease.perRecNS
		}
		if adapt.perRecNS > 1.05*best {
			t.Errorf("theta=%.2f w=0: adaptive %.0fns > 1.05x best static %.0fns",
				theta, adapt.perRecNS, best)
		}
		// Strictly better than the lease arm: a conflict-free workload must
		// not pay the read-lock CAS.
		if adapt.perRecNS >= lease.perRecNS {
			t.Errorf("theta=%.2f w=0: adaptive %.0fns did not beat lease %.0fns",
				theta, adapt.perRecNS, lease.perRecNS)
		}
		if adapt.switches != 0 {
			t.Errorf("theta=%.2f w=0: conflict-free run flipped %d buckets", theta, adapt.switches)
		}
	}

	// ---- hot mixed point --------------------------------------------------
	hot := func() (msgs []string) {
		var lease, spec, adapt float64
		const hotSeeds = 6
		for seed := int64(1); seed <= hotSeeds; seed++ {
			o := Options{Quick: true, Seed: seed}
			lease += measureAdaptiveCfg(o, 60, 0.99, 75, tx.PolicyLease, 4, 16, false).perRecNS
			spec += measureAdaptiveCfg(o, 60, 0.99, 75, tx.PolicySpeculative, 4, 16, false).perRecNS
			adapt += measureAdaptiveCfg(o, 60, 0.99, 75, tx.PolicyAdaptive, 4, 16, false).perRecNS
		}
		lease, spec, adapt = lease/hotSeeds, spec/hotSeeds, adapt/hotSeeds
		best := spec
		if lease < best {
			best = lease
		}
		report := func(f string, a ...any) { msgs = append(msgs, "hot point: "+fmt.Sprintf(f, a...)) }
		if adapt > 1.05*best {
			report("adaptive %.0fns > 1.05x best static %.0fns (lease %.0f, spec %.0f)",
				adapt, best, lease, spec)
		}
		if adapt >= spec {
			report("adaptive %.0fns did not beat spec %.0fns", adapt, spec)
		}
		if adapt >= lease {
			report("adaptive %.0fns did not beat lease %.0fns", adapt, lease)
		}
		return msgs
	}
	msgs := hot()
	if len(msgs) > 0 {
		t.Logf("hot point failed once (%v), retrying — spec's cascade is metastable", msgs)
		msgs = hot()
	}
	for _, m := range msgs {
		t.Error(m)
	}
}
