package bench

import (
	"fmt"
	"runtime"
	"sync"

	"drtm"
)

// The obs experiment exercises the redesigned public observability API
// end-to-end: it opens a DB through drtm.MustOpen, drives a contended
// mixed workload (cross-node hot-pair transfers + overlapping same-node
// batches + read-only audits), and renders the db.Stats() delta — the
// abort-cause breakdown, the RDMA verb counts, the lease protocol events,
// and the per-phase latency percentiles. This is the table cmd/drtm-bench
// prints when diagnosing a workload, and it doubles as an end-to-end proof
// that every counter is wired: the smoke test asserts the conflict rows
// are nonzero.
func init() {
	Register(Experiment{
		ID:    "obs",
		Title: "Observability: abort causes, RDMA verbs, lease events, phase latency",
		Run:   runObsExp,
	})
}

func runObsExp(o Options) *Result {
	const (
		nodes   = 2
		workers = 2
		keys    = 20
		tbl     = 1
	)
	rounds := 400
	if o.Quick {
		rounds = 80
	}

	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		LeaseMicros: simLeaseMicros, ROLeaseMicros: simROLeaseMicros,
	}, func(table int, key uint64) int { return int(key) % nodes })
	defer db.Close()

	db.CreateHashTable(tbl, 1024, 1)
	for k := uint64(1); k <= keys; k++ {
		if err := db.Load(tbl, k, []uint64{1000}); err != nil {
			panic(err)
		}
	}

	base := db.Stats() // population noise stays out of the delta

	var wg sync.WaitGroup
	for n := 0; n < db.Nodes(); n++ {
		for w := 0; w < db.WorkersPerNode(); w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := db.Executor(n, w)
				var mine []uint64
				for k := uint64(1); k <= keys; k++ {
					if int(k)%nodes == n {
						mine = append(mine, k)
					}
				}
				for i := 0; i < rounds; i++ {
					// Cross-node transfer over the hot pair: races the
					// remote lock/lease CAS against the other node.
					_ = e.Exec(func(t *drtm.Tx) error {
						if err := t.W(tbl, 1); err != nil {
							return err
						}
						if err := t.W(tbl, 2); err != nil {
							return err
						}
						return t.Execute(func(lc *drtm.Local) error {
							f, _ := lc.Read(tbl, 1)
							g, _ := lc.Read(tbl, 2)
							if f[0] < 1 {
								return nil
							}
							if err := lc.Write(tbl, 1, []uint64{f[0] - 1}); err != nil {
								return err
							}
							return lc.Write(tbl, 2, []uint64{g[0] + 1})
						})
					})
					// Same-node batch over every local record; the Gosched
					// hands the CPU to the sibling worker mid-region so the
					// HTM working sets genuinely collide (stands in for
					// coherence-interleaved regions on real hardware).
					_ = e.Exec(func(t *drtm.Tx) error {
						for _, k := range mine {
							if err := t.W(tbl, k); err != nil {
								return err
							}
						}
						return t.Execute(func(lc *drtm.Local) error {
							vals := make([][]uint64, len(mine))
							for j, k := range mine {
								v, err := lc.Read(tbl, k)
								if err != nil {
									return err
								}
								vals[j] = v
							}
							runtime.Gosched()
							for j, k := range mine {
								if err := lc.Write(tbl, k, vals[j]); err != nil {
									return err
								}
							}
							return nil
						})
					})
					// Read-only audit over the other node's records.
					_ = e.ExecRO(func(ro *drtm.RO) error {
						for k := uint64(1); k <= keys; k++ {
							if int(k)%nodes != n {
								if _, err := ro.Read(tbl, k); err != nil {
									return err
								}
							}
						}
						return nil
					})
				}
			}(n, w)
		}
	}
	wg.Wait()

	st := db.Stats().Delta(base)

	res := &Result{
		ID:      "obs",
		Title:   "Observability: abort causes, RDMA verbs, lease events, phase latency",
		Headers: []string{"group", "metric", "value"},
	}
	pctOf := func(part, whole int64) string {
		if whole == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
	}
	count := func(group, metric string, v int64) {
		res.AddRow(group, metric, fmt.Sprintf("%d", v))
	}

	count("tx", "commits", st.Commits)
	count("tx", "retries", st.Retries)
	count("tx", "fallbacks", st.Fallbacks)
	count("tx", "ro-commits", st.ROCommits)
	count("tx", "ro-retries", st.RORetries)

	count("htm", "commits", st.HTMCommits)
	count("htm", "aborts", st.HTMAborts)
	abortCause := func(name string, v int64) {
		res.AddRow("htm-abort", name,
			fmt.Sprintf("%d (%s of aborts)", v, pctOf(v, st.HTMAborts)))
	}
	abortCause("conflict", st.ConflictAborts)
	abortCause("capacity", st.CapacityAborts)
	abortCause("locked", st.LockedAborts)
	abortCause("lease", st.LeaseAborts)
	abortCause("explicit", st.ExplicitAborts)

	count("lease", "grants", st.LeaseGrants)
	count("lease", "shares", st.LeaseShares)
	count("lease", "confirms", st.LeaseConfirms)
	count("lease", "confirm-fails", st.LeaseConfirmFails)
	count("lease", "expiries", st.LeaseExpiries)
	count("lease", "lock-conflicts", st.RemoteLockConflicts)

	count("rdma", "reads", st.RDMAReads)
	count("rdma", "writes", st.RDMAWrites)
	count("rdma", "cas", st.RDMACASes)
	count("rdma", "faa", st.RDMAFAAs)
	count("rdma", "msgs", st.VerbsMsgs)

	lat := func(name string, l drtm.Latency) {
		res.AddRow("latency", name,
			fmt.Sprintf("n=%d p50=%v p95=%v p99=%v max=%v",
				l.Count, l.P50, l.P95, l.P99, l.Max))
	}
	lat("lock-remote", st.LockRemoteLatency)
	lat("htm-region", st.HTMRegionLatency)
	lat("commit-remotes", st.CommitLatency)
	lat("total", st.TotalLatency)

	res.Note("latency is modeled (virtual-clock) time; counters are real protocol events")
	res.Note("workload: %d rounds/worker of hot-pair transfers + colliding local batches + RO audits on %dx%d",
		rounds, nodes, workers)
	return res
}
