package chopping

import (
	"fmt"

	"drtm/internal/tx"
)

// PieceFunc executes one piece as a transaction on the executor. The piece
// index and parent ID are available for logging and idempotence.
type PieceFunc func(e *tx.Executor, t *tx.Tx) error

// Run executes a chopped transaction: each piece runs as its own
// transaction (its own HTM region), with chopping information logged ahead
// of every piece so recovery can resume from the right one (Section 4.6).
// Per the restriction in Section 3, a user abort is honored only from the
// first piece; later pieces retry until they commit.
func Run(e *tx.Executor, parentID uint64, pieces []PieceFunc) error {
	for i, piece := range pieces {
		i, piece := i, piece
		err := e.Exec(func(t *tx.Tx) error {
			t.SetChoppingInfo([]uint64{parentID, uint64(i)})
			return piece(e, t)
		})
		if err == nil {
			continue
		}
		if err == tx.ErrUserAbort {
			if i == 0 {
				return tx.ErrUserAbort
			}
			return fmt.Errorf("chopping: piece %d of parent %d aborted after the first piece: %w",
				i, parentID, err)
		}
		return err
	}
	return nil
}

// Resume re-runs the pieces of a recovered parent starting at piece `from`
// (obtained from the chopping log via tx.RecoveryReport.PendingPieces).
func Resume(e *tx.Executor, parentID uint64, pieces []PieceFunc, from int) error {
	if from < 0 || from > len(pieces) {
		return fmt.Errorf("chopping: resume index %d out of range", from)
	}
	return Run(e, parentID, pieces[from:])
}
