package chopping

import (
	"math/rand"
	"testing"

	"drtm/internal/cluster"
	"drtm/internal/tx"
)

// Classic safe example: two transactions touching disjoint table pairs in
// their second pieces.
func TestSafeChopping(t *testing.T) {
	specs := []TxnSpec{
		{Name: "T1", Pieces: []Piece{
			{Name: "a", Accesses: []Access{WR(1)}},
			{Name: "b", Accesses: []Access{WR(2)}},
		}},
		{Name: "T2", Pieces: []Piece{
			{Name: "c", Accesses: []Access{RD(3)}},
		}},
	}
	if err := Validate(specs); err != nil {
		t.Fatalf("safe chopping rejected: %v", err)
	}
}

// Classic unsafe example: chopping T1 into two pieces while T2 reads both
// tables creates an SC-cycle (T2 could see T1 half-applied).
func TestUnsafeChopping(t *testing.T) {
	specs := []TxnSpec{
		{Name: "T1", Pieces: []Piece{
			{Name: "a", Accesses: []Access{WR(1)}},
			{Name: "b", Accesses: []Access{WR(2)}},
		}},
		{Name: "T2", Pieces: []Piece{
			{Name: "c", Accesses: []Access{RD(1), RD(2)}},
		}},
	}
	if err := Validate(specs); err == nil {
		t.Fatal("unsafe chopping accepted")
	}
}

// Two instances of the same chopped spec can also form an SC-cycle.
func TestUnsafeSelfConflict(t *testing.T) {
	specs := []TxnSpec{
		{Name: "T", Pieces: []Piece{
			{Name: "a", Accesses: []Access{WR(1), RD(2)}},
			{Name: "b", Accesses: []Access{WR(2), RD(1)}},
		}},
	}
	if err := Validate(specs); err == nil {
		t.Fatal("self-conflicting chopping accepted")
	}
}

// Partition refinement clears conflicts between different partitions.
func TestPartitionRefinement(t *testing.T) {
	p := func(table, part int, wr bool) Access {
		return Access{Table: table, Write: wr, Partition: part}
	}
	unsafe := []TxnSpec{
		{Name: "T1", Pieces: []Piece{
			{Accesses: []Access{p(1, 0, true)}},
			{Accesses: []Access{p(2, 0, true)}},
		}},
		{Name: "T2", Pieces: []Piece{
			{Accesses: []Access{p(1, 0, false), p(2, 0, false)}},
		}},
	}
	if err := Validate(unsafe); err == nil {
		t.Fatal("same-partition conflict missed")
	}
	safe := []TxnSpec{
		{Name: "T1", Pieces: []Piece{
			{Accesses: []Access{p(1, 0, true)}},
			{Accesses: []Access{p(2, 0, true)}},
		}},
		{Name: "T2", Pieces: []Piece{
			{Accesses: []Access{p(1, 1, false), p(2, 1, false)}},
		}},
	}
	if err := Validate(safe); err != nil {
		t.Fatalf("cross-partition non-conflict reported: %v", err)
	}
}

func TestGraphCounts(t *testing.T) {
	specs := []TxnSpec{
		{Name: "T1", Pieces: []Piece{
			{Accesses: []Access{WR(1)}}, {Accesses: []Access{WR(2)}}, {Accesses: []Access{RD(3)}},
		}},
	}
	g := BuildGraph(specs)
	if g.NumPieces() != 3 {
		t.Fatalf("pieces = %d", g.NumPieces())
	}
	s, _ := g.NumEdges()
	if s != 3 { // 3 choose 2
		t.Fatalf("s-edges = %d", s)
	}
}

// TestQuickAgainstBruteForce compares the SC-cycle detector against an
// exhaustive cycle enumeration on small random graphs.
func TestQuickAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		// Random workload: 2-3 txns, 1-3 pieces, accesses over 3 tables.
		var specs []TxnSpec
		nt := 2 + r.Intn(2)
		for i := 0; i < nt; i++ {
			np := 1 + r.Intn(3)
			var ps []Piece
			for j := 0; j < np; j++ {
				var acc []Access
				for a := 0; a < 1+r.Intn(2); a++ {
					acc = append(acc, Access{Table: r.Intn(3), Write: r.Intn(2) == 0, Partition: -1})
				}
				ps = append(ps, Piece{Accesses: acc})
			}
			specs = append(specs, TxnSpec{Name: "T", Pieces: ps})
		}
		g := BuildGraph(specs)
		_, fast := g.SCCycle()
		slow := bruteForceSCCycle(g)
		if fast != slow {
			t.Fatalf("trial %d: detector=%v brute=%v for %+v", trial, fast, slow, specs)
		}
	}
}

// bruteForceSCCycle enumerates simple cycles via DFS and checks edge kinds.
func bruteForceSCCycle(g *Graph) bool {
	n := len(g.nodes)
	idx := make(map[pieceID]int, n)
	for i, p := range g.nodes {
		idx[p] = i
	}
	type adjEdge struct {
		to int
		c  bool
		id int
	}
	adj := make([][]adjEdge, n)
	for id, e := range g.edges {
		a, b := idx[e.a], idx[e.b]
		adj[a] = append(adj[a], adjEdge{b, e.c, id})
		adj[b] = append(adj[b], adjEdge{a, e.c, id})
	}
	found := false
	var path []int      // node path
	var usedEdges []int // edge ids
	var dfs func(start, cur int, hasS, hasC bool)
	dfs = func(start, cur int, hasS, hasC bool) {
		if found || len(path) > 6 {
			return
		}
		for _, e := range adj[cur] {
			if containsInt(usedEdges, e.id) {
				continue
			}
			// Closing the cycle: parallel S/C edges between two nodes form
			// a legitimate 2-edge cycle (two instances of one spec), so a
			// path of length >= 1 suffices as long as the closing edge is
			// distinct (checked above).
			if e.to == start && len(path) >= 1 {
				if (hasC || e.c) && (hasS || !e.c) {
					found = true
					return
				}
			}
			if containsInt(path, e.to) || e.to == start {
				continue
			}
			path = append(path, e.to)
			usedEdges = append(usedEdges, e.id)
			dfs(start, e.to, hasS || !e.c, hasC || e.c)
			path = path[:len(path)-1]
			usedEdges = usedEdges[:len(usedEdges)-1]
		}
	}
	for s := 0; s < n && !found; s++ {
		path = path[:0]
		usedEdges = usedEdges[:0]
		dfs(s, s, false, false)
	}
	return found
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestRunnerExecutesPieces runs a chopped transaction end-to-end on a
// small cluster.
func TestRunnerExecutesPieces(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 1)
	c := cluster.New(cfg)
	defer c.Stop()
	rt := tx.NewRuntime(c, func(table int, key uint64) int { return 0 })
	rt.DefineUnordered(1, 16, 16, 32, 1)
	_ = c.Node(0).Unordered(1).Insert(1, []uint64{0})
	_ = c.Node(0).Unordered(1).Insert(2, []uint64{0})
	e := rt.Executor(0, 0)

	incr := func(key uint64) PieceFunc {
		return func(_ *tx.Executor, t *tx.Tx) error {
			if err := t.W(1, key); err != nil {
				return err
			}
			return t.Execute(func(lc *tx.Local) error {
				v, err := lc.Read(1, key)
				if err != nil {
					return err
				}
				return lc.Write(1, key, []uint64{v[0] + 1})
			})
		}
	}
	if err := Run(e, 99, []PieceFunc{incr(1), incr(2)}); err != nil {
		t.Fatal(err)
	}
	v1, _ := c.Node(0).Unordered(1).Get(1)
	v2, _ := c.Node(0).Unordered(1).Get(2)
	if v1[0] != 1 || v2[0] != 1 {
		t.Fatalf("pieces not applied: %d, %d", v1[0], v2[0])
	}
	// Resume from piece 1 only.
	if err := Resume(e, 99, []PieceFunc{incr(1), incr(2)}, 1); err != nil {
		t.Fatal(err)
	}
	v1, _ = c.Node(0).Unordered(1).Get(1)
	v2, _ = c.Node(0).Unordered(1).Get(2)
	if v1[0] != 1 || v2[0] != 2 {
		t.Fatalf("resume wrong: %d, %d", v1[0], v2[0])
	}
}

// TestRunnerUserAbortOnlyFirstPiece: a user abort in the first piece
// cancels the parent; in later pieces it is a bug surfaced as an error.
func TestRunnerUserAbortOnlyFirstPiece(t *testing.T) {
	cfg := cluster.DefaultConfig(1, 1)
	c := cluster.New(cfg)
	defer c.Stop()
	rt := tx.NewRuntime(c, func(table int, key uint64) int { return 0 })
	rt.DefineUnordered(1, 16, 16, 32, 1)
	e := rt.Executor(0, 0)

	abortPiece := func(_ *tx.Executor, t *tx.Tx) error {
		return t.Execute(func(lc *tx.Local) error { return tx.ErrUserAbort })
	}
	okPiece := func(_ *tx.Executor, t *tx.Tx) error {
		return t.Execute(func(lc *tx.Local) error { return nil })
	}
	if err := Run(e, 1, []PieceFunc{abortPiece, okPiece}); err != tx.ErrUserAbort {
		t.Fatalf("first-piece abort: %v", err)
	}
	if err := Run(e, 2, []PieceFunc{okPiece, abortPiece}); err == tx.ErrUserAbort || err == nil {
		// must be wrapped as a hard error, not a clean user abort
	} else {
		t.Log("late abort surfaced as:", err)
	}
	err := Run(e, 3, []PieceFunc{okPiece, abortPiece})
	if err == nil {
		t.Fatal("late user abort silently succeeded")
	}
}
