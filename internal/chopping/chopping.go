// Package chopping implements transaction chopping (Shasha et al.), which
// DrTM uses to fit transactions with large read/write sets into HTM
// capacity (Sections 1 and 3): a large transaction is decomposed into a
// sequence of smaller pieces, each executed as its own HTM transaction,
// with correctness guaranteed by static analysis of the chopping graph.
//
// The classic result: executing pieces independently preserves
// serializability of the original transactions iff the undirected graph
// whose vertices are pieces, with S-edges between pieces of the same
// transaction and C-edges between conflicting pieces of different
// transactions, contains no cycle with both an S-edge and a C-edge
// (an "SC-cycle").
//
// Conflicts are computed at table granularity with optional key-range
// refinement, which is conservative (may report SC-cycles that finer
// analysis would clear) but never unsound.
//
// The runtime half executes a chopped transaction piece by piece, logging
// chopping information ahead of each piece (Section 4.6) so that recovery
// knows which pieces remain; only the first piece may contain a
// user-initiated abort (Section 3).
package chopping

import (
	"fmt"
)

// Access describes one table touched by a piece.
type Access struct {
	Table int
	Write bool
	// Partition optionally refines conflict detection: two accesses to the
	// same table conflict only if either has Partition < 0 (unknown) or
	// both name the same partition.
	Partition int
}

// RD and WR build read/write accesses spanning all partitions.
func RD(table int) Access { return Access{Table: table, Write: false, Partition: -1} }
func WR(table int) Access { return Access{Table: table, Write: true, Partition: -1} }

// Piece is one HTM-sized fragment of a transaction.
type Piece struct {
	Name     string
	Accesses []Access
}

// TxnSpec is a chopped transaction type.
type TxnSpec struct {
	Name   string
	Pieces []Piece
}

// pieceID identifies a piece in the chopping graph.
type pieceID struct {
	txn, piece int
}

func (p pieceID) String() string { return fmt.Sprintf("txn%d/piece%d", p.txn, p.piece) }

// edge is an undirected chopping-graph edge.
type edge struct {
	a, b pieceID
	c    bool // true = C-edge, false = S-edge
}

// Graph is the chopping graph of a workload.
type Graph struct {
	specs []TxnSpec
	nodes []pieceID
	edges []edge
}

// BuildGraph constructs the chopping graph for the workload's transaction
// types. Because any two *instances* of transaction types can conflict,
// C-edges are computed between all pairs of pieces of different specs, and
// also between pieces of two instances of the same spec (modeled as a
// self-pairing), per the classic construction.
func BuildGraph(specs []TxnSpec) *Graph {
	g := &Graph{specs: specs}
	for ti, s := range specs {
		for pi := range s.Pieces {
			g.nodes = append(g.nodes, pieceID{ti, pi})
		}
	}
	// S-edges: all pairs of pieces within one transaction.
	for ti, s := range specs {
		for i := 0; i < len(s.Pieces); i++ {
			for j := i + 1; j < len(s.Pieces); j++ {
				g.edges = append(g.edges, edge{pieceID{ti, i}, pieceID{ti, j}, false})
			}
		}
	}
	// C-edges: conflicting pieces of different transaction instances.
	// Two instances of the same spec also conflict, but a cycle through
	// them requires distinct instances; the standard check handles this by
	// considering spec pairs including (i, i).
	for ti := 0; ti < len(specs); ti++ {
		for tj := ti; tj < len(specs); tj++ {
			for pi, a := range specs[ti].Pieces {
				for pj, b := range specs[tj].Pieces {
					if ti == tj && pi == pj {
						// The same piece of two instances of one spec: a
						// conflict here is piece-internal and atomic.
						continue
					}
					if conflicts(a, b) {
						g.edges = append(g.edges, edge{pieceID{ti, pi}, pieceID{tj, pj}, true})
					}
				}
			}
		}
	}
	return g
}

func conflicts(a, b Piece) bool {
	for _, x := range a.Accesses {
		for _, y := range b.Accesses {
			if x.Table != y.Table || (!x.Write && !y.Write) {
				continue
			}
			if x.Partition >= 0 && y.Partition >= 0 && x.Partition != y.Partition {
				continue
			}
			return true
		}
	}
	return false
}

// SCCycle reports whether the graph contains a simple cycle with both an
// S-edge and a C-edge, naming the offending transaction when so.
//
// It uses the classic characterization: an SC-cycle exists iff, for some
// transaction T, two distinct pieces of T are connected in the graph with
// all of T's S-edges removed. (Any path leaving T's pieces must start with
// a C-edge — only C-edges cross transactions — so such a path plus the
// S-edge between the two pieces is a simple mixed cycle; the converse
// follows by cutting any mixed cycle at its visits to T's pieces.)
func (g *Graph) SCCycle() (string, bool) {
	adj := make(map[pieceID][]edge)
	for _, e := range g.edges {
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], e)
	}
	for ti, spec := range g.specs {
		if len(spec.Pieces) < 2 {
			continue
		}
		// BFS from each piece of T, skipping T's S-edges.
		for p := 0; p < len(spec.Pieces); p++ {
			start := pieceID{ti, p}
			seen := map[pieceID]bool{start: true}
			queue := []pieceID{start}
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				for _, e := range adj[cur] {
					if !e.c && e.a.txn == ti {
						continue // S-edge of T: removed
					}
					next := e.b
					if next == cur {
						next = e.a
					}
					if seen[next] {
						continue
					}
					if next.txn == ti && next != start {
						return fmt.Sprintf("SC-cycle: pieces %v and %v of %q connect via C-edges",
							start, next, spec.Name), true
					}
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
	}
	return "", false
}

// Validate returns an error when the chopping is unsafe.
func Validate(specs []TxnSpec) error {
	if msg, bad := BuildGraph(specs).SCCycle(); bad {
		return fmt.Errorf("chopping: unsafe decomposition: %s", msg)
	}
	return nil
}

// NumPieces returns the total piece count (diagnostics).
func (g *Graph) NumPieces() int { return len(g.nodes) }

// NumEdges returns S- and C-edge counts.
func (g *Graph) NumEdges() (s, c int) {
	for _, e := range g.edges {
		if e.c {
			c++
		} else {
			s++
		}
	}
	return
}
