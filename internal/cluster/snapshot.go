package cluster

import "drtm/internal/memory"

// Snapshot stamps (the MVCC read arm's notion of "now").
//
// Every node publishes a snapshot stamp into its membership-arena word at
// [3*Nodes + id]: a soft-time value p such that every commit this node will
// EVER finish publishing carries a chain stamp > p. A read-only transaction
// takes the minimum published stamp across alive nodes as its snapshot S
// and resolves every key against its version chain at S (kvs.ResolveAtStamp)
// — no commit anywhere in the cluster can later materialize "inside" the
// snapshot, so a multi-row commit is observed all-or-nothing.
//
// The publish rule needs two ingredients:
//
//   - Bracketing. A committing worker stores a lower bound for its commit
//     stamp into its active word BEFORE selecting the stamp
//     (Worker.BeginCommitStamp) and clears it only after the last write of
//     the commit — local HTM publish, remote write-backs, replica mirrors —
//     is visible (Worker.EndCommitStamp). The publisher takes
//     min(activeStamp - 1) over the node's workers, so an in-flight commit
//     pins the published stamp below everything it is about to write.
//
//   - Ordering. The publisher reads the clock BEFORE scanning the active
//     words, and workers store the bracket BEFORE re-reading the clock for
//     the stamp. If the publisher misses a racing bracket, its clock value
//     predates the worker's stamp selection, so the published p (clock - 1)
//     still sits below the commit's stamp.
//
// Published stamps only move forward (monotone-max CAS), so a snapshot taken
// at S stays valid: later publishes only raise the bound. Staleness is
// bounded by the clock skew plus the publish cadence — every commit
// republishes its node's stamp, detectors gossip it on the PR-2 heartbeat
// FAA, and SnapshotStamp refreshes all alive nodes directly (an in-process
// shortcut; a real deployment would read the possibly-stale gossiped words
// and inherit the heartbeat interval as extra staleness).
//
// Crashed nodes are excluded from the minimum: their published word freezes,
// but their in-flight commits never finish publishing, and the failover
// machinery (tx recovery) decides those transactions' fates before the
// promoted replicas serve reads.

// stampOff is the published-snapshot-stamp word of node i.
func (c *Cluster) stampOff(i int) memory.Offset {
	return memory.Offset(3*c.cfg.Nodes + i)
}

// BeginCommitStamp opens a commit bracket on this worker and returns the
// soft-time the commit should stamp its version-chain writes with (the tx
// layer may raise it above retired tail stamps, never lower it). Must be
// paired with EndCommitStamp once every write of the commit has published.
func (w *Worker) BeginCommitStamp() uint64 {
	w.active.Store(w.Node.Clock.Read())
	return w.Node.Clock.Read()
}

// EndCommitStamp closes the bracket opened by BeginCommitStamp and
// republishes the node's snapshot stamp, advancing readers past the commit.
func (w *Worker) EndCommitStamp() {
	w.active.Store(0)
	w.Node.cluster.PublishSnapshotStamp(w.Node.ID)
}

// PublishSnapshotStamp recomputes node i's snapshot stamp and publishes it
// into the membership arena with a monotone-max CAS. Returns the published
// (possibly pre-existing, higher) value.
func (c *Cluster) PublishSnapshotStamp(node int) uint64 {
	n := c.nodes[node]
	now := n.Clock.Read() // MUST precede the active-word scan (see above)
	var p uint64
	if now > 0 {
		p = now - 1
	}
	for _, w := range n.workers {
		if a := w.active.Load(); a != 0 && a-1 < p {
			p = a - 1
		}
	}
	off := c.stampOff(node)
	for {
		cur := c.membership.LoadWord(off)
		if cur >= p {
			return cur
		}
		if _, ok := c.membership.CAS(off, cur, p); ok {
			return p
		}
	}
}

// BeginSnapshotRead publishes the stamp of an in-flight snapshot read on
// this worker so the removal gate (Cluster.MinActiveSnapshot) keeps dead
// entries this reader could still resolve. Pair with EndSnapshotRead.
func (w *Worker) BeginSnapshotRead(s uint64) { w.roActive.Store(s) }

// EndSnapshotRead clears the stamp published by BeginSnapshotRead.
func (w *Worker) EndSnapshotRead() { w.roActive.Store(0) }

// MinActiveSnapshot returns the smallest snapshot stamp currently held by an
// in-flight snapshot read on any alive worker, or ^uint64(0) when none is
// active. Physical removal of a dead entry is safe only once its death
// stamp is ≤ min(SnapshotStamp(), MinActiveSnapshot()): future readers take
// S ≥ the current floor (stamps are monotone), and a reader registering
// concurrently with the scan also takes S ≥ the floor, so it can never need
// a version the gate allowed to be unlinked.
func (c *Cluster) MinActiveSnapshot() uint64 {
	min := ^uint64(0)
	for _, n := range c.nodes {
		if !n.alive.Load() {
			continue
		}
		for _, w := range n.workers {
			if s := w.roActive.Load(); s != 0 && s < min {
				min = s
			}
		}
	}
	return min
}

// SnapshotStamp returns the cluster-wide snapshot read stamp: the minimum
// published stamp over alive nodes, after refreshing each one. A read-only
// transaction at this stamp observes every commit with chain stamps ≤ S in
// full and no part of any commit stamped > S.
func (c *Cluster) SnapshotStamp() uint64 {
	s := ^uint64(0)
	live := false
	for i, n := range c.nodes {
		if !n.alive.Load() {
			continue
		}
		live = true
		if p := c.PublishSnapshotStamp(i); p < s {
			s = p
		}
	}
	if !live {
		return 0
	}
	return s
}
