// Package cluster assembles the DrTM runtime: N logical nodes in one
// process, each with its own HTM engine, softtime clock, memory-store
// shards, NVRAM logs and worker contexts, connected by the simulated RDMA
// fabric. This mirrors the paper's deployment (and its own scale-out
// emulation, which runs multiple logical nodes per machine, Section 7.2).
package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drtm/internal/clock"
	"drtm/internal/htm"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/nvram"
	"drtm/internal/obs"
	"drtm/internal/rdma"
	"drtm/internal/vtime"
)

// Config describes a cluster.
type Config struct {
	Nodes          int
	WorkersPerNode int

	HTM       htm.Config
	Model     vtime.Model
	Atomicity rdma.AtomicityLevel

	// Lease durations (Section 4.2): the paper fixes 0.4 ms for read-write
	// transactions and 1.0 ms for read-only transactions.
	LeaseMicros   uint64
	ROLeaseMicros uint64

	// Softtime deployment (Section 6.1).
	SofttimeInterval time.Duration
	SkewBound        time.Duration
	Strategy         clock.Strategy

	// Durability (Section 4.6): when true, transactions write chopping,
	// lock-ahead and write-ahead logs to emulated NVRAM.
	Durability bool

	// LogWords sizes each worker's NVRAM logs.
	LogWords int

	// FailureDetection enables lease-based membership: heartbeat renewal,
	// expiry detection, probe confirmation and coordinator election (see
	// membership.go). Off, crashes are only visible through verb errors.
	FailureDetection bool
	// HeartbeatInterval is the lease renewal period.
	HeartbeatInterval time.Duration
	// FailureTimeout is how long a heartbeat may stall before the lease is
	// considered expired. Must span many heartbeat intervals; the probe
	// confirmation makes an aggressive timeout safe (false suspicions are
	// cancelled), just noisy.
	FailureTimeout time.Duration
	// ElectionStagger delays each survivor's coordinator CAS by its rank
	// among the survivors, biasing the election to the lowest ID.
	ElectionStagger time.Duration

	// ReplicationFactor is the number of backups per partition (FaRM-style
	// primary–backup replication, see replication.go). 0 disables
	// replication; crashes are then handled by full NVRAM-replay recovery.
	ReplicationFactor int

	// MVCCDepth is the per-entry version-chain depth (see kvs layout.go):
	// every committed overwrite retires the previous version into a ring of
	// this many slots, enabling the snapshot (MVCC) read-only arm. 0 keeps
	// the PR-8 single-slot layout; negative is normalized to 0.
	MVCCDepth int
}

// DefaultConfig mirrors the paper's settings on a cluster of n nodes with
// w workers each.
func DefaultConfig(n, w int) Config {
	return Config{
		Nodes:            n,
		WorkersPerNode:   w,
		HTM:              htm.DefaultConfig(),
		Model:            vtime.DefaultModel(),
		Atomicity:        rdma.AtomicHCA,
		LeaseMicros:      400,
		ROLeaseMicros:    1000,
		SofttimeInterval: 200 * time.Microsecond,
		SkewBound:        50 * time.Microsecond,
		Strategy:         clock.StrategyReuseConfirm,
		LogWords:         1 << 20,

		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    30 * time.Millisecond,
		ElectionStagger:   5 * time.Millisecond,

		MVCCDepth: 4,
	}
}

// Cluster is the assembled system.
type Cluster struct {
	cfg    Config
	Fabric *rdma.Fabric
	nodes  []*Node

	// Obs is the deployment-wide observability registry: one shard per
	// worker (shard index = node*WorkersPerNode + worker).
	Obs *obs.Registry

	// membership is the shared liveness-lease arena (see membership.go).
	// Layout: [0, Nodes) heartbeat words, [Nodes, 2*Nodes) coordinator
	// words, [2*Nodes, 3*Nodes) per-partition packed view words,
	// [3*Nodes, 4*Nodes) per-node published snapshot stamps (snapshot.go).
	membership *memory.Arena
	detectors  []*detector
	detStop    chan struct{}
	detWG      sync.WaitGroup

	// views mirrors the membership view words for lock-free hot-path
	// routing; redoSinks[host][sender][worker] are the backup redo logs.
	// Both are nil when ReplicationFactor == 0.
	views     []atomic.Uint64
	redoSinks [][][]*RedoSink

	deathMu sync.Mutex
	onDeath func(coordinator, crashed int)
}

// Node is one logical machine.
type Node struct {
	ID      int
	Engine  *htm.Engine
	Clock   *clock.SoftClock
	cluster *Cluster

	unordered map[int]*kvs.Table
	ordered   map[int]*kvs.Ordered

	handlers map[int]rdma.Handler

	workers []*Worker
	alive   atomic.Bool
}

// Worker is a worker thread's context: its queue pair, virtual clock,
// latency histogram and NVRAM logs. Each worker executes one transaction
// at a time, as in the paper.
type Worker struct {
	Node   *Node
	ID     int // node-local worker index
	QP     *rdma.QP
	VClock *vtime.Clock
	Hist   *vtime.Histogram

	// Obs is this worker's observability shard; the transaction layer and
	// the worker's QP both record protocol events into it.
	Obs *obs.Shard

	// Per-worker NVRAM logs (Section 4.6).
	ChoppingLog   *nvram.Log
	LockAheadLog  *nvram.Log
	WriteAheadLog *nvram.Log

	// active brackets a commit in flight for the snapshot-stamp publisher
	// (see snapshot.go); 0 means no commit is between stamp selection and
	// its final publish.
	active atomic.Uint64

	// roActive is the stamp of this worker's in-flight snapshot read (0 when
	// none): the removal gate must not unlink a dead entry a reader at an
	// older stamp could still resolve (see snapshot.go).
	roActive atomic.Uint64
}

// Delta returns the cluster's lease clock-uncertainty bound in microseconds.
func (c *Cluster) Delta() uint64 {
	return clock.Delta(c.cfg.SofttimeInterval, c.cfg.SkewBound)
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// New builds a cluster. Per-node softtime skew is spread deterministically
// across [-SkewBound, +SkewBound].
func New(cfg Config) *Cluster {
	if cfg.Nodes <= 0 || cfg.WorkersPerNode <= 0 {
		panic("cluster: need at least one node and one worker")
	}
	if cfg.LogWords <= 0 {
		cfg.LogWords = 1 << 20
	}
	if cfg.ReplicationFactor < 0 || cfg.ReplicationFactor >= cfg.Nodes {
		panic("cluster: ReplicationFactor must be in [0, Nodes)")
	}
	if cfg.MVCCDepth < 0 {
		cfg.MVCCDepth = 0
	}
	c := &Cluster{
		cfg:        cfg,
		Fabric:     rdma.NewFabric(cfg.Nodes, cfg.Model, cfg.Atomicity),
		Obs:        obs.NewRegistry(cfg.Nodes * cfg.WorkersPerNode),
		membership: memory.NewArena(membershipArenaID, 4*cfg.Nodes),
	}
	if cfg.ReplicationFactor > 0 {
		c.views = make([]atomic.Uint64, cfg.Nodes)
		for p := 0; p < cfg.Nodes; p++ {
			v := PackView(0, p)
			c.membership.UnsafeInit(c.viewOff(p), []uint64{v})
			c.views[p].Store(v)
		}
		c.initReplication()
	}
	for i := 0; i < cfg.Nodes; i++ {
		skew := time.Duration(0)
		if cfg.Nodes > 1 {
			frac := float64(i)/float64(cfg.Nodes-1)*2 - 1 // -1 .. +1
			skew = time.Duration(frac * float64(cfg.SkewBound))
		}
		n := &Node{
			ID:        i,
			Engine:    htm.NewEngine(cfg.HTM),
			Clock:     clock.NewSoftClock(1000+i, cfg.SofttimeInterval, skew),
			cluster:   c,
			unordered: make(map[int]*kvs.Table),
			ordered:   make(map[int]*kvs.Ordered),
			handlers:  make(map[int]rdma.Handler),
		}
		n.alive.Store(true)
		for w := 0; w < cfg.WorkersPerNode; w++ {
			vc := &vtime.Clock{}
			wk := &Worker{
				Node:   n,
				ID:     w,
				QP:     c.Fabric.NewQP(i, vc),
				VClock: vc,
				Hist:   vtime.NewHistogram(),
				Obs:    c.Obs.Shard(i*cfg.WorkersPerNode + w),
			}
			wk.QP.Obs = wk.Obs
			if cfg.Durability {
				wk.ChoppingLog = nvram.NewLog(i*1000+w*3+0, cfg.LogWords)
				wk.LockAheadLog = nvram.NewLog(i*1000+w*3+1, cfg.LogWords)
				wk.WriteAheadLog = nvram.NewLog(i*1000+w*3+2, cfg.LogWords)
				// NVRAM logs stay readable after a crash (flush-on-failure):
				// survivors drain them through durable fabric regions.
				c.Fabric.RegisterDurable(i, LogRegion(w, 0), wk.ChoppingLog.Arena())
				c.Fabric.RegisterDurable(i, LogRegion(w, 1), wk.LockAheadLog.Arena())
				c.Fabric.RegisterDurable(i, LogRegion(w, 2), wk.WriteAheadLog.Arena())
			}
			n.workers = append(n.workers, wk)
		}
		c.nodes = append(c.nodes, n)
		c.Fabric.Serve(i, n.dispatch)
		// Every node reaches the membership service through its own
		// endpoint; the service itself never fails in this model.
		c.Fabric.Register(i, RegionMembership, c.membership)
	}
	return c
}

// Start launches every node's softtime timer thread and, when failure
// detection is configured, the per-node membership detectors.
func (c *Cluster) Start() {
	for _, n := range c.nodes {
		n.Clock.Start()
	}
	if c.cfg.FailureDetection && c.detStop == nil {
		c.detStop = make(chan struct{})
		for i := 0; i < c.cfg.Nodes; i++ {
			d := newDetector(c, i)
			c.detectors = append(c.detectors, d)
			c.detWG.Add(1)
			go d.run(c.detStop)
		}
	}
}

// Stop terminates timer threads and membership detectors.
func (c *Cluster) Stop() {
	if c.detStop != nil {
		close(c.detStop)
		c.detWG.Wait()
		c.detStop = nil
		c.detectors = nil
	}
	for _, n := range c.nodes {
		n.Clock.Stop()
	}
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Workers returns all workers across alive nodes.
func (c *Cluster) Workers() []*Worker {
	var out []*Worker
	for _, n := range c.nodes {
		if n.alive.Load() {
			out = append(out, n.workers...)
		}
	}
	return out
}

// Worker returns worker w of node n.
func (c *Cluster) Worker(n, w int) *Worker { return c.nodes[n].workers[w] }

// RegisterUnordered creates one shard of an unordered (hash) table on every
// node and registers the arenas on the fabric under region ID = table ID.
// With replication on, each node additionally hosts a replica shard for
// every partition it backs up, registered under ReplicaRegion(p, tableID):
// the promote path flips ownership to the replica without moving any data.
func (c *Cluster) RegisterUnordered(tableID, mainBuckets, indirectBuckets, capacity, valueWords int) {
	for _, n := range c.nodes {
		t := kvs.New(kvs.Config{
			Node: n.ID, RegionID: tableID,
			MainBuckets: mainBuckets, IndirectBuckets: indirectBuckets,
			Capacity: capacity, ValueWords: valueWords,
			ChainDepth: c.cfg.MVCCDepth, Stamp: n.Clock.Read,
		}, n.Engine)
		n.unordered[tableID] = t
		c.Fabric.Register(n.ID, tableID, t.Arena())
	}
	if c.cfg.ReplicationFactor > 0 {
		var backups []int
		for p := 0; p < c.cfg.Nodes; p++ {
			backups = c.Backups(backups[:0], p)
			for _, b := range backups {
				n := c.nodes[b]
				region := ReplicaRegion(p, tableID)
				t := kvs.New(kvs.Config{
					Node: n.ID, RegionID: region,
					MainBuckets: mainBuckets, IndirectBuckets: indirectBuckets,
					Capacity: capacity, ValueWords: valueWords,
					ChainDepth: c.cfg.MVCCDepth, Stamp: n.Clock.Read,
				}, n.Engine)
				n.unordered[region] = t
				c.Fabric.Register(n.ID, region, t.Arena())
			}
		}
	}
}

// RegisterOrdered creates one shard of an ordered (B+ tree) table on every
// node. Record entries are fabric-registered like hash-table entries: point
// accesses resolve the entry offset through the host's index (a shipped
// lookup when remote), then lock/fetch/write-back the entry one-sided
// exactly like unordered records; only structural index changes are
// two-sided. With replication on, each node hosts a replica shard for every
// partition it backs up, registered under ReplicaRegion(p, tableID) —
// value updates ride the redo stream, structural changes are mirrored
// synchronously (tx layer), so a promotion serves the tree without moving
// data.
func (c *Cluster) RegisterOrdered(tableID, capacity, valueWords int, segShift uint) {
	for _, n := range c.nodes {
		o := kvs.NewOrdered(kvs.OrderedConfig{
			Node: n.ID, RegionID: tableID,
			Capacity: capacity, ValueWords: valueWords, SegShift: segShift,
			ChainDepth: c.cfg.MVCCDepth, Stamp: n.Clock.Read,
		}, n.Engine)
		n.ordered[tableID] = o
		c.Fabric.Register(n.ID, tableID, o.Arena())
	}
	if c.cfg.ReplicationFactor > 0 {
		var backups []int
		for p := 0; p < c.cfg.Nodes; p++ {
			backups = c.Backups(backups[:0], p)
			for _, b := range backups {
				n := c.nodes[b]
				region := ReplicaRegion(p, tableID)
				o := kvs.NewOrdered(kvs.OrderedConfig{
					Node: n.ID, RegionID: region,
					Capacity: capacity, ValueWords: valueWords, SegShift: segShift,
					ChainDepth: c.cfg.MVCCDepth, Stamp: n.Clock.Read,
				}, n.Engine)
				n.ordered[region] = o
				c.Fabric.Register(n.ID, region, o.Arena())
			}
		}
	}
}

// Unordered returns node n's shard of hash table tableID.
func (n *Node) Unordered(tableID int) *kvs.Table {
	t, ok := n.unordered[tableID]
	if !ok {
		panic(fmt.Sprintf("cluster: node %d has no unordered table %d", n.ID, tableID))
	}
	return t
}

// Ordered returns node n's shard of ordered table tableID.
func (n *Node) Ordered(tableID int) *kvs.Ordered {
	o, ok := n.ordered[tableID]
	if !ok {
		panic(fmt.Sprintf("cluster: node %d has no ordered table %d", n.ID, tableID))
	}
	return o
}

// OrderedRegion returns node n's ordered shard for a storage region —
// either a primary shard (region == tableID) or a replica shard
// (region == ReplicaRegion(p, tableID)).
func (n *Node) OrderedRegion(region int) (*kvs.Ordered, bool) {
	o, ok := n.ordered[region]
	return o, ok
}

// HasOrdered reports whether the node hosts ordered table tableID.
func (n *Node) HasOrdered(tableID int) bool {
	_, ok := n.ordered[tableID]
	return ok
}

// Handle registers a verbs message handler for a message type on this node.
// Must be called before traffic starts.
func (n *Node) Handle(msgType int, h rdma.Handler) { n.handlers[msgType] = h }

// Msg is the envelope for two-sided verbs messages.
type Msg struct {
	Type int
	Body any
}

func (n *Node) dispatch(from int, req any) any {
	m, ok := req.(Msg)
	if !ok {
		return fmt.Errorf("cluster: node %d got non-Msg request %T", n.ID, req)
	}
	h, ok := n.handlers[m.Type]
	if !ok {
		return fmt.Errorf("cluster: node %d has no handler for msg type %d", n.ID, m.Type)
	}
	return h(from, m.Body)
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool { return n.alive.Load() }

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Crash fail-stops a node: its endpoint becomes unreachable on the fabric
// (verbs fail with ErrNodeUnreachable), its heartbeats stop, its softtime
// timer dies, and its workers must observe Alive() == false and stop
// issuing work. Its NVRAM log regions remain readable (flush-on-failure).
// Nobody is notified: survivors learn of the crash through lease expiry.
func (c *Cluster) Crash(node int) {
	n := c.nodes[node]
	if !n.alive.CompareAndSwap(true, false) {
		return
	}
	c.Fabric.SetNodeDown(node, true)
	n.Clock.Stop()
}

// Revive brings a crashed node back (after recovery completes): its
// coordinator word is cleared for future elections, its heartbeat resumes
// from a fresh value, its endpoint rejoins the fabric and its softtime
// timer restarts.
func (c *Cluster) Revive(node int) {
	n := c.nodes[node]
	if n.alive.Load() {
		return
	}
	// The endpoint rejoins the fabric BEFORE the coordinator word clears:
	// a straggling election candidate that CASes the freshly cleared word
	// then sees its post-win probe succeed and withdraws the stale claim.
	c.Fabric.SetNodeDown(node, false)
	c.membership.StoreWord(c.coordOff(node), 0)
	c.membership.FAA(hbOff(node), 1) // visibly fresh before monitors resume
	n.Clock.Restart()
	n.alive.Store(true)
}
