package cluster

import (
	"errors"
	"sync"
	"time"

	"drtm/internal/memory"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// Lease-based membership (Section 4.6's "ZooKeeper-like service", realized
// the way FaRM does it): every node renews a liveness lease by FAA-ing a
// per-node heartbeat counter in a shared membership region; each node also
// monitors its peers' counters. A counter that stops advancing for
// FailureTimeout means the owner's lease expired. The suspecting node
// confirms with probes (a transient fabric fault must not trigger a bogus
// recovery), then races for the crashed node's coordinator word with RDMA
// CAS — staggered by survivor rank, so the lowest-ID survivor usually wins.
// The CAS winner is the recovery coordinator and runs the OnDeath handler
// (the transaction layer wires tx.Runtime.Recover + Revive there).

// RegionMembership is the fabric region ID of the shared membership arena.
// It is registered on every node: the membership service is external to any
// single machine and reachable as long as the caller itself is up.
const RegionMembership = 1 << 30

// logRegionBase is the first fabric region ID used for per-worker NVRAM
// logs, registered durable so survivors can drain them after a crash.
const logRegionBase = RegionMembership + 8

// LogRegion returns the fabric region ID of a worker's NVRAM log
// (which: 0 = chopping, 1 = lock-ahead, 2 = write-ahead).
func LogRegion(worker, which int) int { return logRegionBase + worker*3 + which }

// membershipArenaID is the memory arena ID of the membership region.
const membershipArenaID = 1 << 21

// hbOff is the heartbeat word of node i; coordOff its coordinator word.
func hbOff(i int) memory.Offset { return memory.Offset(i) }
func (c *Cluster) coordOff(i int) memory.Offset {
	return memory.Offset(c.cfg.Nodes + i)
}

// probeAttempts bounds death confirmation: a suspect is declared dead only
// on a definitive ErrNodeUnreachable; this many inconclusive probes
// (transient timeouts) cancel the suspicion instead.
const probeAttempts = 3

// OnDeath installs the handler the elected recovery coordinator runs:
// h(coordinator, crashed). At most one survivor runs it per crash (the
// coordinator-word CAS winner). Replaces any previous handler.
func (c *Cluster) OnDeath(h func(coordinator, crashed int)) {
	c.deathMu.Lock()
	c.onDeath = h
	c.deathMu.Unlock()
}

func (c *Cluster) deathHandler() func(coordinator, crashed int) {
	c.deathMu.Lock()
	defer c.deathMu.Unlock()
	return c.onDeath
}

// detector is one node's view of its peers' liveness leases.
type detector struct {
	c    *Cluster
	node int
	qp   *rdma.QP
	sh   *obs.Shard

	mu        sync.Mutex
	last      []uint64    // last heartbeat value seen per peer
	lastSeen  []time.Time // when it last advanced (zero = unknown yet)
	suspected []bool      // a confirmation goroutine is in flight or done
}

func newDetector(c *Cluster, node int) *detector {
	n := c.cfg.Nodes
	return &detector{
		c:    c,
		node: node,
		// The detector's verbs are control-plane traffic on real time; a
		// nil virtual clock keeps them out of throughput accounting.
		qp:        c.Fabric.NewQP(node, nil),
		sh:        c.Obs.Shard(node * c.cfg.WorkersPerNode),
		last:      make([]uint64, n),
		lastSeen:  make([]time.Time, n),
		suspected: make([]bool, n),
	}
}

func (d *detector) run(stop <-chan struct{}) {
	defer d.c.detWG.Done()
	t := time.NewTicker(d.c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.tick()
		}
	}
}

// tick renews this node's own lease and checks every peer's.
func (d *detector) tick() {
	c := d.c
	if !c.nodes[d.node].alive.Load() {
		// Fail-stop: a crashed node neither heartbeats nor monitors. Forget
		// the peer view so stale timers can't fire right after revival.
		d.mu.Lock()
		for i := range d.lastSeen {
			d.lastSeen[i] = time.Time{}
			d.suspected[i] = false
		}
		d.mu.Unlock()
		return
	}

	// Renew our lease. A transient fault is one missed beat — harmless
	// while the failure timeout spans many heartbeat intervals.
	_, _ = d.qp.TryFAA(d.node, RegionMembership, hbOff(d.node), 1)

	// Gossip this node's snapshot stamp alongside the heartbeat so even an
	// idle node's published stamp keeps advancing (bounded MVCC staleness).
	c.PublishSnapshotStamp(d.node)

	hb := make([]uint64, c.cfg.Nodes)
	if err := d.qp.TryRead(d.node, RegionMembership, 0, hb); err != nil {
		return
	}
	now := time.Now()
	var suspects []int
	d.mu.Lock()
	for j := range hb {
		if j == d.node {
			continue
		}
		if hb[j] != d.last[j] || d.lastSeen[j].IsZero() {
			d.last[j] = hb[j]
			d.lastSeen[j] = now
			d.suspected[j] = false
			continue
		}
		if d.suspected[j] || now.Sub(d.lastSeen[j]) <= c.cfg.FailureTimeout {
			continue
		}
		d.suspected[j] = true
		suspects = append(suspects, j)
	}
	d.mu.Unlock()
	for _, j := range suspects {
		go d.confirmAndElect(j)
	}
}

func (d *detector) clearSuspicion(j int) {
	d.mu.Lock()
	d.suspected[j] = false
	d.lastSeen[j] = time.Now()
	d.mu.Unlock()
}

// confirmAndElect turns an expired lease into a recovery: probe-confirm the
// death, then race for the crashed node's coordinator word.
func (d *detector) confirmAndElect(dead int) {
	c := d.c
	confirmed := false
	for i := 0; i < probeAttempts; i++ {
		err := d.qp.Probe(dead)
		if err == nil {
			// False alarm (scheduling hiccup or lost heartbeats): the node
			// answered, so its lease gets a fresh grace period.
			d.clearSuspicion(dead)
			return
		}
		if errors.Is(err, rdma.ErrNodeUnreachable) {
			confirmed = true
			break
		}
		time.Sleep(c.cfg.HeartbeatInterval) // inconclusive: probe again
	}
	if !confirmed {
		d.clearSuspicion(dead)
		return
	}
	d.sh.Inc(obs.EvDetect)

	// Lowest-ID-survivor bias: rank = how many live nodes precede us.
	rank := 0
	for i := 0; i < d.node; i++ {
		if i != dead && !c.Fabric.NodeDown(i) {
			rank++
		}
	}
	time.Sleep(time.Duration(rank) * c.cfg.ElectionStagger)

	for i := 0; i < probeAttempts; i++ {
		_, won, err := d.qp.TryCAS(d.node, RegionMembership, c.coordOff(dead),
			0, uint64(d.node)+1)
		if errors.Is(err, rdma.ErrTimeout) {
			continue
		}
		if err != nil || !won {
			return // another survivor is the coordinator
		}
		// Stale-claim guard: if the node answers now, an earlier coordinator
		// already recovered and revived it, and our CAS hit the cleared word
		// of the NEXT incarnation. Withdraw instead of re-recovering.
		if d.qp.Probe(dead) == nil {
			_, _, _ = d.qp.TryCAS(d.node, RegionMembership, c.coordOff(dead),
				uint64(d.node)+1, 0)
			d.clearSuspicion(dead)
			return
		}
		if h := c.deathHandler(); h != nil {
			h(d.node, dead)
		}
		return
	}
}
