package cluster

import (
	"testing"
	"time"

	"drtm/internal/memory"
)

func TestNewClusterShape(t *testing.T) {
	c := New(DefaultConfig(3, 4))
	defer c.Stop()
	if c.Nodes() != 3 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	if len(c.Workers()) != 12 {
		t.Fatalf("Workers = %d", len(c.Workers()))
	}
	w := c.Worker(1, 2)
	if w.Node.ID != 1 || w.ID != 2 {
		t.Fatalf("worker identity = %d/%d", w.Node.ID, w.ID)
	}
	if w.QP.Local() != 1 {
		t.Fatal("QP bound to wrong node")
	}
}

func TestRegisterTables(t *testing.T) {
	c := New(DefaultConfig(2, 1))
	defer c.Stop()
	c.RegisterUnordered(1, 64, 64, 128, 2)
	c.RegisterOrdered(2, 128, 2, 0)

	t0 := c.Node(0).Unordered(1)
	if err := t0.Insert(5, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Remote node can read it one-sided.
	qp := c.Worker(1, 0).QP
	e, ok := t0.GetRemote(qp, nil, 5)
	if !ok || e.Value[0] != 1 {
		t.Fatalf("remote get = %+v,%v", e, ok)
	}

	o1 := c.Node(1).Ordered(2)
	if err := o1.Insert(9, []uint64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if v, ok := o1.Get(9); !ok || v[0] != 3 {
		t.Fatal("ordered get failed")
	}
	if !c.Node(0).HasOrdered(2) || c.Node(0).HasOrdered(99) {
		t.Fatal("HasOrdered wrong")
	}
}

func TestVerbsDispatch(t *testing.T) {
	c := New(DefaultConfig(2, 1))
	defer c.Stop()
	c.Node(1).Handle(7, func(from int, body any) any {
		return body.(string) + " handled by node 1"
	})
	resp, err := c.Worker(0, 0).QP.Call(1, Msg{Type: 7, Body: "hello"}, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if resp.(string) != "hello handled by node 1" {
		t.Fatalf("resp = %v", resp)
	}
	// Missing handlers are errors carried in the response, not panics.
	resp, err = c.Worker(0, 0).QP.Call(1, Msg{Type: 99, Body: nil}, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(error); !ok {
		t.Fatalf("missing-handler resp = %v, want error", resp)
	}
}

func TestCrashMarksNodeDown(t *testing.T) {
	c := New(DefaultConfig(3, 1))
	defer c.Stop()
	c.Crash(2)
	c.Crash(2) // idempotent
	if c.Node(2).Alive() {
		t.Fatal("crashed node still alive")
	}
	if !c.Fabric.NodeDown(2) {
		t.Fatal("crash did not mark the endpoint unreachable")
	}
	if len(c.Workers()) != 2 {
		t.Fatalf("workers after crash = %d", len(c.Workers()))
	}
	c.Revive(2)
	if !c.Node(2).Alive() || c.Fabric.NodeDown(2) {
		t.Fatal("revive failed")
	}
}

// TestLeaseDetectionElectsCoordinator exercises the full membership path:
// a crash stops the node's heartbeats, survivors observe the expired lease,
// confirm by probing, and exactly one (the lowest-ID survivor) wins the
// coordinator CAS and runs the OnDeath handler.
func TestLeaseDetectionElectsCoordinator(t *testing.T) {
	cfg := DefaultConfig(3, 1)
	cfg.FailureDetection = true
	cfg.HeartbeatInterval = time.Millisecond
	cfg.FailureTimeout = 10 * time.Millisecond
	cfg.ElectionStagger = 2 * time.Millisecond
	c := New(cfg)
	defer c.Stop()

	type death struct{ coordinator, crashed int }
	deaths := make(chan death, 8)
	c.OnDeath(func(coordinator, crashed int) {
		deaths <- death{coordinator, crashed}
		c.Revive(crashed)
	})
	c.Start()

	// Let leases establish, then fail node 1 with no notification.
	time.Sleep(5 * cfg.HeartbeatInterval)
	c.Crash(1)

	select {
	case d := <-deaths:
		if d.crashed != 1 {
			t.Fatalf("detected crash of node %d, want 1", d.crashed)
		}
		if d.coordinator != 0 {
			t.Fatalf("coordinator = node %d, want lowest-ID survivor 0", d.coordinator)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crash never detected via lease expiry")
	}

	// The handler revived the node; detectors must see it alive again and a
	// later crash must elect afresh (coordinator word was cleared).
	deadline := time.Now().Add(5 * time.Second)
	for !c.Node(1).Alive() {
		if time.Now().After(deadline) {
			t.Fatal("node 1 never revived")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * cfg.HeartbeatInterval)
	c.Crash(2)
	select {
	case d := <-deaths:
		if d.crashed != 2 || d.coordinator != 0 {
			t.Fatalf("second election = %+v, want node 0 recovering node 2", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second crash never detected")
	}
}

func TestDurabilityLogsAllocated(t *testing.T) {
	cfg := DefaultConfig(1, 2)
	cfg.Durability = true
	cfg.LogWords = 1024
	c := New(cfg)
	defer c.Stop()
	w := c.Worker(0, 1)
	if w.WriteAheadLog == nil || w.LockAheadLog == nil || w.ChoppingLog == nil {
		t.Fatal("durability logs missing")
	}
	w.LockAheadLog.Append([]uint64{1})
	if w.LockAheadLog.Len() != 1 {
		t.Fatal("log append failed")
	}
	// Logs are per-worker: the other worker's logs are untouched.
	if c.Worker(0, 0).LockAheadLog.Len() != 0 {
		t.Fatal("logs shared between workers")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(6, 8)
	if cfg.LeaseMicros != 400 || cfg.ROLeaseMicros != 1000 {
		t.Fatal("lease durations diverge from Section 4.2")
	}
	c := New(cfg)
	defer c.Stop()
	if c.Delta() == 0 {
		t.Fatal("Delta must be positive")
	}
	// Node skews stay within the bound: softtime readable everywhere.
	for i := 0; i < c.Nodes(); i++ {
		_ = c.Node(i).Clock.Read()
	}
}

func TestSofttimeSkewOrdering(t *testing.T) {
	c := New(DefaultConfig(5, 1))
	defer c.Stop()
	// Node 0 has -SkewBound, node 4 has +SkewBound.
	lo := c.Node(0).Clock.Read()
	hi := c.Node(4).Clock.Read()
	if hi <= lo {
		t.Fatalf("skew spread wrong: node0=%d node4=%d", lo, hi)
	}
}

func TestCrossNodeCoherence(t *testing.T) {
	c := New(DefaultConfig(2, 1))
	defer c.Stop()
	c.RegisterUnordered(1, 16, 16, 32, 1)
	host := c.Node(0).Unordered(1)
	_ = host.Insert(1, []uint64{10})
	off, _ := host.LookupLocal(1)

	// Remote CAS on the state word, then local HTM read sees it.
	qp := c.Worker(1, 0).QP
	prev, ok := qp.CAS(0, 1, memory.Offset(off)+2, 0, 0xABC)
	if !ok || prev != 0 {
		t.Fatalf("remote CAS = %d,%v", prev, ok)
	}
	if host.Arena().LoadWord(off+2) != 0xABC {
		t.Fatal("remote CAS not coherent with local view")
	}
}
