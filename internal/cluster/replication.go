package cluster

import (
	"fmt"
	"sync"

	"drtm/internal/memory"
	"drtm/internal/nvram"
	"drtm/internal/obs"
	"drtm/internal/rdma"
)

// FaRM-style primary–backup replication (commit-backup protocol).
//
// Placement is deterministic: partition p (partitions coincide with node IDs
// in this codebase) is backed up by the f nodes that follow it in ring
// order, Backups(p) = {p+1, ..., p+f} mod N. Each backup hosts a full
// replica shard of every table of the partitions it backs up, registered on
// the fabric under ReplicaRegion(p, table) so the existing one-sided verb
// paths address replica entries exactly like primary entries.
//
// Commit durability is one-sided: after a transaction's HTM region commits,
// its write-set is appended as one redo record (nvram.EncodeRedo) to a redo
// log on every backup of every touched partition — RDMA log-append WRITEs
// pushed through the async verb engine, one wave, acked by polling, before
// locks release. Redo logs are per (host, sender node, sender worker), so
// each log has exactly one appending worker and appends never contend.
//
// View epochs make failover safe. Partition p's view is one packed word
// (epoch<<8 | owner) in the membership arena; promotion CASes it to
// (epoch+1, backup). Appenders stamp every redo update with the epoch they
// observed; the backup's log sink rejects records carrying a stale epoch
// (ErrFenced), which fences a zombie ex-primary's late appends — the
// one-sided analogue of FaRM's configuration check on log processing.

// Packed view word layout: low 8 bits owner node, high bits epoch.
const viewOwnerBits = 8

// PackView packs a partition view word.
func PackView(epoch uint64, owner int) uint64 {
	return epoch<<viewOwnerBits | uint64(owner)
}

// ViewOwner extracts the owning node from a packed view word.
func ViewOwner(w uint64) int { return int(w & (1<<viewOwnerBits - 1)) }

// ViewEpoch extracts the epoch from a packed view word.
func ViewEpoch(w uint64) uint64 { return w >> viewOwnerBits }

// Replica table regions: ReplicaRegion(p, t) addresses the replica shard of
// partition p's table t on whichever backup hosts it. The base keeps these
// IDs disjoint from plain table IDs (small ints), the membership region
// (1<<30) and the NVRAM log regions (1<<30 + 8...).
const (
	replicaRegionBase   = 1 << 24
	replicaRegionStride = 1 << 16 // max tables per partition
)

// ReplicaRegion returns the fabric/table region ID of partition p's replica
// of table t.
func ReplicaRegion(p, table int) int {
	return replicaRegionBase + p*replicaRegionStride + table
}

// ReplicaRegionInfo inverts ReplicaRegion; ok is false for plain table IDs.
func ReplicaRegionInfo(region int) (p, table int, ok bool) {
	if region < replicaRegionBase || region >= redoLogRegionBase {
		return 0, 0, false
	}
	r := region - replicaRegionBase
	return r / replicaRegionStride, r % replicaRegionStride, true
}

// Redo log regions: RedoLogRegion(s, w) on host b is the redo log that
// sender worker (s, w) appends to on b.
const (
	redoLogRegionBase   = 1 << 29
	redoLogWorkerStride = 256
)

// RedoLogRegion returns the fabric region ID of the redo log a sender
// worker appends to (the same ID on every backup host).
func RedoLogRegion(sender, worker int) int {
	return redoLogRegionBase + sender*redoLogWorkerStride + worker
}

// redoLogWords sizes each redo ring; CheckpointWords is the used-space
// threshold at which the appending worker triggers a checkpoint that applies
// and truncates the tail. Short tails are the whole point of hot failover:
// promotion replays only this much instead of a full NVRAM WAL.
const (
	redoLogWords    = 1 << 16
	CheckpointWords = 1 << 10
)

// RedoSink is one backup-hosted redo log plus its view-epoch fence. It is
// the fabric LogSink for its region: RemoteAppend runs on the appending
// worker's goroutine at WR completion time (one-sided discipline). The
// mutex orders appends against promotion's drain — promotion bumps the view
// epoch before draining, so any append that enters after the drain started
// is fenced, and any append that entered before is observed by the drain.
type RedoSink struct {
	c    *Cluster
	host int
	sh   *obs.Shard

	mu  sync.Mutex
	log *nvram.Log
}

// RemoteAppend implements rdma.LogSink: fence, then ring append.
func (s *RedoSink) RemoteAppend(from int, rec []uint64) error {
	_, ups, ok := nvram.DecodeRedo(rec)
	if !ok {
		return fmt.Errorf("cluster: malformed redo record from node %d", from)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range ups {
		if ups[i].Epoch < s.c.ViewEpochOf(ups[i].Part) {
			s.sh.Inc(obs.EvFenceReject)
			return rdma.ErrFenced
		}
	}
	if !s.log.Append(rec) {
		// Logs are sized so the checkpoint threshold fires long before the
		// ring fills; overflowing one is a configuration error, like the WAL.
		panic(fmt.Sprintf("cluster: redo log on node %d overflowed", s.host))
	}
	return nil
}

// Drain applies every record currently in the log through fn (in append
// order) and truncates, all under the sink's append lock. Returns the
// number of records drained. Used by the sender-triggered checkpoint and by
// promotion's redo-tail replay.
func (s *RedoSink) Drain(fn func(rec []uint64)) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.log.Entries()
	for _, rec := range entries {
		fn(rec)
	}
	s.log.Truncate()
	return len(entries)
}

// BytesUsed returns the ring's current payload footprint.
func (s *RedoSink) BytesUsed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log.BytesUsed()
}

// initReplication builds the replica shards' containers, the view words and
// the redo logs. Called from New when ReplicationFactor > 0.
func (c *Cluster) initReplication() {
	cfg := c.cfg
	c.redoSinks = make([][][]*RedoSink, cfg.Nodes)
	for b := 0; b < cfg.Nodes; b++ {
		c.redoSinks[b] = make([][]*RedoSink, cfg.Nodes)
		for s := 0; s < cfg.Nodes; s++ {
			c.redoSinks[b][s] = make([]*RedoSink, cfg.WorkersPerNode)
			for w := 0; w < cfg.WorkersPerNode; w++ {
				log := nvram.NewLog(redoArenaID(b, s, w), redoLogWords)
				sink := &RedoSink{
					c: c, host: b, log: log,
					sh: c.Obs.Shard(b * cfg.WorkersPerNode),
				}
				c.redoSinks[b][s][w] = sink
				region := RedoLogRegion(s, w)
				c.Fabric.RegisterLogSink(b, region, sink)
				// Durable like the WAL regions: a backup's redo tail stays
				// readable if the backup itself later crashes.
				c.Fabric.RegisterDurable(b, region, log.Arena())
			}
		}
	}
}

// redoArenaID derives a memory arena ID for a redo log, disjoint from the
// worker NVRAM logs (node*1000+...), the membership arena (1<<21) and every
// table region.
func redoArenaID(host, sender, worker int) int {
	return 1<<22 + (host*256+sender)*256 + worker
}

// ReplicationFactor returns the configured backup count per partition.
func (c *Cluster) ReplicationFactor() int { return c.cfg.ReplicationFactor }

// Backups appends partition p's backup nodes (ring successors) to dst and
// returns it. Empty when replication is off.
func (c *Cluster) Backups(dst []int, p int) []int {
	for i := 1; i <= c.cfg.ReplicationFactor; i++ {
		dst = append(dst, (p+i)%c.cfg.Nodes)
	}
	return dst
}

// IsBackup reports whether node b is one of partition p's backups (a ring
// successor within the replication factor).
func (c *Cluster) IsBackup(b, p int) bool {
	d := (b - p + c.cfg.Nodes) % c.cfg.Nodes
	return d >= 1 && d <= c.cfg.ReplicationFactor
}

// viewOff is the membership-arena word holding partition p's packed view.
func (c *Cluster) viewOff(p int) memory.Offset {
	return memory.Offset(2*c.cfg.Nodes + p)
}

// View returns partition p's packed view word (hot-path mirror read).
func (c *Cluster) View(p int) uint64 {
	if c.views == nil {
		return PackView(0, p)
	}
	return c.views[p].Load()
}

// OwnerOf returns the node currently owning partition p.
func (c *Cluster) OwnerOf(p int) int { return ViewOwner(c.View(p)) }

// ViewEpochOf returns partition p's current view epoch.
func (c *Cluster) ViewEpochOf(p int) uint64 { return ViewEpoch(c.View(p)) }

// TryPromote CASes partition p's view from (epoch, p-owned) to (epoch+1,
// newOwner) — the atomic ownership handover of hot failover. It fails (ok
// false) when the partition is no longer owned by its home node, i.e. a
// concurrent promotion already happened, making a second promote of the
// same crash a no-op. The CAS runs on the membership arena directly: the
// membership service is external to every node and does not fail in this
// model, and CPU CAS gives racing coordinators mutual atomicity.
func (c *Cluster) TryPromote(p, newOwner int) (newView uint64, ok bool) {
	old := c.membership.LoadWord(c.viewOff(p))
	if ViewOwner(old) != p {
		return old, false
	}
	nv := PackView(ViewEpoch(old)+1, newOwner)
	if _, won := c.membership.CAS(c.viewOff(p), old, nv); !won {
		return c.membership.LoadWord(c.viewOff(p)), false
	}
	// Publish to the hot-path mirror. Transactions that staged against the
	// old view abort on the in-region view confirmation and restage.
	c.views[p].Store(nv)
	return nv, true
}

// RedoSinkAt returns the redo log on host that sender worker (sender, w)
// appends to. Panics when replication is off.
func (c *Cluster) RedoSinkAt(host, sender, w int) *RedoSink {
	return c.redoSinks[host][sender][w]
}
