// Package clock provides DrTM's notion of time and the lock-state word.
//
// It contains two things:
//
//   - The Figure 4 state-word algebra: a 64-bit word per record combining
//     the exclusive (write) lock — 1 bit locked + 8 bits owner machine ID —
//     with the lease-based shared (read) lock — 55 bits of lease end time.
//
//   - The softtime service of Section 6.1: a per-node timer goroutine that
//     periodically publishes an approximately synchronized timestamp into a
//     word of an HTM-tracked arena. Reading softtime inside an HTM region
//     puts it in the region's read set, so a timer update conflicts with
//     and aborts in-flight readers — the false-abort phenomenon of
//     Figure 11, which the reuse-and-confirm strategy mitigates.
//
// Timestamps are microseconds since the process-wide epoch, which leaves
// 55 bits of headroom for >1000 years of lease end times.
package clock

// State-word layout (Figure 4):
//
//	bit  0      write_lock (1 = exclusively locked)
//	bits 1..8   owner_id   (machine that holds the exclusive lock)
//	bits 9..63  read_lease (end time of the shared lease, microseconds)
const (
	// Init is the unlocked, unleased state of a fresh record.
	Init uint64 = 0

	writeLockBit = uint64(1)
	ownerShift   = 1
	ownerMask    = uint64(0xFF) << ownerShift
	leaseShift   = 9
	// MaxOwner is the largest encodable machine ID.
	MaxOwner = 0xFF
)

// WLocked returns the state word for an exclusive lock held by owner.
func WLocked(owner uint8) uint64 {
	return writeLockBit | uint64(owner)<<ownerShift
}

// IsWriteLocked reports whether the state is exclusively locked.
func IsWriteLocked(s uint64) bool { return s&writeLockBit != 0 }

// Owner returns the machine ID holding the exclusive lock.
func Owner(s uint64) uint8 { return uint8((s & ownerMask) >> ownerShift) }

// LeaseEnd extracts the shared-lease end time (microseconds) from a state.
func LeaseEnd(s uint64) uint64 { return s >> leaseShift }

// Shared returns the state word for a shared lease ending at end (us).
func Shared(endMicros uint64) uint64 { return endMicros << leaseShift }

// Expired reports whether a lease ending at end has certainly expired at
// time now, given clock uncertainty delta (all microseconds). Per Figure 4:
// EXPIRED(end) := now > end + DELTA.
func Expired(endMicros, nowMicros, deltaMicros uint64) bool {
	return nowMicros > endMicros+deltaMicros
}

// Valid reports whether a lease ending at end is certainly still valid at
// now given uncertainty delta. Per Figure 4: VALID(end) := now < end - DELTA.
// Note Valid and Expired are not complements: between them lies an
// uncertainty window in which a cautious reader must re-acquire.
func Valid(endMicros, nowMicros, deltaMicros uint64) bool {
	return endMicros >= deltaMicros && nowMicros < endMicros-deltaMicros
}
