package clock

import (
	"sync"
	"time"

	"drtm/internal/htm"
	"drtm/internal/memory"
)

// epoch anchors all timestamps; package init keeps them small and positive.
var epoch = time.Now()

// NowMicros returns the current "true" (PTP-disciplined) time in
// microseconds since the process epoch.
func NowMicros() uint64 { return uint64(time.Since(epoch) / time.Microsecond) }

// Strategy selects how transactions obtain softtime (Figure 11).
type Strategy int

const (
	// StrategyReuseConfirm (Figure 11(c), DrTM's choice): the softtime read
	// in the Start phase (outside the HTM region) is reused for all local
	// checks; only the final lease confirmation performs a transactional
	// read, narrowing the conflict window with the timer thread.
	StrategyReuseConfirm Strategy = iota
	// StrategyPerOp (Figure 11(b)): every local read/write fetches softtime
	// transactionally, maximizing false conflicts with the timer thread.
	StrategyPerOp
	// StrategyLongInterval (Figure 11(a)): like PerOp but the deployment
	// compensates with a long update interval, trading false aborts for a
	// large DELTA and lease-confirmation failures.
	StrategyLongInterval
)

func (s Strategy) String() string {
	switch s {
	case StrategyReuseConfirm:
		return "reuse+confirm"
	case StrategyPerOp:
		return "per-op"
	case StrategyLongInterval:
		return "long-interval"
	default:
		return "unknown"
	}
}

// SoftClock publishes an approximately synchronized timestamp into an
// HTM-tracked arena word, as the paper's timer thread does (Section 6.1).
type SoftClock struct {
	arena    *memory.Arena
	skew     time.Duration // this node's PTP residual error
	interval time.Duration

	mu      sync.Mutex
	stopCh  chan struct{}
	stopped bool
	ticks   int64
}

// softOff is the word offset of the softtime value inside the clock arena.
const softOff memory.Offset = 0

// NewSoftClock creates a clock whose published time deviates from true time
// by skew, updated every interval. Call Start to launch the timer thread.
func NewSoftClock(arenaID int, interval, skew time.Duration) *SoftClock {
	c := &SoftClock{
		arena:    memory.NewArena(arenaID, memory.WordsPerLine),
		skew:     skew,
		interval: interval,
	}
	c.publish()
	return c
}

// Arena exposes the clock's backing arena (the transaction layer reads
// softtime transactionally through it).
func (c *SoftClock) Arena() *memory.Arena { return c.arena }

func (c *SoftClock) publish() {
	now := int64(NowMicros()) + int64(c.skew/time.Microsecond)
	if now < 0 {
		now = 0
	}
	c.arena.StoreWord(softOff, uint64(now))
}

// Start launches the timer goroutine.
func (c *SoftClock) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopCh != nil || c.stopped {
		return
	}
	c.stopCh = make(chan struct{})
	go func(stop chan struct{}) {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.publish()
				c.mu.Lock()
				c.ticks++
				c.mu.Unlock()
			}
		}
	}(c.stopCh)
}

// Restart relaunches the timer goroutine after a Stop — a crashed node's
// clock coming back up on revival. Unlike Start, it clears the stopped
// latch; a clock that was never stopped just keeps running.
func (c *SoftClock) Restart() {
	c.mu.Lock()
	c.stopped = false
	c.mu.Unlock()
	c.Start()
}

// Stop terminates the timer goroutine.
func (c *SoftClock) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopCh != nil {
		close(c.stopCh)
		c.stopCh = nil
	}
	c.stopped = true
}

// Ticks reports how many timer updates have fired (for tests).
func (c *SoftClock) Ticks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Tick forces one immediate publish (deterministic tests).
func (c *SoftClock) Tick() { c.publish() }

// floor bounds softtime staleness: the timer goroutine may lag arbitrarily
// on an oversubscribed simulation host, but the paper's DELTA assumes the
// published time is at most one update interval stale. Every read therefore
// clamps the word to at least (true time + skew - interval) — semantically
// "the worst value a healthy timer could have published" — so the
// clock-uncertainty bound DELTA = interval + 2*skew genuinely holds, which
// the lease safety argument (Section 4.4) depends on.
func (c *SoftClock) floor() uint64 {
	ideal := int64(NowMicros()) + int64(c.skew/time.Microsecond) - int64(c.interval/time.Microsecond)
	if ideal < 0 {
		return 0
	}
	return uint64(ideal)
}

// Read returns softtime via a plain (non-transactional) load. Used in the
// Start phase, outside any HTM region.
func (c *SoftClock) Read() uint64 {
	v := c.arena.LoadWord(softOff)
	if f := c.floor(); f > v {
		return f
	}
	return v
}

// ReadTx returns softtime via a transactional load, adding the softtime
// word's line to tx's read set. Used inside HTM regions; this is the read
// that the timer thread's updates can falsely abort.
func (c *SoftClock) ReadTx(tx *htm.Txn) uint64 {
	v := tx.Read(c.arena, softOff)
	if f := c.floor(); f > v {
		return f
	}
	return v
}

// Delta returns a conservative clock-uncertainty bound (microseconds) for a
// deployment with the given per-node skew bound and update interval: a
// reader may see a value as stale as one full interval plus twice the skew.
func Delta(interval, skewBound time.Duration) uint64 {
	return uint64((interval + 2*skewBound) / time.Microsecond)
}
