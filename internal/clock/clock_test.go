package clock

import (
	"testing"
	"testing/quick"
	"time"

	"drtm/internal/htm"
)

func TestStateWordRoundTrip(t *testing.T) {
	for _, owner := range []uint8{0, 1, 5, 255} {
		s := WLocked(owner)
		if !IsWriteLocked(s) {
			t.Fatalf("WLocked(%d) not write-locked", owner)
		}
		if Owner(s) != owner {
			t.Fatalf("Owner = %d, want %d", Owner(s), owner)
		}
	}
	if IsWriteLocked(Init) {
		t.Fatal("Init is write-locked")
	}
}

func TestSharedLeaseRoundTrip(t *testing.T) {
	for _, end := range []uint64{0, 1, 400, 1 << 40} {
		s := Shared(end)
		if IsWriteLocked(s) {
			t.Fatalf("Shared(%d) is write-locked", end)
		}
		if LeaseEnd(s) != end {
			t.Fatalf("LeaseEnd = %d, want %d", LeaseEnd(s), end)
		}
	}
}

func TestExpiredValidWindows(t *testing.T) {
	const end, delta = 1000, 50
	cases := []struct {
		now     uint64
		expired bool
		valid   bool
	}{
		{900, false, true},   // clearly inside
		{949, false, true},   // just inside valid window
		{950, false, false},  // uncertainty region begins
		{1000, false, false}, // at end: uncertain
		{1050, false, false}, // still within delta of end
		{1051, true, false},  // certainly expired
	}
	for _, c := range cases {
		if got := Expired(end, c.now, delta); got != c.expired {
			t.Errorf("Expired(now=%d) = %v, want %v", c.now, got, c.expired)
		}
		if got := Valid(end, c.now, delta); got != c.valid {
			t.Errorf("Valid(now=%d) = %v, want %v", c.now, got, c.valid)
		}
	}
}

// TestQuickValidExpiredDisjoint: a lease is never simultaneously valid and
// expired, for any (end, now, delta).
func TestQuickValidExpiredDisjoint(t *testing.T) {
	f := func(end, now uint64, delta uint16) bool {
		end >>= 12 // keep within the 55-bit encodable range with headroom
		now >>= 12
		d := uint64(delta)
		return !(Valid(end, now, d) && Expired(end, now, d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStateEncodingLossless: owner and lease encodings never clobber
// each other's bits.
func TestQuickStateEncodingLossless(t *testing.T) {
	f := func(owner uint8, end uint64) bool {
		end &= (1 << 55) - 1
		return Owner(WLocked(owner)) == owner && LeaseEnd(Shared(end)) == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftClockPublishes(t *testing.T) {
	c := NewSoftClock(0, time.Millisecond, 0)
	defer c.Stop()
	before := c.Read()
	time.Sleep(2 * time.Millisecond)
	c.Tick()
	if after := c.Read(); after <= before {
		t.Fatalf("softtime did not advance: %d -> %d", before, after)
	}
}

func TestSoftClockSkewApplied(t *testing.T) {
	ahead := NewSoftClock(0, time.Hour, 10*time.Millisecond)
	behind := NewSoftClock(1, time.Hour, -10*time.Millisecond)
	a, b := ahead.Read(), behind.Read()
	if a <= b {
		t.Fatalf("skewed clocks out of order: ahead=%d behind=%d", a, b)
	}
	if a-b < 10_000 { // at least 10 ms apart in us
		t.Fatalf("skew gap too small: %d us", a-b)
	}
}

func TestSoftClockTimerThread(t *testing.T) {
	c := NewSoftClock(0, 200*time.Microsecond, 0)
	c.Start()
	defer c.Stop()
	deadline := time.After(time.Second)
	for c.Ticks() < 3 {
		select {
		case <-deadline:
			t.Fatal("timer thread did not tick")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestSoftClockStopIdempotent(t *testing.T) {
	c := NewSoftClock(0, time.Millisecond, 0)
	c.Start()
	c.Stop()
	c.Stop()
	c.Start() // after Stop, Start must not relaunch
	if c.stopCh != nil {
		t.Fatal("Start relaunched after Stop")
	}
}

// TestTimerUpdateAbortsTransactionalReader reproduces the Figure 11(b)
// hazard: an HTM region that reads softtime is aborted by a timer update.
func TestTimerUpdateAbortsTransactionalReader(t *testing.T) {
	c := NewSoftClock(0, time.Hour, 0)
	eng := htm.NewEngine(htm.Config{})
	err := eng.Run(func(tx *htm.Txn) error {
		_ = c.ReadTx(tx)
		c.Tick() // timer fires mid-transaction
		return nil
	})
	if ae, ok := htm.IsAbort(err); !ok || ae.Code != htm.AbortConflict {
		t.Fatalf("err = %v, want conflict abort from timer tick", err)
	}
}

// TestStartPhaseReadUnaffectedByTimer: the non-transactional read used by
// strategy (c) does not create HTM conflicts.
func TestStartPhaseReadUnaffectedByTimer(t *testing.T) {
	c := NewSoftClock(0, time.Hour, 0)
	eng := htm.NewEngine(htm.Config{})
	start := c.Read() // outside the region
	err := eng.Run(func(tx *htm.Txn) error {
		_ = start // reuse
		c.Tick()
		return nil
	})
	if err != nil {
		t.Fatalf("reuse strategy still aborted: %v", err)
	}
}

func TestDelta(t *testing.T) {
	d := Delta(10*time.Millisecond, 50*time.Microsecond)
	if d != 10_100 {
		t.Fatalf("Delta = %d us, want 10100", d)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyReuseConfirm.String() != "reuse+confirm" ||
		StrategyPerOp.String() != "per-op" ||
		StrategyLongInterval.String() != "long-interval" {
		t.Fatal("strategy strings wrong")
	}
}
