package smallbank

import (
	"sync"
	"testing"

	"drtm/internal/cluster"
	"drtm/internal/tx"
)

func smallCfg(nodes int) Config {
	cfg := DefaultConfig(nodes)
	cfg.AccountsPerNode = 200
	cfg.HotAccounts = 20
	cfg.DistProb = 0.2
	return cfg
}

func newWorkload(t testing.TB, nodes, workers int) (*Workload, *tx.Runtime, func()) {
	t.Helper()
	ccfg := cluster.DefaultConfig(nodes, workers)
	ccfg.LeaseMicros = 5_000
	ccfg.ROLeaseMicros = 10_000
	c := cluster.New(ccfg)
	c.Start()
	cfg := smallCfg(nodes)
	rt := tx.NewRuntime(c, cfg.Partitioner())
	w, err := Setup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, rt, c.Stop
}

func TestSetupPopulates(t *testing.T) {
	w, rt, stop := newWorkload(t, 2, 1)
	defer stop()
	if got := rt.C.Node(0).Unordered(TableSavings).Len(); got != 200 {
		t.Fatalf("savings rows on node 0 = %d", got)
	}
	want := uint64(2 * 200 * 2 * 10_000) // nodes * accts * (sav+chk) * balance
	if got := w.TotalBalance(); got != want {
		t.Fatalf("TotalBalance = %d, want %d", got, want)
	}
}

func TestNodeOfPartitioning(t *testing.T) {
	cfg := smallCfg(3)
	if cfg.NodeOf(1) != 0 || cfg.NodeOf(200) != 0 || cfg.NodeOf(201) != 1 ||
		cfg.NodeOf(401) != 2 || cfg.NodeOf(600) != 2 {
		t.Fatalf("NodeOf boundaries wrong: %d %d %d %d %d",
			cfg.NodeOf(1), cfg.NodeOf(200), cfg.NodeOf(201), cfg.NodeOf(401), cfg.NodeOf(600))
	}
}

func TestSendPaymentMovesMoney(t *testing.T) {
	w, rt, stop := newWorkload(t, 2, 1)
	defer stop()
	cl := w.NewClient(rt.Executor(0, 0), 1)
	// Local payment.
	if err := cl.SendPayment(1, 2, 500); err != nil {
		t.Fatal(err)
	}
	// Distributed payment: account 201 lives on node 1.
	if err := cl.SendPayment(1, 201, 500); err != nil {
		t.Fatal(err)
	}
	v1, _ := rt.C.Node(0).Unordered(TableChecking).Get(1)
	v2, _ := rt.C.Node(0).Unordered(TableChecking).Get(2)
	v3, _ := rt.C.Node(1).Unordered(TableChecking).Get(201)
	if v1[0] != 9000 || v2[0] != 10500 || v3[0] != 10500 {
		t.Fatalf("balances = %d %d %d", v1[0], v2[0], v3[0])
	}
}

func TestBalanceReadsBoth(t *testing.T) {
	w, rt, stop := newWorkload(t, 1, 1)
	defer stop()
	cl := w.NewClient(rt.Executor(0, 0), 1)
	got, err := cl.Balance(5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20_000 {
		t.Fatalf("Balance = %d", got)
	}
}

func TestAmalgamate(t *testing.T) {
	w, rt, stop := newWorkload(t, 2, 1)
	defer stop()
	cl := w.NewClient(rt.Executor(0, 0), 1)
	if err := cl.Amalgamate(1, 201); err != nil { // cross-node
		t.Fatal(err)
	}
	s, _ := rt.C.Node(0).Unordered(TableSavings).Get(1)
	k, _ := rt.C.Node(0).Unordered(TableChecking).Get(1)
	b, _ := rt.C.Node(1).Unordered(TableChecking).Get(201)
	if s[0] != 0 || k[0] != 0 || b[0] != 30_000 {
		t.Fatalf("after amalgamate: %d %d %d", s[0], k[0], b[0])
	}
}

func TestWithdrawClampsAtZero(t *testing.T) {
	w, rt, stop := newWorkload(t, 1, 1)
	defer stop()
	cl := w.NewClient(rt.Executor(0, 0), 1)
	if err := cl.WithdrawChecking(1, 50_000); err != nil {
		t.Fatal(err)
	}
	v, _ := rt.C.Node(0).Unordered(TableChecking).Get(1)
	if v[0] != 0 {
		t.Fatalf("balance = %d", v[0])
	}
	if cl.NetDeposits != -10_000 {
		t.Fatalf("NetDeposits = %d, want -10000 (clamped)", cl.NetDeposits)
	}
}

// TestMixConservation runs the full mix concurrently and checks that the
// total balance moved only by the tracked net deposits.
func TestMixConservation(t *testing.T) {
	const nodes, workers = 2, 2
	w, rt, stop := newWorkload(t, nodes, workers)
	defer stop()
	initial := w.TotalBalance()

	var wg sync.WaitGroup
	clients := make([]*Client, 0, nodes*workers)
	var mu sync.Mutex
	for n := 0; n < nodes; n++ {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(n, k int) {
				defer wg.Done()
				cl := w.NewClient(rt.Executor(n, k), int64(n*10+k))
				for i := 0; i < 200; i++ {
					if _, err := cl.RunOne(); err != nil {
						t.Errorf("txn: %v", err)
						return
					}
				}
				mu.Lock()
				clients = append(clients, cl)
				mu.Unlock()
			}(n, k)
		}
	}
	wg.Wait()

	var net int64
	var txns int64
	for _, cl := range clients {
		net += cl.NetDeposits
		for _, c := range cl.Counts {
			txns += c
		}
	}
	if txns == 0 {
		t.Fatal("no transactions ran")
	}
	got := int64(w.TotalBalance())
	want := int64(initial) + net
	if got != want {
		t.Fatalf("total = %d, want %d (drift %d over %d txns)", got, want, got-want, txns)
	}
}
