// Package smallbank implements the SmallBank OLTP benchmark (Alomari et
// al.; the H-Store variant) used in Section 7.2 of the paper: a simple
// banking schema — savings and checking balances per customer — with six
// transaction types, five of them tiny read-write transactions and one
// read-only. Working sets fit HTM comfortably, so no chopping is needed
// (Section 7.1), and the distributed-transaction fraction is an explicit
// knob (Figure 15 sweeps 1%, 5%, 10%).
//
// Access skew follows the benchmark's convention: a small pool of hot
// accounts receives most requests.
package smallbank

import (
	"fmt"
	"math/rand"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/tx"
)

// kvsPair is one (savings, checking) shard pair populated by Setup.
type kvsPair struct {
	sav, chk *kvs.Table
}

// Table IDs.
const (
	TableSavings  = 10
	TableChecking = 11
)

// Transaction types (Table 5: SP and AMG are the distributed candidates).
type TxnType int

const (
	SendPayment      TxnType = iota // SP  (d, rw)
	Balance                         // BAL (l, ro)
	DepositChecking                 // DC  (l, rw)
	WithdrawChecking                // WC  (l, rw)
	TransactSavings                 // TS  (l, rw)
	Amalgamate                      // AMG (d, rw)
	numTxnTypes
)

func (t TxnType) String() string {
	switch t {
	case SendPayment:
		return "send-payment"
	case Balance:
		return "balance"
	case DepositChecking:
		return "deposit-checking"
	case WithdrawChecking:
		return "withdraw-from-checking"
	case TransactSavings:
		return "transfer-to-savings"
	case Amalgamate:
		return "amalgamate"
	default:
		return fmt.Sprintf("TxnType(%d)", int(t))
	}
}

// mix is the H-Store SmallBank transaction mix (percent).
var mix = map[TxnType]int{
	SendPayment:      25,
	Balance:          15,
	DepositChecking:  15,
	WithdrawChecking: 15,
	TransactSavings:  15,
	Amalgamate:       15,
}

// Config sizes and shapes the workload.
type Config struct {
	Nodes           int
	AccountsPerNode int
	// HotAccounts per node receive HotProb of that node's accesses.
	HotAccounts int
	HotProb     float64
	// DistProb is the probability that SP/AMG pick their second account on
	// a remote node (the Figure 15 knob).
	DistProb float64
	// InitialBalance per account and per sub-account.
	InitialBalance uint64
}

// DefaultConfig mirrors common SmallBank setups, scaled per node.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		AccountsPerNode: 100_000,
		HotAccounts:     100,
		HotProb:         0.9,
		DistProb:        0.01,
		InitialBalance:  10_000,
	}
}

// Workload owns the populated tables.
type Workload struct {
	cfg Config
	rt  *tx.Runtime
}

// NodeOf returns the home node of an account.
func (c Config) NodeOf(acct uint64) int { return int((acct - 1) / uint64(c.AccountsPerNode)) }

// Partitioner returns the tx-layer partitioner for this workload.
func (c Config) Partitioner() tx.Partitioner {
	return func(table int, key uint64) int { return c.NodeOf(key) }
}

// Setup defines and populates the tables on an existing runtime whose
// partitioner must be cfg.Partitioner().
func Setup(rt *tx.Runtime, cfg Config) (*Workload, error) {
	per := cfg.AccountsPerNode
	buckets := per / 4
	if buckets < 16 {
		buckets = 16
	}
	rt.DefineUnordered(TableSavings, buckets, buckets, per+16, 1)
	rt.DefineUnordered(TableChecking, buckets, buckets, per+16, 1)
	for n := 0; n < cfg.Nodes; n++ {
		stores := []*kvsPair{{
			rt.C.Node(n).Unordered(TableSavings),
			rt.C.Node(n).Unordered(TableChecking),
		}}
		// Under replication, seed every backup's replica shard too so a
		// promoted backup starts from a complete copy.
		for _, b := range rt.C.Backups(nil, n) {
			stores = append(stores, &kvsPair{
				rt.C.Node(b).Unordered(cluster.ReplicaRegion(n, TableSavings)),
				rt.C.Node(b).Unordered(cluster.ReplicaRegion(n, TableChecking)),
			})
		}
		base := uint64(n * per)
		for a := 1; a <= per; a++ {
			for _, s := range stores {
				if err := s.sav.Insert(base+uint64(a), []uint64{cfg.InitialBalance}); err != nil {
					return nil, fmt.Errorf("smallbank: populate savings: %w", err)
				}
				if err := s.chk.Insert(base+uint64(a), []uint64{cfg.InitialBalance}); err != nil {
					return nil, fmt.Errorf("smallbank: populate checking: %w", err)
				}
			}
		}
	}
	return &Workload{cfg: cfg, rt: rt}, nil
}

// TotalBalance sums all savings + checking (the conservation invariant for
// the internal transfers; deposits/withdrawals are tracked by the caller).
// Routed by the current replication view: a partition whose primary was
// failed over is audited on the promoted backup's replica shard.
func (w *Workload) TotalBalance() uint64 {
	var total uint64
	for n := 0; n < w.cfg.Nodes; n++ {
		host, savRegion, chkRegion := n, TableSavings, TableChecking
		if owner := w.rt.C.OwnerOf(n); owner != n {
			host = owner
			savRegion = cluster.ReplicaRegion(n, TableSavings)
			chkRegion = cluster.ReplicaRegion(n, TableChecking)
		}
		sav := w.rt.C.Node(host).Unordered(savRegion)
		chk := w.rt.C.Node(host).Unordered(chkRegion)
		base := uint64(n * w.cfg.AccountsPerNode)
		for a := 1; a <= w.cfg.AccountsPerNode; a++ {
			if v, ok := sav.Get(base + uint64(a)); ok {
				total += v[0]
			}
			if v, ok := chk.Get(base + uint64(a)); ok {
				total += v[0]
			}
		}
	}
	return total
}

// Client issues SmallBank transactions from one worker.
type Client struct {
	w   *Workload
	e   *tx.Executor
	rng *rand.Rand
	// Counts per transaction type.
	Counts [numTxnTypes]int64
	// NetDeposits tracks money created/destroyed by DC/WC/TS for the
	// conservation check.
	NetDeposits int64
}

// NewClient binds a client to an executor.
func (w *Workload) NewClient(e *tx.Executor, seed int64) *Client {
	return &Client{w: w, e: e, rng: rand.New(rand.NewSource(seed))}
}

// pickLocal returns an account homed on the client's node, hot-skewed.
func (c *Client) pickLocal() uint64 {
	node := c.e.Worker().Node.ID
	base := uint64(node * c.w.cfg.AccountsPerNode)
	if c.rng.Float64() < c.w.cfg.HotProb {
		return base + uint64(c.rng.Intn(c.w.cfg.HotAccounts)) + 1
	}
	return base + uint64(c.rng.Intn(c.w.cfg.AccountsPerNode)) + 1
}

// pickPartner returns a second account: remote with probability DistProb.
func (c *Client) pickPartner(first uint64) uint64 {
	cfg := c.w.cfg
	node := c.e.Worker().Node.ID
	if cfg.Nodes > 1 && c.rng.Float64() < cfg.DistProb {
		other := c.rng.Intn(cfg.Nodes - 1)
		if other >= node {
			other++
		}
		base := uint64(other * cfg.AccountsPerNode)
		if c.rng.Float64() < cfg.HotProb {
			return base + uint64(c.rng.Intn(cfg.HotAccounts)) + 1
		}
		return base + uint64(c.rng.Intn(cfg.AccountsPerNode)) + 1
	}
	for i := 0; i < 8; i++ {
		if p := c.pickLocal(); p != first {
			return p
		}
	}
	return first%uint64(cfg.Nodes*cfg.AccountsPerNode) + 1
}

// PickType draws a transaction type from the standard mix.
func (c *Client) PickType() TxnType {
	r := c.rng.Intn(100)
	acc := 0
	for t := TxnType(0); t < numTxnTypes; t++ {
		acc += mix[t]
		if r < acc {
			return t
		}
	}
	return Balance
}

// RunOne executes one transaction drawn from the mix.
func (c *Client) RunOne() (TxnType, error) {
	t := c.PickType()
	var err error
	switch t {
	case SendPayment:
		a := c.pickLocal()
		err = c.SendPayment(a, c.pickPartner(a), uint64(c.rng.Intn(50)+1))
	case Balance:
		_, err = c.Balance(c.pickLocal())
	case DepositChecking:
		err = c.DepositChecking(c.pickLocal(), uint64(c.rng.Intn(100)+1))
	case WithdrawChecking:
		err = c.WithdrawChecking(c.pickLocal(), uint64(c.rng.Intn(50)+1))
	case TransactSavings:
		err = c.TransactSavings(c.pickLocal(), uint64(c.rng.Intn(100)+1))
	case Amalgamate:
		a := c.pickLocal()
		err = c.Amalgamate(a, c.pickPartner(a))
	}
	if err == nil {
		c.Counts[t]++
	}
	return t, err
}

// SendPayment moves amt between two checking accounts.
func (c *Client) SendPayment(from, to, amt uint64) error {
	if from == to {
		return nil
	}
	return c.e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableChecking, from); err != nil {
			return err
		}
		if err := t.W(TableChecking, to); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			f, err := lc.Read(TableChecking, from)
			if err != nil {
				return err
			}
			g, err := lc.Read(TableChecking, to)
			if err != nil {
				return err
			}
			if f[0] < amt {
				return nil // insufficient funds: no-op commit
			}
			if err := lc.Write(TableChecking, from, []uint64{f[0] - amt}); err != nil {
				return err
			}
			return lc.Write(TableChecking, to, []uint64{g[0] + amt})
		})
	})
}

// Balance returns savings + checking of one customer (read-only).
func (c *Client) Balance(acct uint64) (uint64, error) {
	var total uint64
	err := c.e.Exec(func(t *tx.Tx) error {
		if err := t.R(TableSavings, acct); err != nil {
			return err
		}
		if err := t.R(TableChecking, acct); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			s, err := lc.Read(TableSavings, acct)
			if err != nil {
				return err
			}
			k, err := lc.Read(TableChecking, acct)
			if err != nil {
				return err
			}
			total = s[0] + k[0]
			return nil
		})
	})
	return total, err
}

// DepositChecking adds amt to checking.
func (c *Client) DepositChecking(acct, amt uint64) error {
	err := c.rmwChecking(acct, func(bal uint64) (uint64, bool) { return bal + amt, true })
	if err == nil {
		c.NetDeposits += int64(amt)
	}
	return err
}

// WithdrawChecking removes amt from checking (overdraft allowed with a
// penalty in the spec; here clamped for invariant simplicity).
func (c *Client) WithdrawChecking(acct, amt uint64) error {
	taken := amt
	err := c.rmwChecking(acct, func(bal uint64) (uint64, bool) {
		if bal < amt {
			taken = bal
			return 0, true
		}
		return bal - amt, true
	})
	if err == nil {
		c.NetDeposits -= int64(taken)
	}
	return err
}

// TransactSavings adds amt to savings.
func (c *Client) TransactSavings(acct, amt uint64) error {
	err := c.e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableSavings, acct); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			s, err := lc.Read(TableSavings, acct)
			if err != nil {
				return err
			}
			return lc.Write(TableSavings, acct, []uint64{s[0] + amt})
		})
	})
	if err == nil {
		c.NetDeposits += int64(amt)
	}
	return err
}

// Amalgamate moves all funds of acct a (savings + checking) into the
// checking account of b.
func (c *Client) Amalgamate(a, b uint64) error {
	if a == b {
		return nil
	}
	return c.e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableSavings, a); err != nil {
			return err
		}
		if err := t.W(TableChecking, a); err != nil {
			return err
		}
		if err := t.W(TableChecking, b); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			s, err := lc.Read(TableSavings, a)
			if err != nil {
				return err
			}
			k, err := lc.Read(TableChecking, a)
			if err != nil {
				return err
			}
			g, err := lc.Read(TableChecking, b)
			if err != nil {
				return err
			}
			sum := s[0] + k[0]
			if err := lc.Write(TableSavings, a, []uint64{0}); err != nil {
				return err
			}
			if err := lc.Write(TableChecking, a, []uint64{0}); err != nil {
				return err
			}
			return lc.Write(TableChecking, b, []uint64{g[0] + sum})
		})
	})
}

func (c *Client) rmwChecking(acct uint64, f func(uint64) (uint64, bool)) error {
	return c.e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableChecking, acct); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			v, err := lc.Read(TableChecking, acct)
			if err != nil {
				return err
			}
			nv, ok := f(v[0])
			if !ok {
				return nil
			}
			return lc.Write(TableChecking, acct, []uint64{nv})
		})
	})
}
