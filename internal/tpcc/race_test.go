package tpcc

import (
	"sync"
	"testing"
)

// TestConcurrentDeliveryNoDoubleDelivery: two clients running delivery on
// the same warehouse must never deliver the same order twice — the
// district's next-delivery sequence field arbitrates via HTM conflicts and
// the recon-verify retry.
func TestConcurrentDeliveryNoDoubleDelivery(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 2)
	defer stop()
	node := rt.C.Node(0)
	undelivered := node.Ordered(TableNewOrder).Len()
	if undelivered < 2 {
		t.Fatalf("need >= 2 undelivered orders, have %d", undelivered)
	}

	var wg sync.WaitGroup
	delivered := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := rt.Executor(0, i)
			n, err := w.Delivery(e, 1, i+1, uint64(i+1))
			if err != nil {
				t.Errorf("delivery %d: %v", i, err)
				return
			}
			delivered[i] = n
		}(i)
	}
	wg.Wait()

	total := delivered[0] + delivered[1]
	if node.Ordered(TableNewOrder).Len() != undelivered-total {
		t.Fatalf("NEW-ORDER rows %d != %d - %d (double delivery?)",
			node.Ordered(TableNewOrder).Len(), undelivered, total)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("consistency after concurrent delivery: %v", err)
	}
}

// TestOrderStatusSeesNewOrder: order-status returns the order a new-order
// just created, and keeps working after that order is delivered.
func TestOrderStatusSeesNewOrder(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	oID, err := w.NewOrder(e, 1, 2, 7, []OrderLineInput{{ItemID: 4, SupplyW: 1, Quantity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.OrderStatus(e, 1, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != oID {
		t.Fatalf("order-status = %d, want %d", got, oID)
	}
	// Deliver everything in district 2, then order-status must still work.
	for i := 0; i < 20; i++ {
		if n, err := w.Delivery(e, 1, 3, uint64(100+i)); err != nil {
			t.Fatal(err)
		} else if n == 0 {
			break
		}
	}
	if got, err := w.OrderStatus(e, 1, 2, 7); err != nil || got != oID {
		t.Fatalf("order-status after delivery = %d,%v", got, err)
	}
}

// TestStockLevelReflectsNewOrders: stock consumed by new-orders shows up in
// the stock-level count.
func TestStockLevelReflectsNewOrders(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	node := rt.C.Node(0)

	// Drive item 1's stock just below 12 with repeated orders.
	for {
		sv, _ := node.Unordered(TableStock).Get(SKey(1, 1))
		if sv[SQuantity] < 12 {
			break
		}
		if _, err := w.NewOrder(e, 1, 1, 1,
			[]OrderLineInput{{ItemID: 1, SupplyW: 1, Quantity: 9}}); err != nil {
			t.Fatal(err)
		}
	}
	low, err := w.StockLevel(e, 1, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if low == 0 {
		t.Fatal("stock-level missed the depleted item")
	}
}

// TestPaymentByLastNameEndToEnd exercises the reconnaissance-query path.
func TestPaymentByLastNameEndToEnd(t *testing.T) {
	w, rt, stop := newTPCC(t, 2, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	cl := w.NewClient(e, 1, 99)
	for i := 0; i < 40; i++ {
		if err := cl.RunPayment(); err != nil {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// History rows were created (one per payment).
	var hist int
	for n := 0; n < 2; n++ {
		hist += rt.C.Node(n).Unordered(TableHistory).Len()
	}
	if hist != 40 {
		t.Fatalf("history rows = %d, want 40", hist)
	}
}
