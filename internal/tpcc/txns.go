package tpcc

import (
	"errors"

	"drtm/internal/chopping"
	"drtm/internal/tx"
)

// OrderLineInput is one line of a new-order request.
type OrderLineInput struct {
	ItemID   int
	SupplyW  int
	Quantity int
}

// NewOrder executes the NEW transaction at warehouse w (the client's home
// warehouse), district d, for customer c, ordering the given lines.
// Cross-warehouse supply lines make it a distributed transaction: their
// STOCK records are locked and fetched with one-sided RDMA in the Start
// phase; everything else (district sequence allocation, order/order-line
// inserts) is local. Returns the allocated order ID.
func (w *Workload) NewOrder(e *tx.Executor, wID, d, c int, lines []OrderLineInput) (int, error) {
	var oID int
	err := e.Exec(func(t *tx.Tx) error {
		if err := t.R(TableWarehouse, WKey(wID)); err != nil {
			return err
		}
		if err := t.W(TableDistrict, DKey(wID, d)); err != nil {
			return err
		}
		if err := t.R(TableCustomer, CKey(wID, d, c)); err != nil {
			return err
		}
		for _, l := range lines {
			if err := t.R(TableItem, IKey(l.ItemID)); err != nil {
				return err
			}
			if err := t.W(TableStock, SKey(l.SupplyW, l.ItemID)); err != nil {
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error {
			dv, err := lc.Read(TableDistrict, DKey(wID, d))
			if err != nil {
				return err
			}
			oID = int(dv[DNextOID])
			nd := append([]uint64(nil), dv...)
			nd[DNextOID]++
			if err := lc.Write(TableDistrict, DKey(wID, d), nd); err != nil {
				return err
			}
			if _, err := lc.Read(TableWarehouse, WKey(wID)); err != nil {
				return err
			}
			if _, err := lc.Read(TableCustomer, CKey(wID, d, c)); err != nil {
				return err
			}

			allLocal := uint64(1)
			for ol, l := range lines {
				iv, err := lc.Read(TableItem, IKey(l.ItemID))
				if err != nil {
					// TPC-C: 1% of new-orders carry an unused item number
					// and must roll back (the user-initiated abort).
					if errors.Is(err, tx.ErrNotFound) {
						return tx.ErrUserAbort
					}
					return err
				}
				sv, err := lc.Read(TableStock, SKey(l.SupplyW, l.ItemID))
				if err != nil {
					return err
				}
				ns := append([]uint64(nil), sv...)
				if ns[SQuantity] >= uint64(l.Quantity)+10 {
					ns[SQuantity] -= uint64(l.Quantity)
				} else {
					ns[SQuantity] = ns[SQuantity] - uint64(l.Quantity) + 91
				}
				ns[SYtd] += uint64(l.Quantity)
				ns[SOrderCnt]++
				if l.SupplyW != wID {
					ns[SRemoteCnt]++
					allLocal = 0
				}
				if err := lc.Write(TableStock, SKey(l.SupplyW, l.ItemID), ns); err != nil {
					return err
				}

				olVal := make([]uint64, OLValueWords)
				olVal[OLIID] = uint64(l.ItemID)
				olVal[OLSupplyW] = uint64(l.SupplyW)
				olVal[OLQuantity] = uint64(l.Quantity)
				olVal[OLAmount] = uint64(l.Quantity) * iv[IPrice]
				lc.Insert(TableOrderLine, OLKey(wID, d, oID, ol+1), olVal)
			}

			oVal := make([]uint64, OValueWords)
			oVal[OCID] = uint64(c)
			oVal[OOlCnt] = uint64(len(lines))
			oVal[OAllLocal] = allLocal
			lc.Insert(TableOrder, OKey(wID, d, oID), oVal)
			lc.Insert(TableNewOrder, OKey(wID, d, oID), []uint64{1})
			lc.Insert(TableOrderCust, OCKey(wID, d, c, oID), []uint64{uint64(oID)})
			return nil
		})
	})
	return oID, err
}

// Payment executes PAY: the customer pays amount at warehouse w, district
// d; the customer may belong to a remote warehouse (cW, cD) — the
// cross-warehouse case of Table 5 — whose CUSTOMER record is then written
// through one-sided RDMA.
func (w *Workload) Payment(e *tx.Executor, wID, d, cW, cD, c int, amount uint64, hSeq uint64) error {
	return e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableWarehouse, WKey(wID)); err != nil {
			return err
		}
		if err := t.W(TableDistrict, DKey(wID, d)); err != nil {
			return err
		}
		if err := t.W(TableCustomer, CKey(cW, cD, c)); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			wv, err := lc.Read(TableWarehouse, WKey(wID))
			if err != nil {
				return err
			}
			nw := append([]uint64(nil), wv...)
			nw[WYtd] += amount
			if err := lc.Write(TableWarehouse, WKey(wID), nw); err != nil {
				return err
			}

			dv, err := lc.Read(TableDistrict, DKey(wID, d))
			if err != nil {
				return err
			}
			ndv := append([]uint64(nil), dv...)
			ndv[DYtd] += amount
			if err := lc.Write(TableDistrict, DKey(wID, d), ndv); err != nil {
				return err
			}

			cv, err := lc.Read(TableCustomer, CKey(cW, cD, c))
			if err != nil {
				return err
			}
			nc := append([]uint64(nil), cv...)
			nc[CBalance] = i2u(u2i(nc[CBalance]) - int64(amount))
			nc[CYtdPayment] += amount
			nc[CPaymentCnt]++
			if err := lc.Write(TableCustomer, CKey(cW, cD, c), nc); err != nil {
				return err
			}

			hVal := make([]uint64, HValueWords)
			hVal[0] = amount
			hVal[1] = uint64(wID)
			hVal[2] = uint64(d)
			hVal[3] = uint64(CKey(cW, cD, c))
			lc.Insert(TableHistory, HKey(wID, e.Worker().Node.ID, e.Worker().ID, hSeq), hVal)
			return nil
		})
	})
}

// OrderStatus executes OS (read-only, local): the customer's latest order
// and its order lines, via the separate lease-based read-only scheme.
func (w *Workload) OrderStatus(e *tx.Executor, wID, d, c int) (int, error) {
	var oID int
	err := e.ExecRO(func(ro *tx.RO) error {
		oID = 0
		if _, err := ro.Read(TableCustomer, CKey(wID, d, c)); err != nil {
			return err
		}
		ck := CKey(wID, d, c)
		idx := ro.ScanLocalDesc(TableOrderCust, ck<<24, ck<<24|0xFFFFFF, 1)
		if len(idx) == 0 {
			return nil // customer has no orders yet
		}
		oID = int(idx[0].Key & 0xFFFFFF)
		ov, err := ro.Read(TableOrder, OKey(wID, d, oID))
		if err != nil {
			return err
		}
		for ol := 1; ol <= int(ov[OOlCnt]); ol++ {
			if _, err := ro.Read(TableOrderLine, OLKey(wID, d, oID, ol)); err != nil {
				return err
			}
		}
		return nil
	})
	return oID, err
}

// Delivery executes DLY as a chopped transaction: one piece per district
// (the paper chops TPC-C so each piece fits HTM capacity). Each piece
// claims the district's oldest undelivered order via the
// next-delivery-order sequence field, marks it delivered, sums its order
// lines into the customer balance, and removes the NEW-ORDER entry.
// Returns the number of orders delivered.
func (w *Workload) Delivery(e *tx.Executor, wID, carrier int, parent uint64) (int, error) {
	delivered := 0
	var pieces []chopping.PieceFunc
	for d := 1; d <= w.cfg.Districts; d++ {
		d := d
		pieces = append(pieces, func(e *tx.Executor, t *tx.Tx) error {
			// Reconnaissance (Section 4.1): discover the dependent parts of
			// the read/write set — the order to deliver and its line count —
			// then verify them inside the transaction.
			node := w.rt.C.Node(e.Worker().Node.ID)
			dv, ok := node.Unordered(TableDistrict).Get(DKey(wID, d))
			if !ok {
				return tx.ErrNotFound
			}
			oID := int(dv[DNextDeliv])
			if uint64(oID) >= dv[DNextOID] {
				return t.Execute(func(lc *tx.Local) error { return nil }) // nothing to deliver
			}
			ov, ok := node.Ordered(TableOrder).Get(OKey(wID, d, oID))
			if !ok {
				return tx.ErrNotFound
			}
			olCnt := int(ov[OOlCnt])
			cID := int(ov[OCID])

			if err := t.W(TableDistrict, DKey(wID, d)); err != nil {
				return err
			}
			if err := t.W(TableOrder, OKey(wID, d, oID)); err != nil {
				return err
			}
			if err := t.W(TableCustomer, CKey(wID, d, cID)); err != nil {
				return err
			}
			for ol := 1; ol <= olCnt; ol++ {
				if err := t.W(TableOrderLine, OLKey(wID, d, oID, ol)); err != nil {
					return err
				}
			}
			did := false
			err := t.Execute(func(lc *tx.Local) error {
				did = false
				cur, err := lc.Read(TableDistrict, DKey(wID, d))
				if err != nil {
					return err
				}
				if int(cur[DNextDeliv]) != oID {
					return tx.ErrRetry // another delivery won the race; re-recon
				}
				nd := append([]uint64(nil), cur...)
				nd[DNextDeliv]++
				if err := lc.Write(TableDistrict, DKey(wID, d), nd); err != nil {
					return err
				}

				ovv, err := lc.Read(TableOrder, OKey(wID, d, oID))
				if err != nil {
					return err
				}
				no := append([]uint64(nil), ovv...)
				no[OCarrier] = uint64(carrier)
				if err := lc.Write(TableOrder, OKey(wID, d, oID), no); err != nil {
					return err
				}

				var total uint64
				for ol := 1; ol <= olCnt; ol++ {
					olv, err := lc.Read(TableOrderLine, OLKey(wID, d, oID, ol))
					if err != nil {
						return err
					}
					total += olv[OLAmount]
					nol := append([]uint64(nil), olv...)
					nol[OLDeliveryD] = 1
					if err := lc.Write(TableOrderLine, OLKey(wID, d, oID, ol), nol); err != nil {
						return err
					}
				}

				cv, err := lc.Read(TableCustomer, CKey(wID, d, cID))
				if err != nil {
					return err
				}
				nc := append([]uint64(nil), cv...)
				nc[CBalance] = i2u(u2i(nc[CBalance]) + int64(total))
				nc[CDeliveryCnt]++
				if err := lc.Write(TableCustomer, CKey(wID, d, cID), nc); err != nil {
					return err
				}

				lc.Delete(TableNewOrder, OKey(wID, d, oID))
				did = true
				return nil
			})
			if err == nil && did {
				delivered++
			}
			return err
		})
	}
	err := chopping.Run(e, parent, pieces)
	return delivered, err
}

// StockLevel executes SL (read-only, local): count distinct items of the
// district's last 20 orders whose stock is below the threshold. Its read
// set (hundreds of records) is exactly why the paper gives read-only
// transactions their own non-HTM scheme (Section 4.5).
func (w *Workload) StockLevel(e *tx.Executor, wID, d int, threshold uint64) (int, error) {
	low := 0
	err := e.ExecRO(func(ro *tx.RO) error {
		low = 0
		dv, err := ro.Read(TableDistrict, DKey(wID, d))
		if err != nil {
			return err
		}
		nextO := int(dv[DNextOID])
		from := nextO - 20
		if from < 1 {
			from = 1
		}
		loKey := (DKey(wID, d)<<32 | uint64(from)) << 4
		hiKey := (DKey(wID, d)<<32 | uint64(nextO)) << 4
		seen := make(map[uint64]bool)
		for _, ko := range ro.ScanLocal(TableOrderLine, loKey, hiKey, 0) {
			olv, err := ro.ReadAtLocal(TableOrderLine, ko.Off)
			if err != nil {
				return err
			}
			seen[olv[OLIID]] = true
		}
		for iID := range seen {
			sv, err := ro.Read(TableStock, SKey(wID, int(iID)))
			if err != nil {
				return err
			}
			if sv[SQuantity] < threshold {
				low++
			}
		}
		return nil
	})
	return low, err
}
