// Package tpcc implements the TPC-C benchmark as used in the paper's
// evaluation (Section 7): the full nine-table schema, all five transaction
// types, warehouse partitioning, the cross-warehouse access knobs of
// Figures 12-16, and the store mapping the paper describes — warehouse,
// district, customer, item, stock and history in HTM/RDMA-friendly hash
// tables; order, new-order and order-line in ordered (B+ tree) stores
// accessed only locally (Section 6.5).
//
// The read-only ITEM table is replicated on every node (standard TPC-C
// practice; the partitioner returns -1 for it). The ORDER-BY-CUSTOMER
// ordered index supports order-status's "latest order of customer" query.
package tpcc

import (
	"fmt"
	"math/rand"

	"drtm/internal/tx"
)

// Table IDs.
const (
	TableWarehouse = 20
	TableDistrict  = 21
	TableCustomer  = 22
	TableHistory   = 23
	TableItem      = 24
	TableStock     = 25
	TableOrder     = 26 // ordered
	TableNewOrder  = 27 // ordered
	TableOrderLine = 28 // ordered
	TableOrderCust = 29 // ordered secondary index: customer -> order IDs
)

// Value layouts (word indices). Field counts are padded to realistic
// record footprints.
const (
	WValueWords = 8 // [ytd, tax, filler...]
	WYtd        = 0
	WTax        = 1

	DValueWords = 8 // [next_o_id, next_deliv_o_id, ytd, tax, filler...]
	DNextOID    = 0
	DNextDeliv  = 1
	DYtd        = 2
	DTax        = 3

	CValueWords  = 12 // [balance(int64 bits), ytd_payment, payment_cnt, delivery_cnt, credit, discount, filler...]
	CBalance     = 0
	CYtdPayment  = 1
	CPaymentCnt  = 2
	CDeliveryCnt = 3
	CCredit      = 4
	CDiscount    = 5

	SValueWords = 8 // [quantity, ytd, order_cnt, remote_cnt, filler...]
	SQuantity   = 0
	SYtd        = 1
	SOrderCnt   = 2
	SRemoteCnt  = 3

	IValueWords = 8 // [price, im_id, filler...]
	IPrice      = 0

	OValueWords = 8 // [c_id, entry_d, carrier_id, ol_cnt, all_local]
	OCID        = 0
	OEntryD     = 1
	OCarrier    = 2
	OOlCnt      = 3
	OAllLocal   = 4

	NOValueWords = 1

	OLValueWords = 8 // [i_id, supply_w, quantity, amount, delivery_d]
	OLIID        = 0
	OLSupplyW    = 1
	OLQuantity   = 2
	OLAmount     = 3
	OLDeliveryD  = 4

	HValueWords = 4 // [amount, w, d, c]

	OCValueWords = 1 // [o_id]
)

// Key encodings. Warehouses are numbered 1..W globally, districts 1..10,
// customers 1..CustomersPerDistrict, items 1..Items.
func WKey(w int) uint64       { return uint64(w) }
func DKey(w, d int) uint64    { return uint64(w)*16 + uint64(d) }
func CKey(w, d, c int) uint64 { return DKey(w, d)*4096 + uint64(c) }
func SKey(w, i int) uint64    { return uint64(w)<<20 | uint64(i) }
func IKey(i int) uint64       { return uint64(i) }
func OKey(w, d, o int) uint64 { return DKey(w, d)<<32 | uint64(o) }
func OLKey(w, d, o, ol int) uint64 {
	return (DKey(w, d)<<32|uint64(o))<<4 | uint64(ol)
}
func OCKey(w, d, c, o int) uint64 { return CKey(w, d, c)<<24 | uint64(o) }

// Decoding helpers for partitioning.
func warehouseOfKey(table int, key uint64) int {
	switch table {
	case TableWarehouse:
		return int(key)
	case TableDistrict:
		return int(key / 16)
	case TableCustomer:
		return int(key / 4096 / 16)
	case TableStock:
		return int(key >> 20)
	case TableHistory:
		return int(key >> 48)
	case TableOrder, TableNewOrder:
		return int((key >> 32) / 16)
	case TableOrderLine:
		return int((key >> 36) / 16)
	case TableOrderCust:
		return int((key >> 24) / 4096 / 16)
	default:
		panic(fmt.Sprintf("tpcc: unknown warehouse-keyed table %d", table))
	}
}

// HKey builds a globally unique history key carrying the home warehouse.
func HKey(w int, node, worker int, seq uint64) uint64 {
	return uint64(w)<<48 | uint64(node)<<40 | uint64(worker)<<32 | (seq & 0xFFFFFFFF)
}

// Config sizes the workload.
type Config struct {
	Nodes             int
	WarehousesPerNode int
	Districts         int // per warehouse (spec: 10)
	CustomersPerDist  int // spec: 3000
	Items             int // spec: 100000
	// InitialOrders per district pre-populates order history so that
	// order-status, delivery and stock-level have work immediately.
	InitialOrders int
	// ExtraOrdersPerDistrict sizes ordered-table capacity headroom for the
	// orders a run will insert.
	ExtraOrdersPerDistrict int
	// CrossNewOrderPct is the per-item probability (percent) that a
	// new-order line names a remote warehouse (spec/default: 1).
	CrossNewOrderPct int
	// CrossPaymentPct is the probability (percent) that payment's customer
	// belongs to a remote warehouse (spec/default: 15).
	CrossPaymentPct int
}

// DefaultConfig returns a paper-like configuration scaled for simulation:
// spec ratios with smaller per-district populations (tests and experiments
// override what they need).
func DefaultConfig(nodes, warehousesPerNode int) Config {
	return Config{
		Nodes:                  nodes,
		WarehousesPerNode:      warehousesPerNode,
		Districts:              10,
		CustomersPerDist:       120,
		Items:                  1000,
		InitialOrders:          30,
		ExtraOrdersPerDistrict: 3000,
		CrossNewOrderPct:       1,
		CrossPaymentPct:        15,
	}
}

// Warehouses returns the global warehouse count.
func (c Config) Warehouses() int { return c.Nodes * c.WarehousesPerNode }

// NodeOfWarehouse maps a warehouse to its home node.
func (c Config) NodeOfWarehouse(w int) int { return (w - 1) / c.WarehousesPerNode }

// Partitioner returns the tx-layer partitioner: warehouse-keyed tables go
// to the warehouse's node; ITEM is replicated (always local).
func (c Config) Partitioner() tx.Partitioner {
	return func(table int, key uint64) int {
		if table == TableItem {
			return -1
		}
		return c.NodeOfWarehouse(warehouseOfKey(table, key))
	}
}

// Workload owns the populated TPC-C database.
type Workload struct {
	cfg Config
	rt  *tx.Runtime

	// lastName[node] maps (w,d,lastname-bucket) to sorted customer IDs: the
	// static customer secondary index (customers are never inserted at run
	// time in TPC-C).
	lastName []map[uint64][]int
}

const lastNameBuckets = 100

func lastNameOf(c int) uint64 { return uint64(c % lastNameBuckets) }

func lnIdx(w, d int, ln uint64) uint64 { return DKey(w, d)*lastNameBuckets + ln }

// Setup defines and populates all tables. The runtime must use
// cfg.Partitioner().
func Setup(rt *tx.Runtime, cfg Config) (*Workload, error) {
	if cfg.Districts <= 0 || cfg.Districts > 10 {
		return nil, fmt.Errorf("tpcc: districts must be 1..10")
	}
	wPer := cfg.WarehousesPerNode
	dPer := wPer * cfg.Districts
	cPer := dPer * cfg.CustomersPerDist
	sPer := wPer * cfg.Items
	ordersPer := dPer * (cfg.InitialOrders + cfg.ExtraOrdersPerDistrict)
	olPer := ordersPer * 15

	rt.DefineUnordered(TableWarehouse, 16, 16, wPer+4, WValueWords)
	rt.DefineUnordered(TableDistrict, 64, 64, dPer+4, DValueWords)
	rt.DefineUnordered(TableCustomer, cPer/4+16, cPer/4+16, cPer+4, CValueWords)
	rt.DefineUnordered(TableHistory, cPer/2+16, cPer/2+16, ordersPer+cPer, HValueWords)
	rt.DefineUnordered(TableItem, cfg.Items/4+16, cfg.Items/4+16, cfg.Items+4, IValueWords)
	rt.DefineUnordered(TableStock, sPer/4+16, sPer/4+16, sPer+4, SValueWords)
	rt.DefineOrdered(TableOrder, ordersPer+4, OValueWords)
	rt.DefineOrdered(TableNewOrder, ordersPer+4, NOValueWords)
	rt.DefineOrdered(TableOrderLine, olPer+4, OLValueWords)
	rt.DefineOrdered(TableOrderCust, ordersPer+4, OCValueWords)

	w := &Workload{cfg: cfg, rt: rt, lastName: make([]map[uint64][]int, cfg.Nodes)}
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < cfg.Nodes; n++ {
		w.lastName[n] = make(map[uint64][]int)
		if err := w.populateNode(n, rng); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (w *Workload) populateNode(n int, rng *rand.Rand) error {
	cfg := w.cfg
	node := w.rt.C.Node(n)

	// Items are replicated: full copy per node.
	items := node.Unordered(TableItem)
	for i := 1; i <= cfg.Items; i++ {
		val := make([]uint64, IValueWords)
		val[IPrice] = uint64(rng.Intn(9900) + 100) // cents
		if err := items.Insert(IKey(i), val); err != nil {
			return err
		}
	}

	for wi := 0; wi < cfg.WarehousesPerNode; wi++ {
		wID := n*cfg.WarehousesPerNode + wi + 1
		wVal := make([]uint64, WValueWords)
		wVal[WTax] = uint64(rng.Intn(2000)) // basis points
		if err := node.Unordered(TableWarehouse).Insert(WKey(wID), wVal); err != nil {
			return err
		}
		for i := 1; i <= cfg.Items; i++ {
			sVal := make([]uint64, SValueWords)
			sVal[SQuantity] = uint64(rng.Intn(91) + 10)
			if err := node.Unordered(TableStock).Insert(SKey(wID, i), sVal); err != nil {
				return err
			}
		}
		for d := 1; d <= cfg.Districts; d++ {
			if err := w.populateDistrict(n, wID, d, rng); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Workload) populateDistrict(n, wID, d int, rng *rand.Rand) error {
	cfg := w.cfg
	node := w.rt.C.Node(n)

	for c := 1; c <= cfg.CustomersPerDist; c++ {
		cVal := make([]uint64, CValueWords)
		cVal[CDiscount] = uint64(rng.Intn(5000))
		if rng.Intn(10) == 0 {
			cVal[CCredit] = 1 // BC credit
		}
		if err := node.Unordered(TableCustomer).Insert(CKey(wID, d, c), cVal); err != nil {
			return err
		}
		ln := lnIdx(wID, d, lastNameOf(c))
		w.lastName[n][ln] = append(w.lastName[n][ln], c)
	}

	// Initial order history: the last third is undelivered (in NEW-ORDER).
	undeliveredFrom := cfg.InitialOrders*2/3 + 1
	for o := 1; o <= cfg.InitialOrders; o++ {
		cID := rng.Intn(cfg.CustomersPerDist) + 1
		olCnt := rng.Intn(11) + 5
		oVal := make([]uint64, OValueWords)
		oVal[OCID] = uint64(cID)
		oVal[OOlCnt] = uint64(olCnt)
		oVal[OAllLocal] = 1
		if o < undeliveredFrom {
			oVal[OCarrier] = uint64(rng.Intn(10) + 1)
		}
		if err := node.Ordered(TableOrder).Insert(OKey(wID, d, o), oVal); err != nil {
			return err
		}
		if err := node.Ordered(TableOrderCust).Insert(OCKey(wID, d, cID, o),
			[]uint64{uint64(o)}); err != nil {
			return err
		}
		for ol := 1; ol <= olCnt; ol++ {
			olVal := make([]uint64, OLValueWords)
			olVal[OLIID] = uint64(rng.Intn(cfg.Items) + 1)
			olVal[OLSupplyW] = uint64(wID)
			olVal[OLQuantity] = 5
			olVal[OLAmount] = uint64(rng.Intn(9900) + 100)
			if o < undeliveredFrom {
				olVal[OLDeliveryD] = 1
			}
			if err := node.Ordered(TableOrderLine).Insert(OLKey(wID, d, o, ol), olVal); err != nil {
				return err
			}
		}
		if o >= undeliveredFrom {
			if err := node.Ordered(TableNewOrder).Insert(OKey(wID, d, o), []uint64{1}); err != nil {
				return err
			}
		}
	}

	dVal := make([]uint64, DValueWords)
	dVal[DNextOID] = uint64(cfg.InitialOrders + 1)
	dVal[DNextDeliv] = uint64(undeliveredFrom)
	dVal[DTax] = uint64(rng.Intn(2000))
	return node.Unordered(TableDistrict).Insert(DKey(wID, d), dVal)
}

// LookupByLastName resolves a (w, d, lastname-bucket) to the spec's
// midpoint customer. When the customer's warehouse is remote, the query
// ships to its home node over verbs (the paper's reconnaissance-query note
// in Section 4.1) — the static index makes the result stable.
func (w *Workload) LookupByLastName(e *tx.Executor, wID, d int, ln uint64) (int, bool) {
	node := w.cfg.NodeOfWarehouse(wID)
	if node != e.Worker().Node.ID {
		// Charge a verbs round trip for the remote index query.
		e.Worker().VClock.Charge(w.rt.C.Fabric.Model().VerbsMsg(32) * 2)
	}
	ids := w.lastName[node][lnIdx(wID, d, ln)]
	if len(ids) == 0 {
		return 0, false
	}
	return ids[len(ids)/2], true
}

// Runtime returns the underlying transaction runtime.
func (w *Workload) Runtime() *tx.Runtime { return w.rt }

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// Signed balance helpers (customer balances go negative per the spec).
func u2i(u uint64) int64 { return int64(u) }
func i2u(i int64) uint64 { return uint64(i) }
