package tpcc

import (
	"sync"
	"testing"

	"drtm/internal/cluster"
	"drtm/internal/tx"
)

func testCfg(nodes, wPerNode int) Config {
	cfg := DefaultConfig(nodes, wPerNode)
	cfg.Districts = 3
	cfg.CustomersPerDist = 30
	cfg.Items = 100
	cfg.InitialOrders = 9
	cfg.ExtraOrdersPerDistrict = 500
	return cfg
}

func newTPCC(t testing.TB, nodes, wPerNode, workers int) (*Workload, *tx.Runtime, func()) {
	t.Helper()
	ccfg := cluster.DefaultConfig(nodes, workers)
	ccfg.LeaseMicros = 5_000
	ccfg.ROLeaseMicros = 10_000
	c := cluster.New(ccfg)
	c.Start()
	cfg := testCfg(nodes, wPerNode)
	rt := tx.NewRuntime(c, cfg.Partitioner())
	w, err := Setup(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, rt, c.Stop
}

func TestKeyEncodings(t *testing.T) {
	cfg := testCfg(2, 2)
	cases := []struct {
		table int
		key   uint64
		want  int // warehouse
	}{
		{TableWarehouse, WKey(3), 3},
		{TableDistrict, DKey(3, 7), 3},
		{TableCustomer, CKey(4, 10, 2999), 4},
		{TableStock, SKey(4, 99999), 4},
		{TableOrder, OKey(3, 10, 1<<20), 3},
		{TableOrderLine, OLKey(3, 10, 1<<20, 15), 3},
		{TableOrderCust, OCKey(4, 9, 2999, 1<<20), 4},
		{TableHistory, HKey(2, 1, 7, 123), 2},
	}
	for _, c := range cases {
		if got := warehouseOfKey(c.table, c.key); got != c.want {
			t.Errorf("warehouseOfKey(%d, %x) = %d, want %d", c.table, c.key, got, c.want)
		}
	}
	if cfg.Partitioner()(TableItem, 5) != -1 {
		t.Error("ITEM must be replicated (partition -1)")
	}
	if cfg.Partitioner()(TableWarehouse, WKey(3)) != 1 {
		t.Error("warehouse 3 should live on node 1 with 2 per node")
	}
}

func TestSetupConsistent(t *testing.T) {
	w, _, stop := newTPCC(t, 2, 1, 1)
	defer stop()
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("fresh database inconsistent: %v", err)
	}
}

func TestNewOrderBasic(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	lines := []OrderLineInput{{ItemID: 1, SupplyW: 1, Quantity: 3}, {ItemID: 2, SupplyW: 1, Quantity: 1}}
	oID, err := w.NewOrder(e, 1, 1, 1, lines)
	if err != nil {
		t.Fatal(err)
	}
	node := rt.C.Node(0)
	ov, ok := node.Ordered(TableOrder).Get(OKey(1, 1, oID))
	if !ok || ov[OCID] != 1 || ov[OOlCnt] != 2 || ov[OAllLocal] != 1 {
		t.Fatalf("order = %v,%v", ov, ok)
	}
	if _, ok := node.Ordered(TableNewOrder).Get(OKey(1, 1, oID)); !ok {
		t.Fatal("NEW-ORDER row missing")
	}
	olv, ok := node.Ordered(TableOrderLine).Get(OLKey(1, 1, oID, 1))
	if !ok || olv[OLIID] != 1 || olv[OLQuantity] != 3 {
		t.Fatalf("order line = %v,%v", olv, ok)
	}
	// Stock decremented.
	sv, _ := node.Unordered(TableStock).Get(SKey(1, 1))
	if sv[SYtd] != 3 || sv[SOrderCnt] != 1 {
		t.Fatalf("stock = %v", sv)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderCrossWarehouse(t *testing.T) {
	w, rt, stop := newTPCC(t, 2, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	// Supply from warehouse 2 (node 1): a distributed transaction.
	lines := []OrderLineInput{{ItemID: 1, SupplyW: 2, Quantity: 5}}
	if _, err := w.NewOrder(e, 1, 1, 1, lines); err != nil {
		t.Fatal(err)
	}
	sv, _ := rt.C.Node(1).Unordered(TableStock).Get(SKey(2, 1))
	if sv[SRemoteCnt] != 1 || sv[SYtd] != 5 {
		t.Fatalf("remote stock = %v", sv)
	}
}

func TestNewOrderInvalidItemRollsBack(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	node := rt.C.Node(0)
	dBefore, _ := node.Unordered(TableDistrict).Get(DKey(1, 1))
	lines := []OrderLineInput{
		{ItemID: 1, SupplyW: 1, Quantity: 1},
		{ItemID: w.cfg.Items + 1, SupplyW: 1, Quantity: 1}, // unused item
	}
	_, err := w.NewOrder(e, 1, 1, 1, lines)
	if err != tx.ErrUserAbort {
		t.Fatalf("err = %v, want ErrUserAbort", err)
	}
	dAfter, _ := node.Unordered(TableDistrict).Get(DKey(1, 1))
	if dAfter[DNextOID] != dBefore[DNextOID] {
		t.Fatal("rolled-back new-order advanced next_o_id")
	}
	sv, _ := node.Unordered(TableStock).Get(SKey(1, 1))
	if sv[SOrderCnt] != 0 {
		t.Fatal("rolled-back new-order touched stock")
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentLocalAndRemote(t *testing.T) {
	w, rt, stop := newTPCC(t, 2, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	// Local customer.
	if err := w.Payment(e, 1, 1, 1, 1, 1, 1000, 1); err != nil {
		t.Fatal(err)
	}
	// Remote customer (warehouse 2 lives on node 1).
	if err := w.Payment(e, 1, 1, 2, 1, 1, 500, 2); err != nil {
		t.Fatal(err)
	}
	wv, _ := rt.C.Node(0).Unordered(TableWarehouse).Get(WKey(1))
	if wv[WYtd] != 1500 {
		t.Fatalf("w_ytd = %d", wv[WYtd])
	}
	cv, _ := rt.C.Node(1).Unordered(TableCustomer).Get(CKey(2, 1, 1))
	if u2i(cv[CBalance]) != -500 || cv[CYtdPayment] != 500 || cv[CPaymentCnt] != 1 {
		t.Fatalf("remote customer = %v", cv)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if w.TotalPayments() != 1500 {
		t.Fatalf("TotalPayments = %d", w.TotalPayments())
	}
}

func TestOrderStatus(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	// Create an order for customer 5 so the latest is well-defined.
	oID, err := w.NewOrder(e, 1, 1, 5, []OrderLineInput{{ItemID: 3, SupplyW: 1, Quantity: 2}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.OrderStatus(e, 1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != oID {
		t.Fatalf("latest order = %d, want %d", got, oID)
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	node := rt.C.Node(0)
	undelivered := node.Ordered(TableNewOrder).Len()
	if undelivered == 0 {
		t.Fatal("setup produced no undelivered orders")
	}
	n, err := w.Delivery(e, 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != w.cfg.Districts {
		t.Fatalf("delivered %d, want %d (one per district)", n, w.cfg.Districts)
	}
	if node.Ordered(TableNewOrder).Len() != undelivered-n {
		t.Fatalf("NEW-ORDER rows = %d, want %d",
			node.Ordered(TableNewOrder).Len(), undelivered-n)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestStockLevel(t *testing.T) {
	w, rt, stop := newTPCC(t, 1, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	low, err := w.StockLevel(e, 1, 1, 200) // threshold above max: all low
	if err != nil {
		t.Fatal(err)
	}
	if low == 0 {
		t.Fatal("no items counted; order lines not scanned?")
	}
	none, err := w.StockLevel(e, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if none != 0 {
		t.Fatalf("threshold 0 counted %d items", none)
	}
}

// TestMixedConcurrent runs the full mix on multiple nodes/workers and then
// checks every consistency condition.
func TestMixedConcurrent(t *testing.T) {
	const nodes, wPer, workers = 2, 1, 2
	w, rt, stop := newTPCC(t, nodes, wPer, workers)
	defer stop()

	var wg sync.WaitGroup
	errs := make(chan error, nodes*workers)
	for n := 0; n < nodes; n++ {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go func(n, k int) {
				defer wg.Done()
				home := n*wPer + (k % wPer) + 1
				cl := w.NewClient(rt.Executor(n, k), home, int64(n*100+k))
				for i := 0; i < 120; i++ {
					if _, err := cl.RunOne(); err != nil {
						errs <- err
						return
					}
				}
			}(n, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("mix: %v", err)
	}
	if err := w.CheckConsistency(); err != nil {
		t.Fatalf("post-run consistency: %v", err)
	}
}

func TestLookupByLastName(t *testing.T) {
	w, rt, stop := newTPCC(t, 2, 1, 1)
	defer stop()
	e := rt.Executor(0, 0)
	c, ok := w.LookupByLastName(e, 1, 1, 5)
	if !ok || c%lastNameBuckets != 5 {
		t.Fatalf("lookup = %d,%v", c, ok)
	}
	// Remote lookup charges verbs time.
	before := e.Worker().VClock.Now()
	if _, ok := w.LookupByLastName(e, 2, 1, 5); !ok {
		t.Fatal("remote lookup failed")
	}
	if e.Worker().VClock.Now() == before {
		t.Fatal("remote last-name lookup cost nothing")
	}
}
