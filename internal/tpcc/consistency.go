package tpcc

import (
	"fmt"

	"drtm/internal/memory"
)

// CheckConsistency verifies the TPC-C consistency conditions the schema
// maintains (a subset of the spec's twelve, covering every table the five
// transactions mutate):
//
//  1. W_YTD = sum(D_YTD) over the warehouse's districts.
//  2. D_NEXT_O_ID - 1 >= max(O_ID) in ORDER for the district, with every
//     order ID below D_NEXT_O_ID present.
//  3. NEW-ORDER rows for a district are exactly the orders in
//     [D_NEXT_DELIV_O_ID, D_NEXT_O_ID).
//  4. Every order's order-line count matches its O_OL_CNT.
//  5. Orders below D_NEXT_DELIV_O_ID have a carrier assigned.
func (w *Workload) CheckConsistency() error {
	cfg := w.cfg
	for n := 0; n < cfg.Nodes; n++ {
		node := w.rt.C.Node(n)
		for wi := 0; wi < cfg.WarehousesPerNode; wi++ {
			wID := n*cfg.WarehousesPerNode + wi + 1
			wv, ok := node.Unordered(TableWarehouse).Get(WKey(wID))
			if !ok {
				return fmt.Errorf("warehouse %d missing", wID)
			}
			var dSum uint64
			for d := 1; d <= cfg.Districts; d++ {
				dv, ok := node.Unordered(TableDistrict).Get(DKey(wID, d))
				if !ok {
					return fmt.Errorf("district %d/%d missing", wID, d)
				}
				dSum += dv[DYtd]
				if err := w.checkDistrict(n, wID, d, dv); err != nil {
					return err
				}
			}
			if wv[WYtd] != dSum {
				return fmt.Errorf("w %d: W_YTD %d != sum(D_YTD) %d", wID, wv[WYtd], dSum)
			}
		}
	}
	return nil
}

func (w *Workload) checkDistrict(n, wID, d int, dv []uint64) error {
	node := w.rt.C.Node(n)
	nextO := int(dv[DNextOID])
	nextDeliv := int(dv[DNextDeliv])
	if nextDeliv > nextO {
		return fmt.Errorf("w %d d %d: next_deliv %d > next_o %d", wID, d, nextDeliv, nextO)
	}

	// Conditions 2, 4, 5: orders 1..nextO-1 all exist with matching lines.
	orders := make(map[int][]uint64)
	node.Ordered(TableOrder).Scan(OKey(wID, d, 0), OKey(wID, d, 1<<31),
		func(k uint64, off memory.Offset) bool {
			o := int(k & 0xFFFFFFFF)
			if v, ok := node.Ordered(TableOrder).Get(k); ok {
				orders[o] = v
			}
			return true
		})
	for o := 1; o < nextO; o++ {
		ov, ok := orders[o]
		if !ok {
			return fmt.Errorf("w %d d %d: order %d missing (next_o %d)", wID, d, o, nextO)
		}
		olCnt := int(ov[OOlCnt])
		for ol := 1; ol <= olCnt; ol++ {
			olv, ok := node.Ordered(TableOrderLine).Get(OLKey(wID, d, o, ol))
			if !ok {
				return fmt.Errorf("w %d d %d o %d: order line %d missing", wID, d, o, ol)
			}
			if o < nextDeliv && olv[OLDeliveryD] == 0 {
				return fmt.Errorf("w %d d %d o %d ol %d: delivered order with undelivered line",
					wID, d, o, ol)
			}
		}
		if o < nextDeliv && ov[OCarrier] == 0 {
			return fmt.Errorf("w %d d %d: delivered order %d has no carrier", wID, d, o)
		}
	}
	if len(orders) != nextO-1 {
		return fmt.Errorf("w %d d %d: %d orders, want %d", wID, d, len(orders), nextO-1)
	}

	// Condition 3: NEW-ORDER matches [nextDeliv, nextO).
	newOrders := make(map[int]bool)
	node.Ordered(TableNewOrder).Scan(OKey(wID, d, 0), OKey(wID, d, 1<<31),
		func(k uint64, off memory.Offset) bool {
			newOrders[int(k&0xFFFFFFFF)] = true
			return true
		})
	for o := nextDeliv; o < nextO; o++ {
		if !newOrders[o] {
			return fmt.Errorf("w %d d %d: undelivered order %d missing from NEW-ORDER", wID, d, o)
		}
	}
	if len(newOrders) != nextO-nextDeliv {
		return fmt.Errorf("w %d d %d: NEW-ORDER has %d rows, want %d",
			wID, d, len(newOrders), nextO-nextDeliv)
	}
	return nil
}

// TotalPayments sums customer YTD payments cluster-wide; with history
// amounts it cross-checks payment accounting in tests.
func (w *Workload) TotalPayments() uint64 {
	cfg := w.cfg
	var total uint64
	for n := 0; n < cfg.Nodes; n++ {
		node := w.rt.C.Node(n)
		for wi := 0; wi < cfg.WarehousesPerNode; wi++ {
			wID := n*cfg.WarehousesPerNode + wi + 1
			for d := 1; d <= cfg.Districts; d++ {
				for c := 1; c <= cfg.CustomersPerDist; c++ {
					if v, ok := node.Unordered(TableCustomer).Get(CKey(wID, d, c)); ok {
						total += v[CYtdPayment]
					}
				}
			}
		}
	}
	return total
}
