package tpcc

import (
	"fmt"
	"math/rand"

	"drtm/internal/tx"
)

// TxnType enumerates TPC-C's five transactions.
type TxnType int

const (
	TxnNewOrder    TxnType = iota // NEW (d, rw) 45%
	TxnPayment                    // PAY (d, rw) 43%
	TxnOrderStatus                // OS (l, ro) 4%
	TxnDelivery                   // DLY (l, rw) 4%
	TxnStockLevel                 // SL (l, ro) 4%
	numTxnTypes
)

func (t TxnType) String() string {
	switch t {
	case TxnNewOrder:
		return "new-order"
	case TxnPayment:
		return "payment"
	case TxnOrderStatus:
		return "order-status"
	case TxnDelivery:
		return "delivery"
	case TxnStockLevel:
		return "stock-level"
	default:
		return fmt.Sprintf("TxnType(%d)", int(t))
	}
}

// The standard TPC-C mix (Table 5).
var mixPct = [numTxnTypes]int{45, 43, 4, 4, 4}

// Client drives the TPC-C mix from one worker. Per the paper's setup, each
// worker is bound to one home warehouse.
type Client struct {
	w    *Workload
	e    *tx.Executor
	rng  *rand.Rand
	home int // home warehouse

	hSeq   uint64
	oSeq   uint64
	Counts [numTxnTypes]int64
	// UserAborts counts TPC-C's intentional 1% new-order rollbacks.
	UserAborts int64
}

// NewClient binds a client to an executor and a home warehouse.
func (w *Workload) NewClient(e *tx.Executor, home int, seed int64) *Client {
	if w.cfg.NodeOfWarehouse(home) != e.Worker().Node.ID {
		panic(fmt.Sprintf("tpcc: warehouse %d is not on node %d", home, e.Worker().Node.ID))
	}
	return &Client{w: w, e: e, rng: rand.New(rand.NewSource(seed)), home: home}
}

// nuRand is the TPC-C non-uniform random distribution.
func (c *Client) nuRand(a, x, y int) int {
	cc := 42 % (a + 1)
	return ((c.rng.Intn(a+1)|(c.rng.Intn(y-x+1)+x))+cc)%(y-x+1) + x
}

func (c *Client) pickDistrict() int { return c.rng.Intn(c.w.cfg.Districts) + 1 }

func (c *Client) pickCustomer() int { return c.nuRand(1023, 1, c.w.cfg.CustomersPerDist) }

func (c *Client) pickItem() int { return c.nuRand(8191, 1, c.w.cfg.Items) }

// otherWarehouse picks a uniformly random warehouse different from home.
func (c *Client) otherWarehouse() int {
	if c.w.cfg.Warehouses() == 1 {
		return c.home
	}
	w := c.rng.Intn(c.w.cfg.Warehouses()-1) + 1
	if w >= c.home {
		w++
	}
	return w
}

// PickType draws from the standard mix.
func (c *Client) PickType() TxnType {
	r := c.rng.Intn(100)
	acc := 0
	for t := TxnType(0); t < numTxnTypes; t++ {
		acc += mixPct[t]
		if r < acc {
			return t
		}
	}
	return TxnNewOrder
}

// RunOne executes one transaction drawn from the standard mix, returning
// its type. TPC-C's intentional new-order rollbacks count as user aborts,
// not errors.
func (c *Client) RunOne() (TxnType, error) {
	t := c.PickType()
	var err error
	switch t {
	case TxnNewOrder:
		err = c.RunNewOrder(false)
	case TxnPayment:
		err = c.RunPayment()
	case TxnOrderStatus:
		_, err = c.w.OrderStatus(c.e, c.home, c.pickDistrict(), c.pickCustomer())
	case TxnDelivery:
		c.oSeq++
		_, err = c.w.Delivery(c.e, c.home, c.rng.Intn(10)+1, uint64(c.home)<<32|c.oSeq)
	case TxnStockLevel:
		_, err = c.w.StockLevel(c.e, c.home, c.pickDistrict(), uint64(c.rng.Intn(11)+10))
	}
	if err == tx.ErrUserAbort {
		c.UserAborts++
		return t, nil
	}
	if err == nil {
		c.Counts[t]++
	}
	return t, err
}

// RunNewOrder issues one NEW transaction with spec-shaped inputs. When
// forceInvalid is true the order carries an unused item (the 1% rollback);
// otherwise that happens with 1% probability.
func (c *Client) RunNewOrder(forceInvalid bool) error {
	cfg := c.w.cfg
	olCnt := c.rng.Intn(11) + 5
	lines := make([]OrderLineInput, olCnt)
	seen := map[int]bool{}
	for i := range lines {
		item := c.pickItem()
		for seen[item] {
			item = c.pickItem()
		}
		seen[item] = true
		supply := c.home
		if cfg.Warehouses() > 1 && c.rng.Intn(100) < cfg.CrossNewOrderPct {
			supply = c.otherWarehouse()
		}
		lines[i] = OrderLineInput{ItemID: item, SupplyW: supply, Quantity: c.rng.Intn(10) + 1}
	}
	if forceInvalid || c.rng.Intn(100) == 0 {
		lines[olCnt-1].ItemID = cfg.Items + 1 // unused item: must roll back
		lines[olCnt-1].SupplyW = c.home
	}
	_, err := c.w.NewOrder(c.e, c.home, c.pickDistrict(), c.pickCustomer(), lines)
	return err
}

// RunPayment issues one PAY transaction with spec-shaped inputs: 15%
// (CrossPaymentPct) remote customers, 60% selected by last name.
func (c *Client) RunPayment() error {
	cfg := c.w.cfg
	d := c.pickDistrict()
	cW, cD := c.home, d
	if cfg.Warehouses() > 1 && c.rng.Intn(100) < cfg.CrossPaymentPct {
		cW = c.otherWarehouse()
		cD = c.pickDistrict()
	}
	var cust int
	if c.rng.Intn(100) < 60 {
		// By last name: resolve through the (possibly remote) index first —
		// the reconnaissance step of Section 4.1.
		var ok bool
		cust, ok = c.w.LookupByLastName(c.e, cW, cD, uint64(c.rng.Intn(lastNameBuckets)))
		if !ok {
			cust = c.pickCustomer()
		}
	} else {
		cust = c.pickCustomer()
	}
	c.hSeq++
	return c.w.Payment(c.e, c.home, d, cW, cD, cust, uint64(c.rng.Intn(500000)+100), c.hSeq)
}

// NewOrderCount returns committed new-order transactions (the TPC-C
// throughput metric).
func (c *Client) NewOrderCount() int64 { return c.Counts[TxnNewOrder] }

// TotalCount returns all committed transactions (standard-mix throughput).
func (c *Client) TotalCount() int64 {
	var t int64
	for _, v := range c.Counts {
		t += v
	}
	return t
}
