package obs

import (
	"sync"
	"testing"
)

func TestHeatMapClassifyAndHysteresis(t *testing.T) {
	m := NewHeatMap(64, 16, 2.0, 1.0)
	const key = 42

	if m.Hot(key) {
		t.Fatal("fresh slot classified hot")
	}
	// Two conflicts reach the entry threshold; the transition fires once.
	if _, sw := m.Conflict(key, 1); sw != 0 {
		t.Fatal("one conflict should not reach the hot threshold")
	}
	hot, sw := m.Conflict(key, 1)
	if !hot || sw != 1 {
		t.Fatalf("second conflict: hot=%v switched=%d, want true/+1", hot, sw)
	}
	if _, sw := m.Conflict(key, 1); sw != 0 {
		t.Fatal("already-hot slot reported a second cold→hot transition")
	}

	// Conflict-free accesses decay the heat; the slot must stay hot until
	// it crosses the *exit* threshold (hysteresis), then switch exactly once.
	switches := 0
	for i := 0; i < 200; i++ {
		hot, sw := m.Touch(key)
		if sw == -1 {
			switches++
			if hot {
				t.Fatal("hot→cold transition reported hot=true")
			}
			if h := m.Heat(key); h >= 1.0 {
				t.Fatalf("switched cold at heat %.2f, want < exit threshold 1.0", h)
			}
		}
		if sw == 1 {
			t.Fatal("decaying slot re-entered hot")
		}
	}
	if switches != 1 {
		t.Fatalf("hot→cold transitions = %d, want exactly 1", switches)
	}
	if m.Hot(key) {
		t.Fatal("slot still hot after decay")
	}
}

func TestHeatMapSteadyState(t *testing.T) {
	// With one conflict every 4 touches and half-life 32, steady-state heat
	// is rate/(1-decay) ≈ 0.25 · 32/ln2 ≈ 11.5.
	m := NewHeatMap(64, 32, 100, 50) // thresholds out of reach
	const key = 7
	for i := 0; i < 4096; i++ {
		m.Touch(key)
		if i%4 == 3 {
			m.Conflict(key, 1)
		}
	}
	h := m.Heat(key)
	if h < 8 || h > 15 {
		t.Fatalf("steady-state heat %.2f outside [8, 15] (expect ≈11.5)", h)
	}
}

func TestHeatMapHotCountAndReset(t *testing.T) {
	m := NewHeatMap(256, 16, 1.0, 0.5)
	keys := []uint64{1, 2, 3, 4, 5}
	for _, k := range keys {
		m.Conflict(k, 2)
	}
	if n := m.HotCount(); n != len(keys) {
		t.Fatalf("HotCount = %d, want %d", n, len(keys))
	}
	m.Reset()
	if n := m.HotCount(); n != 0 {
		t.Fatalf("HotCount after Reset = %d, want 0", n)
	}
	if h := m.Heat(1); h != 0 {
		t.Fatalf("heat after Reset = %.2f, want 0", h)
	}
}

// TestHeatMapConcurrent hammers one slot from many goroutines under -race:
// the CAS loop must neither lose transitions nor report a net transition
// count that disagrees with the final classification.
func TestHeatMapConcurrent(t *testing.T) {
	m := NewHeatMap(64, 8, 3.0, 1.5)
	const key = 99
	var mu sync.Mutex
	net := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			local := 0
			for i := 0; i < 2000; i++ {
				var sw int
				if (g+i)%3 == 0 {
					_, sw = m.Conflict(key, 1)
				} else {
					_, sw = m.Touch(key)
				}
				local += sw
			}
			mu.Lock()
			net += local
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	want := 0
	if m.Hot(key) {
		want = 1
	}
	if net != want {
		t.Fatalf("net transitions %d disagree with final classification (hot=%v)", net, m.Hot(key))
	}
}
