package obs

import (
	"sync"
	"testing"
)

func TestBucketMapping(t *testing.T) {
	// Exact buckets below 16.
	for v := int64(0); v < 16; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d", v, got, v)
		}
	}
	// bucketLower is the left edge of its own bucket, and buckets are
	// monotonically ordered.
	prev := -1
	for b := 0; b < histBuckets; b++ {
		lo := bucketLower(b)
		if got := bucketOf(lo); got != b {
			t.Fatalf("bucketOf(bucketLower(%d)=%d) = %d", b, lo, got)
		}
		if int(lo) <= prev && b > 0 && b < histBuckets {
			// lower bounds strictly increase
			t.Fatalf("bucketLower(%d)=%d not increasing", b, lo)
		}
		prev = int(lo)
	}
	// A value just below the next bucket's lower bound stays in its bucket.
	for b := 16; b < histBuckets-1; b++ {
		hi := bucketLower(b+1) - 1
		if got := bucketOf(hi); got != b {
			t.Fatalf("bucketOf(%d) = %d, want %d", hi, got, b)
		}
	}
	if bucketOf(-5) != 0 {
		t.Fatalf("negative durations must clamp to bucket 0")
	}
}

func TestCounterAndEventNames(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	c.Store(0)
	if c.Load() != 0 {
		t.Fatalf("counter after Store(0) = %d", c.Load())
	}
	for ev := 0; ev < NumEvents; ev++ {
		if Event(ev).String() == "" {
			t.Fatalf("event %d has no name", ev)
		}
	}
	for p := 0; p < NumPhases; p++ {
		if Phase(p).String() == "" {
			t.Fatalf("phase %d has no name", p)
		}
	}
}

func TestNilShardIsNoop(t *testing.T) {
	var s *Shard
	s.Inc(EvTxCommit)
	s.Add(EvRDMARead, 3)
	s.Observe(PhaseTotal, 100)
	s.Trace(TraceEvent{})
	if s.TraceEnabled() {
		t.Fatal("nil shard reports tracing enabled")
	}
	if s.Count(EvTxCommit) != 0 {
		t.Fatal("nil shard count not zero")
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry(2)
	r.Shard(0).Inc(EvTxCommit)
	r.Shard(1).Add(EvTxCommit, 2)
	r.Shard(0).Observe(PhaseTotal, 1000)

	prev := r.Snapshot()
	if prev.Counter(EvTxCommit) != 3 {
		t.Fatalf("snapshot commits = %d, want 3", prev.Counter(EvTxCommit))
	}
	if prev.Phases[PhaseTotal].Count != 1 {
		t.Fatalf("snapshot total count = %d, want 1", prev.Phases[PhaseTotal].Count)
	}

	r.Shard(1).Inc(EvTxCommit)
	r.Shard(1).Inc(EvFallback)
	r.Shard(0).Observe(PhaseTotal, 2000)
	r.Shard(0).Observe(PhaseTotal, 3000)

	d := r.Snapshot().Delta(prev)
	if d.Counter(EvTxCommit) != 1 {
		t.Fatalf("delta commits = %d, want 1", d.Counter(EvTxCommit))
	}
	if d.Counter(EvFallback) != 1 {
		t.Fatalf("delta fallbacks = %d, want 1", d.Counter(EvFallback))
	}
	if d.Counter(EvRORetry) != 0 {
		t.Fatalf("delta untouched counter = %d, want 0", d.Counter(EvRORetry))
	}
	ph := d.Phases[PhaseTotal]
	if ph.Count != 2 {
		t.Fatalf("delta phase count = %d, want 2", ph.Count)
	}
	if ph.Sum != 5000 {
		t.Fatalf("delta phase sum = %d, want 5000", ph.Sum)
	}

	r.Reset()
	z := r.Snapshot()
	if z.Counter(EvTxCommit) != 0 || z.Phases[PhaseTotal].Count != 0 {
		t.Fatalf("registry not zero after Reset: %+v", z.Counters)
	}
}

func TestPercentiles(t *testing.T) {
	r := NewRegistry(1)
	s := r.Shard(0)
	// 900 fast observations at 1000ns, 100 slow at 1_000_000ns.
	for i := 0; i < 900; i++ {
		s.Observe(PhaseHTM, 1000)
	}
	for i := 0; i < 100; i++ {
		s.Observe(PhaseHTM, 1_000_000)
	}
	h := r.Snapshot().Phases[PhaseHTM]
	if h.Count != 1000 {
		t.Fatalf("count = %d", h.Count)
	}
	p50 := h.Percentile(50)
	if p50 < 1000 || p50 > 1250 {
		t.Fatalf("p50 = %d, want ~1000 (<=25%% over)", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 1_000_000 || p99 > 1_250_000 {
		t.Fatalf("p99 = %d, want ~1e6 (<=25%% over)", p99)
	}
	if h.Max != 1_000_000 {
		t.Fatalf("max = %d", h.Max)
	}
	mean := h.Mean()
	if mean < 100_000 || mean > 102_000 {
		t.Fatalf("mean = %d, want ~100900", mean)
	}
	// Percentile never exceeds the observed max.
	if h.Percentile(100) > h.Max {
		t.Fatalf("p100 %d > max %d", h.Percentile(100), h.Max)
	}
	var empty HistSnapshot
	if empty.Percentile(99) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram percentile/mean not zero")
	}
}

// TestConcurrentHammer drives counters, histograms, snapshots, resets and
// tracing from many goroutines at once; run with -race.
func TestConcurrentHammer(t *testing.T) {
	const (
		shards     = 4
		goroutines = 8
		iters      = 2000
	)
	r := NewRegistry(shards)
	r.EnableTrace(16)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := r.Shard(g % shards)
			for i := 0; i < iters; i++ {
				s.Inc(Event(i % NumEvents))
				s.Observe(Phase(i%NumPhases), int64(i))
				if s.TraceEnabled() {
					s.Trace(TraceEvent{TxID: uint64(i), Node: int32(g)})
				}
				if i%512 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	// Concurrent snapshot/drain/reset churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
			_ = r.DrainTrace()
		}
	}()
	wg.Wait()

	sn := r.Snapshot()
	var total int64
	for ev := 0; ev < NumEvents; ev++ {
		total += sn.Counter(Event(ev))
	}
	if total != goroutines*iters {
		t.Fatalf("total events = %d, want %d", total, goroutines*iters)
	}
	var obsv int64
	for p := 0; p < NumPhases; p++ {
		obsv += sn.Phases[p].Count
	}
	if obsv != goroutines*iters {
		t.Fatalf("total observations = %d, want %d", obsv, goroutines*iters)
	}
	r.DisableTrace()
	if len(r.DrainTrace()) != 0 {
		t.Fatal("drain after disable returned events")
	}
}

// TestHotPathAllocationFree proves the acceptance criterion: counter
// increments and histogram observations allocate nothing, with tracing off
// AND with tracing on (the TraceEnabled check itself is free; assembling
// a TraceEvent is the caller's choice).
func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry(1)
	s := r.Shard(0)
	if avg := testing.AllocsPerRun(1000, func() {
		s.Inc(EvRDMACAS)
		s.Add(EvRDMARead, 2)
		s.Observe(PhaseTotal, 4096)
	}); avg != 0 {
		t.Fatalf("hot path allocates %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if s.TraceEnabled() {
			t.Fatal("tracing unexpectedly on")
		}
	}); avg != 0 {
		t.Fatalf("trace-disabled check allocates %.1f allocs/op, want 0", avg)
	}
	// Snapshot is off the hot path, but Registry.Total should also be cheap.
	if avg := testing.AllocsPerRun(100, func() {
		_ = r.Total(EvRDMACAS)
	}); avg != 0 {
		t.Fatalf("Total allocates %.1f allocs/op, want 0", avg)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewRegistry(2)
	s := r.Shard(0)
	if s.TraceEnabled() {
		t.Fatal("tracing should default off")
	}
	s.Trace(TraceEvent{TxID: 99}) // dropped: no ring
	r.EnableTrace(4)
	if !s.TraceEnabled() {
		t.Fatal("tracing not enabled")
	}
	for i := 1; i <= 6; i++ {
		s.Trace(TraceEvent{TxID: uint64(i)})
	}
	got := r.DrainTrace()
	if len(got) != 4 {
		t.Fatalf("drained %d events, want 4 (ring capacity)", len(got))
	}
	// Oldest-first, newest retained: txids 3,4,5,6.
	for i, ev := range got {
		if want := uint64(i + 3); ev.TxID != want {
			t.Fatalf("event %d txid = %d, want %d", i, ev.TxID, want)
		}
		if ev.Seq == 0 {
			t.Fatalf("event %d missing sequence number", i)
		}
	}
	if len(r.DrainTrace()) != 0 {
		t.Fatal("second drain not empty")
	}
	// Outcome/cause stringers cover all values.
	for _, o := range []Outcome{OutcomeCommit, OutcomeFallback, OutcomeAbort, Outcome(9)} {
		if o.String() == "" {
			t.Fatal("empty outcome name")
		}
	}
	for c := CauseNone; c <= CauseUser+1; c++ {
		if c.String() == "" {
			t.Fatal("empty cause name")
		}
	}
}
