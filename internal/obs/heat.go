package obs

import (
	"math"
	"sync/atomic"
)

// HeatMap is the bucketed conflict counter behind adaptive per-key
// concurrency control: a fixed-size, race-safe table of decaying conflict
// EWMAs, one slot per hashed bucket, each carrying a hot/cold classification
// with hysteresis.
//
// The EWMA is access-clocked, not wall-clocked: every Touch (one routed
// access to the bucket) multiplies the slot's heat by a per-access decay
// factor derived from the configured half-life, and every Conflict adds its
// weight. In steady state the heat converges to
//
//	heat ≈ conflictsPerAccess · halfLife / ln 2
//
// so the hot threshold expresses "what fraction of recent accesses to this
// bucket conflicted", independent of host speed — a deliberate choice over
// wall-clock decay, which would make classification depend on how fast the
// simulation happens to run.
//
// Classification is hysteretic: a cold slot turns hot when its heat reaches
// hotEnter, and a hot slot reverts only when the heat decays below hotExit
// (< hotEnter), so buckets near the threshold do not flap between arms.
//
// Each slot is one atomic uint64 updated with a CAS loop: bit 63 is the hot
// flag and the low 32 bits hold the heat in 16.16 fixed point. Collisions
// (two buckets hashing to one slot) merge their heat, which errs toward the
// conservative (lease) arm for the cold partner — acceptable for a routing
// heuristic and what keeps the table allocation-free and bounded.
type HeatMap struct {
	slots []atomic.Uint64
	mask  uint64
	decay uint64 // per-access heat multiplier, 0.32 fixed point
	enter uint64 // hot-entry threshold, 16.16 fixed point
	exit  uint64 // hot-exit threshold, 16.16 fixed point
}

const (
	heatHotBit   = uint64(1) << 63
	heatMask     = (uint64(1) << 32) - 1
	heatOne      = uint64(1) << 16 // 1.0 in 16.16 fixed point
	decayOne     = uint64(1) << 32 // 1.0 in 0.32 fixed point
	heatCeiling  = heatMask        // clamp: ~65535 conflicts of pent-up heat
	minHeatSlots = 64
)

// NewHeatMap builds a map with at least `slots` slots (rounded up to a
// power of two), a decay half-life of halfLife accesses, and the given
// hot-entry/hot-exit heat thresholds (hotExit < hotEnter enforced by
// clamping). halfLife < 1 is treated as 1.
func NewHeatMap(slots, halfLife int, hotEnter, hotExit float64) *HeatMap {
	if slots < minHeatSlots {
		slots = minHeatSlots
	}
	n := 1
	for n < slots {
		n *= 2
	}
	if halfLife < 1 {
		halfLife = 1
	}
	if hotEnter <= 0 {
		hotEnter = 1
	}
	if hotExit >= hotEnter {
		hotExit = hotEnter / 2
	}
	if hotExit < 0 {
		hotExit = 0
	}
	// decay = 2^(-1/halfLife) per access.
	d := math.Pow(0.5, 1/float64(halfLife))
	return &HeatMap{
		slots: make([]atomic.Uint64, n),
		mask:  uint64(n - 1),
		decay: uint64(d * float64(decayOne)),
		enter: uint64(hotEnter * float64(heatOne)),
		exit:  uint64(hotExit * float64(heatOne)),
	}
}

// slotOf hashes an arbitrary bucket key onto a slot.
func (m *HeatMap) slotOf(key uint64) *atomic.Uint64 {
	return &m.slots[mix64(key)&m.mask]
}

// mix64 is SplitMix64's finalizer: a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// update applies one decay step (if decay) and adds `add` heat, then
// re-classifies the slot under hysteresis. Returns the slot's (possibly
// new) classification and the transition: +1 cold→hot, -1 hot→cold, 0 none.
func (m *HeatMap) update(key uint64, decay bool, add uint64) (hot bool, switched int) {
	s := m.slotOf(key)
	for {
		old := s.Load()
		heat := old & heatMask
		wasHot := old&heatHotBit != 0
		if decay {
			heat = (heat * m.decay) >> 32
		}
		heat += add
		if heat > heatCeiling {
			heat = heatCeiling
		}
		nowHot := wasHot
		if wasHot && heat < m.exit {
			nowHot = false
		} else if !wasHot && heat >= m.enter {
			nowHot = true
		}
		next := heat
		if nowHot {
			next |= heatHotBit
		}
		if s.CompareAndSwap(old, next) {
			switch {
			case nowHot && !wasHot:
				return true, 1
			case wasHot && !nowHot:
				return false, -1
			default:
				return nowHot, 0
			}
		}
	}
}

// Touch records one routed access to the bucket: the heat decays one step
// and the classification (with any transition) is returned. This is the
// read-arm routing call — spec when cold, lease when hot.
func (m *HeatMap) Touch(key uint64) (hot bool, switched int) {
	return m.update(key, true, 0)
}

// Conflict adds weight conflicts of heat to the bucket without a decay step
// (conflicts ride the accesses that Touch already decayed). weight <= 0 is
// treated as 1.
func (m *HeatMap) Conflict(key uint64, weight float64) (hot bool, switched int) {
	if weight <= 0 {
		weight = 1
	}
	return m.update(key, false, uint64(weight*float64(heatOne)))
}

// Hot reports the bucket's current classification without touching it.
func (m *HeatMap) Hot(key uint64) bool {
	return m.slotOf(key).Load()&heatHotBit != 0
}

// Heat returns the bucket's current heat as a float (diagnostics/tests).
func (m *HeatMap) Heat(key uint64) float64 {
	return float64(m.slotOf(key).Load()&heatMask) / float64(heatOne)
}

// HotCount scans the table and returns the number of hot slots.
func (m *HeatMap) HotCount() int {
	n := 0
	for i := range m.slots {
		if m.slots[i].Load()&heatHotBit != 0 {
			n++
		}
	}
	return n
}

// Reset clears every slot to cold zero heat.
func (m *HeatMap) Reset() {
	for i := range m.slots {
		m.slots[i].Store(0)
	}
}

// Slots returns the table's slot count.
func (m *HeatMap) Slots() int { return len(m.slots) }
