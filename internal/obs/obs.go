// Package obs is the unified observability layer: one counter idiom for
// every protocol event in the tree, fixed-bucket latency histograms for the
// transaction phases, and an optional per-worker ring-buffer transaction
// trace.
//
// The design goals, in order:
//
//  1. Allocation-free, race-safe hot path. Counter increments and histogram
//     observations are single atomic adds into per-worker shards; nothing on
//     the hot path allocates, locks, or touches shared cache lines.
//  2. Sharding by worker. Each worker owns a Shard (padded so adjacent
//     shards never share a cache line at the hot boundary); cross-worker
//     aggregation happens only at Snapshot time.
//  3. Immutable snapshots. Registry.Snapshot returns a value type; two
//     snapshots subtract with Delta to scope counters to an interval, which
//     is how benchmarks report per-run breakdowns without resetting shared
//     state.
//  4. Near-zero cost when idle. Tracing defaults off; the disabled check is
//     one atomic bool load and no ring exists until EnableTrace.
//
// The event vocabulary mirrors the paper's evaluation (Sections 7.2-7.6):
// HTM commits and aborts by cause, fallback-path entries, lease protocol
// events, one-sided RDMA op counts, read-only retries, remote lock
// conflicts, and NVRAM log appends. See DESIGN.md for the mapping from each
// counter to the paper section it instruments.
package obs

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Event enumerates every protocol event the layer counts.
type Event int

const (
	// Whole-transaction outcomes (Executor.Exec / ExecRO).
	EvTxCommit Event = iota // read-write transaction committed
	EvTxRetry               // whole-transaction retry (lock/lease conflict)
	EvFallback              // execution entered the software fallback path
	EvROCommit              // read-only transaction committed
	EvRORetry               // read-only transaction retry

	// HTM region outcomes, by abort cause (Table 6's breakdown).
	EvHTMCommit        // HTM region committed (XEND reached)
	EvHTMConflictAbort // working-set conflict abort
	EvHTMCapacityAbort // capacity abort (working set exceeded hardware bounds)
	EvHTMLockedAbort   // explicit abort: local record remotely locked
	EvHTMLeaseAbort    // explicit abort: lease invalid at in-region confirm
	EvHTMExplicitAbort // other explicit abort

	// Lease protocol events (Section 4.2 / Figure 5).
	EvLeaseGrant         // fresh shared lease installed via CAS
	EvLeaseShare         // joined an existing unexpired lease
	EvLeaseConfirm       // lease confirmed valid at commit time
	EvLeaseConfirmFail   // lease confirmation failed outside the HTM region
	EvLeaseExpire        // expired lease observed and taken over / cleared
	EvRemoteLockConflict // lock/lease acquisition blocked by a conflicting holder
	EvLockUpgrade        // shared lease upgraded in place to an exclusive lock

	// Speculative (OCC) read-arm events: version-validated reads that skip
	// the lease CAS entirely (PolicySpeculative, or an adaptive cold route).
	EvSpecRead         // record fetched with a single versioned READ, no lock
	EvSpecValidateFail // commit-time validation found a version bump or live lock

	// Adaptive read-arm selection (PolicyAdaptive): per-bucket routing
	// decisions and heat-table reclassifications.
	EvAdaptSpec        // adaptive-routed read took the speculative arm (bucket cold)
	EvAdaptLease       // adaptive-routed read took the lease arm (bucket hot)
	EvArmSwitchToLease // bucket reclassified cold→hot (reads now take leases)
	EvArmSwitchToSpec  // bucket reclassified hot→cold (reads now speculate)

	// One-sided RDMA and messaging verbs (Section 7.1).
	EvRDMARead
	EvRDMAWrite
	EvRDMACAS
	EvRDMAFAA
	EvVerbsMsg
	EvRDMABatch // one polled doorbell batch (wave) of the async verb engine

	// Durability (Section 4.6): one NVRAM log record appended.
	EvLogRecord

	// Crash recovery (Section 4.6 / Figure 7).
	EvRecoveryRedo   // committed update re-applied from the write-ahead log
	EvRecoveryUnlock // crashed owner's exclusive lock released

	// Fault injection, failure detection and recovery-under-load.
	EvVerbFault     // a verb failed (injected fault or unreachable node)
	EvLockRetry     // a transient verb fault was retried within a transaction
	EvBackoffNanos  // modeled nanoseconds spent in fault-retry backoff
	EvNodeDownAbort // a transaction aborted with ErrNodeDown
	EvDetect        // a survivor confirmed a node failure via lease expiry
	EvRecoveryRun   // one Recover invocation that replayed at least one log set
	EvRecoveryNanos // wall-clock nanoseconds spent inside Recover

	// Replication (FaRM-style commit-backup) and hot failover.
	EvLogAppend    // one-sided log-append WRs pushed to backup redo logs
	EvBackupBytes  // redo payload bytes shipped to backups
	EvFenceReject  // log appends rejected by a backup's view-epoch fence
	EvViewAbort    // HTM aborts from a view-epoch change observed in-region
	EvFailover     // completed hot-failover promotions
	EvPromoteNanos // wall-clock nanoseconds spent inside Failover
	EvRedoTailLen  // redo records replayed during promotions

	// Range scans and secondary indexes.
	EvScan             // one transactional range scan collected (Tx.Scan / RO.Scan)
	EvScanRow          // one live row returned by a range scan
	EvScanValidateFail // commit-time range validation found a stamp/header change
	EvIndexMaint       // one secondary-index entry maintained by a base write
	EvRemoveDead       // one dead entry physically unlinked post-commit

	// MVCC snapshot reads over version chains (PolicyMVCC).
	EvChainRetire   // one superseded version retired into an entry's ring chain
	EvMVCCRead      // one key resolved against the snapshot stamp (point or scan row)
	EvMVCCTrunc     // resolution fell off the chain (stamp older than ring depth)
	EvMVCCInconsist // torn image (head/tail mismatch) observed by a snapshot read
	EvMVCCFallback  // one RO execution that fell back to the confirm-wave arm

	NumEvents int = iota
)

var eventNames = [NumEvents]string{
	EvTxCommit:           "tx.commit",
	EvTxRetry:            "tx.retry",
	EvFallback:           "tx.fallback",
	EvROCommit:           "ro.commit",
	EvRORetry:            "ro.retry",
	EvHTMCommit:          "htm.commit",
	EvHTMConflictAbort:   "htm.abort.conflict",
	EvHTMCapacityAbort:   "htm.abort.capacity",
	EvHTMLockedAbort:     "htm.abort.locked",
	EvHTMLeaseAbort:      "htm.abort.lease",
	EvHTMExplicitAbort:   "htm.abort.explicit",
	EvLeaseGrant:         "lease.grant",
	EvLeaseShare:         "lease.share",
	EvLeaseConfirm:       "lease.confirm",
	EvLeaseConfirmFail:   "lease.confirm_fail",
	EvLeaseExpire:        "lease.expire",
	EvRemoteLockConflict: "lock.remote_conflict",
	EvLockUpgrade:        "lock.upgrade",
	EvSpecRead:           "spec.read",
	EvSpecValidateFail:   "spec.validate_fail",
	EvAdaptSpec:          "adapt.route_spec",
	EvAdaptLease:         "adapt.route_lease",
	EvArmSwitchToLease:   "adapt.to_lease",
	EvArmSwitchToSpec:    "adapt.to_spec",
	EvRDMARead:           "rdma.read",
	EvRDMAWrite:          "rdma.write",
	EvRDMACAS:            "rdma.cas",
	EvRDMAFAA:            "rdma.faa",
	EvVerbsMsg:           "rdma.msg",
	EvRDMABatch:          "rdma.batch",
	EvLogRecord:          "nvram.log_record",
	EvRecoveryRedo:       "recovery.redo",
	EvRecoveryUnlock:     "recovery.unlock",
	EvVerbFault:          "fault.verb",
	EvLockRetry:          "fault.retry",
	EvBackoffNanos:       "fault.backoff_ns",
	EvNodeDownAbort:      "tx.node_down",
	EvDetect:             "fault.detect",
	EvRecoveryRun:        "recovery.run",
	EvRecoveryNanos:      "recovery.ns",
	EvLogAppend:          "repl.log_append",
	EvBackupBytes:        "repl.backup_bytes",
	EvFenceReject:        "repl.fence_reject",
	EvViewAbort:          "repl.view_abort",
	EvFailover:           "repl.failover",
	EvPromoteNanos:       "repl.promote_ns",
	EvRedoTailLen:        "repl.redo_tail",
	EvScan:               "scan.collect",
	EvScanRow:            "scan.row",
	EvScanValidateFail:   "scan.validate_fail",
	EvIndexMaint:         "index.maint",
	EvRemoveDead:         "index.remove_dead",
	EvChainRetire:        "mvcc.retire",
	EvMVCCRead:           "mvcc.read",
	EvMVCCTrunc:          "mvcc.truncated",
	EvMVCCInconsist:      "mvcc.inconsistent",
	EvMVCCFallback:       "mvcc.fallback",
}

func (e Event) String() string {
	if e >= 0 && int(e) < NumEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Phase enumerates the transaction phases timed by the histograms, matching
// the protocol structure of Figure 2(a): lock-and-prefetch remote records,
// run the body in the HTM region, write back and unlock remotes.
type Phase int

const (
	PhaseLockRemote Phase = iota // Start phase: remote lock/lease + prefetch
	PhaseHTM                     // LocalTX phase: HTM region attempts (or fallback body)
	PhaseCommit                  // Commit phase: remote write-back + unlock
	PhaseTotal                   // whole transaction, Exec entry to commit

	// Sub-phases of PhaseLockRemote, recorded by the batched stage pipeline
	// (gather/issue/complete): location lookup, lock/lease acquisition, and
	// value prefetch. Their sum ≈ PhaseLockRemote for batched transactions.
	PhaseLookupRemote
	PhaseAcquireRemote
	PhasePrefetchRemote

	// PhaseValidate times the speculative read arm's commit-time validation
	// wave: the batched version re-READs plus the in-region compares. It is
	// a sub-phase of PhaseHTM (read-write) or of the read-only confirm.
	PhaseValidate

	// PhaseBatchOps is not a latency: each observation is the number of work
	// requests in one polled doorbell batch, so the histogram is the
	// ops-per-batch distribution of the async verb engine.
	PhaseBatchOps

	// PhaseFailover times hot-failover promotions end to end: view CAS,
	// redo-tail replay and survivor-side lock release, in wall-clock
	// nanoseconds (failover runs on the coordinator's detector goroutine,
	// which has no virtual clock).
	PhaseFailover

	// PhaseScan times range-scan collection (tree walk + row reads), a
	// sub-phase of PhaseHTM for read-write transactions and of the read-only
	// build for RO scans.
	PhaseScan

	// PhaseMVCC times one PolicyMVCC read-only execution end to end: the
	// single batched READ wave plus chain resolution (no confirm wave).
	PhaseMVCC

	NumPhases int = iota
)

var phaseNames = [NumPhases]string{
	PhaseLockRemote:     "lock-remote",
	PhaseHTM:            "htm-region",
	PhaseCommit:         "commit-remotes",
	PhaseTotal:          "total",
	PhaseLookupRemote:   "lookup-remote",
	PhaseAcquireRemote:  "acquire-remote",
	PhasePrefetchRemote: "prefetch-remote",
	PhaseValidate:       "validate",
	PhaseBatchOps:       "batch-ops",
	PhaseFailover:       "failover",
	PhaseScan:           "scan",
	PhaseMVCC:           "mvcc-ro",
}

func (p Phase) String() string {
	if p >= 0 && int(p) < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Counter is a single atomic counter — the one counter idiom in the tree
// (htm.Stats, rdma.Counters and the obs shards are all built from it).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store overwrites the current value.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// CompareAndSwap executes the compare-and-swap for the counter value.
func (c *Counter) CompareAndSwap(old, new int64) bool { return c.v.CompareAndSwap(old, new) }

// Histogram bucketing: log-linear fixed buckets (HDR-style). Values 0..15
// get exact buckets; above that each power of two is split into 4
// sub-buckets, bounding relative error at 25% — plenty for p50/p95/p99 of
// latencies spanning nanoseconds to seconds, with no allocation and a
// constant memory footprint. Durations are int64 nanoseconds, so the
// highest reachable magnitude bit is 62 (bits.Len64 <= 63).
const histBuckets = 16 + (63-4)*4 // 252

// bucketOf maps a non-negative duration (ns) to its bucket index.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 16 {
		return int(v)
	}
	h := bits.Len64(v)          // 5..64
	sub := (v >> uint(h-3)) & 3 // two bits below the leading bit
	b := 16 + (h-5)*4 + int(sub)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketLower returns the smallest value mapped to bucket b.
func bucketLower(b int) int64 {
	if b < 16 {
		return int64(b)
	}
	h := 5 + (b-16)/4
	sub := (b - 16) % 4
	return int64(4+sub) << uint(h-3)
}

// hist is one phase's fixed-bucket latency histogram within a shard.
type hist struct {
	count   Counter
	sum     Counter
	max     Counter
	buckets [histBuckets]Counter
}

func (h *hist) observe(ns int64) {
	h.count.Inc()
	h.sum.Add(ns)
	h.buckets[bucketOf(ns)].Inc()
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Shard is one worker's private slice of the registry. All methods are safe
// for concurrent use (remote verbs handlers may run on the owner's shard),
// but the common case is single-writer. A nil *Shard is a valid no-op sink,
// so components wired outside a cluster (unit tests, standalone QPs) need no
// guards.
type Shard struct {
	reg  *Registry
	ring atomic.Pointer[traceRing]

	counters [NumEvents]Counter
	hists    [NumPhases]hist

	// Pad past the end of the hot arrays so adjacent heap objects never
	// share the last cache line of a shard.
	_ [64]byte
}

// NewShard returns a standalone shard not attached to any registry, for
// components that keep their own tallies (package htm, package rdma tests).
func NewShard() *Shard { return &Shard{} }

// Inc counts one occurrence of ev.
func (s *Shard) Inc(ev Event) {
	if s == nil {
		return
	}
	s.counters[ev].Inc()
}

// Add counts d occurrences of ev.
func (s *Shard) Add(ev Event, d int64) {
	if s == nil {
		return
	}
	s.counters[ev].Add(d)
}

// Count returns the shard-local count of ev.
func (s *Shard) Count(ev Event) int64 {
	if s == nil {
		return 0
	}
	return s.counters[ev].Load()
}

// Observe records one duration (in nanoseconds of modeled time) for a phase.
func (s *Shard) Observe(ph Phase, ns int64) {
	if s == nil {
		return
	}
	s.hists[ph].observe(ns)
}

// TraceEnabled reports whether transaction tracing is currently on. The
// check is one atomic load; callers use it to skip assembling TraceEvents.
func (s *Shard) TraceEnabled() bool {
	return s != nil && s.reg != nil && s.reg.tracing.Load()
}

// Trace appends ev to the worker's ring buffer. A no-op when tracing is
// disabled or the shard is standalone.
func (s *Shard) Trace(ev TraceEvent) {
	if s == nil {
		return
	}
	if r := s.ring.Load(); r != nil {
		r.push(ev)
	}
}

func (s *Shard) reset() {
	for i := range s.counters {
		s.counters[i].Store(0)
	}
	for p := range s.hists {
		h := &s.hists[p]
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for b := range h.buckets {
			h.buckets[b].Store(0)
		}
	}
}

// Registry owns the shards of one deployment: one per worker, aggregated on
// demand into immutable Snapshots.
type Registry struct {
	shards  []*Shard
	tracing atomic.Bool
	traceMu sync.Mutex // serializes Enable/Disable/Drain, not the hot path
}

// NewRegistry creates a registry with n shards (one per worker).
func NewRegistry(n int) *Registry {
	r := &Registry{shards: make([]*Shard, n)}
	for i := range r.shards {
		r.shards[i] = &Shard{reg: r}
	}
	return r
}

// Shards returns the shard count.
func (r *Registry) Shards() int { return len(r.shards) }

// Shard returns shard i. Shards are assigned to workers by the cluster.
func (r *Registry) Shard(i int) *Shard { return r.shards[i] }

// Total sums ev across all shards.
func (r *Registry) Total(ev Event) int64 {
	var t int64
	for _, s := range r.shards {
		t += s.counters[ev].Load()
	}
	return t
}

// Reset zeroes every counter and histogram in every shard. Trace rings are
// left alone (they are bounded and drain-on-read).
func (r *Registry) Reset() {
	for _, s := range r.shards {
		s.reset()
	}
}

// Snapshot aggregates all shards into an immutable value. Concurrent
// updates may or may not be included (the usual relaxed-snapshot guarantee
// of striped counters); each individual counter is itself consistent.
func (r *Registry) Snapshot() Snapshot {
	var sn Snapshot
	for _, s := range r.shards {
		for ev := 0; ev < NumEvents; ev++ {
			sn.Counters[ev] += s.counters[ev].Load()
		}
		for p := 0; p < NumPhases; p++ {
			h := &s.hists[p]
			d := &sn.Phases[p]
			d.Count += h.count.Load()
			d.Sum += h.sum.Load()
			if m := h.max.Load(); m > d.Max {
				d.Max = m
			}
			for b := 0; b < histBuckets; b++ {
				d.Buckets[b] += h.buckets[b].Load()
			}
		}
	}
	return sn
}

// Snapshot is an immutable cross-shard aggregate.
type Snapshot struct {
	Counters [NumEvents]int64
	Phases   [NumPhases]HistSnapshot
}

// Counter returns the snapshot's count of ev.
func (s Snapshot) Counter(ev Event) int64 { return s.Counters[ev] }

// Delta returns the event-by-event, bucket-by-bucket difference s - prev,
// scoping counters to the interval between the two snapshots. Max is a
// high-water mark and cannot be subtracted; the delta keeps s's value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := s
	for ev := range out.Counters {
		out.Counters[ev] -= prev.Counters[ev]
	}
	for p := range out.Phases {
		d := &out.Phases[p]
		pv := &prev.Phases[p]
		d.Count -= pv.Count
		d.Sum -= pv.Sum
		for b := range d.Buckets {
			d.Buckets[b] -= pv.Buckets[b]
		}
	}
	return out
}

// HistSnapshot is one phase's aggregated histogram.
type HistSnapshot struct {
	Count, Sum, Max int64
	Buckets         [histBuckets]int64
}

// Mean returns the mean observed duration in nanoseconds.
func (h HistSnapshot) Mean() int64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100)
// in nanoseconds, accurate to the bucket resolution (<= 25% relative).
func (h HistSnapshot) Percentile(p float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.Buckets[b]
		if cum >= rank {
			if b == histBuckets-1 {
				return h.Max
			}
			upper := bucketLower(b+1) - 1
			if h.Max > 0 && upper > h.Max {
				return h.Max
			}
			return upper
		}
	}
	return h.Max
}

// ---- transaction tracing -------------------------------------------------

// Outcome classifies a traced transaction's final disposition.
type Outcome uint8

const (
	OutcomeCommit   Outcome = iota // committed via the HTM path
	OutcomeFallback                // committed via the software fallback path
	OutcomeAbort                   // returned an error to the caller
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCommit:
		return "commit"
	case OutcomeFallback:
		return "fallback"
	case OutcomeAbort:
		return "abort"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// AbortCause records the last abort reason observed for a traced transaction.
type AbortCause uint8

const (
	CauseNone     AbortCause = iota
	CauseConflict            // HTM working-set conflict
	CauseCapacity            // HTM capacity
	CauseLocked              // local record remotely locked
	CauseLease               // lease invalid at confirm
	CauseExplicit            // other explicit abort
	CauseRemote              // remote lock/lease acquisition conflict
	CauseUser                // user abort / user error
	CauseSpec                // speculative read validation failed at commit
	CauseScan                // range-scan validation failed at commit (phantom)
)

func (c AbortCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseConflict:
		return "conflict"
	case CauseCapacity:
		return "capacity"
	case CauseLocked:
		return "locked"
	case CauseLease:
		return "lease"
	case CauseExplicit:
		return "explicit"
	case CauseRemote:
		return "remote-lock"
	case CauseUser:
		return "user"
	case CauseSpec:
		return "spec-validate"
	case CauseScan:
		return "scan-validate"
	default:
		return fmt.Sprintf("AbortCause(%d)", int(c))
	}
}

// TraceKind distinguishes what a TraceEvent records.
type TraceKind uint8

const (
	// TraceTx is a whole-transaction event (the default, zero value).
	TraceTx TraceKind = iota
	// TraceArmSwitch is an adaptive read-arm reclassification: a heat-table
	// bucket crossed a threshold and changed arms. TxID holds the packed
	// heat key (node‖table‖bucket), Hot the new classification (true =
	// reads now take the lease arm), and StartNS the worker's virtual
	// clock at the switch; the phase/outcome fields are unused.
	TraceArmSwitch
	// TraceFailover is a hot-failover promotion: Node holds the crashed
	// primary, Worker the promoted backup, TxID the partition's new packed
	// view word (epoch<<8|owner), Attempts the redo records replayed, and
	// TotalNS the promotion's wall-clock duration; other fields are unused.
	TraceFailover
)

func (k TraceKind) String() string {
	switch k {
	case TraceTx:
		return "tx"
	case TraceArmSwitch:
		return "arm-switch"
	case TraceFailover:
		return "failover"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one traced transaction: identity, disposition, and the
// phase timeline in modeled (virtual-clock) nanoseconds. StartNS is the
// worker's virtual clock at Exec entry; phase durations are deltas of the
// same clock, so `StartNS + LockNS + ...` reconstructs phase timestamps.
// Kind != TraceTx marks protocol events that share the ring (arm switches);
// see the TraceKind constants for their field conventions.
type TraceEvent struct {
	Seq      uint64    // per-worker monotonic sequence
	Kind     TraceKind // what this event records (TraceTx for transactions)
	Hot      bool      // TraceArmSwitch: new classification (true = lease arm)
	TxID     uint64
	Node     int32
	Worker   int32
	Attempts int32 // whole-transaction attempts (1 = first try)
	Outcome  Outcome
	Abort    AbortCause // last abort cause seen (CauseNone if clean)

	StartNS  int64 // worker vtime at transaction start
	LockNS   int64 // Start phase: remote lock/lease + prefetch
	HTMNS    int64 // LocalTX phase (HTM attempts and/or fallback body)
	CommitNS int64 // Commit phase: remote write-back + unlock
	TotalNS  int64 // Exec entry to return
}

// traceRing is a bounded per-worker ring buffer of TraceEvents. Pushes take
// a mutex — tracing is a debug feature, not a hot-path one; when tracing is
// off the ring does not exist and the only cost is an atomic pointer load.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceEvent
	next int
	seq  uint64
	full bool
}

func (r *traceRing) push(ev TraceEvent) {
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// drain returns buffered events oldest-first and empties the ring.
func (r *traceRing) drain() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TraceEvent
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	r.next = 0
	r.full = false
	return out
}

// EnableTrace switches transaction tracing on, giving each shard a ring of
// perWorker events (minimum 1). Newer events overwrite older ones.
func (r *Registry) EnableTrace(perWorker int) {
	if perWorker < 1 {
		perWorker = 1
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	for _, s := range r.shards {
		s.ring.Store(&traceRing{buf: make([]TraceEvent, perWorker)})
	}
	r.tracing.Store(true)
}

// DisableTrace switches tracing off and frees the rings. Undrained events
// are discarded.
func (r *Registry) DisableTrace() {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	r.tracing.Store(false)
	for _, s := range r.shards {
		s.ring.Store(nil)
	}
}

// DrainTrace returns and clears all buffered trace events, grouped by
// worker shard and oldest-first within each worker. Safe to call while
// workers are still tracing.
func (r *Registry) DrainTrace() []TraceEvent {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	var out []TraceEvent
	for _, s := range r.shards {
		if ring := s.ring.Load(); ring != nil {
			out = append(out, ring.drain()...)
		}
	}
	return out
}
