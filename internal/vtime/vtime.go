// Package vtime provides per-worker virtual clocks and the calibrated cost
// model used to report throughput and latency figures.
//
// The simulator runs a real concurrent implementation (goroutine workers,
// shared memory, genuine conflicts/aborts/retries), but the machine running
// it may have a single core, so wall-clock time cannot express the
// parallelism of the paper's 6-node x 10-core cluster. Instead every
// operation charges its modeled cost to the issuing worker's virtual clock;
// an experiment's throughput is committed work divided by the maximum worker
// virtual time, and latency percentiles come from per-transaction virtual
// durations. The constants in DefaultModel are calibrated against the
// paper's own measurements (Figure 10(a), Section 6.3) and are printed by
// every experiment that uses them.
package vtime

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a worker's private virtual clock. Charge is called only by the
// owning goroutine; Now may be called concurrently (e.g. by a reporter).
type Clock struct {
	ns atomic.Int64
}

// Charge advances the clock by d.
func (c *Clock) Charge(d time.Duration) { c.ns.Add(int64(d)) }

// ChargeNS advances the clock by ns nanoseconds.
func (c *Clock) ChargeNS(ns int64) { c.ns.Add(ns) }

// Now returns the elapsed virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.ns.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// Model holds the cost constants. All values are in nanoseconds (or
// nanoseconds per byte for the bandwidth terms).
type Model struct {
	// One-sided RDMA verbs on ConnectX-3 56 Gbps InfiniBand.
	// Base latencies from Figure 10(a): ~26.3 Mops aggregate small READs
	// over 40 client threads => ~1.5 us per op; bandwidth ~6.5 GB/s.
	RDMAReadBaseNS     int64
	RDMAReadPerByteNS  float64
	RDMAWriteBaseNS    int64
	RDMAWritePerByteNS float64
	// RDMA atomics: Section 6.3 measures RDMA CAS at 14.5 us on the
	// paper's NIC (two orders of magnitude slower than local CAS, 0.08 us).
	RDMACASNS  int64
	LocalCASNS int64

	// Two-sided SEND/RECV verbs (used for INSERT/DELETE shipping and
	// ordered-store remote access): one-way user-space message.
	VerbsMsgBaseNS    int64
	VerbsMsgPerByteNS float64

	// IPoIB socket messaging (Calvin's transport): heavy OS involvement.
	IPoIBMsgBaseNS    int64
	IPoIBMsgPerByteNS float64

	// HTM region costs.
	HTMBeginNS     int64
	HTMCommitNS    int64
	HTMPerReadNS   int64 // per tracked word read
	HTMPerWriteNS  int64 // per buffered word write
	HTMAbortNS     int64 // abort handling / register restore
	FallbackLockNS int64 // software fallback lock acquire/release pair

	// Store-level local operation costs (outside the word-granular HTM
	// charges): hash computation + probe, B+ tree descent, etc.
	HashProbeNS  int64
	BTreeOpNS    int64
	MemCopyPerNS float64 // per byte for record copies

	// Durability: NVRAM log append (battery-backed DRAM write + ordering).
	NVRAMAppendBaseNS    int64
	NVRAMAppendPerByteNS float64

	// Replication: one-sided log-append WRITE into a backup's ring-buffer
	// log region (FaRM commit-backup). Slightly above a plain RDMA WRITE:
	// the NIC-side append steers through the remote ring's head register.
	LogAppendBaseNS    int64
	LogAppendPerByteNS float64

	// TimeoutNS is the modeled cost of a verb that fails (lost completion,
	// unreachable target): the issuing worker's virtual clock is charged a
	// full local timeout before the error surfaces, as a real QP would spin
	// on the completion queue until its timeout fires.
	TimeoutNS int64

	// DoorbellNS is the per-work-request CPU cost of the async verb engine:
	// building the WQE, ringing the doorbell (MMIO) and later consuming the
	// completion from the CQ. Work requests posted in one batch overlap in
	// the fabric, so a polled batch charges the *maximum* completion latency
	// plus this per-WR posting cost — see BatchOverlapNS.
	DoorbellNS int64

	// Server-side NIC capacity (used by closed-form saturation analysis in
	// the KV experiments, Figure 10): small-op rate cap and wire bandwidth.
	// Calibrated to Figure 10(a): ~26.3 Mops small READs, ~7 GB/s.
	NICOpCapPerSec  float64
	NICBandwidthBps float64
}

// DefaultModel returns constants calibrated to the paper's cluster.
func DefaultModel() Model {
	return Model{
		RDMAReadBaseNS:     1500,
		RDMAReadPerByteNS:  0.15,
		RDMAWriteBaseNS:    1200,
		RDMAWritePerByteNS: 0.15,
		RDMACASNS:          14500,
		LocalCASNS:         80,

		VerbsMsgBaseNS:    3000,
		VerbsMsgPerByteNS: 0.15,

		IPoIBMsgBaseNS:    55000,
		IPoIBMsgPerByteNS: 0.8,

		HTMBeginNS:     45,
		HTMCommitNS:    110,
		HTMPerReadNS:   4,
		HTMPerWriteNS:  6,
		HTMAbortNS:     150,
		FallbackLockNS: 160,

		HashProbeNS:  60,
		BTreeOpNS:    400,
		MemCopyPerNS: 0.06,

		NVRAMAppendBaseNS:    180,
		NVRAMAppendPerByteNS: 0.12,

		LogAppendBaseNS:    1400,
		LogAppendPerByteNS: 0.15,

		TimeoutNS: 1_000_000, // 1 ms QP completion timeout

		DoorbellNS: 200, // WQE build + doorbell MMIO + CQ poll per WR

		NICOpCapPerSec:  27e6,
		NICBandwidthBps: 7e9,
	}
}

// RDMARead returns the modeled latency of a one-sided READ of n bytes.
func (m *Model) RDMARead(n int) time.Duration {
	return time.Duration(m.RDMAReadBaseNS + int64(float64(n)*m.RDMAReadPerByteNS))
}

// RDMAWrite returns the modeled latency of a one-sided WRITE of n bytes.
func (m *Model) RDMAWrite(n int) time.Duration {
	return time.Duration(m.RDMAWriteBaseNS + int64(float64(n)*m.RDMAWritePerByteNS))
}

// RDMACAS returns the modeled latency of a one-sided atomic CAS.
func (m *Model) RDMACAS() time.Duration { return time.Duration(m.RDMACASNS) }

// VerbsMsg returns the one-way latency of a SEND/RECV message of n bytes.
func (m *Model) VerbsMsg(n int) time.Duration {
	return time.Duration(m.VerbsMsgBaseNS + int64(float64(n)*m.VerbsMsgPerByteNS))
}

// IPoIBMsg returns the one-way latency of a socket message over IPoIB.
func (m *Model) IPoIBMsg(n int) time.Duration {
	return time.Duration(m.IPoIBMsgBaseNS + int64(float64(n)*m.IPoIBMsgPerByteNS))
}

// BatchOverlapNS returns the modeled wall time of polling one batch of
// outstanding work requests to completion: the requests are in flight
// concurrently, so the batch completes when its slowest member does, plus
// the per-WR CPU/doorbell cost of posting and reaping each request. This is
// the overlap-aware charging rule of the async verb engine; a batch of one
// WR still pays one doorbell.
func (m *Model) BatchOverlapNS(costs []int64) int64 {
	var max int64
	for _, c := range costs {
		if c > max {
			max = c
		}
	}
	return max + int64(len(costs))*m.DoorbellNS
}

// LogAppend returns the modeled latency of a one-sided log-append WRITE of
// n bytes into a remote backup's ring-buffer log region.
func (m *Model) LogAppend(n int) time.Duration {
	return time.Duration(m.LogAppendBaseNS + int64(float64(n)*m.LogAppendPerByteNS))
}

// NVRAMAppend returns the cost of persisting n bytes to emulated NVRAM.
func (m *Model) NVRAMAppend(n int) time.Duration {
	return time.Duration(m.NVRAMAppendBaseNS + int64(float64(n)*m.NVRAMAppendPerByteNS))
}

// String renders the constants for experiment logs.
func (m *Model) String() string {
	return fmt.Sprintf(
		"cost model: rdma{read %dns+%.2fns/B, write %dns+%.2fns/B, cas %dns} "+
			"localCAS %dns doorbell %dns verbs %dns ipoib %dns htm{begin %d commit %d} "+
			"hash %dns btree %dns nvram %dns logappend %dns",
		m.RDMAReadBaseNS, m.RDMAReadPerByteNS, m.RDMAWriteBaseNS, m.RDMAWritePerByteNS,
		m.RDMACASNS, m.LocalCASNS, m.DoorbellNS, m.VerbsMsgBaseNS, m.IPoIBMsgBaseNS,
		m.HTMBeginNS, m.HTMCommitNS, m.HashProbeNS, m.BTreeOpNS, m.NVRAMAppendBaseNS,
		m.LogAppendBaseNS)
}
