package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockCharge(t *testing.T) {
	var c Clock
	c.Charge(5 * time.Microsecond)
	c.ChargeNS(500)
	if got := c.Now(); got != 5500*time.Nanosecond {
		t.Fatalf("Now = %v, want 5.5us", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not zero the clock")
	}
}

func TestModelMonotoneInSize(t *testing.T) {
	m := DefaultModel()
	if m.RDMARead(64) >= m.RDMARead(8192) {
		t.Fatal("RDMA read cost not monotone in payload")
	}
	if m.RDMAWrite(0) <= 0 || m.RDMACAS() <= 0 {
		t.Fatal("non-positive op costs")
	}
	// The paper's headline atomics gap: RDMA CAS >> local CAS.
	if m.RDMACAS() < 50*time.Duration(m.LocalCASNS) {
		t.Fatal("RDMA CAS should be orders of magnitude above local CAS")
	}
}

func TestModelString(t *testing.T) {
	m := DefaultModel()
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty model description")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	p50 := h.Percentile(50)
	if p50 < 40*time.Microsecond || p50 > 60*time.Microsecond {
		t.Fatalf("p50 = %v, want ~50us", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 90*time.Microsecond {
		t.Fatalf("p99 = %v, want >=90us", p99)
	}
	if h.Max() != 100*time.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 45*time.Microsecond || mean > 55*time.Microsecond {
		t.Fatalf("Mean = %v, want ~50.5us", mean)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(time.Microsecond)
	b.Record(time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != time.Millisecond {
		t.Fatalf("merged max = %v", a.Max())
	}
}

// TestQuickPercentileBounds: for any positive samples, percentile estimates
// are within one bucket (5%) above the true value and never below p=0.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		var maxv int64
		for _, r := range raw {
			v := int64(r%1_000_000) + 1
			if v > maxv {
				maxv = v
			}
			h.Record(time.Duration(v))
		}
		p100 := h.Percentile(100)
		// Upper bound within 6% of the true max.
		return int64(p100) >= maxv && float64(p100) <= float64(maxv)*1.06+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenCosts pins the calibrated constants the protocol arms are
// evaluated against. If a recalibration moves them, the speculative-read
// analysis (one READ ~1.5µs vs one CAS ~14.5µs per read-set record; the
// `occ` experiment's acceptance thresholds) must be revisited deliberately
// — this test makes that an explicit decision instead of a silent drift.
func TestGoldenCosts(t *testing.T) {
	m := DefaultModel()
	if m.RDMAReadBaseNS != 1500 {
		t.Errorf("RDMAReadBaseNS = %d, want 1500", m.RDMAReadBaseNS)
	}
	if m.RDMACASNS != 14500 {
		t.Errorf("RDMACASNS = %d, want 14500", m.RDMACASNS)
	}
	if m.DoorbellNS != 200 {
		t.Errorf("DoorbellNS = %d, want 200", m.DoorbellNS)
	}
	if m.LogAppendBaseNS != 1400 {
		t.Errorf("LogAppendBaseNS = %d, want 1400", m.LogAppendBaseNS)
	}
	// The commit-backup wave must stay a one-sided-WRITE-class operation:
	// cheaper than a SEND/RECV RPC of the same payload and far below an
	// RDMA CAS, or the "faster than RPCs" premise of log-append commit dies.
	if la := int64(m.LogAppend(64)); la >= int64(m.VerbsMsg(64)) || la >= m.RDMACASNS {
		t.Errorf("LogAppend(64) = %d, want < VerbsMsg(64)=%d and < CAS=%d",
			la, int64(m.VerbsMsg(64)), m.RDMACASNS)
	}
	// One speculative read-set record costs one entry READ; the lease arm
	// pays a CAS on top. The arm's raison d'être: ≥2.5x per-record gap even
	// counting the commit-time validation re-READ against the spec arm.
	entry := int64(m.RDMARead(5 * 8)) // key|incver|state + 2 value words
	header := int64(m.RDMARead(2 * 8))
	spec := entry + header
	lease := m.RDMACASNS + entry
	if lease < 5*spec/2 {
		t.Errorf("lease/spec per-record cost = %d/%d = %.2fx, want >= 2.5x",
			lease, spec, float64(lease)/float64(spec))
	}
}
