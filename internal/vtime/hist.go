package vtime

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Histogram records latency samples and answers percentile queries. It keeps
// log-spaced buckets (5% resolution) so memory stays constant regardless of
// sample count. Safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets map[int]int64
	count   int64
	sum     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int]int64)}
}

// logBase spaces buckets ~5% apart.
var logBase = math.Log(1.05)

func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	return int(math.Log(float64(ns))/logBase) + 1
}

func bucketUpper(b int) int64 {
	if b == 0 {
		return 0
	}
	return int64(math.Exp(float64(b) * logBase))
}

// Record adds a sample.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	h.mu.Lock()
	h.buckets[bucketOf(ns)]++
	h.count++
	h.sum += ns
	if ns > h.max {
		h.max = ns
	}
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Percentile returns an upper bound on the p-th percentile (0 < p <= 100).
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := int64(math.Ceil(p / 100 * float64(h.count)))
	var cum int64
	for _, k := range keys {
		cum += h.buckets[k]
		if cum >= target {
			return time.Duration(bucketUpper(k))
		}
	}
	return time.Duration(h.max)
}

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	ob := make(map[int]int64, len(other.buckets))
	for k, v := range other.buckets {
		ob[k] = v
	}
	oc, os, om := other.count, other.sum, other.max
	other.mu.Unlock()

	h.mu.Lock()
	for k, v := range ob {
		h.buckets[k] += v
	}
	h.count += oc
	h.sum += os
	if om > h.max {
		h.max = om
	}
	h.mu.Unlock()
}
