package tatp_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtm"
	"drtm/internal/tatp"
)

func openTATP(t *testing.T, nodes, workers int, opts drtm.Options) (*drtm.DB, *tatp.Workload) {
	t.Helper()
	cfg := tatp.Config{Nodes: nodes, Subscribers: 20 * nodes}
	opts.Nodes = nodes
	opts.WorkersPerNode = workers
	db := drtm.MustOpen(opts, cfg.Partitioner())
	w, err := tatp.Setup(db.RT, cfg)
	if err != nil {
		db.Close()
		t.Fatal(err)
	}
	return db, w
}

func TestSetupPassesAudit(t *testing.T) {
	db, w := openTATP(t, 2, 1, drtm.Options{})
	defer db.Close()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
	// Sanity: the index resolves a subscriber's phone number back.
	if v, ok := db.Get(tatp.TableSubNbrIndex, tatp.SubNbr(3)); !ok || v[0] != 3 {
		t.Fatalf("index row for subscriber 3 = %v,%v", v, ok)
	}
}

func TestTransactionsMaintainInvariant(t *testing.T) {
	db, w := openTATP(t, 2, 1, drtm.Options{})
	defer db.Close()
	cl := w.NewClient(db.Executor(0, 0), 1)
	for i := 0; i < 800; i++ {
		if err := cl.RunOne(); err != nil && !errors.Is(err, drtm.ErrRetry) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
	if len(cl.Counts) < 5 {
		t.Fatalf("mix too narrow: %v", cl.Counts)
	}
}

// The index/base divergence audit (satellite): a randomized op-mix stress —
// inserts, updates, deletes, scans — under verb-level fault injection, with
// live RO invariant checkers riding along; at quiesce, every secondary
// index is rebuilt from its base table and diffed against the maintained
// one. Run with -race.
func TestTATPDivergenceAuditUnderFaults(t *testing.T) {
	const nodes, workers = 2, 2
	db, w := openTATP(t, nodes, workers, drtm.Options{FaultSeed: 7})
	defer db.Close()
	db.InjectNodeFaults(0, drtm.FaultRule{FailProb: 0.01})
	db.InjectNodeFaults(1, drtm.FaultRule{FailProb: 0.01})

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(100+n*workers+wk))
			wg.Add(1)
			go func(n, wk int, cl *tatp.Client) {
				defer wg.Done()
				sid := uint64(1)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if wk == workers-1 && i%4 == 0 {
						// Live checker lane: one RO snapshot check per burst.
						sid = sid%uint64(w.Cfg.Subscribers) + 1
						if err := cl.CheckSubscriberRO(sid); err != nil {
							violations.Store(err)
							return
						}
						continue
					}
					if err := cl.RunOne(); err != nil &&
						!errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(n, wk, cl)
		}
	}
	time.Sleep(60 * time.Millisecond)
	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	db.ClearFaults()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The TATP consistency checker (satellite): the facility invariant holds
// live under concurrent traffic THROUGH a mid-run crash and hot failover
// (ReplicationFactor=1), with verb faults injected, and the quiesced audit
// passes against the promoted backup's shards afterwards. Run with -race.
func TestTATPConsistencyAcrossFailover(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		victim  = 1
	)
	db, w := openTATP(t, nodes, workers, drtm.Options{
		Durability:        true,
		ReplicationFactor: 1,
		FaultSeed:         11,
	})
	defer db.Close()
	db.InjectNodeFaults(2, drtm.FaultRule{FailProb: 0.005})

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(200+n*workers+wk))
			wg.Add(1)
			go func(n, wk int, cl *tatp.Client) {
				defer wg.Done()
				sid := uint64(n)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					var err error
					if wk == workers-1 && i%4 == 0 {
						sid = sid%uint64(w.Cfg.Subscribers) + 1
						err = cl.CheckSubscriberRO(sid)
						if err != nil {
							violations.Store(err)
							return
						}
						continue
					}
					err = cl.RunOne()
					if err != nil && !errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(n, wk, cl)
		}
	}

	time.Sleep(25 * time.Millisecond) // build replicated state
	db.Crash(victim)
	rep := db.Failover(victim)
	if !rep.Promoted {
		t.Fatalf("failover did not promote: %+v", rep)
	}
	time.Sleep(25 * time.Millisecond) // traffic against the promoted partition

	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	db.ClearFaults()
	if db.PartitionOwner(victim) == victim {
		t.Fatal("partition not failed over")
	}
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The MVCC checker lane (satellite): CheckSubscriberRO runs through
// PolicyMVCC — the facility-mask invariant spans a subscriber row plus a
// facility range scan, so a snapshot read observing half of a
// ToggleSpecialFacility commit fails it — under verb faults and a mid-run
// crash + hot failover (ReplicationFactor=1), exercising the replica
// version chains the redo drain maintains. Run with -race.
func TestTATPMVCCCheckerAcrossFailover(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		victim  = 1
	)
	db, w := openTATP(t, nodes, workers, drtm.Options{
		Durability:        true,
		ReplicationFactor: 1,
		FaultSeed:         17,
		ReadPolicy:        drtm.PolicyMVCC,
	})
	defer db.Close()
	db.InjectNodeFaults(2, drtm.FaultRule{FailProb: 0.005})

	var (
		wg         sync.WaitGroup
		stop       = make(chan struct{})
		violations atomic.Value
	)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(500+n*workers+wk))
			wg.Add(1)
			go func(n, wk int, cl *tatp.Client) {
				defer wg.Done()
				sid := uint64(n)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if wk == workers-1 && i%4 == 0 {
						sid = sid%uint64(w.Cfg.Subscribers) + 1
						if err := cl.CheckSubscriberRO(sid); err != nil {
							violations.Store(err)
							return
						}
						continue
					}
					if err := cl.RunOne(); err != nil &&
						!errors.Is(err, drtm.ErrRetry) && !errors.Is(err, drtm.ErrNodeDown) {
						violations.Store(err)
						return
					}
				}
			}(n, wk, cl)
		}
	}

	time.Sleep(25 * time.Millisecond) // build replicated state
	db.Crash(victim)
	rep := db.Failover(victim)
	if !rep.Promoted {
		t.Fatalf("failover did not promote: %+v", rep)
	}
	time.Sleep(25 * time.Millisecond) // snapshot reads against the promoted partition

	close(stop)
	wg.Wait()
	if v := violations.Load(); v != nil {
		t.Fatal(v.(error))
	}
	if db.Stats().MVCCReads == 0 {
		t.Fatal("checker lane never resolved a snapshot read over the chains")
	}
	db.ClearFaults()
	if err := w.Audit(); err != nil {
		t.Fatal(err)
	}
}
