// Package tatp implements a TATP-style telecom workload (Neuvonen et al.,
// the "Telecommunication Application Transaction Processing" benchmark) over
// DrTM's ordered tables and secondary indexes: index-heavy point lookups
// (UPDATE_LOCATION resolves subscribers by phone number through the sub_nbr
// secondary index), short range scans over composite keys, and a
// subscriber-lifecycle insert/delete mix that exercises the transactional
// WInsert/Erase machinery.
//
// The schema is the benchmark's, compressed into word values:
//
//	SUBSCRIBER       key s_id            val [sub_nbr, sf_mask, msc_location]
//	SPECIAL_FACILITY key s_id<<8|sf_type val [is_active, data_a]
//	CALL_FORWARDING  key s_id<<16|sf_type<<8|start val [end_time, numberx]
//	SUB_NBR index    key sub_nbr         val [s_id]   (declared secondary index)
//
// Composite keys put the subscriber ID in the high bits, so one subscriber's
// facility and forwarding rows co-locate on its partition and range scans of
// them are single-node; the tables' segment shifts (8 and 16) make the
// phantom stamps per-subscriber, so unrelated subscribers' inserts never
// invalidate a scan. sub_nbr is an invertible mix of s_id, which lets the
// partitioner co-locate every index entry with its base row — the contract
// secondary-index maintenance requires.
//
// The consistency invariant (checked by CheckSubscriberRO live under
// traffic, and by Audit at quiesce): every live subscriber's sf_mask bit t
// is set iff the SPECIAL_FACILITY row s_id<<8|t is live, and the sub_nbr
// index row set equals exactly the live subscriber set. Both sides of each
// equivalence always change in one transaction, so any observable divergence
// is an atomicity bug.
package tatp

import (
	"fmt"
	"math/rand"

	"drtm/internal/cluster"
	"drtm/internal/kvs"
	"drtm/internal/memory"
	"drtm/internal/tx"
)

// Table IDs.
const (
	TableSubscriber      = 20
	TableSpecialFacility = 21
	TableCallForwarding  = 22
	TableSubNbrIndex     = 23
)

// Facility types are 1..4 (benchmark convention).
const NumSFTypes = 4

// subNbrMul is an odd 64-bit mixing constant; sub_nbr = s_id * subNbrMul is
// a bijection on uint64, inverted with subNbrInv so the partitioner can
// route an index key to its base row's home.
const subNbrMul = 0x9E3779B97F4A7C15

var subNbrInv uint64

func init() {
	// Newton's iteration for the multiplicative inverse mod 2^64.
	inv := uint64(subNbrMul)
	for i := 0; i < 6; i++ {
		inv *= 2 - subNbrMul*inv
	}
	if subNbrMul*inv != 1 {
		panic("tatp: bad sub_nbr inverse")
	}
	subNbrInv = inv
}

// SubNbr returns subscriber s's phone number (the indexed attribute).
func SubNbr(sid uint64) uint64 { return sid * subNbrMul }

// SidOfSubNbr inverts SubNbr.
func SidOfSubNbr(nbr uint64) uint64 { return nbr * subNbrInv }

// Key encodings.
func SFKey(sid uint64, sfType int) uint64 { return sid<<8 | uint64(sfType) }
func CFKey(sid uint64, sfType, start int) uint64 {
	return sid<<16 | uint64(sfType)<<8 | uint64(start)
}

// Config sizes the workload.
type Config struct {
	Nodes       int
	Subscribers int // total s_id space: 1..Subscribers
}

// DefaultConfig returns a small-but-contended sizing.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, Subscribers: 64 * nodes}
}

// NodeOf returns a subscriber's home node.
func (c Config) NodeOf(sid uint64) int { return int(sid) % c.Nodes }

// Partitioner routes every table by the owning subscriber, co-locating a
// subscriber's facility rows, forwarding rows and index entry with it.
func (c Config) Partitioner() tx.Partitioner {
	return func(table int, key uint64) int {
		return c.NodeOf(c.sidOf(table, key))
	}
}

func (c Config) sidOf(table int, key uint64) uint64 {
	switch table {
	case TableSubscriber:
		return key
	case TableSpecialFacility:
		return key >> 8
	case TableCallForwarding:
		return key >> 16
	case TableSubNbrIndex:
		return SidOfSubNbr(key)
	default:
		panic(fmt.Sprintf("tatp: unknown table %d", table))
	}
}

// Workload owns the populated tables.
type Workload struct {
	Cfg Config
	rt  *tx.Runtime
}

// Setup defines the tables and the sub_nbr index on an existing runtime
// (whose partitioner must be cfg.Partitioner()) and inserts every
// subscriber with a deterministic initial facility mask.
func Setup(rt *tx.Runtime, cfg Config) (*Workload, error) {
	per := cfg.Subscribers + 64
	rt.DefineOrderedSeg(TableSubscriber, 4*per, 3, 0)
	rt.DefineOrderedSeg(TableSpecialFacility, 4*per*NumSFTypes, 2, 8)
	rt.DefineOrderedSeg(TableCallForwarding, 8*per, 2, 16)
	rt.DefineOrderedSeg(TableSubNbrIndex, 4*per, 1, 0)
	rt.DefineIndex(TableSubscriber, tx.IndexSpec{
		Table: TableSubNbrIndex,
		Key:   func(baseKey uint64, val []uint64) uint64 { return val[0] },
	})
	w := &Workload{Cfg: cfg, rt: rt}
	for s := uint64(1); s <= uint64(cfg.Subscribers); s++ {
		mask := initialMask(s)
		if err := w.loadSubscriber(s, mask); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// initialMask deterministically assigns each subscriber 1..4 facilities
// (bits 1..4 of sf_mask).
func initialMask(sid uint64) uint64 { return (sid*7%15 + 1) << 1 }

// loadSubscriber bulk-inserts one subscriber and its facility and index
// rows directly on the home shard (and every backup's replica shard).
func (w *Workload) loadSubscriber(sid, mask uint64) error {
	part := w.Cfg.NodeOf(sid)
	type shard struct{ sub, sf, idx *kvs.Ordered }
	shards := []shard{{
		w.rt.C.Node(part).Ordered(TableSubscriber),
		w.rt.C.Node(part).Ordered(TableSpecialFacility),
		w.rt.C.Node(part).Ordered(TableSubNbrIndex),
	}}
	for _, b := range w.rt.C.Backups(nil, part) {
		n := w.rt.C.Node(b)
		sub, ok1 := n.OrderedRegion(cluster.ReplicaRegion(part, TableSubscriber))
		sf, ok2 := n.OrderedRegion(cluster.ReplicaRegion(part, TableSpecialFacility))
		idx, ok3 := n.OrderedRegion(cluster.ReplicaRegion(part, TableSubNbrIndex))
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("tatp: missing replica shards for partition %d on node %d", part, b)
		}
		shards = append(shards, shard{sub, sf, idx})
	}
	for _, sh := range shards {
		if err := sh.sub.Insert(sid, []uint64{SubNbr(sid), mask, 0}); err != nil {
			return fmt.Errorf("tatp: load subscriber %d: %w", sid, err)
		}
		if err := sh.idx.Insert(SubNbr(sid), []uint64{sid}); err != nil {
			return fmt.Errorf("tatp: load index %d: %w", sid, err)
		}
		for t := 1; t <= NumSFTypes; t++ {
			if mask&(1<<uint(t)) == 0 {
				continue
			}
			if err := sh.sf.Insert(SFKey(sid, t), []uint64{1, sid}); err != nil {
				return fmt.Errorf("tatp: load sf %d/%d: %w", sid, t, err)
			}
		}
	}
	return nil
}

// Client issues TATP transactions from one worker.
type Client struct {
	w   *Workload
	e   *tx.Executor
	rng *rand.Rand
	// Counts of committed ops by name.
	Counts map[string]int64
}

// NewClient binds a client to an executor.
func (w *Workload) NewClient(e *tx.Executor, seed int64) *Client {
	return &Client{w: w, e: e, rng: rand.New(rand.NewSource(seed)), Counts: map[string]int64{}}
}

func (c *Client) pick() uint64 {
	return uint64(c.rng.Intn(c.w.Cfg.Subscribers)) + 1
}

// RunOne draws and executes one transaction from the mix. ErrNotFound and
// ErrExists outcomes are benign races of the lifecycle mix, not failures.
func (c *Client) RunOne() error {
	sid := c.pick()
	var name string
	var err error
	switch r := c.rng.Intn(100); {
	case r < 30:
		name, err = "get-subscriber", c.GetSubscriberData(sid)
	case r < 45:
		name, err = "get-new-destination", c.GetNewDestination(sid, 1+c.rng.Intn(NumSFTypes))
	case r < 60:
		name, err = "update-location", c.UpdateLocation(SubNbr(sid), uint64(c.rng.Intn(1<<16)))
	case r < 72:
		name, err = "toggle-facility", c.ToggleSpecialFacility(sid, 1+c.rng.Intn(NumSFTypes))
	case r < 82:
		name, err = "insert-call-fwd", c.InsertCallForwarding(sid, 1+c.rng.Intn(NumSFTypes), c.rng.Intn(24))
	case r < 90:
		name, err = "delete-call-fwd", c.DeleteCallForwarding(sid, 1+c.rng.Intn(NumSFTypes), c.rng.Intn(24))
	case r < 95:
		name, err = "delete-subscriber", c.DeleteSubscriber(sid)
	default:
		name, err = "insert-subscriber", c.InsertSubscriber(sid, (uint64(c.rng.Intn(15))+1)<<1)
	}
	if err == nil {
		c.Counts[name]++
	}
	return err
}

// GetSubscriberData is the RO point read (35% of classic TATP).
func (c *Client) GetSubscriberData(sid uint64) error {
	err := c.e.ExecRO(func(ro *tx.RO) error {
		_, err := ro.Read(TableSubscriber, sid)
		return err
	})
	if err == tx.ErrNotFound {
		return nil
	}
	return err
}

// GetNewDestination scans the subscriber's live forwarding rows for one
// facility type (an RO range scan over the composite-key table).
func (c *Client) GetNewDestination(sid uint64, sfType int) error {
	err := c.e.ExecRO(func(ro *tx.RO) error {
		_, err := ro.Scan(TableCallForwarding,
			CFKey(sid, sfType, 0), CFKey(sid, sfType, 0xFF), 0)
		return err
	})
	return err
}

// UpdateLocation resolves the subscriber through the sub_nbr secondary
// index transactionally, then updates msc_location — the index-heavy
// point-lookup path TATP is known for.
func (c *Client) UpdateLocation(subNbr, loc uint64) error {
	sid := SidOfSubNbr(subNbr)
	err := c.e.Exec(func(t *tx.Tx) error {
		if err := t.R(TableSubNbrIndex, subNbr); err != nil {
			return err
		}
		if err := t.W(TableSubscriber, sid); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error {
			ix, err := lc.Read(TableSubNbrIndex, subNbr)
			if err != nil {
				return err
			}
			if ix[0] != sid {
				return fmt.Errorf("tatp: index row %#x resolves to %d, want %d", subNbr, ix[0], sid)
			}
			v, err := lc.Read(TableSubscriber, sid)
			if err != nil {
				return err
			}
			return lc.Write(TableSubscriber, sid, []uint64{v[0], v[1], loc})
		})
	})
	if err == tx.ErrNotFound {
		return nil // subscriber deleted under us: benign
	}
	return err
}

// ToggleSpecialFacility flips facility sfType for the subscriber: the
// sf_mask bit on the SUBSCRIBER row and the SPECIAL_FACILITY row's
// existence change in ONE transaction — the invariant the checker audits.
func (c *Client) ToggleSpecialFacility(sid uint64, sfType int) error {
	bit := uint64(1) << uint(sfType)
	key := SFKey(sid, sfType)
	err := c.e.Exec(func(t *tx.Tx) error {
		if err := t.W(TableSubscriber, sid); err != nil {
			return err
		}
		// Try to add the facility row; ErrExists means it is live, so this
		// transaction drops it instead.
		drop := false
		if err := t.WInsert(TableSpecialFacility, key, []uint64{1, sid}); err != nil {
			if err != kvs.ErrExists {
				return err
			}
			drop = true
			if _, err := t.Erase(TableSpecialFacility, key); err != nil {
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error {
			v, err := lc.Read(TableSubscriber, sid)
			if err != nil {
				return err
			}
			mask := v[1]
			if drop {
				mask &^= bit
			} else {
				mask |= bit
			}
			return lc.Write(TableSubscriber, sid, []uint64{v[0], mask, v[2]})
		})
	})
	if err == tx.ErrNotFound {
		return nil
	}
	return err
}

// InsertCallForwarding checks the facility is live (a transactional range
// scan with phantom protection), then inserts the forwarding row.
func (c *Client) InsertCallForwarding(sid uint64, sfType, start int) error {
	err := c.e.Exec(func(t *tx.Tx) error {
		rows, err := t.Scan(TableSpecialFacility, SFKey(sid, sfType), SFKey(sid, sfType), 1)
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil // facility not active: benign no-op
		}
		if err := t.WInsert(TableCallForwarding,
			CFKey(sid, sfType, start), []uint64{uint64(start) + 8, SubNbr(sid)}); err != nil {
			if err == kvs.ErrExists {
				return tx.ErrUserAbort // already forwarded: abort cleanly
			}
			return err
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrUserAbort || err == tx.ErrNotFound {
		return nil
	}
	return err
}

// DeleteCallForwarding erases one forwarding row if present.
func (c *Client) DeleteCallForwarding(sid uint64, sfType, start int) error {
	err := c.e.Exec(func(t *tx.Tx) error {
		if _, err := t.Erase(TableCallForwarding, CFKey(sid, sfType, start)); err != nil {
			return err
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrNotFound {
		return nil
	}
	return err
}

// DeleteSubscriber removes the subscriber, its facility rows and (via the
// declared index) its sub_nbr entry in one transaction. The facility set is
// taken from the sf_mask observed at declare; commit re-verifies the
// subscriber row's version, so a racing toggle retries the whole delete.
func (c *Client) DeleteSubscriber(sid uint64) error {
	err := c.e.Exec(func(t *tx.Tx) error {
		old, err := t.Erase(TableSubscriber, sid)
		if err != nil {
			return err
		}
		for ty := 1; ty <= NumSFTypes; ty++ {
			if old[1]&(1<<uint(ty)) == 0 {
				continue
			}
			if _, err := t.Erase(TableSpecialFacility, SFKey(sid, ty)); err != nil {
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrNotFound {
		return nil
	}
	return err
}

// InsertSubscriber re-creates a subscriber with the given facility mask
// (bits 1..4), inserting the base row, the index row (declared index) and
// every masked facility row atomically.
func (c *Client) InsertSubscriber(sid, mask uint64) error {
	mask &= 0x1E
	err := c.e.Exec(func(t *tx.Tx) error {
		if err := t.WInsert(TableSubscriber, sid, []uint64{SubNbr(sid), mask, 0}); err != nil {
			if err == kvs.ErrExists {
				return tx.ErrUserAbort
			}
			return err
		}
		for ty := 1; ty <= NumSFTypes; ty++ {
			if mask&(1<<uint(ty)) == 0 {
				continue
			}
			if err := t.WInsert(TableSpecialFacility, SFKey(sid, ty), []uint64{1, sid}); err != nil {
				return err
			}
		}
		return t.Execute(func(lc *tx.Local) error { return nil })
	})
	if err == tx.ErrUserAbort {
		return nil
	}
	return err
}

// CheckSubscriberRO verifies the facility invariant for one subscriber with
// a single read-only transaction: the facility-range scan and the
// subscriber read confirm together, so the comparison sees one snapshot. A
// subscriber mid-delete reads as missing and is skipped (the quiesced Audit
// covers orphan detection).
func (c *Client) CheckSubscriberRO(sid uint64) error {
	var violation error
	err := c.e.ExecRO(func(ro *tx.RO) error {
		violation = nil
		rows, err := ro.Scan(TableSpecialFacility, SFKey(sid, 1), SFKey(sid, NumSFTypes), 0)
		if err != nil {
			return err
		}
		sub, err := ro.Read(TableSubscriber, sid)
		if err == tx.ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		var got uint64
		for _, r := range rows {
			got |= 1 << uint(r.Key&0xFF)
		}
		if got != sub[1]&0x1E {
			violation = fmt.Errorf("tatp: subscriber %d: sf_mask %#x but live facility rows %#x",
				sid, sub[1]&0x1E, got)
		}
		return nil
	})
	if err != nil {
		return nil // RO retry budget exhausted under contention: not a verdict
	}
	return violation
}

// shardsFor resolves a partition's current ordered shards under the view: a
// failed-over partition is audited on the promoted backup's replica shards.
func (w *Workload) shardFor(part, table int) (*kvs.Ordered, error) {
	node, region := part, table
	if owner := w.rt.C.OwnerOf(part); owner != part {
		node, region = owner, cluster.ReplicaRegion(part, table)
	}
	o, ok := w.rt.C.Node(node).OrderedRegion(region)
	if !ok {
		return nil, fmt.Errorf("tatp: no shard for table %d partition %d", table, part)
	}
	return o, nil
}

// liveSet walks one ordered shard and returns its live rows. Call only at
// quiesce — it reads the arena directly.
func liveSet(o *kvs.Ordered) map[uint64][]uint64 {
	out := map[uint64][]uint64{}
	arena := o.Arena()
	vw := o.ValueWords()
	o.Scan(0, ^uint64(0), func(k uint64, off memory.Offset) bool {
		if kvs.Live(kvs.Incarnation(arena.LoadWord(kvs.IncVerOffset(off)))) {
			val := make([]uint64, vw)
			arena.Read(val, kvs.ValueOffset(off))
			out[k] = val
		}
		return true
	})
	return out
}

// Audit is the full quiesced consistency check, per partition (routed by
// the current view, so a failed-over partition is audited on its promoted
// backup):
//
//   - facility exactness: every live subscriber's sf_mask matches exactly
//     the set of live SPECIAL_FACILITY rows (no orphans, none missing);
//   - index/base divergence: the sub_nbr index REBUILT from the base table
//     equals the maintained index, row for row, in both directions.
func (w *Workload) Audit() error {
	for part := 0; part < w.Cfg.Nodes; part++ {
		sub, err := w.shardFor(part, TableSubscriber)
		if err != nil {
			return err
		}
		sf, err := w.shardFor(part, TableSpecialFacility)
		if err != nil {
			return err
		}
		idx, err := w.shardFor(part, TableSubNbrIndex)
		if err != nil {
			return err
		}
		subs, sfs, idxs := liveSet(sub), liveSet(sf), liveSet(idx)

		// Facility exactness.
		want := map[uint64]bool{}
		for sid, v := range subs {
			for t := 1; t <= NumSFTypes; t++ {
				if v[1]&(1<<uint(t)) != 0 {
					want[SFKey(sid, t)] = true
				}
			}
		}
		for k := range want {
			if _, ok := sfs[k]; !ok {
				return fmt.Errorf("tatp audit: partition %d: subscriber %d declares facility %d but the row is missing",
					part, k>>8, k&0xFF)
			}
		}
		for k := range sfs {
			if !want[k] {
				return fmt.Errorf("tatp audit: partition %d: facility row %d/%d live but undeclared (or subscriber deleted)",
					part, k>>8, k&0xFF)
			}
		}

		// Index rebuilt from base vs maintained index.
		rebuilt := map[uint64]uint64{}
		for sid, v := range subs {
			rebuilt[v[0]] = sid
		}
		for nbr, want := range rebuilt {
			iv, ok := idxs[nbr]
			if !ok {
				return fmt.Errorf("tatp audit: partition %d: index row %#x missing for live subscriber %d",
					part, nbr, want)
			}
			if iv[0] != want {
				return fmt.Errorf("tatp audit: partition %d: index row %#x maps to %d, rebuild says %d",
					part, nbr, iv[0], want)
			}
		}
		for nbr, iv := range idxs {
			if _, ok := rebuilt[nbr]; !ok {
				return fmt.Errorf("tatp audit: partition %d: index row %#x -> %d has no live base row",
					part, nbr, iv[0])
			}
		}
	}
	return nil
}
