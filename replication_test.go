package drtm_test

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtm"
	"drtm/internal/cluster"
	"drtm/internal/nvram"
	"drtm/internal/rdma"
	"drtm/internal/smallbank"
)

// TestReplicationOptionValidation pins Open's ReplicationFactor checks:
// negative factors, factors that need more nodes than configured, and
// replication without durability are all rejected with errors (not panics).
func TestReplicationOptionValidation(t *testing.T) {
	part := func(table int, key uint64) int { return 0 }
	cases := []struct {
		name string
		o    drtm.Options
		ok   bool
	}{
		{"negative", drtm.Options{Nodes: 3, ReplicationFactor: -1, Durability: true}, false},
		{"f-equals-nodes", drtm.Options{Nodes: 3, ReplicationFactor: 3, Durability: true}, false},
		{"f-exceeds-nodes", drtm.Options{Nodes: 2, ReplicationFactor: 5, Durability: true}, false},
		{"single-node", drtm.Options{Nodes: 1, ReplicationFactor: 1, Durability: true}, false},
		{"defaulted-single-node", drtm.Options{ReplicationFactor: 1, Durability: true}, false},
		{"needs-durability", drtm.Options{Nodes: 3, ReplicationFactor: 1}, false},
		{"valid", drtm.Options{Nodes: 3, ReplicationFactor: 1, Durability: true}, true},
		{"valid-f2", drtm.Options{Nodes: 3, ReplicationFactor: 2, Durability: true}, true},
		{"off", drtm.Options{Nodes: 2}, true},
	}
	for _, tc := range cases {
		db, err := drtm.Open(tc.o, part)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected Open error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: Open accepted invalid options %+v", tc.name, tc.o)
		}
		if db != nil {
			if got := db.ReplicationFactor(); got != tc.o.ReplicationFactor {
				t.Errorf("%s: ReplicationFactor() = %d, want %d", tc.name, got, tc.o.ReplicationFactor)
			}
			db.Close()
		}
	}
}

// openReplicated builds a 3-node, f=1 deployment over a modulo partitioner
// with one hash table, pre-loaded with n records worth key*100 each.
func openReplicated(t *testing.T, n int, extra func(*drtm.Options)) *drtm.DB {
	t.Helper()
	o := drtm.Options{
		Nodes: 3, WorkersPerNode: 2,
		Durability:        true,
		ReplicationFactor: 1,
		FaultSeed:         7,
	}
	if extra != nil {
		extra(&o)
	}
	db := drtm.MustOpen(o, func(table int, key uint64) int { return int(key) % 3 })
	const accounts = 1
	db.CreateHashTable(accounts, 256, 1)
	for k := uint64(1); k <= uint64(n); k++ {
		if err := db.Load(accounts, k, []uint64{k * 100}); err != nil {
			t.Fatalf("load %d: %v", k, err)
		}
	}
	return db
}

// TestFailoverPromoteServesCommittedWrites is the end-to-end smoke test:
// commit transactions that update records homed on node 1 (appending their
// write-sets to node 2's redo logs), crash node 1, promote, and verify the
// promoted copy serves every committed update — including cross-partition
// transactions' writes — through the view-routed read paths.
func TestFailoverPromoteServesCommittedWrites(t *testing.T) {
	const accounts = 1
	db := openReplicated(t, 30, nil)
	defer db.Close()
	base := db.Stats()

	// Writes from node 0: key 1 is homed on node 1, key 3 on node 0 —
	// a cross-partition transaction plus a single-partition one.
	e := db.Executor(0, 0)
	if err := e.Exec(func(tx *drtm.Tx) error {
		if err := tx.W(accounts, 1); err != nil {
			return err
		}
		if err := tx.W(accounts, 3); err != nil {
			return err
		}
		return tx.Execute(func(lc *drtm.Local) error {
			if err := lc.Write(accounts, 1, []uint64{111}); err != nil {
				return err
			}
			return lc.Write(accounts, 3, []uint64{333})
		})
	}); err != nil {
		t.Fatalf("cross-partition tx: %v", err)
	}
	// A write issued BY node 1 (the future victim) to its own partition.
	if err := db.Executor(1, 0).Exec(func(tx *drtm.Tx) error {
		if err := tx.W(accounts, 4); err != nil {
			return err
		}
		return tx.Execute(func(lc *drtm.Local) error {
			return lc.Write(accounts, 4, []uint64{444})
		})
	}); err != nil {
		t.Fatalf("local tx on victim: %v", err)
	}

	st := db.Stats().Delta(base)
	if st.LogAppends == 0 {
		t.Fatal("no log-append WRs recorded for committed write-sets")
	}
	if st.BackupBytes == 0 {
		t.Fatal("no backup bytes recorded")
	}

	db.EnableTracing(64)
	db.Crash(1)
	rep := db.Failover(1)
	if !rep.Promoted {
		t.Fatalf("Failover(1) did not promote: %+v", rep)
	}
	if rep.NewOwner != 2 {
		t.Fatalf("promoted owner = %d, want 2 (ring successor)", rep.NewOwner)
	}
	if db.PartitionOwner(1) != 2 {
		t.Fatalf("PartitionOwner(1) = %d after promotion, want 2", db.PartitionOwner(1))
	}

	// The promoted copy must serve every committed update.
	for _, want := range []struct {
		key uint64
		val uint64
	}{{1, 111}, {4, 444}, {7, 700}} {
		got, ok := db.Get(accounts, want.key)
		if !ok || got[0] != want.val {
			t.Errorf("Get(%d) after failover = %v %v, want [%d]", want.key, got, ok, want.val)
		}
	}
	// The healthy partition's write is untouched.
	if got, ok := db.Get(accounts, 3); !ok || got[0] != 333 {
		t.Errorf("Get(3) = %v %v, want [333]", got, ok)
	}

	// Transactions keep running against the promoted partition, from both a
	// survivor's read-write path and the read-only path.
	if err := e.Exec(func(tx *drtm.Tx) error {
		if err := tx.W(accounts, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *drtm.Local) error {
			v, err := lc.Read(accounts, 1)
			if err != nil {
				return err
			}
			return lc.Write(accounts, 1, []uint64{v[0] + 1})
		})
	}); err != nil {
		t.Fatalf("post-failover tx: %v", err)
	}
	if err := e.ExecRO(func(ro *drtm.RO) error {
		v, err := ro.Read(accounts, 1)
		if err != nil {
			return err
		}
		if v[0] != 112 {
			t.Errorf("post-failover RO read = %d, want 112", v[0])
		}
		return nil
	}); err != nil {
		t.Fatalf("post-failover RO: %v", err)
	}

	st = db.Stats().Delta(base)
	if st.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", st.Failovers)
	}
	if st.PromoteNanos <= 0 {
		t.Error("PromoteNanos not accounted")
	}
	if !strings.Contains(st.String(), "repl:") {
		t.Error("Stats.String() missing the repl summary line")
	}
	found := false
	for _, ev := range db.DrainTrace() {
		if ev.Kind == drtm.TraceFailover && ev.Node == 1 && ev.Worker == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no TraceFailover event in the trace ring")
	}
}

// TestFailoverIdempotence pins the promote protocol's recovery-idempotence:
// a second Failover for the same crash — a racing coordinator across
// incarnations — observes the view already moved and does nothing.
func TestFailoverIdempotence(t *testing.T) {
	db := openReplicated(t, 12, nil)
	defer db.Close()

	db.Crash(1)
	first := db.Failover(1)
	if !first.Promoted {
		t.Fatalf("first Failover did not promote: %+v", first)
	}
	second := db.Failover(1)
	if second.Promoted {
		t.Fatalf("second Failover promoted again: %+v", second)
	}
	if second.RedoRecords != 0 || second.Unlocked != 0 {
		t.Errorf("second Failover did work: %+v", second)
	}
	if got := db.PartitionOwner(1); got != first.NewOwner {
		t.Errorf("owner changed across repeated Failover: %d vs %d", got, first.NewOwner)
	}
	if st := db.Stats(); st.Failovers != 1 {
		t.Errorf("Failovers = %d after repeated calls, want 1", st.Failovers)
	}
}

// TestZombieAppendFenced pins the view-epoch fence: after a promotion, a
// redo record stamped with the pre-promotion epoch — what a zombie
// ex-primary would append — is rejected by the backup's log sink with
// ErrFenced and counted, and the promoted copy never sees the write.
func TestZombieAppendFenced(t *testing.T) {
	const accounts = 1
	db := openReplicated(t, 12, nil)
	defer db.Close()

	staleEpoch := cluster.ViewEpoch(db.C.View(1)) // observed pre-promotion
	db.Crash(1)
	if rep := db.Failover(1); !rep.Promoted {
		t.Fatalf("Failover did not promote: %+v", rep)
	}

	// A zombie's late append: key 4 is homed on partition 1, the record is
	// stamped with the old epoch, and the sink lives on backup node 2.
	rec := nvram.EncodeRedo(nil, 42, []nvram.RedoUpdate{{
		Part: 1, Epoch: staleEpoch, Table: accounts, Key: 4,
		Version: 99, Val: []uint64{666},
	}})
	err := db.C.Worker(0, 0).QP.TryLogAppend(2, cluster.RedoLogRegion(0, 0), rec)
	if !errors.Is(err, rdma.ErrFenced) {
		t.Fatalf("stale-epoch append error = %v, want ErrFenced", err)
	}
	if st := db.Stats(); st.FenceRejects == 0 {
		t.Error("fence rejection not counted")
	}
	if got, ok := db.Get(accounts, 4); !ok || got[0] != 400 {
		t.Errorf("fenced write leaked: Get(4) = %v %v, want [400]", got, ok)
	}

	// A current-epoch append still lands.
	rec = nvram.EncodeRedo(nil, 43, []nvram.RedoUpdate{{
		Part: 0, Epoch: cluster.ViewEpoch(db.C.View(0)), Table: accounts,
		Key: 3, Version: 99, Val: []uint64{777},
	}})
	if err := db.C.Worker(0, 0).QP.TryLogAppend(1+0, cluster.RedoLogRegion(0, 0), rec); err != nil {
		// Node 1 (partition 0's backup) is crashed in this scenario, so the
		// append may fail unreachable — use node 0's other live backup
		// relationship instead: partition 2 is backed by node 0.
		rec = nvram.EncodeRedo(nil, 44, []nvram.RedoUpdate{{
			Part: 2, Epoch: cluster.ViewEpoch(db.C.View(2)), Table: accounts,
			Key: 5, Version: 99, Val: []uint64{888},
		}})
		if err := db.C.Worker(2, 0).QP.TryLogAppend(0, cluster.RedoLogRegion(2, 0), rec); err != nil {
			t.Fatalf("current-epoch append rejected: %v", err)
		}
	}
}

// TestRedoDrainDoesNotResurrectDeletedKeys pins the ordering between the
// redo stream and shipped deletes. Deletes are applied immediately to the
// primary and every replica shard and never appear in the redo stream, so a
// backup's ring can still hold an older write record for a deleted key when
// it is drained (checkpoint or failover). The drain must recognize such
// records as stale — both when the key is still gone (never re-insert it)
// and when it was re-inserted since (never clobber the fresh value, whose
// version restarted at 0).
func TestRedoDrainDoesNotResurrectDeletedKeys(t *testing.T) {
	const accounts = 1
	db := openReplicated(t, 12, nil)
	defer db.Close()

	e := db.Executor(0, 0)
	write := func(key, val uint64) {
		t.Helper()
		if err := e.Exec(func(tx *drtm.Tx) error {
			if err := tx.W(accounts, key); err != nil {
				return err
			}
			return tx.Execute(func(lc *drtm.Local) error {
				return lc.Write(accounts, key, []uint64{val})
			})
		}); err != nil {
			t.Fatalf("write %d: %v", key, err)
		}
	}

	// Keys 4 and 7 are homed on partition 1, backed up by node 2. The writes
	// leave redo records for both keys in node 2's rings.
	write(4, 444)
	write(7, 777)
	// Delete both (applied to the primary and mirrored to the replica), then
	// re-insert key 7 with a fresh value: its version restarts at 0, so only
	// the delete-generation fence can tell the old record is stale.
	if err := e.Exec(func(tx *drtm.Tx) error {
		return tx.Execute(func(lc *drtm.Local) error {
			lc.Delete(accounts, 4)
			lc.Delete(accounts, 7)
			return nil
		})
	}); err != nil {
		t.Fatalf("delete tx: %v", err)
	}
	if err := e.Exec(func(tx *drtm.Tx) error {
		return tx.Execute(func(lc *drtm.Local) error {
			lc.Insert(accounts, 7, []uint64{70})
			return nil
		})
	}); err != nil {
		t.Fatalf("reinsert tx: %v", err)
	}

	// Promote node 2: the failover drain replays every ring it hosts,
	// including the stale write records for keys 4 and 7.
	db.Crash(1)
	if rep := db.Failover(1); !rep.Promoted {
		t.Fatalf("Failover did not promote: %+v", rep)
	}
	if got, ok := db.Get(accounts, 4); ok {
		t.Errorf("deleted key 4 resurrected by redo drain: %v", got)
	}
	if got, ok := db.Get(accounts, 7); !ok || got[0] != 70 {
		t.Errorf("Get(7) after failover = %v %v, want [70] (stale pre-delete redo value must not win)", got, ok)
	}
	// An untouched key on the same partition still serves its seeded value.
	if got, ok := db.Get(accounts, 1); !ok || got[0] != 100 {
		t.Errorf("Get(1) after failover = %v %v, want [100]", got, ok)
	}
}

// TestFailoverSmallBankConservation is the replication chaos test: a
// durable, replicated SmallBank cluster with lease-based failure detection
// runs live traffic while a primary is killed. The coordinator must promote
// the backup (hot failover — the primary stays dead), survivors keep
// committing against the promoted partition, and at the end the total money
// — audited through the view-routed read path — must equal the initial
// total plus committed net deposits: zero committed transactions lost.
func TestFailoverSmallBankConservation(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		victim  = 1
	)
	cfg := smallbank.Config{
		Nodes:           nodes,
		AccountsPerNode: 80,
		HotAccounts:     8,
		HotProb:         0.25,
		DistProb:        0.4,
		InitialBalance:  1000,
	}
	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		Durability:        true,
		ReplicationFactor: 1,
		FailureDetection:  true,
		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    12 * time.Millisecond,
		ElectionStagger:   2 * time.Millisecond,
		FaultSeed:         42,
	}, cfg.Partitioner())
	defer db.Close()

	w, err := smallbank.Setup(db.RT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := w.TotalBalance()
	base := db.Stats()

	var (
		stop          = make(chan struct{})
		outage        atomic.Bool
		outageCommits atomic.Int64
		wg            sync.WaitGroup
	)
	clients := make([]*smallbank.Client, 0, nodes*workers)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(100+n*workers+wk))
			clients = append(clients, cl)
			wg.Add(1)
			go func(n int, cl *smallbank.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						// The crashed machine stays dead under hot failover;
						// its clients fail over at the workload level (here:
						// they idle out).
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if _, err := cl.RunOne(); err == nil {
						if outage.Load() {
							outageCommits.Add(1)
						}
					} else if !errors.Is(err, drtm.ErrNodeDown) {
						t.Errorf("unexpected transaction error: %v", err)
						return
					}
				}
			}(n, cl)
		}
	}

	time.Sleep(20 * time.Millisecond) // warm traffic, build redo tails
	outage.Store(true)
	db.Crash(victim)
	deadline := time.Now().Add(10 * time.Second)
	for db.PartitionOwner(victim) == victim && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if db.PartitionOwner(victim) == victim {
		t.Fatal("crash was never detected and promoted")
	}
	outage.Store(false)
	if db.C.Node(victim).Alive() {
		t.Error("victim revived: hot failover must keep the primary dead")
	}
	time.Sleep(20 * time.Millisecond) // traffic against the promoted view
	close(stop)
	wg.Wait()

	if p := db.RT.PendingOps(victim); p != 0 {
		t.Errorf("%d release-side ops still parked for the dead primary", p)
	}

	var net int64
	for _, cl := range clients {
		net += cl.NetDeposits
	}
	final := w.TotalBalance()
	if int64(final) != int64(initial)+net {
		t.Errorf("money not conserved across failover: final %d, want %d (initial %d %+d net deposits)",
			final, int64(initial)+net, initial, net)
	}
	if outageCommits.Load() == 0 {
		t.Error("survivors made no commits around the failover window")
	}

	st := db.Stats().Delta(base)
	if st.Detections == 0 {
		t.Error("no crash was detected via lease expiry")
	}
	if st.Failovers == 0 {
		t.Error("no hot-failover promotion ran")
	}
	if st.Recoveries != 0 {
		t.Error("full NVRAM recovery ran despite replication (hot failover should replace it)")
	}
	if st.LogAppends == 0 {
		t.Error("no log-append WRs recorded")
	}
	if st.PromoteNanos == 0 {
		t.Error("promotion time not accounted")
	}
}
