package drtm

import (
	"errors"
	"sync"
	"testing"
)

const tblAcct = 1

func openTestDB(t testing.TB, nodes, workers int, durable bool) *DB {
	t.Helper()
	db := Open(Options{Nodes: nodes, WorkersPerNode: workers, Durability: durable},
		func(table int, key uint64) int { return int(key) % nodes })
	db.CreateHashTable(tblAcct, 1024, 1)
	for k := uint64(1); k <= 20; k++ {
		if err := db.Load(tblAcct, k, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := Open(Options{}, func(table int, key uint64) int { return 0 })
	defer db.Close()
	if db.C.Nodes() != 1 {
		t.Fatal("default Nodes != 1")
	}
}

func TestQuickstartTransfer(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	e := db.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAcct, 1); err != nil { // node 1: remote
			return err
		}
		if err := tx.W(tblAcct, 2); err != nil { // node 0: local
			return err
		}
		return tx.Execute(func(lc *Local) error {
			a, _ := lc.Read(tblAcct, 1)
			b, _ := lc.Read(tblAcct, 2)
			if err := lc.Write(tblAcct, 1, []uint64{a[0] - 10}); err != nil {
				return err
			}
			return lc.Write(tblAcct, 2, []uint64{b[0] + 10})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := db.Get(tblAcct, 1)
	v2, _ := db.Get(tblAcct, 2)
	if v1[0] != 90 || v2[0] != 110 {
		t.Fatalf("balances = %d, %d", v1[0], v2[0])
	}
	if db.Stats().Commits != 1 {
		t.Fatal("stats commit missing")
	}
	if db.WorkerVirtualTime(0, 0) == 0 {
		t.Fatal("virtual time not charged")
	}
	r, w, c := db.RemoteOpCounts()
	if r == 0 || w == 0 || c == 0 {
		t.Fatalf("remote op counts = %d/%d/%d, want all nonzero", r, w, c)
	}
}

func TestReadOnlySnapshot(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	e := db.Executor(1, 0)
	var total uint64
	err := e.ExecRO(func(ro *RO) error {
		total = 0
		for k := uint64(1); k <= 20; k++ {
			v, err := ro.Read(tblAcct, k)
			if err != nil {
				return err
			}
			total += v[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
}

func TestUserAbortSurfacesCleanly(t *testing.T) {
	db := openTestDB(t, 1, 1, false)
	defer db.Close()
	e := db.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error { return ErrUserAbort })
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("err = %v", err)
	}
}

func TestOrderedTableThroughFacade(t *testing.T) {
	db := Open(Options{Nodes: 1, WorkersPerNode: 1},
		func(table int, key uint64) int { return 0 })
	defer db.Close()
	const tbl = 2
	db.CreateOrderedTable(tbl, 64, 1)
	for k := uint64(10); k <= 30; k += 10 {
		if err := db.Load(tbl, k, []uint64{k}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := db.Get(tbl, 20)
	if !ok || v[0] != 20 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
}

func TestReplicatedTableLoad(t *testing.T) {
	db := Open(Options{Nodes: 2, WorkersPerNode: 1},
		func(table int, key uint64) int {
			if table == 9 {
				return -1
			}
			return int(key) % 2
		})
	defer db.Close()
	db.CreateHashTable(9, 64, 1)
	if err := db.Load(9, 5, []uint64{55}); err != nil {
		t.Fatal(err)
	}
	// Both nodes hold a copy.
	for n := 0; n < 2; n++ {
		if v, ok := db.C.Node(n).Unordered(9).Get(5); !ok || v[0] != 55 {
			t.Fatalf("node %d replica = %v,%v", n, v, ok)
		}
	}
}

func TestCrashRecoverThroughFacade(t *testing.T) {
	db := openTestDB(t, 2, 1, true)
	defer db.Close()
	e := db.Executor(0, 0)
	// Commit a durable distributed transaction.
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAcct, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAcct, 1, []uint64{42})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Crash(0)
	rep := db.Recover(0)
	db.Revive(0)
	_ = rep
	v, _ := db.Get(tblAcct, 1)
	if v[0] != 42 {
		t.Fatalf("value after recovery = %d", v[0])
	}
}

func TestConcurrentFacadeUse(t *testing.T) {
	db := openTestDB(t, 2, 2, false)
	defer db.Close()
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := db.Executor(n, w)
				for i := 0; i < 50; i++ {
					from := uint64((n*7+w*3+i)%20) + 1
					to := uint64((n*11+w*5+i*3)%20) + 1
					if from == to {
						continue
					}
					err := e.Exec(func(tx *Tx) error {
						if err := tx.W(tblAcct, from); err != nil {
							return err
						}
						if err := tx.W(tblAcct, to); err != nil {
							return err
						}
						return tx.Execute(func(lc *Local) error {
							f, _ := lc.Read(tblAcct, from)
							g, _ := lc.Read(tblAcct, to)
							if f[0] < 1 {
								return nil
							}
							if err := lc.Write(tblAcct, from, []uint64{f[0] - 1}); err != nil {
								return err
							}
							return lc.Write(tblAcct, to, []uint64{g[0] + 1})
						})
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(n, w)
		}
	}
	wg.Wait()
	var total uint64
	for k := uint64(1); k <= 20; k++ {
		v, _ := db.Get(tblAcct, k)
		total += v[0]
	}
	if total != 2000 {
		t.Fatalf("conservation broken: %d", total)
	}
}
