package drtm

import (
	"errors"
	"runtime"
	"sync"
	"testing"
)

const tblAcct = 1

func openTestDB(t testing.TB, nodes, workers int, durable bool) *DB {
	t.Helper()
	db := MustOpen(Options{Nodes: nodes, WorkersPerNode: workers, Durability: durable},
		func(table int, key uint64) int { return int(key) % nodes })
	db.CreateHashTable(tblAcct, 1024, 1)
	for k := uint64(1); k <= 20; k++ {
		if err := db.Load(tblAcct, k, []uint64{100}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db, err := Open(Options{}, func(table int, key uint64) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Nodes() != 1 || db.WorkersPerNode() != 1 {
		t.Fatalf("defaults = %d nodes x %d workers, want 1x1",
			db.Nodes(), db.WorkersPerNode())
	}
}

func TestOpenValidation(t *testing.T) {
	part := func(table int, key uint64) int { return 0 }
	cases := []struct {
		name string
		o    Options
		part PartitionFunc
	}{
		{"nil partition", Options{}, nil},
		{"negative nodes", Options{Nodes: -1}, part},
		{"too many nodes", Options{Nodes: 1 << 16}, part},
		{"negative workers", Options{WorkersPerNode: -2}, part},
		{"too many workers", Options{WorkersPerNode: 1 << 16}, part},
		{"negative write lines", Options{HTMWriteLines: -1}, part},
		{"negative read lines", Options{HTMReadLines: -1}, part},
		{"lease overflow", Options{LeaseMicros: 1 << 50}, part},
		{"ro lease overflow", Options{ROLeaseMicros: 1 << 50}, part},
	}
	for _, tc := range cases {
		if _, err := Open(tc.o, tc.part); err == nil {
			t.Errorf("%s: Open accepted invalid options", tc.name)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustOpen did not panic on invalid options")
			}
		}()
		MustOpen(Options{Nodes: -1}, part)
	}()
}

func TestQuickstartTransfer(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	e := db.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAcct, 1); err != nil { // node 1: remote
			return err
		}
		if err := tx.W(tblAcct, 2); err != nil { // node 0: local
			return err
		}
		return tx.Execute(func(lc *Local) error {
			a, _ := lc.Read(tblAcct, 1)
			b, _ := lc.Read(tblAcct, 2)
			if err := lc.Write(tblAcct, 1, []uint64{a[0] - 10}); err != nil {
				return err
			}
			return lc.Write(tblAcct, 2, []uint64{b[0] + 10})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := db.Get(tblAcct, 1)
	v2, _ := db.Get(tblAcct, 2)
	if v1[0] != 90 || v2[0] != 110 {
		t.Fatalf("balances = %d, %d", v1[0], v2[0])
	}
	if db.Stats().Commits != 1 {
		t.Fatal("stats commit missing")
	}
	if db.WorkerVirtualTime(0, 0) == 0 {
		t.Fatal("virtual time not charged")
	}
	r, w, c := db.RemoteOpCounts()
	if r == 0 || w == 0 || c == 0 {
		t.Fatalf("remote op counts = %d/%d/%d, want all nonzero", r, w, c)
	}
}

func TestReadOnlySnapshot(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	e := db.Executor(1, 0)
	var total uint64
	err := e.ExecRO(func(ro *RO) error {
		total = 0
		for k := uint64(1); k <= 20; k++ {
			v, err := ro.Read(tblAcct, k)
			if err != nil {
				return err
			}
			total += v[0]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2000 {
		t.Fatalf("total = %d", total)
	}
}

func TestUserAbortSurfacesCleanly(t *testing.T) {
	db := openTestDB(t, 1, 1, false)
	defer db.Close()
	e := db.Executor(0, 0)
	err := e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error { return ErrUserAbort })
	})
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("err = %v", err)
	}
}

func TestOrderedTableThroughFacade(t *testing.T) {
	db := MustOpen(Options{Nodes: 1, WorkersPerNode: 1},
		func(table int, key uint64) int { return 0 })
	defer db.Close()
	const tbl = 2
	db.CreateOrderedTable(tbl, 64, 1)
	for k := uint64(10); k <= 30; k += 10 {
		if err := db.Load(tbl, k, []uint64{k}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := db.Get(tbl, 20)
	if !ok || v[0] != 20 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
}

func TestReplicatedTableLoad(t *testing.T) {
	db := MustOpen(Options{Nodes: 2, WorkersPerNode: 1},
		func(table int, key uint64) int {
			if table == 9 {
				return -1
			}
			return int(key) % 2
		})
	defer db.Close()
	db.CreateHashTable(9, 64, 1)
	if err := db.Load(9, 5, []uint64{55}); err != nil {
		t.Fatal(err)
	}
	// Both nodes hold a copy.
	for n := 0; n < 2; n++ {
		if v, ok := db.C.Node(n).Unordered(9).Get(5); !ok || v[0] != 55 {
			t.Fatalf("node %d replica = %v,%v", n, v, ok)
		}
	}
}

func TestCrashRecoverThroughFacade(t *testing.T) {
	db := openTestDB(t, 2, 1, true)
	defer db.Close()
	e := db.Executor(0, 0)
	// Commit a durable distributed transaction.
	err := e.Exec(func(tx *Tx) error {
		if err := tx.W(tblAcct, 1); err != nil {
			return err
		}
		return tx.Execute(func(lc *Local) error {
			return lc.Write(tblAcct, 1, []uint64{42})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	db.Crash(0)
	rep := db.Recover(0)
	db.Revive(0)
	_ = rep
	v, _ := db.Get(tblAcct, 1)
	if v[0] != 42 {
		t.Fatalf("value after recovery = %d", v[0])
	}
}

func TestConcurrentFacadeUse(t *testing.T) {
	db := openTestDB(t, 2, 2, false)
	defer db.Close()
	var wg sync.WaitGroup
	for n := 0; n < 2; n++ {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := db.Executor(n, w)
				for i := 0; i < 50; i++ {
					from := uint64((n*7+w*3+i)%20) + 1
					to := uint64((n*11+w*5+i*3)%20) + 1
					if from == to {
						continue
					}
					err := e.Exec(func(tx *Tx) error {
						if err := tx.W(tblAcct, from); err != nil {
							return err
						}
						if err := tx.W(tblAcct, to); err != nil {
							return err
						}
						return tx.Execute(func(lc *Local) error {
							f, _ := lc.Read(tblAcct, from)
							g, _ := lc.Read(tblAcct, to)
							if f[0] < 1 {
								return nil
							}
							if err := lc.Write(tblAcct, from, []uint64{f[0] - 1}); err != nil {
								return err
							}
							return lc.Write(tblAcct, to, []uint64{g[0] + 1})
						})
					})
					if err != nil {
						t.Errorf("transfer: %v", err)
						return
					}
				}
			}(n, w)
		}
	}
	wg.Wait()
	var total uint64
	for k := uint64(1); k <= 20; k++ {
		v, _ := db.Get(tblAcct, k)
		total += v[0]
	}
	if total != 2000 {
		t.Fatalf("conservation broken: %d", total)
	}
}

func TestStatsSnapshotAndDelta(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	e := db.Executor(0, 0)
	run := func(n int) {
		for i := 0; i < n; i++ {
			err := e.Exec(func(tx *Tx) error {
				if err := tx.W(tblAcct, 1); err != nil {
					return err
				}
				return tx.Execute(func(lc *Local) error {
					v, _ := lc.Read(tblAcct, 1)
					return lc.Write(tblAcct, 1, []uint64{v[0] + 1})
				})
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	run(3)
	before := db.Stats()
	run(5)
	d := db.Stats().Delta(before)
	if d.Commits != 5 {
		t.Fatalf("delta commits = %d, want 5", d.Commits)
	}
	if before.Commits != 3 {
		t.Fatalf("snapshot not immutable: before.Commits = %d", before.Commits)
	}
	if d.RDMACASes <= 0 || d.RDMAWrites <= 0 {
		t.Fatalf("delta RDMA counts = cas:%d write:%d, want positive",
			d.RDMACASes, d.RDMAWrites)
	}
	if d.TotalLatency.Count != 5 {
		t.Fatalf("delta total-latency count = %d, want 5", d.TotalLatency.Count)
	}
	if d.TotalLatency.P50 <= 0 || d.TotalLatency.Max < d.TotalLatency.P50 {
		t.Fatalf("latency summary inconsistent: %+v", d.TotalLatency)
	}
	if s := d.String(); len(s) == 0 {
		t.Fatal("Stats.String empty")
	}
	db.ResetStats()
	if c := db.Stats().Commits; c != 0 {
		t.Fatalf("commits after ResetStats = %d", c)
	}
}

// conflictStorm hammers hot records from every worker so that both HTM
// conflicts (same-node workers overlapping in the HTM region) and remote
// lock conflicts (cross-node lease/lock CAS races) occur. Balances are
// rewritten unchanged, so conservation is easy to check afterwards.
func conflictStorm(t *testing.T, db *DB, rounds int) {
	t.Helper()
	var wg sync.WaitGroup
	for n := 0; n < db.Nodes(); n++ {
		for w := 0; w < db.WorkersPerNode(); w++ {
			wg.Add(1)
			go func(n, w int) {
				defer wg.Done()
				e := db.Executor(n, w)
				// This node's local keys (partition is key%2).
				var mine []uint64
				for k := uint64(1); k <= 20; k++ {
					if int(k)%2 == n {
						mine = append(mine, k)
					}
				}
				for i := 0; i < rounds; i++ {
					// Cross-node touch of the hot pair: races the remote
					// lock/lease CAS against the other node's workers.
					err := e.Exec(func(tx *Tx) error {
						if err := tx.W(tblAcct, 1); err != nil { // node 1
							return err
						}
						if err := tx.W(tblAcct, 2); err != nil { // node 0
							return err
						}
						return tx.Execute(func(lc *Local) error {
							f, _ := lc.Read(tblAcct, 1)
							g, _ := lc.Read(tblAcct, 2)
							if err := lc.Write(tblAcct, 1, f); err != nil {
								return err
							}
							return lc.Write(tblAcct, 2, g)
						})
					})
					if err != nil {
						t.Errorf("hot pair: %v", err)
						return
					}
					// Purely local batch over every record of this node:
					// both workers of the node write the same lines, so
					// their HTM regions collide. The Gosched between the
					// reads and the writes hands the CPU to the sibling
					// worker mid-region, standing in for the coherence
					// traffic that interleaves regions on real hardware.
					err = e.Exec(func(tx *Tx) error {
						for _, k := range mine {
							if err := tx.W(tblAcct, k); err != nil {
								return err
							}
						}
						return tx.Execute(func(lc *Local) error {
							vals := make([][]uint64, len(mine))
							for j, k := range mine {
								v, err := lc.Read(tblAcct, k)
								if err != nil {
									return err
								}
								vals[j] = v
							}
							runtime.Gosched()
							for j, k := range mine {
								if err := lc.Write(tblAcct, k, vals[j]); err != nil {
									return err
								}
							}
							return nil
						})
					})
					if err != nil {
						t.Errorf("local batch: %v", err)
						return
					}
				}
			}(n, w)
		}
	}
	wg.Wait()
}

func TestStatsConflictBreakdownE2E(t *testing.T) {
	db := openTestDB(t, 2, 2, false)
	defer db.Close()
	// Everyone fights over keys 1 and 2; retry in batches until both
	// conflict counters fire (they virtually always do in one batch).
	var st Stats
	for round := 0; round < 20; round++ {
		conflictStorm(t, db, 60)
		st = db.Stats()
		if st.ConflictAborts > 0 && st.RemoteLockConflicts > 0 {
			break
		}
	}
	if st.ConflictAborts == 0 {
		t.Error("no HTM conflict aborts recorded under contention")
	}
	if st.RemoteLockConflicts == 0 {
		t.Error("no remote lock conflicts recorded under contention")
	}
	if st.HTMAborts != st.ConflictAborts+st.CapacityAborts+st.LockedAborts+
		st.LeaseAborts+st.ExplicitAborts {
		t.Errorf("HTMAborts %d != sum of cause counters", st.HTMAborts)
	}
	if st.Retries == 0 {
		t.Error("no transaction retries recorded under contention")
	}
	// Conservation still holds.
	var total uint64
	for k := uint64(1); k <= 20; k++ {
		v, _ := db.Get(tblAcct, k)
		total += v[0]
	}
	if total != 2000 {
		t.Fatalf("conservation broken: %d", total)
	}
}

func TestTracingE2E(t *testing.T) {
	db := openTestDB(t, 2, 1, false)
	defer db.Close()
	if evs := db.DrainTrace(); len(evs) != 0 {
		t.Fatalf("trace not empty before enable: %d events", len(evs))
	}
	db.EnableTracing(64)
	e := db.Executor(0, 0)
	for i := 0; i < 5; i++ {
		err := e.Exec(func(tx *Tx) error {
			if err := tx.W(tblAcct, 1); err != nil {
				return err
			}
			return tx.Execute(func(lc *Local) error {
				v, _ := lc.Read(tblAcct, 1)
				return lc.Write(tblAcct, 1, []uint64{v[0] + 1})
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	evs := db.DrainTrace()
	if len(evs) != 5 {
		t.Fatalf("trace events = %d, want 5", len(evs))
	}
	for _, ev := range evs {
		if ev.Outcome != 0 { // OutcomeCommit
			t.Errorf("trace outcome = %v, want commit", ev.Outcome)
		}
		if ev.TotalNS <= 0 || ev.TxID == 0 || ev.Attempts < 1 {
			t.Errorf("implausible trace event: %+v", ev)
		}
	}
	db.DisableTracing()
	if err := e.Exec(func(tx *Tx) error {
		return tx.Execute(func(lc *Local) error { return nil })
	}); err != nil {
		t.Fatal(err)
	}
	if evs := db.DrainTrace(); len(evs) != 0 {
		t.Fatalf("trace recorded while disabled: %d events", len(evs))
	}
}
