package drtm_test

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drtm"
	"drtm/internal/smallbank"
)

// TestChaosSmallBankConservation is the public-API crash-consistency test:
// a durable SmallBank cluster with lease-based failure detection runs live
// traffic while nodes are crashed repeatedly. Every crash must be detected
// via lease expiry (no oracle), recovered online by the elected
// coordinator, and the victim revived — and at the end the total money in
// the bank must equal the initial total plus the committed net deposits:
// no committed transaction may be lost, no aborted one half-applied.
func TestChaosSmallBankConservation(t *testing.T) {
	const (
		nodes   = 3
		workers = 2
		cycles  = 4
	)

	cfg := smallbank.Config{
		Nodes:           nodes,
		AccountsPerNode: 80,
		HotAccounts:     8,
		HotProb:         0.25,
		DistProb:        0.4,
		InitialBalance:  1000,
	}
	db := drtm.MustOpen(drtm.Options{
		Nodes: nodes, WorkersPerNode: workers,
		Durability:        true,
		FailureDetection:  true,
		HeartbeatInterval: time.Millisecond,
		FailureTimeout:    12 * time.Millisecond,
		ElectionStagger:   2 * time.Millisecond,
		FaultSeed:         42,
	}, cfg.Partitioner())
	defer db.Close()

	w, err := smallbank.Setup(db.RT, cfg)
	if err != nil {
		t.Fatal(err)
	}
	initial := w.TotalBalance()
	// A pinch of transient verb faults so the bounded-retry path runs too.
	db.InjectLinkFaults(1, 0, drtm.FaultRule{FailProb: 0.01})
	base := db.Stats()

	var (
		stop          = make(chan struct{})
		outage        atomic.Bool
		outageCommits atomic.Int64
		wg            sync.WaitGroup
	)
	clients := make([]*smallbank.Client, 0, nodes*workers)
	for n := 0; n < nodes; n++ {
		for wk := 0; wk < workers; wk++ {
			cl := w.NewClient(db.Executor(n, wk), int64(100+n*workers+wk))
			clients = append(clients, cl)
			wg.Add(1)
			go func(n int, cl *smallbank.Client) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if !db.C.Node(n).Alive() {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if _, err := cl.RunOne(); err == nil {
						if outage.Load() {
							outageCommits.Add(1)
						}
					} else if err != nil && !errors.Is(err, drtm.ErrNodeDown) {
						t.Errorf("unexpected transaction error: %v", err)
						return
					}
				}
			}(n, cl)
		}
	}

	for i := 0; i < cycles; i++ {
		time.Sleep(15 * time.Millisecond)
		victim := 1 + i%2
		outage.Store(true)
		db.Crash(victim)
		deadline := time.Now().Add(10 * time.Second)
		for !db.C.Node(victim).Alive() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if !db.C.Node(victim).Alive() {
			t.Fatalf("cycle %d: node %d was never detected and revived", i, victim)
		}
		outage.Store(false)
	}
	close(stop)
	wg.Wait()

	for n := 0; n < nodes; n++ {
		if p := db.RT.PendingOps(n); p != 0 {
			t.Errorf("node %d: %d release-side writes still parked after revival", n, p)
		}
	}

	var net int64
	for _, cl := range clients {
		net += cl.NetDeposits
	}
	final := w.TotalBalance()
	if int64(final) != int64(initial)+net {
		t.Errorf("money not conserved: final %d, want %d (initial %d %+d net deposits)",
			final, int64(initial)+net, initial, net)
	}
	if outageCommits.Load() == 0 {
		t.Error("survivors made no commits while a peer was down")
	}

	st := db.Stats().Delta(base)
	if st.Detections == 0 {
		t.Error("no crash was detected via lease expiry")
	}
	if st.Recoveries == 0 {
		t.Error("no recovery run replayed logs")
	}
	if st.RecoveryNanos == 0 {
		t.Error("recovery time not accounted")
	}
	if st.VerbFaults == 0 {
		t.Error("no verb faults recorded despite crashes and injected faults")
	}
	if st.NodeDownAborts == 0 {
		t.Error("no transaction ever aborted with ErrNodeDown")
	}
	if !strings.Contains(st.String(), "fault:") {
		t.Error("Stats.String() missing the fault summary line")
	}
}
